package repro_test

// One benchmark per table and figure of the paper's evaluation. Each runs
// the experiment in its quick configuration (full sweeps belong to
// cmd/ufsim and the long-mode tests) and reports the experiment's headline
// metric alongside the usual time/op.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/memsys"
	"repro/internal/system"
	"repro/internal/workload"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: 0x5eed + uint64(i), Quick: true}
}

func BenchmarkFig3UncoreFreqVsUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		// Headline cell: one 3-hop thread saturates the uncore.
		b.ReportMetric(res.Freq[len(res.Freq)-1][0], "GHz@3hop1thr")
	}
}

func BenchmarkFig4StallProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Freq[0][0], "GHz@1stall0busy")
	}
}

func BenchmarkFig5RampUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.StepMS) > 1 {
			b.ReportMetric(res.StepMS[1], "ms/step")
		}
	}
}

func BenchmarkFig6RampDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.StepMS) > 0 {
			b.ReportMetric(res.StepMS[0], "ms/step")
		}
	}
}

func BenchmarkFig7CrossSocket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		end := res.Traces[1].Samples[len(res.Traces[1].Samples)-1].Value
		b.ReportMetric(end, "followerGHz")
	}
}

func BenchmarkSec32StallRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec32(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ChaseRatio, "stallratio")
	}
}

func BenchmarkFig8LatencyVsFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary[0][len(res.Freqs)-1].Mean, "cycles@2.4GHz")
	}
}

func BenchmarkFig9Transmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Res.BER, "BER")
	}
}

func BenchmarkFig10CapacityCrossCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.PeakCapacity(res.CrossCore).Capacity, "bit/s")
	}
}

func BenchmarkFig10CapacityCrossProcessor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.PeakCapacity(res.CrossProcessor).Capacity, "bit/s")
	}
}

func BenchmarkTable2StressCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Tab2(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Capacity[0], "bit/s@N1")
	}
}

func BenchmarkTable3Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Tab3(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		functional := 0
		for _, row := range res.Rows {
			for _, c := range res.Cells[row] {
				if c.Functional {
					functional++
				}
			}
		}
		b.ReportMetric(float64(functional), "functionalcells")
	}
}

func BenchmarkFig11FileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy*100, "accuracy%")
	}
}

func BenchmarkFig12Fingerprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.Top1*100, "top1%")
	}
}

func BenchmarkSec61Countermeasures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec61(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		var restricted float64
		for _, c := range res.Cases {
			if c.Name == "restricted-range" {
				restricted = c.Capacity
			}
		}
		b.ReportMetric(restricted, "bit/s@restricted")
	}
}

// benchBusyMachine builds a machine with a representative mixed load:
// traffic threads, a stalling thread, and a measurement probe.
func benchBusyMachine(b *testing.B) *system.Machine {
	b.Helper()
	m := system.New(system.DefaultConfig())
	for c := 0; c < 6; c++ {
		slice, ok := m.Socket(0).Die.SliceAtHops(c, 1)
		if !ok {
			slice, _ = m.Socket(0).Die.SliceAtHops(c, 0)
		}
		m.Spawn("bench-traffic", 0, c, 0, &workload.Traffic{Slice: slice})
	}
	slice, _ := m.Socket(0).Die.SliceAtHops(8, 0)
	m.Spawn("bench-stall", 0, 8, 0, &workload.Stalling{Slice: slice})
	lines, err := memsys.EvictionList(m.Socket(0).Hier, 0, memsys.NewAllocator(), 10, slice, 20)
	if err != nil {
		b.Fatal(err)
	}
	m.Spawn("bench-probe", 0, 9, 0, &workload.Measure{Lines: lines, PerQuantum: 20})
	return m
}

// BenchmarkMachineQuantum times the simulator's core loop: one busy
// machine advancing a single quantum.
func BenchmarkMachineQuantum(b *testing.B) {
	m := benchBusyMachine(b)
	q := m.Config().Quantum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(q)
	}
}

// BenchmarkMachineEpoch times one full governor epoch of the busy machine.
func BenchmarkMachineEpoch(b *testing.B) {
	m := benchBusyMachine(b)
	e := m.Config().UFS.Epoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(e)
	}
}

func BenchmarkSec61EnergyTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec61e(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "fixed-frequency" {
				b.ReportMetric(row.OverheadPct, "overhead%")
			}
		}
	}
}

func BenchmarkFig10xVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10x(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].CrossCoreC, "bit/s")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablate(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BERFast[len(res.BERFast)-1], "BER@16ms/10mswin")
	}
}

func BenchmarkSec61fFingerprintDefence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec61f(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Top1Range*100, "top1%@restricted")
	}
}
