// Package repro is a full Go reproduction of "Uncore Encore: Covert
// Channels Exploiting Uncore Frequency Scaling" (Guo, Cao, Xin, Zhang,
// Yang — MICRO 2023).
//
// The paper's platform — a dual-socket Intel Xeon Gold 6142 system with
// its undocumented uncore-frequency-scaling (UFS) power management — is
// rebuilt as a deterministic discrete-event simulator, and the paper's
// entire evaluation runs against it:
//
//   - internal/topo, internal/mesh, internal/cache, internal/cpu,
//     internal/msr and internal/ufs model the hardware: the Figure 2
//     floorplan, the mesh interconnect, the three-level cache hierarchy,
//     core P/C-states, the MSR interface, and the UFS governor fitted to
//     the paper's §3 characterisation.
//   - internal/system composes them into the running machine;
//     internal/workload provides the paper's loops (Listings 1–3),
//     stressors and victims.
//   - internal/channel/ufvariation is the paper's contribution: the
//     UF-variation covert channel (Algorithm 1); internal/channel/baselines
//     holds the ten prior channels of Table 3; internal/defense the
//     mitigations; internal/sidechannel the §5 attacks.
//   - internal/experiments regenerates every table and figure; cmd/ufsim
//     is the command-line front end; the benchmarks in this package
//     (bench_test.go) time one scaled run of each experiment.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
