#!/bin/sh
# Benchmark delta gate: diffs two normalized BENCH_*.json reports,
# prints a before/after table (absolute ns/op on both sides, custom
# b.ReportMetric deltas indented under their case, new cases with their
# absolute numbers), and fails when a gated registry case regresses past
# the tolerances (>15% ns/op or >10% bytes/op over baseline by default),
# goes missing from the current run, or drops a custom metric the
# baseline reported. The optional third argument persists the delta as a
# JSON artifact — CI uploads it alongside the BENCH_<date>.json it gates.
#
# Usage:
#   scripts/bench_compare.sh BASELINE.json CURRENT.json [DELTA_OUT.json]
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: scripts/bench_compare.sh BASELINE.json CURRENT.json [DELTA_OUT.json]" >&2
    exit 2
fi

baseline=$1
current=$2

if [ "$#" -eq 3 ]; then
    go run ./cmd/ufsim bench compare -out "$3" "$baseline" "$current"
else
    go run ./cmd/ufsim bench compare "$baseline" "$current"
fi
