#!/bin/sh
# Benchmark-regression harness: runs the per-package micro-benchmarks and
# the experiment benchmark suite via `go test -bench -benchmem`, then the
# binary-side registry via `ufsim bench`, folding both into one normalized
# BENCH_<date>.json. Exits non-zero when a tagged zero-allocation case
# allocates — the regression CI gates on.
#
# Usage:
#   scripts/bench.sh           full run: whole bench_test.go suite + quick trials
#   scripts/bench.sh -short    hot-path cases only (seconds, for CI)
set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench"
if [ -n "$short" ]; then
    # CI shape: only the hot-path micro-benchmarks, briefly.
    go test -run '^$' -bench . -benchmem -benchtime 100ms \
        ./internal/sim/ ./internal/mesh/ ./internal/cache/ | tee "$raw"
else
    # Full shape: every benchmark in the repo, including the
    # per-figure experiment suite at the root.
    go test -run '^$' -bench . -benchmem -timeout 45m ./... | tee "$raw"
fi

echo "== ufsim bench"
go run ./cmd/ufsim bench $short -merge "$raw"
