#!/bin/sh
# Repository gate: formatting, vet, and the full test suite under the
# race detector. Run from anywhere; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go test -race"
# The experiments package replays every paper artefact; under the race
# detector that legitimately exceeds go test's default 10m budget.
go test -race -timeout=45m ./...

echo "== ok"
