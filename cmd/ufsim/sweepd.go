package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/runner"
	"repro/internal/sweepd"
	"repro/internal/vfs"
)

// serveCmd is `ufsim serve`: it shards a sweep into units and
// coordinates workers over the lease/heartbeat protocol — over HTTP for
// real fleets, or over the in-process loopback transport with
// -loopback N (the hermetic mode CI uses, optionally chaos-faulted with
// -chaos-net).
//
// Shutdown is two-grade: the first SIGINT/SIGTERM drains (no new
// leases; in-flight units finish and report), the second aborts. Either
// way the merged manifest is written atomically before exit, so
// `ufsim serve -resume` — or plain `ufsim -resume` on the same
// artifacts dir — re-runs only the unfinished units.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":7733", "HTTP listen address for workers")
		id        = fs.String("experiment", "all", "experiment id to shard (or \"all\")")
		quick     = fs.Bool("quick", false, "reduced trial counts and sweep densities")
		seed      = fs.Uint64("seed", experiments.DefaultOptions().Seed, "simulation seed")
		replicas  = fs.Int("replicas", 1, "replicas per experiment (derived seeds)")
		artifacts = fs.String("artifacts", "sweep-artifacts", "state dir: sweep state, results, crash and quarantine artifacts, merged manifest")
		resume    = fs.Bool("resume", false, "resume from the state dir; only unfinished units run")

		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "worker lease TTL (missed heartbeats past this reassign the unit)")
		expiryN    = fs.Int("expiry-budget", 5, "lease expiries before a unit is quarantined")
		quarantine = fs.Int("quarantine-after", 3, "distinct-worker failures before a unit is quarantined")
		retryBase  = fs.Duration("retry-base", 500*time.Millisecond, "base backoff before re-leasing a failed unit")

		loopback = fs.Int("loopback", 0, "run N in-process workers instead of serving HTTP")
		jobs     = fs.Int("jobs", 1, "units per loopback worker in parallel")
		timeout  = fs.Duration("timeout", 0, "wall-clock limit per unit attempt in loopback workers (0 = none)")
		retries  = fs.Int("retries", 0, "supervised retries per unit in loopback workers")
		maxSteps = fs.Int64("max-steps", 0, "per-machine engine step budget in loopback workers (0 = none)")

		chaosNet      = fs.Float64("chaos-net", 0, "network-fault intensity in [0,1] for the loopback transport (testing)")
		chaosDisk     = fs.Float64("chaos-disk", 0, "disk-fault intensity in [0,1] injected into all state-dir I/O (testing)")
		chaosOverload = fs.Float64("chaos-overload", 0, "overload intensity in [0,1]: latency ramps and slow-loris trickles on the loopback transport (testing)")
		chaosSeed     = fs.Uint64("chaos-seed", 0xC0FFEE, "seed for the network/disk/overload fault plans")

		inflight  = fs.Int("inflight", 0, "admission cap: concurrent requests per endpoint (0 = 64)")
		queueLen  = fs.Int("queue", 0, "admission queue: waiting requests per endpoint before shedding (0 = 4x inflight)")
		queueWait = fs.Duration("queue-wait", 0, "longest a queued request waits before it is shed (0 = 1s)")
		herd      = fs.Bool("herd", false, "release all loopback workers at the same instant (thundering-herd testing)")
		batch     = fs.Bool("batch", false, "loopback workers deliver completions as per-round batches")
		drainFor  = fs.Duration("drain", 5*time.Second, "HTTP shutdown drain deadline")

		legacyState = fs.Bool("legacy-state", false, "persist state as the pre-journal sweep-state.json full rewrite (interop only)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim serve [-addr :7733 | -loopback N] [-experiment all] [-artifacts DIR] [-resume] ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids, code := experimentIDs(*id)
	if code != 0 {
		return code
	}
	if err := os.MkdirAll(*artifacts, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim serve: %v\n", err)
		return 1
	}

	// The state-dir filesystem: real, or wrapped in the deterministic
	// disk-fault injector for chaos runs. The same seed drives net and
	// disk plans, so one flag pair reproduces a whole chaos run.
	var stateFS vfs.FS = vfs.OS{}
	var diskPlan *faults.DiskPlan
	if *chaosDisk > 0 {
		diskPlan = faults.NewDiskPlan(faults.DefaultDiskConfig(*chaosDisk), *chaosSeed)
		stateFS = &faults.FaultyFS{Inner: vfs.OS{}, Plan: diskPlan}
	}

	units := sweepd.ReplicaUnits(ids, *seed, *quick, *replicas)
	c, err := sweepd.NewCoordinator(sweepd.CoordinatorConfig{
		LeaseTTL:        *leaseTTL,
		ExpiryBudget:    *expiryN,
		QuarantineAfter: *quarantine,
		RetryBase:       *retryBase,
		Seed:            *seed,
		StateDir:        *artifacts,
		Resume:          *resume,
		FS:              stateFS,
		LegacyState:     *legacyState,
		Log:             os.Stderr,
	}, units)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufsim serve: %v\n", err)
		return 1
	}
	defer c.Close()

	// The admission gate fronts both transports and feeds the brownout
	// pressure signal into lease retry hints.
	gate := sweepd.NewGate(sweepd.GateConfig{Default: sweepd.GateLimits{
		Inflight:  *inflight,
		Queue:     *queueLen,
		QueueWait: *queueWait,
	}})
	c.AttachGate(gate)

	if salv := c.Salvage(); salv != nil {
		fmt.Fprintf(os.Stderr, "ufsim serve: LOSSY RECOVERY (%s): %s (report: %s)\n",
			salv.Kind, salv.Detail, filepath.Join(*artifacts, sweepd.SalvageName))
	}

	// Two-grade shutdown: first signal drains, second aborts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	signalled := make(chan struct{})
	go func() {
		select {
		case <-sig:
		case <-ctx.Done():
			return
		}
		fmt.Fprintln(os.Stderr, "ufsim serve: draining (signal again to abort)")
		close(signalled)
		c.Drain()
		// A drained sweep leaves unleased units pending forever, so Done
		// never closes; release the main wait once no lease is live.
		go func() {
			for !c.Quiesced() {
				select {
				case <-ctx.Done():
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
			cancel()
		}()
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "ufsim serve: aborting")
			cancel()
		case <-ctx.Done():
		}
	}()

	if *loopback > 0 {
		var plan *faults.NetPlan
		if *chaosNet > 0 {
			plan = faults.NewNetPlan(faults.DefaultNetConfig(*chaosNet), *chaosSeed)
		}
		var overload *faults.OverloadPlan
		if *chaosOverload > 0 {
			overload = faults.NewOverloadPlan(faults.DefaultOverloadConfig(*chaosOverload), *chaosSeed)
		}
		base := runner.Config{
			Timeout:        *timeout,
			Retries:        *retries,
			MaxEngineSteps: *maxSteps,
			ArtifactDir:    *artifacts,
		}
		rep := sweepd.RunFleet(ctx, c, sweepd.FleetConfig{
			Workers:        *loopback,
			Jobs:           *jobs,
			NewRunner:      func(string) sweepd.UnitRunner { return sweepd.ExperimentRunner(base) },
			Plan:           plan,
			Overload:       overload,
			Gate:           gate,
			HerdStart:      *herd,
			BatchCompletes: *batch,
			Respawn:        plan != nil,
			Log:            os.Stderr,
		})
		if plan != nil {
			fmt.Fprintf(os.Stderr, "ufsim serve: chaos stats: %+v (fleet %+v)\n", plan.Stats(), rep)
		}
		if overload != nil {
			fmt.Fprintf(os.Stderr, "ufsim serve: overload stats: %+v (gate %+v)\n", overload.Stats(), gate.Stats())
		}
		if diskPlan != nil {
			fmt.Fprintf(os.Stderr, "ufsim serve: disk chaos stats: %+v\n", diskPlan.Stats())
		}
		return finishSweep(c, *artifacts, drained(signalled))
	}

	handler := sweepd.NewServer(c, sweepd.ServerConfig{Gate: gate, Log: os.Stderr})
	srv := sweepd.NewHTTPServer(*addr, handler, sweepd.HTTPTimeouts{})
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	hint := *addr
	if strings.HasPrefix(hint, ":") {
		hint = "HOST" + hint
	}
	fmt.Fprintf(os.Stderr, "ufsim serve: %d unit(s) on %s (workers: ufsim worker -coordinator http://%s)\n",
		len(units), *addr, hint)

	err = c.Wait(ctx, 200*time.Millisecond)
	if err != nil {
		// Aborted or drained: give live leases a beat to land their
		// completions, bounded so a hung worker cannot wedge shutdown.
		quiesce := time.After(2 * *leaseTTL)
	wait:
		for !c.Quiesced() {
			select {
			case <-quiesce:
				break wait
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
	// Graceful drain: stop accepting, let in-flight requests land their
	// responses, and only hard-close past the deadline.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainFor)
	defer shutCancel()
	srv.Shutdown(shutCtx)
	select {
	case err := <-srvErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ufsim serve: %v\n", err)
			return 1
		}
	default:
	}
	return finishSweep(c, *artifacts, drained(signalled))
}

// drained reports whether the channel fired.
func drained(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// finishSweep writes the merged manifest and maps the sweep outcome to
// the process exit code: 0 all done, 1 completed with quarantined units,
// 3 stopped by signal with work left unfinished, 4 degraded (state
// could not be persisted; the sweep is not resumable past its last
// durable transition). A signal that arrives after the last unit merged
// is not an abort — the sweep's content decides the code whenever
// nothing was cut short.
func finishSweep(c *sweepd.Coordinator, artifacts string, signalled bool) int {
	if err := c.WriteManifest(); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim serve: writing manifest: %v\n", err)
	}
	// Final status snapshot (unit states plus shed/queue/breaker
	// counters when a gate is attached) — what CI uploads.
	if data, err := c.StatusJSON(); err == nil {
		if werr := os.WriteFile(filepath.Join(artifacts, "status-final.json"), append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "ufsim serve: writing final status: %v\n", werr)
		}
	}
	if deg, reason := c.Degraded(); deg {
		fmt.Fprintf(os.Stderr, "ufsim serve: DEGRADED: %s\n", reason)
		fmt.Fprintf(os.Stderr, "ufsim serve: verify the state dir with: ufsim fsck %s\n", artifacts)
		return exitDegraded
	}
	st := c.Snapshot()
	fmt.Fprintf(os.Stderr, "ufsim serve: done=%d quarantined=%d pending=%d leased=%d (manifest in %s)\n",
		st.Done, st.Quarantined, st.Pending, st.Leased, artifacts)
	for _, u := range st.Units {
		if u.State == sweepd.UnitQuarantined {
			fmt.Fprintf(os.Stderr, "ufsim serve: %s quarantined: %s (%s)\n",
				u.Unit.ID, u.Quarantine, sweepd.QuarantinePath(artifacts, u.Unit.ID))
		}
	}
	unfinished := st.Pending + st.Leased
	switch {
	case unfinished > 0:
		fmt.Fprintf(os.Stderr, "ufsim serve: resume with: ufsim serve -artifacts %s -resume ...\n", artifacts)
		if signalled {
			return 3
		}
		return 1
	case st.Quarantined > 0:
		return 1
	default:
		return 0
	}
}

// workerCmd is `ufsim worker`: it joins a coordinator's sweep over HTTP
// and runs leased units through the supervised experiment runner. The
// first SIGINT/SIGTERM drains (in-flight units finish and report); the
// second aborts them and releases the leases so the coordinator can
// reassign immediately.
func workerCmd(args []string) int {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		coord    = fs.String("coordinator", "", "coordinator base URL, e.g. http://sweep-host:7733 (required)")
		id       = fs.String("id", "", "worker name in leases and failure records (default host.pid)")
		jobs     = fs.Int("jobs", 1, "units to lease and run in parallel")
		timeout  = fs.Duration("timeout", 0, "wall-clock limit per unit attempt (0 = none)")
		retries  = fs.Int("retries", 0, "supervised retries per unit (each reseeded)")
		maxSteps = fs.Int64("max-steps", 0, "per-machine engine step budget (0 = none)")
		scratch  = fs.String("artifacts", "", "local scratch dir for crash artifacts (shipped to the coordinator regardless)")

		batch     = fs.Bool("batch", false, "deliver each lease round's completions as one batched request")
		retryBase = fs.Duration("retry-base", 50*time.Millisecond, "first rung of the jittered transport retry backoff")
		brkAfter  = fs.Int("breaker-after", 8, "consecutive transport failures before the circuit breaker opens (negative disables)")
		brkCool   = fs.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker waits before probing the coordinator")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim worker -coordinator URL [-id NAME] [-jobs N] ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *coord == "" {
		fs.Usage()
		return 2
	}
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	if *scratch != "" {
		if err := os.MkdirAll(*scratch, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim worker: %v\n", err)
			return 1
		}
	}

	w := sweepd.NewWorker(sweepd.WorkerConfig{
		ID:     *id,
		Client: &sweepd.HTTPClient{Base: *coord},
		Run: sweepd.ExperimentRunner(runner.Config{
			Timeout:        *timeout,
			Retries:        *retries,
			MaxEngineSteps: *maxSteps,
			ArtifactDir:    *scratch,
		}),
		Jobs:            *jobs,
		RetryBase:       *retryBase,
		BatchCompletes:  *batch,
		BreakerAfter:    *brkAfter,
		BreakerCooldown: *brkCool,
		Log:             os.Stderr,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	aborted := make(chan struct{})
	go func() {
		select {
		case <-sig:
		case <-ctx.Done():
			return
		}
		fmt.Fprintln(os.Stderr, "ufsim worker: draining (signal again to abort)")
		w.Drain()
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "ufsim worker: aborting; releasing leases")
			close(aborted)
			cancel()
		case <-ctx.Done():
		}
	}()

	err := w.Run(ctx)
	switch {
	case drained(aborted):
		return 3
	case errors.Is(err, sweepd.ErrDegraded):
		// The coordinator refused leases because it cannot persist
		// state; surface the distinct code so fleet automation restarts
		// nothing until the state dir is fixed.
		fmt.Fprintf(os.Stderr, "ufsim worker: %v\n", err)
		return exitDegraded
	case err != nil && !errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "ufsim worker: %v\n", err)
		return 1
	default:
		fmt.Fprintln(os.Stderr, "ufsim worker: sweep finished")
		return 0
	}
}

// experimentIDs resolves -experiment into a list of experiment IDs.
func experimentIDs(id string) ([]string, int) {
	if id == "all" {
		var ids []string
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		return ids, 0
	}
	if _, ok := experiments.Get(id); !ok {
		fmt.Fprintf(os.Stderr, "ufsim: unknown experiment %q (use -list)\n", id)
		return nil, 2
	}
	return []string{id}, 0
}
