// Command ufsim regenerates the tables and figures of "Uncore Encore:
// Covert Channels Exploiting Uncore Frequency Scaling" (MICRO 2023) on the
// simulated platform, through a supervised runner that survives individual
// experiment failures.
//
// Usage:
//
//	ufsim -list                      list available experiments
//	ufsim -experiment fig3           regenerate Figure 3
//	ufsim -experiment all            regenerate everything
//	ufsim -experiment fig10 -quick   fast, reduced-density variant
//	ufsim -experiment fig9 -seed 7   change the simulation seed
//
// Sweep supervision (see DESIGN.md "Experiment orchestration"):
//
//	-jobs 4          run up to 4 experiments in parallel
//	-timeout 10m     bound each attempt's wall-clock time
//	-retries 1       retry a failed experiment once, reseeded
//	-keep-going      survive failures and finish the rest of the sweep
//	-artifacts DIR   write crash artifacts and the sweep manifest here
//	-resume          skip experiments already done in DIR's manifest
//
// A failed run leaves DIR/<id>.crash.json with the seed, options, error,
// stack, log tail, and the exact replay command. Ctrl-C cancels the sweep
// gracefully: in-flight runs stop at their next engine check, and the
// summary still prints.
//
// The reliability subcommand runs one faulted ARQ transfer and prints
// its per-frame transcript:
//
//	ufsim reliability -intensity 0.75 -bytes 32
//
// The bench subcommand runs the performance-regression harness and
// writes a normalized BENCH_<date>.json (see scripts/bench.sh):
//
//	ufsim bench                 full run, including quick experiment trials
//	ufsim bench -short          hot-path cases only (the CI gate)
//
// The serve and worker subcommands distribute a sweep across machines
// over a lease/heartbeat protocol (see DESIGN.md "Distributed sweep
// protocol"):
//
//	ufsim serve -addr :7733 -experiment all -artifacts DIR
//	ufsim worker -coordinator http://sweep-host:7733
//	ufsim serve -loopback 4 -quick      hermetic in-process fleet
//
// The coordinator persists sweep state durably: a checksummed
// append-only journal plus periodic snapshots (see DESIGN.md
// "Durability model"). The fsck subcommand verifies a state dir offline
// — journal checksums, snapshot/manifest consistency, orphaned or torn
// artifacts — and exits non-zero on corruption:
//
//	ufsim fsck sweep-artifacts
//
// Exit codes everywhere: 0 success, 1 completed with failures, 2 usage
// error, 3 aborted by signal (SIGINT and SIGTERM are handled alike:
// first signal drains, second aborts), 4 degraded — the coordinator
// could not persist sweep state and refused to keep going.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// Exit codes, uniform across subcommands: 0 success, 1 completed with
// failures (failed, quarantined, or unfinished units — and for fsck,
// corruption found), 2 usage error, 3 aborted by signal, 4 degraded
// (sweep state could not be persisted; the sweep stopped rather than
// continue without crash-proofing).
const (
	exitOK       = 0
	exitFailures = 1
	exitUsage    = 2
	exitSignal   = 3
	exitDegraded = 4
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "reliability":
			reliabilityCmd(os.Args[2:])
			return
		case "bench":
			benchCmd(os.Args[2:])
			return
		case "serve":
			os.Exit(serveCmd(os.Args[2:]))
		case "worker":
			os.Exit(workerCmd(os.Args[2:]))
		case "fsck":
			os.Exit(fsckCmd(os.Args[2:]))
		}
	}
	os.Exit(run())
}

func run() int {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		id        = flag.String("experiment", "", "experiment id to run (or \"all\")")
		quick     = flag.Bool("quick", false, "reduced trial counts and sweep densities")
		seed      = flag.Uint64("seed", experiments.DefaultOptions().Seed, "simulation seed")
		out       = flag.String("out", "", "directory to also write per-experiment reports into")
		jobs      = flag.Int("jobs", 1, "experiments to run in parallel")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit per experiment attempt (0 = none)")
		retries   = flag.Int("retries", 0, "retries per failed experiment (each reseeded)")
		keepGoing = flag.Bool("keep-going", false, "continue the sweep past failures")
		artifacts = flag.String("artifacts", "", "directory for crash artifacts and the sweep manifest")
		resume    = flag.Bool("resume", false, "skip experiments already completed in the -artifacts manifest")
		maxSteps  = flag.Int64("max-steps", 0, "per-machine engine step budget (0 = none); runaway simulations fail instead of spinning")
	)
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim: %v\n", err)
			return exitFailures
		}
	}
	if *resume && *artifacts == "" {
		fmt.Fprintln(os.Stderr, "ufsim: -resume needs -artifacts (the manifest lives there)")
		return exitUsage
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			fmt.Println("\nrun one with: ufsim -experiment <id>")
		}
		return 0
	}

	var exps []experiments.Experiment
	if *id == "all" {
		exps = experiments.All()
	} else {
		e, ok := experiments.Get(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ufsim: unknown experiment %q (use -list)\n", *id)
			return exitUsage
		}
		exps = []experiments.Experiment{e}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := runner.Config{
		Jobs:           *jobs,
		Timeout:        *timeout,
		Retries:        *retries,
		KeepGoing:      *keepGoing,
		Seed:           *seed,
		Quick:          *quick,
		MaxEngineSteps: *maxSteps,
		ArtifactDir:    *artifacts,
		Resume:         *resume,
		Log:            os.Stderr,
		OnResult:       func(rep runner.Report) { emit(rep, *out) },
	}
	start := time.Now()
	sum, err := runner.Run(ctx, cfg, exps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufsim: %v\n", err)
		return exitFailures
	}

	if len(exps) > 1 || sum.Failed > 0 || sum.Skipped > 0 {
		fmt.Printf("sweep: %s in %.1fs\n", sum, time.Since(start).Seconds())
	}
	for _, rep := range sum.Reports {
		if rep.Status == runner.StatusFailed && rep.Artifact != "" {
			fmt.Fprintf(os.Stderr, "ufsim: %s failed; crash artifact: %s\n", rep.ID, rep.Artifact)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "ufsim: sweep interrupted")
		return exitSignal
	}
	if sum.Failed > 0 {
		if *artifacts != "" {
			fmt.Fprintf(os.Stderr, "ufsim: re-run only the failures with: ufsim -experiment %s -artifacts %s -resume\n", *id, *artifacts)
		}
		return exitFailures
	}
	return exitOK
}

// emit renders one finished experiment: to stdout, and — for successful
// runs with -out — to <out>/<id>.txt. Reports arrive serialized from the
// runner, so concurrent sweeps never interleave their rendering.
func emit(rep runner.Report, out string) {
	switch rep.Status {
	case runner.StatusDone:
		if rep.Cached {
			return // already reported (and rendered) by the sweep that did it
		}
		fmt.Printf("== %s: %s\n", rep.ID, rep.Title)
		if err := rep.Result.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim: rendering %s: %v\n", rep.ID, err)
		}
		fmt.Printf("(%s in %.1fs)\n\n", rep.ID, rep.Duration.Seconds())
		if out != "" {
			if err := writeReport(out, rep); err != nil {
				fmt.Fprintf(os.Stderr, "ufsim: writing %s report: %v\n", rep.ID, err)
			}
		}
	case runner.StatusFailed:
		fmt.Fprintf(os.Stderr, "ufsim: %s failed after %d attempt(s): %v\n", rep.ID, rep.Attempts, rep.Err)
	case runner.StatusSkipped:
		fmt.Fprintf(os.Stderr, "ufsim: %s skipped: %v\n", rep.ID, rep.Err)
	}
}

// writeReport persists one report atomically: the render goes to a temp
// file that is renamed into place only on success, so a failed or
// interrupted Render never leaves a truncated <id>.txt behind.
func writeReport(dir string, rep runner.Report) error {
	return runner.WriteFileAtomic(filepath.Join(dir, rep.ID+".txt"), func(w io.Writer) error {
		return rep.Result.Render(w)
	})
}
