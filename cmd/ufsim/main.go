// Command ufsim regenerates the tables and figures of "Uncore Encore:
// Covert Channels Exploiting Uncore Frequency Scaling" (MICRO 2023) on the
// simulated platform.
//
// Usage:
//
//	ufsim -list                      list available experiments
//	ufsim -experiment fig3           regenerate Figure 3
//	ufsim -experiment all            regenerate everything
//	ufsim -experiment fig10 -quick   fast, reduced-density variant
//	ufsim -experiment fig9 -seed 7   change the simulation seed
//
// The reliability subcommand runs one faulted ARQ transfer and prints
// its per-frame transcript:
//
//	ufsim reliability -intensity 0.75 -bytes 32
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "reliability" {
		reliabilityCmd(os.Args[2:])
		return
	}
	var (
		list  = flag.Bool("list", false, "list available experiments")
		id    = flag.String("experiment", "", "experiment id to run (or \"all\")")
		quick = flag.Bool("quick", false, "reduced trial counts and sweep densities")
		seed  = flag.Uint64("seed", experiments.DefaultOptions().Seed, "simulation seed")
		out   = flag.String("out", "", "directory to also write per-experiment reports into")
	)
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim: %v\n", err)
			os.Exit(1)
		}
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Title)
		}
		if *id == "" && !*list {
			fmt.Println("\nrun one with: ufsim -experiment <id>")
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	run := func(e experiments.Experiment) {
		fmt.Printf("== %s: %s\n", e.ID, e.Title)
		t0 := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim: rendering %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *out != "" {
			f, err := os.Create(filepath.Join(*out, e.ID+".txt"))
			if err == nil {
				err = res.Render(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "ufsim: writing %s report: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
	}

	if *id == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Get(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "ufsim: unknown experiment %q (use -list)\n", *id)
		os.Exit(2)
	}
	run(e)
}
