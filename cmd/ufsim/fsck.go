package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sweepd"
)

// fsckCmd is `ufsim fsck <statedir>`: offline verification of a sweep
// state dir. It checks every journal record's checksum, the
// snapshot/journal/manifest generation consistency, a legacy
// sweep-state.json if that is what the dir holds, and every per-unit
// artifact (results, crash and quarantine records) for parseability and
// ownership. Warnings (torn tails recovery would absorb, stale files,
// orphans) exit 0; corruption — anything recovery could not trust —
// exits 1.
func fsckCmd(args []string) int {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print nothing; report via exit code only")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim fsck [-q] STATEDIR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return exitUsage
	}
	dir := fs.Arg(0)

	rep, err := sweepd.Fsck(nil, dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufsim fsck: %v\n", err)
		return exitFailures
	}
	if !*quiet {
		mode := "legacy"
		if rep.Journaled {
			mode = fmt.Sprintf("journal generation %d", rep.Generation)
		}
		fmt.Printf("ufsim fsck: %s: %s, %d unit(s), %d journal record(s)\n", dir, mode, rep.Units, rep.Records)
		for _, w := range rep.Warnings {
			fmt.Printf("  warning: %s\n", w)
		}
		for _, c := range rep.Corruptions {
			fmt.Printf("  CORRUPT: %s\n", c)
		}
	}
	if !rep.Clean() {
		if !*quiet {
			fmt.Printf("ufsim fsck: %s: %d corruption(s) found\n", dir, len(rep.Corruptions))
		}
		return exitFailures
	}
	if !*quiet {
		fmt.Printf("ufsim fsck: %s: clean (%d warning(s))\n", dir, len(rep.Warnings))
	}
	return exitOK
}
