package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/runner"
)

// benchCmd is the `ufsim bench` subcommand: it runs the performance
// harness of internal/bench — the simulator's hot-path micro-benchmarks
// plus (in full mode) whole quick experiment trials — optionally merges a
// parsed `go test -bench` output, and writes the normalized BENCH_*.json
// report. The exit status enforces the zero-allocation contract: any
// tagged case that allocates in steady state fails the command, which is
// what CI gates on.
func benchCmd(args []string) {
	if len(args) > 0 && args[0] == "compare" {
		benchCompareCmd(args[1:])
		return
	}
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		short = fs.Bool("short", false, "skip the multi-second trial cases (the CI gate)")
		out   = fs.String("out", "", "report path (default BENCH_<date>.json)")
		merge = fs.String("merge", "", "`go test -bench -benchmem` output file to fold into the report")
		quiet = fs.Bool("quiet", false, "suppress per-case progress lines")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim bench [-short] [-out FILE] [-merge go-bench.txt] [-quiet]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	rep, runErr := bench.Run(bench.Config{Short: *short, Log: log})
	rep.Date = date

	if *merge != "" {
		f, err := os.Open(*merge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", err)
			os.Exit(1)
		}
		parsed, err := bench.ParseGoBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, parsed...)
	}

	// Persist even a failing run: the regressed numbers are the
	// evidence the failure message points at.
	if err := runner.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("bench: %d results -> %s\n", len(rep.Results), path)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", runErr)
		os.Exit(1)
	}
}

// benchCompareCmd is `ufsim bench compare BASELINE.json CURRENT.json`:
// it diffs two normalized reports, prints the delta table, optionally
// writes the delta as a JSON artifact, and exits non-zero when a gated
// case regresses past the tolerances (ns/op and bytes/op percent over
// baseline). scripts/bench_compare.sh and the CI bench job drive it.
func benchCompareCmd(args []string) {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	var (
		out      = fs.String("out", "", "write the delta report as JSON to this path")
		nsTol    = fs.Float64("ns-tol", bench.DefaultNsTolerancePct, "ns/op regression tolerance (percent over baseline)")
		bytesTol = fs.Float64("bytes-tol", bench.DefaultBytesTolerancePct, "bytes/op regression tolerance (percent over baseline)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim bench compare [-out delta.json] [-ns-tol PCT] [-bytes-tol PCT] BASELINE.json CURRENT.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}

	load := func(path string) bench.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench compare: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		var rep bench.Report
		if err := json.NewDecoder(f).Decode(&rep); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench compare: %s: %v\n", path, err)
			os.Exit(1)
		}
		return rep
	}
	base, cur := load(fs.Arg(0)), load(fs.Arg(1))
	delta := bench.Compare(base, cur, *nsTol, *bytesTol)

	if *out != "" {
		if err := runner.WriteFileAtomic(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(delta)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench compare: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if err := delta.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim bench compare: %v\n", err)
		os.Exit(1)
	}
	if regs := delta.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "ufsim bench compare: %d regression(s):\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}
