package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/runner"
)

// benchCmd is the `ufsim bench` subcommand: it runs the performance
// harness of internal/bench — the simulator's hot-path micro-benchmarks
// plus (in full mode) whole quick experiment trials — optionally merges a
// parsed `go test -bench` output, and writes the normalized BENCH_*.json
// report. The exit status enforces the zero-allocation contract: any
// tagged case that allocates in steady state fails the command, which is
// what CI gates on.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		short = fs.Bool("short", false, "skip the multi-second trial cases (the CI gate)")
		out   = fs.String("out", "", "report path (default BENCH_<date>.json)")
		merge = fs.String("merge", "", "`go test -bench -benchmem` output file to fold into the report")
		quiet = fs.Bool("quiet", false, "suppress per-case progress lines")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim bench [-short] [-out FILE] [-merge go-bench.txt] [-quiet]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	rep, runErr := bench.Run(bench.Config{Short: *short, Log: log})
	rep.Date = date

	if *merge != "" {
		f, err := os.Open(*merge)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", err)
			os.Exit(1)
		}
		parsed, err := bench.ParseGoBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, parsed...)
	}

	// Persist even a failing run: the regressed numbers are the
	// evidence the failure message points at.
	if err := runner.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim bench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("bench: %d results -> %s\n", len(rep.Results), path)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ufsim bench: %v\n", runErr)
		os.Exit(1)
	}
}
