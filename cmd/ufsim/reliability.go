package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel/link"
	"repro/internal/channel/ufvariation"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/system"
)

// reliabilityCmd is the `ufsim reliability` subcommand: one faulted
// transfer over the ARQ transport at a chosen intensity, with the
// per-frame transcript the sweep experiment aggregates away. Where
// `-experiment rel` answers "how does goodput scale with fault
// intensity", this answers "what exactly happened to my frames".
func reliabilityCmd(args []string) {
	fs := flag.NewFlagSet("reliability", flag.ExitOnError)
	var (
		seed      = fs.Uint64("seed", 0x5eed, "simulation seed")
		intensity = fs.Float64("intensity", 0.5, "fault intensity in [0,1]")
		bytes     = fs.Int("bytes", 24, "payload size in bytes")
		cross     = fs.Bool("cross", true, "cross-processor placement (false: cross-core)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ufsim reliability [-seed N] [-intensity X] [-bytes N] [-cross=false]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	mcfg := system.DefaultConfig()
	mcfg.Seed = *seed
	m := system.New(mcfg)
	inj := faults.New(faults.DefaultConfig(*intensity), m.Rand(0xFA017))
	if err := inj.Attach(m); err != nil {
		fmt.Fprintf(os.Stderr, "ufsim: %v\n", err)
		os.Exit(1)
	}

	cfg := ufvariation.DefaultConfig()
	if *cross {
		cfg = cfg.CrossProcessor()
	}
	phy := &ufvariation.LinkPhy{
		M:       m,
		Cfg:     cfg,
		Corrupt: inj.CorruptBits,
		AckLoss: inj.AckLost,
	}
	tcfg := link.DefaultTransportConfig()
	tcfg.Interval = cfg.Interval
	tr := link.NewTransport(phy, tcfg)

	payload := make([]byte, *bytes)
	prng := sim.NewRand(*seed ^ 0xbadfa017)
	for i := range payload {
		payload[i] = byte(prng.IntN(256))
	}

	fmt.Printf("reliability: %d bytes at intensity %.2f, %v base interval, seed %#x\n\n",
		*bytes, inj.Config().Intensity, cfg.Interval, *seed)
	t0 := m.Now()
	got, stats, err := tr.Send(payload)
	air := m.Now() - t0

	fmt.Printf("%5s  %5s  %8s  %5s  %11s  %6s  %8s  %s\n",
		"frame", "bytes", "attempts", "nacks", "corrections", "pilots", "interval", "status")
	for _, fr := range stats.Frames {
		status := "ok"
		if !fr.Delivered {
			status = "ABANDONED"
		}
		fmt.Printf("%5d  %5d  %8d  %5d  %11d  %6d  %8v  %s\n",
			fr.Seq, fr.Bytes, fr.Attempts, fr.Nacks, fr.Corrections, fr.Pilots, fr.Interval, status)
	}

	fst := inj.Stats()
	fmt.Printf("\ninjected: %d/%d burst steps bad, %d epochs held, %d samples dropped, %d preemptions, %d bits erased, %d ACKs lost\n",
		fst.BadSteps, fst.BurstSteps, fst.HeldEpochs, fst.DroppedSamples, fst.Preemptions, fst.ErasedBits, fst.LostAcks)
	fmt.Printf("transport: %d transmissions (%d retrans), %d corrections, %d recalibrations, %d degradations, %d duplicates\n",
		stats.Transmissions, stats.Retransmissions, stats.Corrections, stats.Recalibrations, stats.Degradations, stats.Duplicates)
	rawBER := 0.0
	if phy.RawBits > 0 {
		rawBER = float64(phy.RawErrors) / float64(phy.RawBits)
	}
	fmt.Printf("delivered %d/%d bytes in %v air time — raw BER %.3f, goodput %.2f bit/s, final interval %v\n",
		len(got), len(payload), air, rawBER, float64(len(got)*8)/air.Seconds(), tr.Interval())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ufsim: %v\n", err)
		os.Exit(1)
	}
}
