package sim

import (
	"math"
	"math/rand/v2"
)

// Rand is the deterministic random source used throughout the simulator.
// It wraps a seeded PCG so that all experiments are reproducible, and adds
// the distributions the timing and workload models need.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a Rand seeded from seed. Two Rands with the same seed
// produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives an independent child stream from r and a label, so that
// adding consumers of randomness in one component does not perturb the
// stream seen by another.
func (r *Rand) Split(label uint64) *Rand {
	return NewRand(r.src.Uint64() ^ (label * 0xbf58476d1ce4e5b9))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform value in [0, n).
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Norm(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Jitter returns a duration drawn uniformly from [0, max).
func (r *Rand) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.src.Int64N(int64(max)))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.src.Float64())
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomly reorders n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// HashString folds a string into a 64-bit seed (FNV-1a). It is used to give
// named entities (e.g. websites in the fingerprinting corpus) stable,
// independent random streams.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
