package sim

import (
	"context"
	"errors"
	"testing"
)

func TestEngineFiresInWindow(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Add(&Ticker{Name: "a", Period: 10 * Millisecond, Fn: func(now Time) { got = append(got, now) }})
	e.Run(35 * Millisecond)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d ticks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 35*Millisecond {
		t.Errorf("Now() = %v, want 35ms", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("Steps() = %d, want 3", e.Steps())
	}
}

func TestEnginePriorityOrderAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Add(&Ticker{Name: "late", Period: Millisecond, Priority: 10, Fn: func(Time) { order = append(order, "late") }})
	e.Add(&Ticker{Name: "early", Period: Millisecond, Priority: -10, Fn: func(Time) { order = append(order, "early") }})
	e.Run(Millisecond)
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("firing order = %v, want [early late]", order)
	}
}

// A ticker added from inside a tick callback must join the schedule with
// its first tick at registering-instant + Phase + Period, must not fire at
// the instant that registered it, and must not disturb the dispatch of
// the instant in progress (the old implementation re-sorted the ticker
// slice mid-iteration, which could skip or double-fire colliding tickers).
func TestEngineAddDuringRun(t *testing.T) {
	e := NewEngine()
	var childTicks []Time
	added := false
	e.Add(&Ticker{Name: "parent", Period: 10 * Millisecond, Fn: func(now Time) {
		if !added {
			added = true
			// Highest urgency: would sort to the front of the slice if
			// inserted immediately.
			e.Add(&Ticker{Name: "child", Period: 3 * Millisecond, Priority: -100, Fn: func(at Time) {
				childTicks = append(childTicks, at)
			}})
		}
	}})
	e.Run(20 * Millisecond)
	// Registered at t=10ms, so the child ticks at 13, 16, 19 ms.
	want := []Time{13 * Millisecond, 16 * Millisecond, 19 * Millisecond}
	if len(childTicks) != len(want) {
		t.Fatalf("child fired %d times (%v), want %d", len(childTicks), childTicks, len(want))
	}
	for i := range want {
		if childTicks[i] != want[i] {
			t.Errorf("child tick %d at %v, want %v", i, childTicks[i], want[i])
		}
	}
}

// Colliding tickers must all fire exactly once per shared instant even
// when one of them registers a new high-priority ticker mid-dispatch.
func TestEngineAddDuringRunNoDoubleFire(t *testing.T) {
	e := NewEngine()
	counts := map[string]int{}
	mk := func(name string, prio int) *Ticker {
		return &Ticker{Name: name, Period: Millisecond, Priority: prio, Fn: func(Time) { counts[name]++ }}
	}
	e.Add(&Ticker{Name: "spawner", Period: Millisecond, Priority: 0, Fn: func(Time) {
		counts["spawner"]++
		if counts["spawner"] == 1 {
			e.Add(mk("injected", -50))
		}
	}})
	e.Add(mk("b", 5))
	e.Add(mk("c", 9))
	e.Run(4 * Millisecond)
	for name, want := range map[string]int{"spawner": 4, "b": 4, "c": 4, "injected": 3} {
		if counts[name] != want {
			t.Errorf("%s fired %d times, want %d", name, counts[name], want)
		}
	}
}

func TestEngineRunContextCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) { fired++ }})
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := 5 * ctxCheckEvery
	e.Add(&Ticker{Name: "trip", Period: Microsecond, Priority: 1, Fn: func(Time) {
		if fired == stopAt {
			cancel()
		}
	}})
	err := e.RunContext(ctx, Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Cancellation is honored within one check window.
	if fired > stopAt+ctxCheckEvery {
		t.Errorf("fired %d ticks after cancel at %d; check lag exceeds one window", fired, stopAt)
	}
	// The engine stops on a dispatched instant, so a later run resumes
	// without double-firing.
	before := fired
	if err := e.RunContext(context.Background(), 10*Microsecond); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fired != before+10 {
		t.Errorf("resume fired %d ticks, want 10", fired-before)
	}
}

func TestEngineRunContextPreCancelled(t *testing.T) {
	e := NewEngine()
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) { t.Fatal("ticker fired under a cancelled context") }})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx, Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestEngineStepBudget(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Add(&Ticker{Name: "runaway", Period: Picosecond, Fn: func(Time) { fired++ }})
	e.SetStepBudget(1000)
	err := e.RunContext(context.Background(), Second)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("RunContext = %v, want *BudgetError", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Error("BudgetError does not match ErrBudgetExceeded")
	}
	if fired != 1000 || be.Steps != 1000 || be.Budget != 1000 {
		t.Errorf("fired=%d Steps=%d Budget=%d, want 1000 each", fired, be.Steps, be.Budget)
	}
}

func TestEngineRunPanicsWithAbortWhenBound(t *testing.T) {
	e := NewEngine()
	e.Add(&Ticker{Name: "runaway", Period: Picosecond, Fn: func(Time) {}})
	e.SetStepBudget(10)
	defer func() {
		cause, ok := AbortCause(recover())
		if !ok {
			t.Fatal("Run did not panic with sim.Abort")
		}
		if !errors.Is(cause, ErrBudgetExceeded) {
			t.Fatalf("abort cause = %v, want ErrBudgetExceeded", cause)
		}
	}()
	e.Run(Second)
}

func TestEngineBindContext(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Bind(ctx)
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) {}})
	defer func() {
		cause, ok := AbortCause(recover())
		if !ok || !errors.Is(cause, context.Canceled) {
			t.Fatalf("Run under a cancelled bound context: recovered %v", cause)
		}
	}()
	e.Run(Second)
}
