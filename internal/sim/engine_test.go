package sim

import (
	"context"
	"errors"
	"testing"
)

func TestEngineFiresInWindow(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Add(&Ticker{Name: "a", Period: 10 * Millisecond, Fn: func(now Time) { got = append(got, now) }})
	e.Run(35 * Millisecond)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d ticks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 35*Millisecond {
		t.Errorf("Now() = %v, want 35ms", e.Now())
	}
	if e.Steps() != 3 {
		t.Errorf("Steps() = %d, want 3", e.Steps())
	}
}

func TestEnginePriorityOrderAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Add(&Ticker{Name: "late", Period: Millisecond, Priority: 10, Fn: func(Time) { order = append(order, "late") }})
	e.Add(&Ticker{Name: "early", Period: Millisecond, Priority: -10, Fn: func(Time) { order = append(order, "early") }})
	e.Run(Millisecond)
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("firing order = %v, want [early late]", order)
	}
}

// A ticker added from inside a tick callback must join the schedule with
// its first tick at registering-instant + Phase + Period, must not fire at
// the instant that registered it, and must not disturb the dispatch of
// the instant in progress (the old implementation re-sorted the ticker
// slice mid-iteration, which could skip or double-fire colliding tickers).
func TestEngineAddDuringRun(t *testing.T) {
	e := NewEngine()
	var childTicks []Time
	added := false
	e.Add(&Ticker{Name: "parent", Period: 10 * Millisecond, Fn: func(now Time) {
		if !added {
			added = true
			// Highest urgency: would sort to the front of the slice if
			// inserted immediately.
			e.Add(&Ticker{Name: "child", Period: 3 * Millisecond, Priority: -100, Fn: func(at Time) {
				childTicks = append(childTicks, at)
			}})
		}
	}})
	e.Run(20 * Millisecond)
	// Registered at t=10ms, so the child ticks at 13, 16, 19 ms.
	want := []Time{13 * Millisecond, 16 * Millisecond, 19 * Millisecond}
	if len(childTicks) != len(want) {
		t.Fatalf("child fired %d times (%v), want %d", len(childTicks), childTicks, len(want))
	}
	for i := range want {
		if childTicks[i] != want[i] {
			t.Errorf("child tick %d at %v, want %v", i, childTicks[i], want[i])
		}
	}
}

// Colliding tickers must all fire exactly once per shared instant even
// when one of them registers a new high-priority ticker mid-dispatch.
func TestEngineAddDuringRunNoDoubleFire(t *testing.T) {
	e := NewEngine()
	counts := map[string]int{}
	mk := func(name string, prio int) *Ticker {
		return &Ticker{Name: name, Period: Millisecond, Priority: prio, Fn: func(Time) { counts[name]++ }}
	}
	e.Add(&Ticker{Name: "spawner", Period: Millisecond, Priority: 0, Fn: func(Time) {
		counts["spawner"]++
		if counts["spawner"] == 1 {
			e.Add(mk("injected", -50))
		}
	}})
	e.Add(mk("b", 5))
	e.Add(mk("c", 9))
	e.Run(4 * Millisecond)
	for name, want := range map[string]int{"spawner": 4, "b": 4, "c": 4, "injected": 3} {
		if counts[name] != want {
			t.Errorf("%s fired %d times, want %d", name, counts[name], want)
		}
	}
}

func TestEngineRunContextCancel(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) { fired++ }})
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := 5 * ctxCheckEvery
	e.Add(&Ticker{Name: "trip", Period: Microsecond, Priority: 1, Fn: func(Time) {
		if fired == stopAt {
			cancel()
		}
	}})
	err := e.RunContext(ctx, Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Cancellation is honored within one check window.
	if fired > stopAt+ctxCheckEvery {
		t.Errorf("fired %d ticks after cancel at %d; check lag exceeds one window", fired, stopAt)
	}
	// The engine stops on a dispatched instant, so a later run resumes
	// without double-firing.
	before := fired
	if err := e.RunContext(context.Background(), 10*Microsecond); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fired != before+10 {
		t.Errorf("resume fired %d ticks, want 10", fired-before)
	}
}

func TestEngineRunContextPreCancelled(t *testing.T) {
	e := NewEngine()
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) { t.Fatal("ticker fired under a cancelled context") }})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx, Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestEngineStepBudget(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Add(&Ticker{Name: "runaway", Period: Picosecond, Fn: func(Time) { fired++ }})
	e.SetStepBudget(1000)
	err := e.RunContext(context.Background(), Second)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("RunContext = %v, want *BudgetError", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Error("BudgetError does not match ErrBudgetExceeded")
	}
	if fired != 1000 || be.Steps != 1000 || be.Budget != 1000 {
		t.Errorf("fired=%d Steps=%d Budget=%d, want 1000 each", fired, be.Steps, be.Budget)
	}
}

func TestEngineRunPanicsWithAbortWhenBound(t *testing.T) {
	e := NewEngine()
	e.Add(&Ticker{Name: "runaway", Period: Picosecond, Fn: func(Time) {}})
	e.SetStepBudget(10)
	defer func() {
		cause, ok := AbortCause(recover())
		if !ok {
			t.Fatal("Run did not panic with sim.Abort")
		}
		if !errors.Is(cause, ErrBudgetExceeded) {
			t.Fatalf("abort cause = %v, want ErrBudgetExceeded", cause)
		}
	}()
	e.Run(Second)
}

func TestEngineBindContext(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.Bind(ctx)
	e.Add(&Ticker{Name: "spin", Period: Microsecond, Fn: func(Time) {}})
	defer func() {
		cause, ok := AbortCause(recover())
		if !ok || !errors.Is(cause, context.Canceled) {
			t.Fatalf("Run under a cancelled bound context: recovered %v", cause)
		}
	}()
	e.Run(Second)
}

// --- pause / resume (skip-ahead support) -------------------------------

func TestEnginePauseStopsFiring(t *testing.T) {
	e := NewEngine()
	fired := 0
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(Time) { fired++ }}
	e.Add(tk)
	e.Run(25 * Millisecond) // fires at 10, 20
	e.Pause(tk)
	if !tk.Paused() {
		t.Fatal("ticker not marked paused")
	}
	e.Run(100 * Millisecond)
	if fired != 2 {
		t.Fatalf("paused ticker fired: %d ticks, want 2", fired)
	}
	if _, ok := e.NextDeadline(); ok {
		t.Error("NextDeadline reports a deadline with the only ticker paused")
	}
}

// Resume must land the first post-resume tick on the ticker's original
// grid — the earliest multiple of Period strictly after now — no matter
// how long it sat out or where in a period the resume happens.
func TestEnginePauseResumeKeepsGrid(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(now Time) { ticks = append(ticks, now) }}
	e.Add(tk)
	e.Run(25 * Millisecond) // 10, 20
	e.Pause(tk)
	e.Run(52 * Millisecond) // now = 77ms, mid-period
	e.Resume(tk)
	e.Run(25 * Millisecond) // window (77, 102]
	want := []Time{10 * Millisecond, 20 * Millisecond, 80 * Millisecond, 90 * Millisecond, 100 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v (grid lost)", i, ticks[i], want[i])
		}
	}
}

// Resuming exactly on a grid boundary must schedule the next tick one
// full period later: a tick at exactly `now` would already have fired in
// stepped mode before any external caller observed the engine.
func TestEngineResumeOnBoundaryExcludesNow(t *testing.T) {
	e := NewEngine()
	fired := 0
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(Time) { fired++ }}
	e.Add(tk)
	e.Run(10 * Millisecond) // fires at 10
	e.Pause(tk)
	e.Run(30 * Millisecond) // now = 40ms, a grid point
	e.Resume(tk)
	e.Run(10 * Millisecond)
	if fired != 2 { // 10ms and 50ms; nothing at 40ms
		t.Fatalf("fired %d ticks, want 2", fired)
	}
}

// Pause immediately followed by Resume before the pending deadline must
// not double-schedule the ticker.
func TestEnginePauseResumeNoDoubleFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(Time) { fired++ }}
	e.Add(tk)
	e.Run(5 * Millisecond)
	e.Pause(tk)
	e.Resume(tk)
	e.Resume(tk) // double resume is a no-op
	e.Run(10 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d ticks in (5ms, 15ms], want exactly 1 (at 10ms)", fired)
	}
}

// A ticker that pauses itself from its own Fn — the machine's quantum
// self-de-arm path — fires that tick, then drops off the schedule.
func TestEnginePauseSelfDuringTick(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tk *Ticker
	tk = &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(Time) {
		fired++
		if fired == 3 {
			e.Pause(tk)
		}
	}}
	e.Add(tk)
	e.Run(100 * Millisecond)
	if fired != 3 {
		t.Fatalf("fired %d ticks, want 3 (self-pause at the third)", fired)
	}
	e.Resume(tk)
	e.Run(10 * Millisecond) // (100, 110]: grid tick at 110
	if fired != 4 {
		t.Fatalf("post-resume fired %d ticks total, want 4", fired)
	}
}

// Pausing a same-instant cohort member that has not fired yet retracts
// its tick for the instant; resuming it from within the same instant
// reinstates it exactly once at the next grid point.
func TestEnginePauseOtherCohortMember(t *testing.T) {
	e := NewEngine()
	var order []string
	var victim *Ticker
	victim = &Ticker{Name: "victim", Period: Millisecond, Priority: 10, Fn: func(Time) { order = append(order, "victim") }}
	first := true
	e.Add(&Ticker{Name: "pauser", Period: Millisecond, Priority: 0, Fn: func(Time) {
		order = append(order, "pauser")
		if first {
			first = false
			e.Pause(victim)
		}
	}})
	e.Add(victim)
	e.Run(2 * Millisecond)
	// Instant 1ms: pauser fires, victim's tick is retracted. Instant 2ms:
	// victim is paused and absent.
	want := []string{"pauser", "pauser"}
	if len(order) != len(want) || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
	e.Resume(victim)
	e.Run(Millisecond)
	if len(order) != 4 || order[2] != "pauser" || order[3] != "victim" {
		t.Fatalf("post-resume order = %v, want [... pauser victim]", order)
	}
}

// Resume called from inside another ticker's Fn (the Spawn-during-a-tick
// wake path) joins the schedule once the instant completes, like Add.
func TestEngineResumeDuringDispatch(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(now Time) { ticks = append(ticks, now) }}
	e.Add(tk)
	e.Run(15 * Millisecond) // fires at 10
	e.Pause(tk)
	resumed := false
	e.Add(&Ticker{Name: "waker", Period: 7 * Millisecond, Fn: func(Time) {
		if !resumed {
			resumed = true
			e.Resume(tk)
		}
	}})
	// Waker registered at 15ms, first tick 22ms → resume at 22ms; q's
	// grid point after 22ms is 30ms.
	e.Run(30 * Millisecond)
	want := []Time{10 * Millisecond, 30 * Millisecond, 40 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

// A ticker paused from inside its own tick and resumed later in the same
// instant (pause/resume collapse to a no-op) keeps firing normally.
func TestEnginePauseResumeSameInstant(t *testing.T) {
	e := NewEngine()
	fired := 0
	var tk *Ticker
	tk = &Ticker{Name: "q", Period: 10 * Millisecond, Priority: 0, Fn: func(Time) { fired++; e.Pause(tk) }}
	e.Add(tk)
	e.Add(&Ticker{Name: "waker", Period: 10 * Millisecond, Priority: 5, Fn: func(Time) { e.Resume(tk) }})
	e.Run(30 * Millisecond)
	if fired != 3 {
		t.Fatalf("fired %d ticks, want 3 (pause+resume within each instant)", fired)
	}
}

// Pausing a ticker that was Added during the current instant must pull it
// from the pending list before it ever reaches the heap.
func TestEnginePausePendingAdd(t *testing.T) {
	e := NewEngine()
	fired := 0
	var child *Ticker
	child = &Ticker{Name: "child", Period: Millisecond, Fn: func(Time) { fired++ }}
	once := false
	e.Add(&Ticker{Name: "parent", Period: Millisecond, Fn: func(Time) {
		if !once {
			once = true
			e.Add(child)
			e.Pause(child)
		}
	}})
	e.Run(5 * Millisecond)
	if fired != 0 {
		t.Fatalf("paused pending child fired %d times, want 0", fired)
	}
}

// Re-Adding a paused ticker (the machine Reset path) clears the pause.
func TestEngineAddClearsPause(t *testing.T) {
	e := NewEngine()
	fired := 0
	tk := &Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(Time) { fired++ }}
	e.Add(tk)
	e.Pause(tk)
	e.Reset()
	e.Add(tk)
	if tk.Paused() {
		t.Fatal("Add left the ticker paused")
	}
	e.Run(10 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d ticks after re-Add, want 1", fired)
	}
}

// NextDeadline surfaces the heap top; a paused ticker must not hold it.
func TestEngineNextDeadline(t *testing.T) {
	e := NewEngine()
	fast := &Ticker{Name: "fast", Period: 3 * Millisecond, Fn: func(Time) {}}
	slow := &Ticker{Name: "slow", Period: 10 * Millisecond, Fn: func(Time) {}}
	e.Add(fast)
	e.Add(slow)
	if d, ok := e.NextDeadline(); !ok || d != 3*Millisecond {
		t.Fatalf("NextDeadline = %v, %v; want 3ms, true", d, ok)
	}
	e.Pause(fast)
	if d, ok := e.NextDeadline(); !ok || d != 10*Millisecond {
		t.Fatalf("NextDeadline after pause = %v, %v; want 10ms, true", d, ok)
	}
}

// RunUntil landing between deadlines leaves now at the requested instant
// and the next run picks up the schedule without drift.
func TestEngineRunUntilBetweenDeadlines(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.Add(&Ticker{Name: "q", Period: 10 * Millisecond, Fn: func(now Time) { ticks = append(ticks, now) }})
	e.RunUntil(25 * Millisecond)
	if e.Now() != 25*Millisecond {
		t.Fatalf("Now() = %v, want 25ms", e.Now())
	}
	e.RunUntil(41 * Millisecond)
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond, 40 * Millisecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	// Only due ticks cost steps: the window (41ms, 10s] holds the grid
	// points 50ms..10000ms, i.e. 996 of them.
	steps := e.Steps()
	e.RunUntil(10 * Second)
	if e.Steps() != steps+996 {
		t.Fatalf("Steps() = %d after long window, want %d", e.Steps(), steps+996)
	}
}

// The step budget counts fired ticks only: jumping a long idle window is
// O(due events), so a budget that a stepped engine would blow through
// survives a skip-ahead run of the same span.
func TestEngineBudgetCountsFiredTicksOnly(t *testing.T) {
	e := NewEngine()
	e.Add(&Ticker{Name: "slow", Period: 100 * Millisecond, Fn: func(Time) {}})
	e.SetStepBudget(50)
	if err := e.RunContext(context.Background(), 4*Second); err != nil {
		t.Fatalf("RunContext = %v; 40 fired ticks must fit a budget of 50", err)
	}
	if e.Steps() != 40 {
		t.Fatalf("Steps() = %d, want 40", e.Steps())
	}
}
