package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		d    Time
		ms   float64
		name string
	}{
		{10 * Millisecond, 10, "10ms"},
		{Second, 1000, "1s"},
		{200 * Microsecond, 0.2, "200us"},
	}
	for _, c := range cases {
		if got := c.d.Milliseconds(); got != c.ms {
			t.Errorf("%s: Milliseconds() = %v, want %v", c.name, got, c.ms)
		}
	}
	if Second.Seconds() != 1 {
		t.Errorf("Second.Seconds() = %v", Second.Seconds())
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		0:                      "0s",
		38 * Millisecond:       "38ms",
		1500 * Microsecond:     "1.5ms",
		200 * Microsecond:      "200us",
		3 * Nanosecond:         "3ns",
		2 * Second:             "2s",
		10*Second + Nanosecond: "10000.000001ms",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(d), got, want)
		}
	}
}

func TestFreqBasics(t *testing.T) {
	if got := Freq(24).GHz(); got != 2.4 {
		t.Errorf("Freq(24).GHz() = %v, want 2.4", got)
	}
	if got := Freq(26).String(); got != "2.6GHz" {
		t.Errorf("String() = %q", got)
	}
	// One cycle at 2.6 GHz is ~385 ps.
	ct := Freq(26).CycleTime()
	if ct < 384 || ct > 386 {
		t.Errorf("CycleTime at 2.6GHz = %dps, want ~385ps", int64(ct))
	}
}

func TestFreqCyclesRoundTrip(t *testing.T) {
	f := Freq(24)
	d := 10 * Millisecond
	cycles := f.CyclesIn(d)
	if want := 24e6; math.Abs(cycles-want) > 1 {
		t.Errorf("CyclesIn(10ms) at 2.4GHz = %v, want %v", cycles, want)
	}
	back := f.TimeFor(cycles)
	if diff := back - d; diff < -Nanosecond || diff > Nanosecond {
		t.Errorf("TimeFor(CyclesIn(d)) = %v, want %v", back, d)
	}
}

func TestFreqClamp(t *testing.T) {
	if got := Freq(30).Clamp(12, 24); got != 24 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Freq(5).Clamp(12, 24); got != 12 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Freq(20).Clamp(12, 24); got != 20 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestFreqCycleTimePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CycleTime(0) did not panic")
		}
	}()
	Freq(0).CycleTime()
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded streams diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	a := r.Split(1)
	b := r.Split(2)
	if a.Uint64() == b.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestRandDistributions(t *testing.T) {
	r := NewRand(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Norm(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("Norm mean = %v, want ~10", mean)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.25) > 0.02 {
		t.Errorf("Bool(0.25) rate = %v", p)
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(2)
	if r.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
	for i := 0; i < 1000; i++ {
		j := r.Jitter(Millisecond)
		if j < 0 || j >= Millisecond {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("amazon.com") != HashString("amazon.com") {
		t.Error("HashString not stable")
	}
	if HashString("a") == HashString("b") {
		t.Error("trivial HashString collision")
	}
}

func TestHashStringQuick(t *testing.T) {
	// Property: equal inputs hash equal; prepending a byte changes it.
	f := func(s string, b byte) bool {
		h := HashString(s)
		return h == HashString(s) && HashString(string(b)+s) != h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineTickOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Add(&Ticker{Name: "b", Period: 10 * Millisecond, Priority: 10, Fn: func(Time) { order = append(order, "b") }})
	e.Add(&Ticker{Name: "a", Period: 5 * Millisecond, Priority: 0, Fn: func(Time) { order = append(order, "a") }})
	e.Run(10 * Millisecond)
	// a at 5ms, then at 10ms a fires before b (lower priority value first).
	want := []string{"a", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestEngineTimeAdvances(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Add(&Ticker{Name: "t", Period: 3 * Millisecond, Fn: func(now Time) { at = append(at, now) }})
	e.Run(10 * Millisecond)
	if len(at) != 3 {
		t.Fatalf("fired %d times, want 3", len(at))
	}
	for i, want := range []Time{3 * Millisecond, 6 * Millisecond, 9 * Millisecond} {
		if at[i] != want {
			t.Errorf("tick %d at %v, want %v", i, at[i], want)
		}
	}
	if e.Now() != 10*Millisecond {
		t.Errorf("Now() = %v, want 10ms", e.Now())
	}
}

func TestEngineRunResumes(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Add(&Ticker{Name: "t", Period: 4 * Millisecond, Fn: func(Time) { n++ }})
	e.Run(6 * Millisecond) // tick at 4
	e.Run(6 * Millisecond) // ticks at 8, 12
	if n != 3 {
		t.Errorf("fired %d times across two Runs, want 3", n)
	}
}

func TestEnginePanicsOnBadTicker(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	e.Add(&Ticker{Name: "bad", Period: 0, Fn: func(Time) {}})
}
