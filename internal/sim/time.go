// Package sim provides the deterministic simulation substrate used by every
// other package in this repository: a virtual time base, a seeded
// pseudo-random number source, and a small multi-rate tick engine.
//
// All simulated behaviour is a pure function of the configuration and the
// seed; there is no dependency on the wall clock, so every experiment in the
// paper reproduction regenerates bit-identically.
package sim

import "fmt"

// Time is a point in (or span of) virtual time, in picoseconds.
//
// Picosecond resolution is needed because a single core cycle at 2.6 GHz is
// ~385 ps; an int64 of picoseconds still spans over 100 days of virtual
// time, far beyond any experiment in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "38ms" or "1.5us".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", int64(t/Second))
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%gms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%gus", t.Microseconds())
	default:
		return fmt.Sprintf("%gns", t.Nanoseconds())
	}
}

// Freq is a clock frequency in units of 100 MHz, matching the granularity of
// Intel P-states and uncore operating points (the paper's §2.2 and §3.3).
// For example, Freq(24) is 2.4 GHz.
type Freq int

// Frequencies that recur throughout the paper's evaluation platform
// (Table 1).
const (
	// UncoreMinDefault is the default minimum uncore frequency (1.2 GHz).
	UncoreMinDefault Freq = 12
	// UncoreIdleHigh is the upper idle operating point; with no uncore
	// demand the frequency dithers between this and one step below
	// (§3.1: "it alternates between 1.4 GHz and 1.5 GHz").
	UncoreIdleHigh Freq = 15
	// UncoreMaxDefault is the default maximum uncore frequency (2.4 GHz).
	UncoreMaxDefault Freq = 24
	// CoreBase is the core base frequency of the Xeon Gold 6142 (2.6 GHz).
	CoreBase Freq = 26
)

// FreqStep is one uncore/core operating-point increment (100 MHz).
const FreqStep Freq = 1

// GHz returns the frequency in GHz.
func (f Freq) GHz() float64 { return float64(f) / 10 }

// String formats the frequency in GHz, e.g. "2.4GHz".
func (f Freq) String() string { return fmt.Sprintf("%gGHz", f.GHz()) }

// CycleTime returns the duration of one clock cycle at f.
func (f Freq) CycleTime() Time {
	if f <= 0 {
		panic("sim: non-positive frequency has no cycle time")
	}
	return Time(float64(Second) / (f.GHz() * 1e9))
}

// CyclesIn returns how many cycles at frequency f elapse during d.
func (f Freq) CyclesIn(d Time) float64 {
	return d.Seconds() * f.GHz() * 1e9
}

// TimeFor returns the duration of n cycles at frequency f.
func (f Freq) TimeFor(cycles float64) Time {
	if f <= 0 {
		panic("sim: non-positive frequency cannot run cycles")
	}
	return Time(cycles / (f.GHz() * 1e9) * float64(Second))
}

// Clamp limits f to [lo, hi].
func (f Freq) Clamp(lo, hi Freq) Freq {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}
