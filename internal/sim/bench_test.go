package sim_test

// Benchmark for the engine dispatch loop. The heap scheduler's contract
// is zero allocations per tick in steady state; scripts/bench.sh gates on
// it.

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkEngineDispatch times one engine instant with a realistic
// ticker population: many same-period tickers (threads) plus a slower
// one (the governor epoch), mirroring the machine's schedule.
func BenchmarkEngineDispatch(b *testing.B) {
	e := sim.NewEngine()
	period := 200 * sim.Microsecond
	for i := 0; i < 16; i++ {
		e.Add(&sim.Ticker{Name: "thread", Period: period, Priority: 0, Fn: func(sim.Time) {}})
	}
	e.Add(&sim.Ticker{Name: "epoch", Period: 50 * period, Priority: 10, Fn: func(sim.Time) {}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(period)
	}
}
