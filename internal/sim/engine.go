package sim

import (
	"context"
	"errors"
	"fmt"
)

// Ticker is a periodic callback registered with an Engine. Fn is invoked
// with the virtual time of the tick; ticks are strictly ordered, and tickers
// that collide on the same instant fire in priority order, then in
// registration order.
type Ticker struct {
	// Name identifies the ticker in diagnostics.
	Name string
	// Period is the spacing of ticks; it must be positive.
	Period Time
	// Phase delays the first tick after the engine start.
	Phase Time
	// Priority orders tickers that fire at the same instant; lower runs
	// first. Workload quanta run before governor epochs so that an epoch
	// decision sees the activity of the quanta that precede it.
	Priority int
	// Fn is the tick body. now is the tick instant.
	Fn func(now Time)

	// next is the ticker's pending deadline; seq is its registration
	// order, the tie-breaker that keeps same-priority cohorts firing in
	// Add order (the contract the old sorted-slice dispatcher gave).
	next Time
	seq  uint64
	// paused marks a ticker de-scheduled by Engine.Pause. A paused ticker
	// keeps its deadline grid (next is the deadline that was pending when
	// it paused) so Resume can re-arm on the original phase.
	paused bool
}

// Paused reports whether the ticker is currently de-scheduled by
// Engine.Pause.
func (t *Ticker) Paused() bool { return t.paused }

// ErrBudgetExceeded is returned (wrapped in a *BudgetError) by RunContext
// when the engine's step watchdog trips. A runaway simulation — a ticker
// misconfigured to a tiny period, or a run window far longer than intended
// — otherwise spins for an unbounded number of ticks; the budget converts
// that hang into a typed, inspectable error.
var ErrBudgetExceeded = errors.New("sim: engine step budget exceeded")

// BudgetError reports a tripped step watchdog. It matches
// ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	// Steps is the lifetime tick count at the moment the budget tripped;
	// Budget is the configured limit.
	Steps, Budget int64
	// Now is the virtual time the engine had reached.
	Now Time
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: engine step budget exceeded (%d ticks fired, budget %d, at t=%v)", e.Steps, e.Budget, e.Now)
}

// Is makes errors.Is(err, ErrBudgetExceeded) true for *BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Abort is the panic value Run uses when the engine's bound context is
// cancelled or its step budget trips mid-run. Run predates cancellation
// and keeps its error-free signature for the many simulation call sites
// that cannot fail; a supervisor that needs the typed cause recovers the
// panic and unwraps it with AbortCause.
type Abort struct{ Err error }

func (a Abort) Error() string { return "sim: run aborted: " + a.Err.Error() }

// AbortCause extracts the abort error from a recovered panic value. It
// returns (nil, false) when r is not an engine abort.
func AbortCause(r any) (error, bool) {
	if a, ok := r.(Abort); ok {
		return a.Err, true
	}
	return nil, false
}

// ctxCheckEvery is how many ticks RunContext fires between context
// checks. Cancellation is therefore honored within this many engine
// steps of the deadline — a bounded, documented lag, chosen so the
// atomic load on the context does not show up in the hot loop.
const ctxCheckEvery = 64

// Engine drives virtual time forward through a set of periodic tickers.
// Tickers live in an indexed min-heap ordered by (deadline, priority,
// registration order): finding the next instant is O(1) and dispatching a
// same-instant cohort pops only the tickers due, instead of re-walking the
// whole set per instant. The dispatch loop allocates nothing in steady
// state — the heap and the cohort scratch are reused across instants.
type Engine struct {
	now Time

	// heap is the deadline min-heap; cohort is the reused scratch that
	// holds the tickers popped for the instant being dispatched.
	heap   []*Ticker
	cohort []*Ticker
	seq    uint64

	// firing marks that the engine is inside one instant's dispatch
	// loop; Add defers insertions to pending until the instant
	// completes so a mid-dispatch registration cannot join (or reorder)
	// the cohort being fired.
	firing  bool
	pending []*Ticker

	// ctx is the bound context consulted by Run; nil means Background.
	ctx context.Context
	// steps counts ticks fired over the engine's lifetime; budget (when
	// positive) is the watchdog limit on steps.
	steps  int64
	budget int64
}

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Reset returns the engine to its initial state — virtual time zero, no
// tickers, no bound context, watchdog disarmed — while keeping the heap
// and cohort backing arrays for reuse. A reset engine is indistinguishable
// from NewEngine() to its tickers: registration sequence numbers restart
// at zero, so re-Adding tickers in construction order reproduces the
// original firing order exactly.
func (e *Engine) Reset() {
	for i := range e.heap {
		e.heap[i] = nil
	}
	e.heap = e.heap[:0]
	for i := range e.cohort {
		e.cohort[i] = nil
	}
	e.cohort = e.cohort[:0]
	for i := range e.pending {
		e.pending[i] = nil
	}
	e.pending = e.pending[:0]
	e.now = 0
	e.seq = 0
	e.steps = 0
	e.firing = false
	e.ctx = nil
	e.budget = 0
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of ticks fired over the engine's lifetime.
func (e *Engine) Steps() int64 { return e.steps }

// Bind installs a context consulted by Run: when ctx is cancelled (or the
// step budget trips) mid-run, Run panics with an Abort carrying the
// cause. Binding lets a supervisor cut short deeply nested simulation
// code that calls Run through error-free interfaces; code that can return
// errors should prefer RunContext. A nil ctx unbinds.
func (e *Engine) Bind(ctx context.Context) { e.ctx = ctx }

// SetStepBudget arms the watchdog: once the lifetime tick count reaches
// budget, RunContext returns a *BudgetError (and Run panics with it,
// wrapped in an Abort). A non-positive budget disarms the watchdog.
func (e *Engine) SetStepBudget(budget int64) { e.budget = budget }

// Add registers a ticker. It panics on a non-positive period, because a
// zero-period ticker would stall virtual time.
//
// Contract for mid-run additions: a ticker added from inside another
// ticker's Fn joins the schedule once the current instant's dispatch
// completes — it can never fire at the instant that registered it — and
// its first tick is at now + Phase + Period, where now is the instant of
// the registering tick.
func (e *Engine) Add(t *Ticker) {
	if t.Period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q has non-positive period %v", t.Name, t.Period))
	}
	t.next = e.now + t.Phase + t.Period
	t.seq = e.seq
	e.seq++
	t.paused = false
	if e.firing {
		e.pending = append(e.pending, t)
		return
	}
	e.push(t)
}

// Pause de-schedules t: it stops firing until Resume (or a fresh Add)
// re-arms it. The ticker keeps the deadline that was pending when it
// paused, so a later Resume re-arms on the original grid — quantum
// tickers stay aligned to multiples of their period no matter how long
// they sat out. Pausing a ticker the engine does not hold (never added,
// already paused) is a no-op. Pausing from inside the ticker's own Fn is
// the supported self-de-arm path: ticks already committed to the current
// instant still fire for other tickers, and t simply is not re-scheduled.
// Pausing a same-instant cohort member that has not fired yet retracts
// its tick for this instant too.
func (e *Engine) Pause(t *Ticker) {
	if t.paused {
		return
	}
	t.paused = true
	e.removeFromHeap(t)
	e.removeFromPending(t)
}

// Resume re-arms a paused ticker. The first post-resume tick lands on
// the earliest grid point strictly after now, where the grid is the
// ticker's original deadline sequence (next + k*Period): a strictly-after
// deadline matches stepped semantics, because a tick at exactly `now`
// would already have fired before any external caller could observe the
// engine at that instant. Resuming an unpaused ticker is a no-op.
// Resuming from inside a tick joins the schedule once the current
// instant completes, mirroring the Add contract.
func (e *Engine) Resume(t *Ticker) {
	if !t.paused {
		return
	}
	t.paused = false
	if t.next <= e.now {
		missed := (e.now - t.next) / t.Period
		t.next += (missed + 1) * t.Period
	}
	if e.firing {
		// If t is in the cohort being dispatched (paused and resumed
		// within one instant) the re-push loop re-inserts it; appending
		// here too would double-schedule it.
		for _, c := range e.cohort {
			if c == t {
				return
			}
		}
		e.pending = append(e.pending, t)
		return
	}
	e.push(t)
}

// NextDeadline returns the earliest pending deadline and true, or zero
// and false when nothing is scheduled. During a dispatch it reflects only
// tickers not in the instant being fired.
func (e *Engine) NextDeadline() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].next, true
}

// removeFromHeap deletes t from the deadline heap if present. Engines
// hold a handful of tickers, so the linear scan for the index is cheaper
// than maintaining per-ticker heap indices on every sift.
func (e *Engine) removeFromHeap(t *Ticker) {
	h := e.heap
	for i, c := range h {
		if c != t {
			continue
		}
		last := len(h) - 1
		h[i] = h[last]
		h[last] = nil
		e.heap = h[:last]
		if i < last {
			e.siftUp(i)
			e.siftDown(i)
		}
		return
	}
}

// removeFromPending deletes t from the deferred-insertion list if
// present, preserving the order of the survivors.
func (e *Engine) removeFromPending(t *Ticker) {
	for i, c := range e.pending {
		if c != t {
			continue
		}
		copy(e.pending[i:], e.pending[i+1:])
		last := len(e.pending) - 1
		e.pending[last] = nil
		e.pending = e.pending[:last]
		return
	}
}

// before orders the heap: earliest deadline first, ties broken by
// priority then registration order — exactly the firing order of the old
// priority-sorted linear dispatcher.
func before(a, b *Ticker) bool {
	if a.next != b.next {
		return a.next < b.next
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

// push inserts t into the deadline heap.
func (e *Engine) push(t *Ticker) {
	e.heap = append(e.heap, t)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !before(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes and returns the heap minimum; the heap must be non-empty.
func (e *Engine) pop() *Ticker {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	e.heap = h[:last]
	e.siftDown(0)
	return top
}

// siftUp restores the heap property upward from index i after a
// removal placed an arbitrary element there.
func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !before(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && before(h[right], h[left]) {
			min = right
		}
		if !before(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Run advances virtual time by d, firing every tick that falls in the
// window (start, start+d]. Ticks at the same instant fire in priority
// order. If the engine has a bound context that is cancelled mid-run, or
// the step budget trips, Run panics with an Abort (see Bind).
func (e *Engine) Run(d Time) {
	if d < 0 {
		panic("sim: cannot run the engine backwards")
	}
	e.RunUntil(e.now + d)
}

// RunUntil advances virtual time to the absolute instant t, firing every
// tick in (now, t]. It is Run addressed by deadline instead of span — the
// fast path for callers that resume a simulation toward a known instant
// without recomputing deltas. Like Run it panics with an Abort when the
// bound context is cancelled or the budget trips.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic("sim: cannot run the engine backwards")
	}
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.runUntil(ctx, t); err != nil {
		panic(Abort{Err: err})
	}
}

// RunContext advances virtual time by d like Run, but checks ctx every
// ctxCheckEvery ticks and the step watchdog on every tick. On
// cancellation it returns ctx.Err(); on a tripped watchdog it returns a
// *BudgetError (matching ErrBudgetExceeded). Either way the engine stops
// at the last fully dispatched instant, so a subsequent run resumes
// without double-firing.
func (e *Engine) RunContext(ctx context.Context, d Time) error {
	if d < 0 {
		panic("sim: cannot run the engine backwards")
	}
	return e.runUntil(ctx, e.now+d)
}

// runUntil is the dispatch loop shared by Run, RunUntil, and RunContext.
// Each iteration reads the earliest deadline off the heap top, pops the
// same-instant cohort (already in priority order — no sorting, no scan of
// unrelated tickers), fires it, and re-pushes the advanced tickers.
func (e *Engine) runUntil(ctx context.Context, end Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sinceCheck := 0
	for len(e.heap) > 0 && e.heap[0].next <= end {
		at := e.heap[0].next
		e.now = at
		// Pop every ticker scheduled for this instant. Heap order hands
		// them over sorted by (priority, registration), so the cohort
		// fires in exactly the order the old sorted-slice walk produced.
		cohort := e.cohort[:0]
		for len(e.heap) > 0 && e.heap[0].next == at {
			cohort = append(cohort, e.pop())
		}
		// Publish the cohort so Pause/Resume called from inside a tick can
		// tell in-cohort tickers (re-inserted by the loop below) from
		// detached ones (which Resume must append to pending).
		e.cohort = cohort
		e.firing = true
		for _, t := range cohort {
			if t.paused {
				// Paused mid-instant by an earlier cohort member: the
				// tick is retracted before it fires.
				continue
			}
			t.Fn(at)
			t.next = at + t.Period
			e.steps++
			sinceCheck++
		}
		e.firing = false
		for i, t := range cohort {
			if !t.paused {
				e.push(t)
			}
			cohort[i] = nil
		}
		e.cohort = cohort[:0]
		if len(e.pending) > 0 {
			for i, t := range e.pending {
				e.push(t)
				e.pending[i] = nil
			}
			e.pending = e.pending[:0]
		}
		if e.budget > 0 && e.steps >= e.budget {
			return &BudgetError{Steps: e.steps, Budget: e.budget, Now: e.now}
		}
		if sinceCheck >= ctxCheckEvery {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	e.now = end
	return nil
}
