package sim

import (
	"fmt"
	"sort"
)

// Ticker is a periodic callback registered with an Engine. Fn is invoked
// with the virtual time of the tick; ticks are strictly ordered, and tickers
// that collide on the same instant fire in registration order (after
// sorting by priority).
type Ticker struct {
	// Name identifies the ticker in diagnostics.
	Name string
	// Period is the spacing of ticks; it must be positive.
	Period Time
	// Phase delays the first tick after the engine start.
	Phase Time
	// Priority orders tickers that fire at the same instant; lower runs
	// first. Workload quanta run before governor epochs so that an epoch
	// decision sees the activity of the quanta that precede it.
	Priority int
	// Fn is the tick body. now is the tick instant.
	Fn func(now Time)

	next Time
}

// Engine drives virtual time forward through a set of periodic tickers.
// It is intentionally minimal: the simulator has a small, fixed set of
// rates (workload quantum, governor epoch, trace samplers), so a full event
// queue would be overkill and harder to keep deterministic.
type Engine struct {
	now     Time
	tickers []*Ticker
}

// NewEngine returns an engine positioned at virtual time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Add registers a ticker. It panics on a non-positive period, because a
// zero-period ticker would stall virtual time.
func (e *Engine) Add(t *Ticker) {
	if t.Period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q has non-positive period %v", t.Name, t.Period))
	}
	t.next = e.now + t.Phase + t.Period
	e.tickers = append(e.tickers, t)
	sort.SliceStable(e.tickers, func(i, j int) bool {
		return e.tickers[i].Priority < e.tickers[j].Priority
	})
}

// Run advances virtual time by d, firing every tick that falls in the
// window (start, start+d]. Ticks at the same instant fire in priority
// order.
func (e *Engine) Run(d Time) {
	if d < 0 {
		panic("sim: cannot run the engine backwards")
	}
	end := e.now + d
	for {
		// Find the earliest pending tick within the window.
		var nxt *Ticker
		for _, t := range e.tickers {
			if t.next > end {
				continue
			}
			if nxt == nil || t.next < nxt.next {
				nxt = t
			}
		}
		if nxt == nil {
			break
		}
		at := nxt.next
		e.now = at
		// Fire every ticker scheduled for this instant, in priority
		// order (tickers are kept priority-sorted).
		for _, t := range e.tickers {
			if t.next == at {
				t.Fn(at)
				t.next = at + t.Period
			}
		}
	}
	e.now = end
}
