package bench

import (
	"fmt"
	"io"
	"sort"
)

// Default regression tolerances for Compare, shared by the CLI and CI:
// time is noisy across runners, so ns/op gets more headroom than
// bytes/op, which is deterministic for a deterministic simulator.
const (
	DefaultNsTolerancePct    = 15
	DefaultBytesTolerancePct = 10
)

// Delta is one case's baseline→current movement.
type Delta struct {
	Name      string  `json:"name"`
	BaseNs    float64 `json:"base_ns_per_op"`
	CurNs     float64 `json:"cur_ns_per_op"`
	NsPct     float64 `json:"ns_pct"`
	BaseBytes int64   `json:"base_bytes_per_op"`
	CurBytes  int64   `json:"cur_bytes_per_op"`
	BytesPct  float64 `json:"bytes_pct"`
	// Gated marks registry cases (Source "bench" on both sides), the
	// stable-named set the regression thresholds apply to; merged
	// `go test -bench` rows are reported but never fail a compare.
	Gated bool `json:"gated,omitempty"`
	// Extra diffs the case's custom b.ReportMetric values (e.g.
	// sweepd-complete-batched's complete-rpc/unit), keyed by metric name.
	// Custom metrics share the ns/op tolerance: they are
	// lower-is-better unit costs, and time-like noise bounds fit them.
	Extra map[string]ExtraDelta `json:"extra,omitempty"`
	// Regressed lists the threshold violations, empty when clean.
	Regressed []string `json:"regressed,omitempty"`
}

// ExtraDelta is one custom metric's baseline→current movement.
type ExtraDelta struct {
	Base float64 `json:"base"`
	Cur  float64 `json:"cur"`
	Pct  float64 `json:"pct"`
}

// CompareReport is the bench-compare delta artifact.
type CompareReport struct {
	BaseDate          string  `json:"base_date"`
	CurDate           string  `json:"cur_date"`
	NsTolerancePct    float64 `json:"ns_tolerance_pct"`
	BytesTolerancePct float64 `json:"bytes_tolerance_pct"`
	Deltas            []Delta `json:"deltas"`
	// MissingInCurrent lists gated baseline cases the current run lost —
	// a silently dropped benchmark must not pass the gate.
	MissingInCurrent []string `json:"missing_in_current,omitempty"`
	NewInCurrent     []string `json:"new_in_current,omitempty"`
	// NewResults carries the full measurements of the NewInCurrent cases,
	// so a compare against an older baseline still shows the absolute
	// numbers of freshly added benchmarks in the before/after table.
	NewResults []Result `json:"new_results,omitempty"`
}

// Regressions flattens every violation into "case: detail" strings.
func (r CompareReport) Regressions() []string {
	var out []string
	for _, d := range r.Deltas {
		for _, v := range d.Regressed {
			out = append(out, d.Name+": "+v)
		}
	}
	for _, name := range r.MissingInCurrent {
		out = append(out, name+": gated case missing from current run")
	}
	return out
}

// Compare diffs a current report against a baseline. Gated cases fail
// on ns/op above nsTolPct or bytes/op above bytesTolPct over baseline;
// pass 0 to use the defaults. Improvements never fail, and cases only
// present on one side are listed rather than gated — except gated
// baseline cases missing from a non-short current run, which count as
// regressions (a deleted benchmark is not a passing one). A short
// current run legitimately omits the long trial cases.
func Compare(base, cur Report, nsTolPct, bytesTolPct float64) CompareReport {
	if nsTolPct <= 0 {
		nsTolPct = DefaultNsTolerancePct
	}
	if bytesTolPct <= 0 {
		bytesTolPct = DefaultBytesTolerancePct
	}
	rep := CompareReport{
		BaseDate:          base.Date,
		CurDate:           cur.Date,
		NsTolerancePct:    nsTolPct,
		BytesTolerancePct: bytesTolPct,
	}

	registry := map[string]bool{}
	for _, c := range Cases() {
		registry[c.Name] = true
	}
	long := map[string]bool{}
	for _, c := range Cases() {
		if c.Long {
			long[c.Name] = true
		}
	}

	curByName := map[string]Result{}
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	seen := map[string]bool{}
	for _, b := range base.Results {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			if registry[b.Name] && b.Source == "bench" && !(cur.Short && long[b.Name]) {
				rep.MissingInCurrent = append(rep.MissingInCurrent, b.Name)
			}
			continue
		}
		d := Delta{
			Name:      b.Name,
			BaseNs:    b.NsPerOp,
			CurNs:     c.NsPerOp,
			NsPct:     pctChange(b.NsPerOp, c.NsPerOp),
			BaseBytes: b.BytesPerOp,
			CurBytes:  c.BytesPerOp,
			BytesPct:  pctChange(float64(b.BytesPerOp), float64(c.BytesPerOp)),
			Gated:     registry[b.Name] && b.Source == "bench" && c.Source == "bench",
		}
		if d.Gated {
			if d.NsPct > nsTolPct {
				d.Regressed = append(d.Regressed,
					fmt.Sprintf("ns/op %+.1f%% (%.0f -> %.0f, tolerance %.0f%%)", d.NsPct, d.BaseNs, d.CurNs, nsTolPct))
			}
			if d.BaseBytes == 0 && d.CurBytes > 0 {
				d.Regressed = append(d.Regressed,
					fmt.Sprintf("bytes/op 0 -> %d (was allocation-free)", d.CurBytes))
			} else if d.BytesPct > bytesTolPct {
				d.Regressed = append(d.Regressed,
					fmt.Sprintf("bytes/op %+.1f%% (%d -> %d, tolerance %.0f%%)", d.BytesPct, d.BaseBytes, d.CurBytes, bytesTolPct))
			}
		}
		// Custom metrics diff under the ns/op tolerance. A gated case that
		// stopped reporting a baseline metric fails: losing the measurement
		// is as silent as losing the benchmark.
		for _, k := range sortedKeys(b.Extra) {
			bv := b.Extra[k]
			cv, ok := c.Extra[k]
			if !ok {
				if d.Gated {
					d.Regressed = append(d.Regressed,
						fmt.Sprintf("%s: custom metric missing from current run (baseline %.3f)", k, bv))
				}
				continue
			}
			ed := ExtraDelta{Base: bv, Cur: cv, Pct: pctChange(bv, cv)}
			if d.Extra == nil {
				d.Extra = make(map[string]ExtraDelta, len(b.Extra))
			}
			d.Extra[k] = ed
			if d.Gated && ed.Pct > nsTolPct {
				d.Regressed = append(d.Regressed,
					fmt.Sprintf("%s %+.1f%% (%.3f -> %.3f, tolerance %.0f%%)", k, ed.Pct, bv, cv, nsTolPct))
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, c := range cur.Results {
		if !seen[c.Name] {
			rep.NewInCurrent = append(rep.NewInCurrent, c.Name)
			rep.NewResults = append(rep.NewResults, c)
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	sort.Strings(rep.MissingInCurrent)
	sort.Strings(rep.NewInCurrent)
	sort.Slice(rep.NewResults, func(i, j int) bool { return rep.NewResults[i].Name < rep.NewResults[j].Name })
	return rep
}

// sortedKeys returns m's keys in sorted order, so regression lists and
// rendered tables are deterministic across runs.
func sortedKeys(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pctChange returns the percent change from base to cur; a zero base
// with a nonzero cur has no finite percentage and reports 0 (the
// zero-base allocation case is gated separately in Compare).
func pctChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// Render writes the human-readable before/after table: absolute ns/op on
// both sides plus the percentage movements, custom-metric deltas
// indented under their case, and new cases with their absolute numbers.
func (r CompareReport) Render(w io.Writer) error {
	fmt.Fprintf(w, "bench compare: %s -> %s (tolerances: ns/op %.0f%%, bytes/op %.0f%%)\n",
		r.BaseDate, r.CurDate, r.NsTolerancePct, r.BytesTolerancePct)
	fmt.Fprintln(w, "case\tbase ns/op\tcur ns/op\tns/op\tbytes/op\tgated\tverdict")
	for _, d := range r.Deltas {
		verdict := "ok"
		if len(d.Regressed) > 0 {
			verdict = "REGRESSED"
		}
		gated := "-"
		if d.Gated {
			gated = "gate"
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%+.1f%%\t%+.1f%%\t%s\t%s\n",
			d.Name, d.BaseNs, d.CurNs, d.NsPct, d.BytesPct, gated, verdict)
		for _, k := range sortedExtraKeys(d.Extra) {
			ed := d.Extra[k]
			fmt.Fprintf(w, "  %s\t%.3f\t%.3f\t%+.1f%%\n", k, ed.Base, ed.Cur, ed.Pct)
		}
		for _, v := range d.Regressed {
			fmt.Fprintf(w, "  ! %s\n", v)
		}
	}
	for _, name := range r.MissingInCurrent {
		fmt.Fprintf(w, "! %s: gated case missing from current run\n", name)
	}
	for _, res := range r.NewResults {
		fmt.Fprintf(w, "+ %s: new in current run (%.0f ns/op, %d B/op, %d allocs/op",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.TrialsPerSec > 0 {
			fmt.Fprintf(w, ", %.2f trials/sec", res.TrialsPerSec)
		}
		fmt.Fprint(w, ")\n")
	}
	return nil
}

// sortedExtraKeys mirrors sortedKeys for ExtraDelta maps.
func sortedExtraKeys(m map[string]ExtraDelta) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
