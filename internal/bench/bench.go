// Package bench is the performance-regression harness behind `ufsim
// bench` and scripts/bench.sh. It runs a registry of micro-benchmarks
// covering the simulator's hot paths — engine dispatch, mesh hop
// accounting, cache accesses, whole quanta and epochs, and full quick
// experiment trials — through testing.Benchmark, normalizes the results
// (ns/op, B/op, allocs/op, trials/sec), and enforces the zero-allocation
// contract: tagged cases fail the run if their steady state allocates.
//
// The registry intentionally duplicates the shapes of the per-package
// benchmarks in *_test.go files (which `go test -bench` runs): test
// functions cannot be invoked from a shipped binary, and the binary-side
// registry is what CI gates on without compiling test packages.
package bench

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweepd"
	"repro/internal/system"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Case is one registered micro-benchmark.
type Case struct {
	// Name identifies the case in reports; stable across runs so
	// BENCH_*.json files diff cleanly.
	Name string
	// ZeroAlloc tags a case whose steady state must not allocate: Run
	// reports an error when it measures a nonzero allocs/op.
	ZeroAlloc bool
	// Trial marks a whole-experiment case whose throughput is also
	// reported as trials/sec.
	Trial bool
	// Long excludes the case from short runs (the CI gate), which only
	// need the allocation contract, not the multi-second trials.
	Long bool
	// Fn is the benchmark body; it must call b.ReportAllocs so the
	// allocation columns are populated.
	Fn func(b *testing.B)
}

// Result is one case's normalized measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TrialsPerSec is 1e9/NsPerOp for Trial cases, 0 otherwise.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
	// ZeroAlloc records whether the case was gated.
	ZeroAlloc bool `json:"zero_alloc,omitempty"`
	// Source is "bench" for registry cases and "go test" for results
	// merged from a parsed `go test -bench` run.
	Source string `json:"source,omitempty"`
	// Extra carries the case's custom b.ReportMetric values (e.g.
	// sweepd-complete-batched's completion round trips per unit).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	// Date is the run date (YYYY-MM-DD), supplied by the caller.
	Date string `json:"date"`
	// Short records whether long cases were skipped.
	Short bool `json:"short"`
	// Results holds every measurement, registry cases first.
	Results []Result `json:"results"`
}

// Config tunes a Run.
type Config struct {
	// Short skips Long cases.
	Short bool
	// Log, when non-nil, receives one progress line per case.
	Log io.Writer
}

// Cases returns the benchmark registry in run order.
func Cases() []Case {
	return []Case{
		{Name: "engine-dispatch", ZeroAlloc: true, Fn: benchEngineDispatch},
		{Name: "mesh-add-traffic", ZeroAlloc: true, Fn: benchMeshAddTraffic},
		{Name: "mesh-contention", ZeroAlloc: true, Fn: benchMeshContention},
		{Name: "cache-l1-hit", ZeroAlloc: true, Fn: benchCacheL1Hit},
		{Name: "cache-llc-hit", ZeroAlloc: true, Fn: benchCacheLLCHit},
		{Name: "cache-flush", ZeroAlloc: true, Fn: benchCacheFlush},
		{Name: "machine-quantum", ZeroAlloc: true, Fn: benchMachineQuantum},
		{Name: "machine-epoch", ZeroAlloc: true, Fn: benchMachineEpoch},
		{Name: "machine-epoch-idle", ZeroAlloc: true, Fn: benchMachineEpochIdle},
		{Name: "machine-epoch-idle-stepped", ZeroAlloc: true, Fn: benchMachineEpochIdleStepped},
		{Name: "trial-sync-quick", Trial: true, Long: true, Fn: benchTrialSync},
		{Name: "trial-settle-quick", Trial: true, Long: true, Fn: benchTrialSettle},
		{Name: "trial-rel-quick", Trial: true, Long: true, Fn: benchTrialRel},
		{Name: "sweepd-loopback", Long: true, Fn: benchSweepdLoopback},
		{Name: "sweepd-complete-batched", Long: true, Fn: benchSweepdCompleteBatched},
		{Name: "sweepd-journal-append-512", Long: true, Fn: benchSweepdJournalAppend},
		{Name: "sweepd-rewrite-512", Long: true, Fn: benchSweepdRewrite},
	}
}

// Run executes the registry and returns the normalized report (dated by
// the caller). The returned error aggregates zero-allocation violations;
// the report is valid even when err != nil, so callers can persist the
// failing numbers.
func Run(cfg Config) (Report, error) {
	var rep Report
	rep.Short = cfg.Short
	var violations []string
	for _, c := range Cases() {
		if cfg.Short && c.Long {
			continue
		}
		start := time.Now()
		res := testing.Benchmark(c.Fn)
		r := normalize(c, res)
		rep.Results = append(rep.Results, r)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "bench: %-18s %12.1f ns/op %6d B/op %4d allocs/op (%.1fs)\n",
				c.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, time.Since(start).Seconds())
		}
		if c.ZeroAlloc && r.AllocsPerOp > 0 {
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op (must be 0)", c.Name, r.AllocsPerOp))
		}
	}
	if len(violations) > 0 {
		return rep, fmt.Errorf("bench: zero-alloc contract violated: %v", violations)
	}
	return rep, nil
}

// normalize converts a testing.BenchmarkResult into a Result row.
func normalize(c Case, res testing.BenchmarkResult) Result {
	r := Result{
		Name:        c.Name,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		ZeroAlloc:   c.ZeroAlloc,
		Source:      "bench",
	}
	if c.Trial && r.NsPerOp > 0 {
		r.TrialsPerSec = 1e9 / r.NsPerOp
	}
	if len(res.Extra) > 0 {
		r.Extra = make(map[string]float64, len(res.Extra))
		for k, v := range res.Extra {
			r.Extra[k] = v
		}
	}
	return r
}

// --- case bodies -------------------------------------------------------

// benchEngineDispatch times one engine instant with the machine's ticker
// population shape: many same-period threads plus a slower governor.
func benchEngineDispatch(b *testing.B) {
	e := sim.NewEngine()
	period := 200 * sim.Microsecond
	for i := 0; i < 16; i++ {
		e.Add(&sim.Ticker{Name: "thread", Period: period, Fn: func(sim.Time) {}})
	}
	e.Add(&sim.Ticker{Name: "epoch", Period: 50 * period, Priority: 10, Fn: func(sim.Time) {}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(period)
	}
}

func benchMesh() (*mesh.Mesh, topo.Coord, topo.Coord) {
	die := topo.XeonGold6142Socket0
	m := mesh.New(die, mesh.KindMesh, mesh.DefaultParams())
	return m, die.CoreCoord(0), die.SliceCoord(die.NumSlices() - 1)
}

func benchMeshAddTraffic(b *testing.B) {
	m, src, dst := benchMesh()
	m.BeginQuantum(200*sim.Microsecond, sim.Freq(24))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddTraffic(0, src, dst, 1)
	}
}

func benchMeshContention(b *testing.B) {
	m, src, dst := benchMesh()
	m.BeginQuantum(200*sim.Microsecond, sim.Freq(24))
	m.AddTraffic(1, src, dst, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ContentionCycles(0, src, dst)
	}
}

func benchCacheL1Hit(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultGeometry(16))
	cc := h.NewCore()
	line := cache.Line(1 << 20)
	cc.Access(0, line)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Access(0, line)
	}
}

// benchCacheLLCHit rotates over more same-L2-set lines than the L2
// holds — the paper's eviction-list pattern, and the steady-state load of
// the sender and receiver loops.
func benchCacheLLCHit(b *testing.B) {
	geom := cache.DefaultGeometry(16)
	h := cache.NewHierarchy(geom)
	cc := h.NewCore()
	lines := make([]cache.Line, geom.L2Ways+4)
	for i := range lines {
		lines[i] = cache.Line(1<<20 | 5 | i*geom.L2Sets)
	}
	for r := 0; r < 2; r++ {
		for _, l := range lines {
			cc.Access(0, l)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Access(0, lines[i%len(lines)])
	}
}

func benchCacheFlush(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultGeometry(16))
	cc := h.NewCore()
	line := cache.Line(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Access(0, line)
		h.Flush(line)
	}
}

// busyMachine builds the mixed-load machine the machine-level cases
// advance: traffic threads, a stalling thread, and a measurement probe.
func busyMachine(b *testing.B) *system.Machine {
	m := system.New(system.DefaultConfig())
	for c := 0; c < 6; c++ {
		slice, ok := m.Socket(0).Die.SliceAtHops(c, 1)
		if !ok {
			slice, _ = m.Socket(0).Die.SliceAtHops(c, 0)
		}
		m.Spawn("bench-traffic", 0, c, 0, &workload.Traffic{Slice: slice})
	}
	slice, _ := m.Socket(0).Die.SliceAtHops(8, 0)
	m.Spawn("bench-stall", 0, 8, 0, &workload.Stalling{Slice: slice})
	lines, err := memsys.EvictionList(m.Socket(0).Hier, 0, memsys.NewAllocator(), 10, slice, 20)
	if err != nil {
		b.Fatal(err)
	}
	m.Spawn("bench-probe", 0, 9, 0, &workload.Measure{Lines: lines, PerQuantum: 20})
	return m
}

func benchMachineQuantum(b *testing.B) {
	m := busyMachine(b)
	q := m.Config().Quantum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(q)
	}
}

func benchMachineEpoch(b *testing.B) {
	m := busyMachine(b)
	e := m.Config().UFS.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(e)
	}
}

// benchMachineEpochIdle advances an inert machine by one governor epoch:
// the quantum ticker de-arms after the first empty quantum and the engine
// jumps straight between epoch deadlines, so the cost is one governor
// decision per epoch rather than 50 quantum walks. The -stepped partner
// below is the same machine with skip-ahead disabled; their ratio is the
// idle-elision win the skip-ahead tentpole claims (≥5×).
func benchMachineEpochIdle(b *testing.B)        { benchIdleEpoch(b, true) }
func benchMachineEpochIdleStepped(b *testing.B) { benchIdleEpoch(b, false) }

func benchIdleEpoch(b *testing.B, skip bool) {
	m := system.New(system.DefaultConfig())
	m.SetSkipAhead(skip)
	e := m.Config().UFS.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(e)
	}
}

// benchTrial runs one quick experiment trial per iteration; trials/sec
// over these cases is the harness's headline throughput number. Trials
// share a machine pool, as the runner's sweep workers do, so the numbers
// reflect the steady state of a long sweep rather than cold-start builds.
func benchTrial(b *testing.B, id string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	pool := &system.Pool{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(experiments.Options{Seed: 0x5eed + uint64(i), Quick: true, Machines: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTrialSync(b *testing.B) { benchTrial(b, "sync") }
func benchTrialRel(b *testing.B)  { benchTrial(b, "rel") }

// benchTrialSettle times the settle-dominated trial shape of the
// platform-characterization experiments (fig3/fig4 grid cells): a pooled
// machine idles through a 1.2 s settle window, then a 400 ms sampled
// window yields the median uncore frequency. Under skip-ahead the settle
// collapses to governor epochs — this is the trials/sec number the
// quantum-elision change is accountable for.
func benchTrialSettle(b *testing.B) {
	pool := &system.Pool{}
	cfg := system.DefaultConfig()
	var srt stats.Sorter
	var median float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = 0x5eed + uint64(i)
		m := pool.Get(cfg)
		m.Run(1200 * sim.Millisecond)
		srt.Reset()
		m.Engine().Add(&sim.Ticker{
			Name:     "sample-median",
			Period:   sim.Millisecond,
			Priority: 100,
			Fn:       func(sim.Time) { srt.Add(m.Socket(0).Uncore().GHz()) },
		})
		m.Run(400 * sim.Millisecond)
		median = srt.Median()
		pool.Put(m)
	}
	_ = median
}

// benchSweepdLoopback load-tests the distributed-sweep coordination
// path: one op is a whole 64-unit sweep pushed through the coordinator
// by four loopback workers with trivial unit bodies, so the number is
// pure protocol overhead — lease grants, heartbeat bookkeeping,
// completion merges, and state transitions — not experiment time.
func benchSweepdLoopback(b *testing.B) { benchSweepdFleet(b, false) }

// benchSweepdCompleteBatched is the same sweep with batched completion
// delivery: each lease round's outcomes ship as one CompleteBatch
// (one coordinator lock acquisition, one group-committed persist)
// instead of one Complete per unit. The delta against sweepd-loopback
// is what completion pipelining saves in coordinator round trips per
// completed unit.
func benchSweepdCompleteBatched(b *testing.B) { benchSweepdFleet(b, true) }

func benchSweepdFleet(b *testing.B, batch bool) {
	units := make([]sweepd.Unit, 64)
	for i := range units {
		units[i] = sweepd.Unit{
			ID: sweepd.UnitID(fmt.Sprintf("u%03d", i)), Experiment: "bench",
			Seed: uint64(i), Quick: true,
		}
	}
	run := func(ctx context.Context, u sweepd.Unit, progress func(string)) sweepd.UnitResult {
		progress("tick")
		return sweepd.UnitResult{OK: true, Result: "ok"}
	}
	var completeRPCs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sweepd.NewCoordinator(sweepd.CoordinatorConfig{}, units)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sweepd.FleetConfig{
			Workers: 4, Jobs: 4,
			NewRunner:      func(string) sweepd.UnitRunner { return run },
			BatchCompletes: batch,
			PollMax:        10 * time.Millisecond,
		}
		var gate *sweepd.Gate
		if batch {
			// A wide-open gate (nothing queues, nothing sheds) rides along
			// purely as the RPC counter: its complete-endpoint admissions
			// are exactly the completion round trips. The unbatched case
			// is 1/unit by construction, so the reported metric below is
			// the pipelining win.
			gate = sweepd.NewGate(sweepd.GateConfig{
				Default: sweepd.GateLimits{Inflight: 4096, Queue: 4096, QueueWait: time.Minute},
			})
			cfg.Gate = gate
		}
		sweepd.RunFleet(context.Background(), c, cfg)
		select {
		case <-c.Done():
		default:
			b.Fatal("sweep incomplete")
		}
		if gate != nil {
			completeRPCs += gate.Stats().Endpoints[sweepd.EndpointComplete].Admitted
		}
	}
	if batch {
		b.ReportMetric(float64(completeRPCs)/float64(b.N*len(units)), "complete-rpc/unit")
	}
}

// benchSweepdPersist times one persisted unit transition — lease plus
// completion merge — on a 512-unit coordinator backed by the in-memory
// crash-model filesystem (so the number is serialization and protocol,
// not platter latency). The journal variant appends one framed record
// per transition; the legacy variant rewrites the whole 512-entry state
// document. The gap between the two cases is the tentpole's O(units) →
// O(1) claim, measured.
func benchSweepdPersist(b *testing.B, legacy bool) {
	units := make([]sweepd.Unit, 512)
	for i := range units {
		units[i] = sweepd.Unit{
			ID: sweepd.UnitID(fmt.Sprintf("u%03d", i)), Experiment: "bench",
			Seed: uint64(i), Quick: true,
		}
	}
	newCoord := func() *sweepd.Coordinator {
		c, err := sweepd.NewCoordinator(sweepd.CoordinatorConfig{
			Clock:       sweepd.NewManualClock(time.Unix(0, 0)),
			LeaseTTL:    time.Hour,
			StateDir:    "state",
			FS:          faults.NewDiskFS(1),
			LegacyState: legacy,
			// Never compact mid-run: the journal case measures the pure
			// append path (compaction cost amortizes to ~zero at this
			// cadence anyway).
			SnapshotEvery: 1 << 30,
		}, units)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	c, idx := newCoord(), 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx == len(units)-1 {
			// Grid nearly exhausted: rebuild off the clock, leaving the
			// last unit pending so the end-of-sweep manifest write never
			// pollutes the per-transition number.
			b.StopTimer()
			c, idx = newCoord(), 0
			b.StartTimer()
		}
		resp := c.Lease(sweepd.LeaseRequest{Worker: "bench", Max: 1})
		if len(resp.Units) != 1 {
			b.Fatalf("lease refused at unit %d: %+v", idx, resp)
		}
		lu := resp.Units[0]
		c.Complete(sweepd.CompleteRequest{Worker: "bench", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true})
		idx++
	}
}

func benchSweepdJournalAppend(b *testing.B) { benchSweepdPersist(b, false) }
func benchSweepdRewrite(b *testing.B)       { benchSweepdPersist(b, true) }
