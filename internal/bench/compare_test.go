package bench

import (
	"strings"
	"testing"
)

func report(results ...Result) Report {
	return Report{Date: "2026-01-01", Results: results}
}

func TestCompareCleanAndRegressed(t *testing.T) {
	base := report(
		Result{Name: "machine-quantum", NsPerOp: 1000, BytesPerOp: 0, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 100 << 20, Source: "bench"},
		Result{Name: "BenchmarkSomething", NsPerOp: 50, Source: "go test"},
	)

	// Within tolerance: +10% ns on a 15% gate, bytes improved.
	cur := report(
		Result{Name: "machine-quantum", NsPerOp: 1100, BytesPerOp: 0, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1.05e9, BytesPerOp: 20 << 20, Source: "bench"},
		Result{Name: "BenchmarkSomething", NsPerOp: 500, Source: "go test"},
	)
	if regs := Compare(base, cur, 15, 10).Regressions(); len(regs) != 0 {
		t.Errorf("clean compare reported regressions: %v", regs)
	}

	// ns/op blown on one gated case; the un-gated go-test row may
	// regress arbitrarily without failing the gate.
	cur = report(
		Result{Name: "machine-quantum", NsPerOp: 1200, BytesPerOp: 0, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 100 << 20, Source: "bench"},
	)
	regs := Compare(base, cur, 15, 10).Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "machine-quantum") || !strings.Contains(regs[0], "ns/op") {
		t.Errorf("ns regression not caught: %v", regs)
	}

	// bytes/op blown: +20% on a 10% gate.
	cur = report(
		Result{Name: "machine-quantum", NsPerOp: 1000, BytesPerOp: 0, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 120 << 20, Source: "bench"},
	)
	regs = Compare(base, cur, 15, 10).Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "trial-sync-quick") || !strings.Contains(regs[0], "bytes/op") {
		t.Errorf("bytes regression not caught: %v", regs)
	}

	// A formerly allocation-free case that now allocates has no finite
	// percentage but must still fail.
	cur = report(
		Result{Name: "machine-quantum", NsPerOp: 1000, BytesPerOp: 64, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 100 << 20, Source: "bench"},
	)
	regs = Compare(base, cur, 15, 10).Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "allocation-free") {
		t.Errorf("zero-base allocation regression not caught: %v", regs)
	}
}

func TestCompareMissingAndShortRuns(t *testing.T) {
	base := report(
		Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 100 << 20, Source: "bench"},
	)

	// A full current run that silently dropped a gated case fails.
	cur := report(Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"})
	if regs := Compare(base, cur, 15, 10).Regressions(); len(regs) != 1 || !strings.Contains(regs[0], "trial-sync-quick") {
		t.Errorf("dropped gated case not caught: %v", regs)
	}

	// A -short current run legitimately omits the Long trial cases.
	cur.Short = true
	if regs := Compare(base, cur, 15, 10).Regressions(); len(regs) != 0 {
		t.Errorf("short run penalised for skipping long cases: %v", regs)
	}

	// New cases are reported, not gated.
	cur = report(
		Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"},
		Result{Name: "trial-sync-quick", NsPerOp: 1e9, BytesPerOp: 100 << 20, Source: "bench"},
		Result{Name: "brand-new-case", NsPerOp: 5, Source: "bench"},
	)
	rep := Compare(base, cur, 15, 10)
	if len(rep.Regressions()) != 0 {
		t.Errorf("new case treated as regression: %v", rep.Regressions())
	}
	if len(rep.NewInCurrent) != 1 || rep.NewInCurrent[0] != "brand-new-case" {
		t.Errorf("NewInCurrent = %v", rep.NewInCurrent)
	}
}

func TestCompareDefaultsAndRender(t *testing.T) {
	base := report(Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"})
	cur := report(Result{Name: "machine-quantum", NsPerOp: 1140, Source: "bench"})
	// +14% passes the default 15% ns tolerance (0 selects defaults).
	rep := Compare(base, cur, 0, 0)
	if rep.NsTolerancePct != DefaultNsTolerancePct || rep.BytesTolerancePct != DefaultBytesTolerancePct {
		t.Errorf("defaults not applied: %+v", rep)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("+14%% failed the default 15%% gate: %v", regs)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "machine-quantum") || !strings.Contains(sb.String(), "ok") {
		t.Errorf("render output missing expected rows:\n%s", sb.String())
	}
}

func TestCompareExtraMetrics(t *testing.T) {
	base := report(
		Result{Name: "sweepd-complete-batched", NsPerOp: 1000, Source: "bench",
			Extra: map[string]float64{"complete-rpc/unit": 0.25}},
	)

	// Within tolerance: +10% on the 15% ns gate.
	cur := report(
		Result{Name: "sweepd-complete-batched", NsPerOp: 1000, Source: "bench",
			Extra: map[string]float64{"complete-rpc/unit": 0.275}},
	)
	rep := Compare(base, cur, 15, 10)
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Errorf("extra within tolerance reported regressions: %v", regs)
	}
	d := rep.Deltas[0]
	ed, ok := d.Extra["complete-rpc/unit"]
	if !ok || ed.Base != 0.25 || ed.Cur != 0.275 {
		t.Fatalf("extra delta not recorded: %+v", d.Extra)
	}

	// Blown: +60% unit cost fails with the same threshold as ns/op.
	cur = report(
		Result{Name: "sweepd-complete-batched", NsPerOp: 1000, Source: "bench",
			Extra: map[string]float64{"complete-rpc/unit": 0.4}},
	)
	regs := Compare(base, cur, 15, 10).Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "complete-rpc/unit") {
		t.Errorf("extra regression not caught: %v", regs)
	}

	// A gated case that stopped reporting the metric fails too: losing
	// the measurement is as silent as losing the benchmark.
	cur = report(Result{Name: "sweepd-complete-batched", NsPerOp: 1000, Source: "bench"})
	regs = Compare(base, cur, 15, 10).Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Errorf("dropped extra metric not caught: %v", regs)
	}

	// Ungated rows (go test merges) may move or drop metrics freely.
	base = report(Result{Name: "BenchmarkX", NsPerOp: 50, Source: "go test",
		Extra: map[string]float64{"k": 1}})
	cur = report(Result{Name: "BenchmarkX", NsPerOp: 50, Source: "go test"})
	if regs := Compare(base, cur, 15, 10).Regressions(); len(regs) != 0 {
		t.Errorf("ungated extra drop penalised: %v", regs)
	}
}

func TestCompareNewCaseCarriesNumbers(t *testing.T) {
	base := report(Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"})
	cur := report(
		Result{Name: "machine-quantum", NsPerOp: 1000, Source: "bench"},
		Result{Name: "machine-epoch-idle", NsPerOp: 294, Source: "bench", ZeroAlloc: true},
		Result{Name: "trial-settle-quick", NsPerOp: 5e8, TrialsPerSec: 2, Source: "bench"},
	)
	rep := Compare(base, cur, 15, 10)
	if len(rep.NewResults) != 2 {
		t.Fatalf("NewResults = %+v, want 2 rows", rep.NewResults)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "machine-epoch-idle: new in current run (294 ns/op") {
		t.Errorf("render lacks new-case absolute numbers:\n%s", out)
	}
	if !strings.Contains(out, "2.00 trials/sec") {
		t.Errorf("render lacks new trial case trials/sec:\n%s", out)
	}
}
