package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseGoBench reads `go test -bench -benchmem` output and returns one
// Result per benchmark line, so scripts/bench.sh can fold the existing
// *_test.go suite into the same normalized BENCH_*.json as the registry
// cases. Lines that are not benchmark results (package headers, PASS/ok,
// experiment metrics) are skipped; a malformed benchmark line is an
// error, because silently dropping measurements would make a regression
// look like a rename.
func ParseGoBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("bench: parsing %q: %w", line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1234   567.8 ns/op   90 B/op   1 allocs/op   2.4 extra/unit
//
// keeping the name (with the GOMAXPROCS suffix trimmed) and the three
// standard columns; extra ReportMetric units are ignored.
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("want at least name, count, value, unit")
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Source: "go test"}
	// Columns after the iteration count come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, fmt.Errorf("no ns/op column")
	}
	return r, nil
}
