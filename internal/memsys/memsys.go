// Package memsys provides the address-set construction the paper's
// workloads rely on: eviction lists EV_j(i) — groups of cache lines that
// all map to L2 set i and LLC slice j (§3.1) — pointer-chase lists
// (Listing 2), and LLC set-conflict sets for the Prime+Probe family of
// baseline channels.
//
// An unprivileged attacker on real hardware finds such addresses by timing
// (§2.1: "the user can infer this mapping indirectly using timing
// information"); here the construction queries the same mapping the
// hierarchy itself uses for the builder's own domain, which is the
// information timing reveals.
package memsys

import (
	"fmt"

	"repro/internal/cache"
)

// Allocator hands out disjoint physical line ranges to actors, so that
// independently allocated buffers never alias. Two actors that explicitly
// share memory (the Flush+Reload prerequisite) pass the same lines around
// instead.
type Allocator struct {
	next cache.Line
}

// NewAllocator returns an allocator starting at a non-zero base, so that
// line 0 never appears (it is a handy sentinel in tests).
func NewAllocator() *Allocator { return &Allocator{next: 1 << 20} }

// Reserve returns n fresh, consecutively numbered lines. The returned
// slice is owned by the caller.
func (a *Allocator) Reserve(n int) []cache.Line {
	if n <= 0 {
		panic(fmt.Sprintf("memsys: cannot reserve %d lines", n))
	}
	out := make([]cache.Line, n)
	for i := range out {
		out[i] = a.next
		a.next++
	}
	return out
}

// ReserveOne returns the next fresh line without allocating. It is the
// candidate-scan primitive: set construction consumes one address per
// probe, and a per-probe slice would dominate the builder's allocations.
func (a *Allocator) ReserveOne() cache.Line {
	l := a.next
	a.next++
	return l
}

// searchLimit bounds address-space scans; generous relative to any list the
// experiments build.
const searchLimit = 1 << 26

// EvictionList returns m lines that map to L2 set l2set and LLC slice
// slice under domain d's view of hierarchy h. These are the EV_slice(l2set)
// lists of §3.1: accessed in a fixed rotation they always miss the L2 (the
// list is longer than the L2 associativity) and always hit the LLC.
// The allocator's address space is consumed; candidate lines that map
// elsewhere are skipped, as a real attacker's page pool would be.
func EvictionList(h *cache.Hierarchy, d cache.Domain, a *Allocator, l2set, slice, m int) ([]cache.Line, error) {
	return EvictionListInto(make([]cache.Line, 0, m), h, d, a, l2set, slice, m)
}

// EvictionListInto is EvictionList appending into dst, for builders that
// reuse a scratch buffer across constructions. The returned slice aliases
// dst's backing array (possibly regrown); ownership transfers to the
// caller, and dst must not be used again independently.
func EvictionListInto(dst []cache.Line, h *cache.Hierarchy, d cache.Domain, a *Allocator, l2set, slice, m int) ([]cache.Line, error) {
	geom := h.Geometry()
	if l2set < 0 || l2set >= geom.L2Sets {
		return nil, fmt.Errorf("memsys: L2 set %d out of range [0,%d)", l2set, geom.L2Sets)
	}
	if slice < 0 || slice >= geom.Slices {
		return nil, fmt.Errorf("memsys: slice %d out of range [0,%d)", slice, geom.Slices)
	}
	out, start := dst, len(dst)
	for tries := 0; len(out)-start < m && tries < searchLimit; tries++ {
		// Advance to the next line whose low bits select the wanted
		// L2 set, consuming the skipped address space.
		base := a.next
		line := (base &^ cache.Line(geom.L2Sets-1)) | cache.Line(l2set)
		if line < base {
			line += cache.Line(geom.L2Sets)
		}
		a.next = line + 1
		if h.SliceOf(d, line) != slice {
			continue
		}
		out = append(out, line)
	}
	if got := len(out) - start; got < m {
		return nil, fmt.Errorf("memsys: found only %d/%d lines for L2 set %d slice %d", got, m, l2set, slice)
	}
	return out, nil
}

// EvictionLists builds n lists of m lines each (the EV_lists[n][m] of
// Listing 1), using consecutive L2 sets starting at l2base, all homed on
// the same LLC slice.
func EvictionLists(h *cache.Hierarchy, d cache.Domain, a *Allocator, l2base, slice, n, m int) ([][]cache.Line, error) {
	geom := h.Geometry()
	lists := make([][]cache.Line, n)
	for i := range lists {
		l, err := EvictionList(h, d, a, (l2base+i)%geom.L2Sets, slice, m)
		if err != nil {
			return nil, err
		}
		lists[i] = l
	}
	return lists, nil
}

// ConflictSet returns count lines that all map to the given LLC slice and
// LLC set under domain d's view: the eviction set a Prime+Probe attacker
// constructs. Under a randomized-index defence the set is valid for d's
// own mapping only, which is exactly the attacker's predicament.
func ConflictSet(h *cache.Hierarchy, d cache.Domain, a *Allocator, slice, llcSet, count int) ([]cache.Line, error) {
	geom := h.Geometry()
	if llcSet < 0 || llcSet >= geom.LLCSets {
		return nil, fmt.Errorf("memsys: LLC set %d out of range [0,%d)", llcSet, geom.LLCSets)
	}
	out := make([]cache.Line, 0, count)
	for tries := 0; len(out) < count && tries < searchLimit; tries++ {
		line := a.ReserveOne()
		if h.SliceOf(d, line) != slice || h.LLCSetOf(d, line) != llcSet {
			continue
		}
		out = append(out, line)
	}
	if len(out) < count {
		return nil, fmt.Errorf("memsys: found only %d/%d lines for slice %d LLC set %d", len(out), count, slice, llcSet)
	}
	return out, nil
}
