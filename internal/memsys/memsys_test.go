package memsys

import (
	"testing"

	"repro/internal/cache"
)

func hier() *cache.Hierarchy {
	return cache.NewHierarchy(cache.DefaultGeometry(16))
}

func TestAllocatorDisjoint(t *testing.T) {
	a := NewAllocator()
	x := a.Reserve(100)
	y := a.Reserve(100)
	seen := map[cache.Line]bool{}
	for _, l := range append(x, y...) {
		if l == 0 {
			t.Fatal("line 0 handed out")
		}
		if seen[l] {
			t.Fatalf("duplicate line %d", l)
		}
		seen[l] = true
	}
}

func TestAllocatorPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reserve(0) did not panic")
		}
	}()
	NewAllocator().Reserve(0)
}

func TestEvictionListProperties(t *testing.T) {
	h := hier()
	a := NewAllocator()
	lines, err := EvictionList(h, 0, a, 100, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 20 {
		t.Fatalf("got %d lines", len(lines))
	}
	cc := h.NewCore()
	geom := h.Geometry()
	for _, l := range lines {
		if cc.L2SetOf(l) != 100 {
			t.Errorf("line %d in L2 set %d, want 100", l, cc.L2SetOf(l))
		}
		if h.SliceOf(0, l) != 5 {
			t.Errorf("line %d on slice %d, want 5", l, h.SliceOf(0, l))
		}
	}
	_ = geom
}

func TestEvictionListSelfEvicting(t *testing.T) {
	// The EV_j(i) property (§3.1): after warm-up, rotating through the
	// list always misses the L2 and hits the LLC.
	h := hier()
	cc := h.NewCore()
	lines, err := EvictionList(h, 0, NewAllocator(), 7, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // warm-up
		for _, l := range lines {
			cc.Access(0, l)
		}
	}
	for round := 0; round < 3; round++ {
		for _, l := range lines {
			res := cc.Access(0, l)
			if res.Level != cache.LevelLLC {
				t.Fatalf("steady-state access served at %v, want LLC", res.Level)
			}
		}
	}
}

func TestEvictionListValidation(t *testing.T) {
	h := hier()
	a := NewAllocator()
	if _, err := EvictionList(h, 0, a, -1, 0, 5); err == nil {
		t.Error("negative L2 set accepted")
	}
	if _, err := EvictionList(h, 0, a, 0, 99, 5); err == nil {
		t.Error("out-of-range slice accepted")
	}
}

func TestEvictionLists(t *testing.T) {
	h := hier()
	lists, err := EvictionLists(h, 0, NewAllocator(), 10, 2, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 4 {
		t.Fatalf("got %d lists", len(lists))
	}
	cc := h.NewCore()
	for i, list := range lists {
		if len(list) != 6 {
			t.Fatalf("list %d has %d lines", i, len(list))
		}
		for _, l := range list {
			if cc.L2SetOf(l) != 10+i {
				t.Errorf("list %d line in L2 set %d", i, cc.L2SetOf(l))
			}
		}
	}
}

func TestConflictSet(t *testing.T) {
	h := hier()
	lines, err := ConflictSet(h, 0, NewAllocator(), 4, 0x155, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if h.SliceOf(0, l) != 4 || h.LLCSetOf(0, l) != 0x155 {
			t.Errorf("line %d maps to (%d, %#x)", l, h.SliceOf(0, l), h.LLCSetOf(0, l))
		}
	}
	if _, err := ConflictSet(h, 0, NewAllocator(), 0, 1<<20, 2); err == nil {
		t.Error("out-of-range LLC set accepted")
	}
}

func TestConflictSetUnderRandomizedIndexing(t *testing.T) {
	// An attacker can always build a conflict set for its *own* domain
	// view — that is what timing reveals — but the physical sets differ
	// between domains.
	h := hier()
	h.SetIndexFn(cache.KeyedIndex(map[cache.Domain]uint64{1: 0xA, 2: 0xB}))
	a := NewAllocator()
	s1, err := ConflictSet(h, 1, a, 4, 0x155, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range s1 {
		if h.LLCSetOf(1, l) != 0x155 {
			t.Fatal("conflict set wrong under own view")
		}
		if h.LLCSetOf(2, l) == 0x155 {
			// A few could collide by chance, but all of them would
			// mean the keys do nothing; checked below.
			continue
		}
	}
	collisions := 0
	for _, l := range s1 {
		if h.LLCSetOf(2, l) == 0x155 {
			collisions++
		}
	}
	if collisions == len(s1) {
		t.Error("randomized domains fully collide")
	}
}
