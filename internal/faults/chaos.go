package faults

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// Chaos mode: where the rest of this package perturbs the *simulated*
// platform, the chaos specs misbehave at the orchestration boundary —
// they panic, hang, spin, or fail the way a buggy or unlucky experiment
// would. They exist to test the supervisor (internal/runner): a runner
// that survives the full chaos suite survives anything the real
// experiments can throw at it. The specs deliberately avoid importing
// the experiments package (which imports faults); the runner adapts a
// ChaosSpec into an experiments.Experiment.

// ChaosMode selects one misbehavior.
type ChaosMode int

const (
	// ChaosHealthy completes normally after a short burst of simulated
	// work (a real engine spins a few hundred ticks).
	ChaosHealthy ChaosMode = iota
	// ChaosError fails deterministically with an ordinary error.
	ChaosError
	// ChaosPanic panics mid-run.
	ChaosPanic
	// ChaosHang blocks until the run's context is cancelled and then
	// returns the context error — a cooperative hang, the shape of an
	// experiment stuck waiting on simulated progress that never comes.
	ChaosHang
	// ChaosHardHang blocks forever and ignores the context — the shape
	// of a deadlocked run. The supervisor can only abandon it; the
	// goroutine is leaked by design.
	ChaosHardHang
	// ChaosSpin runs a misconfigured engine (a picosecond-period ticker
	// across a huge window): effectively unbounded tick work, stopped
	// only by the step watchdog or the context.
	ChaosSpin
	// ChaosFlaky fails if and only if it runs with its BaseSeed — the
	// shape of a seed-sensitive failure that a reseeding retry policy
	// absorbs.
	ChaosFlaky
)

// String names the mode for labels and logs.
func (m ChaosMode) String() string {
	switch m {
	case ChaosHealthy:
		return "healthy"
	case ChaosError:
		return "error"
	case ChaosPanic:
		return "panic"
	case ChaosHang:
		return "hang"
	case ChaosHardHang:
		return "hard-hang"
	case ChaosSpin:
		return "spin"
	case ChaosFlaky:
		return "flaky"
	default:
		return fmt.Sprintf("ChaosMode(%d)", int(m))
	}
}

// ChaosSpec is one misbehaving fake experiment.
type ChaosSpec struct {
	// ID names the fake in manifests and artifacts.
	ID string
	// Mode selects the misbehavior.
	Mode ChaosMode
	// BaseSeed is the seed ChaosFlaky fails on; any other seed
	// succeeds.
	BaseSeed uint64
}

// Execute performs the spec's misbehavior. ctx bounds the run (honored
// by every mode except ChaosHardHang), seed is the run's seed, and
// stepBudget (when positive) arms the spun engine's watchdog so
// ChaosSpin trips sim.ErrBudgetExceeded instead of spinning until the
// deadline. On success it returns a short human-readable summary.
func (s ChaosSpec) Execute(ctx context.Context, seed uint64, stepBudget int64) (string, error) {
	switch s.Mode {
	case ChaosHealthy:
		return s.spinEngine(ctx, 512, stepBudget)
	case ChaosError:
		return "", fmt.Errorf("chaos %s: injected failure (seed %#x)", s.ID, seed)
	case ChaosPanic:
		panic(fmt.Sprintf("chaos %s: injected panic (seed %#x)", s.ID, seed))
	case ChaosHang:
		<-ctx.Done()
		return "", ctx.Err()
	case ChaosHardHang:
		select {} // unreachable exit; the supervisor must abandon us
	case ChaosSpin:
		return s.spinEngine(ctx, 0, stepBudget)
	case ChaosFlaky:
		if seed == s.BaseSeed {
			return "", fmt.Errorf("chaos %s: flaky failure on base seed %#x", s.ID, seed)
		}
		return fmt.Sprintf("chaos %s: recovered by reseed to %#x", s.ID, seed), nil
	default:
		return "", fmt.Errorf("chaos %s: unknown mode %d", s.ID, int(s.Mode))
	}
}

// spinEngine drives a private engine for ticks steps (0 = unbounded: a
// picosecond ticker across an enormous window, the runaway-simulation
// shape).
func (s ChaosSpec) spinEngine(ctx context.Context, ticks int64, stepBudget int64) (string, error) {
	e := sim.NewEngine()
	fired := int64(0)
	e.Add(&sim.Ticker{Name: "chaos-" + s.ID, Period: sim.Picosecond, Fn: func(sim.Time) { fired++ }})
	window := sim.Time(ticks)
	if ticks <= 0 {
		e.SetStepBudget(stepBudget)
		window = 100 * 24 * 3600 * sim.Second
	}
	if err := e.RunContext(ctx, window); err != nil {
		return "", err
	}
	return fmt.Sprintf("chaos %s: completed %d ticks", s.ID, fired), nil
}
