package faults

import (
	"testing"
	"time"
)

// TestOverloadPlanDeterministic: the same (seed, worker, call times)
// produce byte-identical stall sequences — the reproducibility contract
// every fault plan in this package shares.
func TestOverloadPlanDeterministic(t *testing.T) {
	cfg := DefaultOverloadConfig(1.0)
	base := time.Unix(1000, 0)
	run := func() []time.Duration {
		p := NewOverloadPlan(cfg, 42)
		var out []time.Duration
		for i := 0; i < 200; i++ {
			now := base.Add(time.Duration(i) * 7 * time.Millisecond)
			out = append(out, p.Next("w1", now), p.Next("w2", now))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stall %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestOverloadPlanRampShape: stalls near the crest of the sawtooth are
// larger than stalls near its foot, and the foot is (near) zero.
func TestOverloadPlanRampShape(t *testing.T) {
	cfg := OverloadConfig{RampPeriod: time.Second, DelayMax: 20 * time.Millisecond}
	p := NewOverloadPlan(cfg, 7)
	base := time.Unix(2000, 0)
	p.Next("w", base) // anchors the epoch

	foot := p.Next("w", base.Add(time.Second+10*time.Millisecond))   // 1% into period 2
	crest := p.Next("w", base.Add(time.Second+990*time.Millisecond)) // 99% in
	if foot >= crest {
		t.Fatalf("ramp not rising: foot %v >= crest %v", foot, crest)
	}
	if crest < 5*time.Millisecond {
		t.Fatalf("crest stall %v implausibly small for DelayMax=20ms", crest)
	}
}

// TestOverloadPlanTrickle: with trickle probability 1 every call stalls
// at least TrickleFor, and the stats count it.
func TestOverloadPlanTrickle(t *testing.T) {
	cfg := OverloadConfig{TrickleProb: 1, TrickleFor: 100 * time.Millisecond}
	p := NewOverloadPlan(cfg, 9)
	now := time.Unix(3000, 0)
	for i := 0; i < 10; i++ {
		if d := p.Next("w", now); d < cfg.TrickleFor {
			t.Fatalf("call %d stalled %v, want >= %v", i, d, cfg.TrickleFor)
		}
	}
	st := p.Stats()
	if st.Trickled != 10 || st.Calls != 10 {
		t.Fatalf("stats: %+v, want 10 trickled of 10", st)
	}
	if st.TotalStall < 10*cfg.TrickleFor {
		t.Fatalf("total stall %v < 10×%v", st.TotalStall, cfg.TrickleFor)
	}
}

// TestOverloadPlanZeroConfig: the zero config injects nothing.
func TestOverloadPlanZeroConfig(t *testing.T) {
	p := NewOverloadPlan(OverloadConfig{}, 1)
	now := time.Unix(4000, 0)
	for i := 0; i < 50; i++ {
		if d := p.Next("w", now.Add(time.Duration(i)*time.Millisecond)); d != 0 {
			t.Fatalf("zero config injected a %v stall", d)
		}
	}
}
