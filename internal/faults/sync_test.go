package faults

import (
	"testing"

	"repro/internal/sim"
)

// TestStartOffsetLatched: the unknown start phase is drawn once, within
// its configured bound, and held for the session even when the caller's
// bit interval later changes (the offset is a property of when the two
// processes started, not of the current rate).
func TestStartOffsetLatched(t *testing.T) {
	cfg := Config{StartOffsetBits: 3}
	interval := 21 * sim.Millisecond
	inj := New(cfg, sim.NewRand(7))
	off := inj.StartOffset(interval)
	if off < 0 || off > 3*interval {
		t.Fatalf("offset %v outside [0, %v]", off, 3*interval)
	}
	if again := inj.StartOffset(interval); again != off {
		t.Errorf("offset re-drawn: %v then %v", off, again)
	}
	if again := inj.StartOffset(interval * 4); again != off {
		t.Errorf("offset changed with the interval: %v then %v", off, again)
	}
	// Determinism: an identically seeded injector draws the same offset.
	if other := New(cfg, sim.NewRand(7)).StartOffset(interval); other != off {
		t.Errorf("same seed drew %v and %v", off, other)
	}
	// And the fault is off by default.
	if off := New(Config{}, sim.NewRand(7)).StartOffset(interval); off != 0 {
		t.Errorf("zero config drew a start offset %v", off)
	}
}

// TestReceiverClockShape: the clock map is nil when no clock fault is
// configured, starts at zero, stays monotone (the wander amplitude is
// far below one), and averages out to the base rate over full wander
// periods.
func TestReceiverClockShape(t *testing.T) {
	if c := New(Config{}, sim.NewRand(8)).ReceiverClock(0); c != nil {
		t.Error("clean config produced a clock map")
	}

	// Base rate only: an exact linear map.
	lin := New(Config{}, sim.NewRand(8)).ReceiverClock(2000)
	if lin == nil {
		t.Fatal("base rate alone produced no clock map")
	}
	if got := lin(sim.Second); got != sim.Time(float64(sim.Second)*1.002) {
		t.Errorf("linear clock at 1s = %v", got)
	}

	cfg := Config{WanderAmpPPM: 1500, WanderPeriod: 2 * sim.Second}
	clock := New(cfg, sim.NewRand(9)).ReceiverClock(2000)
	if clock == nil {
		t.Fatal("wander config produced no clock map")
	}
	if z := clock(0); z != 0 {
		t.Errorf("Clock(0) = %v, want 0", z)
	}
	prev := sim.Time(0)
	for step := sim.Time(1); step <= 4*sim.Second; step += 50 * sim.Millisecond {
		now := clock(step)
		if now <= prev {
			t.Fatalf("clock not monotone: %v then %v at %v", prev, now, step)
		}
		prev = now
	}
	// Over exactly two wander periods the sinusoid integrates to zero:
	// only the base rate remains.
	at := 2 * cfg.WanderPeriod
	want := float64(at) * 1.002
	if got := float64(clock(at)); got < want-float64(sim.Millisecond) || got > want+float64(sim.Millisecond) {
		t.Errorf("clock at two periods = %v, want ≈%v", got, want)
	}

	// The map is built once: repeated calls return the same function's
	// values even with a different base argument.
	inj := New(cfg, sim.NewRand(9))
	first := inj.ReceiverClock(2000)
	second := inj.ReceiverClock(0)
	if first(sim.Second) != second(sim.Second) {
		t.Error("clock map rebuilt on second call")
	}
}

// TestDesyncPreemption: when armed, the blackout lands in the middle
// half of the transmission with the configured duration, and the
// injection is counted; unarmed configs never fire.
func TestDesyncPreemption(t *testing.T) {
	interval := 21 * sim.Millisecond
	cfg := Config{DesyncPreemptProb: 1, DesyncPreemptBits: 8}
	inj := New(cfg, sim.NewRand(10))
	nbits := 96
	span := sim.Time(nbits) * interval
	for i := 0; i < 5; i++ {
		at, dur, ok := inj.DesyncPreemption(nbits, interval)
		if !ok {
			t.Fatalf("armed preemption did not fire (draw %d)", i)
		}
		if at < span/4 || at >= span*3/4 {
			t.Errorf("blackout at %v outside the middle half of %v", at, span)
		}
		if dur != 8*interval {
			t.Errorf("blackout duration %v, want %v", dur, 8*interval)
		}
	}
	if got := inj.Stats().DesyncPreemptions; got != 5 {
		t.Errorf("DesyncPreemptions = %d, want 5", got)
	}
	if _, _, ok := New(Config{}, sim.NewRand(10)).DesyncPreemption(nbits, interval); ok {
		t.Error("unarmed preemption fired")
	}
	if _, _, ok := New(cfg, sim.NewRand(10)).DesyncPreemption(0, interval); ok {
		t.Error("preemption fired on an empty transmission")
	}
}
