package faults

import (
	"testing"
	"time"
)

// drawSeq pulls n verdicts for worker from p, stepping the worker's
// clock the same way regardless of how calls from other workers
// interleave.
func drawSeq(p *NetPlan, worker string, n int) []NetVerdict {
	base := time.Unix(0, 0)
	out := make([]NetVerdict, n)
	for i := range out {
		out[i] = p.Next(worker, base.Add(time.Duration(i)*10*time.Millisecond))
	}
	return out
}

// TestNetPlanDeterministicPerWorker: a worker's verdict sequence depends
// only on (seed, worker ID, call index) — interleaving calls from other
// workers must not perturb it.
func TestNetPlanDeterministicPerWorker(t *testing.T) {
	cfg := DefaultNetConfig(0.8)
	base := time.Unix(0, 0)

	// p1: w1 and w2 strictly interleaved.
	p1 := NewNetPlan(cfg, 42)
	const n = 200
	seq1 := map[string][]NetVerdict{}
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * 10 * time.Millisecond)
		seq1["w1"] = append(seq1["w1"], p1.Next("w1", at))
		seq1["w2"] = append(seq1["w2"], p1.Next("w2", at))
	}

	// p2: same seed, all of w1 drained before w2 starts.
	p2 := NewNetPlan(cfg, 42)
	for _, w := range []string{"w1", "w2"} {
		got := drawSeq(p2, w, n)
		for i, v := range got {
			if v != seq1[w][i] {
				t.Fatalf("%s verdict %d differs across interleavings: %+v vs %+v", w, i, v, seq1[w][i])
			}
		}
	}

	// Distinct workers get distinct streams.
	same := true
	for i := range seq1["w1"] {
		if seq1["w1"][i] != seq1["w2"][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("w1 and w2 drew identical verdict streams")
	}
}

// TestNetPlanKillSchedule: the kill draw is per-worker deterministic and
// lands in [n/2, 3n/2) around the configured mean.
func TestNetPlanKillSchedule(t *testing.T) {
	cfg := NetConfig{KillEveryUnits: 8}
	p1 := NewNetPlan(cfg, 7)
	p2 := NewNetPlan(cfg, 7)
	for _, w := range []string{"a", "b", "c"} {
		k1, k2 := p1.KillAfterUnits(w), p2.KillAfterUnits(w)
		if k1 != k2 {
			t.Fatalf("%s kill draw not deterministic: %d vs %d", w, k1, k2)
		}
		if k1 < 4 || k1 >= 12 {
			t.Fatalf("%s kill draw %d outside [4, 12)", w, k1)
		}
	}
	if NewNetPlan(NetConfig{}, 7).KillAfterUnits("a") != 0 {
		t.Fatal("zero config scheduled a kill")
	}
}

// TestNetPlanZeroConfigInjectsNothing: the zero NetConfig is a no-op
// transport.
func TestNetPlanZeroConfigInjectsNothing(t *testing.T) {
	p := NewNetPlan(NetConfig{}, 1)
	for i, v := range drawSeq(p, "w", 500) {
		if v != (NetVerdict{}) {
			t.Fatalf("zero config injected %+v at call %d", v, i)
		}
	}
	st := p.Stats()
	if st.Calls != 500 || st.DroppedRequests+st.DroppedResponses+st.Duplicates+st.Delayed+st.Partitions != 0 {
		t.Fatalf("zero config stats: %+v", st)
	}
}

// TestNetPlanPartitionWindow: once a partition opens, every call from
// that worker inside the window is dropped before delivery, and calls
// after the window flow again.
func TestNetPlanPartitionWindow(t *testing.T) {
	cfg := NetConfig{PartitionProb: 1.0, PartitionFor: 150 * time.Millisecond}
	p := NewNetPlan(cfg, 3)
	base := time.Unix(0, 0)

	if v := p.Next("w", base); !v.DropRequest {
		t.Fatalf("partition open call not dropped: %+v", v)
	}
	for _, dt := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, 149 * time.Millisecond} {
		if v := p.Next("w", base.Add(dt)); !v.DropRequest {
			t.Fatalf("call at +%v inside window not dropped: %+v", dt, v)
		}
	}
	// Past the window the next call re-rolls; with PartitionProb 1 it
	// opens a fresh window (still a drop), but the old one was cleared —
	// verify via stats that exactly two windows opened.
	p.Next("w", base.Add(200*time.Millisecond))
	st := p.Stats()
	if st.Partitions != 2 {
		t.Fatalf("expected 2 partition windows, got %+v", st)
	}
	if st.PartitionedCalls != 5 {
		t.Fatalf("expected 5 partitioned calls, got %+v", st)
	}

	// DefaultNetConfig(0) must never partition.
	q := NewNetPlan(DefaultNetConfig(0), 3)
	for i := 0; i < 200; i++ {
		if v := q.Next("w", base.Add(time.Duration(i)*time.Millisecond)); v != (NetVerdict{}) {
			t.Fatalf("intensity 0 injected %+v", v)
		}
	}
}
