package faults

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"syscall"
	"testing"

	"repro/internal/vfs"
)

func mustWrite(t *testing.T, fsys vfs.FS, name, content string, sync bool) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, content); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskFSCrashDropsUnsyncedEntries: a created file whose directory
// entry was never fsynced vanishes on crash, even if its content was;
// after SyncDir it survives.
func TestDiskFSCrashDropsUnsyncedEntries(t *testing.T) {
	d := NewDiskFS(1)
	if err := d.MkdirAll("state", 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, d, "state/volatile.json", "content-synced-entry-not", true)
	mustWrite(t, d, "state/durable.json", "kept", true)
	if err := d.SyncDir("state"); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, d, "state/after.json", "created after dir sync", true)

	d.Crash()
	if _, err := d.ReadFile("state/after.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("entry created after SyncDir survived crash: err=%v", err)
	}
	data, err := d.ReadFile("state/durable.json")
	if err != nil || string(data) != "kept" {
		t.Fatalf("durable file = %q, %v", data, err)
	}
}

// TestDiskFSCrashTornTail: unsynced appended bytes survive a crash only
// as a prefix — the torn-tail shape journal recovery must truncate.
func TestDiskFSCrashTornTail(t *testing.T) {
	d := NewDiskFS(7)
	f, err := d.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "synced-prefix|"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(f, "volatile-tail"); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	data, err := d.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	want := "synced-prefix|volatile-tail"
	if !bytes.HasPrefix([]byte(want), data) || len(data) < len("synced-prefix|") {
		t.Fatalf("post-crash content %q is not a torn prefix of %q", data, want)
	}
}

// TestDiskFSRenameRollback: a rename is just a directory entry until
// SyncDir — crash before it and the target rolls back to its old
// content. This is precisely why WriteFileAtomic fsyncs the parent.
func TestDiskFSRenameRollback(t *testing.T) {
	for _, dirSync := range []bool{false, true} {
		d := NewDiskFS(3)
		mustWrite(t, d, "state.json", "v1", true)
		if err := d.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, d, "state.json.tmp", "v2", true)
		if err := d.Rename("state.json.tmp", "state.json"); err != nil {
			t.Fatal(err)
		}
		if dirSync {
			if err := d.SyncDir("."); err != nil {
				t.Fatal(err)
			}
		}
		d.Crash()
		data, err := d.ReadFile("state.json")
		if err != nil {
			t.Fatal(err)
		}
		want := "v1"
		if dirSync {
			want = "v2"
		}
		if string(data) != want {
			t.Fatalf("dirSync=%v: post-crash content = %q, want %q", dirSync, data, want)
		}
	}
}

// TestDiskFSRemoveResurrects: an unsynced removal comes back after a
// crash.
func TestDiskFSRemoveResurrects(t *testing.T) {
	d := NewDiskFS(4)
	mustWrite(t, d, "ghost", "boo", true)
	if err := d.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile("ghost"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("removed file still readable: %v", err)
	}
	d.Crash()
	if data, err := d.ReadFile("ghost"); err != nil || string(data) != "boo" {
		t.Fatalf("unsynced removal not rolled back: %q, %v", data, err)
	}
}

// TestDiskFSCrashAfter: the armed boundary kills that operation and
// every later one, without applying them.
func TestDiskFSCrashAfter(t *testing.T) {
	workload := func(d *DiskFS) error {
		f, err := d.Create("a")
		if err != nil {
			return err
		}
		if _, err := io.WriteString(f, "aa"); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := d.SyncDir("."); err != nil {
			return err
		}
		return d.Rename("a", "b")
	}
	clean := NewDiskFS(9)
	if err := workload(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops()
	if total != 5 { // create, write, sync, syncdir, rename
		t.Fatalf("clean workload ops = %d, want 5", total)
	}
	for k := 0; k < total; k++ {
		d := NewDiskFS(9)
		d.CrashAfter(k)
		if err := workload(d); !errors.Is(err, ErrCrashed) {
			t.Fatalf("CrashAfter(%d): workload err = %v, want ErrCrashed", k, err)
		}
		if !d.Crashed() {
			t.Fatalf("CrashAfter(%d): not marked crashed", k)
		}
		if _, err := d.ReadFile("a"); !errors.Is(err, ErrCrashed) {
			t.Fatalf("CrashAfter(%d): reads after death err = %v", k, err)
		}
		d.Crash()
		// After reboot the filesystem must be usable again.
		if err := workload(d); err != nil {
			t.Fatalf("CrashAfter(%d): post-reboot workload: %v", k, err)
		}
	}
}

// TestWriteFileAtomicNeverTornUnderCrash: crash vfs.WriteFileAtomic at
// every mutating boundary over the crash-model filesystem — the target
// must always hold exactly the old or the new content, never a torn
// mix, and once the call returns success even a crash must keep the new
// content (that last guarantee is the parent-directory fsync).
func TestWriteFileAtomicNeverTornUnderCrash(t *testing.T) {
	write := func(d *DiskFS) error {
		return vfs.WriteFileAtomic(d, "state.json", func(w io.Writer) error {
			_, err := io.WriteString(w, "NEW")
			return err
		})
	}
	setup := func(seed uint64) *DiskFS {
		d := NewDiskFS(seed)
		mustWrite(t, d, "state.json", "OLD", true)
		if err := d.SyncDir("."); err != nil {
			t.Fatal(err)
		}
		return d
	}
	clean := setup(11)
	base := clean.Ops()
	if err := write(clean); err != nil {
		t.Fatal(err)
	}
	total := clean.Ops() - base

	sawOld, sawNew := false, false
	for k := 0; k < total; k++ {
		d := setup(uint64(100 + k))
		d.CrashAfter(base + k)
		err := write(d)
		d.Crash()
		data, rerr := d.ReadFile("state.json")
		if rerr != nil {
			t.Fatalf("boundary %d: target missing after crash: %v", k, rerr)
		}
		switch string(data) {
		case "OLD":
			sawOld = true
			if err == nil {
				t.Fatalf("boundary %d: WriteFileAtomic reported success but crash rolled back to OLD", k)
			}
		case "NEW":
			sawNew = true
		default:
			t.Fatalf("boundary %d: torn content %q", k, data)
		}
	}
	if !sawOld {
		t.Fatal("no boundary preserved the old content (crash model too lenient)")
	}
	_ = sawNew // crashing *at* the final dir sync may legitimately still yield OLD
}

// TestDiskPlanDeterminism: identical (seed, path, op sequence) yields
// identical verdicts; different paths draw from independent streams.
func TestDiskPlanDeterminism(t *testing.T) {
	run := func() DiskStats {
		p := NewDiskPlan(DefaultDiskConfig(1.0), 42)
		for i := 0; i < 200; i++ {
			p.writeVerdict("a/wal", 64)
			p.syncVerdict("a/wal")
			p.writeVerdict("b/snapshot", 1024)
			p.renameVerdict("b/snapshot")
		}
		return p.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if s1.WriteErrs+s1.ShortWrites+s1.SyncErrs+s1.RenameErrs == 0 {
		t.Fatal("full-intensity plan injected nothing in 800 verdicts")
	}
}

// TestFaultyFSShortWritePersistsPrefix: a short-write verdict leaves
// the persisted prefix behind in the inner filesystem.
func TestFaultyFSShortWritePersistsPrefix(t *testing.T) {
	inner := NewDiskFS(5)
	plan := NewDiskPlan(DiskConfig{ShortWriteProb: 1.0}, 6)
	fsys := FaultyFS{Inner: inner, Plan: plan}
	f, err := fsys.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	n, werr := f.Write(payload)
	if !errors.Is(werr, ErrDiskFault) {
		t.Fatalf("write err = %v, want ErrDiskFault", werr)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("short write n = %d", n)
	}
	data, err := inner.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != n {
		t.Fatalf("inner holds %d bytes, verdict said %d", len(data), n)
	}
}

// TestFaultyFSNoSpace: the byte budget turns into ENOSPC.
func TestFaultyFSNoSpace(t *testing.T) {
	inner := NewDiskFS(5)
	plan := NewDiskPlan(DiskConfig{ByteBudget: 10}, 6)
	fsys := FaultyFS{Inner: inner, Plan: plan}
	f, err := fsys.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("overflow")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget err = %v, want ENOSPC", err)
	}
	if plan.Stats().NoSpace != 1 {
		t.Fatalf("stats = %+v", plan.Stats())
	}
}

// TestFaultyFSBitFlip: a flip verdict corrupts exactly one bit of the
// persisted buffer, silently.
func TestFaultyFSBitFlip(t *testing.T) {
	inner := NewDiskFS(5)
	plan := NewDiskPlan(DiskConfig{BitFlipProb: 1.0}, 6)
	fsys := FaultyFS{Inner: inner, Plan: plan}
	f, err := fsys.Create("wal")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0}, 32)
	if _, err := f.Write(payload); err != nil {
		t.Fatalf("bit flips must be silent, got %v", err)
	}
	data, err := inner.ReadFile("wal")
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
	if plan.Stats().BitFlips != 1 {
		t.Fatalf("stats = %+v", plan.Stats())
	}
}

// TestDiskFSCorrupt: the bit-rot helper flips in place.
func TestDiskFSCorrupt(t *testing.T) {
	d := NewDiskFS(2)
	mustWrite(t, d, "snap", "AAAA", true)
	if err := d.Corrupt("snap", 2); err != nil {
		t.Fatal(err)
	}
	data, err := d.ReadFile("snap")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "AA@A" { // 'A' ^ 1 = '@'
		t.Fatalf("corrupted content = %q", data)
	}
	if err := d.Corrupt("snap", 99); err == nil {
		t.Fatal("out-of-range corrupt succeeded")
	}
}
