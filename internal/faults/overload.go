package faults

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/sim"
)

// Overload injection: where NetPlan loses and reorders protocol calls,
// OverloadPlan makes them *slow* in the shapes that melt control planes
// — a sawtooth latency ramp (load waves cresting and breaking), an
// occasional slow-loris trickle (a call that holds its slot for an
// eternity while barely making progress), and herd synchronization
// (every worker released at the same instant, see
// sweepd.FleetConfig.HerdStart). Like NetPlan it is pure decision
// logic: it returns per-call stall durations and never touches sockets,
// so the same plan drives loopback fleets in tests and could shape a
// real HTTP client unchanged (sweepd.LatencyClient does the wrapping).
//
// Determinism: each worker draws from its own sim.Rand stream split
// from the plan seed by a stable hash of the worker ID, so a chaos
// run's stall pattern depends only on (seed, worker ID, call index) and
// the clock readings — not on goroutine scheduling.

// OverloadConfig describes one overload mix. The zero value injects
// nothing; DefaultOverloadConfig scales a representative mix by one
// intensity knob.
type OverloadConfig struct {
	// Intensity records the master knob the config was scaled from
	// (diagnostics only; the individual fields are what act).
	Intensity float64

	// RampPeriod is the sawtooth period: injected latency climbs from 0
	// to DelayMax across each period, then snaps back — a load wave.
	// Zero disables the ramp.
	RampPeriod time.Duration
	// DelayMax is the latency at the crest of the ramp.
	DelayMax time.Duration

	// TrickleProb is the per-call chance of a slow-loris stall: the call
	// proceeds, but only after holding its admission slot for
	// TrickleFor — an order of magnitude past normal service time.
	TrickleProb float64
	TrickleFor  time.Duration
}

// DefaultOverloadConfig scales a representative overload mix by
// intensity in [0, 1]: at 0 nothing is injected; at 1 the ramp crests
// at 25ms every 800ms and ~3% of calls trickle for 150ms.
func DefaultOverloadConfig(intensity float64) OverloadConfig {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	cfg := OverloadConfig{Intensity: intensity}
	if intensity > 0 {
		cfg.RampPeriod = 800 * time.Millisecond
		cfg.DelayMax = time.Duration(25 * float64(time.Millisecond) * intensity)
		cfg.TrickleProb = 0.03 * intensity
		cfg.TrickleFor = 150 * time.Millisecond
	}
	return cfg
}

// OverloadStats counts injected stalls.
type OverloadStats struct {
	Calls, Ramped, Trickled int
	// TotalStall is the summed injected latency.
	TotalStall time.Duration
}

// OverloadPlan issues deterministic per-call stall durations. Safe for
// concurrent use by many workers.
type OverloadPlan struct {
	cfg  OverloadConfig
	seed uint64

	mu      sync.Mutex
	streams map[string]*sim.Rand
	// epoch anchors the ramp phase at the first observed call, so the
	// sawtooth is aligned to the run, not to wall-clock zero.
	epoch time.Time
	stats OverloadStats
}

// NewOverloadPlan builds a plan over cfg, deterministic in seed.
func NewOverloadPlan(cfg OverloadConfig, seed uint64) *OverloadPlan {
	return &OverloadPlan{cfg: cfg, seed: seed, streams: map[string]*sim.Rand{}}
}

// Config returns the plan's overload mix.
func (p *OverloadPlan) Config() OverloadConfig { return p.cfg }

// stream returns worker's private rand (lock held).
func (p *OverloadPlan) stream(worker string) *sim.Rand {
	r, ok := p.streams[worker]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(worker))
		r = sim.NewRand(p.seed ^ h.Sum64() ^ 0x0ad5107)
		p.streams[worker] = r
	}
	return r
}

// Next returns how long worker's next protocol call must stall at now:
// the ramp's current height jittered per worker, plus a trickle when
// the slow-loris draw fires. Zero means the call proceeds unshaped.
func (p *OverloadPlan) Next(worker string, now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Calls++
	rng := p.stream(worker)

	var stall time.Duration
	if p.cfg.RampPeriod > 0 && p.cfg.DelayMax > 0 {
		if p.epoch.IsZero() {
			p.epoch = now
		}
		phase := float64(now.Sub(p.epoch)%p.cfg.RampPeriod) / float64(p.cfg.RampPeriod)
		// Jitter the crest per call so two workers at the same phase
		// still stall differently.
		d := time.Duration(phase * float64(p.cfg.DelayMax) * (0.5 + 0.5*rng.Float64()))
		if d > 0 {
			stall += d
			p.stats.Ramped++
		}
	}
	if p.cfg.TrickleProb > 0 && p.cfg.TrickleFor > 0 && rng.Bool(p.cfg.TrickleProb) {
		stall += p.cfg.TrickleFor
		p.stats.Trickled++
	}
	p.stats.TotalStall += stall
	return stall
}

// Stats snapshots the injected-stall counters.
func (p *OverloadPlan) Stats() OverloadStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
