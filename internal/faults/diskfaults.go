package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Disk faults: PR 6 made the network an adversary (NetPlan); this file
// makes the disk one. Two layers compose over the vfs.FS seam:
//
//   - DiskFS is an in-memory filesystem with an explicit crash model.
//     It distinguishes written from durable: file bytes become durable
//     only at File.Sync, and directory entries (creations, renames,
//     removals) only at SyncDir on the parent. Crash() discards
//     everything volatile — unsynced appends survive only as a
//     deterministic torn prefix, unsynced renames roll back, unsynced
//     removals resurrect — which is exactly the state a machine reboot
//     hands a recovery path. CrashAfter(k) arms a kill at the k-th
//     mutating operation, so a test can enumerate every write boundary
//     in a workload and crash at each one.
//
//   - FaultyFS wraps any vfs.FS (the real one or a DiskFS) and injects
//     transient I/O errors from a DiskPlan: failed and short writes,
//     fsync errors, rename errors, ENOSPC after a byte budget, and
//     silent bit flips. Like NetPlan, the plan is deterministic per
//     (seed, path, op index): each path gets its own sim.Rand stream
//     split from the plan seed by a stable hash, so a chaos run's fault
//     pattern is reproducible regardless of goroutine interleaving.
//
// Composition order matters: FaultyFS{Inner: DiskFS} means an injected
// fsync error really does leave the bytes volatile underneath, so a
// later crash tests the code's handling of both layers at once.

// ErrCrashed is returned by every DiskFS operation at and after the
// armed crash boundary: the process is "dead" until Crash() reboots the
// filesystem into its durable state.
var ErrCrashed = errors.New("faults: filesystem crashed")

// ErrDiskFault marks a transient injected I/O error from FaultyFS.
var ErrDiskFault = errors.New("faults: injected disk fault")

// dfile is one file's bytes plus the watermark of what Sync has made
// durable. Content past synced is volatile: a crash keeps only a torn
// prefix of it.
type dfile struct {
	data   []byte
	synced int
}

// DiskFS is the in-memory crash-model filesystem. Safe for concurrent
// use.
type DiskFS struct {
	mu  sync.Mutex
	rng *sim.Rand

	dirs map[string]bool
	// live is the namespace the running process sees; durable maps the
	// names whose directory entries have reached "disk" (SyncDir). The
	// two share *dfile pointers: content durability is the per-file
	// synced watermark, entry durability is membership here.
	live    map[string]*dfile
	durable map[string]*dfile

	tempSeq int
	ops     int
	crashAt int // mutating-op index to die at; -1 disarmed
	crashed bool
}

var _ vfs.FS = (*DiskFS)(nil)

// NewDiskFS builds an empty crash-model filesystem. The seed drives the
// torn-tail draws at Crash time.
func NewDiskFS(seed uint64) *DiskFS {
	return &DiskFS{
		rng:     sim.NewRand(seed),
		dirs:    map[string]bool{".": true, "/": true},
		live:    map[string]*dfile{},
		durable: map[string]*dfile{},
		crashAt: -1,
	}
}

// CrashAfter arms a kill: the first k mutating operations (creates,
// writes, syncs, renames, removes, dir syncs) succeed and the next one
// — and everything after it — returns ErrCrashed without being applied.
// k=0 kills the very first one. Call Crash to reboot.
func (d *DiskFS) CrashAfter(k int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashAt = k
	d.crashed = false
}

// Ops returns how many mutating operations have been applied, i.e. the
// number of distinct crash boundaries a workload replay can arm.
func (d *DiskFS) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether the armed boundary has been hit.
func (d *DiskFS) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Crash reboots the filesystem into its durable state: only entries
// made durable by SyncDir survive, each holding its synced bytes plus a
// deterministic torn prefix of any unsynced tail. The crash arm is
// cleared so recovery code can run against the same filesystem.
func (d *DiskFS) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	live := make(map[string]*dfile, len(d.durable))
	for name, f := range d.durable {
		n := f.synced
		if len(f.data) > n {
			// The unsynced tail may have partially reached the platter:
			// keep a random prefix of it (possibly none, possibly all).
			n += d.rng.IntN(len(f.data) - n + 1)
		}
		nf := &dfile{data: append([]byte(nil), f.data[:n]...)}
		nf.synced = len(nf.data)
		live[name] = nf
	}
	d.live = live
	d.durable = make(map[string]*dfile, len(live))
	for name, f := range live {
		d.durable[name] = f
	}
	d.crashed = false
	d.crashAt = -1
}

// Corrupt flips the low bit of byte off in name's content, modeling bit
// rot that arrives after the write was acknowledged (it corrupts the
// durable bytes in place).
func (d *DiskFS) Corrupt(name string, off int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.live[filepath.Clean(name)]
	if !ok {
		return &fs.PathError{Op: "corrupt", Path: name, Err: fs.ErrNotExist}
	}
	if off < 0 || off >= len(f.data) {
		return fmt.Errorf("faults: corrupt %s: offset %d out of range [0,%d)", name, off, len(f.data))
	}
	f.data[off] ^= 1
	return nil
}

// gate is the crash boundary every mutating operation passes (lock
// held). It either admits the op — counting it — or kills it.
func (d *DiskFS) gate() error {
	if d.crashed {
		return ErrCrashed
	}
	if d.crashAt >= 0 && d.ops >= d.crashAt {
		d.crashed = true
		return ErrCrashed
	}
	d.ops++
	return nil
}

func (d *DiskFS) deadLocked() error {
	if d.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements vfs.FS. Directory creation is treated as
// immediately durable — the engine's crash surface is file writes, not
// mkdir.
func (d *DiskFS) MkdirAll(dir string, _ fs.FileMode) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.deadLocked(); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	for dir != "." && dir != "/" && dir != "" {
		d.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

func (d *DiskFS) requireDirLocked(op, name string) error {
	parent := filepath.Dir(filepath.Clean(name))
	if !d.dirs[parent] {
		return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
	}
	return nil
}

// Create implements vfs.FS: a fresh (truncated) file. The new content
// and the directory entry are both volatile until synced.
func (d *DiskFS) Create(name string) (vfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	if err := d.requireDirLocked("create", name); err != nil {
		return nil, err
	}
	f := &dfile{}
	d.live[name] = f
	return &dfsFile{fs: d, name: name, f: f}, nil
}

// CreateTemp implements vfs.FS.
func (d *DiskFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return nil, err
	}
	if dir == "" {
		dir = "."
	}
	dir = filepath.Clean(dir)
	if !d.dirs[dir] {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrNotExist}
	}
	d.tempSeq++
	base := pattern
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		base = pattern[:i] + fmt.Sprintf("%09d", d.tempSeq) + pattern[i+1:]
	} else {
		base = pattern + fmt.Sprintf("%09d", d.tempSeq)
	}
	name := filepath.Join(dir, base)
	f := &dfile{}
	d.live[name] = f
	return &dfsFile{fs: d, name: name, f: f}, nil
}

// Append implements vfs.FS: open for appending, creating if absent.
func (d *DiskFS) Append(name string) (vfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	if err := d.requireDirLocked("append", name); err != nil {
		return nil, err
	}
	f, ok := d.live[name]
	if !ok {
		f = &dfile{}
		d.live[name] = f
	}
	return &dfsFile{fs: d, name: name, f: f}, nil
}

// Open implements vfs.FS (read-only).
func (d *DiskFS) Open(name string) (vfs.File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.deadLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	f, ok := d.live[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &dfsFile{fs: d, name: name, f: f, readonly: true}, nil
}

// ReadFile implements vfs.FS.
func (d *DiskFS) ReadFile(name string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.deadLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	f, ok := d.live[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements vfs.FS. The swapped entry is volatile until SyncDir:
// a crash before it rolls the target back to its previous content (or
// absence).
func (d *DiskFS) Rename(oldpath, newpath string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return err
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	f, ok := d.live[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	if err := d.requireDirLocked("rename", newpath); err != nil {
		return err
	}
	d.live[newpath] = f
	delete(d.live, oldpath)
	return nil
}

// Remove implements vfs.FS. Volatile until SyncDir: a crash before it
// resurrects the file.
func (d *DiskFS) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return err
	}
	name = filepath.Clean(name)
	if _, ok := d.live[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(d.live, name)
	return nil
}

// Stat implements vfs.FS.
func (d *DiskFS) Stat(name string) (fs.FileInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.deadLocked(); err != nil {
		return nil, err
	}
	name = filepath.Clean(name)
	if f, ok := d.live[name]; ok {
		return dfileInfo{name: filepath.Base(name), size: int64(len(f.data))}, nil
	}
	if d.dirs[name] {
		return dfileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// ReadDir implements vfs.FS.
func (d *DiskFS) ReadDir(dir string) ([]fs.DirEntry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.deadLocked(); err != nil {
		return nil, err
	}
	dir = filepath.Clean(dir)
	if !d.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name := range d.live {
		if filepath.Dir(name) == dir {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	entries := make([]fs.DirEntry, 0, len(names))
	for _, name := range names {
		entries = append(entries, fs.FileInfoToDirEntry(dfileInfo{
			name: filepath.Base(name),
			size: int64(len(d.live[name].data)),
		}))
	}
	return entries, nil
}

// SyncDir implements vfs.FS: dir's entry changes since the last SyncDir
// become durable — created/renamed names are pinned, removed names are
// truly gone.
func (d *DiskFS) SyncDir(dir string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.gate(); err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	if !d.dirs[dir] {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	for name, f := range d.live {
		if filepath.Dir(name) == dir {
			d.durable[name] = f
		}
	}
	for name := range d.durable {
		if filepath.Dir(name) == dir {
			if _, ok := d.live[name]; !ok {
				delete(d.durable, name)
			}
		}
	}
	return nil
}

// dfsFile is a DiskFS handle.
type dfsFile struct {
	fs       *DiskFS
	name     string
	f        *dfile
	readonly bool
	readOff  int
	closed   bool
}

func (h *dfsFile) Name() string { return h.name }

func (h *dfsFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.deadLocked(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.readOff >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.readOff:])
	h.readOff += n
	return n, nil
}

func (h *dfsFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.gate(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.readonly {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync makes the file's current bytes durable (content only — the
// directory entry needs SyncDir).
func (h *dfsFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.gate(); err != nil {
		return err
	}
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *dfsFile) Chmod(fs.FileMode) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.fs.deadLocked()
}

func (h *dfsFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.deadLocked(); err != nil {
		return err
	}
	h.closed = true
	return nil
}

// dfileInfo is the fs.FileInfo for DiskFS entries.
type dfileInfo struct {
	name string
	size int64
	dir  bool
}

func (i dfileInfo) Name() string { return i.name }
func (i dfileInfo) Size() int64  { return i.size }
func (i dfileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i dfileInfo) ModTime() time.Time { return time.Time{} }
func (i dfileInfo) IsDir() bool        { return i.dir }
func (i dfileInfo) Sys() any           { return nil }

// DiskConfig describes one disk-fault mix for FaultyFS. The zero value
// injects nothing; DefaultDiskConfig scales a representative transient
// mix by one intensity knob.
type DiskConfig struct {
	// Intensity records the master knob the config was scaled from
	// (diagnostics only; the individual fields are what act).
	Intensity float64

	// WriteErrProb fails a write outright (nothing persisted);
	// ShortWriteProb persists a prefix of the buffer and then fails —
	// the torn-record shape journal recovery must absorb.
	WriteErrProb   float64
	ShortWriteProb float64
	// SyncErrProb fails an fsync. Over a DiskFS inner, the bytes really
	// do stay volatile, so a later crash loses them.
	SyncErrProb float64
	// RenameErrProb fails an atomic swap.
	RenameErrProb float64

	// ByteBudget, when positive, is the total number of bytes writable
	// before every further write fails with ENOSPC. Test-only: left
	// zero by DefaultDiskConfig.
	ByteBudget int64
	// BitFlipProb silently flips one bit of a written buffer — the
	// media-corruption shape only checksums can catch. Test-only: left
	// zero by DefaultDiskConfig.
	BitFlipProb float64
}

// DefaultDiskConfig scales a representative transient-fault mix by
// intensity in [0, 1]. ENOSPC and bit flips stay off: they are
// persistent failure modes for targeted tests, not a chaos background.
func DefaultDiskConfig(intensity float64) DiskConfig {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return DiskConfig{
		Intensity:      intensity,
		WriteErrProb:   0.03 * intensity,
		ShortWriteProb: 0.03 * intensity,
		SyncErrProb:    0.05 * intensity,
		RenameErrProb:  0.02 * intensity,
	}
}

// DiskStats counts injected disk faults.
type DiskStats struct {
	Writes, WriteErrs, ShortWrites, SyncErrs, RenameErrs int
	BitFlips, NoSpace                                    int
	BytesWritten                                         int64
}

// DiskPlan issues deterministic disk-fault verdicts. Safe for
// concurrent use; each path gets its own sim.Rand stream split from the
// plan seed by a stable hash, so verdicts depend only on (seed, path,
// op index).
type DiskPlan struct {
	cfg  DiskConfig
	seed uint64

	mu      sync.Mutex
	streams map[string]*sim.Rand
	written int64
	stats   DiskStats
}

// NewDiskPlan builds a plan over cfg, deterministic in seed.
func NewDiskPlan(cfg DiskConfig, seed uint64) *DiskPlan {
	return &DiskPlan{cfg: cfg, seed: seed, streams: map[string]*sim.Rand{}}
}

// Config returns the plan's fault mix.
func (p *DiskPlan) Config() DiskConfig { return p.cfg }

// Stats snapshots the injected-fault counters.
func (p *DiskPlan) Stats() DiskStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// stream returns path's private rand (lock held).
func (p *DiskPlan) stream(path string) *sim.Rand {
	r, ok := p.streams[path]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(path))
		r = sim.NewRand(p.seed ^ h.Sum64())
		p.streams[path] = r
	}
	return r
}

// writeVerdict decides the fate of one n-byte write to path.
// flipAt < 0 means no bit flip; short < 0 means write everything.
func (p *DiskPlan) writeVerdict(path string, n int) (short int, flipAt int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Writes++
	if p.cfg.ByteBudget > 0 && p.written+int64(n) > p.cfg.ByteBudget {
		p.stats.NoSpace++
		return 0, -1, &fs.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
	}
	rng := p.stream(path)
	switch {
	case p.cfg.WriteErrProb > 0 && rng.Bool(p.cfg.WriteErrProb):
		p.stats.WriteErrs++
		return 0, -1, fmt.Errorf("%w: write %s", ErrDiskFault, path)
	case p.cfg.ShortWriteProb > 0 && n > 1 && rng.Bool(p.cfg.ShortWriteProb):
		p.stats.ShortWrites++
		short = rng.IntN(n) // persist [0, n) bytes, then fail
		p.written += int64(short)
		p.stats.BytesWritten += int64(short)
		return short, -1, fmt.Errorf("%w: short write %s (%d of %d bytes)", ErrDiskFault, path, short, n)
	}
	if p.cfg.BitFlipProb > 0 && n > 0 && rng.Bool(p.cfg.BitFlipProb) {
		p.stats.BitFlips++
		flipAt = rng.IntN(n)
	} else {
		flipAt = -1
	}
	p.written += int64(n)
	p.stats.BytesWritten += int64(n)
	return -1, flipAt, nil
}

func (p *DiskPlan) syncVerdict(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.SyncErrProb > 0 && p.stream(path).Bool(p.cfg.SyncErrProb) {
		p.stats.SyncErrs++
		return fmt.Errorf("%w: fsync %s", ErrDiskFault, path)
	}
	return nil
}

func (p *DiskPlan) renameVerdict(path string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.RenameErrProb > 0 && p.stream(path).Bool(p.cfg.RenameErrProb) {
		p.stats.RenameErrs++
		return fmt.Errorf("%w: rename %s", ErrDiskFault, path)
	}
	return nil
}

// FaultyFS injects DiskPlan verdicts over an inner filesystem. Reads
// and namespace operations pass through; writes, fsyncs, and renames
// consult the plan.
type FaultyFS struct {
	Inner vfs.FS
	Plan  *DiskPlan
}

var _ vfs.FS = FaultyFS{}

// MkdirAll implements vfs.FS.
func (f FaultyFS) MkdirAll(dir string, perm fs.FileMode) error { return f.Inner.MkdirAll(dir, perm) }

// Create implements vfs.FS.
func (f FaultyFS) Create(name string) (vfs.File, error) {
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, plan: f.Plan}, nil
}

// CreateTemp implements vfs.FS.
func (f FaultyFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	inner, err := f.Inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, plan: f.Plan}, nil
}

// Append implements vfs.FS.
func (f FaultyFS) Append(name string) (vfs.File, error) {
	inner, err := f.Inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, plan: f.Plan}, nil
}

// Open implements vfs.FS.
func (f FaultyFS) Open(name string) (vfs.File, error) { return f.Inner.Open(name) }

// ReadFile implements vfs.FS.
func (f FaultyFS) ReadFile(name string) ([]byte, error) { return f.Inner.ReadFile(name) }

// Rename implements vfs.FS.
func (f FaultyFS) Rename(oldpath, newpath string) error {
	if err := f.Plan.renameVerdict(newpath); err != nil {
		return err
	}
	return f.Inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (f FaultyFS) Remove(name string) error { return f.Inner.Remove(name) }

// Stat implements vfs.FS.
func (f FaultyFS) Stat(name string) (fs.FileInfo, error) { return f.Inner.Stat(name) }

// ReadDir implements vfs.FS.
func (f FaultyFS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(dir) }

// SyncDir implements vfs.FS. Directory fsync failures surface through
// the same sync verdict stream as file fsyncs.
func (f FaultyFS) SyncDir(dir string) error {
	if err := f.Plan.syncVerdict(dir); err != nil {
		return err
	}
	return f.Inner.SyncDir(dir)
}

// faultyFile wraps writes and fsyncs with plan verdicts.
type faultyFile struct {
	vfs.File
	plan *DiskPlan
}

func (h *faultyFile) Write(p []byte) (int, error) {
	short, flipAt, err := h.plan.writeVerdict(h.Name(), len(p))
	if err != nil {
		if short > 0 {
			n, werr := h.File.Write(p[:short])
			if werr != nil {
				return n, werr
			}
		}
		return max(short, 0), err
	}
	if flipAt >= 0 {
		flipped := append([]byte(nil), p...)
		flipped[flipAt] ^= 1 << 3
		return h.File.Write(flipped)
	}
	return h.File.Write(p)
}

func (h *faultyFile) Sync() error {
	if err := h.plan.syncVerdict(h.Name()); err != nil {
		return err
	}
	return h.File.Sync()
}
