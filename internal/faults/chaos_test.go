package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestChaosHealthyCompletes(t *testing.T) {
	msg, err := ChaosSpec{ID: "ok", Mode: ChaosHealthy}.Execute(context.Background(), 1, 0)
	if err != nil {
		t.Fatalf("healthy: %v", err)
	}
	if !strings.Contains(msg, "512 ticks") {
		t.Errorf("healthy message = %q, want a 512-tick completion", msg)
	}
}

func TestChaosErrorAndFlaky(t *testing.T) {
	if _, err := (ChaosSpec{ID: "boom", Mode: ChaosError}).Execute(context.Background(), 7, 0); err == nil {
		t.Fatal("error mode returned nil error")
	}
	flaky := ChaosSpec{ID: "fl", Mode: ChaosFlaky, BaseSeed: 42}
	if _, err := flaky.Execute(context.Background(), 42, 0); err == nil {
		t.Fatal("flaky succeeded on its base seed")
	}
	if _, err := flaky.Execute(context.Background(), 43, 0); err != nil {
		t.Fatalf("flaky failed on a reseed: %v", err)
	}
}

func TestChaosPanicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic mode did not panic")
		}
	}()
	ChaosSpec{ID: "p", Mode: ChaosPanic}.Execute(context.Background(), 1, 0)
}

func TestChaosHangHonorsContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := ChaosSpec{ID: "h", Mode: ChaosHang}.Execute(ctx, 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang under deadline = %v, want DeadlineExceeded", err)
	}
}

func TestChaosSpinTripsStepBudget(t *testing.T) {
	_, err := ChaosSpec{ID: "s", Mode: ChaosSpin}.Execute(context.Background(), 1, 50_000)
	if !errors.Is(err, sim.ErrBudgetExceeded) {
		t.Fatalf("spin under budget = %v, want ErrBudgetExceeded", err)
	}
}

func TestChaosSpinHonorsDeadlineWithoutBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ChaosSpec{ID: "s", Mode: ChaosSpin}.Execute(ctx, 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("spin under deadline = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("spin ran %v past a 30ms deadline", elapsed)
	}
}
