package faults

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

func newMachine(seed uint64) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

// attach builds a machine with an attached injector at the given config.
func attach(t *testing.T, seed uint64, cfg Config) (*system.Machine, *Injector) {
	t.Helper()
	m := newMachine(seed)
	inj := New(cfg, m.Rand(0xFA))
	if err := inj.Attach(m); err != nil {
		t.Fatal(err)
	}
	return m, inj
}

// TestInjectorReproducible: identical seeds must reproduce the whole
// fault transcript — counters and corrupted bit streams alike.
func TestInjectorReproducible(t *testing.T) {
	run := func() (Stats, channel.Bits) {
		m, inj := attach(t, 7, DefaultConfig(0.8))
		m.Spawn("load", 0, 0, 0, &workload.Stalling{Slice: 0})
		// A measuring thread exercises the sample-drop path.
		m.Spawn("probe", 1, 8, 0, &workload.Measure{
			Lines:      []cache.Line{1 << 22, 1<<22 + 64, 1<<22 + 128},
			PerQuantum: 10,
		})
		m.Run(400 * sim.Millisecond)
		bits := inj.CorruptBits(make(channel.Bits, 500))
		for i := 0; i < 50; i++ {
			inj.AckLost()
		}
		return inj.Stats(), bits
	}
	s1, b1 := run()
	s2, b2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("same seed, different stats:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Errorf("same seed, different corruption")
	}
	if s1.BurstSteps == 0 {
		t.Error("burst process never stepped")
	}
	if s1.HeldEpochs == 0 || s1.DroppedSamples == 0 || s1.ErasedBits == 0 {
		t.Errorf("intensity 0.8 injected too little: %+v", s1)
	}
}

// TestZeroIntensityIsClean: the zero-intensity config must not perturb
// anything observable.
func TestZeroIntensityIsClean(t *testing.T) {
	m, inj := attach(t, 3, DefaultConfig(0))
	m.Spawn("load", 0, 0, 0, &workload.Stalling{Slice: 0})
	m.Run(300 * sim.Millisecond)
	bits := channel.Bits{1, 0, 1, 1, 0, 0, 1, 0}
	out := inj.CorruptBits(append(channel.Bits{}, bits...))
	if !reflect.DeepEqual(out, bits) {
		t.Error("zero intensity corrupted bits")
	}
	st := inj.Stats()
	if st.BadSteps != 0 || st.HeldEpochs != 0 || st.DroppedSamples != 0 ||
		st.Preemptions != 0 || st.ErasedBits != 0 || st.LostAcks != 0 {
		t.Errorf("zero intensity injected faults: %+v", st)
	}
	if inj.AckLost() {
		t.Error("zero intensity lost an ack")
	}
}

// TestBurstsRaiseUncoreFrequency: while the burst process is bad, the
// gated co-runners stall and the governor pins the socket's uncore high
// — the §4.3.3 corruption mode. A quiet injector must leave the socket
// idle.
func TestBurstsRaiseUncoreFrequency(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Burst = GilbertElliott{PGoodToBad: 1, PBadToGood: 0} // permanently bad
	cfg.EpochHoldProb, cfg.EpochDriftPPM = 0, 0              // isolate the burst path
	m, inj := attach(t, 5, cfg)
	m.Run(400 * sim.Millisecond)
	if !inj.Bursting() {
		t.Fatal("P(good→bad)=1 not bursting")
	}
	if got := m.Socket(cfg.CoRunnerSocket).Uncore(); got < 20 {
		t.Errorf("bursting co-runners left uncore at %v, want pinned high", got)
	}

	quiet := DefaultConfig(1)
	quiet.Burst = GilbertElliott{} // never bad
	m2, inj2 := attach(t, 5, quiet)
	m2.Run(400 * sim.Millisecond)
	if inj2.Bursting() {
		t.Fatal("P(good→bad)=0 bursting")
	}
	if got := m2.Socket(quiet.CoRunnerSocket).Uncore(); got > 15 {
		t.Errorf("idle co-runners pushed uncore to %v, want idle band", got)
	}
}

// TestGovernorHoldsFreezeRamp: holding every decision freezes the
// frequency regardless of demand.
func TestGovernorHoldsFreezeRamp(t *testing.T) {
	cfg := Config{EpochHoldProb: 1}
	m, inj := attach(t, 9, cfg)
	before := m.Socket(0).Uncore()
	m.Spawn("stall", 0, 0, 0, &workload.Stalling{Slice: 0})
	m.Run(300 * sim.Millisecond)
	if got := m.Socket(0).Uncore(); got != before {
		t.Errorf("held governor moved %v → %v", before, got)
	}
	if inj.Stats().HeldEpochs == 0 {
		t.Error("no epochs recorded held")
	}
	if got := m.Socket(0).Gov.HeldEpochs(); got == 0 {
		t.Error("governor's own held counter is zero")
	}
}

// TestErasuresCluster: the per-bit Gilbert–Elliott chain must persist
// across CorruptBits calls (a burst spans frame boundaries) and count
// every erasure.
func TestErasuresCluster(t *testing.T) {
	cfg := Config{
		Erasure:     GilbertElliott{PGoodToBad: 0.05, PBadToGood: 0.2},
		ErasureGood: 0,
		ErasureBad:  1,
	}
	inj := New(cfg, sim.NewRand(11))
	erased := 0
	for i := 0; i < 40; i++ {
		out := inj.CorruptBits(make(channel.Bits, 25))
		for _, b := range out {
			if b != 0 {
				erased++ // flipped half of the erasures
			}
		}
	}
	st := inj.Stats()
	if st.ErasedBits == 0 {
		t.Fatal("no erasures")
	}
	if erased == 0 || erased > st.ErasedBits {
		t.Errorf("%d observable flips vs %d erasures", erased, st.ErasedBits)
	}
	// A memoryless process with these rates erases ~20%; clustering is
	// what the two-state chain is for, so the count must sit well below
	// the all-bad rate and above the all-good one.
	if st.ErasedBits == 40*25 {
		t.Error("erasure chain stuck bad")
	}
}

// TestAttachTwiceFails: one injector drives one machine.
func TestAttachTwiceFails(t *testing.T) {
	m, inj := attach(t, 1, DefaultConfig(0.5))
	if err := inj.Attach(m); err == nil {
		t.Fatal("second Attach accepted")
	}
}

// TestConcurrentInjectorsIndependent: one injector per machine, many
// machines in parallel — the shape of a sweep experiment. Under -race
// this proves injectors share no mutable state; equal seeds must still
// agree exactly.
func TestConcurrentInjectorsIndependent(t *testing.T) {
	const n = 8
	stats := make([]Stats, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, inj := attach(t, 42, DefaultConfig(0.7)) // same seed on purpose
			m.Spawn("load", 0, 0, 0, &workload.Stalling{Slice: 0})
			m.Run(300 * sim.Millisecond)
			inj.CorruptBits(make(channel.Bits, 200))
			stats[i] = inj.Stats()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(stats[0], stats[i]) {
			t.Errorf("machine %d diverged from machine 0:\n%+v\n%+v", i, stats[0], stats[i])
		}
	}
}
