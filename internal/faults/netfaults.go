package faults

import (
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/sim"
)

// Network faults: where the rest of this package perturbs the simulated
// platform and the chaos specs misbehave inside one process, NetPlan
// misbehaves at the *distribution* boundary — the coordinator/worker
// protocol of internal/sweepd. It issues deterministic per-call
// verdicts (drop the request, drop the response, duplicate, delay),
// opens partition windows during which a worker's every call fails, and
// schedules mid-trial worker kills. The plan is pure decision logic: it
// never touches sockets, so the same plan drives the in-process
// loopback transport in tests and could front a real HTTP client
// unchanged (sweepd.FaultyClient does the wrapping).
//
// Determinism: each worker gets its own sim.Rand stream split from the
// plan seed by a stable hash of the worker ID. A worker's verdict
// sequence depends only on (seed, worker ID, call index) — not on
// scheduling — so a chaos run's fault pattern is reproducible even
// though goroutine interleaving is not.

// NetVerdict is the fate of one protocol call.
type NetVerdict struct {
	// DropRequest loses the call before delivery: the coordinator never
	// sees it and the caller gets a transport error.
	DropRequest bool
	// DropResponse delivers the call but loses the reply: the
	// coordinator acts on it, the caller gets a transport error and
	// will retry — the duplicate-delivery path idempotency must absorb.
	DropResponse bool
	// Duplicate delivers the call twice back to back.
	Duplicate bool
	// Delay stalls the call before delivery.
	Delay time.Duration
}

// Failed reports whether the caller observes this verdict as an error.
func (v NetVerdict) Failed() bool { return v.DropRequest || v.DropResponse }

// NetConfig describes one network-fault mix. The zero value injects
// nothing; DefaultNetConfig scales a representative mix by one
// intensity knob.
type NetConfig struct {
	// Intensity records the master knob the config was scaled from
	// (diagnostics only; the individual fields are what act).
	Intensity float64

	// DropRequestProb and DropResponseProb are per-call loss
	// probabilities; DuplicateProb re-delivers a call twice.
	DropRequestProb  float64
	DropResponseProb float64
	DuplicateProb    float64

	// DelayProb stalls a call for a uniform draw from (0, DelayMax].
	DelayProb float64
	DelayMax  time.Duration

	// PartitionProb is the per-call chance that a partition window
	// opens around the calling worker; for PartitionFor, every one of
	// its calls is dropped before delivery (heartbeats included, which
	// is what makes leases expire under partitions).
	PartitionProb float64
	PartitionFor  time.Duration

	// KillEveryUnits schedules mid-trial worker kills: a worker is
	// marked to die while running roughly every nth unit it starts
	// (per-worker deterministic draw in [n/2, 3n/2)). Zero disables
	// kills. The transport cannot kill a process; the sweepd worker
	// honors the schedule by dying without completing or releasing —
	// exactly the crash shape lease expiry exists to absorb.
	KillEveryUnits int
}

// DefaultNetConfig scales a representative fault mix by intensity in
// [0, 1]: at 0 nothing is injected; at 1 roughly a third of calls
// misbehave and workers die every few units.
func DefaultNetConfig(intensity float64) NetConfig {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	cfg := NetConfig{
		Intensity:        intensity,
		DropRequestProb:  0.08 * intensity,
		DropResponseProb: 0.08 * intensity,
		DuplicateProb:    0.10 * intensity,
		DelayProb:        0.15 * intensity,
		DelayMax:         20 * time.Millisecond,
		PartitionProb:    0.01 * intensity,
		PartitionFor:     150 * time.Millisecond,
	}
	if intensity > 0 {
		// 1/intensity keeps kills rare at low intensity without a
		// cliff at zero.
		cfg.KillEveryUnits = int(6.0/intensity + 0.5)
	}
	return cfg
}

// NetStats counts injected network faults.
type NetStats struct {
	Calls, DroppedRequests, DroppedResponses, Duplicates, Delayed int
	Partitions, PartitionedCalls                                  int
}

// NetPlan issues deterministic verdicts for one sweep's protocol
// traffic. Safe for concurrent use by many workers.
type NetPlan struct {
	cfg  NetConfig
	seed uint64

	mu      sync.Mutex
	streams map[string]*sim.Rand
	// partitionedUntil holds each worker's open partition window.
	partitionedUntil map[string]time.Time
	stats            NetStats
}

// NewNetPlan builds a plan over cfg, deterministic in seed.
func NewNetPlan(cfg NetConfig, seed uint64) *NetPlan {
	return &NetPlan{
		cfg:              cfg,
		seed:             seed,
		streams:          map[string]*sim.Rand{},
		partitionedUntil: map[string]time.Time{},
	}
}

// Config returns the plan's fault mix.
func (p *NetPlan) Config() NetConfig { return p.cfg }

// stream returns worker's private rand, split from the plan seed by a
// stable hash of the ID (lock held).
func (p *NetPlan) stream(worker string) *sim.Rand {
	r, ok := p.streams[worker]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(worker))
		r = sim.NewRand(p.seed ^ h.Sum64())
		p.streams[worker] = r
	}
	return r
}

// Next issues the verdict for worker's next protocol call at now.
func (p *NetPlan) Next(worker string, now time.Time) NetVerdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Calls++
	rng := p.stream(worker)

	if until, ok := p.partitionedUntil[worker]; ok {
		if now.Before(until) {
			p.stats.PartitionedCalls++
			return NetVerdict{DropRequest: true}
		}
		delete(p.partitionedUntil, worker)
	}
	if p.cfg.PartitionProb > 0 && rng.Bool(p.cfg.PartitionProb) {
		p.partitionedUntil[worker] = now.Add(p.cfg.PartitionFor)
		p.stats.Partitions++
		p.stats.PartitionedCalls++
		return NetVerdict{DropRequest: true}
	}

	var v NetVerdict
	if p.cfg.DelayProb > 0 && p.cfg.DelayMax > 0 && rng.Bool(p.cfg.DelayProb) {
		v.Delay = time.Duration(1 + rng.IntN(int(p.cfg.DelayMax)))
		p.stats.Delayed++
	}
	switch {
	case p.cfg.DropRequestProb > 0 && rng.Bool(p.cfg.DropRequestProb):
		v.DropRequest = true
		p.stats.DroppedRequests++
	case p.cfg.DropResponseProb > 0 && rng.Bool(p.cfg.DropResponseProb):
		v.DropResponse = true
		p.stats.DroppedResponses++
	case p.cfg.DuplicateProb > 0 && rng.Bool(p.cfg.DuplicateProb):
		v.Duplicate = true
		p.stats.Duplicates++
	}
	return v
}

// KillAfterUnits returns after how many started units worker should die
// mid-trial (0 = never). The draw is per-worker deterministic, uniform
// in [n/2, 3n/2) around the configured mean.
func (p *NetPlan) KillAfterUnits(worker string) int {
	n := p.cfg.KillEveryUnits
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// A dedicated split keeps the kill draw from perturbing the per-call
	// verdict stream.
	h := fnv.New64a()
	h.Write([]byte(worker))
	rng := sim.NewRand(p.seed ^ h.Sum64() ^ 0x6b111beef)
	lo := n / 2
	if lo < 1 {
		lo = 1
	}
	return lo + rng.IntN(n)
}

// Stats snapshots the injected-fault counters.
func (p *NetPlan) Stats() NetStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
