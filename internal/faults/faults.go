// Package faults is a deterministic, seed-reproducible fault injector
// for the simulated platform. The paper's §4.3.3 reliability study
// perturbs the channel with stress-ng bursts on sender, receiver, and
// third-party cores; related frequency channels (TurboCC, IChannels)
// report the same sharp BER cliffs under co-located load. This package
// generalises that noise into a composable fault model that any
// experiment can attach to a machine:
//
//   - Co-runner activity bursts: a Gilbert–Elliott good/bad process,
//     advanced by a sim.Engine ticker, gates stalling co-runner threads
//     (internal/workload stressors) on and off. Bursts stall extra
//     cores, so the governor's stall rule pins the frequency and "0"
//     intervals decode as "1"s — the paper's dominant corruption mode.
//   - Governor decision faults: phase drift (the PCU's decision point
//     sliding relative to the epoch boundary, modelled as periodically
//     held decisions) and decision jitter (randomly held epochs),
//     installed through ufs.Governor.SetFault.
//   - Measurement-path faults: receiver sample drops (an interrupt
//     inside the rdtscp bracket loses the measurement) and
//     OS-preemption gaps (an involuntary context switch steals part of
//     a quantum), installed through system.Machine.SetFaults.
//   - Channel-boundary erasures: a second, per-bit Gilbert–Elliott
//     process erases transmitted bits (the receiver reads noise), via
//     CorruptBits on the decoded bit stream.
//   - Feedback loss: the reverse (ACK) channel loses a verdict with a
//     configurable probability, via AckLost.
//   - Synchronization faults: an unknown sender/receiver start phase
//     (StartOffset, drawn once per session), a wandering receiver clock
//     (ReceiverClock, a slowly varying ppm error), and rare long
//     receiver blackouts (DesyncPreemption) — the processes the
//     self-synchronizing receiver in channel/ufvariation must survive.
//
// Everything draws from sim.Rand streams split off one parent, so a
// faulted run is bit-for-bit reproducible from its seed. One Injector
// drives one machine; injectors for different machines are independent
// and may run concurrently.
package faults

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/ufs"
	"repro/internal/workload"
)

// GilbertElliott is a two-state burst process: long quiet stretches in
// the good state, clustered trouble in the bad state. The per-step
// transition probabilities set the burst frequency and length.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are the per-step transition
	// probabilities.
	PGoodToBad, PBadToGood float64
}

// step advances the chain one step and returns the new state.
func (g GilbertElliott) step(bad bool, rng *sim.Rand) bool {
	if bad {
		return !rng.Bool(g.PBadToGood)
	}
	return rng.Bool(g.PGoodToBad)
}

// Config describes one fault mix. The zero value injects nothing;
// DefaultConfig scales a representative mix by a single intensity knob.
type Config struct {
	// Intensity records the master knob the config was scaled from
	// (diagnostics only; the individual fields are what act).
	Intensity float64

	// Burst is the co-runner activity process, advanced every
	// BurstStep of virtual time.
	Burst     GilbertElliott
	BurstStep sim.Time
	// CoRunners is how many gated stalling threads to spawn; they run
	// only while the burst process is in the bad state.
	CoRunners int
	// CoRunnerSocket hosts the co-runners; they take the highest cores
	// of the socket (the §4.3.3 "third core" placement, clear of the
	// low-numbered channel parties).
	CoRunnerSocket int

	// EpochHoldProb is the per-epoch probability that a governor
	// decision is held (decision jitter).
	EpochHoldProb float64
	// EpochDriftPPM is the governor decision point's phase drift in
	// parts per million; each time the accumulated drift crosses a
	// full epoch one decision is held and the accumulator resets.
	EpochDriftPPM float64

	// SampleDropProb is the per-measurement probability that a timed
	// load's sample is lost.
	SampleDropProb float64
	// PreemptProb is the per-thread, per-quantum probability of an
	// OS-preemption gap of PreemptGap (clamped to the quantum).
	PreemptProb float64
	PreemptGap  sim.Time

	// Erasure is the channel-boundary bit process (advanced per bit);
	// ErasureGood/ErasureBad are the per-bit erasure probabilities in
	// each state. An erased bit is replaced by noise (a fair coin).
	Erasure     GilbertElliott
	ErasureGood float64
	ErasureBad  float64

	// AckLossProb is the probability that a reverse-channel verdict is
	// lost in transit.
	AckLossProb float64

	// StartOffsetBits is the maximum unknown phase between sender and
	// receiver, in bit intervals of the first transmission: the actual
	// offset is drawn uniformly once per injector and then held — two
	// processes that started at an unknown relative instant keep that
	// instant for the whole session.
	StartOffsetBits float64
	// WanderAmpPPM and WanderPeriod define a sinusoidal receiver clock
	// wander: the clock-rate error swings ±WanderAmpPPM over each
	// WanderPeriod (a slowly varying ppm fault — thermal TSC drift).
	// The wander's initial phase is drawn once per injector.
	WanderAmpPPM float64
	WanderPeriod sim.Time
	// DesyncPreemptProb is the per-transmission probability of one long
	// receiver blackout of DesyncPreemptBits bit intervals — an
	// involuntary descheduling long enough to freeze the receiver's
	// loop-progress timebase past any tracker's pull-in range.
	DesyncPreemptProb float64
	DesyncPreemptBits float64
}

// DefaultConfig returns a representative fault mix scaled by intensity
// in [0, 1]: zero is a clean platform; one combines frequent co-runner
// bursts, noticeable governor jitter, a lossy measurement path, and a
// bursty erasure channel — enough to push the raw channel's BER well
// past the paper's Table 2 degradation.
func DefaultConfig(intensity float64) Config {
	i := intensity
	if i < 0 {
		i = 0
	}
	if i > 1 {
		i = 1
	}
	// The mix is deliberately weighted toward faults a slower bit rate
	// can absorb (governor decision jitter stretches transitions by an
	// epoch or two — fatal inside a 33 ms bit, invisible inside a 264 ms
	// one), with the interval-independent processes (co-runner bursts,
	// bit erasures) kept below the Hamming correction radius so the
	// transport's rate fallback has something to fall back *to*.
	return Config{
		Intensity:      i,
		Burst:          GilbertElliott{PGoodToBad: 0.015 * i, PBadToGood: 0.4},
		BurstStep:      5 * sim.Millisecond,
		CoRunners:      2,
		CoRunnerSocket: 0,
		EpochHoldProb:  0.3 * i,
		EpochDriftPPM:  1500 * i,
		SampleDropProb: 0.15 * i,
		PreemptProb:    0.05 * i,
		PreemptGap:     200 * sim.Microsecond,
		Erasure:        GilbertElliott{PGoodToBad: 0.015 * i, PBadToGood: 0.25},
		ErasureGood:    0.01 * i,
		ErasureBad:     0.35 * i,
		AckLossProb:    0.08 * i,
	}
}

// Stats counts what the injector actually did; useful both for
// reporting and for asserting reproducibility (equal seeds must yield
// equal stats).
type Stats struct {
	// BurstSteps and BadSteps count burst-process updates and how many
	// landed in the bad state.
	BurstSteps, BadSteps int
	// HeldEpochs counts governor decisions held (jitter + drift).
	HeldEpochs int
	// DroppedSamples and Preemptions count measurement-path faults.
	DroppedSamples, Preemptions int
	// ErasedBits counts channel-boundary erasures.
	ErasedBits int
	// LostAcks counts reverse-channel verdicts lost.
	LostAcks int
	// DesyncPreemptions counts long receiver blackouts injected.
	DesyncPreemptions int
}

// Injector drives one machine's fault processes. It is not safe for
// concurrent use; give each machine its own injector.
type Injector struct {
	cfg Config

	burstRng, epochRng, sampleRng, bitRng, ackRng, clockRng *sim.Rand

	bursting   bool
	bitBad     bool
	stats      Stats
	attached   bool
	haveOffset bool
	offset     sim.Time
	clock      func(sim.Time) sim.Time
	haveClock  bool
}

// New returns an injector drawing all randomness from streams split off
// rng. Passing the same config and an identically seeded rng reproduces
// the exact fault sequence.
func New(cfg Config, rng *sim.Rand) *Injector {
	return &Injector{
		cfg:       cfg,
		burstRng:  rng.Split(1),
		epochRng:  rng.Split(2),
		sampleRng: rng.Split(3),
		bitRng:    rng.Split(4),
		ackRng:    rng.Split(5),
		clockRng:  rng.Split(6),
	}
}

// Config returns the injector's fault mix.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats returns the injection counters so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// Bursting reports whether the co-runner burst process is in its bad
// state.
func (inj *Injector) Bursting() bool { return inj.bursting }

// gated runs its inner workload only while the injector is bursting.
type gated struct {
	inj   *Injector
	inner system.Workload
}

func (g *gated) Step(ctx *system.Ctx) system.Activity {
	if !g.inj.bursting {
		return system.Activity{}
	}
	return g.inner.Step(ctx)
}

// Attach wires the injector into m: it registers the burst-process
// ticker, spawns the gated co-runner threads, installs the governor
// fault hook on every socket, and installs the machine-level
// measurement-path hook. Attach may be called once per injector.
func (inj *Injector) Attach(m *system.Machine) error {
	if inj.attached {
		return fmt.Errorf("faults: injector already attached")
	}
	inj.attached = true

	// Burst process: advance before the workload quantum so a state
	// flip is visible to the quantum it belongs to.
	if inj.cfg.CoRunners > 0 || inj.cfg.Burst.PGoodToBad > 0 {
		step := inj.cfg.BurstStep
		if step <= 0 {
			step = 5 * sim.Millisecond
		}
		m.Engine().Add(&sim.Ticker{
			Name:     "fault-burst",
			Period:   step,
			Priority: -10,
			Fn: func(now sim.Time) {
				inj.bursting = inj.cfg.Burst.step(inj.bursting, inj.burstRng)
				inj.stats.BurstSteps++
				if inj.bursting {
					inj.stats.BadSteps++
				}
			},
		})
	}

	// Co-runners on the highest cores of the socket, stalling a
	// far-ish slice while bursting (the stall rule pins the uncore at
	// the maximum, §3.2 — the §4.3.3 corruption mode).
	if inj.cfg.CoRunners > 0 {
		sock := inj.cfg.CoRunnerSocket
		die := m.Socket(sock).Die
		for i := 0; i < inj.cfg.CoRunners; i++ {
			core := die.NumCores() - 1 - i
			if core < 0 || m.CoreBusy(sock, core) {
				return fmt.Errorf("faults: no free core for co-runner %d on socket %d", i, sock)
			}
			slice, ok := die.SliceAtHops(core, 2)
			if !ok {
				slice, _ = die.SliceAtHops(core, 1)
			}
			m.Spawn(fmt.Sprintf("fault-corunner-%d", i), sock, core, 0,
				&gated{inj: inj, inner: &workload.Stalling{Slice: slice}})
		}
	}

	// Governor decision faults, one drift accumulator per socket.
	if inj.cfg.EpochHoldProb > 0 || inj.cfg.EpochDriftPPM > 0 {
		epoch := m.Config().UFS.Epoch
		for _, s := range m.Sockets() {
			drift := sim.Time(0)
			perEpoch := sim.Time(float64(epoch) * inj.cfg.EpochDriftPPM * 1e-6)
			s.Gov.SetFault(func(stats *ufs.EpochStats) bool {
				hold := false
				drift += perEpoch
				if drift >= epoch {
					drift -= epoch
					hold = true
				}
				if inj.cfg.EpochHoldProb > 0 && inj.epochRng.Bool(inj.cfg.EpochHoldProb) {
					hold = true
				}
				if hold {
					inj.stats.HeldEpochs++
				}
				return hold
			})
		}
	}

	if inj.cfg.SampleDropProb > 0 || inj.cfg.PreemptProb > 0 {
		m.SetFaults(inj)
	}
	return nil
}

// PreemptGap implements system.Faults.
func (inj *Injector) PreemptGap(thread string, now sim.Time) sim.Time {
	if inj.cfg.PreemptProb <= 0 || !inj.sampleRng.Bool(inj.cfg.PreemptProb) {
		return 0
	}
	inj.stats.Preemptions++
	gap := inj.cfg.PreemptGap
	if gap <= 0 {
		gap = 200 * sim.Microsecond
	}
	return gap
}

// DropSample implements system.Faults.
func (inj *Injector) DropSample(thread string, now sim.Time) bool {
	if inj.cfg.SampleDropProb <= 0 || !inj.sampleRng.Bool(inj.cfg.SampleDropProb) {
		return false
	}
	inj.stats.DroppedSamples++
	return true
}

// CorruptBits applies the channel-boundary erasure process to a decoded
// bit stream and returns the corrupted copy. The per-bit Gilbert–
// Elliott state persists across calls, so erasures cluster across frame
// boundaries the way a shared-resource burst would.
func (inj *Injector) CorruptBits(bits channel.Bits) channel.Bits {
	out := append(channel.Bits{}, bits...)
	if inj.cfg.ErasureGood <= 0 && inj.cfg.ErasureBad <= 0 {
		return out
	}
	for i := range out {
		inj.bitBad = inj.cfg.Erasure.step(inj.bitBad, inj.bitRng)
		p := inj.cfg.ErasureGood
		if inj.bitBad {
			p = inj.cfg.ErasureBad
		}
		if p > 0 && inj.bitRng.Bool(p) {
			inj.stats.ErasedBits++
			// An erasure is noise, not an inversion: the receiver
			// reads a coin flip.
			if inj.bitRng.Bool(0.5) {
				out[i] ^= 1
			}
		}
	}
	return out
}

// StartOffset returns the session's unknown sender/receiver phase: a
// uniform draw from [0, StartOffsetBits] bit intervals of the interval
// passed on the FIRST call, latched thereafter — the offset is a
// property of when the two processes started, constant in time even
// when the transport later changes its bit interval.
func (inj *Injector) StartOffset(interval sim.Time) sim.Time {
	if inj.cfg.StartOffsetBits <= 0 || interval <= 0 {
		return 0
	}
	if !inj.haveOffset {
		inj.offset = sim.Time(inj.clockRng.Float64() * inj.cfg.StartOffsetBits * float64(interval))
		inj.haveOffset = true
	}
	return inj.offset
}

// ReceiverClock returns the receiver's clock map — local time as a
// function of true elapsed time — combining a constant basePPM rate
// error with the configured sinusoidal wander, or nil when neither is
// set. The map is built once per injector (one session, one clock) and
// satisfies Clock(0) == 0.
func (inj *Injector) ReceiverClock(basePPM float64) func(sim.Time) sim.Time {
	if !inj.haveClock {
		inj.haveClock = true
		amp := inj.cfg.WanderAmpPPM
		period := inj.cfg.WanderPeriod
		if amp <= 0 || period <= 0 {
			if basePPM != 0 {
				rate := 1 + basePPM*1e-6
				inj.clock = func(rel sim.Time) sim.Time { return sim.Time(float64(rel) * rate) }
			}
		} else {
			// Rate error basePPM + amp·sin(2πt/T + φ); integrate
			// analytically so the map is exact at any query point.
			phi := inj.clockRng.Float64() * 2 * math.Pi
			w := 2 * math.Pi / float64(period)
			inj.clock = func(rel sim.Time) sim.Time {
				t := float64(rel)
				wander := amp * 1e-6 / w * (math.Cos(phi) - math.Cos(w*t+phi))
				return sim.Time(t*(1+basePPM*1e-6) + wander)
			}
		}
	}
	return inj.clock
}

// DesyncPreemption draws at most one long receiver blackout for a
// transmission of nbits bit intervals: with probability
// DesyncPreemptProb the receiver is descheduled for DesyncPreemptBits
// intervals, starting uniformly within the middle half of the
// transmission. It returns ok=false when no blackout fires.
func (inj *Injector) DesyncPreemption(nbits int, interval sim.Time) (at, dur sim.Time, ok bool) {
	if inj.cfg.DesyncPreemptProb <= 0 || inj.cfg.DesyncPreemptBits <= 0 || nbits <= 0 {
		return 0, 0, false
	}
	if !inj.clockRng.Bool(inj.cfg.DesyncPreemptProb) {
		return 0, 0, false
	}
	inj.stats.DesyncPreemptions++
	span := sim.Time(nbits) * interval
	at = span/4 + sim.Time(inj.clockRng.Float64()*float64(span)/2)
	dur = sim.Time(inj.cfg.DesyncPreemptBits * float64(interval))
	return at, dur, true
}

// AckLost reports whether the reverse channel loses the next verdict.
func (inj *Injector) AckLost() bool {
	if inj.cfg.AckLossProb <= 0 || !inj.ackRng.Bool(inj.cfg.AckLossProb) {
		return false
	}
	inj.stats.LostAcks++
	return true
}
