// Package trace records time series produced during simulation — uncore
// frequency traces (Figures 5–7, 11, 12) and LLC latency traces (Figure 9)
// — and renders them as TSV for offline plotting.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Sample is one timestamped observation.
type Sample struct {
	At    sim.Time
	Value float64
}

// Series is a named sequence of samples.
type Series struct {
	Name    string
	Samples []Sample
	// KeepEvery, when ≥ 2, downsamples on the way in: Add retains the
	// first of every KeepEvery observations and drops the rest. Long
	// recordings (a multi-minute transmission sampled every 200 µs)
	// keep a bounded sketch of the trace instead of every point. 0 and
	// 1 keep everything.
	KeepEvery int

	seen int // observations offered to Add, including dropped ones
}

// Add appends an observation, subject to KeepEvery downsampling.
func (s *Series) Add(at sim.Time, v float64) {
	if s.KeepEvery >= 2 {
		keep := s.seen%s.KeepEvery == 0
		s.seen++
		if !keep {
			return
		}
	}
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Reserve grows the sample buffer to hold at least n samples without
// further allocation, so a sampler whose run length is known up front
// (settle+window over a fixed period) fills a single allocation instead
// of growing through append doublings.
func (s *Series) Reserve(n int) {
	if cap(s.Samples)-len(s.Samples) >= n {
		return
	}
	grown := make([]Sample, len(s.Samples), len(s.Samples)+n)
	copy(grown, s.Samples)
	s.Samples = grown
}

// Values returns just the observed values, in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Value
	}
	return out
}

// Window returns the values observed in [from, to).
func (s *Series) Window(from, to sim.Time) []float64 {
	var out []float64
	for _, sm := range s.Samples {
		if sm.At >= from && sm.At < to {
			out = append(out, sm.Value)
		}
	}
	return out
}

// StepTimes returns the instants at which the value changed, useful for
// verifying the ~10 ms spacing annotations of Figures 5 and 6.
func (s *Series) StepTimes() []sim.Time {
	var out []sim.Time
	for i := 1; i < len(s.Samples); i++ {
		if s.Samples[i].Value != s.Samples[i-1].Value {
			out = append(out, s.Samples[i].At)
		}
	}
	return out
}

// WriteTSV renders one or more series sharing a time axis, one row per
// sample index: time_ms followed by each series' value. Series must be
// sampled in lockstep (same length and instants); it returns an error
// otherwise.
func WriteTSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0].Samples)
	fmt.Fprint(w, "time_ms")
	for _, s := range series {
		if len(s.Samples) != n {
			return fmt.Errorf("trace: series %q has %d samples, want %d", s.Name, len(s.Samples), n)
		}
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%.3f", series[0].Samples[i].At.Milliseconds())
		for _, s := range series {
			fmt.Fprintf(w, "\t%g", s.Samples[i].Value)
		}
		fmt.Fprintln(w)
	}
	return nil
}
