package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "f"}
	s.Add(10*sim.Millisecond, 1.5)
	s.Add(20*sim.Millisecond, 1.6)
	s.Add(30*sim.Millisecond, 1.6)
	if got := s.Values(); len(got) != 3 || got[1] != 1.6 {
		t.Errorf("Values() = %v", got)
	}
	w := s.Window(15*sim.Millisecond, 30*sim.Millisecond)
	if len(w) != 1 || w[0] != 1.6 {
		t.Errorf("Window = %v", w)
	}
}

func TestStepTimes(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{1.5, 1.5, 1.6, 1.6, 1.7, 1.7, 1.7, 1.6} {
		s.Add(sim.Time(i)*10*sim.Millisecond, v)
	}
	steps := s.StepTimes()
	want := []sim.Time{20 * sim.Millisecond, 40 * sim.Millisecond, 70 * sim.Millisecond}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	a, b := &Series{Name: "a"}, &Series{Name: "b"}
	a.Add(sim.Millisecond, 1)
	b.Add(sim.Millisecond, 2)
	a.Add(2*sim.Millisecond, 3)
	b.Add(2*sim.Millisecond, 4)
	var sb strings.Builder
	if err := WriteTSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_ms\ta\tb\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1.000\t1\t2") || !strings.Contains(out, "2.000\t3\t4") {
		t.Errorf("rows wrong: %q", out)
	}
}

func TestWriteTSVLengthMismatch(t *testing.T) {
	a, b := &Series{Name: "a"}, &Series{Name: "b"}
	a.Add(sim.Millisecond, 1)
	var sb strings.Builder
	if err := WriteTSV(&sb, a, b); err == nil {
		t.Error("ragged series accepted")
	}
	if err := WriteTSV(&sb); err != nil {
		t.Error("zero series should be a no-op")
	}
}
