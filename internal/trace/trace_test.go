package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "f"}
	s.Add(10*sim.Millisecond, 1.5)
	s.Add(20*sim.Millisecond, 1.6)
	s.Add(30*sim.Millisecond, 1.6)
	if got := s.Values(); len(got) != 3 || got[1] != 1.6 {
		t.Errorf("Values() = %v", got)
	}
	w := s.Window(15*sim.Millisecond, 30*sim.Millisecond)
	if len(w) != 1 || w[0] != 1.6 {
		t.Errorf("Window = %v", w)
	}
}

func TestStepTimes(t *testing.T) {
	s := &Series{}
	for i, v := range []float64{1.5, 1.5, 1.6, 1.6, 1.7, 1.7, 1.7, 1.6} {
		s.Add(sim.Time(i)*10*sim.Millisecond, v)
	}
	steps := s.StepTimes()
	want := []sim.Time{20 * sim.Millisecond, 40 * sim.Millisecond, 70 * sim.Millisecond}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
}

func TestWriteTSV(t *testing.T) {
	a, b := &Series{Name: "a"}, &Series{Name: "b"}
	a.Add(sim.Millisecond, 1)
	b.Add(sim.Millisecond, 2)
	a.Add(2*sim.Millisecond, 3)
	b.Add(2*sim.Millisecond, 4)
	var sb strings.Builder
	if err := WriteTSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_ms\ta\tb\n") {
		t.Errorf("header wrong: %q", out)
	}
	if !strings.Contains(out, "1.000\t1\t2") || !strings.Contains(out, "2.000\t3\t4") {
		t.Errorf("rows wrong: %q", out)
	}
}

func TestWriteTSVLengthMismatch(t *testing.T) {
	a, b := &Series{Name: "a"}, &Series{Name: "b"}
	a.Add(sim.Millisecond, 1)
	var sb strings.Builder
	if err := WriteTSV(&sb, a, b); err == nil {
		t.Error("ragged series accepted")
	}
	if err := WriteTSV(&sb); err != nil {
		t.Error("zero series should be a no-op")
	}
}

func TestReserveAvoidsRegrowth(t *testing.T) {
	s := &Series{}
	s.Reserve(100)
	if cap(s.Samples) < 100 {
		t.Fatalf("cap after Reserve = %d, want >= 100", cap(s.Samples))
	}
	before := cap(s.Samples)
	for i := 0; i < 100; i++ {
		s.Add(sim.Time(i)*sim.Millisecond, float64(i))
	}
	if cap(s.Samples) != before {
		t.Errorf("buffer regrew (%d -> %d) despite Reserve", before, cap(s.Samples))
	}
	// Reserving less than the free space is a no-op.
	s.Reserve(0)
	if cap(s.Samples) != before {
		t.Error("no-op Reserve reallocated")
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.Samples = s.Samples[:0]
		for i := 0; i < 100; i++ {
			s.Add(sim.Time(i)*sim.Millisecond, float64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("reserved series allocates %.1f/op on refill, want 0", allocs)
	}
}

// ramp is a piecewise-monotone test signal: long rising and falling
// segments, like an uncore frequency trace stepping between plateaus.
func ramp(i int) float64 {
	const period = 40
	ph := i % period
	if ph < period/2 {
		return float64(ph)
	}
	return float64(period - ph)
}

// TestKeepEveryEnvelope checks the downsampling contract: every k-th
// observation is retained verbatim, and — because the signal's monotone
// segments are longer than k — every dropped sample is bracketed by the
// envelope of its two retained neighbours. Downsampling a frequency
// trace for storage must not invent values outside the real excursion.
func TestKeepEveryEnvelope(t *testing.T) {
	const n, k = 400, 5
	full := &Series{}
	down := &Series{KeepEvery: k}
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 200 * sim.Microsecond
		full.Add(at, ramp(i))
		down.Add(at, ramp(i))
	}
	want := (n + k - 1) / k
	if len(down.Samples) != want {
		t.Fatalf("downsampled to %d samples, want %d", len(down.Samples), want)
	}
	for j, smp := range down.Samples {
		orig := full.Samples[j*k]
		if smp != orig {
			t.Fatalf("retained sample %d = %+v, want original %+v", j, smp, orig)
		}
	}
	// Envelope bracketing: each dropped original sample lies within the
	// value range of the retained samples surrounding it.
	last := (len(down.Samples) - 1) * k
	for i, smp := range full.Samples {
		if i%k == 0 || i > last {
			// Retained verbatim, or past the final retained sample
			// (no right bracket exists for the tail).
			continue
		}
		loIdx, hiIdx := i/k, i/k+1
		lo, hi := down.Samples[loIdx].Value, down.Samples[hiIdx].Value
		if lo > hi {
			lo, hi = hi, lo
		}
		if smp.Value < lo || smp.Value > hi {
			t.Errorf("dropped sample %d (%.1f) outside retained envelope [%.1f, %.1f]",
				i, smp.Value, lo, hi)
		}
	}
	// KeepEvery 0 and 1 keep everything.
	for _, k := range []int{0, 1} {
		s := &Series{KeepEvery: k}
		for i := 0; i < 10; i++ {
			s.Add(sim.Time(i), float64(i))
		}
		if len(s.Samples) != 10 {
			t.Errorf("KeepEvery=%d kept %d/10 samples", k, len(s.Samples))
		}
	}
}
