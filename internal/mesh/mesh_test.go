package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func newMesh(kind Kind) *Mesh {
	return New(topo.XeonGold6142Socket0, kind, DefaultParams())
}

func TestMeshRouteDimensionOrder(t *testing.T) {
	m := newMesh(KindMesh)
	// Y-then-X: (0,1) -> (2,3) goes down column 0 first, then across
	// row 3.
	route := m.Route(topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 2, Row: 3})
	want := []Link{
		{topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 2}},
		{topo.Coord{Col: 0, Row: 2}, topo.Coord{Col: 0, Row: 3}},
		{topo.Coord{Col: 0, Row: 3}, topo.Coord{Col: 1, Row: 3}},
		{topo.Coord{Col: 1, Row: 3}, topo.Coord{Col: 2, Row: 3}},
	}
	if len(route) != len(want) {
		t.Fatalf("route %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
}

func TestMeshHopsMatchManhattan(t *testing.T) {
	m := newMesh(KindMesh)
	f := func(a, b, c, d uint8) bool {
		p := topo.Coord{Col: int(a) % 5, Row: int(b) % 6}
		q := topo.Coord{Col: int(c) % 5, Row: int(d) % 6}
		return m.Hops(p, q) == p.Hops(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingRouteShorterArc(t *testing.T) {
	m := newMesh(KindRing)
	// Ring routes are connected sequences and never longer than half
	// the ring.
	n := 30
	for _, pair := range [][2]topo.Coord{
		{{Col: 0, Row: 0}, {Col: 4, Row: 5}},
		{{Col: 0, Row: 1}, {Col: 0, Row: 2}},
		{{Col: 3, Row: 3}, {Col: 2, Row: 1}},
	} {
		route := m.Route(pair[0], pair[1])
		if len(route) == 0 || len(route) > n/2 {
			t.Errorf("ring route %v->%v has %d hops", pair[0], pair[1], len(route))
		}
		if route[0].From != pair[0] || route[len(route)-1].To != pair[1] {
			t.Errorf("ring route endpoints wrong: %v", route)
		}
		for i := 1; i < len(route); i++ {
			if route[i].From != route[i-1].To {
				t.Fatalf("disconnected ring route: %v", route)
			}
		}
	}
}

func TestContentionRequiresLoad(t *testing.T) {
	m := newMesh(KindMesh)
	m.BeginQuantum(200*sim.Microsecond, 24)
	src, dst := topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 4}
	if c := m.ContentionCycles(0, src, dst); c != 0 {
		t.Errorf("contention on empty mesh = %v", c)
	}
	// Heavy traffic on the same path must delay a crossing transaction.
	m.AddTraffic(0, src, dst, 50_000)
	if c := m.ContentionCycles(0, src, dst); c <= 0 {
		t.Error("no contention under heavy same-path load")
	}
	// A disjoint path stays clean.
	if c := m.ContentionCycles(0, topo.Coord{Col: 4, Row: 0}, topo.Coord{Col: 4, Row: 1}); c != 0 {
		t.Errorf("contention on disjoint path = %v", c)
	}
}

func TestContentionScalesWithLoad(t *testing.T) {
	src, dst := topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 4}
	level := func(acc float64) float64 {
		m := newMesh(KindMesh)
		m.BeginQuantum(200*sim.Microsecond, 24)
		m.AddTraffic(0, src, dst, acc)
		return m.ContentionCycles(0, src, dst)
	}
	lo, hi := level(20_000), level(60_000)
	if hi <= lo {
		t.Errorf("contention not increasing with load: %v vs %v", lo, hi)
	}
}

func TestBeginQuantumResets(t *testing.T) {
	m := newMesh(KindMesh)
	m.BeginQuantum(200*sim.Microsecond, 24)
	src, dst := topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 4}
	m.AddTraffic(0, src, dst, 50_000)
	if m.TotalFlitHops() == 0 {
		t.Fatal("no flit-hops recorded")
	}
	m.BeginQuantum(200*sim.Microsecond, 24)
	if m.TotalFlitHops() != 0 {
		t.Error("flit-hops survived BeginQuantum")
	}
	if c := m.ContentionCycles(0, src, dst); c != 0 {
		t.Error("load survived BeginQuantum")
	}
}

func TestTDMIsolatesDomains(t *testing.T) {
	m := newMesh(KindMesh)
	m.SetTDM(true)
	if !m.TDM() {
		t.Fatal("TDM not enabled")
	}
	m.BeginQuantum(200*sim.Microsecond, 24)
	src, dst := topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 4}
	// Domain 1 floods; domain 2 must see only the fixed slot cost.
	m.AddTraffic(1, src, dst, 80_000)
	cOther := m.ContentionCycles(2, src, dst)
	slotOnly := float64(len(m.Route(src, dst))) * DefaultParams().TDMSlotCycles
	if cOther != slotOnly {
		t.Errorf("cross-domain contention under TDM = %v, want slot cost %v", cOther, slotOnly)
	}
	// Same-domain queueing still applies.
	if cSame := m.ContentionCycles(1, src, dst); cSame <= slotOnly {
		t.Error("same-domain contention vanished under TDM")
	}
}

func TestAddTrafficIgnoresDegenerate(t *testing.T) {
	m := newMesh(KindMesh)
	m.BeginQuantum(200*sim.Microsecond, 24)
	m.AddTraffic(0, topo.Coord{Col: 1, Row: 1}, topo.Coord{Col: 1, Row: 1}, 100)
	m.AddTraffic(0, topo.Coord{Col: 1, Row: 1}, topo.Coord{Col: 2, Row: 1}, -5)
	if m.TotalFlitHops() != 0 {
		t.Error("degenerate traffic recorded")
	}
}

func TestLinkString(t *testing.T) {
	l := Link{topo.Coord{Col: 0, Row: 1}, topo.Coord{Col: 0, Row: 2}}
	if l.String() != "(0,1)->(0,2)" {
		t.Errorf("Link.String() = %q", l.String())
	}
}
