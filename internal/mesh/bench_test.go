package mesh_test

// Zero-allocation benchmarks for the hop-accounting hot path: these are
// the calls internal/system makes for every LLC transaction, so they must
// not allocate. scripts/bench.sh gates on their allocs/op staying zero.

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/topo"
)

// BenchmarkMeshAddTraffic times charging one access's flits to the
// precomputed request and response routes.
func BenchmarkMeshAddTraffic(b *testing.B) {
	m := mesh.New(topo.XeonGold6142Socket0, mesh.KindMesh, mesh.DefaultParams())
	die := topo.XeonGold6142Socket0
	src := die.CoreCoord(0)
	dst := die.SliceCoord(die.NumSlices() - 1)
	m.BeginQuantum(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddTraffic(0, src, dst, 1)
	}
}

// BenchmarkMeshContentionCycles times reading a route's congestion after
// traffic has been charged to it.
func BenchmarkMeshContentionCycles(b *testing.B) {
	m := mesh.New(topo.XeonGold6142Socket0, mesh.KindMesh, mesh.DefaultParams())
	die := topo.XeonGold6142Socket0
	src := die.CoreCoord(0)
	dst := die.SliceCoord(die.NumSlices() - 1)
	m.BeginQuantum(200000000, 24) // a 200 µs quantum at 2.4 GHz
	m.AddTraffic(1, src, dst, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ContentionCycles(0, src, dst)
	}
}

// BenchmarkMeshHops times the precomputed hop-distance lookup.
func BenchmarkMeshHops(b *testing.B) {
	m := mesh.New(topo.XeonGold6142Socket0, mesh.KindMesh, mesh.DefaultParams())
	die := topo.XeonGold6142Socket0
	src := die.CoreCoord(0)
	dst := die.SliceCoord(die.NumSlices() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Hops(src, dst) == 0 {
			b.Fatal("expected a non-zero distance")
		}
	}
}
