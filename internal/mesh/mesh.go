// Package mesh models the on-chip interconnect of §2.1: a 2D mesh of
// routers (one per tile, including disabled tiles, whose routers remain
// functional) with dimension-ordered routing. It accounts traffic per
// directed link per simulation quantum, from which it derives:
//
//   - the contention penalty a given transfer suffers (the leakage source
//     of the Mesh-contention baseline channel), and
//   - the distance-weighted "pressure" metric the UFS governor consumes
//     (heavier, longer-distance traffic pushes the uncore frequency up;
//     §3.1, Figure 3).
//
// A ring topology variant covers older parts (the Ring-contention baseline)
// and a time-division-multiplexing mode models the interconnect
// partitioning defence of §4.4 (SurfNoC-style scheduling), which removes
// cross-domain contention at the price of a fixed slot latency.
//
// The accounting is index-addressed: every directed link of the floorplan
// is enumerated once at construction and every (src, dst) route — link-ID
// path and hop count — is precomputed, so the per-access hot path
// (AddTraffic, ContentionCycles, Hops) walks dense slices and allocates
// nothing. Per-quantum load lives in flat per-domain rows indexed by link
// ID; BeginQuantum zeroes them in place instead of rebuilding maps.
package mesh

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Kind selects the interconnect topology.
type Kind int

const (
	// KindMesh is the Skylake-SP 2D mesh with Y-then-X routing.
	KindMesh Kind = iota
	// KindRing is the older ring bus: tiles ordered around a loop,
	// traffic takes the shorter arc.
	KindRing
)

// Link is a directed router-to-router edge.
type Link struct {
	From, To topo.Coord
}

func (l Link) String() string { return fmt.Sprintf("%v->%v", l.From, l.To) }

// Params holds the interconnect model constants.
type Params struct {
	// FlitsPerAccess is the link occupancy of one LLC transaction in
	// each direction (request one way, data the other).
	FlitsPerAccess float64
	// LinkFlitsPerCycle is a link's capacity in flits per uncore cycle.
	LinkFlitsPerCycle float64
	// ContentionThreshold is the utilisation fraction above which a
	// link starts to delay crossing traffic.
	ContentionThreshold float64
	// ContentionMaxCycles is the added uncore-cycle delay per crossed
	// link at full utilisation.
	ContentionMaxCycles float64
	// TDMSlotCycles is the fixed extra per-link latency paid under
	// time-multiplexed scheduling (waiting for the domain's slot).
	TDMSlotCycles float64
}

// DefaultParams returns constants sized so that a handful of saturating
// traffic threads sharing a link produce a clearly measurable (several
// uncore cycles) delay, matching the magnitudes reported for mesh
// interference attacks.
func DefaultParams() Params {
	return Params{
		FlitsPerAccess:      5, // 1 request + 4 data flits averaged per direction
		LinkFlitsPerCycle:   8,
		ContentionThreshold: 0.02,
		ContentionMaxCycles: 60,
		TDMSlotCycles:       2,
	}
}

// Mesh accounts interconnect traffic for one socket over one simulation
// quantum. The system resets it every quantum via BeginQuantum.
type Mesh struct {
	die    *topo.Die
	kind   Kind
	params Params

	cols, rows, ntiles int

	// links enumerates every directed router-to-router edge of the
	// floorplan once; link IDs index the load rows below.
	links []Link

	// routeIDs/routeOff encode the precomputed link-ID path of every
	// (srcTile, dstTile) pair: pair p's path is
	// routeIDs[routeOff[p]:routeOff[p+1]]. hops caches each pair's
	// routed hop count.
	routeIDs []int32
	routeOff []int32
	hops     []int16

	// load rows are flits injected this quantum per link, one dense row
	// per security domain slot; total is the cross-domain sum per link
	// (the non-TDM contention input). slotOf maps small non-negative
	// domains to their row without hashing; negSlot is the fallback for
	// exotic negative domain values.
	load    [][]float64
	total   []float64
	slotOf  []int32
	negSlot map[cache.Domain]int

	// quantum capacity in flits, refreshed each BeginQuantum.
	capacity float64

	// tdm enables time-division multiplexing between domains.
	tdm bool

	// ringOrder maps tile index to ring position; ringCoord inverts it.
	ringOrder []int
	ringCoord []topo.Coord

	totalFlitHops float64
}

// New returns an interconnect for the given die.
func New(die *topo.Die, kind Kind, params Params) *Mesh {
	m := &Mesh{
		die:    die,
		kind:   kind,
		params: params,
		cols:   die.Cols,
		rows:   die.Rows,
		ntiles: die.Cols * die.Rows,
	}
	if kind == KindRing {
		m.ringOrder = make([]int, m.ntiles)
		m.ringCoord = make([]topo.Coord, m.ntiles)
		// Serpentine order over the grid approximates the physical
		// ring stops.
		i := 0
		for r := 0; r < die.Rows; r++ {
			for c := 0; c < die.Cols; c++ {
				col := c
				if r%2 == 1 {
					col = die.Cols - 1 - c
				}
				coord := topo.Coord{Col: col, Row: r}
				m.ringOrder[m.tileIdx(coord)] = i
				m.ringCoord[i] = coord
				i++
			}
		}
	}
	m.enumerate()
	m.total = make([]float64, len(m.links))
	return m
}

// tileIdx flattens an in-grid coordinate to a dense tile index.
func (m *Mesh) tileIdx(c topo.Coord) int { return c.Row*m.cols + c.Col }

// inGrid reports whether c lies on the floorplan. Coordinates off the die
// take the uncached fallback paths, so the precomputed tables never see
// them.
func (m *Mesh) inGrid(c topo.Coord) bool {
	return c.Col >= 0 && c.Col < m.cols && c.Row >= 0 && c.Row < m.rows
}

// enumerate assigns every directed link an ID and precomputes the link-ID
// route and hop count of every tile pair.
func (m *Mesh) enumerate() {
	idx := make(map[Link]int32, 4*m.ntiles)
	addLink := func(from, to topo.Coord) {
		l := Link{From: from, To: to}
		if _, dup := idx[l]; dup {
			return
		}
		idx[l] = int32(len(m.links))
		m.links = append(m.links, l)
	}
	switch m.kind {
	case KindMesh:
		for r := 0; r < m.rows; r++ {
			for c := 0; c < m.cols; c++ {
				at := topo.Coord{Col: c, Row: r}
				if c+1 < m.cols {
					right := topo.Coord{Col: c + 1, Row: r}
					addLink(at, right)
					addLink(right, at)
				}
				if r+1 < m.rows {
					down := topo.Coord{Col: c, Row: r + 1}
					addLink(at, down)
					addLink(down, at)
				}
			}
		}
	case KindRing:
		for p := 0; p < m.ntiles; p++ {
			next := (p + 1) % m.ntiles
			addLink(m.ringCoord[p], m.ringCoord[next])
			addLink(m.ringCoord[next], m.ringCoord[p])
		}
	}
	m.routeOff = make([]int32, m.ntiles*m.ntiles+1)
	m.hops = make([]int16, m.ntiles*m.ntiles)
	for s := 0; s < m.ntiles; s++ {
		src := topo.Coord{Col: s % m.cols, Row: s / m.cols}
		for d := 0; d < m.ntiles; d++ {
			dst := topo.Coord{Col: d % m.cols, Row: d / m.cols}
			pair := s*m.ntiles + d
			n := 0
			m.walk(src, dst, func(l Link) {
				m.routeIDs = append(m.routeIDs, idx[l])
				n++
			})
			m.routeOff[pair+1] = int32(len(m.routeIDs))
			m.hops[pair] = int16(n)
		}
	}
}

// walk visits the directed links from src to dst in route order. The mesh
// uses Y-then-X dimension-ordered routing (traffic moves vertically first,
// as on Skylake-SP); the ring takes the shorter arc.
func (m *Mesh) walk(src, dst topo.Coord, visit func(Link)) {
	if src == dst {
		return
	}
	switch m.kind {
	case KindMesh:
		cur := src
		for cur.Row != dst.Row {
			next := cur
			if dst.Row > cur.Row {
				next.Row++
			} else {
				next.Row--
			}
			visit(Link{From: cur, To: next})
			cur = next
		}
		for cur.Col != dst.Col {
			next := cur
			if dst.Col > cur.Col {
				next.Col++
			} else {
				next.Col--
			}
			visit(Link{From: cur, To: next})
			cur = next
		}
	case KindRing:
		if !m.inGrid(src) || !m.inGrid(dst) {
			return // the ring has stops only at floorplan tiles
		}
		n := m.ntiles
		a, b := m.ringOrder[m.tileIdx(src)], m.ringOrder[m.tileIdx(dst)]
		fwd := (b - a + n) % n
		step := 1
		if fwd > n-fwd {
			step = n - 1 // go backwards
		}
		cur := a
		for cur != b {
			next := (cur + step) % n
			visit(Link{From: m.ringCoord[cur], To: m.ringCoord[next]})
			cur = next
		}
	}
}

// pairRoute returns the precomputed link-ID path for an in-grid pair.
func (m *Mesh) pairRoute(src, dst topo.Coord) []int32 {
	pair := m.tileIdx(src)*m.ntiles + m.tileIdx(dst)
	return m.routeIDs[m.routeOff[pair]:m.routeOff[pair+1]]
}

// slot returns domain d's dense row index, registering the domain (and
// growing its load row) on first sight. Small non-negative domains — every
// domain the experiments use — resolve through a flat slice lookup.
func (m *Mesh) slot(d cache.Domain) int {
	if d >= 0 && int(d) < len(m.slotOf) {
		if s := m.slotOf[d]; s >= 0 {
			return int(s)
		}
	}
	return m.addSlot(d)
}

func (m *Mesh) addSlot(d cache.Domain) int {
	if d < 0 {
		if s, ok := m.negSlot[d]; ok {
			return s
		}
		if m.negSlot == nil {
			m.negSlot = make(map[cache.Domain]int)
		}
		s := len(m.load)
		m.negSlot[d] = s
		m.load = append(m.load, make([]float64, len(m.links)))
		return s
	}
	for int(d) >= len(m.slotOf) {
		m.slotOf = append(m.slotOf, -1)
	}
	s := len(m.load)
	m.slotOf[d] = int32(s)
	m.load = append(m.load, make([]float64, len(m.links)))
	return s
}

// Reset returns the interconnect to cold state in place: TDM off, all
// per-quantum load rows zeroed, and the aggregate counters cleared. The
// precomputed link/route tables are immutable and untouched; domain slot
// registrations persist (their rows are zeroed), which is behaviour-
// neutral because contention only reads row values, never row identity.
func (m *Mesh) Reset() {
	m.tdm = false
	for _, row := range m.load {
		clear(row)
	}
	clear(m.total)
	m.capacity = 0
	m.totalFlitHops = 0
}

// SetTDM switches time-division-multiplexed scheduling on or off.
func (m *Mesh) SetTDM(on bool) { m.tdm = on }

// TDM reports whether time-multiplexed scheduling is active.
func (m *Mesh) TDM() bool { return m.tdm }

// BeginQuantum clears the per-quantum load accounting in place and
// recomputes link capacity for the quantum length and current uncore
// frequency. No allocation: the dense rows are zeroed, not rebuilt.
func (m *Mesh) BeginQuantum(quantum sim.Time, fUncore sim.Freq) {
	for _, row := range m.load {
		clear(row)
	}
	clear(m.total)
	m.capacity = fUncore.CyclesIn(quantum) * m.params.LinkFlitsPerCycle
	m.totalFlitHops = 0
}

// Route returns the directed links from src to dst, in route order. It
// materialises a fresh slice and is meant for inspection and tests; the
// hot paths (AddTraffic, ContentionCycles, Hops) use the precomputed
// link-ID tables directly and never call it.
func (m *Mesh) Route(src, dst topo.Coord) []Link {
	if src == dst {
		return nil
	}
	if m.inGrid(src) && m.inGrid(dst) {
		ids := m.pairRoute(src, dst)
		if len(ids) == 0 {
			return nil
		}
		out := make([]Link, len(ids))
		for i, id := range ids {
			out[i] = m.links[id]
		}
		return out
	}
	var out []Link
	m.walk(src, dst, func(l Link) { out = append(out, l) })
	return out
}

// Hops returns the routed hop count between two tiles.
func (m *Mesh) Hops(src, dst topo.Coord) int {
	if src == dst {
		return 0
	}
	if m.inGrid(src) && m.inGrid(dst) {
		return int(m.hops[m.tileIdx(src)*m.ntiles+m.tileIdx(dst)])
	}
	n := 0
	m.walk(src, dst, func(Link) { n++ })
	return n
}

// AddTraffic records accesses LLC transactions flowing between src and dst
// this quantum on behalf of domain d. Both directions are loaded (request
// and data paths).
func (m *Mesh) AddTraffic(d cache.Domain, src, dst topo.Coord, accesses float64) {
	if accesses <= 0 || src == dst {
		return
	}
	flits := accesses * m.params.FlitsPerAccess
	row := m.load[m.slot(d)]
	if m.inGrid(src) && m.inGrid(dst) {
		for _, ids := range [2][]int32{m.pairRoute(src, dst), m.pairRoute(dst, src)} {
			for _, id := range ids {
				row[id] += flits
				m.total[id] += flits
				m.totalFlitHops += flits
			}
		}
		return
	}
	for _, dir := range [2][2]topo.Coord{{src, dst}, {dst, src}} {
		m.walk(dir[0], dir[1], func(Link) {
			// Off-grid coordinates have no enumerated links; only the
			// aggregate volume is visible to the governor.
			m.totalFlitHops += flits
		})
	}
}

// ContentionCycles returns the extra uncore cycles a single transaction of
// domain d travelling src→dst suffers from traffic injected this quantum.
// Under TDM, other domains' load is invisible (their slots are disjoint)
// but every crossed link costs a fixed slot-wait.
func (m *Mesh) ContentionCycles(d cache.Domain, src, dst topo.Coord) float64 {
	if src == dst || !m.inGrid(src) || !m.inGrid(dst) {
		return 0
	}
	ids := m.pairRoute(src, dst)
	var extra float64
	var row []float64
	if m.tdm {
		row = m.load[m.slot(d)]
	}
	for _, id := range ids {
		var flits float64
		if m.tdm {
			extra += m.params.TDMSlotCycles
			// Same-domain queueing still applies below.
			flits = row[id]
		} else {
			flits = m.total[id]
		}
		if flits == 0 || m.capacity <= 0 {
			continue
		}
		util := flits / m.capacity
		if util > m.params.ContentionThreshold {
			over := util - m.params.ContentionThreshold
			if over > 1 {
				over = 1
			}
			extra += over * m.params.ContentionMaxCycles
		}
	}
	return extra
}

// TotalFlitHops returns the flit·hop volume injected this quantum, an
// aggregate utilisation signal.
func (m *Mesh) TotalFlitHops() float64 { return m.totalFlitHops }
