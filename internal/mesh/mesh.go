// Package mesh models the on-chip interconnect of §2.1: a 2D mesh of
// routers (one per tile, including disabled tiles, whose routers remain
// functional) with dimension-ordered routing. It accounts traffic per
// directed link per simulation quantum, from which it derives:
//
//   - the contention penalty a given transfer suffers (the leakage source
//     of the Mesh-contention baseline channel), and
//   - the distance-weighted "pressure" metric the UFS governor consumes
//     (heavier, longer-distance traffic pushes the uncore frequency up;
//     §3.1, Figure 3).
//
// A ring topology variant covers older parts (the Ring-contention baseline)
// and a time-division-multiplexing mode models the interconnect
// partitioning defence of §4.4 (SurfNoC-style scheduling), which removes
// cross-domain contention at the price of a fixed slot latency.
package mesh

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Kind selects the interconnect topology.
type Kind int

const (
	// KindMesh is the Skylake-SP 2D mesh with Y-then-X routing.
	KindMesh Kind = iota
	// KindRing is the older ring bus: tiles ordered around a loop,
	// traffic takes the shorter arc.
	KindRing
)

// Link is a directed router-to-router edge.
type Link struct {
	From, To topo.Coord
}

func (l Link) String() string { return fmt.Sprintf("%v->%v", l.From, l.To) }

// Params holds the interconnect model constants.
type Params struct {
	// FlitsPerAccess is the link occupancy of one LLC transaction in
	// each direction (request one way, data the other).
	FlitsPerAccess float64
	// LinkFlitsPerCycle is a link's capacity in flits per uncore cycle.
	LinkFlitsPerCycle float64
	// ContentionThreshold is the utilisation fraction above which a
	// link starts to delay crossing traffic.
	ContentionThreshold float64
	// ContentionMaxCycles is the added uncore-cycle delay per crossed
	// link at full utilisation.
	ContentionMaxCycles float64
	// TDMSlotCycles is the fixed extra per-link latency paid under
	// time-multiplexed scheduling (waiting for the domain's slot).
	TDMSlotCycles float64
}

// DefaultParams returns constants sized so that a handful of saturating
// traffic threads sharing a link produce a clearly measurable (several
// uncore cycles) delay, matching the magnitudes reported for mesh
// interference attacks.
func DefaultParams() Params {
	return Params{
		FlitsPerAccess:      5, // 1 request + 4 data flits averaged per direction
		LinkFlitsPerCycle:   8,
		ContentionThreshold: 0.02,
		ContentionMaxCycles: 60,
		TDMSlotCycles:       2,
	}
}

// Mesh accounts interconnect traffic for one socket over one simulation
// quantum. The system resets it every quantum via BeginQuantum.
type Mesh struct {
	die    *topo.Die
	kind   Kind
	params Params

	// load is flits injected this quantum, per link per domain.
	load map[Link]map[cache.Domain]float64

	// quantum capacity in flits, refreshed each BeginQuantum.
	capacity float64

	// tdm enables time-division multiplexing between domains.
	tdm bool

	ringOrder map[topo.Coord]int

	totalFlitHops float64
}

// New returns an interconnect for the given die.
func New(die *topo.Die, kind Kind, params Params) *Mesh {
	m := &Mesh{
		die:    die,
		kind:   kind,
		params: params,
		load:   make(map[Link]map[cache.Domain]float64),
	}
	if kind == KindRing {
		m.ringOrder = make(map[topo.Coord]int)
		// Serpentine order over the grid approximates the physical
		// ring stops.
		i := 0
		for r := 0; r < die.Rows; r++ {
			for c := 0; c < die.Cols; c++ {
				col := c
				if r%2 == 1 {
					col = die.Cols - 1 - c
				}
				m.ringOrder[topo.Coord{Col: col, Row: r}] = i
				i++
			}
		}
	}
	return m
}

// SetTDM switches time-division-multiplexed scheduling on or off.
func (m *Mesh) SetTDM(on bool) { m.tdm = on }

// TDM reports whether time-multiplexed scheduling is active.
func (m *Mesh) TDM() bool { return m.tdm }

// BeginQuantum clears the per-quantum load accounting and recomputes link
// capacity for the quantum length and current uncore frequency.
func (m *Mesh) BeginQuantum(quantum sim.Time, fUncore sim.Freq) {
	for k := range m.load {
		delete(m.load, k)
	}
	m.capacity = fUncore.CyclesIn(quantum) * m.params.LinkFlitsPerCycle
	m.totalFlitHops = 0
}

// Route returns the directed links from src to dst. The mesh uses Y-then-X
// dimension-ordered routing (traffic moves vertically first, as on
// Skylake-SP); the ring takes the shorter arc.
func (m *Mesh) Route(src, dst topo.Coord) []Link {
	if src == dst {
		return nil
	}
	var links []Link
	switch m.kind {
	case KindMesh:
		cur := src
		for cur.Row != dst.Row {
			next := cur
			if dst.Row > cur.Row {
				next.Row++
			} else {
				next.Row--
			}
			links = append(links, Link{From: cur, To: next})
			cur = next
		}
		for cur.Col != dst.Col {
			next := cur
			if dst.Col > cur.Col {
				next.Col++
			} else {
				next.Col--
			}
			links = append(links, Link{From: cur, To: next})
			cur = next
		}
	case KindRing:
		n := m.die.Rows * m.die.Cols
		a, b := m.ringOrder[src], m.ringOrder[dst]
		fwd := (b - a + n) % n
		step := 1
		if fwd > n-fwd {
			step = n - 1 // go backwards
		}
		cur := a
		for cur != b {
			next := (cur + step) % n
			links = append(links, Link{From: m.coordAt(cur), To: m.coordAt(next)})
			cur = next
		}
	}
	return links
}

func (m *Mesh) coordAt(order int) topo.Coord {
	for c, i := range m.ringOrder {
		if i == order {
			return c
		}
	}
	panic(fmt.Sprintf("mesh: no tile at ring position %d", order))
}

// Hops returns the routed hop count between two tiles.
func (m *Mesh) Hops(src, dst topo.Coord) int { return len(m.Route(src, dst)) }

// AddTraffic records accesses LLC transactions flowing between src and dst
// this quantum on behalf of domain d. Both directions are loaded (request
// and data paths).
func (m *Mesh) AddTraffic(d cache.Domain, src, dst topo.Coord, accesses float64) {
	if accesses <= 0 || src == dst {
		return
	}
	flits := accesses * m.params.FlitsPerAccess
	for _, dir := range [2][2]topo.Coord{{src, dst}, {dst, src}} {
		for _, l := range m.Route(dir[0], dir[1]) {
			byDomain := m.load[l]
			if byDomain == nil {
				byDomain = make(map[cache.Domain]float64)
				m.load[l] = byDomain
			}
			byDomain[d] += flits
			m.totalFlitHops += flits
		}
	}
}

// ContentionCycles returns the extra uncore cycles a single transaction of
// domain d travelling src→dst suffers from traffic injected this quantum.
// Under TDM, other domains' load is invisible (their slots are disjoint)
// but every crossed link costs a fixed slot-wait.
func (m *Mesh) ContentionCycles(d cache.Domain, src, dst topo.Coord) float64 {
	if src == dst {
		return 0
	}
	route := m.Route(src, dst)
	var extra float64
	for _, l := range route {
		if m.tdm {
			extra += m.params.TDMSlotCycles
			// Same-domain queueing still applies below.
		}
		byDomain := m.load[l]
		if byDomain == nil || m.capacity <= 0 {
			continue
		}
		var flits float64
		for dom, f := range byDomain {
			if m.tdm && dom != d {
				continue
			}
			flits += f
		}
		util := flits / m.capacity
		if util > m.params.ContentionThreshold {
			over := util - m.params.ContentionThreshold
			if over > 1 {
				over = 1
			}
			extra += over * m.params.ContentionMaxCycles
		}
	}
	return extra
}

// TotalFlitHops returns the flit·hop volume injected this quantum, an
// aggregate utilisation signal.
func (m *Mesh) TotalFlitHops() float64 { return m.totalFlitHops }
