// Package vfs is the narrow filesystem seam under every durable write
// the runner and the sweep coordinator make. Production code runs on OS
// (thin wrappers over package os); tests and chaos runs swap in the
// deterministic disk-fault injectors from internal/faults — short
// writes, fsync errors, ENOSPC, bit flips, and crash-kill at any write
// boundary — without touching the code under test. The interface is
// deliberately small: exactly the operations a write-ahead journal and
// atomic snapshot swaps need, nothing a simulation would never use.
//
// Durability contract: a write is durable only after File.Sync returns,
// and a creation or rename is durable only after SyncDir on the parent
// directory returns. WriteFileAtomic sequences all of it — temp write,
// file fsync, rename, directory fsync — so callers get
// "readers never see a torn file, and a completed call survives power
// loss" in one step.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the writable handle an FS hands out. Sync must not return
// until the file's contents are durable (the crash models in
// internal/faults hold written-but-unsynced bytes hostage).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened under.
	Name() string
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Chmod sets the file mode.
	Chmod(mode fs.FileMode) error
}

// FS is the filesystem surface durable state goes through.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// CreateTemp creates a new temp file in dir with a name built from
	// pattern, as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath's file. The swap
	// is durable only after SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir makes dir's entries (creations, renames, removals since
	// the last SyncDir) durable.
	SyncDir(dir string) error
}

// OS is the production FS: package os plus directory fsync.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// SyncDir implements FS: open the directory and fsync it, which is how
// POSIX makes renames and creations durable. Filesystems that cannot
// fsync a directory (some network and overlay mounts return EINVAL or
// ENOTSUP) are tolerated — there is nothing more userspace can do there.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !ignorableSyncErr(err) {
		return err
	}
	return nil
}

// ignorableSyncErr reports whether a directory-fsync failure means
// "unsupported here" rather than "your data is gone".
func ignorableSyncErr(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP)
}

// WriteFileAtomic writes a file via a temp file in the same directory
// and a rename, so readers never observe a truncated file and a failed
// write leaves no partial artifact behind. The temp file is fsynced
// before the rename — without it, a crash in the window between rename
// and writeback could leave the final name holding torn content — and
// the parent directory is fsynced after it, because the rename itself
// is just a directory entry until the directory's metadata reaches
// disk: skip that and a power failure can quietly resurrect the old
// file under the new name.
func WriteFileAtomic(fsys FS, path string, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	// CreateTemp opens 0600; these are reports and manifests, not
	// secrets, so restore the conventional world-readable mode.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			fsys.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // disarm the cleanup; rename owns the file now
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return err
	}
	return fsys.SyncDir(dir)
}
