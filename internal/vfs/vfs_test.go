package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// recordingFS wraps OS and logs each durability-relevant operation, so
// tests can assert the exact write→sync→close→rename→dir-sync order
// WriteFileAtomic promises.
type recordingFS struct {
	OS
	ops []string
}

func (r *recordingFS) log(op string) { r.ops = append(r.ops, op) }

func (r *recordingFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := r.OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	r.log("create-temp")
	return &recordingFile{File: f, fs: r}, nil
}

func (r *recordingFS) Rename(oldpath, newpath string) error {
	r.log("rename")
	return r.OS.Rename(oldpath, newpath)
}

func (r *recordingFS) SyncDir(dir string) error {
	r.log("sync-dir")
	return r.OS.SyncDir(dir)
}

type recordingFile struct {
	File
	fs *recordingFS
}

func (f *recordingFile) Write(p []byte) (int, error) {
	f.fs.log("write")
	return f.File.Write(p)
}

func (f *recordingFile) Sync() error {
	f.fs.log("sync")
	return f.File.Sync()
}

func (f *recordingFile) Close() error {
	f.fs.log("close")
	return f.File.Close()
}

// TestWriteFileAtomicDurabilityOrder: the write path must be
// create-temp, write, file fsync, close, rename, parent-dir fsync — in
// that exact order. The trailing dir fsync is what makes the *rename*
// durable; without it a power failure after a "successful" call can
// roll the file back to its previous contents.
func TestWriteFileAtomicDurabilityOrder(t *testing.T) {
	rec := &recordingFS{}
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFileAtomic(rec, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "durable")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	want := []string{"create-temp", "write", "sync", "close", "rename", "sync-dir"}
	if got := strings.Join(rec.ops, ","); got != strings.Join(want, ",") {
		t.Fatalf("operation order = %v, want %v", rec.ops, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("content = %q", data)
	}
}

// TestWriteFileAtomicRelativePath: a bare filename (no directory
// component) must sync the current directory, not an empty path.
func TestWriteFileAtomicRelativePath(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	if err := WriteFileAtomic(OS{}, "bare.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic on bare name: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bare.txt")); err != nil {
		t.Fatal(err)
	}
}

// TestOSRoundTrip: the OS implementation's append, read, stat, and
// dir-listing surfaces behave like package os.
func TestOSRoundTrip(t *testing.T) {
	fsys := OS{}
	dir := t.TempDir()
	name := filepath.Join(dir, "log.wal")

	for _, chunk := range []string{"one", "two"} {
		f, err := fsys.Append(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(f, chunk); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "onetwo" {
		t.Fatalf("appended content = %q", data)
	}
	info, err := fsys.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 6 {
		t.Fatalf("size = %d", info.Size())
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "log.wal" {
		t.Fatalf("dir entries = %v", names(entries))
	}
	if err := fsys.Remove(name); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(name); err == nil {
		t.Fatal("removed file still stats")
	}
}

func names(entries []fs.DirEntry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}
