package ufvariation

import (
	"math"

	"repro/internal/sim"
)

// This file implements symbol clock recovery and loss-of-lock
// detection. Once acquisition (acquire.go) has found the first bit
// boundary, the receiver still drifts off the sender whenever its clock
// runs at a different rate (Config.SkewPPM) or wanders (Config.Clock):
// at 2000 ppm the windows walk one full 21 ms interval off the sender
// after ~10 s, and the §4.3.2 decode collapses from the tail. The
// tracker below is a software delay-locked loop: every bit it trial-
// decodes at an early, punctual, and late window phase, steers the
// phase toward the offset with the most decisive decoder margin, and
// bleeds a fraction of each correction into its bit-interval estimate
// so a constant clock-rate error is cancelled exactly and a slowly
// wandering one is followed. When the margin stays indecisive for
// several consecutive bits the loop declares loss of lock instead of
// emitting confident garbage — the verdict the link layer's resync
// escalation keys on.

// SyncReport is the synchronization layer's account of one tracked
// reception.
type SyncReport struct {
	// Tracked is true when the self-synchronizing receiver ran.
	Tracked bool
	// AcquisitionRun is true when a preamble hunt was attempted;
	// Acquired when it locked, and AcquireScore is its correlation.
	AcquisitionRun bool
	Acquired       bool
	AcquireScore   float64
	// Origin is the estimated sender start (preamble start for pilot
	// transmissions, bit 0 otherwise) on the receiver's clock, relative
	// to the nominal shared start. Carrying it into the next reception
	// keeps a once-acquired phase without a new preamble.
	Origin sim.Time
	// PPMEst is the tracker's final clock-error estimate in parts per
	// million: positive means the receiver's clock runs fast.
	PPMEst float64
	// MeanMargin and MinMargin summarise the decoder confidence margin
	// over the payload (see decoder.margin).
	MeanMargin, MinMargin float64
	// Locked is true when the reception ended in lock: acquisition (if
	// run) succeeded and the tracker never lost the symbol clock.
	Locked bool
	// LockLost is true when the margin collapsed mid-payload; LockLostBit
	// is the first bit of the collapse.
	LockLost    bool
	LockLostBit int
}

// trackerOpts tunes the DLL. Zero values take the defaults below.
type trackerOpts struct {
	interval sim.Time // nominal (sender-clock) bit interval
	window   sim.Time // T1/T2 measurement window
	ppmInit  float64  // initial clock-error estimate, ppm

	alpha, beta float64 // phase and interval loop gains
	lockMargin  float64 // per-bit margin below which a bit counts as indecisive
	lockRun     int     // consecutive indecisive bits before loss of lock
	lockWindow  int     // sliding window for the dispersed-indecision rule
	lockDense   int     // indecisive bits within lockWindow before loss of lock
}

func (o trackerOpts) withDefaults() trackerOpts {
	if o.alpha == 0 {
		o.alpha = 0.5
	}
	if o.beta == 0 {
		o.beta = 0.08
	}
	if o.lockMargin == 0 {
		o.lockMargin = 0.25
	}
	if o.lockRun == 0 {
		o.lockRun = 5
	}
	if o.lockWindow == 0 {
		o.lockWindow = 12
	}
	if o.lockDense == 0 {
		o.lockDense = 5
	}
	return o
}

// maxTrackPPM bounds the interval estimate: the loop may cancel clock
// errors up to ±1% (10000 ppm), far beyond any realistic TSC error, but
// must not chase a corrupted stream into absurd symbol rates.
const maxTrackPPM = 10000

// tracker is the DLL's incremental core: one step demodulates one bit.
// The batch decodeTracked wrapper drives it over a complete stream; the
// streaming demodulator steps it as samples arrive, letting the stream
// retire everything behind the loop's current phase.
type tracker struct {
	o   trackerOpts
	dec decoder
	n   int

	bits     []int
	t1s, t2s []float64 // nil: per-bit diagnostics disabled

	iv, phase float64
	phase0    float64
	k         int

	lowRun   int
	lowRing  []bool // last lockWindow indecision verdicts
	lowLen   int
	lowPos   int
	lowCount int
	frozen   bool

	marginSum float64
	rep       SyncReport
}

// init prepares the tracker to demodulate n bits starting at p0. The
// bits/t1s/t2s slices receive the per-bit outputs by append (pass nil
// t1s/t2s to skip the diagnostic capture); ring is optional scratch for
// the indecision window, regrown when too small.
func (tk *tracker) init(p0 sim.Time, n int, dec decoder, o trackerOpts, bits []int, t1s, t2s []float64, ring []bool) {
	o = o.withDefaults()
	*tk = tracker{
		o:    o,
		dec:  dec,
		n:    n,
		bits: bits,
		t1s:  t1s,
		t2s:  t2s,
		rep:  SyncReport{Tracked: true, MinMargin: math.Inf(1)},
	}
	tk.iv = float64(o.interval) * (1 + o.ppmInit*1e-6)
	tk.phase = float64(p0)
	tk.phase0 = tk.phase
	if cap(ring) < o.lockWindow {
		ring = make([]bool, o.lockWindow)
	} else {
		ring = ring[:o.lockWindow]
		clear(ring)
	}
	tk.lowRing = ring
}

// horizon returns the newest stream timestamp the next step will read:
// the trailing edge of the late candidate's T2 window. A streaming
// caller steps only once the stream has settled past it.
func (tk *tracker) horizon() sim.Time {
	return sim.Time(tk.phase + tk.iv/12 + tk.iv)
}

// lookBehind returns the oldest stream timestamp the next step will
// read (the early candidate's T1 window); everything before it can be
// retired.
func (tk *tracker) lookBehind() sim.Time {
	return sim.Time(tk.phase - tk.iv/12)
}

// step demodulates one bit from the stream at the loop's current phase
// and advances the phase and interval estimates.
func (tk *tracker) step(str *stream) {
	o := tk.o
	d := tk.iv / 12 // trial offset: small vs the window, large vs per-bit drift
	type cand struct {
		t1, t2 float64
		m      float64
	}
	eval := func(off float64) cand {
		a := sim.Time(tk.phase + off)
		b := sim.Time(tk.phase + off + tk.iv)
		t1, n1 := str.mean(a, a+o.window)
		t2, n2 := str.mean(b-o.window, b)
		if n1 == 0 {
			t1 = 0
		}
		if n2 == 0 {
			t2 = 0
		}
		return cand{t1, t2, tk.dec.margin(t1, t2)}
	}
	early, center, late := eval(-d), eval(0), eval(+d)

	best := center
	if early.m > best.m {
		best = early
	}
	if late.m > best.m {
		best = late
	}
	tk.bits = append(tk.bits, tk.dec.decide(best.t1, best.t2))
	if tk.t1s != nil {
		tk.t1s = append(tk.t1s, best.t1)
		tk.t2s = append(tk.t2s, best.t2)
	}

	m := best.m
	tk.marginSum += m
	if m < tk.rep.MinMargin {
		tk.rep.MinMargin = m
	}
	low := m < o.lockMargin
	if low {
		tk.lowRun++
	} else {
		tk.lowRun = 0
	}
	// Sliding indecision window, kept as a ring: evict the verdict that
	// just left the window, admit this bit's.
	if tk.lowLen == o.lockWindow {
		if tk.lowRing[tk.lowPos] {
			tk.lowCount--
		}
	} else {
		tk.lowLen++
	}
	tk.lowRing[tk.lowPos] = low
	if low {
		tk.lowCount++
	}
	tk.lowPos++
	if tk.lowPos == o.lockWindow {
		tk.lowPos = 0
	}
	lowDense := tk.lowCount
	// Two desync signatures: a contiguous run of indecisive bits
	// (a blackout, or windows dead-centred on bit boundaries), and
	// indecision dispersed across a window — the straddling receiver
	// decodes saturated runs confidently but every transition lands
	// mid-band, so the margin collapses on a large *fraction* of
	// bits without ever collapsing for long.
	if (tk.lowRun >= o.lockRun || lowDense >= o.lockDense) && !tk.rep.LockLost {
		tk.rep.LockLost = true
		first := tk.k - tk.lowRun + 1
		if tk.lowRun < o.lockRun {
			first = tk.k - o.lockWindow + 1
			if first < 0 {
				first = 0
			}
		}
		tk.rep.LockLostBit = first
		// Freeze the loop: with no credible margin the error
		// signal is noise, and integrating noise walks the
		// estimates away from any future re-lock.
		tk.frozen = true
	}

	// Timing error from the margin differential; only meaningful
	// when the margins carry signal (a transition bit — runs are
	// phase-insensitive and contribute no update).
	e := 0.0
	if den := early.m + center.m + late.m; den > 3*o.lockMargin && !tk.frozen {
		e = d * (late.m - early.m) / den
		if e > d {
			e = d
		} else if e < -d {
			e = -d
		}
	}
	tk.phase += tk.iv + o.alpha*e
	tk.iv += o.beta * e
	nom := float64(o.interval)
	if tk.iv > nom*(1+maxTrackPPM*1e-6) {
		tk.iv = nom * (1 + maxTrackPPM*1e-6)
	} else if tk.iv < nom*(1-maxTrackPPM*1e-6) {
		tk.iv = nom * (1 - maxTrackPPM*1e-6)
	}
	tk.k++
}

// finish closes the loop and returns the tracking report.
func (tk *tracker) finish() SyncReport {
	rep := tk.rep
	if tk.n > 0 {
		rep.MeanMargin = tk.marginSum / float64(tk.n)
	} else {
		rep.MinMargin = 0
	}
	// The clock-error estimate comes from the net phase advance — the
	// local-clock time the loop actually consumed per bit — not from the
	// interval register: the phase loop absorbs any residual detector
	// bias, so the advance tracks the true rate even when iv wanders.
	if tk.n > 0 {
		rep.PPMEst = ((tk.phase-tk.phase0)/(float64(tk.n)*float64(tk.o.interval)) - 1) * 1e6
	}
	rep.Locked = !rep.LockLost
	return rep
}

// decodeTracked demodulates n bits from the stream starting at the
// estimated bit-0 boundary p0 (receiver clock), tracking symbol timing
// as it goes. It returns the decoded bits, the per-bit window means
// (for diagnostics), and the tracking report.
func decodeTracked(str *stream, p0 sim.Time, n int, dec decoder, o trackerOpts) ([]int, []float64, []float64, SyncReport) {
	var tk tracker
	tk.init(p0, n, dec, o, make([]int, 0, n), make([]float64, 0, n), make([]float64, 0, n), nil)
	for tk.k < n {
		tk.step(str)
	}
	rep := tk.finish()
	return tk.bits, tk.t1s, tk.t2s, rep
}

// margin quantifies how decisively a (T1, T2) window pair decodes under
// Algorithm 1: ≥1 is a clear symbol, near 0 is indistinguishable from a
// desynchronized window straddling two intervals. It is the maximum of
//
//   - the significance of the latency move |T1−T2| against the noise
//     threshold delta (the transition evidence), and
//   - the depth of both windows inside either saturation band, in units
//     of the band tolerance (the plateau evidence).
//
// Mid-band flat pairs — exactly what a receiver whose windows straddle
// bit boundaries measures — score near zero on both.
func (d decoder) margin(t1, t2 float64) float64 {
	if t1 == 0 || t2 == 0 || d.delta <= 0 || d.tolMax <= 0 || d.tolMin <= 0 {
		return 0
	}
	move := math.Abs(t1-t2) / d.delta
	// Depth inside the fast band (t ≤ tMax+tolMax): 0 at the band edge,
	// 1 at the reference latency.
	depthMax := func(t float64) float64 { return (d.tMax + d.tolMax - t) / d.tolMax }
	// Depth inside the idle band (t ≥ tMin−tolMin).
	depthMin := func(t float64) float64 { return (t - (d.tMin - d.tolMin)) / d.tolMin }
	bandMax := math.Min(depthMax(t1), depthMax(t2))
	bandMin := math.Min(depthMin(t1), depthMin(t2))
	m := math.Max(move, math.Max(bandMax, bandMin))
	if m < 0 {
		return 0
	}
	if m > 3 {
		return 3
	}
	return m
}
