package ufvariation

import (
	"runtime"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// TestLongTransmissionConstantMemory pins the streaming receiver's core
// property: memory is O(window), not O(message). A transmission 10× the
// quick-trial payload (96 bits in the sync experiment) must finish with
// the sample window no larger than the short run's — the retiring stream
// keeps only the tracker's look-behind — and a warmed scratch must not
// re-allocate the sample volume on a repeat run.
func TestLongTransmissionConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second transmission")
	}
	const shortBits, longBits = 96, 960
	m := newMachine(77)
	runOn := func(n int, scr *RxScratch) {
		t.Helper()
		m.Reset(77)
		cfg := DefaultConfig()
		cfg.Interval = 21 * sim.Millisecond
		cfg.NoDiagnostics = true
		bits := channel.RandomBits(m.Rand(5), n)
		res, err := RunWith(m, cfg, bits, scr)
		if err != nil {
			t.Fatal(err)
		}
		if res.BER > 0.1 {
			t.Fatalf("%d-bit transmission BER = %v; memory bound is vacuous if the channel broke", n, res.BER)
		}
	}

	var scrShort, scrLong RxScratch
	runOn(shortBits, &scrShort)
	runOn(longBits, &scrLong)
	shortWin := cap(scrShort.str.at)
	longWin := cap(scrLong.str.at)
	if longWin > 3*shortWin {
		t.Errorf("10× message grew the sample window %d -> %d (>3×): stream is not retiring", shortWin, longWin)
	}
	// Absolute sanity: the window covers a few symbol intervals of
	// 200 µs quanta, nowhere near the ~1M samples of the full message.
	if longWin > 200_000 {
		t.Errorf("sample window holds %d samples; expected an O(window) bound", longWin)
	}

	// A warmed scratch replays the long transmission without
	// re-allocating the sample volume. The grow-forever receiver
	// allocated tens of MB here (every sample appended thrice over).
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	runOn(longBits, &scrLong)
	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	t.Logf("warmed %d-bit run allocated %.1f MB", longBits, float64(delta)/(1<<20))
	if delta > 16<<20 {
		t.Errorf("warmed long run allocated %.1f MB, want < 16 MB", float64(delta)/(1<<20))
	}
}
