// Package ufvariation implements UF-variation, the paper's covert channel
// (§4.3, Algorithm 1). Data is encoded in the *variation* of the uncore
// frequency within each transmission interval:
//
//   - To send "1" the sender runs a severely stalling loop (or a heavy
//     traffic loop); the UFS governor raises the uncore frequency by
//     100 MHz every 10 ms until the maximum.
//   - To send "0" the sender idles; the frequency steps back down toward
//     the idle point.
//
// The unprivileged receiver cannot read the frequency MSR, so it times LLC
// loads (§4.2, Listing 3): it compares the average latency in the first
// and last 5 ms of the interval (T1, T2) and decodes
//
//	1  if T2 < T1, or T1 ≈ T2 ≈ latency(freq_max)
//	0  if T2 > T1, or T1 ≈ T2 ≈ latency(freq_min)
//
// The channel works cross-core and — through the cross-socket frequency
// coupling of §3.4 — cross-processor, with no shared memory, no clflush,
// no TSX, and no cross-NUMA accesses (§4.1).
package ufvariation

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Placement pins a party to a socket and core.
type Placement struct {
	Socket, Core int
}

// Config describes one UF-variation deployment.
type Config struct {
	// Sender and Receiver placements. Different sockets give the
	// cross-processor channel.
	Sender, Receiver Placement
	// SenderDomain and ReceiverDomain are the parties' security
	// domains; defences key partitioning and randomization on them.
	SenderDomain, ReceiverDomain cache.Domain
	// Interval is the per-bit transmission interval (≥ the 10 ms
	// governor epoch; the paper's capacity peaks at 21 ms cross-core).
	Interval sim.Time
	// Window is the measurement window at each end of the interval
	// (§4.3.2: "the first and last 5 ms").
	Window sim.Time
	// UseTrafficLoop switches the sender from the stalling loop to a
	// heavy 3-hop traffic loop (Algorithm 1's alternative; §4.3.3 uses
	// it to resist stall-dilution noise).
	UseTrafficLoop bool
	// SenderCores optionally adds extra stalling cores (§4.3.3: a
	// sender with multiple cores keeps >1/3 of active cores stalled).
	SenderCores []int
	// ReceiverHops is the mesh distance of the receiver's probe slice
	// (Figure 9 uses 1-hop latencies).
	ReceiverHops int
	// SamplesPerQuantum bounds the receiver's measurement density.
	SamplesPerQuantum int
	// Lead is the settle/warm-up time before the first interval.
	Lead sim.Time
	// RecordTraces captures the receiver's latency samples (Figure 9).
	RecordTraces bool
	// MaxFreqOverride, when non-zero, tells the receiver which top
	// frequency its socket can reach (defence configurations that
	// restrict the UFS range change the latency floor).
	MaxFreqOverride sim.Freq
	// SkewPPM models imperfect synchronisation: the receiver's view of
	// elapsed time runs fast (positive) or slow (negative) by this many
	// parts per million relative to the sender's. The paper's threat
	// model assumes a shared timestamp counter (§4.3.2); skew shifts
	// the receiver's measurement windows progressively off the sender's
	// intervals, so long payloads degrade toward the tail.
	SkewPPM float64
	// OnlineCalibration derives the receiver's latency references from
	// a known calibration preamble instead of an offline latency model:
	// the sender holds a long "1" (saturating the frequency) and then a
	// long "0" (decaying to idle), and the receiver records the
	// plateau latencies it observes. This is how a real attacker
	// obtains Tfreq_max and Tfreq_min without knowing the platform.
	OnlineCalibration bool
	// StartOffset delays the sender's start by this much past the
	// nominal shared instant, modelling an unknown phase between the
	// parties. The receiver is NOT told: without Track its windows sit
	// on the wrong intervals; with Track (and a calibration preamble)
	// the acquisition correlator finds the offset in-band.
	StartOffset sim.Time
	// Track enables the self-synchronizing receiver: the probe loop
	// records a continuous timestamped latency stream and the decode
	// runs frame acquisition (with OnlineCalibration), symbol-timing
	// tracking, and loss-of-lock detection over it. Result.Sync reports
	// the outcome.
	Track bool
	// TrackerPPM seeds the tracker's clock-error estimate (ppm), the
	// state a link layer carries from one locked frame into the next.
	TrackerPPM float64
	// TrackerPhase seeds the tracker's estimate of where bit 0 starts
	// on the receiver's clock, relative to the nominal start — the
	// acquired phase carried across frames that have no preamble.
	TrackerPhase sim.Time
	// AcquireSearch bounds the preamble hunt past the nominal start;
	// zero means eight bit intervals.
	AcquireSearch sim.Time
	// NoDiagnostics skips the per-bit T1/T2 window-mean capture:
	// Result.T1 and Result.T2 stay nil. Link layers that only consume
	// Received and Sync set it to keep long sessions allocation-free.
	NoDiagnostics bool
	// Clock, when non-nil, replaces the linear SkewPPM model: it maps
	// true elapsed time since the nominal start to the receiver's local
	// clock reading. It must be monotone with Clock(0) == 0. Use it for
	// wandering (slowly varying ppm) clock faults.
	Clock func(sim.Time) sim.Time
	// Preemptions are receiver blackouts: during [At, At+Dur) of true
	// time past the nominal start the receiver is descheduled — it
	// measures nothing, and its local timebase (which it advances by
	// loop progress, not by re-reading the TSC after every sample)
	// stands still, so a preemption longer than the tracker's pull-in
	// range permanently desynchronizes an untracked receiver.
	Preemptions []Preemption
}

// Preemption is one mid-transmission receiver blackout (an involuntary
// context switch lasting Dur, starting At after the nominal start).
type Preemption struct {
	At, Dur sim.Time
}

// CalibrationBits is the known preamble used by OnlineCalibration: enough
// consecutive "1"s to saturate at the maximum frequency from anywhere in
// the range, then enough "0"s to decay back to idle.
func CalibrationBits(interval sim.Time) channel.Bits {
	return appendCalibrationBits(make(channel.Bits, 0, CalibrationLen(interval)), interval)
}

// CalibrationLen returns len(CalibrationBits(interval)) without
// building the preamble.
func CalibrationLen(interval sim.Time) int {
	return 2 * calibrationHold(interval)
}

// calibrationHold is the per-symbol hold length of the preamble: the
// frequency moves one step per 10 ms epoch and the full range is nine
// steps, so each symbol is held long enough to cover the swing plus two
// intervals of plateau.
func calibrationHold(interval sim.Time) int {
	return int(100*sim.Millisecond/interval) + 3
}

func appendCalibrationBits(dst channel.Bits, interval sim.Time) channel.Bits {
	hold := calibrationHold(interval)
	for i := 0; i < hold; i++ {
		dst = append(dst, 1)
	}
	for i := 0; i < hold; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// DefaultConfig returns the paper's proof-of-concept setup: sender on
// socket 0 core 0, receiver on socket 0 core 8, 38 ms intervals (the
// Figure 9 example), 5 ms windows, 1-hop probe.
func DefaultConfig() Config {
	return Config{
		Sender:            Placement{Socket: 0, Core: 0},
		Receiver:          Placement{Socket: 0, Core: 8},
		Interval:          38 * sim.Millisecond,
		Window:            5 * sim.Millisecond,
		ReceiverHops:      1,
		SamplesPerQuantum: 20,
		Lead:              40 * sim.Millisecond,
	}
}

// CrossProcessor moves the receiver to socket 1 (§4.3.2's second
// scenario) with the paper's peak-capacity interval.
func (c Config) CrossProcessor() Config {
	c.Receiver = Placement{Socket: 1, Core: 8}
	c.Interval = 33 * sim.Millisecond
	return c
}

// Result extends the framework result with the receiver's traces.
type Result struct {
	channel.Result
	// Latency is the receiver's per-sample latency trace (set when
	// RecordTraces).
	Latency *trace.Series
	// T1, T2 are the per-interval window means, for diagnostics.
	T1, T2 []float64
	// Sync is the synchronization layer's report (set when Track).
	Sync *SyncReport
}

// senderWorkload drives Algorithm 1's sender: during interval i it runs
// the stalling (or traffic) loop iff message[i] is 1.
type senderWorkload struct {
	start    sim.Time
	interval sim.Time
	bits     channel.Bits
	inner    system.Workload
}

func (w *senderWorkload) Step(ctx *system.Ctx) system.Activity {
	rel := ctx.Start() - w.start
	if rel < 0 {
		return system.Activity{}
	}
	idx := int(rel / w.interval)
	if idx >= len(w.bits) || w.bits[idx] == 0 {
		return system.Activity{}
	}
	return w.inner.Step(ctx)
}

// receiverWorkload measures T1/T2 window latencies per interval, or —
// in tracked mode — feeds each timestamped latency sample straight into
// the streaming demodulator, which decodes behind the measurement and
// retires the stream as it goes (so a transmission of any length runs
// in memory bounded by the demodulator's window, not the message).
type receiverWorkload struct {
	lines    []cache.Line
	start    sim.Time
	interval sim.Time
	window   sim.Time
	n        int
	per      int
	clock    func(sim.Time) sim.Time // nil: ideal shared clock
	blackout []Preemption

	t1Sum, t2Sum []float64
	t1N, t2N     []int
	lat          *trace.Series
	demod        *streamDemod // tracked mode: the in-flight demodulator
	track        bool
}

// localRel maps true elapsed time since the nominal start to the
// receiver's local clock: the configured clock model, minus the time the
// local timebase stood still during preemption blackouts.
func (w *receiverWorkload) localRel(rel sim.Time) sim.Time {
	local := rel
	if rel > 0 && w.clock != nil {
		local = w.clock(rel)
	}
	for _, p := range w.blackout {
		if rel <= p.At {
			continue
		}
		frozen := rel - p.At
		if frozen > p.Dur {
			frozen = p.Dur
		}
		local -= frozen
	}
	return local
}

// preempted reports whether the receiver is descheduled at rel.
func (w *receiverWorkload) preempted(rel sim.Time) bool {
	for _, p := range w.blackout {
		if rel >= p.At && rel < p.At+p.Dur {
			return true
		}
	}
	return false
}

func (w *receiverWorkload) Step(ctx *system.Ctx) system.Activity {
	at := ctx.Start()
	rel := at - w.start
	if w.preempted(rel) {
		// The preemptor runs in the receiver's place: the core stays
		// busy but no measurement happens and the receiver's local
		// timebase stands still.
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Quantum())}
	}
	local := w.localRel(rel)
	measure := false
	record := false
	var sum *float64
	var cnt *int
	switch {
	case rel < 0:
		// Warm-up: keep the eviction list resident and the pipeline
		// hot, like the real receiver spinning before the first
		// interval.
		measure = true
	case w.track:
		// Tracked mode: sample continuously; windowing happens in the
		// demodulator, wherever the tracker ends up placing the
		// windows.
		measure, record = true, true
	default:
		idx := int(local / w.interval)
		if idx >= w.n {
			return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Quantum())}
		}
		off := local % w.interval
		if off < w.window {
			measure, sum, cnt = true, &w.t1Sum[idx], &w.t1N[idx]
		} else if off >= w.interval-w.window {
			measure, sum, cnt = true, &w.t2Sum[idx], &w.t2N[idx]
		}
	}
	if measure {
		for i := 0; i < w.per && ctx.Remaining() > 0; i++ {
			lat := ctx.TimedAccess(w.lines[i%len(w.lines)])
			if math.IsNaN(lat) {
				// An injected fault stole the sample (interrupt inside
				// the timing bracket); the receiver discards it.
				continue
			}
			if sum != nil {
				*sum += lat
				*cnt++
			}
			if record {
				w.demod.push(local+(ctx.Now()-at), lat)
			}
			if w.lat != nil {
				w.lat.Add(ctx.Now(), lat)
			}
		}
		if record {
			// Let the demodulator consume whatever has settled; it does
			// nothing until the stream has advanced past the next
			// stage's horizon.
			w.demod.pump()
		}
	}
	rest := ctx.CoreFreq().CyclesIn(ctx.Remaining())
	return system.Activity{Active: true, Cycles: rest}
}

// Run executes one UF-variation transmission of bits over machine m.
// The machine must be freshly positioned (any prior virtual time is fine);
// threads are spawned, the transmission runs to completion, and the
// spawned threads are stopped again.
func Run(m *system.Machine, cfg Config, bits channel.Bits) (Result, error) {
	return RunWith(m, cfg, bits, nil)
}

// RunWith is Run with caller-owned receiver scratch: a link layer that
// transmits frame after frame over the same machine passes the same
// RxScratch every time and reuses the latency stream, correlator, and
// window buffers across transmissions. A nil scratch behaves like Run.
func RunWith(m *system.Machine, cfg Config, bits channel.Bits, scr *RxScratch) (Result, error) {
	if scr == nil {
		scr = &RxScratch{}
	}
	if cfg.Interval <= 0 || cfg.Window <= 0 || cfg.Window*2 > cfg.Interval {
		return Result{}, fmt.Errorf("ufvariation: invalid interval %v / window %v", cfg.Interval, cfg.Window)
	}
	if len(bits) == 0 {
		return Result{}, fmt.Errorf("ufvariation: empty payload")
	}
	sSock := m.Socket(cfg.Sender.Socket)
	rSock := m.Socket(cfg.Receiver.Socket)

	// Sender's modulation loop. The stalling loop chases the sender's
	// local slice; the traffic alternative hammers a far slice so its
	// distance-weighted pressure alone pins the target at the maximum.
	var inner system.Workload
	if cfg.UseTrafficLoop {
		slice, ok := farSlice(m, cfg.Sender)
		if !ok {
			return Result{}, fmt.Errorf("ufvariation: no far slice for sender core %d", cfg.Sender.Core)
		}
		inner = &workload.Traffic{Slice: slice}
	} else {
		slice, ok := sSock.Die.SliceAtHops(cfg.Sender.Core, 0)
		if !ok {
			return Result{}, fmt.Errorf("ufvariation: sender core %d has no local slice", cfg.Sender.Core)
		}
		inner = &workload.Stalling{Slice: slice}
	}

	// Receiver probe list: an eviction list homed on a slice at the
	// configured hop distance from the receiver core — one the
	// receiver's own domain can allocate on, when slice partitioning
	// confines it to a subset.
	probeSlice := -1
	from := rSock.Die.CoreCoord(cfg.Receiver.Core)
	for delta := 0; delta < rSock.Die.Rows+rSock.Die.Cols && probeSlice < 0; delta++ {
		for _, h := range []int{cfg.ReceiverHops + delta, cfg.ReceiverHops - delta} {
			if h < 0 {
				continue
			}
			for s := 0; s < rSock.Die.NumSlices(); s++ {
				if from.Hops(rSock.Die.SliceCoord(s)) == h && domainCanMap(rSock.Hier, cfg.ReceiverDomain, s) {
					probeSlice = s
					break
				}
			}
			if probeSlice >= 0 {
				break
			}
		}
	}
	if probeSlice < 0 {
		return Result{}, fmt.Errorf("ufvariation: receiver core %d has no reachable probe slice", cfg.Receiver.Core)
	}
	lines, err := memsys.EvictionListInto(scr.lines[:0], rSock.Hier, cfg.ReceiverDomain, memsys.NewAllocator(), 200, probeSlice, 20)
	if err != nil {
		return Result{}, err
	}
	scr.lines = lines

	// With online calibration the transmission is prefixed by the known
	// saturate/decay preamble from which the receiver will read its
	// latency references.
	send := bits
	if cfg.OnlineCalibration {
		send = append(appendCalibrationBits(scr.send[:0], cfg.Interval), bits...)
		scr.send = send
	}

	// The receiver's clock model: an explicit wander function wins,
	// otherwise the linear SkewPPM rate error.
	clock := cfg.Clock
	if clock == nil && cfg.SkewPPM != 0 {
		rate := 1 + cfg.SkewPPM*1e-6
		clock = func(rel sim.Time) sim.Time { return sim.Time(float64(rel) * rate) }
	}

	start := m.Now() + cfg.Lead
	skip := len(send) - len(bits)
	sw := &senderWorkload{start: start + cfg.StartOffset, interval: cfg.Interval, bits: send, inner: inner}
	rw := &receiverWorkload{
		lines:    lines,
		start:    start,
		interval: cfg.Interval,
		window:   cfg.Window,
		n:        len(send),
		per:      cfg.SamplesPerQuantum,
		clock:    clock,
		blackout: cfg.Preemptions,
		track:    cfg.Track,
	}
	if cfg.Track {
		// Tracked mode never touches the windowed accumulators: the
		// streaming demodulator places its own windows. Its fallback
		// decoder (no calibration preamble) comes from the platform
		// latency model.
		var fallback decoder
		if !cfg.OnlineCalibration {
			fallback = newDecoder(m, cfg, probeSlice)
		}
		scr.demod.init(cfg, skip, len(bits), fallback, scr)
		rw.demod = &scr.demod
	} else {
		scr.t1Sum = growFloats(scr.t1Sum, len(send))
		scr.t2Sum = growFloats(scr.t2Sum, len(send))
		scr.t1N = growInts(scr.t1N, len(send))
		scr.t2N = growInts(scr.t2N, len(send))
		rw.t1Sum, rw.t2Sum = scr.t1Sum, scr.t2Sum
		rw.t1N, rw.t2N = scr.t1N, scr.t2N
	}
	if rw.per <= 0 {
		rw.per = 20
	}
	if cfg.RecordTraces {
		rw.lat = &trace.Series{Name: "llc_latency_cycles"}
	}

	names := fmt.Sprintf("@%d", m.Now())
	threads := []*system.Thread{
		m.Spawn("ufv-sender"+names, cfg.Sender.Socket, cfg.Sender.Core, cfg.SenderDomain, sw),
		m.Spawn("ufv-receiver"+names, cfg.Receiver.Socket, cfg.Receiver.Core, cfg.ReceiverDomain, rw),
	}
	for i, core := range cfg.SenderCores {
		slice, ok := sSock.Die.SliceAtHops(core, 0)
		if !ok {
			slice = 0
		}
		extra := &senderWorkload{start: start + cfg.StartOffset, interval: cfg.Interval, bits: send, inner: &workload.Stalling{Slice: slice}}
		threads = append(threads, m.Spawn(fmt.Sprintf("ufv-sender%d%s", i+2, names), cfg.Sender.Socket, core, cfg.SenderDomain, extra))
	}
	span := cfg.Lead + cfg.StartOffset + cfg.Interval*sim.Time(len(send)) + m.Config().Quantum
	if cfg.Track {
		// One extra interval of tail so the tracker's last windows stay
		// inside the sampled stream even after cancelling skew.
		span += cfg.Interval
	}
	m.Run(span)
	for _, t := range threads {
		t.Stop()
	}
	// Long-lived sessions (the ARQ transport) run many transmissions on
	// one machine; reap the stopped threads so the scheduler's list does
	// not grow with the session.
	m.Reap()

	res := Result{}
	var received channel.Bits
	if cfg.Track {
		var rep SyncReport
		received, res.T1, res.T2, rep = rw.demod.finalize()
		res.Sync = &rep
	} else {
		var dec decoder
		if cfg.OnlineCalibration {
			dec = calibrateDecoder(rw, skip)
		} else {
			dec = newDecoder(m, cfg, probeSlice)
		}
		received = make(channel.Bits, len(bits))
		if !cfg.NoDiagnostics {
			res.T1 = make([]float64, len(bits))
			res.T2 = make([]float64, len(bits))
		}
		for i := range bits {
			t1 := mean(rw.t1Sum[skip+i], rw.t1N[skip+i])
			t2 := mean(rw.t2Sum[skip+i], rw.t2N[skip+i])
			if res.T1 != nil {
				res.T1[i], res.T2[i] = t1, t2
			}
			received[i] = dec.decide(t1, t2)
		}
	}
	res.Result = channel.Evaluate(bits, received, cfg.Interval)
	res.Latency = rw.lat
	return res, nil
}

// growFloats returns s resized to n zeroed entries, reallocating only
// when the capacity is too small.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// calibrateDecoder reads the latency references off the calibration
// preamble's plateaus: the end of the "1" run sits at the top operating
// point, the end of the "0" run at the idle dither. The per-step latency
// gap follows from the nine-step range, sizing the tolerances and the
// significance threshold without any platform knowledge.
func calibrateDecoder(rw *receiverWorkload, calLen int) decoder {
	hold := calLen / 2
	tMax := mean(rw.t2Sum[hold-1], rw.t2N[hold-1])
	tMin := mean(rw.t2Sum[calLen-1], rw.t2N[calLen-1])
	return decoderFromRefs(tMax, tMin)
}

// decoderFromRefs sizes a decoder from calibrated plateau references:
// the per-step latency gap follows from the nine-step frequency range,
// setting the tolerances and the significance threshold without any
// platform knowledge.
func decoderFromRefs(tMax, tMin float64) decoder {
	gap := (tMin - tMax) / 9
	if gap < 0.5 {
		gap = 0.5
	}
	return decoder{
		tMax:   tMax,
		tMin:   tMin,
		tolMax: 0.45 * gap,
		tolMin: 0.85 * gap,
		delta:  0.4 * gap,
	}
}

func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// domainCanMap reports whether domain d can allocate lines homed on slice.
func domainCanMap(h *cache.Hierarchy, d cache.Domain, slice int) bool {
	for l := cache.Line(1 << 22); l < 1<<22+4096; l++ {
		if h.SliceOf(d, l) == slice {
			return true
		}
	}
	return false
}

// farSlice picks the farthest slice from the sender core.
func farSlice(m *system.Machine, p Placement) (int, bool) {
	die := m.Socket(p.Socket).Die
	best, bestH := -1, -1
	from := die.CoreCoord(p.Core)
	for s := 0; s < die.NumSlices(); s++ {
		if h := from.Hops(die.SliceCoord(s)); h > bestH {
			best, bestH = s, h
		}
	}
	return best, best >= 0
}

// decoder holds the latency references of Algorithm 1 (Tfreq_max,
// Tfreq_min) derived from the latency model — the values a real receiver
// obtains in an offline calibration phase — plus the significance
// threshold delta below which a window-mean difference is just noise.
type decoder struct {
	tMax, tMin     float64
	tolMax, tolMin float64
	delta          float64
}

func newDecoder(m *system.Machine, cfg Config, probeSlice int) decoder {
	tp := m.Config().Timing
	fc := m.Config().CoreFreq
	rSock := m.Socket(cfg.Receiver.Socket)
	hops := rSock.Mesh.Hops(rSock.Die.CoreCoord(cfg.Receiver.Core), rSock.Die.SliceCoord(probeSlice))

	hi := rSock.MSR.Ratio().Max
	if cfg.Receiver.Socket != cfg.Sender.Socket {
		// A coupled follower stabilises one step below the leader
		// (§3.4), so the receiver's observable top frequency is lower.
		hi -= sim.FreqStep
	}
	if cfg.MaxFreqOverride != 0 {
		hi = cfg.MaxFreqOverride
	}
	lo := m.Config().UFS.IdleHigh
	rl := rSock.MSR.Ratio()
	if rl.Min > lo {
		lo = rl.Min
	}
	// The idle operating point dithers between lo and lo−1 (§3.1), so
	// the receiver's freq_min latency reference is the blend of both
	// levels.
	loDither := (lo - sim.FreqStep).Clamp(rl.Min, rl.Max)
	tMax := tp.LLCMeanCycles(fc, hi, hops, 0)
	tMaxNext := tp.LLCMeanCycles(fc, hi-sim.FreqStep, hops, 0)
	tMin := (tp.LLCMeanCycles(fc, lo, hops, 0) + tp.LLCMeanCycles(fc, loDither, hops, 0)) / 2
	tMinNext := tp.LLCMeanCycles(fc, lo+sim.FreqStep, hops, 0)
	// Window means carry residual correlated noise; differences below
	// delta are not significant.
	delta := 2.2 * tp.DriftStd
	if delta < 0.5 {
		delta = 0.5
	}
	return decoder{
		tMax:   tMax,
		tMin:   tMin,
		tolMax: maxf((tMaxNext-tMax)/2, 1.6*tp.DriftStd),
		tolMin: maxf((tMin-tMinNext)/2, 1.6*tp.DriftStd),
		delta:  delta,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// decide implements the receiver branch of Algorithm 1: a significant
// latency move decides the bit by its sign; flat intervals decode by which
// saturation level they sit at; anything else is genuinely ambiguous and
// falls back to the (insignificant) sign.
func (d decoder) decide(t1, t2 float64) int {
	if t1 == 0 || t2 == 0 {
		return 0 // no samples: undecodable interval
	}
	nearMin := func(t float64) bool { return t >= d.tMin-d.tolMin }
	nearMax := func(t float64) bool { return t <= d.tMax+d.tolMax }
	switch {
	case nearMin(t1) && nearMin(t2):
		return 0
	case nearMax(t1) && nearMax(t2):
		return 1
	case t2 < t1-d.delta:
		return 1
	case t2 > t1+d.delta:
		return 0
	default:
		// Flat but not cleanly inside either saturation band: decode
		// by which reference the interval sits closer to — a flat
		// interval near the fast end is far more likely the tail of a
		// "1" run than of a "0" run.
		if (t1+t2)/2 < (d.tMax+d.tMin)/2 {
			return 1
		}
		return 0
	}
}
