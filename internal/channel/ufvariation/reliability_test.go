package ufvariation

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

// spawnBystanders launches n active-but-unstalled threads, the §4.3.3
// noise that dilutes the stalled-core fraction.
func spawnBystanders(m *system.Machine, n int) {
	for i := 0; i < n; i++ {
		core := m.FreeCore(0, 0, 8)
		m.Spawn("bystander", 0, core, 0, workload.Nop{})
	}
}

// TestStallDilutionBreaksSingleCoreSender reproduces the §4.3.3 failure
// mode: with two extra busy threads, a single stalling sender keeps only
// 1/4 of the active cores stalled and the frequency no longer rises.
func TestStallDilutionBreaksSingleCoreSender(t *testing.T) {
	m := newMachine(21)
	spawnBystanders(m, 2)
	cfg := DefaultConfig()
	bits := channel.RandomBits(m.Rand(1), 48)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER < 0.3 {
		t.Errorf("single-core sender BER %.2f despite dilution; §4.3.3 expects failure", res.BER)
	}
}

// TestMultiCoreSenderResistsDilution reproduces the §4.3.3 fix: "if the
// sender stalls 6 cores, then it is guaranteed that over 1/3 active cores
// are stalled".
func TestMultiCoreSenderResistsDilution(t *testing.T) {
	m := newMachine(22)
	spawnBystanders(m, 2)
	cfg := DefaultConfig()
	cfg.SenderCores = []int{1, 2, 3, 4, 5}
	bits := channel.RandomBits(m.Rand(2), 48)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.05 {
		t.Errorf("six-core sender BER %.2f under dilution, want ≈0 (§4.3.3)", res.BER)
	}
}

// TestTrafficLoopSenderResistsDilution is §4.3.3's other fix: the heavy
// traffic loop drives the frequency through utilisation, which no number
// of unstalled bystanders dilutes.
func TestTrafficLoopSenderResistsDilution(t *testing.T) {
	m := newMachine(23)
	spawnBystanders(m, 4)
	cfg := DefaultConfig()
	cfg.UseTrafficLoop = true
	bits := channel.RandomBits(m.Rand(3), 48)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.05 {
		t.Errorf("traffic-loop sender BER %.2f under dilution, want ≈0 (§4.3.3)", res.BER)
	}
}

// TestTurboCoreDisablesChannel: when any core runs above its base
// frequency, UFS pins the uncore at the maximum (§2.2.1) and the channel
// has nothing to modulate.
func TestTurboCoreDisablesChannel(t *testing.T) {
	cfg := system.DefaultConfig()
	cfg.Seed = 24
	m := system.New(cfg)
	// One core enters turbo.
	m.Socket(0).Cores[15].Freq = sim.CoreBase + 4
	m.Spawn("turbo", 0, 15, 0, workload.Nop{})
	bits := channel.RandomBits(m.Rand(4), 48)
	res, err := Run(m, DefaultConfig(), bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER < 0.3 {
		t.Errorf("channel functional with a turbo core (BER %.2f); UFS should be disabled", res.BER)
	}
	if f := m.Socket(0).Uncore(); f != 24 {
		t.Errorf("uncore at %v with a turbo core, want pinned max", f)
	}
}

// TestOnlineCalibration verifies the attacker can derive its latency
// references from the saturate/decay preamble alone — no latency-model
// oracle — and still decode cleanly, including cross-processor and under
// a restricted UFS range where the references differ.
func TestOnlineCalibration(t *testing.T) {
	m := newMachine(25)
	cfg := DefaultConfig()
	cfg.Interval = 21 * sim.Millisecond
	cfg.OnlineCalibration = true
	bits := channel.RandomBits(m.Rand(5), 64)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.05 {
		t.Errorf("online-calibrated BER %.3f at 21ms, want ≈0", res.BER)
	}
}

func TestOnlineCalibrationCrossProcessor(t *testing.T) {
	m := newMachine(26)
	cfg := DefaultConfig().CrossProcessor()
	cfg.OnlineCalibration = true
	bits := channel.RandomBits(m.Rand(6), 48)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.08 {
		t.Errorf("cross-processor online-calibrated BER %.3f, want ≤0.08", res.BER)
	}
}

func TestCalibrationBitsShape(t *testing.T) {
	bits := CalibrationBits(21 * sim.Millisecond)
	if len(bits)%2 != 0 {
		t.Fatal("calibration preamble not symmetric")
	}
	half := len(bits) / 2
	for i, b := range bits {
		want := 0
		if i < half {
			want = 1
		}
		if b != want {
			t.Fatalf("calibration bit %d = %d", i, b)
		}
	}
	// The hold must cover the nine-step swing.
	if sim.Time(half)*21*sim.Millisecond < 100*sim.Millisecond {
		t.Error("calibration hold shorter than the frequency swing")
	}
}

// TestClockSkewDegradesLongPayloads probes the §4.3.2 synchronisation
// assumption: with a shared TSC (zero skew) long payloads stay clean,
// while a receiver clock running 2000 ppm fast drifts its windows off the
// sender's intervals and the tail of the payload collapses. The third
// case is the recovery: the same skewed clock with the symbol-timing
// tracker enabled decodes near-clean again, because the DLL re-estimates
// the bit interval online and cancels the rate error.
func TestClockSkewDegradesLongPayloads(t *testing.T) {
	run := func(ppm float64, track bool) (float64, *SyncReport) {
		m := newMachine(31)
		cfg := DefaultConfig()
		cfg.Interval = 21 * sim.Millisecond
		cfg.SkewPPM = ppm
		cfg.Track = track
		bits := channel.RandomBits(m.Rand(11), 192)
		res, err := Run(m, cfg, bits)
		if err != nil {
			t.Fatal(err)
		}
		return res.BER, res.Sync
	}
	clean, _ := run(0, false)
	skewed, _ := run(2000, false)
	tracked, rep := run(2000, true)
	if clean > 0.05 {
		t.Errorf("zero-skew BER %.3f on a long payload, want ≈0", clean)
	}
	if skewed < 0.15 {
		t.Errorf("2000 ppm skew BER %.3f; windows should drift off (want >0.15)", skewed)
	}
	if skewed < clean+0.1 {
		t.Errorf("2000 ppm skew BER %.3f barely above clean %.3f; windows should drift off", skewed, clean)
	}
	if tracked > 0.05 {
		t.Errorf("tracked 2000 ppm BER %.3f, want <0.05: the DLL should cancel the rate error", tracked)
	}
	if rep == nil || !rep.Tracked {
		t.Fatal("tracked run returned no sync report")
	}
	if !rep.Locked || rep.LockLost {
		t.Errorf("tracked run lost lock: %+v", rep)
	}
	// The interval estimate should have converged near the true clock
	// error (+2000 ppm: the receiver's clock runs fast, so the sender's
	// interval spans more receiver-clock time).
	if rep.PPMEst < 1000 || rep.PPMEst > 3000 {
		t.Errorf("tracker ppm estimate %.0f, want ≈2000", rep.PPMEst)
	}
}
