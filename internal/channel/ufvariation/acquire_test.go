package ufvariation

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// synthPreamble builds the idealised latency stream a receiver records
// around a calibration preamble that starts offset after the first
// sample: idle plateau, nine-step descent to the fast plateau, hold,
// nine-step climb back, idle tail. The governor's epoch-boundary
// reaction lag is baked in, matching what a real trace shows and what
// the correlator's template assumes.
func synthPreamble(offset, interval sim.Time, hold int, tail sim.Time, noise float64, seed uint64) []Sample {
	const (
		fastLat = 40.0
		idleLat = 80.0
	)
	lag := 15 * sim.Millisecond
	swing := 90 * sim.Millisecond
	halfDur := sim.Time(hold) * interval
	level := func(t sim.Time) float64 {
		rel := t - offset
		switch {
		case rel < lag:
			return idleLat
		case rel < lag+swing:
			return idleLat - (idleLat-fastLat)*float64(rel-lag)/float64(swing)
		case rel < halfDur+lag:
			return fastLat
		case rel < halfDur+lag+swing:
			return fastLat + (idleLat-fastLat)*float64(rel-halfDur-lag)/float64(swing)
		default:
			return idleLat
		}
	}
	rng := sim.NewRand(seed)
	total := offset + 2*halfDur + tail
	var out []Sample
	for t := sim.Time(0); t < total; t += 500 * sim.Microsecond {
		out = append(out, Sample{At: t, Lat: level(t) + rng.Norm(0, noise)})
	}
	return out
}

// TestAcquireLocksAtOffsets: the correlator must find the preamble start
// wherever in the hunt window the sender actually began, and read the
// plateau references off the lock.
func TestAcquireLocksAtOffsets(t *testing.T) {
	interval := 21 * sim.Millisecond
	hold := 7
	for _, offset := range []sim.Time{0, 10 * sim.Millisecond, 2*interval + interval/2} {
		samples := synthPreamble(offset, interval, hold, 2*interval, 0.5, 77)
		acq, ok := Acquire(samples, interval, hold, 8*interval)
		if !ok {
			t.Fatalf("offset %v: no lock", offset)
		}
		err := acq.Start - offset
		if err < 0 {
			err = -err
		}
		if err > interval/4 {
			t.Errorf("offset %v: locked at %v (error %v, want ≤ %v)", offset, acq.Start, err, interval/4)
		}
		if acq.Score < acquireMinScore {
			t.Errorf("offset %v: lock score %.3f below threshold", offset, acq.Score)
		}
		if acq.TMax < 38 || acq.TMax > 42 {
			t.Errorf("offset %v: TMax %.1f, want ≈40", offset, acq.TMax)
		}
		if acq.TMin < 78 || acq.TMin > 82 {
			t.Errorf("offset %v: TMin %.1f, want ≈80", offset, acq.TMin)
		}
	}
}

// TestAcquireRejectsNoise: a flat stream with no frequency swing must
// not lock, however long the hunt.
func TestAcquireRejectsNoise(t *testing.T) {
	interval := 21 * sim.Millisecond
	rng := sim.NewRand(78)
	var samples []Sample
	for t := sim.Time(0); t < 20*interval; t += 500 * sim.Microsecond {
		samples = append(samples, Sample{At: t, Lat: 60 + rng.Norm(0, 1)})
	}
	if acq, ok := Acquire(samples, interval, 7, 8*interval); ok {
		t.Errorf("locked on pure noise: %+v", acq)
	}
}

// TestAcquireRejectsTruncatedPreamble: a stream that ends before the
// preamble does cannot contain a full lock.
func TestAcquireRejectsTruncatedPreamble(t *testing.T) {
	interval := 21 * sim.Millisecond
	hold := 7
	samples := synthPreamble(0, interval, hold, 2*interval, 0.5, 79)
	// Keep only the first half of the preamble.
	cut := sim.Time(hold) * interval
	var short []Sample
	for _, s := range samples {
		if s.At < cut {
			short = append(short, s)
		}
	}
	if acq, ok := Acquire(short, interval, hold, 8*interval); ok {
		t.Errorf("locked on a truncated preamble: %+v", acq)
	}
}

// TestAcquireHostileParams: implausible geometry must be refused, not
// panicked over.
func TestAcquireHostileParams(t *testing.T) {
	interval := 21 * sim.Millisecond
	samples := synthPreamble(0, interval, 7, 2*interval, 0.5, 80)
	cases := []struct {
		name     string
		interval sim.Time
		hold     int
		search   sim.Time
	}{
		{"zero interval", 0, 7, interval},
		{"negative interval", -interval, 7, interval},
		{"huge interval", sim.Time(1) << 43, 7, interval},
		{"hold too small", interval, 1, interval},
		{"hold too large", interval, 1 << 17, interval},
		{"negative search", interval, 7, -1},
	}
	for _, c := range cases {
		if _, ok := Acquire(samples, c.interval, c.hold, c.search); ok {
			t.Errorf("%s: unexpectedly locked", c.name)
		}
	}
	if _, ok := Acquire(nil, interval, 7, interval); ok {
		t.Error("locked on an empty stream")
	}
}

// FuzzAcquire drives the correlator with arbitrary sample streams and
// parameters: it must never panic, and any reported lock must lie within
// the sampled span with the whole preamble inside it.
func FuzzAcquire(f *testing.F) {
	iv := int64(21 * sim.Millisecond)
	f.Add([]byte{}, iv, 7, int64(8*21*sim.Millisecond))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, iv, 7, iv)
	f.Add([]byte{255, 0, 128, 64, 200, 13, 17, 90}, int64(1), 2, int64(1)<<40)
	f.Add([]byte{10, 40, 10, 80, 10, 40, 10, 80, 10, 40}, iv, 2, int64(-5))
	f.Fuzz(func(t *testing.T, data []byte, ivRaw int64, hold int, searchRaw int64) {
		if len(data) > 160 {
			data = data[:160]
		}
		interval := sim.Time(ivRaw)
		// Samples are spaced in units of the correlator's sub-window so
		// the candidate scan stays proportional to the input size (the
		// scan is O(span/sub × preamble/sub)); the interval itself is
		// passed through raw to exercise the guards.
		sub := interval / 8
		if sub <= 0 || sub > 25*sim.Millisecond {
			sub = 21 * sim.Millisecond / 8
		}
		var samples []Sample
		at := sim.Time(0)
		for i := 0; i+1 < len(data); i += 2 {
			at += sim.Time(data[i]%8)*sub + 1
			lat := float64(data[i+1])
			switch data[i] % 13 {
			case 0:
				lat = math.NaN()
			case 1:
				lat = math.Inf(1)
			}
			samples = append(samples, Sample{At: at, Lat: lat})
		}
		acq, ok := Acquire(samples, interval, hold, sim.Time(searchRaw))
		if !ok {
			return
		}
		first, last := samples[0].At, samples[0].At
		for _, s := range samples {
			if s.At < first {
				first = s.At
			}
			if s.At > last {
				last = s.At
			}
		}
		preamble := sim.Time(2*hold) * interval
		if acq.Start < first || acq.Start+preamble > last {
			t.Fatalf("lock at %v (+%v preamble) outside sampled span [%v, %v]",
				acq.Start, preamble, first, last)
		}
		if acq.Score < acquireMinScore || acq.Score > 1.0001 {
			t.Fatalf("lock score %v outside (%v, 1]", acq.Score, acquireMinScore)
		}
		if acq.TMin-acq.TMax < acquireMinContrast {
			t.Fatalf("lock with contrast %v below the floor", acq.TMin-acq.TMax)
		}
	})
}
