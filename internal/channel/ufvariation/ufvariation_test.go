package ufvariation

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
)

func newMachine(seed uint64) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

func TestCrossCoreTransmissionErrorFree(t *testing.T) {
	m := newMachine(1)
	cfg := DefaultConfig()
	bits := channel.Bits{1, 1, 0, 1, 0, 0, 1, 0, 1, 1}
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Errorf("BER = %v at 38ms interval, want 0\nsent %v\ngot  %v\nT1 %v\nT2 %v",
			res.BER, res.Sent, res.Received, res.T1, res.T2)
	}
}

func TestCrossCoreLongPayload(t *testing.T) {
	m := newMachine(2)
	cfg := DefaultConfig()
	cfg.Interval = 21 * sim.Millisecond // the paper's peak-capacity interval
	bits := channel.RandomBits(m.Rand(99), 64)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.05 {
		t.Errorf("BER = %v at 21ms, want ≤0.05\nsent %v\ngot  %v", res.BER, res.Sent, res.Received)
	}
}

func TestCrossProcessorTransmission(t *testing.T) {
	m := newMachine(3)
	cfg := DefaultConfig().CrossProcessor()
	bits := channel.RandomBits(m.Rand(7), 48)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.08 {
		t.Errorf("cross-processor BER = %v at 33ms, want ≤0.08\nsent %v\ngot  %v", res.BER, res.Sent, res.Received)
	}
}

func TestTrafficLoopSender(t *testing.T) {
	m := newMachine(4)
	cfg := DefaultConfig()
	cfg.UseTrafficLoop = true
	bits := channel.RandomBits(m.Rand(8), 32)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER > 0.05 {
		t.Errorf("traffic-loop sender BER = %v, want ≤0.05", res.BER)
	}
}

func TestVeryShortIntervalDegrades(t *testing.T) {
	m := newMachine(5)
	cfg := DefaultConfig()
	cfg.Interval = 11 * sim.Millisecond
	bits := channel.RandomBits(m.Rand(9), 64)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER == 0 {
		t.Errorf("BER = 0 at 11ms interval; expected degradation below the knee")
	}
}

func TestConfigValidation(t *testing.T) {
	m := newMachine(6)
	cfg := DefaultConfig()
	cfg.Window = cfg.Interval // windows overlap
	if _, err := Run(m, cfg, channel.Bits{1}); err == nil {
		t.Error("overlapping windows accepted")
	}
	cfg = DefaultConfig()
	if _, err := Run(m, cfg, nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	data := []byte("uncore")
	b := channel.FromBytes(data)
	back, err := b.ToBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != "uncore" {
		t.Errorf("round trip = %q", back)
	}
	if _, err := (channel.Bits{1, 0, 1}).ToBytes(); err == nil {
		t.Error("non-byte-aligned bits accepted")
	}
}
