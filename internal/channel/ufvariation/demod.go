package ufvariation

import (
	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/sim"
)

// This file implements the streaming demodulator: the acquisition →
// refinement → tracking pipeline of the self-synchronizing receiver,
// run as a state machine over the latency stream *while it is being
// recorded* instead of over a complete capture afterwards. Each stage
// declares the newest timestamp it needs before it can run; the pump
// fires it once the stream has settled past that point (one interval of
// slack absorbs the bounded timestamp inversions a local clock model
// can produce across a quantum boundary), and the tracker retires the
// stream behind its phase as it advances. The receiver's memory is
// therefore proportional to the preamble-plus-look-behind window, not
// to the message: a transmission can run indefinitely in constant
// space. Every stage consumes exactly the settled prefix the batch
// pipeline would have read from a full capture, so the decoded bits,
// diagnostics, and sync report are bit-identical to the old
// capture-then-demodulate path.

// RxScratch owns the receiver-side buffers one UF-variation endpoint
// reuses across transmissions: the latency stream, the correlator's
// template and observation vectors, the tracker's indecision ring, the
// untracked window accumulators, and the probe eviction list. A
// long-lived endpoint (LinkPhy under the ARQ transport) passes the same
// scratch to every RunWith call and amortises all per-frame receiver
// allocation away. The zero value is ready to use; a scratch must not
// be shared between concurrent transmissions.
type RxScratch struct {
	str     stream
	acq     acqScratch
	demod   streamDemod
	send    channel.Bits
	lines   []cache.Line
	lowRing []bool

	t1Sum, t2Sum []float64
	t1N, t2N     []int
}

type demodState int

const (
	// demodAcquire hunts the calibration preamble once the stream spans
	// the search window plus the preamble.
	demodAcquire demodState = iota
	// demodRefine polishes an acquired phase by decision feedback over
	// the first payload bits.
	demodRefine
	// demodFallback reads plateau references at the nominal preamble
	// position after a failed acquisition.
	demodFallback
	// demodTrack steps the DLL one bit at a time as samples settle.
	demodTrack
	// demodDone has emitted all payload bits.
	demodDone
)

// streamDemod drives the tracked receiver incrementally. It is owned by
// an RxScratch and re-initialised per transmission.
type streamDemod struct {
	str *stream
	scr *RxScratch

	interval sim.Time
	opts     trackerOpts
	skip, n  int
	hold     int
	search   sim.Time
	slack    sim.Time
	diag     bool

	state demodState
	p0    float64 // estimated sender start, local clock
	dec   decoder
	acq   Acquisition

	acquisitionRun bool
	acquired       bool
	score          float64

	tk tracker
}

// init prepares the demodulator for one transmission of n payload bits
// after skip preamble bits. fallback is the model-derived decoder used
// when no calibration preamble is sent (ignored otherwise).
func (d *streamDemod) init(cfg Config, skip, n int, fallback decoder, scr *RxScratch) {
	scr.str.reset()
	*d = streamDemod{
		str:      &scr.str,
		scr:      scr,
		interval: cfg.Interval,
		opts:     trackerOpts{interval: cfg.Interval, window: cfg.Window, ppmInit: cfg.TrackerPPM},
		skip:     skip,
		n:        n,
		hold:     skip / 2,
		slack:    cfg.Interval,
		diag:     !cfg.NoDiagnostics,
		p0:       float64(cfg.TrackerPhase),
	}
	d.search = cfg.AcquireSearch
	if d.search <= 0 {
		d.search = 8 * cfg.Interval
	}
	if cfg.OnlineCalibration {
		d.state = demodAcquire
	} else {
		d.dec = fallback
		d.startTracking()
	}
}

// push records one timestamped latency sample.
func (d *streamDemod) push(at sim.Time, lat float64) { d.str.push(at, lat) }

// pump advances the state machine as far as the settled stream allows.
// It is called once per receiver quantum; each stage runs only when the
// newest sample is at least one slack interval past everything the
// stage will read, so the data it consumes is final.
func (d *streamDemod) pump() {
	for {
		last, ok := d.str.lastAt()
		if !ok {
			return
		}
		switch d.state {
		case demodAcquire:
			first, _, _ := d.str.span()
			preamble := sim.Time(2*d.hold) * d.interval
			if last < first+d.search+preamble+d.slack {
				return
			}
			d.resolveAcquire()
		case demodRefine:
			if last < d.refineEnd()+d.slack {
				return
			}
			d.resolveRefine()
		case demodFallback:
			if last < sim.Time(d.p0)+sim.Time(d.skip)*d.interval+d.slack {
				return
			}
			d.resolveFallback()
		case demodTrack:
			if d.tk.k >= d.n {
				d.state = demodDone
				return
			}
			if last < d.tk.horizon()+d.slack {
				return
			}
			d.tk.step(d.str)
			// Nothing re-reads behind the loop: drop everything more
			// than half an interval behind the early candidate window.
			d.str.retire(d.tk.lookBehind() - d.interval/2)
		case demodDone:
			return
		}
	}
}

// resolveAcquire runs the preamble hunt. By the time it fires, the
// stream covers the whole search window and the correlator sees exactly
// what a full capture would have shown it: its scan limit is capped by
// the search span, not by the stream's end.
func (d *streamDemod) resolveAcquire() {
	d.acquisitionRun = true
	acq, ok := acquireStream(d.str, d.interval, d.hold, d.search, &d.scr.acq)
	if ok {
		d.acquired = true
		d.score = acq.Score
		d.acq = acq
		d.dec = decoderFromRefs(acq.TMax, acq.TMin)
		d.state = demodRefine
	} else {
		d.state = demodFallback
	}
}

// refineEnd is the newest timestamp refinePhase will read: the last
// probe bit's T2 window at the latest candidate offset.
func (d *streamDemod) refineEnd() sim.Time {
	iv := float64(d.opts.interval) * (1 + d.opts.ppmInit*1e-6)
	probe := d.n
	if probe > refineProbeBits {
		probe = refineProbeBits
	}
	return d.acq.Start + sim.Time(float64(d.skip+probe)*iv+iv/4)
}

func (d *streamDemod) resolveRefine() {
	d.p0 = refinePhase(d.str, float64(d.acq.Start), d.skip, d.n, d.dec, d.opts)
	d.startTracking()
}

// resolveFallback reads the plateau references where the preamble
// should have been, as the untracked online calibration would.
func (d *streamDemod) resolveFallback() {
	ref := d.interval / 4
	at := sim.Time(d.p0)
	tMax, _ := d.str.mean(at+sim.Time(d.hold)*d.interval-ref, at+sim.Time(d.hold)*d.interval)
	tMin, _ := d.str.mean(at+sim.Time(d.skip)*d.interval-ref, at+sim.Time(d.skip)*d.interval)
	d.dec = decoderFromRefs(tMax, tMin)
	d.startTracking()
}

func (d *streamDemod) startTracking() {
	ivLocal := float64(d.opts.interval) * (1 + d.opts.ppmInit*1e-6)
	bitStart := sim.Time(d.p0 + float64(d.skip)*ivLocal)
	var t1s, t2s []float64
	if d.diag {
		t1s = make([]float64, 0, d.n)
		t2s = make([]float64, 0, d.n)
	}
	d.tk.init(bitStart, d.n, d.dec, d.opts, make([]int, 0, d.n), t1s, t2s, d.scr.lowRing)
	d.scr.lowRing = d.tk.lowRing
	d.state = demodTrack
}

// finalize drains the pipeline at end of transmission: any stage still
// waiting for settle time runs against the now-complete stream (exactly
// the batch semantics — a stream that ends early is all the data there
// is), the tracker emits its remaining bits, and the sync report is
// assembled. It returns the decoded payload, the per-bit window means
// (nil when diagnostics are disabled), and the report.
func (d *streamDemod) finalize() (channel.Bits, []float64, []float64, SyncReport) {
	for d.state != demodTrack && d.state != demodDone {
		switch d.state {
		case demodAcquire:
			d.resolveAcquire()
		case demodRefine:
			d.resolveRefine()
		case demodFallback:
			d.resolveFallback()
		}
	}
	for d.tk.k < d.n {
		d.tk.step(d.str)
	}
	d.state = demodDone
	trep := d.tk.finish()
	trep.AcquisitionRun = d.acquisitionRun
	trep.Acquired = d.acquired
	trep.AcquireScore = d.score
	trep.Origin = sim.Time(d.p0)
	if d.acquisitionRun && !d.acquired {
		trep.Locked = false
	}
	return channel.Bits(d.tk.bits), d.tk.t1s, d.tk.t2s, trep
}
