package ufvariation

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// TestStartOffsetAcquisition: the sender starts two and a half bit
// intervals after the nominal shared instant and the receiver is not
// told. Without a shared start the §4.3.2 decode is impossible; the
// tracked receiver must find the calibration preamble by correlation
// and decode the payload clean anyway.
func TestStartOffsetAcquisition(t *testing.T) {
	m := newMachine(41)
	cfg := DefaultConfig()
	cfg.Interval = 21 * sim.Millisecond
	cfg.OnlineCalibration = true
	cfg.Track = true
	cfg.StartOffset = 2*cfg.Interval + cfg.Interval/2
	bits := channel.RandomBits(m.Rand(12), 96)
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Sync
	if rep == nil || !rep.AcquisitionRun {
		t.Fatal("tracked calibrated run did not attempt acquisition")
	}
	if !rep.Acquired || !rep.Locked {
		t.Fatalf("acquisition failed under a %v start offset: %+v", cfg.StartOffset, rep)
	}
	if off := rep.Origin - cfg.StartOffset; off < -cfg.Interval/2 || off > cfg.Interval/2 {
		t.Errorf("acquired origin %v, want within half an interval of the true offset %v",
			rep.Origin, cfg.StartOffset)
	}
	if res.BER > 0.05 {
		t.Errorf("BER %.3f under an unknown start offset, want <0.05 after acquisition", res.BER)
	}
}

// TestWanderTrackedRecovers: a receiver clock that runs 2000 ppm fast
// AND wanders sinusoidally (±1500 ppm over 2 s — thermal TSC drift)
// wrecks the untracked decode of a long payload; the DLL must follow
// the wander and decode near-clean.
func TestWanderTrackedRecovers(t *testing.T) {
	wander := func() func(sim.Time) sim.Time {
		const (
			base   = 2000.0
			amp    = 1500.0
			period = 2 * sim.Second
		)
		w := 2 * math.Pi / float64(period)
		return func(rel sim.Time) sim.Time {
			tt := float64(rel)
			return sim.Time(tt*(1+base*1e-6) + amp*1e-6/w*(1-math.Cos(w*tt)))
		}
	}
	run := func(track bool) (float64, *SyncReport) {
		m := newMachine(42)
		cfg := DefaultConfig()
		cfg.Interval = 21 * sim.Millisecond
		cfg.Clock = wander()
		cfg.Track = track
		bits := channel.RandomBits(m.Rand(13), 256)
		res, err := Run(m, cfg, bits)
		if err != nil {
			t.Fatal(err)
		}
		return res.BER, res.Sync
	}
	untracked, _ := run(false)
	tracked, rep := run(true)
	if untracked < 0.15 {
		t.Errorf("untracked BER %.3f under skew+wander, want >0.15", untracked)
	}
	if tracked > 0.05 {
		t.Errorf("tracked BER %.3f under skew+wander, want <0.05", tracked)
	}
	if rep == nil || !rep.Locked || rep.LockLost {
		t.Errorf("tracker lost lock under wander: %+v", rep)
	}
}

// TestPreemptionDesyncsReceiver: a receiver blackout of eight bit
// intervals freezes the loop-progress timebase for longer than the
// tracker's pull-in range. The decode after the gap is permanently
// misaligned — and the tracker must SAY so (loss of lock), because the
// link layer's resync escalation keys on that verdict.
func TestPreemptionDesyncsReceiver(t *testing.T) {
	m := newMachine(43)
	cfg := DefaultConfig()
	cfg.Interval = 21 * sim.Millisecond
	cfg.OnlineCalibration = true
	cfg.Track = true
	bits := channel.RandomBits(m.Rand(14), 96)
	skip := len(CalibrationBits(cfg.Interval))
	cfg.Preemptions = []Preemption{{
		At:  sim.Time(skip+40) * cfg.Interval,
		Dur: 8 * cfg.Interval,
	}}
	res, err := Run(m, cfg, bits)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Sync
	if rep == nil {
		t.Fatal("tracked run returned no sync report")
	}
	if !rep.LockLost || rep.Locked {
		t.Fatalf("8-interval blackout went undetected: %+v", rep)
	}
	if res.BER < 0.1 {
		t.Errorf("BER %.3f after a desynchronizing blackout, expected substantial corruption", res.BER)
	}
}

// TestLinkPhyCountsMissingTailAsErrors: a reception shorter than the
// frame must count its missing tail bits as raw errors — those bits
// were sent and never arrived, and the reliability experiment's link
// BER would otherwise under-report truncating fault processes.
func TestLinkPhyCountsMissingTailAsErrors(t *testing.T) {
	m := newMachine(44)
	cfg := DefaultConfig()
	cfg.Interval = 21 * sim.Millisecond
	phy := &LinkPhy{
		M:   m,
		Cfg: cfg,
		Corrupt: func(b channel.Bits) channel.Bits {
			return b[:len(b)-5]
		},
	}
	bits := channel.RandomBits(m.Rand(15), 24)
	rx, err := phy.Transmit(bits, cfg.Interval, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rx) != len(bits)-5 {
		t.Fatalf("corrupt hook not applied: got %d bits", len(rx))
	}
	if phy.RawBits != len(bits) {
		t.Errorf("RawBits = %d, want the full frame %d", phy.RawBits, len(bits))
	}
	if phy.RawErrors < 5 {
		t.Errorf("RawErrors = %d, want ≥5: the truncated tail must count", phy.RawErrors)
	}
}
