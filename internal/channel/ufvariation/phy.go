package ufvariation

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
)

// LinkPhy adapts one live machine to link.Phy, so the link layer's
// Transport can run frame-by-frame ARQ over the UF-variation channel.
// Successive transmissions share the machine: virtual time, governor
// state, and any attached fault processes carry across frames, exactly
// as a long-running exfiltration would experience them.
//
// The adapter stays independent of the fault injector: the Corrupt and
// AckLoss hooks are plain functions, which experiments wire to
// faults.Injector methods (or anything else).
type LinkPhy struct {
	// M is the platform; Cfg the channel deployment. Cfg.Interval and
	// Cfg.OnlineCalibration are overridden per transmission by the
	// transport's rate and pilot decisions.
	M   *system.Machine
	Cfg Config
	// Corrupt optionally applies a channel-boundary fault process to
	// the received bits (e.g. faults.Injector.CorruptBits).
	Corrupt func(channel.Bits) channel.Bits
	// AckLoss optionally models reverse-channel loss (e.g.
	// faults.Injector.AckLost).
	AckLoss func() bool
	// AckBits is the reverse channel's cost in bit intervals per
	// verdict (the acknowledgement is itself a tiny covert
	// transmission); zero means 4.
	AckBits int
	// Track enables the self-synchronizing receiver on every
	// transmission: frame acquisition on pilots, symbol-clock tracking
	// on every frame, loss-of-lock detection. The acquired phase and
	// clock-error estimates persist across transmissions (a locked link
	// needs no preamble per frame) until Reacquire drops them.
	Track bool
	// SyncFaults optionally perturbs each transmission's receiver-side
	// synchronization — start offset, clock model, preemptions — wired
	// to the fault injector's sync draws by experiments. It receives
	// the transmission's total bit count (frame plus any preamble) so
	// blackouts can land inside the air time.
	SyncFaults func(cfg *Config, totalBits int)

	// RawErrors and RawBits accumulate the raw-channel error count
	// under the transport, before ECC — the residual-vs-raw comparison
	// the reliability experiment reports. A receive shorter than the
	// frame counts its missing tail as errors: those bits were sent and
	// never arrived.
	RawErrors, RawBits int
	// Desyncs counts receptions that ended out of symbol lock.
	Desyncs int

	interval  sim.Time
	havePhase bool
	phaseEst  sim.Time
	ppmEst    float64
	desynced  bool
	scratch   RxScratch
}

// Transmit implements link.Phy: one UF-variation transmission of the
// frame bits at the given interval, with the calibration preamble
// prepended when the transport requests a pilot.
func (p *LinkPhy) Transmit(bits channel.Bits, interval sim.Time, pilot bool) (channel.Bits, error) {
	if p.M == nil {
		return nil, fmt.Errorf("ufvariation: LinkPhy has no machine")
	}
	cfg := p.Cfg
	cfg.Interval = interval
	cfg.OnlineCalibration = pilot
	if p.Track {
		cfg.Track = true
		if p.havePhase {
			cfg.TrackerPhase = p.phaseEst
			cfg.TrackerPPM = p.ppmEst
		}
	}
	if p.SyncFaults != nil {
		total := len(bits)
		if pilot {
			total += CalibrationLen(interval)
		}
		p.SyncFaults(&cfg, total)
	}
	// The adapter only reads Received and Sync, so the per-bit window
	// diagnostics are dead weight; frame state lives in the reusable
	// scratch so a session's allocation cost does not scale with its
	// frame count.
	cfg.NoDiagnostics = true
	res, err := RunWith(p.M, cfg, bits, &p.scratch)
	if err != nil {
		return nil, err
	}
	p.interval = interval
	if rep := res.Sync; rep != nil {
		if rep.Locked {
			p.desynced = false
			if p.havePhase {
				// Smooth the clock-error estimate across frames; one
				// reception's estimate carries detector noise.
				p.ppmEst = 0.7*p.ppmEst + 0.3*rep.PPMEst
			} else {
				p.ppmEst = rep.PPMEst
			}
			p.phaseEst = rep.Origin
			p.havePhase = true
		} else {
			p.desynced = true
			p.Desyncs++
		}
	}
	rx := res.Received
	if p.Corrupt != nil {
		rx = p.Corrupt(rx)
	}
	for i := range bits {
		p.RawBits++
		if i >= len(rx) || rx[i] != bits[i] {
			p.RawErrors++
		}
	}
	return rx, nil
}

// SyncState implements link.SyncPhy: whether the self-synchronizing
// receiver is enabled, and whether the last reception ended in symbol
// lock. Before any transmission the link counts as locked — there is no
// evidence of desynchronization yet.
func (p *LinkPhy) SyncState() (tracking, locked bool) {
	return p.Track, !p.desynced
}

// Reacquire implements link.SyncPhy: it drops the phase and clock-error
// estimates carried across transmissions, so the next pilot reception
// runs a full frame acquisition instead of trusting stale state.
func (p *LinkPhy) Reacquire() {
	p.havePhase = false
	p.phaseEst = 0
	p.ppmEst = 0
}

// Feedback implements link.Phy. The verdict rides the reverse channel
// for AckBits bit intervals of air time; a faulted reverse channel can
// lose a positive acknowledgement, which the sender observes as a
// timeout (false).
func (p *LinkPhy) Feedback(ack bool) bool {
	n := p.AckBits
	if n <= 0 {
		n = 4
	}
	if p.interval > 0 {
		p.M.Run(sim.Time(n) * p.interval)
	}
	if !ack {
		return false
	}
	if p.AckLoss != nil && p.AckLoss() {
		return false
	}
	return true
}

// Idle implements link.Idler: backoff lets the platform (and any
// interference burst) settle in real machine time.
func (p *LinkPhy) Idle(d sim.Time) { p.M.Run(d) }
