package ufvariation

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
	"repro/internal/system"
)

// LinkPhy adapts one live machine to link.Phy, so the link layer's
// Transport can run frame-by-frame ARQ over the UF-variation channel.
// Successive transmissions share the machine: virtual time, governor
// state, and any attached fault processes carry across frames, exactly
// as a long-running exfiltration would experience them.
//
// The adapter stays independent of the fault injector: the Corrupt and
// AckLoss hooks are plain functions, which experiments wire to
// faults.Injector methods (or anything else).
type LinkPhy struct {
	// M is the platform; Cfg the channel deployment. Cfg.Interval and
	// Cfg.OnlineCalibration are overridden per transmission by the
	// transport's rate and pilot decisions.
	M   *system.Machine
	Cfg Config
	// Corrupt optionally applies a channel-boundary fault process to
	// the received bits (e.g. faults.Injector.CorruptBits).
	Corrupt func(channel.Bits) channel.Bits
	// AckLoss optionally models reverse-channel loss (e.g.
	// faults.Injector.AckLost).
	AckLoss func() bool
	// AckBits is the reverse channel's cost in bit intervals per
	// verdict (the acknowledgement is itself a tiny covert
	// transmission); zero means 4.
	AckBits int

	// RawErrors and RawBits accumulate the raw-channel error count
	// under the transport, before ECC — the residual-vs-raw comparison
	// the reliability experiment reports.
	RawErrors, RawBits int

	interval sim.Time
}

// Transmit implements link.Phy: one UF-variation transmission of the
// frame bits at the given interval, with the calibration preamble
// prepended when the transport requests a pilot.
func (p *LinkPhy) Transmit(bits channel.Bits, interval sim.Time, pilot bool) (channel.Bits, error) {
	if p.M == nil {
		return nil, fmt.Errorf("ufvariation: LinkPhy has no machine")
	}
	cfg := p.Cfg
	cfg.Interval = interval
	cfg.OnlineCalibration = pilot
	res, err := Run(p.M, cfg, bits)
	if err != nil {
		return nil, err
	}
	p.interval = interval
	rx := res.Received
	if p.Corrupt != nil {
		rx = p.Corrupt(rx)
	}
	for i := range bits {
		p.RawBits++
		if i < len(rx) && rx[i] != bits[i] {
			p.RawErrors++
		}
	}
	return rx, nil
}

// Feedback implements link.Phy. The verdict rides the reverse channel
// for AckBits bit intervals of air time; a faulted reverse channel can
// lose a positive acknowledgement, which the sender observes as a
// timeout (false).
func (p *LinkPhy) Feedback(ack bool) bool {
	n := p.AckBits
	if n <= 0 {
		n = 4
	}
	if p.interval > 0 {
		p.M.Run(sim.Time(n) * p.interval)
	}
	if !ack {
		return false
	}
	if p.AckLoss != nil && p.AckLoss() {
		return false
	}
	return true
}

// Idle implements link.Idler: backoff lets the platform (and any
// interference burst) settle in real machine time.
func (p *LinkPhy) Idle(d sim.Time) { p.M.Run(d) }
