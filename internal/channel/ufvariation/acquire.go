package ufvariation

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// This file implements frame acquisition: hunting the calibration
// preamble in a raw latency stream so the receiver no longer needs a
// shared start instant. The paper's §4.3.2 capacity analysis assumes
// sender and receiver agree on the first interval boundary through a
// shared timestamp counter; real frequency channels (TurboCC, the ring
// channel of Lord of the Ring(s)) instead self-clock off the observed
// signal. The correlator below does the same: the saturate/decay
// preamble of CalibrationBits has a distinctive latency trajectory —
// a plateau at the fast operating point, a nine-step climb, a plateau
// at the idle point — and its normalized cross-correlation against the
// stream peaks at the preamble's true start, wherever in the hunt
// window the sender actually began.

// Sample is one timestamped latency measurement of the receiver's probe
// loop. At is the receiver's local clock (which may run fast, slow, or
// wander relative to the sender's).
type Sample struct {
	At  sim.Time
	Lat float64
}

// Acquisition is a successful preamble lock.
type Acquisition struct {
	// Start is the estimated preamble start on the receiver's clock.
	Start sim.Time
	// Score is the normalized correlation at the lock, in (0, 1].
	Score float64
	// TMax and TMin are the plateau latency references read off the
	// locked preamble — the Tfreq_max / Tfreq_min of Algorithm 1.
	TMax, TMin float64
}

// stream is a latency sample stream prepared for O(log n) window means:
// samples sorted by timestamp with non-finite latencies dropped, plus
// prefix sums. It supports two lifecycles:
//
//   - batch: newStream builds it from a complete sample slice (the
//     public Acquire entry point and the fuzzer);
//   - streaming: push appends samples as they are measured and retire
//     drops samples older than any window a consumer will still read,
//     keeping the live region — and therefore the receiver's memory —
//     bounded by the demodulator's look-behind instead of the message
//     length.
//
// The prefix sums are absolute: sum[i+1] extends sum[i] by exactly one
// left-to-right addition, whether the sample arrived in a batch or one
// push at a time, and retirement only moves the head index (compaction
// copies the absolute values down unchanged). A window mean is always
// (sum[hi]−sum[lo])/(hi−lo) over the very same floats the batch build
// would have produced, so streaming decode is bit-identical to batch.
type stream struct {
	at   []sim.Time
	lat  []float64 // raw latencies; kept so inserts can re-extend sums
	sum  []float64 // sum[i+1] = sum[i] + lat[i]; len(at)+1 entries
	head int       // index of the first live sample; [0,head) retired
}

// newStream builds a stream from samples. Out-of-order input (which a
// fuzzer produces and a monotone receiver clock never does) is sorted;
// NaN and Inf latencies are dropped.
func newStream(samples []Sample) *stream {
	s := &stream{}
	for _, sm := range samples {
		if math.IsNaN(sm.Lat) || math.IsInf(sm.Lat, 0) {
			continue
		}
		s.at = append(s.at, sm.At)
		s.lat = append(s.lat, sm.Lat)
	}
	sorted := sort.SliceIsSorted(s.at, func(i, j int) bool { return s.at[i] < s.at[j] })
	if !sorted {
		s.at, s.lat = s.at[:0], s.lat[:0]
		kept := make([]Sample, 0, len(samples))
		for _, sm := range samples {
			if math.IsNaN(sm.Lat) || math.IsInf(sm.Lat, 0) {
				continue
			}
			kept = append(kept, sm)
		}
		sort.Slice(kept, func(i, j int) bool { return kept[i].At < kept[j].At })
		for _, sm := range kept {
			s.at = append(s.at, sm.At)
			s.lat = append(s.lat, sm.Lat)
		}
	}
	s.sum = make([]float64, len(s.at)+1)
	for i, lat := range s.lat {
		s.sum[i+1] = s.sum[i] + lat
	}
	return s
}

// reset returns a (possibly reused) stream to empty, keeping capacity.
func (s *stream) reset() {
	s.at = s.at[:0]
	s.lat = s.lat[:0]
	if cap(s.sum) == 0 {
		s.sum = append(s.sum, 0)
	} else {
		s.sum = s.sum[:1]
		s.sum[0] = 0
	}
	s.head = 0
}

// push appends one sample. The common case — timestamps arriving in
// order — extends the prefix sums in O(1). A bounded inversion (the
// receiver's local clock can reorder samples across a quantum boundary
// by at most one quantum) is inserted in place, after any equal
// timestamps, and the sums are re-extended from the insertion point so
// the result matches a batch build of the same sorted sequence.
func (s *stream) push(at sim.Time, lat float64) {
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		return
	}
	if len(s.sum) == 0 {
		s.sum = append(s.sum, 0)
	}
	n := len(s.at)
	if n == 0 || at >= s.at[n-1] {
		s.at = append(s.at, at)
		s.lat = append(s.lat, lat)
		s.sum = append(s.sum, s.sum[n]+lat)
		return
	}
	pos := sort.Search(n, func(i int) bool { return s.at[i] > at })
	if pos < s.head {
		// A sample older than the retired horizon cannot influence any
		// window a consumer will still read; clamping it to the head
		// keeps the live region sorted without resurrecting history.
		pos = s.head
	}
	s.at = append(s.at, 0)
	copy(s.at[pos+1:], s.at[pos:])
	s.at[pos] = at
	s.lat = append(s.lat, 0)
	copy(s.lat[pos+1:], s.lat[pos:])
	s.lat[pos] = lat
	s.sum = append(s.sum, 0)
	for i := pos; i < len(s.at); i++ {
		s.sum[i+1] = s.sum[i] + s.lat[i]
	}
}

// retire drops all samples with timestamps before the horizon from the
// live region. Once the dead prefix outgrows the live tail the arrays
// are compacted in place (absolute sums preserved), so a streaming
// receiver's footprint stays proportional to its look-behind window.
func (s *stream) retire(before sim.Time) {
	for s.head < len(s.at) && s.at[s.head] < before {
		s.head++
	}
	if s.head > 64 && s.head > len(s.at)/2 {
		n := copy(s.at, s.at[s.head:])
		copy(s.lat, s.lat[s.head:])
		copy(s.sum, s.sum[s.head:])
		s.at = s.at[:n]
		s.lat = s.lat[:n]
		s.sum = s.sum[:n+1]
		s.head = 0
	}
}

// live returns the number of unretired samples.
func (s *stream) live() int { return len(s.at) - s.head }

// lastAt returns the newest timestamp in the stream.
func (s *stream) lastAt() (sim.Time, bool) {
	if s.head >= len(s.at) {
		return 0, false
	}
	return s.at[len(s.at)-1], true
}

// span returns the time range covered by the live region.
func (s *stream) span() (first, last sim.Time, ok bool) {
	if s.head >= len(s.at) {
		return 0, 0, false
	}
	return s.at[s.head], s.at[len(s.at)-1], true
}

// mean returns the average latency over [a, b) and the sample count.
func (s *stream) mean(a, b sim.Time) (float64, int) {
	if b <= a || s.head >= len(s.at) {
		return 0, 0
	}
	liveAt := s.at[s.head:]
	lo := s.head + sort.Search(len(liveAt), func(i int) bool { return liveAt[i] >= a })
	hi := s.head + sort.Search(len(liveAt), func(i int) bool { return liveAt[i] >= b })
	if hi == lo {
		return 0, 0
	}
	return (s.sum[hi] - s.sum[lo]) / float64(hi-lo), hi - lo
}

// acqScratch holds the correlator's working buffers — the preamble
// template and the per-candidate observation vectors — so a long-lived
// receiver reuses them across acquisitions instead of reallocating.
type acqScratch struct {
	tmpl   []float64
	weight []bool
	obs, g []float64
}

// acquireMinScore is the normalized-correlation floor below which the
// correlator refuses to lock: pure noise correlates near zero, a real
// preamble well above 0.8 even under heavy fault injection.
const acquireMinScore = 0.6

// acquireMinContrast is the minimum plateau separation (core cycles)
// for a lock; the real tMin−tMax gap is tens of cycles, and a stream
// with no frequency swing at all must not lock on its noise floor.
const acquireMinContrast = 2.0

// Acquire hunts the calibration preamble (hold "1" bits then hold "0"
// bits of interval each) in a latency sample stream. The candidate
// start is scanned from the stream's first sample over searchTo of
// receiver-clock time at interval/8 resolution; the best normalized
// correlation above the lock thresholds wins. It returns ok=false when
// no candidate clears them — the caller must treat that as "no sender
// heard", not as a zero-offset lock.
//
// Acquire never panics on hostile input (arbitrary timestamps,
// non-finite latencies, absurd parameters) and a reported lock always
// lies within the sampled span with the whole preamble inside it.
func Acquire(samples []Sample, interval sim.Time, hold int, searchTo sim.Time) (Acquisition, bool) {
	// Parameter guards: implausible geometry cannot lock. The bounds
	// also keep every product below finite sim.Time arithmetic.
	if interval <= 0 || interval > sim.Time(1)<<42 || hold < 2 || hold > 1<<16 || searchTo < 0 {
		return Acquisition{}, false
	}
	str := newStream(samples)
	return acquireStream(str, interval, hold, searchTo, &acqScratch{})
}

func acquireStream(str *stream, interval sim.Time, hold int, searchTo sim.Time, scr *acqScratch) (Acquisition, bool) {
	first, last, ok := str.span()
	if !ok {
		return Acquisition{}, false
	}
	preamble := sim.Time(2*hold) * interval
	if preamble <= 0 || last-first < preamble {
		return Acquisition{}, false
	}
	maxStart := last - preamble
	limit := first + searchTo
	if limit > maxStart {
		limit = maxStart
	}

	// Template over the preamble, in sub-windows of interval/8: −1 on
	// the fast plateau (after the downward swing), a linear climb over
	// the nine-step upward swing, +1 on the idle plateau. The initial
	// downward swing is excluded (weight 0): its starting level depends
	// on the platform state before the preamble, which the receiver
	// cannot know. The governor evaluates at 10 ms epoch boundaries and
	// its tail window discounts a change that lands mid-epoch, so the
	// latency response lags the sender's clock by about an epoch and a
	// half (§3.3); the template carries that lag so the correlation peak
	// sits at the sender's start, not the response's.
	sub := interval / 8
	if sub <= 0 {
		return Acquisition{}, false
	}
	swing := 9 * 10 * sim.Millisecond // nine 100 MHz steps, one per 10 ms epoch
	lag := 15 * sim.Millisecond       // epoch-boundary reaction latency
	halfDur := sim.Time(hold) * interval
	nSub := int(preamble / sub)
	tmpl := scr.tmpl
	if cap(tmpl) < nSub {
		tmpl = make([]float64, nSub)
	} else {
		tmpl = tmpl[:nSub]
		clear(tmpl)
	}
	weight := scr.weight
	if cap(weight) < nSub {
		weight = make([]bool, nSub)
	} else {
		weight = weight[:nSub]
		clear(weight)
	}
	scr.tmpl, scr.weight = tmpl, weight
	for i := range tmpl {
		mid := sim.Time(i)*sub + sub/2
		switch {
		case mid < swing+lag && mid < halfDur:
			// Downward swing from an unknown level: excluded.
		case mid < halfDur+lag:
			tmpl[i], weight[i] = -1, true
		case mid < halfDur+lag+swing:
			tmpl[i] = -1 + 2*float64(mid-halfDur-lag)/float64(swing)
			weight[i] = true
		default:
			tmpl[i], weight[i] = 1, true
		}
	}

	best := Acquisition{Score: -2}
	for s := first; s <= limit; s += sub {
		score, okc := correlate(str, s, sub, tmpl, weight, scr)
		if okc && score > best.Score {
			best.Score = score
			best.Start = s
		}
	}
	if best.Score < acquireMinScore {
		return Acquisition{}, false
	}
	// Read the plateau references off the lock: the last quarter
	// interval of each hold, clear of the swings.
	ref := interval / 4
	tMax, n1 := str.mean(best.Start+halfDur-ref, best.Start+halfDur)
	tMin, n0 := str.mean(best.Start+preamble-ref, best.Start+preamble)
	if n1 == 0 || n0 == 0 || tMin-tMax < acquireMinContrast {
		return Acquisition{}, false
	}
	best.TMax, best.TMin = tMax, tMin
	return best, true
}

// refinePhase polishes a coarse acquisition by decision feedback: it
// trial-decodes the first payload bits at candidate offsets around the
// coarse estimate and keeps the offset with the most decisive summed
// decoder margin. The correlator resolves interval/8 against an
// idealised governor response, so its lock can sit a few milliseconds
// off the sender's true bit boundary — a residual the symbol tracker's
// narrow pull-in range cannot absorb on its own.
func refinePhase(str *stream, p0 float64, skipBits, n int, dec decoder, o trackerOpts) float64 {
	iv := float64(o.interval) * (1 + o.ppmInit*1e-6)
	probe := n
	if probe > refineProbeBits {
		probe = refineProbeBits
	}
	if probe <= 0 {
		return p0
	}
	score := func(cand float64) float64 {
		var sum float64
		for b := 0; b < probe; b++ {
			a := cand + float64(skipBits+b)*iv
			t1, n1 := str.mean(sim.Time(a), sim.Time(a)+o.window)
			t2, n2 := str.mean(sim.Time(a+iv)-o.window, sim.Time(a+iv))
			if n1 == 0 || n2 == 0 {
				continue
			}
			sum += dec.margin(t1, t2)
		}
		return sum
	}
	best, bestScore := p0, score(p0)
	step := iv / 16
	for k := -4; k <= 4; k++ {
		if k == 0 {
			continue
		}
		cand := p0 + float64(k)*step
		if s := score(cand); s > bestScore {
			bestScore, best = s, cand
		}
	}
	return best
}

// refineProbeBits bounds the decision-feedback probe of refinePhase (and
// therefore how much stream a streaming demodulator must retain past the
// preamble before refinement can run).
const refineProbeBits = 24

// correlate computes the normalized cross-correlation of the stream
// against the template laid down at start, sub per template entry. It
// reports ok=false when too few template positions have samples for the
// statistic to mean anything.
func correlate(str *stream, start sim.Time, sub sim.Time, tmpl []float64, weight []bool, scr *acqScratch) (float64, bool) {
	obs, g := scr.obs[:0], scr.g[:0]
	for i, w := range weight {
		if !w {
			continue
		}
		a := start + sim.Time(i)*sub
		m, n := str.mean(a, a+sub)
		if n == 0 {
			continue
		}
		obs = append(obs, m)
		g = append(g, tmpl[i])
	}
	scr.obs, scr.g = obs, g
	// Require most of the weighted template to be observed: a lock
	// extrapolated from a sliver of samples is no lock.
	needed := 0
	for _, w := range weight {
		if w {
			needed++
		}
	}
	if len(obs) < needed*3/4 || len(obs) < 4 {
		return 0, false
	}
	var mo, mg float64
	for i := range obs {
		mo += obs[i]
		mg += g[i]
	}
	mo /= float64(len(obs))
	mg /= float64(len(g))
	var num, do, dg float64
	for i := range obs {
		num += (obs[i] - mo) * (g[i] - mg)
		do += (obs[i] - mo) * (obs[i] - mo)
		dg += (g[i] - mg) * (g[i] - mg)
	}
	if do <= 0 || dg <= 0 {
		return 0, false
	}
	// The template rises where latency rises, so the correlation of a
	// true lock is positive.
	return num / math.Sqrt(do*dg), true
}
