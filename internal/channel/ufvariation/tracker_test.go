package ufvariation

import (
	"testing"

	"repro/internal/sim"
)

// synthBitStream builds the latency stream of a payload as the governor
// renders it: the level slews toward the bit's target ("1" = fast
// plateau 40 cycles, "0" = idle plateau 80 cycles) at the nine-step
// swing rate — 40 cycles per 90 ms — never jumping. Timestamps are on a
// receiver clock running ppm fast relative to the sender.
func synthBitStream(bits []int, interval sim.Time, ppm float64, noise float64, seed uint64) []Sample {
	rate := 1 + ppm*1e-6
	rng := sim.NewRand(seed)
	var out []Sample
	step := 250 * sim.Microsecond
	slew := 40.0 / float64(90*sim.Millisecond) * float64(step)
	total := sim.Time(len(bits))*interval + interval
	lvl := 80.0
	for t := sim.Time(0); t < total; t += step {
		idx := int(t / interval)
		target := 80.0
		if idx < len(bits) && bits[idx] == 1 {
			target = 40
		}
		switch {
		case lvl < target-slew:
			lvl += slew
		case lvl > target+slew:
			lvl -= slew
		default:
			lvl = target
		}
		out = append(out, Sample{
			At:  sim.Time(float64(t) * rate),
			Lat: lvl + rng.Norm(0, noise),
		})
	}
	return out
}

func randBits(n int, seed uint64) []int {
	rng := sim.NewRand(seed)
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.IntN(2)
	}
	return bits
}

func bitErrors(got, want []int) int {
	errs := 0
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			errs++
		}
	}
	return errs
}

// TestDecodeTrackedCancelsSkew: at 2000 ppm the windows of an untracked
// receiver walk a full 5 ms window off the sender within 120 bits; the
// DLL must cancel the rate error and decode essentially clean, and its
// clock-error estimate must converge near the truth.
func TestDecodeTrackedCancelsSkew(t *testing.T) {
	interval := 21 * sim.Millisecond
	o := trackerOpts{interval: interval, window: 5 * sim.Millisecond}
	dec := decoderFromRefs(40, 80)
	for _, c := range []struct {
		ppm          float64
		loPPM, hiPPM float64
	}{
		{0, -1200, 1200},
		{2000, 800, 3200},
		{-2000, -3200, -800},
	} {
		bits := randBits(150, 91)
		str := newStream(synthBitStream(bits, interval, c.ppm, 0.5, 92))
		got, _, _, rep := decodeTracked(str, 0, len(bits), dec, o)
		if errs := bitErrors(got, bits); errs > 3 {
			t.Errorf("ppm %v: %d/%d bit errors, want ≤3", c.ppm, errs, len(bits))
		}
		if !rep.Locked || rep.LockLost {
			t.Errorf("ppm %v: lost lock: %+v", c.ppm, rep)
		}
		if rep.PPMEst < c.loPPM || rep.PPMEst > c.hiPPM {
			t.Errorf("ppm %v: estimate %.0f outside [%v, %v]", c.ppm, rep.PPMEst, c.loPPM, c.hiPPM)
		}
		if rep.MeanMargin < 1 {
			t.Errorf("ppm %v: mean margin %.2f, want decisive decodes", c.ppm, rep.MeanMargin)
		}
	}
}

// TestDecodeTrackedLossOfLockOnTruncation: when the stream ends early
// the trailing bits have no samples, the margin collapses, and the
// contiguous-indecision rule must declare loss of lock near where the
// samples stop — not emit confident garbage to the end.
func TestDecodeTrackedLossOfLockOnTruncation(t *testing.T) {
	interval := 21 * sim.Millisecond
	o := trackerOpts{interval: interval, window: 5 * sim.Millisecond}
	dec := decoderFromRefs(40, 80)
	bits := randBits(60, 93)
	str := newStream(synthBitStream(bits[:30], interval, 0, 0.5, 94))
	_, _, _, rep := decodeTracked(str, 0, len(bits), dec, o)
	if !rep.LockLost || rep.Locked {
		t.Fatalf("no loss of lock on a half-truncated stream: %+v", rep)
	}
	if rep.LockLostBit < 28 || rep.LockLostBit > 38 {
		t.Errorf("lock lost at bit %d, want near the truncation at 30", rep.LockLostBit)
	}
}

// TestDecodeTrackedDispersedIndecision: indecision spread across a
// window (every other bit unmeasurable) never forms a long contiguous
// run, but the dispersed-indecision rule must still declare loss of
// lock.
func TestDecodeTrackedDispersedIndecision(t *testing.T) {
	interval := 21 * sim.Millisecond
	o := trackerOpts{interval: interval, window: 5 * sim.Millisecond}
	dec := decoderFromRefs(40, 80)
	bits := randBits(60, 95)
	all := synthBitStream(bits, interval, 0, 0.5, 96)
	var kept []Sample
	for _, s := range all {
		idx := int(s.At / interval)
		if idx >= 20 && idx%2 == 1 {
			continue // odd bits past 20 lose all their samples
		}
		kept = append(kept, s)
	}
	_, _, _, rep := decodeTracked(newStream(kept), 0, len(bits), dec, o)
	if !rep.LockLost {
		t.Fatalf("dispersed indecision undetected: %+v", rep)
	}
	if rep.LockLostBit < 15 || rep.LockLostBit > 32 {
		t.Errorf("lock lost at bit %d, want near the onset at 20", rep.LockLostBit)
	}
}

// TestMarginProperties pins the decoder confidence margin's contract:
// decisive pairs score high, empty windows and mid-band flats score
// zero, and the value is clamped to [0, 3].
func TestMarginProperties(t *testing.T) {
	dec := decoderFromRefs(40, 80)
	cases := []struct {
		name   string
		t1, t2 float64
		lo, hi float64
	}{
		{"fast plateau", 40, 40, 0.99, 3},
		{"idle plateau", 80, 80, 0.99, 3},
		{"full transition", 40, 80, 3, 3},
		{"no samples t1", 0, 50, 0, 0},
		{"no samples t2", 50, 0, 0, 0},
		{"mid-band flat", 60, 60, 0, 0.2},
	}
	for _, c := range cases {
		m := dec.margin(c.t1, c.t2)
		if m < c.lo || m > c.hi {
			t.Errorf("%s: margin(%v, %v) = %.2f, want in [%v, %v]", c.name, c.t1, c.t2, m, c.lo, c.hi)
		}
		if m < 0 || m > 3 {
			t.Errorf("%s: margin %.2f escapes the [0, 3] clamp", c.name, m)
		}
	}
	if m := (decoder{}).margin(40, 80); m != 0 {
		t.Errorf("zero-valued decoder margin = %v, want 0", m)
	}
}
