package ufvariation

import (
	"testing"

	"repro/internal/sim"
)

// testDecoder mirrors the 1-hop cross-core references: Tmax ≈ 62.3 at
// 2.4 GHz, Tmin ≈ 89.2 blended over the 1.4/1.5 dither.
func testDecoder() decoder {
	return decoder{tMax: 62.3, tMin: 89.2, tolMax: 1.0, tolMin: 3.2, delta: 1.1}
}

func TestDecodeAlgorithm1Rules(t *testing.T) {
	d := testDecoder()
	cases := []struct {
		name   string
		t1, t2 float64
		want   int
	}{
		{"rising latency falls: 1", 80, 72, 1},
		{"falling latency rises: 0", 70, 78, 0},
		{"saturated at max: 1", 62.3, 62.5, 1},
		{"saturated at max with noise: 1", 63.0, 62.0, 1},
		{"saturated at min: 0", 89.0, 89.4, 0},
		{"dither wobble at min still 0", 90.5, 88.0, 0},
		{"late single step out of idle: 1", 89.2, 84.0, 1},
		{"down-step near the top: 0", 62.3, 66.1, 0},
		{"mid-band clear fall: 1", 75, 70, 1},
		{"mid-band clear rise: 0", 70, 75, 0},
	}
	for _, c := range cases {
		if got := d.decide(c.t1, c.t2); got != c.want {
			t.Errorf("%s: decide(%v, %v) = %d, want %d", c.name, c.t1, c.t2, got, c.want)
		}
	}
}

func TestDecodeAmbiguousFallsBackToNearestBand(t *testing.T) {
	d := testDecoder()
	// Flat mid-band, insignificant difference: decode by which
	// reference the interval sits closer to.
	if got := d.decide(70, 70.5); got != 1 {
		t.Errorf("flat near the fast end decoded %d, want 1", got)
	}
	if got := d.decide(84, 84.5); got != 0 {
		t.Errorf("flat near the slow end decoded %d, want 0", got)
	}
}

func TestDecodeEmptyWindows(t *testing.T) {
	d := testDecoder()
	if d.decide(0, 70) != 0 || d.decide(70, 0) != 0 {
		t.Error("empty windows must decode to a constant, not panic")
	}
}

func TestNewDecoderReferences(t *testing.T) {
	m := newMachine(41)
	cfg := DefaultConfig()
	d := newDecoder(m, cfg, 1) // probe slice 1
	if d.tMax >= d.tMin {
		t.Fatalf("tMax %v not below tMin %v", d.tMax, d.tMin)
	}
	if d.tolMax <= 0 || d.tolMin <= 0 || d.delta <= 0 {
		t.Error("non-positive tolerances")
	}
	// Cross-processor receivers observe one step less at the top; with
	// the same placement, overriding the top frequency to one step
	// below must raise the reference identically.
	follower := cfg
	follower.MaxFreqOverride = 23
	dcp := newDecoder(m, follower, 1)
	if dcp.tMax <= d.tMax {
		t.Errorf("one-step-lower tMax %v not above full-range %v (the follower's view)", dcp.tMax, d.tMax)
	}
	// Restricted-range override lifts the latency floor.
	cfg.MaxFreqOverride = 17
	dr := newDecoder(m, cfg, 1)
	if dr.tMax <= d.tMax {
		t.Error("restricted-range reference not slower than default")
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Interval != 38*sim.Millisecond || cfg.Window != 5*sim.Millisecond {
		t.Errorf("defaults %v/%v", cfg.Interval, cfg.Window)
	}
	cp := cfg.CrossProcessor()
	if cp.Receiver.Socket != 1 {
		t.Error("CrossProcessor did not move the receiver")
	}
	if cfg.Receiver.Socket != 0 {
		t.Error("CrossProcessor mutated the original config")
	}
}
