// Package channel provides the covert-channel framework shared by
// UF-variation (the paper's contribution, package ufvariation) and the ten
// baseline channels of Table 3 (package baselines): bit payloads,
// synchronous send/receive evaluation, and the capacity metric of §4.3.2.
package channel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Bits is a binary payload, one int (0 or 1) per transmitted bit.
type Bits []int

// RandomBits returns n random payload bits.
func RandomBits(rng *sim.Rand, n int) Bits {
	b := make(Bits, n)
	for i := range b {
		if rng.Bool(0.5) {
			b[i] = 1
		}
	}
	return b
}

// FromBytes expands data into MSB-first bits.
func FromBytes(data []byte) Bits {
	b := make(Bits, 0, len(data)*8)
	for _, by := range data {
		for i := 7; i >= 0; i-- {
			b = append(b, int(by>>i&1))
		}
	}
	return b
}

// ToBytes packs MSB-first bits into bytes; the bit count must be a
// multiple of eight.
func (b Bits) ToBytes() ([]byte, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("channel: %d bits is not a whole number of bytes", len(b))
	}
	out := make([]byte, len(b)/8)
	for i, bit := range b {
		if bit != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out, nil
}

// String renders the bits as a compact 0/1 string.
func (b Bits) String() string {
	s := make([]byte, len(b))
	for i, bit := range b {
		s[i] = '0' + byte(bit)
	}
	return string(s)
}

// Result is the outcome of one transmission.
type Result struct {
	// Sent and Received are the payload and the decoded bits.
	Sent, Received Bits
	// Interval is the per-bit transmission interval.
	Interval sim.Time
	// BER is the bit error rate.
	BER float64
	// RawRate is the raw transmission rate in bit/s.
	RawRate float64
	// Capacity is RawRate × (1 − H(BER)), §4.3.2's metric.
	Capacity float64
}

// Evaluate fills the derived fields of a result from its bits and
// interval. The bit strings need not be the same length: following the
// stats.ErrorRate contract, a truncated receive counts its missing tail
// as errors and an over-long receive counts its excess bits as errors,
// normalised by the longer string — so a channel that loses framing
// cannot report a flattering BER over the prefix it happened to deliver.
func Evaluate(sent, received Bits, interval sim.Time) Result {
	ber := stats.ErrorRate(sent, received)
	rate := 1 / interval.Seconds()
	return Result{
		Sent:     sent,
		Received: received,
		Interval: interval,
		BER:      ber,
		RawRate:  rate,
		Capacity: stats.Capacity(rate, ber),
	}
}

// Functional reports whether a transmission still carries information —
// the Table 3 criterion ("whether the receiver can still distinguish
// between '1' and '0'"). A broken channel decodes at chance (BER ≈ 0.5);
// a third is several standard errors below chance for the payload sizes
// used, while heavily degraded-but-alive channels (Table 2's high-N
// stress cells) sit near a quarter.
func (r Result) Functional() bool { return r.BER < 1.0/3 }
