package baselines

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/sim"
	"repro/internal/system"
)

func newMachine(seed uint64, kind int) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

// transmit runs ch on a fresh baseline machine.
func transmit(t *testing.T, ch Channel, env defense.Env, seed uint64, n int) channel.Result {
	t.Helper()
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	cfg.Interconnect = ch.Interconnect()
	m := system.New(cfg)
	env.Apply(m)
	bits := channel.RandomBits(m.Rand(99), n)
	res, err := ch.Run(m, env, bits)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllChannelsFunctionalAtBaseline(t *testing.T) {
	for _, ch := range All() {
		ch := ch
		t.Run(ch.Name(), func(t *testing.T) {
			res := transmit(t, ch, defense.Baseline(), 11, 24)
			if !res.Functional() {
				t.Errorf("%s not functional at baseline (BER %.2f)", ch.Name(), res.BER)
			}
		})
	}
}

func TestAllList(t *testing.T) {
	chs := All()
	if len(chs) != 10 {
		t.Fatalf("All() returns %d channels, want the 10 Table 3 baselines", len(chs))
	}
	seen := map[string]bool{}
	for _, c := range chs {
		if seen[c.Name()] {
			t.Errorf("duplicate channel %q", c.Name())
		}
		seen[c.Name()] = true
	}
	if !seen["Ring-contention"] {
		t.Error("ring variant missing")
	}
}

func TestFlushReloadNeedsPrereqs(t *testing.T) {
	env := defense.Baseline()
	env.SharedMemory = false
	res := transmit(t, &FlushReload{}, env, 12, 64)
	if res.Functional() {
		t.Error("Flush+Reload functional without shared memory")
	}
	env = defense.Baseline()
	env.CLFlush = false
	res = transmit(t, &FlushReload{}, env, 13, 64)
	if res.Functional() {
		t.Error("Flush+Reload functional without clflush")
	}
}

func TestPrimeAbortNeedsTSX(t *testing.T) {
	env := defense.Baseline()
	env.TSX = false
	res := transmit(t, &PrimeAbort{}, env, 14, 64)
	if res.Functional() {
		t.Error("Prime+Abort functional without TSX")
	}
}

func TestPrimeProbeDiesUnderRandomization(t *testing.T) {
	env := defense.Baseline()
	env.RandomizedLLC = true
	res := transmit(t, &PrimeProbe{}, env, 15, 64)
	if res.Functional() {
		t.Errorf("Prime+Probe functional under randomized LLC (BER %.2f)", res.BER)
	}
}

func TestSPPSurvivesRandomization(t *testing.T) {
	env := defense.Baseline()
	env.RandomizedLLC = true
	res := transmit(t, &SPP{}, env, 16, 16)
	if !res.Functional() {
		t.Errorf("SPP broken under randomized LLC (BER %.2f); beating it is its purpose", res.BER)
	}
}

func TestContentionDiesUnderTDM(t *testing.T) {
	env := defense.Baseline()
	env.FinePartition = true
	res := transmit(t, &Contention{}, env, 17, 64)
	if res.Functional() {
		t.Errorf("mesh contention functional under TDM partitioning (BER %.2f)", res.BER)
	}
}

func TestIccDiesAcrossSockets(t *testing.T) {
	env := defense.Baseline()
	env.CoarsePartition = true
	res := transmit(t, &IccCoresCovert{}, env, 18, 64)
	if res.Functional() {
		t.Errorf("IccCoresCovert functional across sockets (BER %.2f)", res.BER)
	}
}

func TestUncoreIdleDiesUnderLoad(t *testing.T) {
	env := defense.Baseline()
	env.StressThreads = 4
	res := transmit(t, &UncoreIdle{}, env, 19, 32)
	if res.Functional() {
		t.Errorf("Uncore-idle functional under stress (BER %.2f); it needs an idle machine", res.BER)
	}
}

func TestUncoreIdleSurvivesCoarsePartition(t *testing.T) {
	env := defense.Baseline()
	env.CoarsePartition = true
	res := transmit(t, &UncoreIdle{}, env, 20, 16)
	if !res.Functional() {
		t.Errorf("Uncore-idle broken across sockets (BER %.2f)", res.BER)
	}
}

func TestAdaptiveThreshold(t *testing.T) {
	metrics := []float64{10, 2, 10, 2, 10, 2, 10, 2, 9, 3}
	bits := channel.Bits{1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	thr, oneHigh, ok := adaptiveThreshold(metrics, bits, 8)
	if !ok || !oneHigh || thr != 6 {
		t.Fatalf("threshold = %v high=%v ok=%v", thr, oneHigh, ok)
	}
	decoded := decodeByThreshold(metrics[8:], thr, oneHigh)
	if decoded[0] != 1 || decoded[1] != 0 {
		t.Errorf("decoded %v", decoded)
	}
	// A constant preamble is unusable.
	if _, _, ok := adaptiveThreshold([]float64{1, 1}, channel.Bits{1, 1}, 2); ok {
		t.Error("one-sided preamble accepted")
	}
}

func TestBitHelpers(t *testing.T) {
	bits := channel.Bits{1, 0, 1}
	start := sim.Time(100 * sim.Millisecond)
	iv := 10 * sim.Millisecond
	if bitAt(bits, start, iv, start-1) != -1 {
		t.Error("bitAt before start")
	}
	if bitAt(bits, start, iv, start+15*sim.Millisecond) != 0 {
		t.Error("bitAt mid")
	}
	if bitAt(bits, start, iv, start+35*sim.Millisecond) != -1 {
		t.Error("bitAt past end")
	}
	idx, last := lastQuantum(start, iv, 200*sim.Microsecond, start+iv-200*sim.Microsecond)
	if idx != 0 || !last {
		t.Errorf("lastQuantum = %d,%v", idx, last)
	}
	_, last = lastQuantum(start, iv, 200*sim.Microsecond, start)
	if last {
		t.Error("first quantum reported last")
	}
}

func TestBrokenIsChanceLevel(t *testing.T) {
	rng := sim.NewRand(3)
	bits := channel.RandomBits(rng, 400)
	res := broken(bits, sim.Millisecond)
	if res.BER < 0.4 || res.BER > 0.6 {
		t.Errorf("broken channel BER %.2f, want ≈0.5", res.BER)
	}
	if res.Functional() {
		t.Error("broken channel reported functional")
	}
}
