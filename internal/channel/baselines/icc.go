package baselines

import (
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// IccCoresCovert exploits contention on the socket's shared voltage
// regulator (IChannels): when the total current demand exceeds the
// regulator's fast-response budget, the power-management unit briefly
// throttles all cores, which the receiver observes as its calibration
// loop running slow. No cache or interconnect structure is involved, so
// LLC randomization and intra-socket partitioning do not help — only
// giving each party its own regulator (a separate socket) does.
type IccCoresCovert struct{}

// Name implements Channel.
func (*IccCoresCovert) Name() string { return "IccCoresCovert" }

// Interconnect implements Channel.
func (*IccCoresCovert) Interconnect() mesh.Kind { return mesh.KindMesh }

const (
	iccInterval = 2 * sim.Millisecond
	// iccBudget is the regulator's un-throttled current budget and
	// iccSlowdown the relative loop-time increase per excess unit.
	iccBudget   = 1.8
	iccSlowdown = 0.10
	// iccSenderPower is the draw of the sender's power-virus loop
	// (wide vector units lit continuously).
	iccSenderPower = 3.0
)

// Run implements Channel.
func (*IccCoresCovert) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	pl := env.Placement()
	start := m.Now() + 10*sim.Millisecond
	all := withPreamble(bits)

	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		if bitAt(all, start, iccInterval, ctx.Start()) == 1 {
			cycles := ctx.CoreFreq().CyclesIn(ctx.Quantum())
			return system.Activity{Active: true, Cycles: cycles, PowerUnits: iccSenderPower}
		}
		return system.Activity{}
	})

	// Receiver: a calibrated arithmetic loop per quantum; its observed
	// duration stretches when the regulator throttles. The reading uses
	// the receiver's own socket — contention is per-regulator.
	sums := make([]float64, len(all))
	counts := make([]int, len(all))
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel >= 0 {
			idx := int(rel / iccInterval)
			if idx < len(all) {
				draw := ctx.Thread().Sock.QuantumPower() + 0.6 // plus our own loop
				over := draw - iccBudget
				if over < 0 {
					over = 0
				}
				loop := 10000 * (1 + iccSlowdown*over)
				loop += ctx.Rng().Norm(0, 40)
				sums[idx] += loop
				counts[idx]++
			}
		}
		cycles := ctx.CoreFreq().CyclesIn(ctx.Quantum())
		return system.Activity{Active: true, Cycles: cycles, PowerUnits: 0.6}
	})

	stth := m.Spawn(unique(m, "icc-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "icc-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 10*sim.Millisecond, iccInterval, len(all))
	stth.Stop()
	rt.Stop()

	metrics := make([]float64, len(all))
	for i := range metrics {
		if counts[i] > 0 {
			metrics[i] = sums[i] / float64(counts[i])
		}
	}
	thr, oneHigh, ok := adaptiveThreshold(metrics, all, len(TrainPreamble))
	if !ok {
		return broken(bits, iccInterval), nil
	}
	decoded := decodeByThreshold(metrics[len(TrainPreamble):], thr, oneHigh)
	return channel.Evaluate(bits, decoded, iccInterval), nil
}
