package baselines

import (
	"repro/internal/channel"
	"repro/internal/cpu"
	"repro/internal/defense"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/ufs"
	"repro/internal/workload"
)

// UncoreIdle is the idle-power-state channel (§2.3, Chen et al.): the
// sender modulates whether the platform can fall into deep package idle —
// keeping one core busy (bit 0) or sleeping (bit 1) — and the receiver
// measures the wake-up latency of a network interrupt, which includes the
// uncore's (and platform's) idle-exit time. No shared microarchitectural
// structure is involved, so it survives every partitioning defence, but it
// only works on an otherwise idle machine: any unrelated active core pins
// the uncore in PC0 and the channel disappears (§2.3, Table 3).
type UncoreIdle struct{}

// Name implements Channel.
func (*UncoreIdle) Name() string { return "Uncore-idle" }

// Interconnect implements Channel.
func (*UncoreIdle) Interconnect() mesh.Kind { return mesh.KindMesh }

// idleInterval is long: C-state demotion and package-idle entry take
// milliseconds and the PMU only re-evaluates at epoch granularity.
const idleInterval = 40 * sim.Millisecond

// Run implements Channel.
func (*UncoreIdle) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	pl := env.Placement()
	start := m.Now() + 20*sim.Millisecond

	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		if bitAt(bits, start, idleInterval, ctx.Start()) == 0 {
			// Bit 0: keep a core fully active, holding the whole
			// platform out of deep idle.
			return workload.Nop{}.Step(ctx)
		}
		return system.Activity{}
	})

	// The receiver's own core and socket are asleep at probe time in
	// both symbols (it sleeps between probes); the discriminating term
	// is the platform deep-idle exit, which only the sender's activity
	// suppresses.
	threshold := cpu.C6.ExitLatency() + ufs.PCState(6).ExitLatency() + system.PlatformExitLatency/2

	decoded := make(channel.Bits, len(bits))
	q := m.Config().Quantum
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		idx, last := lastQuantum(start, idleInterval, q, ctx.Start())
		if last && idx < len(bits) {
			wake := ctx.Machine().WakeLatency(pl.ReceiverSocket, pl.ReceiverCore, ctx.Rng())
			if wake > threshold {
				decoded[idx] = 1
			}
			// The wake itself briefly activates the core.
			return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(q / 4)}
		}
		// Between probes the receiver sleeps, letting its own socket
		// reach deep package idle.
		return system.Activity{}
	})

	stth := m.Spawn(unique(m, "ui-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "ui-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 20*sim.Millisecond, idleInterval, len(bits))
	stth.Stop()
	rt.Stop()
	return channel.Evaluate(bits, decoded, idleInterval), nil
}
