package baselines

import (
	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// ReloadRefresh exploits precise control of a shared line's residency in
// the LLC: the receiver parks the shared line in the LLC (by pushing it
// out of its private L2); a sender access then promotes the line into the
// sender's private cache, and the receiver's next timed reload is served
// by a cross-core snoop instead of the LLC — a measurably different
// latency, with no eviction needed. Like the original attack it depends on
// shared memory, clflush for state reset, and on both parties addressing
// the same LLC location, which randomized per-domain indexing destroys.
type ReloadRefresh struct{}

// Name implements Channel.
func (*ReloadRefresh) Name() string { return "Reload+Refresh" }

// Interconnect implements Channel.
func (*ReloadRefresh) Interconnect() mesh.Kind { return mesh.KindMesh }

// rrInterval is the per-bit interval; parking the line takes a short
// eviction walk, so intervals are a bit longer than Flush+Reload's.
const rrInterval = 3 * sim.Millisecond

// Run implements Channel.
func (*ReloadRefresh) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	if !env.EffectiveSharedMemory() || !env.CLFlush {
		return broken(bits, rrInterval), nil
	}
	pl := env.Placement()
	alloc := memsys.NewAllocator()
	shared := alloc.Reserve(1)[0]

	// Lines sharing the shared line's L2 set, used to push it out of
	// the receiver's private L2 so it lands in the LLC.
	geom := m.Socket(pl.ReceiverSocket).Hier.Geometry()
	evict := make([]cache.Line, 0, geom.L2Ways+4)
	for k := 1; len(evict) < geom.L2Ways+4; k++ {
		evict = append(evict, shared+cache.Line(k*geom.L2Sets))
	}

	start := m.Now() + 10*sim.Millisecond
	q := m.Config().Quantum

	// The LLC-vs-snoop threshold depends on the shared line's home
	// slice distance from the receiver core.
	rSock := m.Socket(pl.ReceiverSocket)
	hops := rSock.Mesh.Hops(rSock.Die.CoreCoord(pl.ReceiverCore),
		rSock.Die.SliceCoord(rSock.Hier.SliceOf(pl.ReceiverDomain, shared)))

	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		// Touch the line once, mid-interval, after the receiver has
		// parked it.
		if bitAt(bits, start, rrInterval, ctx.Start()) == 1 && rel%rrInterval >= rrInterval/2 && rel%rrInterval < rrInterval/2+q {
			ctx.Access(shared)
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	decoded := make(channel.Bits, len(bits))
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel >= 0 {
			idx := int(rel / rrInterval)
			off := rel % rrInterval
			switch {
			case off < q && idx < len(bits):
				// Park: reset, load, and push into the LLC.
				ctx.Flush(shared)
				ctx.Access(shared)
				for _, l := range evict {
					ctx.Access(l)
				}
			case off >= rrInterval-q && idx < len(bits):
				// Probe: an LLC-served reload means untouched; a
				// snoop-served (remote) reload means the sender
				// pulled it into its private cache.
				lat := ctx.TimedAccess(shared)
				if lat > remoteThresholdCycles(ctx, hops) {
					decoded[idx] = 1
				}
			}
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	st := m.Spawn(unique(m, "rr-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "rr-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 10*sim.Millisecond, rrInterval, len(bits))
	st.Stop()
	rt.Stop()
	return channel.Evaluate(bits, decoded, rrInterval), nil
}

// remoteThresholdCycles separates an LLC hit from a cross-core snoop at
// the current uncore frequency, given the line's home-slice hop distance.
func remoteThresholdCycles(ctx *system.Ctx, hops int) float64 {
	tp := ctx.Machine().Config().Timing
	llc := tp.LLCMeanCycles(ctx.CoreFreq(), ctx.UncoreFreq(), hops, 0)
	// The remote path adds roughly half a slice pipeline plus extra
	// hops (see timing.SampleCycles): ≥27 cycles even at the top
	// frequency; 14 splits the distributions with margin.
	return llc + 14
}
