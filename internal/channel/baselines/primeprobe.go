package baselines

import (
	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// ppInterval is the per-bit interval of the set-conflict channels.
const ppInterval = 3 * sim.Millisecond

// agreedLLCSet is the LLC set index the parties agree on out of band.
const agreedLLCSet = 0x155

// CanMapSlice reports whether domain d can allocate lines homed on the
// given physical slice — false when slice partitioning confines the domain
// to a different half of the LLC.
func CanMapSlice(h *cache.Hierarchy, d cache.Domain, slice int) bool {
	for l := cache.Line(1 << 21); l < 1<<21+4096; l++ {
		if h.SliceOf(d, l) == slice {
			return true
		}
	}
	return false
}

// paddingLines returns lines that share the L2 set of the agreed LLC set
// but map to its bit-10 sibling LLC set: walking them pushes a primed
// conflict set out of the private L2 and into the LLC without disturbing
// the target set.
func paddingLines(geom cache.Geometry, n int) []cache.Line {
	sibling := agreedLLCSet ^ (geom.LLCSets >> 1)
	out := make([]cache.Line, 0, n)
	for k := 1; len(out) < n; k++ {
		out = append(out, cache.Line(sibling)+cache.Line(k*geom.LLCSets))
	}
	return out
}

// spill primes the target LLC set: it loads the conflict lines and then
// walks padding until the conflict lines have been evicted from the
// private L2 into the LLC.
func spill(ctx *system.Ctx, prime, pad []cache.Line) {
	for _, l := range prime {
		ctx.Access(l)
	}
	for _, l := range pad {
		ctx.Access(l)
	}
}

// ppSetup builds both parties' conflict sets for the agreed (slice, set).
type ppSetup struct {
	slice                int
	recvPrime, sendEvict []cache.Line
	pad                  []cache.Line
	reachable            bool
}

func newPPSetup(m *system.Machine, env defense.Env) (ppSetup, error) {
	pl := env.Placement()
	rSock := m.Socket(pl.ReceiverSocket)
	sSock := m.Socket(pl.SenderSocket)
	alloc := memsys.NewAllocator()
	geom := rSock.Hier.Geometry()

	// The agreed slice must be reachable by the receiver; pick the home
	// slice of a probe line under the receiver's mapping.
	slice := rSock.Hier.SliceOf(pl.ReceiverDomain, 1<<21)
	st := ppSetup{slice: slice}
	var err error
	st.recvPrime, err = memsys.ConflictSet(rSock.Hier, pl.ReceiverDomain, alloc, slice, agreedLLCSet, geom.LLCWays)
	if err != nil {
		return st, err
	}
	st.pad = paddingLines(geom, geom.L2Ways+4)

	// The sender needs lines hitting the same physical (slice, set) on
	// the same physical LLC. Under coarse partitioning the sockets'
	// LLCs are disjoint; under slice partitioning the sender's domain
	// cannot reach the receiver's slice; under randomized indexing the
	// sender's eviction set (built through its own mapping) lands in a
	// different physical set.
	st.reachable = pl.SenderSocket == pl.ReceiverSocket && CanMapSlice(sSock.Hier, pl.SenderDomain, slice)
	if st.reachable {
		st.sendEvict, err = memsys.ConflictSet(sSock.Hier, pl.SenderDomain, alloc, slice, agreedLLCSet, geom.LLCWays+2)
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// runConflict drives the shared prime/evict/probe skeleton; decide is
// called each interval end and returns the decoded bit.
func runConflict(m *system.Machine, env defense.Env, bits channel.Bits,
	st ppSetup,
	prime func(ctx *system.Ctx),
	decide func(ctx *system.Ctx) int,
) channel.Result {
	pl := env.Placement()
	start := m.Now() + 10*sim.Millisecond
	q := m.Config().Quantum

	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if st.reachable && bitAt(bits, start, ppInterval, ctx.Start()) == 1 &&
			rel%ppInterval >= ppInterval/2 && rel%ppInterval < ppInterval/2+q {
			spill(ctx, st.sendEvict, st.pad)
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	decoded := make(channel.Bits, len(bits))
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel >= 0 {
			idx := int(rel / ppInterval)
			off := rel % ppInterval
			switch {
			case off < q && idx < len(bits):
				prime(ctx)
			case off >= ppInterval-q && idx < len(bits):
				decoded[idx] = decide(ctx)
			}
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	stth := m.Spawn(unique(m, "pp-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "pp-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 10*sim.Millisecond, ppInterval, len(bits))
	stth.Stop()
	rt.Stop()
	return channel.Evaluate(bits, decoded, ppInterval)
}

// PrimeProbe is the classic LLC set-conflict channel (§2.3): the receiver
// fills the agreed LLC set with its own lines and later times a probe of
// them; a slow probe (a DRAM-served miss) means the sender evicted them.
type PrimeProbe struct{}

// Name implements Channel.
func (*PrimeProbe) Name() string { return "Prime+Probe" }

// Interconnect implements Channel.
func (*PrimeProbe) Interconnect() mesh.Kind { return mesh.KindMesh }

// Run implements Channel.
func (*PrimeProbe) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	st, err := newPPSetup(m, env)
	if err != nil {
		return channel.Result{}, err
	}
	res := runConflict(m, env, bits, st,
		func(ctx *system.Ctx) { spill(ctx, st.recvPrime, st.pad) },
		func(ctx *system.Ctx) int {
			slow := 0
			for _, l := range st.recvPrime {
				if ctx.TimedAccess(l) > 200 {
					slow++
				}
			}
			if slow >= 2 {
				return 1
			}
			return 0
		})
	return res, nil
}

// PrimeAbort replaces the timed probe with a hardware transaction: the
// primed lines are the transaction's tracked set, and a conflict eviction
// aborts it — a timer-free signal. It requires TSX.
type PrimeAbort struct{}

// Name implements Channel.
func (*PrimeAbort) Name() string { return "Prime+Abort" }

// Interconnect implements Channel.
func (*PrimeAbort) Interconnect() mesh.Kind { return mesh.KindMesh }

// Run implements Channel.
func (*PrimeAbort) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	if !env.TSX {
		return broken(bits, ppInterval), nil
	}
	st, err := newPPSetup(m, env)
	if err != nil {
		return channel.Result{}, err
	}
	pl := env.Placement()
	txn := cache.NewTransaction(m.Socket(pl.ReceiverSocket).Hier)
	res := runConflict(m, env, bits, st,
		func(ctx *system.Ctx) {
			txn.End()
			txn.Begin()
			for _, l := range st.recvPrime {
				txn.Track(l)
			}
			spill(ctx, st.recvPrime, st.pad)
		},
		func(ctx *system.Ctx) int {
			if txn.Aborted() {
				return 1
			}
			return 0
		})
	return res, nil
}
