package baselines

import (
	"repro/internal/cache"
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// SPP is the stochastic occupancy channel ("These Aren't The Caches You're
// Looking For"): instead of targeting one set — impossible on a cache with
// randomized, domain-keyed indexing — the sender floods an entire LLC
// slice, evicting the receiver's resident lines wherever the randomized
// mapping put them. The receiver counts how many of its parked lines
// miss. Randomization does not help (the flood is mapping-agnostic), but
// slice partitioning and per-socket isolation remove the shared capacity
// entirely.
type SPP struct{}

// Name implements Channel.
func (*SPP) Name() string { return "SPP" }

// Interconnect implements Channel.
func (*SPP) Interconnect() mesh.Kind { return mesh.KindMesh }

const (
	// sppInterval is long: flooding a slice takes time.
	sppInterval = 6 * sim.Millisecond
	// sppRecvSets and sppRecvPer size the receiver's parked footprint.
	// Per-list length exceeds the L2 associativity by more than the
	// walk's residue, so a good half of the lines are parked in the LLC
	// (not shadowed by the private L2) at probe time.
	sppRecvSets, sppRecvPer = 8, 33
)

var sppDebug func(idx, miss, l2hit, llchit int)

// Run implements Channel.
func (*SPP) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	pl := env.Placement()
	rSock := m.Socket(pl.ReceiverSocket)
	sSock := m.Socket(pl.SenderSocket)
	alloc := memsys.NewAllocator()
	geom := rSock.Hier.Geometry()

	// Receiver parks lines on one slice: eviction lists over a few L2
	// sets, so a single walk pushes them all into the LLC.
	slice := rSock.Hier.SliceOf(pl.ReceiverDomain, 1<<21)
	recvLists, err := memsys.EvictionLists(rSock.Hier, pl.ReceiverDomain, alloc, 64, slice, sppRecvSets, sppRecvPer)
	if err != nil {
		return channel.Result{}, err
	}
	var recvLines []cache.Line
	for _, l := range recvLists {
		recvLines = append(recvLines, l...)
	}

	// Sender flood: enough lines on the same physical slice to fill
	// every set past its associativity, built through the sender's own
	// mapping (the flood needs no set agreement).
	reachable := pl.SenderSocket == pl.ReceiverSocket && CanMapSlice(sSock.Hier, pl.SenderDomain, slice)
	// The LLC is non-inclusive: re-accessing a resident flood line
	// promotes it OUT of the LLC, so a reused working set oscillates
	// around low occupancy and never fills the sets. Each burst must be
	// a cold streaming pass, so the sender rotates through disjoint
	// flood groups; by the time a group recurs, intervening floods have
	// pushed its lines back to memory.
	const floodGroups = 3
	var floods [floodGroups][]cache.Line
	if reachable {
		// Each L2 set's lines spread over the slice's sets; one group
		// must deliver more insertions per LLC set than the
		// associativity, with Poisson slack.
		per := 2 * (geom.LLCWays + 2)
		for g := 0; g < floodGroups; g++ {
			lists, err := memsys.EvictionLists(sSock.Hier, pl.SenderDomain, alloc, 0, slice, geom.L2Sets, per)
			if err != nil {
				return channel.Result{}, err
			}
			for j := 0; j < per; j++ {
				for k := 0; k < geom.L2Sets; k++ {
					floods[g] = append(floods[g], lists[k][j])
				}
			}
		}
	}

	start := m.Now() + 10*sim.Millisecond
	q := m.Config().Quantum
	// Spread one full streaming pass over the middle quanta.
	floodQuanta := int(sppInterval/q) - 4
	perQuantum := 0
	if reachable {
		perQuantum = (len(floods[0]) + floodQuanta - 1) / floodQuanta
	}

	group, floodPos, lastIdx := 0, 0, -1
	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel < 0 && reachable {
			// Warm-up: fill the sender's private L2 so the first
			// burst's insertions reach the LLC rather than vanishing
			// into a cold L2.
			flood := floods[0]
			for i := 0; i < perQuantum && floodPos < len(flood); i++ {
				ctx.Access(flood[floodPos])
				floodPos++
			}
			return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
		}
		if reachable && bitAt(bits, start, sppInterval, ctx.Start()) == 1 {
			idx := int(rel / sppInterval)
			if idx != lastIdx {
				// New "1" interval: advance to the next cold group.
				lastIdx = idx
				group = (group + 1) % floodGroups
				floodPos = 0
			}
			off := rel % sppInterval
			if off >= q && off < sppInterval-2*q {
				flood := floods[group]
				for i := 0; i < perQuantum && floodPos < len(flood); i++ {
					ctx.Access(flood[floodPos])
					floodPos++
				}
			}
			return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
		}
		return system.Activity{}
	})

	decoded := make(channel.Bits, len(bits))
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel >= 0 {
			idx := int(rel / sppInterval)
			off := rel % sppInterval
			switch {
			case off < q && idx < len(bits):
				// Park: one rotating walk spills everything to LLC.
				for j := 0; j < sppRecvPer; j++ {
					for k := 0; k < sppRecvSets; k++ {
						ctx.Access(recvLists[k][j])
					}
				}
			case off >= sppInterval-q && idx < len(bits):
				miss, l2hit, llchit := 0, 0, 0
				for _, l := range recvLines {
					lat := ctx.TimedAccess(l)
					switch {
					case lat > 200:
						miss++
					case lat < 30:
						l2hit++
					default:
						llchit++
					}
				}
				if sppDebug != nil {
					sppDebug(idx, miss, l2hit, llchit)
				}
				if miss > len(recvLines)/4 {
					decoded[idx] = 1
				}
			}
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	stth := m.Spawn(unique(m, "spp-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "spp-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 10*sim.Millisecond, sppInterval, len(bits))
	stth.Stop()
	rt.Stop()
	return channel.Evaluate(bits, decoded, sppInterval), nil
}
