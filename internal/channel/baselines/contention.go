package baselines

import (
	"sort"

	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

// Contention is the interconnect-contention channel family (§2.3): the
// receiver times LLC loads whose route crosses a set of links; to send a
// "1" the sender drives dense traffic over those links, delaying the
// receiver's loads. The mesh variant models Dai et al.'s attack, the ring
// variant Paccagnella et al.'s.
//
// The attacker also runs a keeper thread that holds the uncore at its
// maximum frequency throughout, so latency changes reflect contention
// rather than UFS (the paper's own channel exploits exactly the variation
// this keeper suppresses).
type Contention struct {
	// Ring selects the ring-bus topology row.
	Ring bool
}

// Name implements Channel.
func (c *Contention) Name() string {
	if c.Ring {
		return "Ring-contention"
	}
	return "Mesh-contention"
}

// Interconnect implements Channel.
func (c *Contention) Interconnect() mesh.Kind {
	if c.Ring {
		return mesh.KindRing
	}
	return mesh.KindMesh
}

const contInterval = 4 * sim.Millisecond

// Run implements Channel.
func (c *Contention) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	pl := env.Placement()
	rSock := m.Socket(pl.ReceiverSocket)
	sSock := m.Socket(pl.SenderSocket)
	die := rSock.Die

	// Receiver probe: a slice several hops away, so the route crosses
	// a usable set of links — and one the receiver's own domain can
	// allocate on (slice partitioning confines each domain to a half).
	probeSlice := -1
	from := die.CoreCoord(pl.ReceiverCore)
	for _, wantHops := range []int{3, 2, 4, 1, 5, 6, 7} {
		for s := 0; s < die.NumSlices() && probeSlice < 0; s++ {
			if from.Hops(die.SliceCoord(s)) == wantHops && CanMapSlice(rSock.Hier, pl.ReceiverDomain, s) {
				probeSlice = s
			}
		}
		if probeSlice >= 0 {
			break
		}
	}
	if probeSlice < 0 {
		return broken(bits, contInterval), nil
	}
	lines, err := memsys.EvictionList(rSock.Hier, pl.ReceiverDomain, memsys.NewAllocator(), 300, probeSlice, 20)
	if err != nil {
		return channel.Result{}, err
	}

	// Sender cores: the three whose route to the probe slice shares the
	// most links with the receiver's probe route (computed on the
	// sender's own die — under coarse partitioning that die is a
	// different socket and the traffic lands on the wrong mesh).
	probeRoute := rSock.Mesh.Route(die.CoreCoord(pl.ReceiverCore), die.SliceCoord(probeSlice))
	inProbe := map[mesh.Link]bool{}
	for _, l := range probeRoute {
		inProbe[l] = true
		inProbe[mesh.Link{From: l.To, To: l.From}] = true
	}
	// Keeper: pins the receiver-side uncore at freq_max.
	kc := m.FreeCore(pl.ReceiverSocket, pl.ReceiverCore, pl.SenderCore)
	if kc < 0 {
		return broken(bits, contInterval), nil
	}

	type cand struct{ core, shared int }
	var cands []cand
	sDie := sSock.Die
	for core := 0; core < sDie.NumCores(); core++ {
		if m.CoreBusy(pl.SenderSocket, core) {
			continue
		}
		if pl.SenderSocket == pl.ReceiverSocket && (core == pl.ReceiverCore || core == kc) {
			continue
		}
		if core == pl.SenderCore {
			continue
		}
		n := 0
		target := probeSlice
		if target >= sDie.NumSlices() {
			target = 0
		}
		for _, l := range sSock.Mesh.Route(sDie.CoreCoord(core), sDie.SliceCoord(target)) {
			if inProbe[l] || inProbe[mesh.Link{From: l.To, To: l.From}] {
				n++
			}
		}
		cands = append(cands, cand{core, n})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].shared > cands[j].shared })

	// The keeper needs ~90 ms to drag the uncore to its maximum; the
	// calibration preamble must run at the pinned operating point.
	const lead = 150 * sim.Millisecond
	start := m.Now() + lead
	all := withPreamble(bits)

	kslice, ok := die.SliceAtHops(kc, 3)
	if !ok {
		kslice, _ = die.SliceAtHops(kc, 2)
	}
	keeper := m.Spawn(unique(m, "cont-keeper"), pl.ReceiverSocket, kc, pl.ReceiverDomain, &workload.Traffic{Slice: kslice})

	// Sender: three traffic threads toward the probe slice, gated by
	// the current bit.
	var senders []*system.Thread
	target := probeSlice
	if target >= sDie.NumSlices() {
		target = 0
	}
	mkSender := func(core int) *system.Thread {
		tr := &workload.Traffic{Slice: target}
		w := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
			if bitAt(all, start, contInterval, ctx.Start()) == 1 {
				return tr.Step(ctx)
			}
			return system.Activity{}
		})
		return m.Spawn(unique(m, "cont-sender"), pl.SenderSocket, core, pl.SenderDomain, w)
	}
	senders = append(senders, mkSender(pl.SenderCore))
	for i := 0; i < 2 && i < len(cands); i++ {
		senders = append(senders, mkSender(cands[i].core))
	}

	// Receiver: per-interval mean probe latency.
	sums := make([]float64, len(all))
	counts := make([]int, len(all))
	pos := 0
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		rel := ctx.Start() - start
		if rel >= 0 {
			idx := int(rel / contInterval)
			if idx < len(all) {
				for i := 0; i < 12 && ctx.Remaining() > 0; i++ {
					sums[idx] += ctx.TimedAccess(lines[pos])
					counts[idx]++
					pos = (pos + 1) % len(lines)
				}
			}
		} else {
			// Warm-up keeps the list resident.
			for i := 0; i < 12 && ctx.Remaining() > 0; i++ {
				ctx.TimedAccess(lines[pos])
				pos = (pos + 1) % len(lines)
			}
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})
	rt := m.Spawn(unique(m, "cont-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)

	run(m, lead, contInterval, len(all))
	keeper.Stop()
	rt.Stop()
	for _, s := range senders {
		s.Stop()
	}

	metrics := make([]float64, len(all))
	for i := range metrics {
		if counts[i] > 0 {
			metrics[i] = sums[i] / float64(counts[i])
		}
	}
	thr, oneHigh, ok2 := adaptiveThreshold(metrics, all, len(TrainPreamble))
	if !ok2 {
		return broken(bits, contInterval), nil
	}
	decoded := decodeByThreshold(metrics[len(TrainPreamble):], thr, oneHigh)
	return channel.Evaluate(bits, decoded, contInterval), nil
}
