// Package baselines implements the ten prior uncore covert channels the
// paper compares against in Table 3, each at the fidelity needed to decide
// functionality (✓/✗) under the table's prerequisite and defence columns:
//
//	Flush+Reload, Flush+Flush, Reload+Refresh   (data reuse)
//	Prime+Probe, Prime+Abort, SPP               (LLC set conflict / occupancy)
//	Mesh-contention, Ring-contention            (interconnect contention)
//	IccCoresCovert                              (PMU current contention)
//	Uncore-idle                                 (idle power states)
//
// Every channel runs against the same simulated platform as UF-variation,
// through the functional cache hierarchy, mesh model, PMU power
// accounting, and C-state machinery, so a defence breaks a channel (or
// fails to) for the same structural reason as on real silicon.
package baselines

import (
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// Channel is one Table 3 row.
type Channel interface {
	// Name is the row label.
	Name() string
	// Interconnect is the topology the channel targets (ring for
	// Ring-contention, mesh otherwise).
	Interconnect() mesh.Kind
	// Run transmits bits over m, which must have env already applied,
	// and returns the evaluated result. A channel whose prerequisites
	// are unavailable, or that structurally cannot operate under the
	// environment, returns a chance-level result rather than an error.
	Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error)
}

// All returns every Table 3 baseline, in row order.
func All() []Channel {
	return []Channel{
		&FlushReload{},
		&FlushFlush{},
		&ReloadRefresh{},
		&PrimeProbe{},
		&PrimeAbort{},
		&SPP{},
		&Contention{},
		&Contention{Ring: true},
		&IccCoresCovert{},
		&UncoreIdle{},
	}
}

// broken returns the result of a channel that cannot carry information in
// the given environment: the receiver decodes a constant stream, which
// against a random payload is chance level.
func broken(bits channel.Bits, interval sim.Time) channel.Result {
	return channel.Evaluate(bits, make(channel.Bits, len(bits)), interval)
}

// bitAt returns the payload bit whose interval covers the instant at,
// given the transmission start and interval, or -1 outside transmission.
func bitAt(bits channel.Bits, start, interval, at sim.Time) int {
	if at < start {
		return -1
	}
	idx := int((at - start) / interval)
	if idx >= len(bits) {
		return -1
	}
	return bits[idx]
}

// lastQuantum reports whether the quantum starting at 'at' is the final
// quantum of its transmission interval.
func lastQuantum(start, interval, quantum, at sim.Time) (idx int, last bool) {
	if at < start {
		return 0, false
	}
	rel := at - start
	idx = int(rel / interval)
	off := rel % interval
	return idx, off >= interval-quantum
}

// run drives a prepared sender/receiver pair to completion.
func run(m *system.Machine, lead, interval sim.Time, n int) {
	m.Run(lead + interval*sim.Time(n) + 2*m.Config().Quantum)
}

// adaptiveThreshold derives a decode threshold from per-interval metrics
// using a known training preamble: the midpoint between the mean metric of
// training "1"s and "0"s. It returns ok=false when the preamble carried no
// usable contrast.
func adaptiveThreshold(metrics []float64, bits channel.Bits, trainLen int) (thr float64, oneIsHigh, ok bool) {
	var s1, s0 float64
	var n1, n0 int
	for i := 0; i < trainLen && i < len(bits); i++ {
		if bits[i] == 1 {
			s1 += metrics[i]
			n1++
		} else {
			s0 += metrics[i]
			n0++
		}
	}
	if n1 == 0 || n0 == 0 {
		return 0, false, false
	}
	m1, m0 := s1/float64(n1), s0/float64(n0)
	return (m1 + m0) / 2, m1 > m0, true
}

// decodeByThreshold maps per-interval metrics to bits.
func decodeByThreshold(metrics []float64, thr float64, oneIsHigh bool) channel.Bits {
	out := make(channel.Bits, len(metrics))
	for i, v := range metrics {
		if (v > thr) == oneIsHigh {
			out[i] = 1
		}
	}
	return out
}

// TrainPreamble is the alternating known prefix channels with adaptive
// thresholds prepend for calibration.
var TrainPreamble = channel.Bits{1, 0, 1, 0, 1, 0, 1, 0}

// withPreamble prepends the training preamble to payload.
func withPreamble(payload channel.Bits) channel.Bits {
	out := make(channel.Bits, 0, len(TrainPreamble)+len(payload))
	out = append(out, TrainPreamble...)
	return append(out, payload...)
}
