package baselines

import (
	"repro/internal/channel"
	"repro/internal/defense"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/system"
)

// flushInterval is the per-bit interval of the flush-family channels; they
// are orders of magnitude faster than UF-variation.
const flushInterval = 2 * sim.Millisecond

// FlushReload is the classic data-reuse channel: the receiver flushes a
// shared line and later times a reload; a fast (cache-served) reload means
// the sender touched the line. It requires shared memory and clflush.
type FlushReload struct{}

// Name implements Channel.
func (*FlushReload) Name() string { return "Flush+Reload" }

// Interconnect implements Channel.
func (*FlushReload) Interconnect() mesh.Kind { return mesh.KindMesh }

// Run implements Channel.
func (*FlushReload) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	return runFlushFamily(m, env, bits, false)
}

// FlushFlush decodes from the latency of clflush itself, which is higher
// when the line is cached anywhere; the receiver never performs a load.
type FlushFlush struct{}

// Name implements Channel.
func (*FlushFlush) Name() string { return "Flush+Flush" }

// Interconnect implements Channel.
func (*FlushFlush) Interconnect() mesh.Kind { return mesh.KindMesh }

// Run implements Channel.
func (*FlushFlush) Run(m *system.Machine, env defense.Env, bits channel.Bits) (channel.Result, error) {
	return runFlushFamily(m, env, bits, true)
}

func runFlushFamily(m *system.Machine, env defense.Env, bits channel.Bits, byFlushTime bool) (channel.Result, error) {
	if !env.EffectiveSharedMemory() || !env.CLFlush {
		return broken(bits, flushInterval), nil
	}
	pl := env.Placement()
	shared := memsys.NewAllocator().Reserve(1)[0]
	start := m.Now() + 10*sim.Millisecond
	q := m.Config().Quantum

	sender := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		if bitAt(bits, start, flushInterval, ctx.Start()) == 1 {
			// Re-touch the shared line a few times during the
			// interval so the reload is served from this core's
			// private cache.
			ctx.Access(shared)
			return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
		}
		return system.Activity{}
	})

	decoded := make(channel.Bits, len(bits))
	receiver := system.WorkloadFunc(func(ctx *system.Ctx) system.Activity {
		idx, last := lastQuantum(start, flushInterval, q, ctx.Start())
		if last && idx < len(bits) {
			if byFlushTime {
				// Flush+Flush: one timed clflush both measures and
				// resets.
				if ctx.Flush(shared) > 35 {
					decoded[idx] = 1
				}
			} else {
				// Flush+Reload: timed reload, then reset with an
				// untimed flush.
				lat := ctx.TimedAccess(shared)
				if lat < 200 {
					decoded[idx] = 1
				}
				ctx.Flush(shared)
			}
		}
		return system.Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
	})

	st := m.Spawn(unique(m, "fr-sender"), pl.SenderSocket, pl.SenderCore, pl.SenderDomain, sender)
	rt := m.Spawn(unique(m, "fr-receiver"), pl.ReceiverSocket, pl.ReceiverCore, pl.ReceiverDomain, receiver)
	run(m, 10*sim.Millisecond, flushInterval, len(bits))
	st.Stop()
	rt.Stop()
	return channel.Evaluate(bits, decoded, flushInterval), nil
}

// unique derives a thread name unique to the machine's current time, so
// repeated channel runs on one machine do not collide.
func unique(m *system.Machine, base string) string {
	return base + "@" + m.Now().String()
}
