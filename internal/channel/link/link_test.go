package link

import (
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/sim"
)

func TestHammingRoundTrip(t *testing.T) {
	for v := 0; v < 16; v++ {
		nib := [4]int{v & 1, v >> 1 & 1, v >> 2 & 1, v >> 3 & 1}
		cw := hamming74Encode(nib)
		got, corrected := hamming74Decode(cw)
		if corrected {
			t.Errorf("clean codeword %v reported a correction", cw)
		}
		if got != nib {
			t.Errorf("round trip of %v = %v", nib, got)
		}
	}
}

func TestHammingCorrectsAnySingleFlip(t *testing.T) {
	for v := 0; v < 16; v++ {
		nib := [4]int{v & 1, v >> 1 & 1, v >> 2 & 1, v >> 3 & 1}
		for pos := 0; pos < 7; pos++ {
			cw := hamming74Encode(nib)
			cw[pos] ^= 1
			got, corrected := hamming74Decode(cw)
			if !corrected {
				t.Fatalf("flip at %d not detected", pos)
			}
			if got != nib {
				t.Fatalf("flip at %d of nibble %v decoded to %v", pos, nib, got)
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	rng := sim.NewRand(1)
	f := func(n uint8, depth uint8) bool {
		bits := channel.RandomBits(rng, int(n%200)+1)
		d := int(depth%8) + 1
		coded := Encode(bits, d)
		back, corrections, err := Decode(coded, len(bits), d)
		if err != nil || corrections != 0 {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveDispersesBursts(t *testing.T) {
	rng := sim.NewRand(2)
	bits := channel.RandomBits(rng, 96)
	const depth = 7
	coded := Encode(bits, depth)
	// A burst of `depth` consecutive wire errors must stay correctable:
	// the deinterleaver spreads it one bit per codeword.
	for start := 0; start+depth <= len(coded); start += 13 {
		corrupted := append(channel.Bits{}, coded...)
		for i := 0; i < depth; i++ {
			corrupted[start+i] ^= 1
		}
		back, corrections, err := Decode(corrupted, len(bits), depth)
		if err != nil {
			t.Fatalf("burst at %d: %v", start, err)
		}
		if corrections == 0 {
			t.Fatalf("burst at %d silently ignored", start)
		}
		for i := range bits {
			if back[i] != bits[i] {
				t.Fatalf("burst at %d not corrected (bit %d)", start, i)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	data := []byte("uncore encore")
	f := Frame{Seq: 42, Data: data, Depth: 4}
	bits, err := f.Bits()
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != WireLength(len(data), 4) {
		t.Errorf("wire length %d, want %d", len(bits), WireLength(len(data), 4))
	}
	back, seq, corrections, err := Deframe(bits, 4)
	if err != nil {
		t.Fatal(err)
	}
	if corrections != 0 {
		t.Errorf("clean frame needed %d corrections", corrections)
	}
	if seq != 42 {
		t.Errorf("sequence number %d, want 42", seq)
	}
	if string(back) != string(data) {
		t.Errorf("deframed %q", back)
	}
}

func TestFrameSurvivesScatteredErrors(t *testing.T) {
	data := []byte("secret")
	bits, err := Frame{Data: data, Depth: 4}.Bits()
	if err != nil {
		t.Fatal(err)
	}
	// Flip well-separated bits (one per codeword after deinterleaving).
	for _, pos := range []int{len(Sync) + 3, len(Sync) + 40, len(Sync) + 77} {
		bits[pos] ^= 1
	}
	back, _, corrections, err := Deframe(bits, 4)
	if err != nil {
		t.Fatal(err)
	}
	if corrections == 0 {
		t.Error("no corrections reported")
	}
	if string(back) != "secret" {
		t.Errorf("deframed %q", back)
	}
}

func TestFrameDetectsGarbage(t *testing.T) {
	rng := sim.NewRand(3)
	// A dead channel decoding constant bits must not produce a frame.
	if _, _, _, err := Deframe(make(channel.Bits, 120), 4); err == nil {
		t.Error("all-zero stream deframed")
	}
	ones := make(channel.Bits, 120)
	for i := range ones {
		ones[i] = 1
	}
	if _, _, _, err := Deframe(ones, 4); err == nil {
		t.Error("all-one stream deframed")
	}
	// Random noise should essentially never pass sync + CRC.
	passed := 0
	for trial := 0; trial < 200; trial++ {
		if _, _, _, err := Deframe(channel.RandomBits(rng, 120), 4); err == nil {
			passed++
		}
	}
	if passed > 2 {
		t.Errorf("%d/200 random streams deframed", passed)
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := (Frame{Data: make([]byte, 256)}).Bits(); err == nil {
		t.Error("oversized frame accepted")
	}
	if _, _, _, err := Deframe(channel.Bits{1, 0}, 4); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, _, err := Decode(channel.Bits{1, 0, 1}, 2, 4); err == nil {
		t.Error("non-codeword length accepted")
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// The CRC-8/SMBus check value.
	if got := crc8([]byte("123456789")); got != 0xF4 {
		t.Errorf("crc8(\"123456789\") = %#02x, want 0xF4", got)
	}
	if got := crc8(nil); got != 0 {
		t.Errorf("crc8(nil) = %#02x, want 0", got)
	}
}

// forgeFrame hand-assembles wire bits for a frame body whose trailer
// byte was computed over original, while the body carries corrupted —
// exactly the residue a channel error leaves when the error detector
// cannot tell the two payloads apart.
func forgeFrame(t *testing.T, corrupted, original []byte, depth int) channel.Bits {
	t.Helper()
	if len(corrupted) != len(original) {
		t.Fatal("forged payloads must have equal length")
	}
	trailer := crc8(append([]byte{0, byte(len(original))}, original...))
	body := append([]byte{0, byte(len(corrupted))}, corrupted...)
	body = append(body, trailer)
	bits := append(channel.Bits{}, Sync...)
	return append(bits, Encode(channel.FromBytes(body), depth)...)
}

// TestCRCDetectsAdditivelyCancellingErrors covers the undetected-error
// classes of the additive checksum this layer used to ship: byte pairs
// whose errors cancel in a modular sum (swaps, +1/-1 pairs) passed the
// old check unchallenged; CRC-8 must reject them.
func TestCRCDetectsAdditivelyCancellingErrors(t *testing.T) {
	cases := []struct {
		name                string
		original, corrupted string
	}{
		{"swapped bytes", "AB", "BA"},
		{"plus-minus pair", "AC", "BB"},
		{"swap inside longer payload", "secret", "secert"},
		{"cancelling far apart", "q0...9z", "p0...9{"},
	}
	for _, c := range cases {
		var so, sc byte
		for i := range c.original {
			so += c.original[i]
			sc += c.corrupted[i]
		}
		if so != sc {
			t.Fatalf("%s: case does not cancel additively (%#02x vs %#02x)", c.name, so, sc)
		}
		bits := forgeFrame(t, []byte(c.corrupted), []byte(c.original), 4)
		if _, _, _, err := Deframe(bits, 4); err == nil {
			t.Errorf("%s: additively-cancelling corruption %q→%q not detected",
				c.name, c.original, c.corrupted)
		}
	}
	// Control: the unforged frame passes.
	bits := forgeFrame(t, []byte("AB"), []byte("AB"), 4)
	if _, _, _, err := Deframe(bits, 4); err != nil {
		t.Errorf("control frame rejected: %v", err)
	}
}

func TestInterleaveRoundTripOddLengths(t *testing.T) {
	rng := sim.NewRand(7)
	cases := []struct{ n, depth int }{
		{1, 4}, {2, 4}, {3, 2}, {5, 4}, {7, 3}, {13, 5},
		{26, 8}, {31, 7}, {95, 6}, {97, 4}, {100, 9}, {7, 100},
	}
	for _, c := range cases {
		bits := channel.RandomBits(rng, c.n)
		il := interleave(bits, c.depth)
		if len(il) != c.n {
			t.Errorf("n=%d depth=%d: interleave changed length to %d", c.n, c.depth, len(il))
			continue
		}
		back := deinterleave(il, c.depth)
		for i := range bits {
			if back[i] != bits[i] {
				t.Errorf("n=%d depth=%d: bit %d mangled", c.n, c.depth, i)
				break
			}
		}
	}
}

func TestDecodePayloadNotMultipleOfFour(t *testing.T) {
	rng := sim.NewRand(8)
	for _, n := range []int{1, 2, 3, 5, 6, 7, 9, 13, 17, 30, 33} {
		for _, depth := range []int{1, 2, 4, 7} {
			bits := channel.RandomBits(rng, n)
			coded := Encode(bits, depth)
			back, corrections, err := Decode(coded, n, depth)
			if err != nil {
				t.Fatalf("n=%d depth=%d: %v", n, depth, err)
			}
			if corrections != 0 {
				t.Errorf("n=%d depth=%d: clean decode reported %d corrections", n, depth, corrections)
			}
			if len(back) != n {
				t.Fatalf("n=%d depth=%d: decoded %d bits", n, depth, len(back))
			}
			for i := range bits {
				if back[i] != bits[i] {
					t.Errorf("n=%d depth=%d: bit %d mangled", n, depth, i)
					break
				}
			}
		}
	}
}

func TestFrameDoesNotMutateCaller(t *testing.T) {
	// Regression: framing a sub-slice of a larger buffer must not
	// scribble into the bytes past the slice.
	buf := []byte("abcdefXYZ")
	if _, err := (Frame{Data: buf[:6]}).Bits(); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcdefXYZ" {
		t.Fatalf("framing mutated the caller's buffer: %q", buf)
	}
}
