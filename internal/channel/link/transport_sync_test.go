package link

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// outcome scripts one transmission of a scriptPhy: whether the frame
// deframes, and what the receiver's symbol-lock state is afterwards.
type outcome struct {
	corrupt bool
	locked  bool
}

// scriptPhy is a SyncPhy whose per-transmission behavior is scripted,
// so the transport's verdict classification and resync escalation can
// be asserted deterministically. Past the end of the script every
// transmission succeeds in lock.
type scriptPhy struct {
	script []outcome
	i      int
	locked bool

	pilots         int
	reacquisitions int
}

func (p *scriptPhy) Transmit(bits channel.Bits, interval sim.Time, pilot bool) (channel.Bits, error) {
	if pilot {
		p.pilots++
	}
	oc := outcome{locked: true}
	if p.i < len(p.script) {
		oc = p.script[p.i]
	}
	p.i++
	p.locked = oc.locked
	if oc.corrupt {
		// An empty reception can never deframe.
		return channel.Bits{}, nil
	}
	return append(channel.Bits{}, bits...), nil
}

func (p *scriptPhy) Feedback(ack bool) bool { return ack }

func (p *scriptPhy) SyncState() (tracking, locked bool) { return true, p.locked }

func (p *scriptPhy) Reacquire() { p.reacquisitions++ }

// syncTransportConfig disables the correction-rate recalibration
// trigger so the only pilots are the ones the desync escalation orders.
func syncTransportConfig() TransportConfig {
	cfg := DefaultTransportConfig()
	cfg.RecalCorrectionRate = 1000
	return cfg
}

// TestTransportDesyncEscalation: two desynced receptions must be
// classified as desync (not corruption), answered first with a pilot
// and then with a full reacquisition — and the frame still delivered.
func TestTransportDesyncEscalation(t *testing.T) {
	phy := &scriptPhy{script: []outcome{
		{corrupt: true, locked: false},
		{corrupt: true, locked: false},
		{locked: true},
	}}
	tr := NewTransport(phy, syncTransportConfig())
	data := []byte{0xde, 0x5e, 0x4c}
	got, stats, err := tr.Send(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("delivered %x, want %x", got, data)
	}
	if stats.Desyncs != 2 {
		t.Errorf("Desyncs = %d, want 2", stats.Desyncs)
	}
	if stats.Reacquisitions != 1 || phy.reacquisitions != 1 {
		t.Errorf("Reacquisitions = %d (phy %d), want 1", stats.Reacquisitions, phy.reacquisitions)
	}
	// The pilot escalation: desync 1 orders a pilot for attempt 2,
	// desync 2 orders another for attempt 3.
	if phy.pilots != 2 {
		t.Errorf("pilots = %d, want 2", phy.pilots)
	}
	if stats.Degradations != 0 {
		t.Errorf("Degradations = %d, want 0: two desyncs must not cost bit rate yet", stats.Degradations)
	}
	if len(stats.Frames) != 1 || stats.Frames[0].Desyncs != 2 {
		t.Errorf("frame stats %+v, want one frame with 2 desyncs", stats.Frames)
	}
}

// TestTransportDesyncForcesRateFallback: a third consecutive desync
// exhausts the resync ladder and must force a rate degradation even
// before the plain retry budget is spent.
func TestTransportDesyncForcesRateFallback(t *testing.T) {
	phy := &scriptPhy{script: []outcome{
		{corrupt: true, locked: false},
		{corrupt: true, locked: false},
		{corrupt: true, locked: false},
		{locked: true},
	}}
	cfg := syncTransportConfig()
	tr := NewTransport(phy, cfg)
	data := []byte{1, 2, 3}
	got, stats, err := tr.Send(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("delivered %x, want %x", got, data)
	}
	if stats.Desyncs != 3 {
		t.Errorf("Desyncs = %d, want 3", stats.Desyncs)
	}
	if stats.Degradations != 1 {
		t.Errorf("Degradations = %d, want 1 forced by the desync streak", stats.Degradations)
	}
	if tr.Interval() != 2*cfg.Interval {
		t.Errorf("interval %v after forced fallback, want %v", tr.Interval(), 2*cfg.Interval)
	}
	if stats.Reacquisitions != 2 {
		t.Errorf("Reacquisitions = %d, want 2", stats.Reacquisitions)
	}
}

// TestTransportCorruptedInLockStaysOnRetransmitPath: failures while the
// receiver reports lock are corruption, not desync — no reacquisition,
// no forced fallback; a second consecutive corruption orders a pilot
// (the references may have drifted, or the receiver slipped bits the
// tracker cannot see).
func TestTransportCorruptedInLockStaysOnRetransmitPath(t *testing.T) {
	phy := &scriptPhy{script: []outcome{
		{corrupt: true, locked: true},
		{corrupt: true, locked: true},
		{locked: true},
	}}
	tr := NewTransport(phy, syncTransportConfig())
	data := []byte{9, 8, 7}
	got, stats, err := tr.Send(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("delivered %x, want %x", got, data)
	}
	if stats.Desyncs != 0 || stats.Reacquisitions != 0 {
		t.Errorf("Desyncs = %d, Reacquisitions = %d, want 0/0 for in-lock corruption",
			stats.Desyncs, stats.Reacquisitions)
	}
	if phy.pilots != 1 {
		t.Errorf("pilots = %d, want 1 after two consecutive in-lock corruptions", phy.pilots)
	}
	if stats.Degradations != 0 {
		t.Errorf("Degradations = %d, want 0", stats.Degradations)
	}
}

// TestTransportNeverRelocksUndeliverable: a receiver that never regains
// lock must walk the whole ladder — pilots, reacquisitions, rate
// fallback — and finally surface an undeliverable error rather than
// retransmitting forever.
func TestTransportNeverRelocksUndeliverable(t *testing.T) {
	script := make([]outcome, 32)
	for i := range script {
		script[i] = outcome{corrupt: true, locked: false}
	}
	phy := &scriptPhy{script: script}
	cfg := syncTransportConfig()
	cfg.MaxInterval = 2 * cfg.Interval
	tr := NewTransport(phy, cfg)
	got, stats, err := tr.Send([]byte{4, 5, 6})
	if err == nil {
		t.Fatal("no error from a permanently desynced link")
	}
	if len(got) != 0 {
		t.Errorf("delivered %x over a permanently desynced link", got)
	}
	if stats.Degradations < 1 {
		t.Errorf("Degradations = %d, want ≥1 before giving up", stats.Degradations)
	}
	if stats.Reacquisitions < 2 {
		t.Errorf("Reacquisitions = %d, want ≥2 before giving up", stats.Reacquisitions)
	}
	if stats.Desyncs < 4 {
		t.Errorf("Desyncs = %d, want the whole ladder walked", stats.Desyncs)
	}
}
