// Transport grows the link layer into a reliable byte stream: framed
// stop-and-wait ARQ with sequence numbers over any bit-pipe that can
// carry a frame and a one-bit acknowledgement. One corrupted frame is no
// longer lost — it is NACKed and retransmitted with backoff, the decoder
// is recalibrated from a pilot when the Hamming correction rate says the
// references have drifted, and when a rate is genuinely unusable the
// transport doubles the bit interval instead of failing outright (the
// adaptive fallback that frequency channels under co-located load need;
// cf. the paper's §4.3.3 and the BER cliffs TurboCC and IChannels report
// under interference).
package link

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/sim"
)

// Phy is the raw bit pipe under the transport: one covert-channel
// transmission plus the reverse (acknowledgement) channel. The
// simulator's implementation is ufvariation.LinkPhy; tests use
// LoopbackPhy.
type Phy interface {
	// Transmit sends raw frame bits at the given per-bit interval and
	// returns the bits the receiver captured. pilot asks the sender to
	// prefix a known calibration preamble from which the receiver
	// rederives its decoding references.
	Transmit(bits channel.Bits, interval sim.Time, pilot bool) (channel.Bits, error)
	// Feedback carries the receiver's verdict for the last frame back
	// over the reverse channel and returns the verdict as the sender
	// observes it: true only for a positive acknowledgement that
	// actually arrived. A lost acknowledgement reads as false, so the
	// sender retransmits and the receiver deduplicates by sequence
	// number.
	Feedback(ack bool) bool
}

// Idler is implemented by phys whose medium has real time; the transport
// idles through it during retransmission backoff so the platform (and
// any interference burst) can settle.
type Idler interface {
	Idle(d sim.Time)
}

// SyncPhy is implemented by phys with a self-synchronizing receiver
// (ufvariation.LinkPhy with Track enabled). It lets the transport
// distinguish a corrupted-but-synced reception from a desynchronized
// one and recover each differently: retransmitting into a desynced
// receiver fails identically every time, so the transport escalates to
// resynchronization instead.
type SyncPhy interface {
	// SyncState reports whether symbol tracking is enabled and whether
	// the last reception ended in symbol lock.
	SyncState() (tracking, locked bool)
	// Reacquire drops the synchronization state carried across
	// transmissions (phase and clock-error estimates), forcing the next
	// pilot reception to run a full frame acquisition.
	Reacquire()
}

// Verdict classifies one reception at the transport layer.
type Verdict int

const (
	// VerdictOK: the frame deframed with the expected sequence number.
	VerdictOK Verdict = iota
	// VerdictCorrupted: the frame failed to deframe but the receiver's
	// symbol clock was in lock — bit errors, worth a retransmission.
	VerdictCorrupted
	// VerdictDesynced: the frame failed and the receiver reports loss
	// of symbol lock — the stream was demodulated at the wrong phase,
	// and a blind retransmission would fail the same way.
	VerdictDesynced
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictCorrupted:
		return "corrupted"
	case VerdictDesynced:
		return "desynced"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// TransportConfig tunes the ARQ machine. The zero value of any field
// falls back to the DefaultTransportConfig value.
type TransportConfig struct {
	// ChunkSize is the data bytes per frame.
	ChunkSize int
	// Depth is the interleave depth on the wire.
	Depth int
	// Interval is the starting per-bit interval; MaxInterval bounds
	// the rate fallback (the interval doubles on repeated NACKs and
	// never exceeds it).
	Interval, MaxInterval sim.Time
	// RetriesPerRate is how many times one frame is retransmitted at a
	// given bit interval before the transport degrades the rate.
	RetriesPerRate int
	// BackoffBits is the base retransmission backoff, measured in bit
	// intervals; it doubles with each consecutive retry of a frame.
	BackoffBits int
	// RecalCorrectionRate is the Hamming correction rate (corrections
	// per codeword) above which the next transmission is preceded by a
	// calibration pilot.
	RecalCorrectionRate float64
}

// DefaultTransportConfig returns the configuration used by the
// reliability experiment: the paper's peak-capacity cross-core interval
// with four rate-halving steps of headroom.
func DefaultTransportConfig() TransportConfig {
	return TransportConfig{
		ChunkSize:           6,
		Depth:               4,
		Interval:            21 * sim.Millisecond,
		MaxInterval:         336 * sim.Millisecond,
		RetriesPerRate:      3,
		BackoffBits:         2,
		RecalCorrectionRate: 0.15,
	}
}

func (c TransportConfig) withDefaults() TransportConfig {
	d := DefaultTransportConfig()
	if c.ChunkSize <= 0 {
		c.ChunkSize = d.ChunkSize
	}
	if c.Depth <= 0 {
		c.Depth = d.Depth
	}
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = d.MaxInterval
	}
	if c.MaxInterval < c.Interval {
		c.MaxInterval = c.Interval
	}
	if c.RetriesPerRate <= 0 {
		c.RetriesPerRate = d.RetriesPerRate
	}
	if c.BackoffBits <= 0 {
		c.BackoffBits = d.BackoffBits
	}
	if c.RecalCorrectionRate <= 0 {
		c.RecalCorrectionRate = d.RecalCorrectionRate
	}
	return c
}

// FrameStats records one frame's fate.
type FrameStats struct {
	// Seq is the frame's sequence number; Bytes its payload size.
	Seq   byte
	Bytes int
	// Attempts is the total number of transmissions (1 = no
	// retransmission); Nacks how many failed to deframe; Desyncs the
	// subset of failures where the receiver was out of symbol lock.
	Attempts, Nacks, Desyncs int
	// Corrections is the total ECC corrections across all attempts.
	Corrections int
	// Pilots is how many attempts carried a recalibration preamble.
	Pilots int
	// Interval is the bit interval at which the frame was delivered.
	Interval sim.Time
	// Delivered is false only for a frame abandoned at the lowest rate.
	Delivered bool
}

// TransportStats aggregates a Send call.
type TransportStats struct {
	Frames []FrameStats
	// Transmissions counts every frame put on the air;
	// Retransmissions the subset beyond each frame's first attempt.
	Transmissions, Retransmissions int
	// Corrections is the total ECC corrections absorbed.
	Corrections int
	// Duplicates counts frames the receiver discarded by sequence
	// number after a lost acknowledgement; AckLosses the lost
	// acknowledgements themselves.
	Duplicates, AckLosses int
	// Recalibrations counts pilot transmissions; Degradations counts
	// bit-interval doublings.
	Recalibrations, Degradations int
	// Desyncs counts receptions the phy reported out of symbol lock;
	// Reacquisitions counts full acquisition resets the desync
	// escalation ordered.
	Desyncs, Reacquisitions int
	// BitsOnAir is the raw frame bits transmitted (excluding pilots
	// and acknowledgements); BackoffBits the idle bit intervals spent
	// in retransmission backoff.
	BitsOnAir, BackoffBits int
}

// Transport is a stop-and-wait ARQ sender/receiver pair over one Phy.
// The adaptive state (current bit interval, pending recalibration)
// persists across Send calls.
type Transport struct {
	cfg         TransportConfig
	phy         Phy
	interval    sim.Time
	pilotWanted bool
}

// NewTransport returns a transport over phy. Zero config fields take
// defaults.
func NewTransport(phy Phy, cfg TransportConfig) *Transport {
	cfg = cfg.withDefaults()
	return &Transport{cfg: cfg, phy: phy, interval: cfg.Interval}
}

// Interval returns the current per-bit interval (grows under
// degradation, persists across Send calls).
func (t *Transport) Interval() sim.Time { return t.interval }

// Send transfers data frame by frame and returns the bytes the receiver
// assembled plus the run's statistics. On an undeliverable frame (all
// retries exhausted at the maximum interval) it returns the prefix
// delivered so far and an error; every other failure mode degrades the
// rate instead of erroring.
func (t *Transport) Send(data []byte) ([]byte, TransportStats, error) {
	var stats TransportStats
	var out []byte
	seq := byte(0)
	for off := 0; off < len(data); {
		end := off + t.cfg.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		fs := FrameStats{Seq: seq, Bytes: end - off}
		delivered := false // receiver-side: frame content accepted
		retries := 0       // attempts at the current rate
		streak := 0        // consecutive failures of this frame
		desyncStreak := 0  // consecutive desynced verdicts of this frame
		for {
			fs.Attempts++
			stats.Transmissions++
			if fs.Attempts > 1 {
				stats.Retransmissions++
			}
			pilot := t.pilotWanted
			t.pilotWanted = false
			if pilot {
				fs.Pilots++
				stats.Recalibrations++
			}
			bits, err := Frame{Seq: seq, Data: data[off:end], Depth: t.cfg.Depth}.Bits()
			if err != nil {
				return out, stats, err
			}
			rx, err := t.phy.Transmit(bits, t.interval, pilot)
			if err != nil {
				return out, stats, err
			}
			stats.BitsOnAir += len(bits)
			got, rseq, corr, derr := Deframe(rx, t.cfg.Depth)
			fs.Corrections += corr
			stats.Corrections += corr
			if cw := (len(rx) - len(Sync)) / 7; cw > 0 &&
				float64(corr)/float64(cw) > t.cfg.RecalCorrectionRate {
				// The code is absorbing errors at a rate that says the
				// decoder's references have drifted: recalibrate before
				// the next transmission.
				t.pilotWanted = true
			}
			verdict := VerdictOK
			if derr != nil || rseq != seq {
				verdict = VerdictCorrupted
				if sp, isSync := t.phy.(SyncPhy); isSync {
					if tracking, locked := sp.SyncState(); tracking && !locked {
						verdict = VerdictDesynced
					}
				}
			}
			ok := verdict == VerdictOK
			if ok && delivered {
				// Duplicate after a lost acknowledgement: the receiver
				// recognises the sequence number, discards the copy,
				// and acknowledges again.
				stats.Duplicates++
			}
			ackSeen := t.phy.Feedback(ok)
			if ok {
				if !delivered {
					delivered = true
					out = append(out, got...)
				}
				if ackSeen {
					fs.Delivered = true
					fs.Interval = t.interval
					break
				}
				stats.AckLosses++
			} else {
				fs.Nacks++
			}
			// Retransmission path: back off, and degrade the rate when
			// the current one keeps failing.
			retries++
			streak++
			forceDegrade := false
			if verdict == VerdictDesynced {
				fs.Desyncs++
				stats.Desyncs++
				desyncStreak++
				// Desync escalation: a blind retransmission into an
				// unlocked receiver fails identically, so each repeat
				// escalates — first a recalibration pilot (whose
				// preamble re-acquires phase in-band), then a full
				// reacquisition with carried state dropped, then a rate
				// fallback (longer intervals widen every timing margin).
				t.pilotWanted = true
				if desyncStreak >= 2 {
					if sp, isSync := t.phy.(SyncPhy); isSync {
						sp.Reacquire()
						stats.Reacquisitions++
					}
				}
				if desyncStreak >= 3 {
					forceDegrade = true
					desyncStreak = 0
				}
			} else {
				desyncStreak = 0
				if verdict == VerdictCorrupted && streak >= 2 {
					// Two consecutive corruptions in lock: either the
					// references drifted or the receiver slipped bits
					// without noticing (a desync the symbol tracker
					// cannot see). A pilot repairs both.
					t.pilotWanted = true
				}
			}
			if retries > t.cfg.RetriesPerRate || forceDegrade {
				if t.interval*2 > t.cfg.MaxInterval {
					stats.Frames = append(stats.Frames, fs)
					return out, stats, fmt.Errorf("link: frame %d undeliverable after %d attempts (interval %v)",
						seq, fs.Attempts, t.interval)
				}
				t.interval *= 2
				stats.Degradations++
				// New rate, new latency statistics: recalibrate.
				t.pilotWanted = true
				retries = 0
			}
			shift := streak - 1
			if shift > 4 {
				shift = 4
			}
			bo := t.cfg.BackoffBits << uint(shift)
			stats.BackoffBits += bo
			if idler, isIdler := t.phy.(Idler); isIdler {
				idler.Idle(sim.Time(bo) * t.interval)
			}
		}
		stats.Frames = append(stats.Frames, fs)
		off = end
		seq++
	}
	return out, stats, nil
}
