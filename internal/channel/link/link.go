// Package link provides a small reliable link layer over the raw covert
// channels: Hamming(7,4) forward error correction, interleaving against
// burst errors (a stress-ng burst corrupts several consecutive intervals,
// §4.3.3), framing with a sync header, and a checksum for residual-error
// detection. The paper's channels deliver raw bits with a few percent BER
// near their capacity peak; this layer turns them into usable byte
// transport, as a real exfiltration tool would.
package link

import (
	"fmt"
	"sync"

	"repro/internal/channel"
)

// bitPool recycles the intermediate bit buffers of the encode/decode path
// (the padded payload, the flat codeword stream, the deinterleaved view).
// A transport retransmitting under ARQ re-encodes the same frame many
// times; without the pool each pass allocates three payload-sized slices.
// Only intermediates are pooled — buffers returned to callers are always
// freshly sized for exactly one result.
var bitPool = sync.Pool{
	New: func() any {
		b := make(channel.Bits, 0, 256)
		return &b
	},
}

// getBits returns a pooled buffer with length 0 and capacity at least n.
func getBits(n int) *channel.Bits {
	p := bitPool.Get().(*channel.Bits)
	if cap(*p) < n {
		*p = make(channel.Bits, 0, n)
	}
	*p = (*p)[:0]
	return p
}

func putBits(p *channel.Bits) { bitPool.Put(p) }

// hamming74Encode expands 4 data bits into a 7-bit codeword with
// single-error correction. Bit layout (1-indexed positions as in the
// classic construction): p1 p2 d1 p3 d2 d3 d4.
func hamming74Encode(nibble [4]int) [7]int {
	d1, d2, d3, d4 := nibble[0], nibble[1], nibble[2], nibble[3]
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return [7]int{p1, p2, d1, p3, d2, d3, d4}
}

// hamming74Decode corrects up to one flipped bit and returns the data
// nibble along with whether a correction was applied.
func hamming74Decode(cw [7]int) (nibble [4]int, corrected bool) {
	s1 := cw[0] ^ cw[2] ^ cw[4] ^ cw[6]
	s2 := cw[1] ^ cw[2] ^ cw[5] ^ cw[6]
	s3 := cw[3] ^ cw[4] ^ cw[5] ^ cw[6]
	syndrome := s1 | s2<<1 | s3<<2
	if syndrome != 0 {
		cw[syndrome-1] ^= 1
		corrected = true
	}
	return [4]int{cw[2], cw[4], cw[5], cw[6]}, corrected
}

// Encode applies Hamming(7,4) to a bit payload (padded to a multiple of
// four) and block-interleaves the codewords to depth, so a run of up to
// depth consecutive channel errors lands in distinct codewords and stays
// correctable. depth must be positive.
func Encode(bits channel.Bits, depth int) channel.Bits {
	if depth <= 0 {
		panic("link: interleave depth must be positive")
	}
	pp := getBits(len(bits) + 3)
	defer putBits(pp)
	padded := append(*pp, bits...)
	for len(padded)%4 != 0 {
		padded = append(padded, 0)
	}
	fp := getBits(len(padded) / 4 * 7)
	defer putBits(fp)
	flat := *fp
	for i := 0; i < len(padded); i += 4 {
		cw := hamming74Encode([4]int{padded[i], padded[i+1], padded[i+2], padded[i+3]})
		flat = append(flat, cw[:]...)
	}
	*pp, *fp = padded, flat
	return interleaveInto(make(channel.Bits, 0, len(flat)), flat, depth)
}

// Decode reverses Encode, returning n payload bits and the number of
// single-bit corrections the code absorbed.
func Decode(coded channel.Bits, n, depth int) (channel.Bits, int, error) {
	if depth <= 0 {
		return nil, 0, fmt.Errorf("link: interleave depth must be positive")
	}
	if len(coded)%7 != 0 {
		return nil, 0, fmt.Errorf("link: coded length %d is not a whole number of codewords", len(coded))
	}
	fp := getBits(len(coded))
	defer putBits(fp)
	flat := deinterleaveInto((*fp)[:0], coded, depth)
	*fp = flat
	out := make(channel.Bits, 0, len(flat)/7*4)
	corrections := 0
	for i := 0; i+7 <= len(flat); i += 7 {
		var cw [7]int
		copy(cw[:], flat[i:i+7])
		nib, corrected := hamming74Decode(cw)
		if corrected {
			corrections++
		}
		out = append(out, nib[:]...)
	}
	if len(out) < n {
		return nil, corrections, fmt.Errorf("link: decoded %d bits, need %d", len(out), n)
	}
	return out[:n], corrections, nil
}

// interleave writes bits row-major into a depth-row matrix and reads them
// column-major, dispersing bursts. A depth of at least len(bits) is a
// single-column matrix — the identity — and short-circuits, which also
// bounds the work to O(len(bits)) for absurd depths from hostile input.
func interleave(bits channel.Bits, depth int) channel.Bits {
	return interleaveInto(make(channel.Bits, 0, len(bits)), bits, depth)
}

// interleaveInto is interleave appending into dst (which must not alias
// bits), for callers that size or pool the destination themselves.
func interleaveInto(dst, bits channel.Bits, depth int) channel.Bits {
	if depth == 1 || len(bits) == 0 || depth >= len(bits) {
		return append(dst, bits...)
	}
	cols := (len(bits) + depth - 1) / depth
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			idx := r*cols + c
			if idx < len(bits) {
				dst = append(dst, bits[idx])
			}
		}
	}
	return dst
}

// deinterleave inverts interleave for the same depth and length.
func deinterleave(bits channel.Bits, depth int) channel.Bits {
	return deinterleaveInto(make(channel.Bits, 0, len(bits)), bits, depth)
}

// deinterleaveInto is deinterleave writing into dst's backing array (dst
// must be length 0 and must not alias bits).
func deinterleaveInto(dst, bits channel.Bits, depth int) channel.Bits {
	if depth == 1 || len(bits) == 0 || depth >= len(bits) {
		return append(dst, bits...)
	}
	cols := (len(bits) + depth - 1) / depth
	// Seed the output at full length; the loop below overwrites every
	// index exactly once (the interleave is a permutation).
	out := append(dst, bits...)
	pos := 0
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			idx := r*cols + c
			if idx < len(bits) {
				out[idx] = bits[pos]
				pos++
			}
		}
	}
	return out
}

// Sync is the frame header: distinctive and resistant to constant-decode
// failure modes (a dead channel decoding all zeros or all ones never
// matches).
var Sync = channel.Bits{1, 1, 0, 1, 0, 0, 1, 0}

// crc8 computes CRC-8 (polynomial 0x07, init 0, MSB-first — the
// CRC-8/SMBus parameters) over data. Unlike the additive checksum it
// replaces, it detects all two-bit errors within the frame and any pair
// of byte errors that cancel additively (e.g. swapped bytes).
func crc8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Frame wraps data bytes for one transmission: sync header, then an
// ECC-protected body of sequence number, 8-bit length, payload, and a
// CRC-8 over all three.
type Frame struct {
	// Seq is the stop-and-wait sequence number; the receiver uses it
	// to discard duplicates after a lost acknowledgement.
	Seq  byte
	Data []byte
	// Depth is the interleave depth used on the wire.
	Depth int
}

// Bits serialises the frame for the raw channel.
func (f Frame) Bits() (channel.Bits, error) {
	if len(f.Data) > 255 {
		return nil, fmt.Errorf("link: frame of %d bytes exceeds the 255-byte limit", len(f.Data))
	}
	depth := f.Depth
	if depth <= 0 {
		depth = 4
	}
	// Build the body in a fresh buffer: appending to f.Data directly
	// would scribble the trailer into the caller's backing array.
	body := make([]byte, 0, len(f.Data)+3)
	body = append(body, f.Seq)
	body = append(body, byte(len(f.Data)))
	body = append(body, f.Data...)
	body = append(body, crc8(body))
	out := append(channel.Bits{}, Sync...)
	return append(out, Encode(channel.FromBytes(body), depth)...), nil
}

// WireLength returns the number of raw channel bits a frame of n data
// bytes occupies at the given interleave depth.
func WireLength(n, depth int) int {
	body := (n + 3) * 8 // seq + length byte + data + CRC-8
	return len(Sync) + (body+3)/4*7
}

// Deframe parses received raw bits back into the data bytes and the
// frame's sequence number. It verifies the sync header and the CRC and
// reports the ECC correction count (which it returns even on error, so
// callers can track the correction rate of failing links).
func Deframe(raw channel.Bits, depth int) (data []byte, seq byte, corrections int, err error) {
	if depth <= 0 {
		depth = 4
	}
	if len(raw) < len(Sync) {
		return nil, 0, 0, fmt.Errorf("link: frame shorter than the sync header")
	}
	mismatches := 0
	for i, b := range Sync {
		if raw[i] != b {
			mismatches++
		}
	}
	// The header is not ECC-protected; tolerate one flipped bit, as a
	// correlating receiver would.
	if mismatches > 1 {
		return nil, 0, 0, fmt.Errorf("link: sync header mismatch (%d bits)", mismatches)
	}
	body, corrections, err := Decode(raw[len(Sync):], (len(raw)-len(Sync))/7*4, depth)
	if err != nil {
		return nil, 0, corrections, err
	}
	// Trim the nibble padding down to whole bytes.
	body = body[:len(body)/8*8]
	bytes, err := body.ToBytes()
	if err != nil {
		return nil, 0, corrections, err
	}
	if len(bytes) < 3 {
		return nil, 0, corrections, fmt.Errorf("link: frame body too short")
	}
	seq = bytes[0]
	n := int(bytes[1])
	if len(bytes) < 3+n {
		return nil, seq, corrections, fmt.Errorf("link: frame claims %d bytes, carries %d", n, len(bytes)-3)
	}
	data = bytes[2 : 2+n]
	if crc8(bytes[:2+n]) != bytes[2+n] {
		return nil, seq, corrections, fmt.Errorf("link: CRC mismatch")
	}
	return data, seq, corrections, nil
}
