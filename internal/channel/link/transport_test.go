package link

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/channel"
	"repro/internal/sim"
)

// noisyWire returns a corruption function flipping each bit with
// probability p, drawn deterministically from seed.
func noisyWire(seed uint64, p float64) func(channel.Bits, sim.Time) channel.Bits {
	rng := sim.NewRand(seed)
	return func(bits channel.Bits, _ sim.Time) channel.Bits {
		for i := range bits {
			if rng.Bool(p) {
				bits[i] ^= 1
			}
		}
		return bits
	}
}

func TestTransportCleanWire(t *testing.T) {
	phy := &LoopbackPhy{}
	tr := NewTransport(phy, TransportConfig{ChunkSize: 5})
	payload := []byte("a clean wire needs no ARQ at all")
	got, stats, err := tr.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q", got)
	}
	wantFrames := (len(payload) + 4) / 5
	if len(stats.Frames) != wantFrames {
		t.Errorf("%d frames, want %d", len(stats.Frames), wantFrames)
	}
	if stats.Retransmissions != 0 || stats.Degradations != 0 || stats.Recalibrations != 0 {
		t.Errorf("clean wire produced retrans=%d degrade=%d recal=%d",
			stats.Retransmissions, stats.Degradations, stats.Recalibrations)
	}
	if stats.Transmissions != wantFrames {
		t.Errorf("%d transmissions for %d frames", stats.Transmissions, wantFrames)
	}
}

func TestTransportSurvivesNoisyWire(t *testing.T) {
	phy := &LoopbackPhy{Corrupt: noisyWire(11, 0.02)}
	tr := NewTransport(phy, TransportConfig{ChunkSize: 6})
	payload := []byte("retransmission turns a lossy link into a reliable one, eventually")
	got, stats, err := tr.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q, want %q", got, payload)
	}
	if stats.Corrections == 0 {
		t.Error("a 2% wire exercised no ECC corrections")
	}
	for _, fs := range stats.Frames {
		if !fs.Delivered {
			t.Errorf("frame %d not delivered", fs.Seq)
		}
	}
}

// TestTransportReproducible: the same seeds must yield bit-for-bit
// identical transcripts — the property every faulted experiment relies
// on.
func TestTransportReproducible(t *testing.T) {
	run := func() ([]byte, TransportStats) {
		ackRng := sim.NewRand(99)
		phy := &LoopbackPhy{
			Corrupt: noisyWire(12, 0.04),
			AckLoss: func() bool { return ackRng.Bool(0.2) },
		}
		tr := NewTransport(phy, TransportConfig{ChunkSize: 4})
		got, stats, err := tr.Send([]byte("deterministic faults, deterministic recovery"))
		if err != nil {
			t.Fatal(err)
		}
		return got, stats
	}
	got1, stats1 := run()
	got2, stats2 := run()
	if !bytes.Equal(got1, got2) {
		t.Error("same seed, different payloads")
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Errorf("same seed, different transcripts:\n%+v\n%+v", stats1, stats2)
	}
}

// TestTransportDegradesRateInsteadOfFailing: a wire unusable at the
// starting interval but clean once the interval has doubled twice must
// be survived by rate fallback, not an error.
func TestTransportDegradesRateInsteadOfFailing(t *testing.T) {
	base := 21 * sim.Millisecond
	rng := sim.NewRand(13)
	phy := &LoopbackPhy{
		Corrupt: func(bits channel.Bits, interval sim.Time) channel.Bits {
			if interval >= 4*base {
				return bits // slow enough: clean
			}
			for i := range bits {
				if rng.Bool(0.3) {
					bits[i] ^= 1
				}
			}
			return bits
		},
	}
	tr := NewTransport(phy, TransportConfig{ChunkSize: 8, Interval: base, MaxInterval: 16 * base})
	payload := []byte("slow but delivered")
	got, stats, err := tr.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q", got)
	}
	if stats.Degradations < 2 {
		t.Errorf("%d degradations, want ≥2 (wire only usable at 4× interval)", stats.Degradations)
	}
	if tr.Interval() < 4*base {
		t.Errorf("final interval %v, want ≥ %v", tr.Interval(), 4*base)
	}
	if stats.Recalibrations == 0 {
		t.Error("rate fallback should have requested a pilot recalibration")
	}
	if stats.BackoffBits == 0 || phy.Idled == 0 {
		t.Error("retransmissions should have backed off through the phy")
	}
}

// TestTransportUndeliverableFrame: with no fallback headroom and a dead
// wire, Send must return the delivered prefix and an error.
func TestTransportUndeliverableFrame(t *testing.T) {
	phy := &LoopbackPhy{
		Corrupt: func(bits channel.Bits, _ sim.Time) channel.Bits {
			for i := range bits {
				bits[i] = 0
			}
			return bits
		},
	}
	iv := 21 * sim.Millisecond
	tr := NewTransport(phy, TransportConfig{Interval: iv, MaxInterval: iv, RetriesPerRate: 2})
	got, stats, err := tr.Send([]byte("void"))
	if err == nil {
		t.Fatal("dead wire delivered")
	}
	if len(got) != 0 {
		t.Errorf("dead wire produced %q", got)
	}
	if stats.Transmissions != 3 { // 1 + RetriesPerRate
		t.Errorf("%d transmissions before giving up, want 3", stats.Transmissions)
	}
}

// TestTransportAckLossDeduplicates: a delivered frame whose ACK is lost
// is retransmitted; the receiver must discard the duplicate by sequence
// number so the payload is not doubled.
func TestTransportAckLossDeduplicates(t *testing.T) {
	lost := false
	phy := &LoopbackPhy{
		AckLoss: func() bool {
			if !lost {
				lost = true
				return true
			}
			return false
		},
	}
	tr := NewTransport(phy, TransportConfig{ChunkSize: 16})
	payload := []byte("exactly once")
	got, stats, err := tr.Send(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("received %q, want %q (duplicate not discarded?)", got, payload)
	}
	if stats.AckLosses != 1 || stats.Duplicates != 1 {
		t.Errorf("ackLosses=%d duplicates=%d, want 1/1", stats.AckLosses, stats.Duplicates)
	}
	if stats.Frames[0].Attempts != 2 {
		t.Errorf("frame took %d attempts, want 2", stats.Frames[0].Attempts)
	}
}

// TestTransportConcurrentRunsAreIndependent runs several transports in
// parallel (the shape of concurrent experiment sweeps); under -race this
// also proves the package keeps no shared mutable state.
func TestTransportConcurrentRunsAreIndependent(t *testing.T) {
	payload := []byte("no shared state between concurrent channel stacks")
	var wg sync.WaitGroup
	results := make([][]byte, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phy := &LoopbackPhy{Corrupt: noisyWire(uint64(100+i), 0.03)}
			tr := NewTransport(phy, TransportConfig{ChunkSize: 7})
			got, _, err := tr.Send(payload)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = got
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(got, payload) {
			t.Errorf("run %d received %q", i, got)
		}
	}
}
