package link

import (
	"testing"

	"repro/internal/channel"
)

// FuzzDeframe hardens the deframer against arbitrary input: whatever
// bits a broken or adversarial channel delivers, at whatever claimed
// interleave depth, Deframe must return an error rather than panic or
// over-read, and an accepted frame must re-serialise to a consistent
// wire length.
func FuzzDeframe(f *testing.F) {
	f.Add([]byte{}, 4, uint8(0))
	f.Add([]byte{0xff}, 0, uint8(3))
	f.Add([]byte{0xd2, 0x00, 0x00}, -1, uint8(0))
	f.Add([]byte{0xd2, 0xff, 0xff, 0xff, 0xff}, 1, uint8(7))
	if valid, err := (Frame{Seq: 9, Data: []byte("hi"), Depth: 4}).Bits(); err == nil {
		packed := make([]byte, (len(valid)+7)/8)
		for i, b := range valid {
			if b != 0 {
				packed[i/8] |= 1 << (7 - i%8)
			}
		}
		f.Add(packed, 4, uint8(0))
		f.Add(packed, 7, uint8(1))
		f.Add(packed, 1<<30, uint8(5))
	}
	f.Fuzz(func(t *testing.T, data []byte, depth int, trunc uint8) {
		bits := channel.FromBytes(data)
		// Truncate to exercise non-byte-aligned lengths.
		if cut := int(trunc) % (len(bits) + 1); cut > 0 {
			bits = bits[:len(bits)-cut]
		}
		payload, seq, corrections, err := Deframe(bits, depth)
		if corrections < 0 {
			t.Fatalf("negative correction count %d", corrections)
		}
		if err != nil {
			return
		}
		if len(payload) > 255 {
			t.Fatalf("deframed %d bytes from a 255-byte-max format", len(payload))
		}
		// An accepted frame must be re-framable: the parsed fields are
		// internally consistent.
		if _, ferr := (Frame{Seq: seq, Data: payload, Depth: depth}).Bits(); ferr != nil {
			t.Fatalf("accepted frame does not re-serialise: %v", ferr)
		}
	})
}
