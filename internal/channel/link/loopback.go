package link

import (
	"repro/internal/channel"
	"repro/internal/sim"
)

// LoopbackPhy is a zero-latency Phy whose medium is a corruption
// function: ideal for unit-testing the ARQ machine against controlled
// fault processes without a simulated platform. Pilot transmissions are
// counted but carry no preamble (a loopback needs no calibration).
type LoopbackPhy struct {
	// Corrupt post-processes transmitted bits; nil is a clean wire.
	// The interval lets fault processes modulate with the rate (a
	// slower channel averages more noise per bit).
	Corrupt func(bits channel.Bits, interval sim.Time) channel.Bits
	// AckLoss drops the reverse-channel verdict when it returns true;
	// nil is a reliable reverse channel.
	AckLoss func() bool

	// Transmissions and Pilots count Transmit calls; Idled sums the
	// backoff the transport requested.
	Transmissions, Pilots int
	Idled                 sim.Time
}

// Transmit implements Phy.
func (p *LoopbackPhy) Transmit(bits channel.Bits, interval sim.Time, pilot bool) (channel.Bits, error) {
	p.Transmissions++
	if pilot {
		p.Pilots++
	}
	if p.Corrupt == nil {
		return append(channel.Bits{}, bits...), nil
	}
	return p.Corrupt(append(channel.Bits{}, bits...), interval), nil
}

// Feedback implements Phy.
func (p *LoopbackPhy) Feedback(ack bool) bool {
	if !ack {
		return false
	}
	if p.AckLoss != nil && p.AckLoss() {
		return false
	}
	return true
}

// Idle implements Idler.
func (p *LoopbackPhy) Idle(d sim.Time) { p.Idled += d }
