package channel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRandomBits(t *testing.T) {
	rng := sim.NewRand(1)
	b := RandomBits(rng, 1000)
	if len(b) != 1000 {
		t.Fatalf("len = %d", len(b))
	}
	ones := 0
	for _, bit := range b {
		if bit != 0 && bit != 1 {
			t.Fatalf("non-binary bit %d", bit)
		}
		ones += bit
	}
	if ones < 400 || ones > 600 {
		t.Errorf("%d/1000 ones; badly skewed", ones)
	}
}

func TestBytesRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		bits := FromBytes(data)
		if len(bits) != len(data)*8 {
			return false
		}
		back, err := bits.ToBytes()
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsString(t *testing.T) {
	if got := (Bits{1, 0, 1, 1}).String(); got != "1011" {
		t.Errorf("String() = %q", got)
	}
	if got := (Bits{}).String(); got != "" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestEvaluate(t *testing.T) {
	sent := Bits{1, 0, 1, 0}
	got := Bits{1, 0, 0, 0}
	res := Evaluate(sent, got, 25*sim.Millisecond)
	if res.BER != 0.25 {
		t.Errorf("BER = %v", res.BER)
	}
	if res.RawRate != 40 {
		t.Errorf("raw rate = %v", res.RawRate)
	}
	if res.Capacity >= res.RawRate || res.Capacity <= 0 {
		t.Errorf("capacity = %v out of range", res.Capacity)
	}
	clean := Evaluate(sent, sent, 25*sim.Millisecond)
	if clean.Capacity != clean.RawRate {
		t.Error("error-free capacity below raw rate")
	}
}

// TestEvaluateMismatchedLengths pins the truncation contract: a receive
// that is shorter or longer than the payload scores its unmatched bits
// as errors instead of panicking or trimming.
func TestEvaluateMismatchedLengths(t *testing.T) {
	iv := 25 * sim.Millisecond
	cases := []struct {
		name      string
		sent, got Bits
		wantBER   float64
	}{
		{"truncated clean prefix", Bits{1, 0, 1, 0}, Bits{1, 0}, 0.5},
		{"truncated dirty prefix", Bits{1, 0, 1, 0}, Bits{0, 0}, 0.75},
		{"nothing received", Bits{1, 0, 1, 0}, nil, 1},
		{"over-long receive", Bits{1, 0}, Bits{1, 0, 1, 1}, 0.5},
	}
	for _, c := range cases {
		res := Evaluate(c.sent, c.got, iv)
		if res.BER != c.wantBER {
			t.Errorf("%s: BER = %v, want %v", c.name, res.BER, c.wantBER)
		}
		if res.BER < 0 || res.BER > 1 {
			t.Errorf("%s: BER %v outside [0, 1]", c.name, res.BER)
		}
	}
	// A fully lost payload must never be reported as functional.
	if Evaluate(Bits{1, 0, 1, 1, 0, 1}, nil, iv).Functional() {
		t.Error("empty receive reported functional")
	}
}

func TestFunctionalThreshold(t *testing.T) {
	// The Table 3 criterion: below a third is still "distinguishable",
	// chance level is not.
	if !(Result{BER: 0.2}).Functional() {
		t.Error("BER 0.2 not functional")
	}
	if (Result{BER: 0.5}).Functional() {
		t.Error("chance level reported functional")
	}
	if (Result{BER: 0.4}).Functional() {
		t.Error("BER 0.4 reported functional")
	}
}
