package sweepd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetrierJitterDivergesAcrossWorkers: two workers with identical
// configuration (same failure history, same retry base) draw different
// backoff schedules, because each seeds its jitter stream from its own
// ID. Identical schedules are the thundering herd: every worker would
// return at the same instant forever.
func TestRetrierJitterDivergesAcrossWorkers(t *testing.T) {
	schedule := func(id string) []time.Duration {
		w := NewWorker(WorkerConfig{
			ID: "worker-" + id, Client: Loopback{},
			Run: func(ctx context.Context, u Unit, p func(string)) UnitResult { return UnitResult{} },
		})
		r := w.newRetrier("lease")
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = r.next()
		}
		return out
	}
	a, b := schedule("a"), schedule("b")
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("two workers drew identical backoff schedules %v — no jitter", a)
	}
	// And a worker is deterministic against itself: reruns reproduce.
	if a2 := schedule("a"); len(a2) != len(a) || a2[0] != a[0] || a2[7] != a[7] {
		t.Fatalf("same worker drew different schedules across runs: %v vs %v", a, a2)
	}
}

// TestRetrierBackoffShape: waits are positive, capped at max, and grow
// in expectation; reset rewinds; stretch never shrinks a server hint.
func TestRetrierBackoffShape(t *testing.T) {
	w := NewWorker(WorkerConfig{
		ID: "shape", Client: Loopback{},
		Run:       func(ctx context.Context, u Unit, p func(string)) UnitResult { return UnitResult{} },
		RetryBase: 10 * time.Millisecond, PollMax: 80 * time.Millisecond,
	})
	r := w.newRetrier("lease")
	for i := 0; i < 50; i++ {
		d := r.next()
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("wait %d = %v out of (0, PollMax]", i, d)
		}
	}
	r.reset()
	if d := r.next(); d > 10*time.Millisecond {
		t.Fatalf("first wait after reset = %v, want <= base", d)
	}
	for i := 0; i < 100; i++ {
		hint := 40 * time.Millisecond
		got := r.stretch(hint)
		if got < hint || got > hint+hint/2 {
			t.Fatalf("stretch(%v) = %v, want within [hint, 1.5×hint]", hint, got)
		}
	}
}

// flakyClient fails every call with a transport error until healed.
type flakyClient struct {
	healed atomic.Bool
	calls  atomic.Int64
}

func (f *flakyClient) outcome() error {
	f.calls.Add(1)
	if f.healed.Load() {
		return nil
	}
	return errors.New("connection refused")
}

func (f *flakyClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return LeaseResponse{Done: true}, f.outcome()
}
func (f *flakyClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return HeartbeatResponse{}, f.outcome()
}
func (f *flakyClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return CompleteResponse{}, f.outcome()
}
func (f *flakyClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	return CompleteBatchResponse{}, f.outcome()
}
func (f *flakyClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return ReleaseResponse{}, f.outcome()
}

// TestBreakerTripsFastFailsAndRecovers walks the breaker through its
// whole state machine on a manual clock: consecutive transport failures
// trip it open, calls inside the cooldown fast-fail locally (the inner
// client is never touched), the cooldown admits exactly one probe, a
// failed probe re-trips, and a successful probe closes it again.
func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	inner := &flakyClient{}
	b := &breakerClient{inner: inner, clock: clk, after: 3, cooldown: time.Second}
	ctx := context.Background()

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if _, err := b.Lease(ctx, LeaseRequest{}); err == nil {
			t.Fatalf("call %d: inner failure not surfaced", i)
		}
	}
	if st := b.snapshot(); st.Trips != 1 {
		t.Fatalf("after %d failures: %+v, want 1 trip", 3, st)
	}

	// Open: calls fast-fail without touching the coordinator.
	before := inner.calls.Load()
	for i := 0; i < 5; i++ {
		if _, err := b.Heartbeat(ctx, HeartbeatRequest{}); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open-breaker call %d returned %v, want ErrBreakerOpen", i, err)
		}
	}
	if got := inner.calls.Load(); got != before {
		t.Fatalf("open breaker let %d calls through", got-before)
	}
	if st := b.snapshot(); st.FastFails != 5 {
		t.Fatalf("fast fails %d, want 5", st.FastFails)
	}

	// Cooldown over: one probe goes through; it fails, so the breaker
	// re-trips immediately (no three-strike grace in half-open).
	clk.Advance(time.Second)
	if _, err := b.Lease(ctx, LeaseRequest{}); err == nil {
		t.Fatal("failed probe reported success")
	}
	if st := b.snapshot(); st.Probes != 1 || st.Trips != 2 {
		t.Fatalf("after failed probe: %+v, want 1 probe and 2 trips", st)
	}
	if _, err := b.Lease(ctx, LeaseRequest{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call right after failed probe returned %v, want ErrBreakerOpen", err)
	}

	// Heal the coordinator; the next probe closes the breaker for good.
	inner.healed.Store(true)
	clk.Advance(time.Second)
	if _, err := b.Lease(ctx, LeaseRequest{}); err != nil {
		t.Fatalf("healed probe failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Complete(ctx, CompleteRequest{}); err != nil {
			t.Fatalf("closed-breaker call %d: %v", i, err)
		}
	}
	if st := b.snapshot(); st.Probes != 2 || st.Trips != 2 {
		t.Fatalf("after recovery: %+v, want 2 probes and no new trip", st)
	}
}

// TestBreakerIgnoresShedAndCancel: OverloadError (the coordinator is
// alive, just shedding) resets the failure streak, and the caller's own
// cancellation counts as nothing at all.
func TestBreakerIgnoresShedAndCancel(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	b := &breakerClient{inner: &flakyClient{}, clock: clk, after: 2, cooldown: time.Second}

	b.record(errors.New("transport down")) // streak 1 of 2
	b.record(&OverloadError{Endpoint: EndpointLease, RetryAfter: time.Second})
	b.record(errors.New("transport down")) // streak back to 1
	if st := b.snapshot(); st.Trips != 0 {
		t.Fatalf("shed response did not reset the streak: %+v", st)
	}
	b.record(context.Canceled) // neutral: says nothing about the server
	b.record(errors.New("transport down"))
	if st := b.snapshot(); st.Trips != 1 {
		t.Fatalf("streak accounting wrong after cancel: %+v", st)
	}
}

// TestWorkerDisablesBreaker: a negative BreakerAfter removes the
// breaker entirely — the client chain is untouched and stats are zero.
func TestWorkerDisablesBreaker(t *testing.T) {
	w := NewWorker(WorkerConfig{
		ID: "nobreaker", Client: Loopback{},
		Run:          func(ctx context.Context, u Unit, p func(string)) UnitResult { return UnitResult{} },
		BreakerAfter: -1,
	})
	if w.breaker != nil {
		t.Fatal("breaker installed despite BreakerAfter < 0")
	}
	if st := w.BreakerStats(); st != (BreakerStats{}) {
		t.Fatalf("disabled breaker reported stats %+v", st)
	}
}

// countingClient tallies protocol round trips to the coordinator.
type countingClient struct {
	inner                 Client
	leases, completes     atomic.Int64
	batches, batchedUnits atomic.Int64
	heartbeats, releases  atomic.Int64
}

func (c *countingClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	c.leases.Add(1)
	return c.inner.Lease(ctx, req)
}
func (c *countingClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	c.heartbeats.Add(1)
	return c.inner.Heartbeat(ctx, req)
}
func (c *countingClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	c.completes.Add(1)
	return c.inner.Complete(ctx, req)
}
func (c *countingClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	c.batches.Add(1)
	c.batchedUnits.Add(int64(len(req.Units)))
	return c.inner.CompleteBatch(ctx, req)
}
func (c *countingClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	c.releases.Add(1)
	return c.inner.Release(ctx, req)
}

// TestBatchedCompletesFewerRoundTrips: with BatchCompletes a worker
// running units concurrently ships strictly fewer completion round
// trips than units completed — the point of the batch — and zero
// per-unit Completes; the sweep still merges every unit exactly once.
func TestBatchedCompletesFewerRoundTrips(t *testing.T) {
	const nUnits = 12
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(nUnits))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	counter := &countingClient{inner: Loopback{C: c}}
	var mu sync.Mutex
	exec := map[UnitID]int{}
	w := NewWorker(WorkerConfig{
		ID: "batcher", Client: counter,
		Run:            okRunner(&mu, exec)("batcher"),
		Jobs:           6,
		BatchCompletes: true,
		BatchLinger:    50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}

	st := c.Snapshot()
	if st.Done != nUnits {
		t.Fatalf("done=%d, want %d", st.Done, nUnits)
	}
	for _, u := range st.Units {
		if u.Completions != 1 {
			t.Fatalf("%s merged %d times, want 1", u.Unit.ID, u.Completions)
		}
	}
	if got := counter.completes.Load(); got != 0 {
		t.Fatalf("%d per-unit Complete calls despite batching", got)
	}
	if counter.batchedUnits.Load() != nUnits {
		t.Fatalf("batches carried %d units, want %d", counter.batchedUnits.Load(), nUnits)
	}
	if b := counter.batches.Load(); b == 0 || b >= nUnits {
		t.Fatalf("%d batch round trips for %d units — batching saved nothing", b, nUnits)
	}
	t.Logf("batched: %d units in %d round trips (vs %d unbatched)",
		nUnits, counter.batches.Load(), nUnits)
}

// TestBatchedCompletesSurviveShedding: every CompleteBatch is shed with
// a retry hint a few times before being admitted; the batch is
// redelivered and the sweep still merges exactly once.
func TestBatchedCompletesSurviveShedding(t *testing.T) {
	const nUnits = 6
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(nUnits))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	var drops atomic.Int64
	shedder := &sheddingClient{inner: Loopback{C: c}, shedFirst: 2, drops: &drops}
	var mu sync.Mutex
	exec := map[UnitID]int{}
	w := NewWorker(WorkerConfig{
		ID: "shedded", Client: shedder,
		Run:            okRunner(&mu, exec)("shedded"),
		Jobs:           3,
		BatchCompletes: true,
		RetryBase:      time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := c.Snapshot()
	if st.Done != nUnits {
		t.Fatalf("done=%d, want %d (batches lost to shedding?)", st.Done, nUnits)
	}
	for _, u := range st.Units {
		if u.Completions != 1 {
			t.Fatalf("%s merged %d times, want 1", u.Unit.ID, u.Completions)
		}
	}
	if drops.Load() == 0 {
		t.Fatal("shedder never shed a batch; test proved nothing")
	}
}

// sheddingClient sheds the first shedFirst CompleteBatch calls with an
// OverloadError, then admits everything.
type sheddingClient struct {
	inner     Client
	shedFirst int64
	seen      atomic.Int64
	drops     *atomic.Int64
}

func (s *sheddingClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return s.inner.Lease(ctx, req)
}
func (s *sheddingClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return s.inner.Heartbeat(ctx, req)
}
func (s *sheddingClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return s.inner.Complete(ctx, req)
}
func (s *sheddingClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	if s.seen.Add(1) <= s.shedFirst {
		s.drops.Add(1)
		return CompleteBatchResponse{}, &OverloadError{Endpoint: EndpointComplete, RetryAfter: 2 * time.Millisecond}
	}
	return s.inner.CompleteBatch(ctx, req)
}
func (s *sheddingClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return s.inner.Release(ctx, req)
}
