package sweepd

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/faults"
)

// The crashpoint-exhaustive recovery test: run a scripted sweep —
// completions, failures, a quarantine, a lease expiry, compactions —
// over the in-memory crash-model filesystem, count every mutating disk
// operation it performs, then replay the script once per boundary with
// a kill armed exactly there. After each kill the "machine reboots"
// (DiskFS.Crash discards everything volatile, tearing any unsynced
// tail) and a fresh coordinator resumes from whatever survived. The
// invariants, at every single boundary:
//
//   - resume never fails (a torn journal tail is routine, not fatal);
//   - no phantom state: a unit resumed as done must be one the script
//     durably completed, resumed quarantine must be script-earned;
//   - the sweep then finishes, with every unit done or quarantined and
//     no unit merged more than once per coordinator ledger.

// crashUnits is the scripted grid: u00 completes, u01 goes poison,
// u02 survives a lease expiry then completes.
func crashUnits() []Unit { return testUnits(3) }

func crashScriptConfig(d *faults.DiskFS, clk *ManualClock, resume bool) CoordinatorConfig {
	return CoordinatorConfig{
		LeaseTTL:        time.Minute,
		ExpiryBudget:    3,
		QuarantineAfter: 2,
		RetryBase:       time.Second,
		RetryJitter:     0,
		Clock:           clk,
		StateDir:        "state",
		FS:              d,
		Resume:          resume,
		// Compact every two records so the script crosses several
		// generation rolls — the multi-file commit protocol is where
		// crash bugs hide.
		SnapshotEvery: 2,
		Log:           io.Discard,
	}
}

// tryLease leases one unit, tolerating refusal (mid-script the
// coordinator may be degraded because the armed crash already fired).
func tryLease(c *Coordinator, worker string) (LeasedUnit, bool) {
	resp := c.Lease(LeaseRequest{Worker: worker, Max: 1})
	if len(resp.Units) != 1 {
		return LeasedUnit{}, false
	}
	return resp.Units[0], true
}

// runCrashScript drives the scripted sweep over d until it finishes or
// the armed crash makes the coordinator unusable. All in-memory
// coordinator behavior is deterministic; only persistence fails.
func runCrashScript(d *faults.DiskFS) {
	clk := NewManualClock(time.Unix(0, 0))
	c, err := NewCoordinator(crashScriptConfig(d, clk, false), crashUnits())
	if err != nil {
		return // crashed during open: the dir holds a partial bootstrap
	}
	defer c.Close()

	// u00: lease and complete.
	if lu, ok := tryLease(c, "w1"); ok {
		c.Complete(CompleteRequest{Worker: "w1", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "res:" + string(lu.Unit.ID)})
	}
	// u01: fails on two distinct workers → quarantined.
	if lu, ok := tryLease(c, "w1"); ok {
		c.Complete(CompleteRequest{Worker: "w1", Unit: lu.Unit.ID, Epoch: lu.Epoch, Error: "poison"})
	}
	clk.Advance(2 * time.Second) // clear the retry backoff
	if lu, ok := tryLease(c, "w2"); ok {
		c.Complete(CompleteRequest{Worker: "w2", Unit: lu.Unit.ID, Epoch: lu.Epoch, Error: "poison"})
	}
	// u02: leased by a worker that dies silently; the lease expires.
	if _, ok := tryLease(c, "w3"); ok {
		clk.Advance(2 * time.Minute)
		c.Quiesced() // reap the expiry
	}
	clk.Advance(2 * time.Second)
	// u02 again: completes on a healthy worker, finishing the sweep.
	if lu, ok := tryLease(c, "w4"); ok {
		c.Complete(CompleteRequest{Worker: "w4", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "res:" + string(lu.Unit.ID)})
	}
}

func TestCrashpointExhaustiveRecovery(t *testing.T) {
	// Clean run: count the workload's mutating-op boundaries.
	clean := faults.NewDiskFS(0xC0FFEE)
	runCrashScript(clean)
	total := clean.Ops()
	if total < 40 {
		t.Fatalf("script performed only %d mutating ops; too few boundaries to be interesting", total)
	}

	// The script only ever completes u00 and u02 successfully, and only
	// u01 can be quarantined — anything else resumed is phantom state.
	okDone := map[UnitID]bool{"u00": true, "u02": true}

	for k := 0; k < total; k++ {
		k := k
		t.Run(fmt.Sprintf("boundary-%03d", k), func(t *testing.T) {
			d := faults.NewDiskFS(0xC0FFEE)
			d.CrashAfter(k)
			runCrashScript(d)
			if !d.Crashed() {
				t.Fatalf("boundary %d/%d never hit", k, total)
			}
			d.Crash() // reboot: volatile state gone, tails may tear

			clk := NewManualClock(time.Unix(1000, 0))
			c, err := NewCoordinator(crashScriptConfig(d, clk, true), crashUnits())
			if err != nil {
				t.Fatalf("resume after crash at boundary %d failed: %v", k, err)
			}
			defer c.Close()

			// Phantom check before driving anything.
			for _, u := range c.Snapshot().Units {
				if u.State == UnitDone && !okDone[u.Unit.ID] {
					t.Fatalf("boundary %d: %s resumed done but was never completed", k, u.Unit.ID)
				}
				if u.State == UnitQuarantined && u.Unit.ID != "u01" {
					t.Fatalf("boundary %d: %s resumed quarantined without cause", k, u.Unit.ID)
				}
			}

			// Drive the remainder: lease whatever is pending and complete
			// it. The disk is healthy now, so this must terminate.
			for round := 0; ; round++ {
				if round > 100 {
					t.Fatalf("boundary %d: sweep did not finish", k)
				}
				resp := c.Lease(LeaseRequest{Worker: "driver", Max: 3})
				if resp.Done {
					break
				}
				if resp.Degraded {
					t.Fatalf("boundary %d: degraded on a healthy disk", k)
				}
				if len(resp.Units) == 0 {
					clk.Advance(2 * time.Second)
					continue
				}
				for _, lu := range resp.Units {
					c.Complete(CompleteRequest{Worker: "driver", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "res:" + string(lu.Unit.ID)})
				}
			}

			// Done exactly once or quarantined, across the whole history.
			for _, u := range c.Snapshot().Units {
				if !u.State.Terminal() {
					t.Fatalf("boundary %d: %s not terminal: %s", k, u.Unit.ID, u.State)
				}
				if u.Completions > 1 {
					t.Fatalf("boundary %d: %s merged %d times", k, u.Unit.ID, u.Completions)
				}
				if u.State == UnitQuarantined && u.Unit.ID != "u01" {
					t.Fatalf("boundary %d: %s quarantined", k, u.Unit.ID)
				}
			}
		})
	}
}
