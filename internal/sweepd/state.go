package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/runner"
)

// StateName is the coordinator's crash-proof sweep state inside
// StateDir. It is rewritten atomically (fsync + rename, via
// runner.WriteFileAtomic) on every state transition, so a coordinator
// that dies mid-sweep resumes from its last transition with nothing
// lost and nothing torn.
const StateName = "sweep-state.json"

// stateEntry is one unit's persisted book entry. Rendered results are
// not duplicated here — they live in per-unit <id>.txt reports — so the
// state file stays small enough to rewrite on every transition.
type stateEntry struct {
	Unit        Unit          `json:"unit"`
	State       UnitState     `json:"state"`
	Expiries    int           `json:"expiries,omitempty"`
	Failures    []UnitFailure `json:"failures,omitempty"`
	Completions int           `json:"completions,omitempty"`
	Attempts    int           `json:"attempts,omitempty"`
	DurationMS  int64         `json:"duration_ms,omitempty"`
	Quarantine  string        `json:"quarantine,omitempty"`
}

// stateFile is the on-disk document.
type stateFile struct {
	Units []stateEntry `json:"units"`
}

// persistLocked checkpoints the sweep state; a no-op without StateDir.
// In-flight leases are persisted as their pre-lease pending state: a
// coordinator restart cannot honor epochs it never granted, so on
// resume those units simply re-run (their budgets intact).
func (c *Coordinator) persistLocked() {
	if c.cfg.StateDir == "" {
		return
	}
	doc := stateFile{Units: make([]stateEntry, 0, len(c.order))}
	for _, id := range c.sortedIDs() {
		r := c.units[id]
		st := r.state
		if st == UnitLeased || st == UnitHeartbeating {
			st = UnitPending
		}
		doc.Units = append(doc.Units, stateEntry{
			Unit:        r.unit,
			State:       st,
			Expiries:    r.expiries,
			Failures:    r.failures,
			Completions: r.completions,
			Attempts:    r.attempts,
			DurationMS:  r.durationMS,
			Quarantine:  r.quarantine,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: state marshal failed: %v\n", err)
		return
	}
	if err := runner.WriteFileAtomic(filepath.Join(c.cfg.StateDir, StateName), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: state checkpoint failed: %v\n", err)
	}
}

// restoreState folds a previous coordinator's sweep state into the
// fresh unit table. Only entries whose unit (ID, experiment, seed,
// quick) matches the current grid apply — a state file from a different
// sweep configuration cannot mask this sweep's work. Returns how many
// terminal outcomes were restored.
func (c *Coordinator) restoreState() (int, error) {
	path := filepath.Join(c.cfg.StateDir, StateName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil // nothing to resume from
	}
	if err != nil {
		return 0, fmt.Errorf("sweepd: reading sweep state: %w", err)
	}
	var doc stateFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("sweepd: sweep state %s is corrupt: %w", path, err)
	}
	restored := 0
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range doc.Units {
		r, ok := c.units[e.Unit.ID]
		if !ok || r.unit != e.Unit {
			continue
		}
		r.expiries = e.Expiries
		r.failures = append(r.failures[:0], e.Failures...)
		for _, f := range e.Failures {
			r.distinct[f.Worker] = true
		}
		r.completions = e.Completions
		r.attempts = e.Attempts
		r.durationMS = e.DurationMS
		r.quarantine = e.Quarantine
		switch e.State {
		case UnitDone:
			r.state = UnitDone
			r.merged = true
			restored++
		case UnitQuarantined:
			r.state = UnitQuarantined
			restored++
		default:
			r.state = UnitPending
		}
	}
	return restored, nil
}

// writeResultLocked persists a done unit's rendered report as
// <id>.txt, mirroring `ufsim -out`.
func (c *Coordinator) writeResultLocked(r *unitRecord) {
	if c.cfg.StateDir == "" || r.result == "" {
		return
	}
	path := filepath.Join(c.cfg.StateDir, string(r.unit.ID)+".txt")
	if err := runner.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, r.result)
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s report not written: %v\n", r.unit.ID, err)
	}
}

// writeCrashLocked preserves a failed completion's crash artifact per
// shard: <id>.<n>.crash.json for the unit's nth failure, verbatim as
// the worker shipped it (the runner's Artifact JSON), or a minimal
// record when the worker had none.
func (c *Coordinator) writeCrashLocked(r *unitRecord, req CompleteRequest) {
	if c.cfg.StateDir == "" {
		return
	}
	art := req.Artifact
	if len(art) == 0 {
		fallback := struct {
			Experiment string `json:"experiment"`
			Worker     string `json:"worker"`
			Error      string `json:"error"`
			Attempts   int    `json:"attempts"`
		}{string(r.unit.ID), req.Worker, req.Error, req.Attempts}
		art, _ = json.MarshalIndent(fallback, "", "  ")
	}
	path := filepath.Join(c.cfg.StateDir, fmt.Sprintf("%s.%d.crash.json", r.unit.ID, len(r.failures)))
	if err := runner.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(append(art, '\n'))
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s crash artifact not written: %v\n", r.unit.ID, err)
	}
}

// QuarantinePath is where a unit's quarantine artifact lives under dir.
func QuarantinePath(dir string, id UnitID) string {
	return filepath.Join(dir, string(id)+".quarantine.json")
}

// QuarantineArtifact is the preserved record of a quarantined unit.
type QuarantineArtifact struct {
	Unit     Unit          `json:"unit"`
	Reason   string        `json:"reason"`
	Expiries int           `json:"expiries"`
	Failures []UnitFailure `json:"failures,omitempty"`
	// Progress is the last heartbeat note before quarantine, often the
	// sharpest clue to where the poison unit wedges.
	Progress string `json:"progress,omitempty"`
}

// writeQuarantineLocked persists the quarantine record.
func (c *Coordinator) writeQuarantineLocked(r *unitRecord) {
	if c.cfg.StateDir == "" {
		return
	}
	a := QuarantineArtifact{
		Unit:     r.unit,
		Reason:   r.quarantine,
		Expiries: r.expiries,
		Failures: r.failures,
		Progress: r.progress,
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return
	}
	if err := runner.WriteFileAtomic(QuarantinePath(c.cfg.StateDir, r.unit.ID), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s quarantine artifact not written: %v\n", r.unit.ID, err)
	}
}

// mergedEntry and mergedManifest mirror internal/runner's manifest JSON
// shape, so a sweep merged by the coordinator can be resumed (or
// audited) by single-process `ufsim -artifacts DIR -resume`.
type mergedEntry struct {
	Status     runner.Status `json:"status"`
	Seed       uint64        `json:"seed"`
	Attempts   int           `json:"attempts"`
	DurationMS int64         `json:"duration_ms"`
	Error      string        `json:"error,omitempty"`
	Artifact   string        `json:"artifact,omitempty"`
}

type mergedManifest struct {
	Seed        uint64                 `json:"seed"`
	Quick       bool                   `json:"quick"`
	Experiments map[string]mergedEntry `json:"experiments"`
}

// writeManifestLocked writes the merged manifest: every unit's terminal
// outcome in the runner's manifest format. Called when the sweep
// completes and again at drain, always atomically.
func (c *Coordinator) writeManifestLocked() error {
	if c.cfg.StateDir == "" || len(c.order) == 0 {
		return nil
	}
	first := c.units[c.order[0]].unit
	doc := mergedManifest{Seed: first.Seed, Quick: first.Quick, Experiments: map[string]mergedEntry{}}
	for _, id := range c.sortedIDs() {
		r := c.units[id]
		e := mergedEntry{Seed: r.unit.Seed, Attempts: r.attempts, DurationMS: r.durationMS}
		switch r.state {
		case UnitDone:
			e.Status = runner.StatusDone
		case UnitQuarantined:
			// A quarantined unit resumes as a failure: single-process
			// `ufsim -resume` re-runs it, which is the right default
			// for a unit the fleet could not finish.
			e.Status = runner.StatusFailed
			e.Error = "quarantined: " + r.quarantine
			e.Artifact = QuarantinePath(c.cfg.StateDir, id)
			if len(r.failures) > 0 {
				e.Attempts = len(r.failures)
			}
		default:
			e.Status = runner.StatusSkipped
			e.Error = "sweep drained before the unit ran"
		}
		doc.Experiments[string(id)] = e
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return runner.WriteFileAtomic(filepath.Join(c.cfg.StateDir, runner.ManifestName), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// WriteManifest forces the merged manifest out now (used at drain, when
// the sweep may not be complete).
func (c *Coordinator) WriteManifest() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeManifestLocked()
}
