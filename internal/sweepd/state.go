package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/runner"
	"repro/internal/vfs"
)

// StateName is the coordinator's legacy crash-proof sweep state inside
// StateDir: the whole document rewritten atomically on every state
// transition. The journal (journal.go) supersedes it — O(1) appends
// instead of O(units) rewrites — and migrates it on resume; the legacy
// format remains available behind CoordinatorConfig.LegacyState.
const StateName = "sweep-state.json"

// stateEntry is one unit's persisted book entry. Rendered results are
// not duplicated here — they live in per-unit <id>.txt reports — so the
// state file stays small enough to rewrite on every transition.
type stateEntry struct {
	Unit        Unit          `json:"unit"`
	State       UnitState     `json:"state"`
	Expiries    int           `json:"expiries,omitempty"`
	Failures    []UnitFailure `json:"failures,omitempty"`
	Completions int           `json:"completions,omitempty"`
	Attempts    int           `json:"attempts,omitempty"`
	DurationMS  int64         `json:"duration_ms,omitempty"`
	Quarantine  string        `json:"quarantine,omitempty"`
}

// stateFile is the on-disk document.
type stateFile struct {
	Units []stateEntry `json:"units"`
}

// entryFor renders one unit's persistable book entry. In-flight leases
// persist as their pre-lease pending state: a coordinator restart
// cannot honor epochs it never granted, so on resume those units simply
// re-run (their budgets intact).
func entryFor(r *unitRecord) stateEntry {
	st := r.state
	if st == UnitLeased || st == UnitHeartbeating {
		st = UnitPending
	}
	return stateEntry{
		Unit:        r.unit,
		State:       st,
		Expiries:    r.expiries,
		Failures:    r.failures,
		Completions: r.completions,
		Attempts:    r.attempts,
		DurationMS:  r.durationMS,
		Quarantine:  r.quarantine,
	}
}

// entriesLocked renders the whole unit table in grid order — the
// snapshot document, and the legacy full-rewrite body.
func (c *Coordinator) entriesLocked() []stateEntry {
	entries := make([]stateEntry, 0, len(c.order))
	for _, id := range c.sortedIDs() {
		entries = append(entries, entryFor(c.units[id]))
	}
	return entries
}

// persistLocked checkpoints the sweep state in the legacy full-rewrite
// format; a no-op without StateDir. O(units) I/O per call — journal
// mode (persistUnitLocked) replaces it everywhere but behind
// cfg.LegacyState.
func (c *Coordinator) persistLocked() {
	if c.cfg.StateDir == "" {
		return
	}
	doc := stateFile{Units: c.entriesLocked()}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: state marshal failed: %v\n", err)
		return
	}
	err = vfs.WriteFileAtomic(c.cfg.FS, filepath.Join(c.cfg.StateDir, StateName), func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	})
	if err != nil {
		c.persistFailureLocked(err)
		return
	}
	c.persistFails = 0
}

// persistUnitLocked makes one unit's transition durable: a single
// journal record in journal mode, the legacy full rewrite otherwise.
// Both paths share the escalation policy — persistent failure is not a
// log line, it is a mode change (see persistFailureLocked).
func (c *Coordinator) persistUnitLocked(r *unitRecord) {
	if c.cfg.StateDir == "" {
		return
	}
	if c.store == nil {
		c.persistLocked()
		return
	}
	if c.degraded {
		// Already refusing leases; retrying per-transition would only
		// thrash a disk we know is failing.
		return
	}
	if err := c.persistEntryLocked(entryFor(r)); err != nil {
		c.persistFailureLocked(err)
		return
	}
	c.persistFails = 0
}

// persistUnitsLocked makes a batch of transitions durable in one
// group-commit: all records appended to the journal under a single
// fsync, so a CompleteBatch of N outcomes costs the same disk latency
// as one. Failure policy matches persistUnitLocked — a failed batch is
// one failed checkpoint transition, not N.
func (c *Coordinator) persistUnitsLocked(rs []*unitRecord) {
	if len(rs) == 0 || c.cfg.StateDir == "" {
		return
	}
	if c.store == nil {
		// Legacy full rewrite: one rewrite already covers every unit.
		c.persistLocked()
		return
	}
	if c.degraded {
		return
	}
	entries := make([]stateEntry, len(rs))
	for i, r := range rs {
		entries[i] = entryFor(r)
	}
	if err := c.persistEntriesLocked(entries); err != nil {
		c.persistFailureLocked(err)
		return
	}
	c.persistFails = 0
}

// persistEntriesLocked group-commits a batch of records with the same
// retry-by-compaction policy as persistEntryLocked: a failed append
// poisons the journal, and each retry folds the full state — batch
// included — into a fresh generation.
func (c *Coordinator) persistEntriesLocked(entries []stateEntry) error {
	var err error
	for attempt := 0; attempt <= c.cfg.PersistRetries; attempt++ {
		if c.store.dirty {
			if err = c.store.compact(c.entriesLocked()); err != nil {
				continue
			}
			return nil // the compacted snapshot already includes the batch
		}
		if err = c.store.appendAll(entries); err != nil {
			continue
		}
		if c.store.shouldCompact(c.cfg.SnapshotEvery) {
			if cerr := c.store.compact(c.entriesLocked()); cerr != nil {
				fmt.Fprintf(c.cfg.Log, "sweepd: warning: journal compaction failed (will retry): %v\n", cerr)
			}
		}
		return nil
	}
	return err
}

// persistEntryLocked appends one record, retrying by compaction: a
// failed append poisons the journal file (it may hold a torn frame), so
// each retry folds the full state — entry included — into a fresh
// generation, which both persists the transition and heals the torn
// file.
func (c *Coordinator) persistEntryLocked(e stateEntry) error {
	var err error
	for attempt := 0; attempt <= c.cfg.PersistRetries; attempt++ {
		if c.store.dirty {
			if err = c.store.compact(c.entriesLocked()); err != nil {
				continue
			}
			return nil // the compacted snapshot already includes e
		}
		if err = c.store.append(e); err != nil {
			continue
		}
		if c.store.shouldCompact(c.cfg.SnapshotEvery) {
			// Scheduled compaction; the record above is already durable,
			// so a failure here only defers the fold (and marks the
			// store dirty if the generation roll half-happened — the
			// next transition's retry loop finishes the job).
			if cerr := c.store.compact(c.entriesLocked()); cerr != nil {
				fmt.Fprintf(c.cfg.Log, "sweepd: warning: journal compaction failed (will retry): %v\n", cerr)
			}
		}
		return nil
	}
	return err
}

// persistFailureLocked counts a failed checkpoint transition and, past
// the budget, trips degraded mode: no more leases, Wait returns
// ErrDegraded, /v1/status says why. Crash-proof must not silently
// become best-effort.
func (c *Coordinator) persistFailureLocked(err error) {
	c.persistFails++
	fmt.Fprintf(c.cfg.Log, "sweepd: warning: state checkpoint failed (%d consecutive): %v\n", c.persistFails, err)
	if c.persistFails >= c.cfg.PersistFailLimit && !c.degraded {
		c.degraded = true
		c.degradedReason = fmt.Sprintf("%d consecutive checkpoint failures, last: %v", c.persistFails, err)
		fmt.Fprintf(c.cfg.Log, "sweepd: DEGRADED: %s — refusing new leases\n", c.degradedReason)
	}
}

// restoreState folds a previous coordinator's legacy sweep state into
// the fresh unit table (cfg.LegacyState + Resume; journal mode restores
// through openJournal instead). Returns how many terminal outcomes were
// restored.
func (c *Coordinator) restoreState() (int, error) {
	entries, err := readLegacyState(c.cfg.FS, c.cfg.StateDir)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applyEntriesLocked(entries), nil
}

// applyEntriesLocked replays recovered entries over the unit table.
// Only entries whose unit (ID, experiment, seed, quick) matches the
// current grid apply — state from a different sweep configuration
// cannot mask this sweep's work. Returns how many terminal outcomes
// were restored.
func (c *Coordinator) applyEntriesLocked(entries []stateEntry) int {
	restored := 0
	for _, e := range entries {
		r, ok := c.units[e.Unit.ID]
		if !ok || r.unit != e.Unit {
			continue
		}
		r.expiries = e.Expiries
		r.failures = append(r.failures[:0], e.Failures...)
		for _, f := range e.Failures {
			r.distinct[f.Worker] = true
		}
		r.completions = e.Completions
		r.attempts = e.Attempts
		r.durationMS = e.DurationMS
		r.quarantine = e.Quarantine
		switch e.State {
		case UnitDone:
			r.state = UnitDone
			r.merged = true
			restored++
		case UnitQuarantined:
			r.state = UnitQuarantined
			restored++
		default:
			r.state = UnitPending
		}
	}
	return restored
}

// writeResultLocked persists a done unit's rendered report as
// <id>.txt, mirroring `ufsim -out`.
func (c *Coordinator) writeResultLocked(r *unitRecord) {
	if c.cfg.StateDir == "" || r.result == "" {
		return
	}
	path := filepath.Join(c.cfg.StateDir, string(r.unit.ID)+".txt")
	if err := vfs.WriteFileAtomic(c.cfg.FS, path, func(w io.Writer) error {
		_, err := io.WriteString(w, r.result)
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s report not written: %v\n", r.unit.ID, err)
	}
}

// writeCrashLocked preserves a failed completion's crash artifact per
// shard: <id>.<n>.crash.json for the unit's nth failure, verbatim as
// the worker shipped it (the runner's Artifact JSON), or a minimal
// record when the worker had none.
func (c *Coordinator) writeCrashLocked(r *unitRecord, worker string, cu CompletedUnit) {
	if c.cfg.StateDir == "" {
		return
	}
	art := cu.Artifact
	if len(art) == 0 {
		fallback := struct {
			Experiment string `json:"experiment"`
			Worker     string `json:"worker"`
			Error      string `json:"error"`
			Attempts   int    `json:"attempts"`
		}{string(r.unit.ID), worker, cu.Error, cu.Attempts}
		art, _ = json.MarshalIndent(fallback, "", "  ")
	}
	path := filepath.Join(c.cfg.StateDir, fmt.Sprintf("%s.%d.crash.json", r.unit.ID, len(r.failures)))
	if err := vfs.WriteFileAtomic(c.cfg.FS, path, func(w io.Writer) error {
		_, err := w.Write(append(art, '\n'))
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s crash artifact not written: %v\n", r.unit.ID, err)
	}
}

// QuarantinePath is where a unit's quarantine artifact lives under dir.
func QuarantinePath(dir string, id UnitID) string {
	return filepath.Join(dir, string(id)+".quarantine.json")
}

// QuarantineArtifact is the preserved record of a quarantined unit.
type QuarantineArtifact struct {
	Unit     Unit          `json:"unit"`
	Reason   string        `json:"reason"`
	Expiries int           `json:"expiries"`
	Failures []UnitFailure `json:"failures,omitempty"`
	// Progress is the last heartbeat note before quarantine, often the
	// sharpest clue to where the poison unit wedges.
	Progress string `json:"progress,omitempty"`
}

// writeQuarantineLocked persists the quarantine record.
func (c *Coordinator) writeQuarantineLocked(r *unitRecord) {
	if c.cfg.StateDir == "" {
		return
	}
	a := QuarantineArtifact{
		Unit:     r.unit,
		Reason:   r.quarantine,
		Expiries: r.expiries,
		Failures: r.failures,
		Progress: r.progress,
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return
	}
	if err := vfs.WriteFileAtomic(c.cfg.FS, QuarantinePath(c.cfg.StateDir, r.unit.ID), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	}); err != nil {
		fmt.Fprintf(c.cfg.Log, "sweepd: warning: %s quarantine artifact not written: %v\n", r.unit.ID, err)
	}
}

// mergedEntry and mergedManifest mirror internal/runner's manifest JSON
// shape, so a sweep merged by the coordinator can be resumed (or
// audited) by single-process `ufsim -artifacts DIR -resume`.
type mergedEntry struct {
	Status     runner.Status `json:"status"`
	Seed       uint64        `json:"seed"`
	Attempts   int           `json:"attempts"`
	DurationMS int64         `json:"duration_ms"`
	Error      string        `json:"error,omitempty"`
	Artifact   string        `json:"artifact,omitempty"`
}

type mergedManifest struct {
	Seed        uint64                 `json:"seed"`
	Quick       bool                   `json:"quick"`
	Experiments map[string]mergedEntry `json:"experiments"`
}

// writeManifestLocked writes the merged manifest: every unit's terminal
// outcome in the runner's manifest format. Called when the sweep
// completes and again at drain, always atomically.
func (c *Coordinator) writeManifestLocked() error {
	if c.cfg.StateDir == "" || len(c.order) == 0 {
		return nil
	}
	first := c.units[c.order[0]].unit
	doc := mergedManifest{Seed: first.Seed, Quick: first.Quick, Experiments: map[string]mergedEntry{}}
	for _, id := range c.sortedIDs() {
		r := c.units[id]
		e := mergedEntry{Seed: r.unit.Seed, Attempts: r.attempts, DurationMS: r.durationMS}
		switch r.state {
		case UnitDone:
			e.Status = runner.StatusDone
		case UnitQuarantined:
			// A quarantined unit resumes as a failure: single-process
			// `ufsim -resume` re-runs it, which is the right default
			// for a unit the fleet could not finish.
			e.Status = runner.StatusFailed
			e.Error = "quarantined: " + r.quarantine
			e.Artifact = QuarantinePath(c.cfg.StateDir, id)
			if len(r.failures) > 0 {
				e.Attempts = len(r.failures)
			}
		default:
			e.Status = runner.StatusSkipped
			e.Error = "sweep drained before the unit ran"
		}
		doc.Experiments[string(id)] = e
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return vfs.WriteFileAtomic(c.cfg.FS, filepath.Join(c.cfg.StateDir, runner.ManifestName), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// WriteManifest forces the merged manifest out now (used at drain, when
// the sweep may not be complete).
func (c *Coordinator) WriteManifest() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writeManifestLocked()
}
