package sweepd

// Admission control: the overload armor in front of the coordinator.
// PRs 6-7 made the sweep service crash-proof against network and disk
// faults; the Gate makes it survive *load*. Every protocol endpoint gets
// a semaphore of Inflight slots plus a bounded wait queue: a request
// either runs now, waits briefly for a slot, or is shed with a typed
// OverloadError carrying a Retry-After hint scaled by queue pressure.
// The coordinator never sees more than Inflight concurrent calls per
// endpoint, so a thundering herd of workers degrades into orderly
// queueing and shedding instead of lock convoys and memory blowup.
//
// The same Gate fronts both transports: the HTTP server acquires it in
// middleware (shed = 429 + Retry-After), and AdmittedClient acquires it
// around the in-process loopback transport, so the chaos tests exercise
// the identical admission path CI's HTTP fleets run behind. Pressure —
// the fullest endpoint queue, in [0, 1] — also feeds the coordinator's
// adaptive lease RetryAfterMillis: polls stretch as load climbs
// (brownout) long before anything has to be refused outright
// (blackout). See DESIGN.md §10 for the full ladder.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Endpoint names used by the admission gate. The HTTP handlers and the
// loopback AdmittedClient share them, so shed/inflight counters mean
// the same thing on both transports.
const (
	EndpointLease     = "lease"
	EndpointHeartbeat = "heartbeat"
	EndpointComplete  = "complete"
	EndpointRelease   = "release"
	EndpointStatus    = "status"
)

// gateEndpoints lists every gated endpoint in display order.
func gateEndpoints() []string {
	return []string{EndpointLease, EndpointHeartbeat, EndpointComplete, EndpointRelease, EndpointStatus}
}

// OverloadError is the shed verdict: the request was refused (or timed
// out queued) under load and should be retried after RetryAfter. The
// HTTP server renders it as 429 + Retry-After; HTTPClient parses that
// back into the same type, so workers honor the hint identically over
// loopback and the network.
type OverloadError struct {
	Endpoint   string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("sweepd: %s overloaded, retry after %v", e.Endpoint, e.RetryAfter)
}

// GateLimits bounds one endpoint's admission.
type GateLimits struct {
	// Inflight is how many requests may be inside the coordinator at
	// once; zero means 64.
	Inflight int
	// Queue is how many more may wait for a slot before new arrivals are
	// shed immediately; zero means 4×Inflight.
	Queue int
	// QueueWait is the longest a queued request waits before it is shed
	// anyway; zero means 1s.
	QueueWait time.Duration
}

func (l GateLimits) withDefaults() GateLimits {
	if l.Inflight <= 0 {
		l.Inflight = 64
	}
	if l.Queue <= 0 {
		l.Queue = 4 * l.Inflight
	}
	if l.QueueWait <= 0 {
		l.QueueWait = time.Second
	}
	return l
}

// GateConfig tunes the admission gate.
type GateConfig struct {
	// Default applies to every endpoint without an override.
	Default GateLimits
	// PerEndpoint overrides limits for named endpoints (EndpointLease,
	// ...).
	PerEndpoint map[string]GateLimits
	// Clock supplies time for queue waits; nil means the wall clock.
	Clock Clock
}

// EndpointLoad is one endpoint's admission counters.
type EndpointLoad struct {
	// Admitted counts requests that got a slot (queued or not); Shed
	// counts refusals (queue full or queue wait exhausted).
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed,omitempty"`
	// Inflight/Queued are the live gauges; the Max fields are their
	// high-water marks. InflightMax can never exceed the configured cap
	// — that is the property the overload chaos test asserts.
	Inflight    int64 `json:"inflight,omitempty"`
	InflightMax int64 `json:"inflight_max,omitempty"`
	Queued      int64 `json:"queued,omitempty"`
	QueuedMax   int64 `json:"queued_max,omitempty"`
}

// BreakerStats aggregates worker-side circuit-breaker activity (trips,
// fast-failed calls while open, half-open probes). The loopback fleet
// folds its workers' breakers into the gate so `GET /v1/status` shows
// one overload picture; HTTP workers log theirs locally instead.
type BreakerStats struct {
	Trips     int64 `json:"trips,omitempty"`
	FastFails int64 `json:"fast_fails,omitempty"`
	Probes    int64 `json:"probes,omitempty"`
}

// OverloadStats is the admission section of /v1/status.
type OverloadStats struct {
	// Endpoints maps endpoint name to its counters.
	Endpoints map[string]EndpointLoad `json:"endpoints"`
	// Pressure is the fullest endpoint queue in [0, 1] — the brownout
	// input that stretches lease RetryAfterMillis.
	Pressure float64 `json:"pressure"`
	// Breaker aggregates in-process workers' circuit breakers.
	Breaker BreakerStats `json:"breaker,omitempty"`
}

// gateSlot is one endpoint's semaphore and counters.
type gateSlot struct {
	limits GateLimits
	sem    chan struct{}

	admitted    atomic.Int64
	shed        atomic.Int64
	inflight    atomic.Int64
	inflightMax atomic.Int64
	queued      atomic.Int64
	queuedMax   atomic.Int64
}

// bumpMax raises a high-water mark to at least v.
func bumpMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// enqueue reserves a queue position, refusing past the bound.
func (s *gateSlot) enqueue() bool {
	for {
		q := s.queued.Load()
		if q >= int64(s.limits.Queue) {
			return false
		}
		if s.queued.CompareAndSwap(q, q+1) {
			bumpMax(&s.queuedMax, q+1)
			return true
		}
	}
}

// admit records the slot acquisition and returns its release func.
func (s *gateSlot) admit() func() {
	s.admitted.Add(1)
	bumpMax(&s.inflightMax, s.inflight.Add(1))
	var released atomic.Bool
	return func() {
		if released.Swap(true) {
			return
		}
		s.inflight.Add(-1)
		<-s.sem
	}
}

// Gate is the admission controller. Safe for concurrent use; one Gate
// fronts one coordinator across all transports.
type Gate struct {
	clock Clock
	slots map[string]*gateSlot

	breakerTrips     atomic.Int64
	breakerFastFails atomic.Int64
	breakerProbes    atomic.Int64
}

// NewGate builds a gate over cfg.
func NewGate(cfg GateConfig) *Gate {
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock{}
	}
	g := &Gate{clock: clock, slots: make(map[string]*gateSlot)}
	for _, ep := range gateEndpoints() {
		limits, ok := cfg.PerEndpoint[ep]
		if !ok {
			limits = cfg.Default
		}
		limits = limits.withDefaults()
		g.slots[ep] = &gateSlot{limits: limits, sem: make(chan struct{}, limits.Inflight)}
	}
	return g
}

// Acquire admits one request to endpoint, queueing up to the endpoint's
// bound. It returns a release func on admission, an *OverloadError on
// shed, or ctx.Err() if the caller gave up while queued. An unknown
// endpoint is admitted unconditionally (the gate only protects what it
// was configured to know about).
func (g *Gate) Acquire(ctx context.Context, endpoint string) (func(), error) {
	s := g.slots[endpoint]
	if s == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
		return s.admit(), nil
	default:
	}
	if !s.enqueue() {
		s.shed.Add(1)
		return nil, &OverloadError{Endpoint: endpoint, RetryAfter: g.retryAfter(s)}
	}
	defer s.queued.Add(-1)

	// Bound the queue wait under the injectable clock, so shedding is
	// exact in manual-clock tests.
	tctx, tcancel := context.WithCancel(ctx)
	defer tcancel()
	timedOut := make(chan struct{})
	go func() {
		if g.clock.Sleep(tctx, s.limits.QueueWait) == nil {
			close(timedOut)
		}
	}()
	select {
	case s.sem <- struct{}{}:
		return s.admit(), nil
	case <-timedOut:
		s.shed.Add(1)
		return nil, &OverloadError{Endpoint: endpoint, RetryAfter: g.retryAfter(s)}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// retryAfter hints how long a shed caller should stay away: a quarter
// of the queue wait at the first refusal, stretching toward 1.25× as
// the queue saturates — the deeper the backlog, the gentler the herd
// must poll.
func (g *Gate) retryAfter(s *gateSlot) time.Duration {
	w := s.limits.QueueWait
	p := float64(s.queued.Load()) / float64(s.limits.Queue)
	if p > 1 {
		p = 1
	}
	ra := w/4 + time.Duration(p*float64(w))
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	return ra
}

// Pressure is the fullest endpoint queue in [0, 1]. Zero means no
// request is waiting anywhere; 1 means at least one endpoint is
// shedding on arrival.
func (g *Gate) Pressure() float64 {
	var p float64
	for _, s := range g.slots {
		q := float64(s.queued.Load()) / float64(s.limits.Queue)
		if q > p {
			p = q
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// RecordBreaker folds one worker's circuit-breaker counters into the
// gate's aggregate (the loopback fleet calls this as workers finish).
func (g *Gate) RecordBreaker(st BreakerStats) {
	g.breakerTrips.Add(st.Trips)
	g.breakerFastFails.Add(st.FastFails)
	g.breakerProbes.Add(st.Probes)
}

// Stats snapshots the admission counters for /v1/status.
func (g *Gate) Stats() OverloadStats {
	st := OverloadStats{
		Endpoints: make(map[string]EndpointLoad, len(g.slots)),
		Pressure:  g.Pressure(),
		Breaker: BreakerStats{
			Trips:     g.breakerTrips.Load(),
			FastFails: g.breakerFastFails.Load(),
			Probes:    g.breakerProbes.Load(),
		},
	}
	for ep, s := range g.slots {
		st.Endpoints[ep] = EndpointLoad{
			Admitted:    s.admitted.Load(),
			Shed:        s.shed.Load(),
			Inflight:    s.inflight.Load(),
			InflightMax: s.inflightMax.Load(),
			Queued:      s.queued.Load(),
			QueuedMax:   s.queuedMax.Load(),
		}
	}
	return st
}
