package sweepd

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestOverloadChaosThunderingHerd is the overload-robustness proof: a
// herd of workers far wider than the admission gate's capacity is
// released at one instant against a coordinator behind tight inflight
// caps, while an overload plan shapes every call with latency ramps and
// slow-loris trickles and a network plan drops and duplicates messages
// underneath. Under all of that:
//
//   - the coordinator never sees more than the configured inflight cap
//     on any endpoint (the gate's hard invariant),
//   - load past the cap is shed — and every shed caller retries its way
//     to success, because the sweep still finishes with every unit
//     merged exactly once (or explicitly quarantined with its artifact
//     on disk),
//   - the brownout/shed machinery actually fired (shed > 0, queueing
//     observed), so the run proved something.
//
// Run with -race: the gate, sink, and breaker are all concurrent.
func TestOverloadChaosThunderingHerd(t *testing.T) {
	const (
		nUnits      = 48
		nWorkers    = 96
		inflightCap = 4
	)
	units := testUnits(nUnits)
	dir := t.TempDir()
	c, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL: 500 * time.Millisecond,
		// Sheds can exhaust a worker's complete retries, leaving the
		// outcome to lease expiry — that is chaos, not poison, so the
		// budget must absorb it.
		ExpiryBudget:    500,
		QuarantineAfter: 5,
		RetryBase:       5 * time.Millisecond,
		RetryJitter:     5 * time.Millisecond,
		Seed:            0x4E8D,
		StateDir:        dir,
	}, units)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	gate := NewGate(GateConfig{
		Default: GateLimits{Inflight: inflightCap, Queue: 8, QueueWait: 10 * time.Millisecond},
	})
	c.AttachGate(gate)

	var mu sync.Mutex
	exec := map[UnitID]int{}
	newRunner := func(workerID string) UnitRunner {
		return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			mu.Lock()
			exec[u.ID]++
			mu.Unlock()
			progress("measuring")
			time.Sleep(time.Millisecond)
			return UnitResult{OK: true, Result: "ok " + string(u.ID), Attempts: 1}
		}
	}

	// Trickle-heavy mix: with ~a third of admitted calls holding their
	// gate slot for 120ms, four slots congest constantly — queueing and
	// shedding are a certainty, not a scheduling accident.
	overload := faults.NewOverloadPlan(faults.OverloadConfig{
		RampPeriod:  500 * time.Millisecond,
		DelayMax:    10 * time.Millisecond,
		TrickleProb: 0.35,
		TrickleFor:  120 * time.Millisecond,
	}, 0x0AD)
	netplan := faults.NewNetPlan(faults.DefaultNetConfig(0.25), 0x0AD)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep := RunFleet(ctx, c, FleetConfig{
		Workers: nWorkers, Jobs: 1,
		NewRunner: newRunner,
		Plan:      netplan,
		Overload:  overload,
		Gate:      gate,
		HerdStart: true,
		// Batched completes ride through the same storm.
		BatchCompletes: true,
		RetryBase:      2 * time.Millisecond,
		Respawn:        true, MaxRespawns: 300,
		PollMax: 200 * time.Millisecond,
	})
	if ctx.Err() != nil {
		t.Fatalf("overloaded sweep timed out; fleet=%+v gate=%+v snapshot=%+v",
			rep, gate.Stats(), c.Snapshot())
	}
	select {
	case <-c.Done():
	default:
		t.Fatalf("fleet returned but sweep not done: fleet=%+v gate=%+v snapshot=%+v",
			rep, gate.Stats(), c.Snapshot())
	}

	// Exactly-once or explicitly quarantined, same contract as the
	// network chaos test — overload must not weaken it.
	st := c.Snapshot()
	mu.Lock()
	for _, u := range st.Units {
		id := u.Unit.ID
		switch u.State {
		case UnitDone:
			if u.Completions != 1 {
				t.Errorf("%s merged %d times, want exactly 1", id, u.Completions)
			}
			if exec[id] < 1 {
				t.Errorf("%s done but never executed", id)
			}
		case UnitQuarantined:
			if _, err := os.Stat(QuarantinePath(dir, id)); err != nil {
				t.Errorf("%s quarantined without artifact: %v", id, err)
			}
		default:
			t.Errorf("%s ended non-terminal: %+v", id, u)
		}
	}
	mu.Unlock()

	// The admission invariants. InflightMax is the gate's high-water
	// mark: if it ever exceeded the cap, admission failed its one job.
	gs := gate.Stats()
	for ep, load := range gs.Endpoints {
		if load.InflightMax > inflightCap {
			t.Errorf("endpoint %s inflight high-water %d exceeded cap %d", ep, load.InflightMax, inflightCap)
		}
		if load.Inflight != 0 || load.Queued != 0 {
			t.Errorf("endpoint %s gauges not drained: %+v", ep, load)
		}
	}

	// The storm must actually have stormed: a herd of 96 against 4
	// slots must shed (96 simultaneous leases cannot all fit a
	// 4+16 gate), and the queue must have been used.
	lease := gs.Endpoints[EndpointLease]
	if lease.Shed == 0 {
		t.Errorf("herd of %d against %d slots shed nothing: %+v", nWorkers, inflightCap, lease)
	}
	if lease.QueuedMax == 0 {
		t.Errorf("queue never used under herd load: %+v", lease)
	}
	if lease.Admitted == 0 {
		t.Errorf("nothing admitted on lease: %+v", lease)
	}
	if ost := overload.Stats(); ost.Calls == 0 || ost.TotalStall == 0 {
		t.Errorf("overload plan injected nothing: %+v", ost)
	}
	t.Logf("overload chaos: fleet=%+v gate=%+v overload=%+v net=%+v",
		rep, gs, overload.Stats(), netplan.Stats())
}

// TestFleetHerdStartReleasesTogether: the herd barrier releases every
// initial worker at one instant. With every admitted call holding its
// gate slot for a deterministic 25ms trickle, a synchronized burst of
// 32 lease calls against a 2-slot, 4-deep gate must overflow into
// queueing and shedding — and the shed workers must still retry their
// way to a finished sweep.
func TestFleetHerdStartReleasesTogether(t *testing.T) {
	const nWorkers = 32
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(nWorkers))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	gate := NewGate(GateConfig{
		Default: GateLimits{Inflight: 2, Queue: 4, QueueWait: 5 * time.Millisecond},
	})
	c.AttachGate(gate)
	// Every call trickles: the revolving door spins slow enough that the
	// herd's burst cannot drain through it one at a time.
	overload := faults.NewOverloadPlan(faults.OverloadConfig{
		TrickleProb: 1, TrickleFor: 25 * time.Millisecond,
	}, 0x5EED)
	var mu sync.Mutex
	exec := map[UnitID]int{}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	RunFleet(ctx, c, FleetConfig{
		Workers: nWorkers, Jobs: 1,
		NewRunner: okRunner(&mu, exec),
		Overload:  overload,
		Gate:      gate,
		HerdStart: true,
		RetryBase: 2 * time.Millisecond,
		PollMax:   50 * time.Millisecond,
	})
	select {
	case <-c.Done():
	default:
		t.Fatalf("herd sweep not done: %+v", c.Snapshot())
	}
	lease := gate.Stats().Endpoints[EndpointLease]
	if lease.Shed == 0 {
		t.Fatalf("synchronized herd left no shed trace: %+v", lease)
	}
	if lease.InflightMax > 2 {
		t.Fatalf("inflight high-water %d exceeded cap 2", lease.InflightMax)
	}
	st := c.Snapshot()
	if st.Done != nWorkers {
		t.Fatalf("done=%d, want %d", st.Done, nWorkers)
	}
}
