// Package sweepd turns the single-process supervised runner
// (internal/runner) into a distributed, crash-proof sweep service: a
// coordinator shards a sweep (experiment × seed × config grid) into work
// units and hands them to workers over a small HTTP/JSON protocol with
// lease/heartbeat semantics. The design goal is the one every later
// roadmap item leans on: a sweep whose trials are each merged exactly
// once — never lost, never double-counted — while workers crash, hang,
// partition, and restart under it.
//
// The protocol is four idempotent POSTs:
//
//   - POST /v1/lease: a worker claims up to Max pending units. Each
//     grant carries a lease TTL and a fencing epoch; a unit whose lease
//     expires is reassigned with a capped, jittered retry budget.
//   - POST /v1/heartbeat: extends a live lease and streams partial
//     progress back (the last note is visible in /v1/status and in
//     quarantine artifacts). A heartbeat for a stale epoch tells the
//     worker to abandon the unit: its lease expired and the unit now
//     belongs to someone else.
//   - POST /v1/complete: delivers the unit's outcome. Completion is
//     accepted only from the current lease epoch, so a zombie worker
//     resurfacing after a partition cannot double-merge a reassigned
//     unit; re-delivery of an already-merged outcome under the same
//     epoch is acknowledged idempotently (the worker's response was
//     lost, not the work).
//   - POST /v1/release: voluntarily returns leases (graceful shutdown);
//     a released unit goes back to pending without charging its retry
//     budget.
//
// Failure containment is per unit: a unit that fails on N distinct
// workers (or exhausts its lease-expiry budget) is quarantined — taken
// out of circulation with its failure history and crash artifacts
// preserved — instead of wedging the sweep in a retry loop.
//
// All coordinator time arithmetic goes through an injectable Clock and
// expiry is reaped lazily on API entry, so lease semantics are tested
// against a manual clock with no real sleeps. An in-process loopback
// transport (Loopback, RunFleet) exercises the whole protocol
// hermetically; internal/faults.NetPlan injects dropped/delayed/
// duplicated requests, partitions, and mid-trial worker kills on top of
// it. See DESIGN.md §8 for the work-unit state machine.
package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// UnitID names one work unit within a sweep, e.g. "fig3" or "tab2#3".
type UnitID string

// Unit is one shard of a sweep: a single experiment run under a fixed
// (seed, quick) configuration. Replicated sweeps derive per-replica
// seeds, so the grid experiment × seed is flattened into units.
type Unit struct {
	ID         UnitID `json:"id"`
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
}

// UnitState is a work unit's position in the lifecycle
// pending → leased → heartbeating → done | quarantined (an expired
// lease returns the unit to pending until its budgets run out).
type UnitState string

const (
	// UnitPending means the unit is waiting to be leased (possibly in a
	// post-expiry backoff window).
	UnitPending UnitState = "pending"
	// UnitLeased means a worker holds a live lease but has not
	// heartbeated yet.
	UnitLeased UnitState = "leased"
	// UnitHeartbeating means the leasing worker has sent at least one
	// heartbeat — it is alive and making progress.
	UnitHeartbeating UnitState = "heartbeating"
	// UnitDone means exactly one completion was merged for this unit.
	UnitDone UnitState = "done"
	// UnitQuarantined means the unit was taken out of circulation:
	// failed on too many distinct workers or burned its lease-expiry
	// budget. Its failure history is preserved in a quarantine artifact.
	UnitQuarantined UnitState = "quarantined"
)

// Terminal reports whether the state is final.
func (s UnitState) Terminal() bool { return s == UnitDone || s == UnitQuarantined }

// LeaseRequest asks for up to Max units on behalf of Worker.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeasedUnit is one granted lease.
type LeasedUnit struct {
	Unit Unit `json:"unit"`
	// Epoch is the fencing token: heartbeats and completions must echo
	// it, and only the newest epoch's are honored.
	Epoch uint64 `json:"epoch"`
	// TTLMillis is the lease duration; the worker should heartbeat at
	// roughly a third of it.
	TTLMillis int64 `json:"ttl_ms"`
}

// LeaseResponse returns granted leases, or the reason none were granted.
type LeaseResponse struct {
	Units []LeasedUnit `json:"units,omitempty"`
	// Done means every unit is terminal: the sweep is over and the
	// worker can exit.
	Done bool `json:"done,omitempty"`
	// Draining means the coordinator is shutting down and grants
	// nothing; workers should finish in-flight units and exit.
	Draining bool `json:"draining,omitempty"`
	// Degraded means the coordinator can no longer persist sweep state
	// (checkpoint failures exhausted their retry budget) and refuses
	// new leases rather than hand out work it could not resume.
	// Workers should exit and surface the condition.
	Degraded bool `json:"degraded,omitempty"`
	// RetryAfterMillis hints when to poll again if no units were
	// granted (pending units are in backoff or leased elsewhere).
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// HeartbeatRequest extends Worker's lease on Unit and records progress.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Unit   UnitID `json:"unit"`
	Epoch  uint64 `json:"epoch"`
	// Note is the latest progress line (experiment checkpoint); the
	// coordinator keeps only the newest.
	Note string `json:"note,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
	// Abandon tells the worker to stop working on the unit: its lease
	// is stale (the unit was reassigned) or the unit is already
	// terminal. Continuing would be wasted work — the completion would
	// be fenced off anyway.
	Abandon bool `json:"abandon,omitempty"`
}

// CompleteRequest delivers a unit outcome under a lease epoch.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Unit   UnitID `json:"unit"`
	Epoch  uint64 `json:"epoch"`
	// OK marks success; Result is the rendered experiment output.
	OK     bool   `json:"ok"`
	Result string `json:"result,omitempty"`
	// Error and Artifact describe a failure: the final error string and
	// the runner's crash artifact (verbatim JSON), preserved per shard
	// by the coordinator.
	Error    string          `json:"error,omitempty"`
	Artifact json.RawMessage `json:"artifact,omitempty"`
	// Attempts is how many supervised attempts the worker spent.
	Attempts int `json:"attempts,omitempty"`
	// DurationMS is the worker-side wall clock across attempts.
	DurationMS int64 `json:"duration_ms,omitempty"`
}

// CompleteResponse reports whether the outcome was merged (or already
// had been, idempotently). Accepted=false means the epoch was fenced
// off: the unit belongs to another worker now and this outcome is
// discarded.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
}

// CompletedUnit is one unit's outcome inside a batched completion —
// the same payload as CompleteRequest minus the worker, which is
// shared by the whole batch.
type CompletedUnit struct {
	Unit       UnitID          `json:"unit"`
	Epoch      uint64          `json:"epoch"`
	OK         bool            `json:"ok"`
	Result     string          `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	Artifact   json.RawMessage `json:"artifact,omitempty"`
	Attempts   int             `json:"attempts,omitempty"`
	DurationMS int64           `json:"duration_ms,omitempty"`
}

// CompleteBatchRequest delivers several unit outcomes in one round
// trip — the first rung of completion pipelining: a herd of finishing
// workers costs one request per worker instead of one per unit, and
// the coordinator merges the batch under a single lock acquisition
// (and, in journal mode, a single fsync).
type CompleteBatchRequest struct {
	Worker string          `json:"worker"`
	Units  []CompletedUnit `json:"units"`
}

// CompleteBatchResponse reports each outcome's fate, parallel to the
// request's Units. Semantics per entry are identical to
// CompleteResponse: false means the epoch was fenced off.
type CompleteBatchResponse struct {
	Accepted []bool `json:"accepted"`
}

// UnitEpoch identifies one lease in a release request.
type UnitEpoch struct {
	Unit  UnitID `json:"unit"`
	Epoch uint64 `json:"epoch"`
}

// ReleaseRequest voluntarily returns leases (graceful worker shutdown).
type ReleaseRequest struct {
	Worker string      `json:"worker"`
	Units  []UnitEpoch `json:"units"`
	Reason string      `json:"reason,omitempty"`
}

// ReleaseResponse counts the leases actually released (stale epochs are
// ignored).
type ReleaseResponse struct {
	Released int `json:"released"`
}

// Client is the worker's view of the coordinator. HTTPClient speaks the
// JSON protocol over the network; Loopback calls the coordinator
// in-process; FaultyClient wraps either with a deterministic
// network-fault plan.
type Client interface {
	Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
	CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error)
	Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error)
}

// Clock abstracts time so lease semantics are testable without real
// sleeps. The coordinator only ever calls Now (expiry is reaped lazily
// on API entry); workers also Sleep between polls and heartbeats.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ManualClock is a test clock advanced explicitly; Sleep blocks until
// Advance has moved the clock far enough. The zero value starts at the
// Unix epoch; use NewManualClock to pick an origin.
type ManualClock struct {
	mu   sync.Mutex
	cond *sync.Cond
	now  time.Time
}

// NewManualClock returns a manual clock reading start.
func NewManualClock(start time.Time) *ManualClock {
	c := &ManualClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, waking any sleeper whose
// deadline has passed.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// Sleep implements Clock against the manual time line, waking on
// Advance or on context cancellation.
func (c *ManualClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	stop := context.AfterFunc(ctx, c.cond.Broadcast)
	defer stop()
	c.mu.Lock()
	deadline := c.now.Add(d)
	for c.now.Before(deadline) {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return err
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
	return ctx.Err()
}

// ReplicaUnits flattens an experiment × replica grid into units. With
// replicas <= 1 the unit IDs are the experiment IDs (so the merged
// manifest interoperates with single-process `ufsim -resume`); with more
// replicas each unit gets a derived seed and an ID like "fig3#2".
func ReplicaUnits(experiments []string, baseSeed uint64, quick bool, replicas int) []Unit {
	if replicas < 1 {
		replicas = 1
	}
	units := make([]Unit, 0, len(experiments)*replicas)
	for _, id := range experiments {
		for r := 0; r < replicas; r++ {
			u := Unit{ID: UnitID(id), Experiment: id, Seed: baseSeed, Quick: quick}
			if replicas > 1 {
				u.ID = UnitID(fmt.Sprintf("%s#%d", id, r))
				// The same splitmix64 odd-constant mix the runner's
				// retry reseeding uses, keyed by replica.
				if r > 0 {
					u.Seed = baseSeed ^ (uint64(r) * 0x9E3779B97F4A7C15)
				}
			}
			units = append(units, u)
		}
	}
	return units
}
