package sweepd

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func testEntry(id string, st UnitState) stateEntry {
	return stateEntry{
		Unit:  Unit{ID: UnitID(id), Experiment: id, Seed: 7, Quick: true},
		State: st,
	}
}

func entryStates(entries []stateEntry) map[string]UnitState {
	out := map[string]UnitState{}
	for _, e := range entries {
		out[string(e.Unit.ID)] = e.State
	}
	return out
}

// readManifestGen returns the active generation recorded on disk.
func readManifestGen(t *testing.T, dir string) uint64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, JournalManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var man journalManifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	return man.Generation
}

// TestJournalAppendRecover: appended transitions survive a close/reopen
// cycle, last record per unit winning.
func TestJournalAppendRecover(t *testing.T) {
	dir := t.TempDir()
	js, entries, salvage, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || salvage != nil {
		t.Fatalf("fresh open: entries=%d salvage=%v", len(entries), salvage)
	}
	for _, e := range []stateEntry{
		testEntry("a", UnitPending),
		testEntry("b", UnitPending),
		testEntry("a", UnitDone),
		testEntry("b", UnitQuarantined),
		testEntry("c", UnitDone),
	} {
		if err := js.append(e); err != nil {
			t.Fatal(err)
		}
	}
	js.Close()

	_, entries, salvage, err = openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if salvage != nil {
		t.Fatalf("clean recovery produced salvage: %+v", salvage)
	}
	got := entryStates(entries)
	want := map[string]UnitState{"a": UnitDone, "b": UnitQuarantined, "c": UnitDone}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for id, st := range want {
		if got[id] != st {
			t.Fatalf("unit %s recovered as %s, want %s", id, got[id], st)
		}
	}
}

// TestJournalTornTailTruncated: a partial record at the end (crash
// mid-append) is truncated — committed records replay, recovery never
// fails, and the salvage report says what was dropped.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	js, _, _, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := js.append(testEntry("a", UnitDone)); err != nil {
		t.Fatal(err)
	}
	if err := js.append(testEntry("b", UnitDone)); err != nil {
		t.Fatal(err)
	}
	gen := js.gen
	js.Close()

	// Simulate the crash: a half-written frame at the tail.
	walPath := filepath.Join(dir, journalFileName(gen))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	whole := encodeFrame([]byte(`{"state":"done"}`))
	if _, err := f.Write(whole[:len(whole)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recovered, salv, err := openJournalOS(dir)
	if err != nil {
		t.Fatalf("torn tail must never be fatal: %v", err)
	}
	got := entryStates(recovered)
	if got["a"] != UnitDone || got["b"] != UnitDone || len(got) != 2 {
		t.Fatalf("recovered %v, want a+b done", got)
	}
	if salv == nil || salv.Kind != "torn-tail" {
		t.Fatalf("salvage = %+v, want torn-tail", salv)
	}
	if salv.RecordsReplayed != 2 || salv.DroppedBytes != int64(len(whole)-5) {
		t.Fatalf("salvage = %+v", salv)
	}
	rep, err := ReadSalvageReport(nil, dir)
	if err != nil || rep.Kind != "torn-tail" {
		t.Fatalf("salvage report on disk: %+v, %v", rep, err)
	}
}

// openJournalOS is shorthand used by tests that reopen repeatedly.
func openJournalOS(dir string) (*journalStore, []stateEntry, *SalvageReport, error) {
	return openJournal(vfs.OS{}, dir, true, nil)
}

// TestJournalMidStreamCorruption: a flipped bit in a record that has
// intact data after it abandons the journal — recovery falls back to
// the snapshot alone and reports it, rather than replaying a log whose
// integrity is broken.
func TestJournalMidStreamCorruption(t *testing.T) {
	dir := t.TempDir()
	js, _, _, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot state: nothing. Journal: three records.
	for _, id := range []string{"a", "b", "c"} {
		if err := js.append(testEntry(id, UnitDone)); err != nil {
			t.Fatal(err)
		}
	}
	gen := js.gen
	js.Close()

	walPath := filepath.Join(dir, journalFileName(gen))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 1 // inside the first record's payload
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recovered, salv, err := openJournalOS(dir)
	if err != nil {
		t.Fatalf("mid-stream corruption must fall back, not fail: %v", err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %v, want snapshot-only (empty)", entryStates(recovered))
	}
	if salv == nil || salv.Kind != "mid-stream-corruption" {
		t.Fatalf("salvage = %+v", salv)
	}
	if salv.RecordsReplayed != 0 || salv.DroppedBytes != int64(len(data)) {
		t.Fatalf("salvage = %+v", salv)
	}
}

// TestJournalCompaction: the store rolls generations — snapshot absorbs
// the tail, the manifest advances, and the previous generation's files
// are retired.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	js, _, _, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := js.gen
	if err := js.append(testEntry("a", UnitDone)); err != nil {
		t.Fatal(err)
	}
	if !js.shouldCompact(1) {
		t.Fatal("one appended record must trip shouldCompact(1)")
	}
	if err := js.compact([]stateEntry{testEntry("a", UnitDone)}); err != nil {
		t.Fatal(err)
	}
	if js.gen != gen0+1 {
		t.Fatalf("generation = %d, want %d", js.gen, gen0+1)
	}
	if got := readManifestGen(t, dir); got != js.gen {
		t.Fatalf("manifest generation = %d, want %d", got, js.gen)
	}
	for _, stale := range []string{snapshotFileName(gen0), journalFileName(gen0)} {
		if _, err := os.Stat(filepath.Join(dir, stale)); err == nil {
			t.Fatalf("stale generation file %s not retired", stale)
		}
	}
	// Post-compaction appends land in the new journal and recover.
	if err := js.append(testEntry("b", UnitDone)); err != nil {
		t.Fatal(err)
	}
	js.Close()
	_, recovered, _, err := openJournalOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := entryStates(recovered)
	if got["a"] != UnitDone || got["b"] != UnitDone {
		t.Fatalf("recovered %v", got)
	}
}

// TestJournalLegacyMigration: a pre-journal sweep-state.json is folded
// into generation 1 on resume and then retired.
func TestJournalLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	doc := stateFile{Units: []stateEntry{testEntry("a", UnitDone), testEntry("b", UnitPending)}}
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(filepath.Join(dir, StateName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	js, recovered, salv, err := openJournalOS(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	if salv != nil {
		t.Fatalf("clean migration produced salvage: %+v", salv)
	}
	got := entryStates(recovered)
	if got["a"] != UnitDone || got["b"] != UnitPending {
		t.Fatalf("migrated %v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, StateName)); err == nil {
		t.Fatalf("legacy %s not retired after migration", StateName)
	}
	if got := readManifestGen(t, dir); got == 0 {
		t.Fatal("no journal manifest after migration")
	}
}

// TestJournalCorruptLegacyExplicit: resume over a damaged legacy state
// file errors by name instead of silently starting a fresh sweep.
func TestJournalCorruptLegacyExplicit(t *testing.T) {
	for name, content := range map[string]string{
		"truncated": `{"units": [{"unit": {"id": "a"`,
		"garbage":   "\x00\x01not json at all",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, StateName), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := openJournalOS(dir)
			if err == nil {
				t.Fatal("corrupt legacy state resumed silently")
			}
			if !strings.Contains(err.Error(), StateName) {
				t.Fatalf("error does not name the damaged file: %v", err)
			}
		})
	}
}

// TestJournalFreshOpenIgnoresOldState: without resume, existing journal
// state is superseded, not replayed — and the generation number still
// advances past the old files so they can never collide.
func TestJournalFreshOpenIgnoresOldState(t *testing.T) {
	dir := t.TempDir()
	js, _, _, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := js.append(testEntry("a", UnitDone)); err != nil {
		t.Fatal(err)
	}
	oldGen := js.gen
	js.Close()

	js2, recovered, _, err := openJournal(vfs.OS{}, dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer js2.Close()
	if len(recovered) != 0 {
		t.Fatalf("fresh open replayed %v", entryStates(recovered))
	}
	if js2.gen <= oldGen {
		t.Fatalf("fresh generation %d does not advance past %d", js2.gen, oldGen)
	}
}

// TestScanJournalEmptyAndBogusLength: edge frames classify as torn, not
// corrupt, and never panic.
func TestScanJournalEmptyAndBogusLength(t *testing.T) {
	if s := scanJournal(nil); s.records != 0 || s.tornAt != -1 || s.corruptAt != -1 {
		t.Fatalf("empty scan = %+v", s)
	}
	if s := scanJournal([]byte{1, 2, 3}); s.tornAt != 0 {
		t.Fatalf("short header scan = %+v", s)
	}
	// A frame whose length field claims more than the file holds.
	frame := encodeFrame([]byte(`{}`))
	frame[0] = 0xFF
	frame[1] = 0xFF
	if s := scanJournal(frame); s.tornAt != 0 || s.corruptAt != -1 {
		t.Fatalf("bogus length scan = %+v", s)
	}
}
