package sweepd

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestChaosExactlyOnceOrQuarantined is the headline robustness proof:
// a fleet of workers runs a sweep through a transport that drops,
// delays, duplicates, and partitions requests, while a kill schedule
// murders workers mid-trial and the fleet respawns replacements. Under
// all of that, every unit must end the sweep either
//
//   - done, merged into the results exactly once (executions may repeat
//     — that is what leases are for — but the merge may not), or
//   - explicitly quarantined with its failure history preserved on disk.
//
// Three poison units fail deterministically on every worker; they must
// be the quarantined ones.
func TestChaosExactlyOnceOrQuarantined(t *testing.T) {
	const nUnits = 36
	units := testUnits(nUnits)
	poison := map[UnitID]bool{"u03": true, "u17": true, "u29": true}

	dir := t.TempDir()
	c, err := NewCoordinator(CoordinatorConfig{
		LeaseTTL:        250 * time.Millisecond,
		ExpiryBudget:    40, // expiries here are chaos, not poison
		QuarantineAfter: 3,
		RetryBase:       5 * time.Millisecond,
		RetryJitter:     5 * time.Millisecond,
		Seed:            0xC0FFEE,
		StateDir:        dir,
	}, units)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	plan := faults.NewNetPlan(faults.DefaultNetConfig(0.5), 0xC0FFEE)
	var mu sync.Mutex
	exec := map[UnitID]int{}
	newRunner := func(workerID string) UnitRunner {
		return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			mu.Lock()
			exec[u.ID]++
			mu.Unlock()
			progress("warmup")           // first checkpoint: where kills land
			time.Sleep(time.Millisecond) // a sliver of real work
			progress("measuring")
			if poison[u.ID] {
				return UnitResult{Error: "poison unit", Attempts: 1}
			}
			return UnitResult{OK: true, Result: "ok " + string(u.ID), Attempts: 1}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep := RunFleet(ctx, c, FleetConfig{
		Workers: 4, Jobs: 2,
		NewRunner: newRunner,
		Plan:      plan,
		Respawn:   true, MaxRespawns: 200,
		PollMax: 100 * time.Millisecond,
	})
	if ctx.Err() != nil {
		t.Fatalf("chaos sweep timed out; fleet=%+v stats=%+v snapshot=%+v", rep, plan.Stats(), c.Snapshot())
	}
	select {
	case <-c.Done():
	default:
		t.Fatalf("fleet returned but sweep not done: fleet=%+v snapshot=%+v", rep, c.Snapshot())
	}

	st := c.Snapshot()
	mu.Lock()
	defer mu.Unlock()
	for _, u := range st.Units {
		id := u.Unit.ID
		switch {
		case poison[id]:
			if u.State != UnitQuarantined {
				t.Errorf("poison %s ended %s, want quarantined (%+v)", id, u.State, u)
				continue
			}
			if _, err := os.Stat(QuarantinePath(dir, id)); err != nil {
				t.Errorf("poison %s quarantined without artifact: %v", id, err)
			}
			if len(u.Failures) < 3 {
				t.Errorf("poison %s quarantined with %d failures on record, want >=3", id, len(u.Failures))
			}
		case u.State == UnitDone:
			if u.Completions != 1 {
				t.Errorf("%s merged %d times, want exactly 1", id, u.Completions)
			}
			if exec[id] < 1 {
				t.Errorf("%s done but never executed", id)
			}
		case u.State == UnitQuarantined:
			// Legal under extreme chaos (expiry budget exhausted), but it
			// must be explicit: artifact on disk, history preserved.
			if _, err := os.Stat(QuarantinePath(dir, id)); err != nil {
				t.Errorf("%s quarantined without artifact: %v", id, err)
			}
		default:
			t.Errorf("%s ended non-terminal: %+v", id, u)
		}
	}

	// The fault mix must actually have exercised the hard paths: drops
	// (retry), dropped responses (duplicate delivery), duplicates, and
	// kills (lease expiry + respawn). Deterministic in the plan seed.
	stats := plan.Stats()
	if stats.DroppedRequests == 0 || stats.DroppedResponses == 0 || stats.Duplicates == 0 {
		t.Errorf("fault mix too tame to prove anything: %+v", stats)
	}
	if rep.Killed == 0 {
		t.Errorf("no worker was killed mid-trial: %+v (stats %+v)", rep, stats)
	}
	t.Logf("chaos: fleet=%+v stats=%+v executions=%d units", rep, stats, len(exec))
}

// TestFleetResumeAfterCoordinatorCrash kills the coordinator mid-sweep
// (with leases in flight), then resumes from its state dir with a fresh
// fleet: units that merged before the crash must not run again, and the
// resumed sweep must finish everything else.
func TestFleetResumeAfterCoordinatorCrash(t *testing.T) {
	units := testUnits(12)
	dir := t.TempDir()

	c1, err := NewCoordinator(CoordinatorConfig{StateDir: dir}, units)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	var muA sync.Mutex
	execA := map[UnitID]int{}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	go func() {
		// Pull the plug once about half the sweep has merged.
		for {
			if c1.Snapshot().Done >= 5 {
				cancelA()
				return
			}
			select {
			case <-ctxA.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	RunFleet(ctxA, c1, FleetConfig{
		Workers: 2, Jobs: 1,
		NewRunner: func(workerID string) UnitRunner {
			return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
				muA.Lock()
				execA[u.ID]++
				muA.Unlock()
				time.Sleep(time.Millisecond)
				if ctx.Err() != nil {
					return UnitResult{Error: "aborted"}
				}
				return UnitResult{OK: true, Result: "phase A"}
			}
		},
	})
	doneA := map[UnitID]bool{}
	for _, u := range c1.Snapshot().Units {
		if u.State == UnitDone {
			doneA[u.Unit.ID] = true
		}
	}
	if len(doneA) < 5 {
		t.Fatalf("phase A merged only %d units", len(doneA))
	}

	// "Crash": c1 is gone; a new coordinator resumes from the state dir.
	c2, err := NewCoordinator(CoordinatorConfig{StateDir: dir, Resume: true}, units)
	if err != nil {
		t.Fatalf("resume NewCoordinator: %v", err)
	}
	var muB sync.Mutex
	execB := map[UnitID]int{}
	ctxB, cancelB := context.WithTimeout(context.Background(), time.Minute)
	defer cancelB()
	RunFleet(ctxB, c2, FleetConfig{
		Workers: 2, Jobs: 1,
		NewRunner: func(workerID string) UnitRunner {
			return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
				muB.Lock()
				execB[u.ID]++
				muB.Unlock()
				return UnitResult{OK: true, Result: "phase B"}
			}
		},
	})
	select {
	case <-c2.Done():
	default:
		t.Fatalf("resumed sweep not done: %+v", c2.Snapshot())
	}

	st := c2.Snapshot()
	if st.Done != len(units) {
		t.Fatalf("resumed sweep finished with done=%d, want %d (%+v)", st.Done, len(units), st)
	}
	muB.Lock()
	defer muB.Unlock()
	for id := range doneA {
		if execB[id] != 0 {
			t.Errorf("%s was done before the crash but re-ran %d times after resume", id, execB[id])
		}
	}
	for _, u := range units {
		if !doneA[u.ID] && execB[u.ID] != 1 {
			t.Errorf("unfinished unit %s ran %d times in phase B, want 1", u.ID, execB[u.ID])
		}
	}
}
