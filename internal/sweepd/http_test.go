package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPServerSlowLorisClosed: NewHTTPServer's ReadHeaderTimeout
// evicts a connection that dribbles its headers forever, and the server
// keeps serving honest clients afterward. httptest.Server builds its
// own http.Server, so this test runs the real constructor on a real
// listener — the exact configuration `ufsim serve` uses.
func TestHTTPServerSlowLorisClosed(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(1))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewHTTPServer("", NewServer(c, ServerConfig{}), HTTPTimeouts{
		ReadHeader: 150 * time.Millisecond,
	})
	go srv.Serve(ln)
	defer srv.Close()

	// The loris: open a connection, send half a request line, then hold.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/lease HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatalf("writing partial headers: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := conn.Read(make([]byte, 1))
	if err == nil {
		t.Fatalf("read %d bytes; expected the server to close the dribbling connection", n)
	}

	// An honest request on a fresh connection still gets served.
	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/status")
	if err != nil {
		t.Fatalf("healthy request after loris eviction: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after loris eviction: %s", resp.Status)
	}
}

// TestHTTPTimeoutsDefaults: the zero HTTPTimeouts value resolves to the
// documented defaults, and NewHTTPServer installs all four.
func TestHTTPTimeoutsDefaults(t *testing.T) {
	srv := NewHTTPServer(":0", http.NotFoundHandler(), HTTPTimeouts{})
	if srv.ReadHeaderTimeout != 5*time.Second || srv.ReadTimeout != time.Minute ||
		srv.WriteTimeout != time.Minute || srv.IdleTimeout != 2*time.Minute {
		t.Fatalf("default timeouts: header=%v read=%v write=%v idle=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout)
	}
}

// TestHandlerPanicBecomes500: a panicking handler yields a 500 with the
// stack logged, not a killed connection.
func TestHandlerPanicBecomes500(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	locked := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	})
	h := recovered(locked, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("coordinator bug")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/lease")
	if err != nil {
		t.Fatalf("request to panicking handler: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %s, want 500", resp.Status)
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "panic serving GET /v1/lease: coordinator bug") {
		t.Fatalf("panic not identified in log: %q", logged)
	}
	if !strings.Contains(logged, "goroutine") {
		t.Fatalf("no stack in panic log: %q", logged)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestHTTP429PropagatesOverloadError: a shed request comes back over
// the wire as 429 + Retry-After + JSON hint, and HTTPClient rebuilds
// the same *OverloadError the loopback transport would have returned —
// so worker backoff cannot tell the transports apart.
func TestHTTP429PropagatesOverloadError(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(2))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	gate := NewGate(GateConfig{
		PerEndpoint: map[string]GateLimits{
			EndpointLease: {Inflight: 1, Queue: 1, QueueWait: time.Minute},
		},
	})
	srv := httptest.NewServer(NewServer(c, ServerConfig{Gate: gate}))
	defer srv.Close()

	// Saturate lease admission from inside: hold the slot and the queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rel, err := gate.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("holding the slot: %v", err)
	}
	defer rel()
	go gate.Acquire(ctx, EndpointLease)
	waitForQueued(t, gate, EndpointLease, 1)

	// Raw HTTP first: the response shape is part of the protocol.
	resp, err := http.Post(srv.URL+"/v1/lease", "application/json", strings.NewReader(`{"worker":"w","max":1}`))
	if err != nil {
		t.Fatalf("POST /v1/lease: %v", err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed request answered %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var sb shedBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil || sb.RetryAfterMS <= 0 {
		t.Fatalf("shed body %+v (err %v), want a positive retry_after_ms", sb, err)
	}
	resp.Body.Close()

	// Now through HTTPClient: the typed error round-trips.
	hc := &HTTPClient{Base: srv.URL}
	_, err = hc.Lease(context.Background(), LeaseRequest{Worker: "w", Max: 1})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("HTTPClient.Lease returned %v, want *OverloadError", err)
	}
	if oe.Endpoint != "lease" {
		t.Fatalf("rebuilt endpoint %q, want lease", oe.Endpoint)
	}
	// Queue is saturated, so the server hint is 1.25×QueueWait; the
	// client must carry the body's precise value, not the coarse header.
	if want := time.Duration(sb.RetryAfterMS) * time.Millisecond; oe.RetryAfter != want {
		t.Fatalf("rebuilt RetryAfter %v, want the body hint %v", oe.RetryAfter, want)
	}

	// Heartbeat is a different endpoint and stays open.
	if _, err := hc.Heartbeat(context.Background(), HeartbeatRequest{Worker: "w"}); err != nil {
		t.Fatalf("heartbeat while lease overloaded: %v", err)
	}
}

// hintClock records every Sleep a worker performs without actually
// sleeping, so a test can inspect how the worker honored a hint.
type hintClock struct {
	sleeps chan time.Duration
}

func (h *hintClock) Now() time.Time { return time.Now() }

func (h *hintClock) Sleep(ctx context.Context, d time.Duration) error {
	select {
	case h.sleeps <- d:
	default:
	}
	return ctx.Err()
}

// TestWorkerHonorsRetryAfterOverHTTP: an idle coordinator's lease hint
// (RetryAfterMillis) survives the HTTP round trip and the worker sleeps
// within [hint, 1.5×hint] — the stretch band that keeps a shared hint
// from re-synchronizing the herd.
func TestWorkerHonorsRetryAfterOverHTTP(t *testing.T) {
	const ttl = 3 * time.Second
	c, err := NewCoordinator(CoordinatorConfig{LeaseTTL: ttl}, testUnits(2))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	// Another worker holds every unit, so a lease grants nothing and
	// hints TTL/3 — the reap cadence.
	if got := c.Lease(LeaseRequest{Worker: "hog", Max: 2}); len(got.Units) != 2 {
		t.Fatalf("hog leased %d units, want 2", len(got.Units))
	}
	srv := httptest.NewServer(NewServer(c, ServerConfig{}))
	defer srv.Close()

	clk := &hintClock{sleeps: make(chan time.Duration, 1)}
	w := NewWorker(WorkerConfig{
		ID:     "patient",
		Client: &HTTPClient{Base: srv.URL},
		Run: func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			t.Error("no unit should be grantable")
			return UnitResult{}
		},
		Clock:   clk,
		PollMax: 10 * time.Second, // far above the hint: the hint must win
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	var slept time.Duration
	select {
	case slept = <-clk.sleeps:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never slept on the idle hint")
	}
	cancel()
	<-done

	hint := ttl / 3
	if slept < hint || slept > hint+hint/2 {
		t.Fatalf("worker slept %v on a %v hint, want within [hint, 1.5×hint]", slept, hint)
	}
}

// TestConcurrentStatusUnderTraffic: GET /v1/status races protocol
// traffic (with the gate attached, so the overload section is built
// too) without data races or torn snapshots. Meaningful under -race.
func TestConcurrentStatusUnderTraffic(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(24))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	gate := NewGate(GateConfig{Default: GateLimits{Inflight: 8}})
	c.AttachGate(gate)
	srv := httptest.NewServer(NewServer(c, ServerConfig{Gate: gate}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Status hammerers run until the sweep finishes.
	var statusReads atomic.Int64
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 4; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/v1/status")
				if err != nil {
					continue
				}
				var st Status
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					t.Errorf("torn status snapshot: %v", err)
					return
				}
				if st.Overload == nil {
					t.Error("status without overload section while gate attached")
					return
				}
				statusReads.Add(1)
			}
		}()
	}

	var mu sync.Mutex
	exec := map[UnitID]int{}
	var workers sync.WaitGroup
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("w%d", i)
		w := NewWorker(WorkerConfig{
			ID: id, Client: &HTTPClient{Base: srv.URL},
			Run: okRunner(&mu, exec)(id), Jobs: 2,
		})
		workers.Add(1)
		go func() {
			defer workers.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}()
	}
	workers.Wait()
	close(stop)
	pollers.Wait()

	select {
	case <-c.Done():
	default:
		t.Fatalf("sweep not done: %+v", c.Snapshot())
	}
	if statusReads.Load() == 0 {
		t.Fatal("no status snapshot was read during traffic")
	}
}
