package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// UnitResult is what a UnitRunner produces for one unit.
type UnitResult struct {
	// OK marks success; Result is the rendered experiment output.
	OK     bool
	Result string
	// Error and Artifact describe a failure (the runner's crash
	// artifact JSON, shipped to the coordinator verbatim).
	Error    string
	Artifact json.RawMessage
	// Attempts and DurationMS are supervision bookkeeping.
	Attempts   int
	DurationMS int64
}

// UnitRunner executes one unit. ctx cancellation must abort the run
// promptly (the worker cancels on heartbeat-abandon, kill, and
// shutdown); progress streams checkpoint notes that ride out on
// heartbeats. ExperimentRunner adapts the supervised runner; tests plug
// in trivial runners.
type UnitRunner func(ctx context.Context, u Unit, progress func(note string)) UnitResult

// ErrKilled is returned by Worker.Run when the worker's chaos kill
// schedule fired: the worker died mid-trial without completing or
// releasing anything, exactly the crash lease expiry exists to absorb.
var ErrKilled = errors.New("sweepd: worker killed by chaos schedule")

// ErrBreakerOpen is the circuit breaker's fast-fail: the coordinator
// has failed enough consecutive calls that hammering it would only
// deepen the outage, so calls are refused locally until the cooldown
// admits a probe.
var ErrBreakerOpen = errors.New("sweepd: circuit breaker open; coordinator not probed")

// WorkerConfig tunes one worker.
type WorkerConfig struct {
	// ID names the worker in leases and failure records.
	ID string
	// Client is the coordinator transport (HTTP, loopback, or faulty).
	Client Client
	// Run executes leased units.
	Run UnitRunner
	// Clock supplies time; nil means the wall clock.
	Clock Clock
	// Jobs is how many units to lease and run concurrently; below 1
	// means 1.
	Jobs int
	// PollMax caps the idle backoff between lease polls; zero means 2s.
	PollMax time.Duration
	// RetryBase is the first rung of the jittered exponential transport
	// backoff; zero means 50ms.
	RetryBase time.Duration
	// Seed feeds the jitter stream; zero derives one from ID, so a
	// fleet of workers started identically still spreads its retries.
	Seed uint64
	// CompleteRetries is how many times a failed Complete delivery is
	// retried before giving up (the lease then simply expires); zero
	// means 4.
	CompleteRetries int
	// BatchCompletes ships each lease round's outcomes as one
	// CompleteBatch request (collected over BatchLinger) instead of one
	// Complete per unit — the worker half of completion pipelining.
	BatchCompletes bool
	// BatchLinger is how long the batch collector waits after the first
	// outcome for siblings to finish; zero means 15ms.
	BatchLinger time.Duration
	// BreakerAfter is how many consecutive transport failures trip the
	// circuit breaker; zero means 8, negative disables the breaker.
	// Shed responses (OverloadError) count as successes — an overloaded
	// coordinator is alive, and backoff, not the breaker, handles it.
	BreakerAfter int
	// BreakerCooldown is how long an open breaker waits before
	// half-opening on a single probe; zero means 2s.
	BreakerCooldown time.Duration
	// KillAfterUnits arms the chaos kill: the worker dies mid-trial
	// while running its nth started unit. Zero disables.
	KillAfterUnits int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Worker leases units from a coordinator and runs them until the sweep
// is done, the coordinator drains, or its context is cancelled.
//
// Shutdown has two grades, mirroring `ufsim worker`'s signal handling:
// Drain (first signal) stops leasing and lets in-flight units finish
// and report; cancelling the Run context (second signal) aborts
// in-flight units and releases their leases, so the coordinator can
// reassign them immediately instead of waiting out the TTL.
type Worker struct {
	cfg     WorkerConfig
	breaker *breakerClient

	rngMu sync.Mutex
	rng   *sim.Rand

	draining atomic.Bool
	dead     atomic.Bool
	killOnce sync.Once
	killFn   context.CancelFunc

	started atomic.Int64
}

// NewWorker builds a worker; Client and Run are required.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 2 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = sim.HashString(cfg.ID)
	}
	if cfg.CompleteRetries <= 0 {
		cfg.CompleteRetries = 4
	}
	if cfg.BatchLinger <= 0 {
		cfg.BatchLinger = 15 * time.Millisecond
	}
	if cfg.BreakerAfter == 0 {
		cfg.BreakerAfter = 8
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	w := &Worker{cfg: cfg, rng: sim.NewRand(cfg.Seed)}
	if cfg.BreakerAfter > 0 {
		w.breaker = &breakerClient{
			inner:    cfg.Client,
			clock:    cfg.Clock,
			after:    cfg.BreakerAfter,
			cooldown: cfg.BreakerCooldown,
		}
		w.cfg.Client = w.breaker
	}
	return w
}

// BreakerStats reports the worker's circuit-breaker activity (zero when
// the breaker is disabled).
func (w *Worker) BreakerStats() BreakerStats {
	if w.breaker == nil {
		return BreakerStats{}
	}
	return w.breaker.snapshot()
}

// newRetrier derives an independent jittered-backoff schedule. Each
// caller (the lease loop, each completion delivery) gets its own stream
// split from the worker seed, so schedules are deterministic per worker
// yet uncorrelated across workers and across purposes.
func (w *Worker) newRetrier(label string) *retrier {
	w.rngMu.Lock()
	rng := w.rng.Split(sim.HashString(label))
	w.rngMu.Unlock()
	return &retrier{rng: rng, base: w.cfg.RetryBase, max: w.cfg.PollMax}
}

// Drain stops the worker from leasing new units; in-flight units finish
// and report, then Run returns nil.
func (w *Worker) Drain() { w.draining.Store(true) }

// die is the chaos kill: mark dead and cancel everything. A dead worker
// completes nothing and releases nothing.
func (w *Worker) die() {
	w.killOnce.Do(func() {
		w.dead.Store(true)
		fmt.Fprintf(w.cfg.Log, "%s: KILLED mid-trial (chaos schedule)\n", w.cfg.ID)
		if w.killFn != nil {
			w.killFn()
		}
	})
}

// Run is the worker main loop: lease, execute, report, repeat. It
// returns nil when the sweep is done or draining, ErrKilled when the
// chaos schedule fired, and ctx.Err() on cancellation.
func (w *Worker) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.killFn = cancel

	retry := w.newRetrier("lease")
	for {
		if w.dead.Load() {
			return ErrKilled
		}
		if w.draining.Load() {
			fmt.Fprintf(w.cfg.Log, "%s: drained, exiting\n", w.cfg.ID)
			return nil
		}
		if err := runCtx.Err(); err != nil {
			return err
		}

		resp, err := w.cfg.Client.Lease(runCtx, LeaseRequest{Worker: w.cfg.ID, Max: w.cfg.Jobs})
		if w.dead.Load() {
			return ErrKilled
		}
		if err != nil {
			if runCtx.Err() != nil {
				return runCtx.Err()
			}
			// Transport fault, shed, or open breaker: back off and retry.
			// A shed carries the coordinator's own hint — honor it
			// (stretched, so the herd does not re-synchronize on it).
			wait := retry.next()
			var oe *OverloadError
			if errors.As(err, &oe) {
				wait = retry.stretch(oe.RetryAfter)
			}
			if err := w.cfg.Clock.Sleep(runCtx, wait); err != nil {
				return err
			}
			continue
		}
		retry.reset()
		if resp.Degraded {
			// The coordinator can no longer persist state and is refusing
			// leases; idling here would just hide the outage. Exit loudly.
			fmt.Fprintf(w.cfg.Log, "%s: coordinator degraded, exiting\n", w.cfg.ID)
			return ErrDegraded
		}
		if resp.Done || resp.Draining {
			return nil
		}
		if len(resp.Units) == 0 {
			wait := time.Duration(resp.RetryAfterMillis) * time.Millisecond
			if wait <= 0 || wait > w.cfg.PollMax {
				wait = w.cfg.PollMax
			}
			// Jitter the shared hint: every idle worker gets the same
			// RetryAfterMillis, and sleeping it verbatim would march the
			// fleet back in lockstep.
			if err := w.cfg.Clock.Sleep(runCtx, retry.stretch(wait)); err != nil {
				return err
			}
			continue
		}

		var sink *completionSink
		if w.cfg.BatchCompletes {
			sink = w.startSink(runCtx, len(resp.Units))
		}
		var wg sync.WaitGroup
		for _, lu := range resp.Units {
			wg.Add(1)
			go func(lu LeasedUnit) {
				defer wg.Done()
				w.execute(runCtx, ctx, lu, sink)
			}(lu)
		}
		wg.Wait()
		if sink != nil {
			close(sink.ch)
			<-sink.done
		}
	}
}

// execute runs one leased unit under a heartbeat loop and reports its
// outcome. runCtx is the worker's cancellable context (kill, abort);
// parent distinguishes an external abort (release the lease) from an
// internal abandon (the lease is no longer ours — walk away silently).
// With a non-nil sink the outcome goes to the batch collector instead
// of an individual Complete round trip.
func (w *Worker) execute(runCtx, parent context.Context, lu LeasedUnit, sink *completionSink) {
	n := w.started.Add(1)
	killThis := w.cfg.KillAfterUnits > 0 && n == int64(w.cfg.KillAfterUnits)

	unitCtx, cancelUnit := context.WithCancel(runCtx)
	defer cancelUnit()

	var noteMu sync.Mutex
	var note string
	var killFired atomic.Bool
	progress := func(s string) {
		if killThis && !killFired.Swap(true) {
			// Mid-trial death: the first checkpoint of the doomed unit
			// is as "mid" as it gets.
			w.die()
			return
		}
		noteMu.Lock()
		note = s
		noteMu.Unlock()
	}

	// Heartbeat at a third of the TTL, carrying the latest note. A
	// transport error is left for the next tick (a missed heartbeat is
	// exactly what the lease TTL is sized to absorb); an Abandon reply
	// cancels the run — the unit belongs to someone else now.
	ttl := time.Duration(lu.TTLMillis) * time.Millisecond
	every := ttl / 3
	if every <= 0 {
		every = time.Second
	}
	hbDone := make(chan struct{})
	abandoned := &atomic.Bool{}
	go func() {
		defer close(hbDone)
		for {
			if err := w.cfg.Clock.Sleep(unitCtx, every); err != nil {
				return
			}
			noteMu.Lock()
			s := note
			noteMu.Unlock()
			resp, err := w.cfg.Client.Heartbeat(unitCtx, HeartbeatRequest{
				Worker: w.cfg.ID, Unit: lu.Unit.ID, Epoch: lu.Epoch, Note: s,
			})
			if err != nil {
				continue
			}
			if resp.Abandon {
				abandoned.Store(true)
				cancelUnit()
				return
			}
		}
	}()

	start := w.cfg.Clock.Now()
	res := w.cfg.Run(unitCtx, lu.Unit, progress)
	cancelUnit()
	<-hbDone

	if w.dead.Load() {
		return // crashed: no completion, no release — the lease expires
	}
	if killThis {
		// The runner never reported progress; die before reporting so
		// the kill still looks like a crash to the coordinator.
		w.die()
		return
	}
	if abandoned.Load() {
		fmt.Fprintf(w.cfg.Log, "%s: abandoned %s (lease reassigned)\n", w.cfg.ID, lu.Unit.ID)
		return
	}
	if parent.Err() != nil || runCtx.Err() != nil {
		// Aborted from outside: hand the lease back so the coordinator
		// reassigns immediately instead of waiting out the TTL. The
		// worker is shutting down, so use a short independent context.
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer rcancel()
		w.cfg.Client.Release(rctx, ReleaseRequest{
			Worker: w.cfg.ID,
			Units:  []UnitEpoch{{Unit: lu.Unit.ID, Epoch: lu.Epoch}},
			Reason: "worker aborted",
		})
		fmt.Fprintf(w.cfg.Log, "%s: released %s (aborted)\n", w.cfg.ID, lu.Unit.ID)
		return
	}

	if res.DurationMS == 0 {
		res.DurationMS = w.cfg.Clock.Now().Sub(start).Milliseconds()
	}
	if sink != nil {
		sink.ch <- CompletedUnit{
			Unit: lu.Unit.ID, Epoch: lu.Epoch,
			OK: res.OK, Result: res.Result, Error: res.Error,
			Artifact: res.Artifact, Attempts: res.Attempts, DurationMS: res.DurationMS,
		}
		return
	}
	w.complete(runCtx, lu, res)
}

// completionSink collects one lease round's outcomes for batched
// delivery. ch is buffered to the round's unit count so executors never
// block on it; Run closes it after the round's WaitGroup drains and
// waits on done for the final flush.
type completionSink struct {
	ch   chan CompletedUnit
	done chan struct{}
}

// startSink launches the batch collector for one lease round.
func (w *Worker) startSink(ctx context.Context, capacity int) *completionSink {
	s := &completionSink{ch: make(chan CompletedUnit, capacity), done: make(chan struct{})}
	go w.collectCompletions(ctx, s)
	return s
}

// collectCompletions gathers outcomes into batches: the first arrival
// opens a linger window for siblings to land in, then everything
// buffered ships as one CompleteBatch. Units that died, were abandoned,
// or were released never enter the sink, so a batch only ever carries
// outcomes this worker still believes it owns.
func (w *Worker) collectCompletions(ctx context.Context, s *completionSink) {
	defer close(s.done)
	retry := w.newRetrier("complete-batch")
	for {
		cu, ok := <-s.ch
		if !ok {
			return
		}
		batch := []CompletedUnit{cu}
		// Linger for stragglers; a cancelled clock just means we flush
		// immediately with whatever is buffered.
		w.cfg.Clock.Sleep(ctx, w.cfg.BatchLinger)
		closed := false
	drain:
		for {
			select {
			case cu, ok := <-s.ch:
				if !ok {
					closed = true
					break drain
				}
				batch = append(batch, cu)
			default:
				break drain
			}
		}
		w.deliverBatch(ctx, retry, batch)
		if closed {
			return
		}
	}
}

// deliverBatch ships one CompleteBatch with the same retry/fencing
// discipline as complete: give-up is safe (lease expiry re-earns the
// outcome), redelivery is absorbed idempotently, and a shed response's
// hint is honored.
func (w *Worker) deliverBatch(ctx context.Context, retry *retrier, batch []CompletedUnit) {
	req := CompleteBatchRequest{Worker: w.cfg.ID, Units: batch}
	for i := 0; i <= w.cfg.CompleteRetries; i++ {
		resp, err := w.cfg.Client.CompleteBatch(ctx, req)
		if w.dead.Load() || ctx.Err() != nil {
			return
		}
		if err == nil {
			for j, accepted := range resp.Accepted {
				if !accepted && j < len(batch) {
					fmt.Fprintf(w.cfg.Log, "%s: completion of %s fenced off (stale epoch %d)\n", w.cfg.ID, batch[j].Unit, batch[j].Epoch)
				}
			}
			retry.reset()
			return
		}
		wait := retry.next()
		var oe *OverloadError
		if errors.As(err, &oe) {
			wait = retry.stretch(oe.RetryAfter)
		}
		if err := w.cfg.Clock.Sleep(ctx, wait); err != nil {
			return
		}
	}
	fmt.Fprintf(w.cfg.Log, "%s: could not deliver batch of %d completion(s); leaving them to lease expiry\n", w.cfg.ID, len(batch))
}

// complete delivers the outcome, retrying transport faults with backoff.
// Giving up is safe: the undelivered outcome is re-earned after the
// lease expires, and if an earlier delivery actually landed (a dropped
// response), the coordinator's idempotent accept absorbs the retry.
func (w *Worker) complete(ctx context.Context, lu LeasedUnit, res UnitResult) {
	req := CompleteRequest{
		Worker: w.cfg.ID, Unit: lu.Unit.ID, Epoch: lu.Epoch,
		OK: res.OK, Result: res.Result, Error: res.Error,
		Artifact: res.Artifact, Attempts: res.Attempts, DurationMS: res.DurationMS,
	}
	retry := w.newRetrier("complete/" + string(lu.Unit.ID))
	for i := 0; i <= w.cfg.CompleteRetries; i++ {
		resp, err := w.cfg.Client.Complete(ctx, req)
		if w.dead.Load() || ctx.Err() != nil {
			return
		}
		if err == nil {
			if !resp.Accepted {
				fmt.Fprintf(w.cfg.Log, "%s: completion of %s fenced off (stale epoch %d)\n", w.cfg.ID, lu.Unit.ID, lu.Epoch)
			}
			return
		}
		wait := retry.next()
		var oe *OverloadError
		if errors.As(err, &oe) {
			wait = retry.stretch(oe.RetryAfter)
		}
		if err := w.cfg.Clock.Sleep(ctx, wait); err != nil {
			return
		}
	}
	fmt.Fprintf(w.cfg.Log, "%s: could not deliver completion of %s; leaving it to lease expiry\n", w.cfg.ID, lu.Unit.ID)
}

// retrier is a full-jitter exponential backoff schedule: the nth wait
// is drawn uniformly from (0, min(max, base·2ⁿ)]. Full jitter is what
// breaks the thundering herd — two workers with the same failure
// history still sleep different amounts, because each draws from its
// own seeded stream.
type retrier struct {
	rng  *sim.Rand
	base time.Duration
	max  time.Duration
	n    int
}

// next returns the next backoff and advances the schedule.
func (r *retrier) next() time.Duration {
	ceil := r.base << uint(r.n)
	if ceil <= 0 || ceil > r.max {
		ceil = r.max
	}
	if r.n < 30 {
		r.n++
	}
	if ceil < time.Millisecond {
		ceil = time.Millisecond
	}
	return time.Duration(r.rng.IntN(int(ceil))) + 1
}

// reset rewinds the schedule after a success.
func (r *retrier) reset() { r.n = 0 }

// stretch jitters a server-supplied hint upward by as much as half —
// honoring a shared Retry-After verbatim would just re-synchronize the
// herd on the server's own clock.
func (r *retrier) stretch(d time.Duration) time.Duration {
	if d <= 0 {
		return r.next()
	}
	return d + time.Duration(r.rng.IntN(int(d/2)+1))
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerClient wraps a Client in a circuit breaker: after `after`
// consecutive transport failures it opens, fast-failing every call
// locally for `cooldown`, then half-opens on exactly one probe — a
// down coordinator gets one polite knock per cooldown instead of a
// fleet-wide hammering. Shed responses (OverloadError) and the caller's
// own cancellation never count as failures: the first means the
// coordinator is alive, the second says nothing about it at all.
type breakerClient struct {
	inner    Client
	clock    Clock
	after    int
	cooldown time.Duration

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	st          BreakerStats
}

// allow gates one call: nil to proceed (possibly as the half-open
// probe), ErrBreakerOpen to fast-fail.
func (b *breakerClient) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.st.Probes++
			return nil
		}
	default:
		// Half-open with the probe already in flight: its verdict
		// decides for everyone, so extra calls wait out the probe.
	}
	b.st.FastFails++
	return ErrBreakerOpen
}

// record books one call's outcome.
func (b *breakerClient) record(err error) {
	var oe *OverloadError
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return // the caller hung up; the coordinator was never heard from
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil || errors.As(err, &oe) {
		b.state = breakerClosed
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.after) {
		b.state = breakerOpen
		b.openedAt = b.clock.Now()
		b.st.Trips++
		b.consecutive = 0
	}
}

// snapshot copies the counters.
func (b *breakerClient) snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

// Lease implements Client.
func (b *breakerClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if err := b.allow(); err != nil {
		return LeaseResponse{}, err
	}
	resp, err := b.inner.Lease(ctx, req)
	b.record(err)
	return resp, err
}

// Heartbeat implements Client.
func (b *breakerClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := b.allow(); err != nil {
		return HeartbeatResponse{}, err
	}
	resp, err := b.inner.Heartbeat(ctx, req)
	b.record(err)
	return resp, err
}

// Complete implements Client.
func (b *breakerClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	if err := b.allow(); err != nil {
		return CompleteResponse{}, err
	}
	resp, err := b.inner.Complete(ctx, req)
	b.record(err)
	return resp, err
}

// CompleteBatch implements Client.
func (b *breakerClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	if err := b.allow(); err != nil {
		return CompleteBatchResponse{}, err
	}
	resp, err := b.inner.CompleteBatch(ctx, req)
	b.record(err)
	return resp, err
}

// Release implements Client.
func (b *breakerClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	if err := b.allow(); err != nil {
		return ReleaseResponse{}, err
	}
	resp, err := b.inner.Release(ctx, req)
	b.record(err)
	return resp, err
}
