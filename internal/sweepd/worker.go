package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// UnitResult is what a UnitRunner produces for one unit.
type UnitResult struct {
	// OK marks success; Result is the rendered experiment output.
	OK     bool
	Result string
	// Error and Artifact describe a failure (the runner's crash
	// artifact JSON, shipped to the coordinator verbatim).
	Error    string
	Artifact json.RawMessage
	// Attempts and DurationMS are supervision bookkeeping.
	Attempts   int
	DurationMS int64
}

// UnitRunner executes one unit. ctx cancellation must abort the run
// promptly (the worker cancels on heartbeat-abandon, kill, and
// shutdown); progress streams checkpoint notes that ride out on
// heartbeats. ExperimentRunner adapts the supervised runner; tests plug
// in trivial runners.
type UnitRunner func(ctx context.Context, u Unit, progress func(note string)) UnitResult

// ErrKilled is returned by Worker.Run when the worker's chaos kill
// schedule fired: the worker died mid-trial without completing or
// releasing anything, exactly the crash lease expiry exists to absorb.
var ErrKilled = errors.New("sweepd: worker killed by chaos schedule")

// WorkerConfig tunes one worker.
type WorkerConfig struct {
	// ID names the worker in leases and failure records.
	ID string
	// Client is the coordinator transport (HTTP, loopback, or faulty).
	Client Client
	// Run executes leased units.
	Run UnitRunner
	// Clock supplies time; nil means the wall clock.
	Clock Clock
	// Jobs is how many units to lease and run concurrently; below 1
	// means 1.
	Jobs int
	// PollMax caps the idle backoff between lease polls; zero means 2s.
	PollMax time.Duration
	// CompleteRetries is how many times a failed Complete delivery is
	// retried before giving up (the lease then simply expires); zero
	// means 4.
	CompleteRetries int
	// KillAfterUnits arms the chaos kill: the worker dies mid-trial
	// while running its nth started unit. Zero disables.
	KillAfterUnits int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Worker leases units from a coordinator and runs them until the sweep
// is done, the coordinator drains, or its context is cancelled.
//
// Shutdown has two grades, mirroring `ufsim worker`'s signal handling:
// Drain (first signal) stops leasing and lets in-flight units finish
// and report; cancelling the Run context (second signal) aborts
// in-flight units and releases their leases, so the coordinator can
// reassign them immediately instead of waiting out the TTL.
type Worker struct {
	cfg WorkerConfig

	draining atomic.Bool
	dead     atomic.Bool
	killOnce sync.Once
	killFn   context.CancelFunc

	started atomic.Int64
}

// NewWorker builds a worker; Client and Run are required.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.PollMax <= 0 {
		cfg.PollMax = 2 * time.Second
	}
	if cfg.CompleteRetries <= 0 {
		cfg.CompleteRetries = 4
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return &Worker{cfg: cfg}
}

// Drain stops the worker from leasing new units; in-flight units finish
// and report, then Run returns nil.
func (w *Worker) Drain() { w.draining.Store(true) }

// die is the chaos kill: mark dead and cancel everything. A dead worker
// completes nothing and releases nothing.
func (w *Worker) die() {
	w.killOnce.Do(func() {
		w.dead.Store(true)
		fmt.Fprintf(w.cfg.Log, "%s: KILLED mid-trial (chaos schedule)\n", w.cfg.ID)
		if w.killFn != nil {
			w.killFn()
		}
	})
}

// Run is the worker main loop: lease, execute, report, repeat. It
// returns nil when the sweep is done or draining, ErrKilled when the
// chaos schedule fired, and ctx.Err() on cancellation.
func (w *Worker) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.killFn = cancel

	backoff := 50 * time.Millisecond
	for {
		if w.dead.Load() {
			return ErrKilled
		}
		if w.draining.Load() {
			fmt.Fprintf(w.cfg.Log, "%s: drained, exiting\n", w.cfg.ID)
			return nil
		}
		if err := runCtx.Err(); err != nil {
			return err
		}

		resp, err := w.cfg.Client.Lease(runCtx, LeaseRequest{Worker: w.cfg.ID, Max: w.cfg.Jobs})
		if w.dead.Load() {
			return ErrKilled
		}
		if err != nil {
			if runCtx.Err() != nil {
				return runCtx.Err()
			}
			// Transport fault (or partition): back off and retry.
			if err := w.cfg.Clock.Sleep(runCtx, backoff); err != nil {
				return err
			}
			if backoff *= 2; backoff > w.cfg.PollMax {
				backoff = w.cfg.PollMax
			}
			continue
		}
		backoff = 50 * time.Millisecond
		if resp.Degraded {
			// The coordinator can no longer persist state and is refusing
			// leases; idling here would just hide the outage. Exit loudly.
			fmt.Fprintf(w.cfg.Log, "%s: coordinator degraded, exiting\n", w.cfg.ID)
			return ErrDegraded
		}
		if resp.Done || resp.Draining {
			return nil
		}
		if len(resp.Units) == 0 {
			wait := time.Duration(resp.RetryAfterMillis) * time.Millisecond
			if wait <= 0 || wait > w.cfg.PollMax {
				wait = w.cfg.PollMax
			}
			if err := w.cfg.Clock.Sleep(runCtx, wait); err != nil {
				return err
			}
			continue
		}

		var wg sync.WaitGroup
		for _, lu := range resp.Units {
			wg.Add(1)
			go func(lu LeasedUnit) {
				defer wg.Done()
				w.execute(runCtx, ctx, lu)
			}(lu)
		}
		wg.Wait()
	}
}

// execute runs one leased unit under a heartbeat loop and reports its
// outcome. runCtx is the worker's cancellable context (kill, abort);
// parent distinguishes an external abort (release the lease) from an
// internal abandon (the lease is no longer ours — walk away silently).
func (w *Worker) execute(runCtx, parent context.Context, lu LeasedUnit) {
	n := w.started.Add(1)
	killThis := w.cfg.KillAfterUnits > 0 && n == int64(w.cfg.KillAfterUnits)

	unitCtx, cancelUnit := context.WithCancel(runCtx)
	defer cancelUnit()

	var noteMu sync.Mutex
	var note string
	var killFired atomic.Bool
	progress := func(s string) {
		if killThis && !killFired.Swap(true) {
			// Mid-trial death: the first checkpoint of the doomed unit
			// is as "mid" as it gets.
			w.die()
			return
		}
		noteMu.Lock()
		note = s
		noteMu.Unlock()
	}

	// Heartbeat at a third of the TTL, carrying the latest note. A
	// transport error is left for the next tick (a missed heartbeat is
	// exactly what the lease TTL is sized to absorb); an Abandon reply
	// cancels the run — the unit belongs to someone else now.
	ttl := time.Duration(lu.TTLMillis) * time.Millisecond
	every := ttl / 3
	if every <= 0 {
		every = time.Second
	}
	hbDone := make(chan struct{})
	abandoned := &atomic.Bool{}
	go func() {
		defer close(hbDone)
		for {
			if err := w.cfg.Clock.Sleep(unitCtx, every); err != nil {
				return
			}
			noteMu.Lock()
			s := note
			noteMu.Unlock()
			resp, err := w.cfg.Client.Heartbeat(unitCtx, HeartbeatRequest{
				Worker: w.cfg.ID, Unit: lu.Unit.ID, Epoch: lu.Epoch, Note: s,
			})
			if err != nil {
				continue
			}
			if resp.Abandon {
				abandoned.Store(true)
				cancelUnit()
				return
			}
		}
	}()

	start := w.cfg.Clock.Now()
	res := w.cfg.Run(unitCtx, lu.Unit, progress)
	cancelUnit()
	<-hbDone

	if w.dead.Load() {
		return // crashed: no completion, no release — the lease expires
	}
	if killThis {
		// The runner never reported progress; die before reporting so
		// the kill still looks like a crash to the coordinator.
		w.die()
		return
	}
	if abandoned.Load() {
		fmt.Fprintf(w.cfg.Log, "%s: abandoned %s (lease reassigned)\n", w.cfg.ID, lu.Unit.ID)
		return
	}
	if parent.Err() != nil || runCtx.Err() != nil {
		// Aborted from outside: hand the lease back so the coordinator
		// reassigns immediately instead of waiting out the TTL. The
		// worker is shutting down, so use a short independent context.
		rctx, rcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer rcancel()
		w.cfg.Client.Release(rctx, ReleaseRequest{
			Worker: w.cfg.ID,
			Units:  []UnitEpoch{{Unit: lu.Unit.ID, Epoch: lu.Epoch}},
			Reason: "worker aborted",
		})
		fmt.Fprintf(w.cfg.Log, "%s: released %s (aborted)\n", w.cfg.ID, lu.Unit.ID)
		return
	}

	if res.DurationMS == 0 {
		res.DurationMS = w.cfg.Clock.Now().Sub(start).Milliseconds()
	}
	w.complete(runCtx, lu, res)
}

// complete delivers the outcome, retrying transport faults with backoff.
// Giving up is safe: the undelivered outcome is re-earned after the
// lease expires, and if an earlier delivery actually landed (a dropped
// response), the coordinator's idempotent accept absorbs the retry.
func (w *Worker) complete(ctx context.Context, lu LeasedUnit, res UnitResult) {
	req := CompleteRequest{
		Worker: w.cfg.ID, Unit: lu.Unit.ID, Epoch: lu.Epoch,
		OK: res.OK, Result: res.Result, Error: res.Error,
		Artifact: res.Artifact, Attempts: res.Attempts, DurationMS: res.DurationMS,
	}
	backoff := 100 * time.Millisecond
	for i := 0; i <= w.cfg.CompleteRetries; i++ {
		resp, err := w.cfg.Client.Complete(ctx, req)
		if w.dead.Load() || ctx.Err() != nil {
			return
		}
		if err == nil {
			if !resp.Accepted {
				fmt.Fprintf(w.cfg.Log, "%s: completion of %s fenced off (stale epoch %d)\n", w.cfg.ID, lu.Unit.ID, lu.Epoch)
			}
			return
		}
		if err := w.cfg.Clock.Sleep(ctx, backoff); err != nil {
			return
		}
		if backoff *= 2; backoff > w.cfg.PollMax {
			backoff = w.cfg.PollMax
		}
	}
	fmt.Fprintf(w.cfg.Log, "%s: could not deliver completion of %s; leaving it to lease expiry\n", w.cfg.ID, lu.Unit.ID)
}
