package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// ErrDegraded is returned by Wait when the coordinator has entered
// degraded mode: state persistence failed past its retry budget, new
// leases are refused, and the sweep cannot finish. The serve command
// maps it to a distinct exit code so automation never mistakes a
// non-resumable sweep for a healthy one.
var ErrDegraded = errors.New("sweepd: coordinator degraded: sweep state cannot be persisted")

// CoordinatorConfig tunes lease and quarantine policy.
type CoordinatorConfig struct {
	// LeaseTTL bounds how long a granted lease lives without a
	// heartbeat; zero means 30s.
	LeaseTTL time.Duration
	// ExpiryBudget caps how many times a unit's lease may expire before
	// the unit is quarantined; zero means 5. (A voluntary release does
	// not charge the budget.)
	ExpiryBudget int
	// QuarantineAfter is how many distinct workers must report a
	// failure before the unit is quarantined as poison; zero means 3.
	// The same worker failing twice counts once — a poison unit is one
	// that kills *anyone* who runs it, not one colocated with a bad
	// host.
	QuarantineAfter int
	// RetryBase is the base of the exponential backoff applied before
	// an expired or failed unit becomes leasable again; each
	// reassignment waits base·2^(n-1) plus a jitter drawn from
	// [0, RetryJitter). Zero means 500ms base with 250ms jitter.
	RetryBase   time.Duration
	RetryJitter time.Duration
	// Seed feeds the jitter stream, keeping reassignment schedules
	// reproducible in tests.
	Seed uint64
	// Clock supplies time; nil means the wall clock.
	Clock Clock
	// StateDir, when non-empty, receives the crash-proof sweep state
	// (sweep-state.json), per-unit crash/quarantine artifacts, and the
	// merged manifest (manifest.json). Empty keeps everything in
	// memory.
	StateDir string
	// Resume replays StateDir's durable state (journal + snapshot, or a
	// legacy sweep-state.json, which is migrated) and keeps terminal
	// outcomes whose unit grid matches; in-flight leases from the dead
	// coordinator revert to pending without charging budgets.
	Resume bool
	// FS is the filesystem all StateDir persistence goes through; nil
	// means the real one (vfs.OS). Tests and chaos runs inject the
	// fault-driven filesystems from internal/faults here.
	FS vfs.FS
	// LegacyState keeps the pre-journal checkpoint format: the whole
	// sweep-state.json rewritten on every transition. O(units) I/O per
	// transition — only for interop with tooling that reads that file.
	LegacyState bool
	// SnapshotEvery is how many journal records accumulate before a
	// compaction folds them into a snapshot; zero means
	// max(256, 4×units).
	SnapshotEvery int
	// PersistRetries bounds how many times one transition's journal
	// append is retried (each retry rolls a fresh generation, which
	// also clears a torn in-flight file); zero means 2.
	PersistRetries int
	// PersistFailLimit is how many consecutive transitions may fail to
	// persist before the coordinator declares itself degraded: it stops
	// granting leases, surfaces `degraded` in /v1/status, and Wait
	// returns ErrDegraded. Zero means 3.
	PersistFailLimit int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.ExpiryBudget <= 0 {
		c.ExpiryBudget = 5
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 500 * time.Millisecond
		if c.RetryJitter <= 0 {
			c.RetryJitter = 250 * time.Millisecond
		}
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	if c.FS == nil {
		c.FS = vfs.OS{}
	}
	if c.PersistRetries <= 0 {
		c.PersistRetries = 2
	}
	if c.PersistFailLimit <= 0 {
		c.PersistFailLimit = 3
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// UnitFailure is one recorded failure of a unit on one worker.
type UnitFailure struct {
	Worker   string `json:"worker"`
	Epoch    uint64 `json:"epoch,omitempty"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts,omitempty"`
}

// unitRecord is the coordinator's book entry for one unit.
type unitRecord struct {
	unit  Unit
	state UnitState

	// epoch is the fencing token, bumped on every (re)lease; worker and
	// expiry describe the live lease.
	epoch  uint64
	worker string
	expiry time.Time

	// eligible gates re-leasing after an expiry or failure (backoff).
	eligible time.Time

	heartbeats int
	progress   string

	expiries int
	failures []UnitFailure
	// distinct is the set of workers in failures.
	distinct map[string]bool

	// merged marks that exactly one completion was accepted; completions
	// counts accepted merges (must never exceed 1 — exposed to tests).
	merged      bool
	completions int
	result      string
	attempts    int
	durationMS  int64
	// quarantine is the reason string for quarantined units.
	quarantine string
}

// Coordinator shards a sweep into units and arbitrates leases. All
// methods are safe for concurrent use; expired leases are reaped lazily
// at the top of every call, so no background goroutine is needed and a
// manual clock drives the full state machine in tests.
type Coordinator struct {
	cfg CoordinatorConfig

	mu       sync.Mutex
	units    map[UnitID]*unitRecord
	order    []UnitID
	rng      *sim.Rand
	draining bool
	// store is the durable journal (nil with LegacyState or no
	// StateDir); salvage records a lossy recovery at open.
	store   *journalStore
	salvage *SalvageReport
	// persistFails counts consecutive failed checkpoint transitions;
	// at cfg.PersistFailLimit the coordinator goes (and stays)
	// degraded.
	persistFails   int
	degraded       bool
	degradedReason string
	// gate, when attached, supplies the overload pressure that
	// stretches lease RetryAfterMillis (brownout) and the admission
	// counters surfaced in Status.
	gate *Gate
	// doneCh closes when every unit is terminal.
	doneCh   chan struct{}
	doneOnce sync.Once
}

// NewCoordinator builds a coordinator over the unit grid. With
// cfg.Resume set and a matching sweep-state.json in cfg.StateDir,
// terminal outcomes are restored so only unfinished units run.
func NewCoordinator(cfg CoordinatorConfig, units []Unit) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		units:  make(map[UnitID]*unitRecord, len(units)),
		rng:    sim.NewRand(cfg.Seed ^ 0x5eedd),
		doneCh: make(chan struct{}),
	}
	for _, u := range units {
		if _, dup := c.units[u.ID]; dup {
			return nil, fmt.Errorf("sweepd: duplicate unit id %q", u.ID)
		}
		c.units[u.ID] = &unitRecord{unit: u, state: UnitPending, distinct: map[string]bool{}}
		c.order = append(c.order, u.ID)
	}
	if c.cfg.SnapshotEvery <= 0 {
		// Amortize: one O(units) compaction per a few journal passes
		// over the grid, with a floor so small sweeps barely compact.
		c.cfg.SnapshotEvery = 4 * len(units)
		if c.cfg.SnapshotEvery < 256 {
			c.cfg.SnapshotEvery = 256
		}
	}
	if cfg.StateDir != "" {
		if cfg.LegacyState {
			if err := c.cfg.FS.MkdirAll(cfg.StateDir, 0o755); err != nil {
				return nil, fmt.Errorf("sweepd: state dir: %w", err)
			}
			if cfg.Resume {
				restored, err := c.restoreState()
				if err != nil {
					return nil, err
				}
				if restored > 0 {
					fmt.Fprintf(cfg.Log, "sweepd: resumed %d terminal unit(s) from %s\n", restored, cfg.StateDir)
				}
			}
		} else {
			store, entries, salvage, err := openJournal(c.cfg.FS, cfg.StateDir, cfg.Resume, cfg.Log)
			if err != nil {
				return nil, err
			}
			c.store = store
			c.salvage = salvage
			c.mu.Lock()
			restored := c.applyEntriesLocked(entries)
			c.mu.Unlock()
			if restored > 0 {
				fmt.Fprintf(cfg.Log, "sweepd: resumed %d terminal unit(s) from %s (journal generation %d)\n", restored, cfg.StateDir, store.gen)
			}
		}
	}
	c.mu.Lock()
	c.checkDoneLocked()
	c.mu.Unlock()
	return c, nil
}

// Salvage reports whether (and how) the journal recovery at startup was
// lossy; nil means clean.
func (c *Coordinator) Salvage() *SalvageReport { return c.salvage }

// Close releases the journal handle. State is already durable — every
// transition was fsynced when it happened.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.Close()
}

// AttachGate connects an admission gate: its queue pressure stretches
// the lease RetryAfterMillis hint (brownout before blackout) and its
// counters appear in Snapshot/StatusJSON. Attach before serving
// traffic.
func (c *Coordinator) AttachGate(g *Gate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gate = g
}

// Degraded reports whether the coordinator has stopped granting leases
// because sweep state can no longer be persisted, and why.
func (c *Coordinator) Degraded() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded, c.degradedReason
}

// Lease grants up to req.Max pending units to req.Worker.
func (c *Coordinator) Lease(req LeaseRequest) LeaseResponse {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	if c.draining {
		return LeaseResponse{Draining: true, Done: c.allTerminalLocked()}
	}
	if c.allTerminalLocked() {
		return LeaseResponse{Done: true}
	}
	if c.degraded {
		// Refusing is the honest move: a lease granted now could
		// complete work whose merge the coordinator cannot make
		// durable, and "crash-proof" must not silently become
		// best-effort.
		return LeaseResponse{Degraded: true}
	}
	max := req.Max
	if max < 1 {
		max = 1
	}
	var resp LeaseResponse
	nextEligible := time.Time{}
	for _, id := range c.order {
		if len(resp.Units) >= max {
			break
		}
		r := c.units[id]
		if r.state != UnitPending {
			continue
		}
		if r.eligible.After(now) {
			if nextEligible.IsZero() || r.eligible.Before(nextEligible) {
				nextEligible = r.eligible
			}
			continue
		}
		r.epoch++
		r.state = UnitLeased
		r.worker = req.Worker
		r.expiry = now.Add(c.cfg.LeaseTTL)
		r.heartbeats = 0
		resp.Units = append(resp.Units, LeasedUnit{
			Unit:      r.unit,
			Epoch:     r.epoch,
			TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		})
	}
	if len(resp.Units) == 0 {
		// Nothing grantable right now: everything is leased out or in
		// backoff. Hint a poll interval — the earliest backoff expiry,
		// else a third of the TTL (the cadence at which a wedged lease
		// can first be reaped).
		retry := c.cfg.LeaseTTL / 3
		if !nextEligible.IsZero() {
			if d := nextEligible.Sub(now); d < retry {
				retry = d
			}
		}
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		if c.gate != nil {
			// Brownout: stretch the poll hint as admission queues fill,
			// shaping the herd's cadence down *before* the gate has to
			// shed anything. At full pressure polls arrive 4× slower.
			retry = time.Duration(float64(retry) * (1 + 3*c.gate.Pressure()))
		}
		resp.RetryAfterMillis = retry.Milliseconds()
	} else if c.store == nil {
		// Legacy checkpoint: the full rewrite happens on every
		// transition, grants included. In journal mode a grant is
		// durably a no-op — a leased unit persists as pending (a
		// restarted coordinator cannot honor epochs it never granted) —
		// so the journal appends nothing and leasing costs zero I/O.
		c.persistLocked()
	}
	return resp
}

// Heartbeat extends a live lease and records progress.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	r, ok := c.units[req.Unit]
	if !ok {
		return HeartbeatResponse{Abandon: true}
	}
	if r.state.Terminal() || r.epoch != req.Epoch || r.worker != req.Worker {
		// Stale lease: the unit was reassigned (or finished) while this
		// worker was partitioned or slow. Any completion it eventually
		// sends will be fenced off, so tell it to stop now.
		return HeartbeatResponse{Abandon: true}
	}
	if r.state == UnitPending {
		// Reaped just above: the lease expired before this heartbeat
		// arrived. The unit is already back in circulation.
		return HeartbeatResponse{Abandon: true}
	}
	r.state = UnitHeartbeating
	r.heartbeats++
	if req.Note != "" {
		r.progress = req.Note
	}
	r.expiry = now.Add(c.cfg.LeaseTTL)
	return HeartbeatResponse{OK: true}
}

// Complete merges a unit outcome, exactly once per unit. Outcomes under
// a stale epoch are rejected; redelivery of the merged outcome under the
// merging epoch is acknowledged idempotently.
func (c *Coordinator) Complete(req CompleteRequest) CompleteResponse {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	accepted, changed := c.completeOneLocked(now, req.Worker, CompletedUnit{
		Unit: req.Unit, Epoch: req.Epoch, OK: req.OK, Result: req.Result,
		Error: req.Error, Artifact: req.Artifact, Attempts: req.Attempts,
		DurationMS: req.DurationMS,
	})
	if changed != nil {
		c.persistUnitLocked(changed)
	}
	c.checkDoneLocked()
	return CompleteResponse{Accepted: accepted}
}

// CompleteBatch merges several outcomes from one worker under a single
// lock acquisition, one reap, and — in journal mode — one group-commit
// fsync, so a herd of finishing workers costs one round trip per worker
// instead of one per unit. Per-entry semantics are exactly Complete's.
func (c *Coordinator) CompleteBatch(req CompleteBatchRequest) CompleteBatchResponse {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	resp := CompleteBatchResponse{Accepted: make([]bool, len(req.Units))}
	var changed []*unitRecord
	for i, cu := range req.Units {
		ok, ch := c.completeOneLocked(now, req.Worker, cu)
		resp.Accepted[i] = ok
		if ch != nil {
			changed = append(changed, ch)
		}
	}
	c.persistUnitsLocked(changed)
	c.checkDoneLocked()
	return resp
}

// completeOneLocked merges one outcome: the single source of truth for
// fencing and idempotency, shared by Complete and CompleteBatch. It
// returns whether the outcome was accepted and, when the unit's durable
// state changed, the record the caller must persist (singly or as part
// of a batch group-commit).
func (c *Coordinator) completeOneLocked(now time.Time, worker string, cu CompletedUnit) (accepted bool, changed *unitRecord) {
	r, ok := c.units[cu.Unit]
	if !ok {
		return false, nil
	}
	if r.state.Terminal() {
		// Idempotent ack for the worker whose earlier delivery merged
		// but whose response was lost; anyone else is fenced off.
		return r.epoch == cu.Epoch && r.worker == worker, nil
	}
	if r.epoch != cu.Epoch || r.worker != worker {
		return false, nil
	}
	// Note a pending unit can land here: its lease expired (reaped
	// above) but it has not been re-leased, so the epoch still matches.
	// The work is real and unduplicated — merge it.
	if cu.OK {
		r.state = UnitDone
		r.merged = true
		r.completions++
		r.result = cu.Result
		r.attempts = cu.Attempts
		r.durationMS = cu.DurationMS
		fmt.Fprintf(c.cfg.Log, "sweepd: %s done by %s (epoch %d, %d attempt(s))\n", r.unit.ID, worker, cu.Epoch, cu.Attempts)
		c.writeResultLocked(r)
		return true, r
	}
	// A redelivered failure (the worker's response was dropped and
	// it retried under the same lease) must not double-count.
	for _, f := range r.failures {
		if f.Worker == worker && f.Epoch == cu.Epoch {
			return true, nil
		}
	}
	r.failures = append(r.failures, UnitFailure{Worker: worker, Epoch: cu.Epoch, Error: cu.Error, Attempts: cu.Attempts})
	r.distinct[worker] = true
	c.writeCrashLocked(r, worker, cu)
	if len(r.distinct) >= c.cfg.QuarantineAfter {
		c.quarantineLocked(r, fmt.Sprintf("failed on %d distinct worker(s)", len(r.distinct)))
	} else {
		// Back to pending behind a backoff window; the next lease
		// bumps the epoch and fences this one off.
		r.state = UnitPending
		r.expiry = time.Time{}
		c.benchLocked(r, now, len(r.failures))
		fmt.Fprintf(c.cfg.Log, "sweepd: %s failed on %s (%d distinct worker(s)); retrying after backoff\n", r.unit.ID, worker, len(r.distinct))
	}
	return true, r
}

// Release voluntarily returns leases; stale epochs are ignored. A
// released unit re-enters the pending pool immediately and without
// charging the expiry budget — the worker is shutting down cleanly, not
// misbehaving.
func (c *Coordinator) Release(req ReleaseRequest) ReleaseResponse {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	var n int
	for _, ue := range req.Units {
		r, ok := c.units[ue.Unit]
		if !ok || r.state.Terminal() || r.state == UnitPending {
			continue
		}
		if r.epoch != ue.Epoch || r.worker != req.Worker {
			continue
		}
		r.state = UnitPending
		r.worker = ""
		r.expiry = time.Time{}
		r.eligible = now
		n++
	}
	if n > 0 {
		fmt.Fprintf(c.cfg.Log, "sweepd: %s released %d lease(s) (%s)\n", req.Worker, n, req.Reason)
		if c.store == nil {
			// Durably a no-op in journal mode: a released unit goes
			// back to exactly the pending entry already on disk.
			c.persistLocked()
		}
	}
	return ReleaseResponse{Released: n}
}

// reapLocked expires overdue leases: the unit returns to pending behind
// a jittered backoff, and a unit that has burned its expiry budget is
// quarantined. Called with the lock held at the top of every API method.
func (c *Coordinator) reapLocked(now time.Time) {
	var changed []*unitRecord
	for _, id := range c.order {
		r := c.units[id]
		if r.state != UnitLeased && r.state != UnitHeartbeating {
			continue
		}
		if r.expiry.After(now) {
			continue
		}
		changed = append(changed, r)
		r.expiries++
		fmt.Fprintf(c.cfg.Log, "sweepd: lease on %s by %s expired (%d/%d)\n", r.unit.ID, r.worker, r.expiries, c.cfg.ExpiryBudget)
		if r.expiries >= c.cfg.ExpiryBudget {
			c.quarantineLocked(r, fmt.Sprintf("lease expired %d time(s)", r.expiries))
			continue
		}
		// The unit returns to pending but keeps its lease identity
		// (worker, epoch): a slow-but-real completion from the expired
		// holder still merges until a re-lease bumps the epoch and
		// fences it off.
		r.state = UnitPending
		r.expiry = time.Time{}
		c.benchLocked(r, now, r.expiries)
	}
	if len(changed) > 0 {
		if c.store == nil {
			c.persistLocked()
		} else {
			// An expiry charges the unit's budget (and may quarantine
			// it) — that is real state, one journal record per unit.
			for _, r := range changed {
				c.persistUnitLocked(r)
			}
		}
		c.checkDoneLocked()
	}
}

// benchLocked sidelines a unit for the nth backoff window:
// base·2^(n-1) plus deterministic jitter.
func (c *Coordinator) benchLocked(r *unitRecord, now time.Time, n int) {
	if n < 1 {
		n = 1
	}
	backoff := c.cfg.RetryBase << uint(n-1)
	if c.cfg.RetryJitter > 0 {
		backoff += time.Duration(c.rng.IntN(int(c.cfg.RetryJitter)))
	}
	r.eligible = now.Add(backoff)
}

// quarantineLocked retires a poison unit, preserving its failure
// history as an artifact.
func (c *Coordinator) quarantineLocked(r *unitRecord, reason string) {
	r.state = UnitQuarantined
	r.quarantine = reason
	r.worker = ""
	r.expiry = time.Time{}
	fmt.Fprintf(c.cfg.Log, "sweepd: QUARANTINED %s: %s\n", r.unit.ID, reason)
	c.writeQuarantineLocked(r)
}

// Drain stops granting leases; in-flight units may still complete (or
// expire). Workers observe Draining on their next lease poll and exit.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.draining {
		c.draining = true
		fmt.Fprintln(c.cfg.Log, "sweepd: draining — no new leases")
	}
}

// Quiesced reports whether no lease is live (every unit is terminal or
// pending); a draining coordinator can shut down once quiesced.
func (c *Coordinator) Quiesced() bool {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	for _, r := range c.units {
		if r.state == UnitLeased || r.state == UnitHeartbeating {
			return false
		}
	}
	return true
}

// Done returns a channel closed when every unit is terminal.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the sweep finishes or ctx is done. Polling drives
// the lazy reaper so even a sweep whose workers all vanished terminates
// (by expiry, then quarantine).
func (c *Coordinator) Wait(ctx context.Context, poll time.Duration) error {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		select {
		case <-c.doneCh:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		// Reap under the current clock, then sleep a poll interval.
		c.Quiesced()
		select {
		case <-c.doneCh:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if deg, _ := c.Degraded(); deg {
			// The sweep cannot finish: pending units are unleasable and
			// their outcomes could not be made durable anyway.
			return ErrDegraded
		}
		if err := c.cfg.Clock.Sleep(ctx, poll); err != nil {
			return err
		}
	}
}

func (c *Coordinator) allTerminalLocked() bool {
	for _, r := range c.units {
		if !r.state.Terminal() {
			return false
		}
	}
	return true
}

func (c *Coordinator) checkDoneLocked() {
	if c.allTerminalLocked() {
		c.doneOnce.Do(func() {
			if err := c.writeManifestLocked(); err != nil {
				fmt.Fprintf(c.cfg.Log, "sweepd: warning: merged manifest not written: %v\n", err)
			}
			close(c.doneCh)
		})
	}
}

// UnitStatus is one unit's externally visible state.
type UnitStatus struct {
	Unit        Unit          `json:"unit"`
	State       UnitState     `json:"state"`
	Worker      string        `json:"worker,omitempty"`
	Epoch       uint64        `json:"epoch,omitempty"`
	Heartbeats  int           `json:"heartbeats,omitempty"`
	Progress    string        `json:"progress,omitempty"`
	Expiries    int           `json:"expiries,omitempty"`
	Failures    []UnitFailure `json:"failures,omitempty"`
	Completions int           `json:"completions,omitempty"`
	Attempts    int           `json:"attempts,omitempty"`
	Quarantine  string        `json:"quarantine,omitempty"`
}

// Status is the sweep snapshot served at /v1/status.
type Status struct {
	Pending     int  `json:"pending"`
	Leased      int  `json:"leased"`
	Done        int  `json:"done"`
	Quarantined int  `json:"quarantined"`
	Draining    bool `json:"draining,omitempty"`
	// Degraded means state persistence failed past its retry budget:
	// no new leases are granted and the sweep is not resumable past
	// its last durable transition.
	Degraded       bool         `json:"degraded,omitempty"`
	DegradedReason string       `json:"degraded_reason,omitempty"`
	Units          []UnitStatus `json:"units"`
	// Overload carries the attached admission gate's shed/queue/breaker
	// counters; nil when no gate is attached.
	Overload *OverloadStats `json:"overload,omitempty"`
}

// Snapshot returns the current sweep status, reaping first so the view
// is current under the configured clock.
func (c *Coordinator) Snapshot() Status {
	now := c.cfg.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)

	st := Status{Draining: c.draining, Degraded: c.degraded, DegradedReason: c.degradedReason}
	if c.gate != nil {
		o := c.gate.Stats()
		st.Overload = &o
	}
	for _, id := range c.order {
		r := c.units[id]
		switch r.state {
		case UnitPending:
			st.Pending++
		case UnitLeased, UnitHeartbeating:
			st.Leased++
		case UnitDone:
			st.Done++
		case UnitQuarantined:
			st.Quarantined++
		}
		st.Units = append(st.Units, UnitStatus{
			Unit:        r.unit,
			State:       r.state,
			Worker:      r.worker,
			Epoch:       r.epoch,
			Heartbeats:  r.heartbeats,
			Progress:    r.progress,
			Expiries:    r.expiries,
			Failures:    append([]UnitFailure(nil), r.failures...),
			Completions: r.completions,
			Attempts:    r.attempts,
			Quarantine:  r.quarantine,
		})
	}
	return st
}

// Result returns a done unit's rendered output.
func (c *Coordinator) Result(id UnitID) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.units[id]
	if !ok || r.state != UnitDone {
		return "", false
	}
	return r.result, true
}

// StatusJSON renders the snapshot, for the HTTP status endpoint.
func (c *Coordinator) StatusJSON() ([]byte, error) {
	return json.MarshalIndent(c.Snapshot(), "", "  ")
}

// sortedIDs returns unit IDs in grid order (stable across runs).
func (c *Coordinator) sortedIDs() []UnitID {
	ids := append([]UnitID(nil), c.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
