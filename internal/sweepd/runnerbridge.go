package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/system"
)

// ExperimentRunner adapts the supervised single-experiment runner
// (runner.RunOne) into a UnitRunner: each leased unit runs with
// per-attempt deadlines, panic isolation, reseeding retries, and crash
// artifacts, exactly like a slot in a local sweep. The returned runner
// recycles machines across its units through one pool, so a worker's
// allocation profile matches the single-process runner's per-worker
// pooling.
//
// base supplies the supervision knobs (Timeout, Retries, MaxEngineSteps,
// ArtifactDir); the unit supplies Seed and Quick. When base.ArtifactDir
// is set, a failed unit's crash artifact is read back and shipped to
// the coordinator inside the completion, so the coordinator preserves
// it per shard even though the worker's disk may be remote or
// ephemeral.
func ExperimentRunner(base runner.Config) UnitRunner {
	pool := &system.Pool{} // thread-safe; shared across the worker's units
	return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
		e, ok := experiments.Get(u.Experiment)
		if !ok {
			return UnitResult{Error: fmt.Sprintf("unknown experiment %q", u.Experiment), Attempts: 1}
		}
		cfg := base
		cfg.Seed = u.Seed
		cfg.Quick = u.Quick
		cfg.Progress = progressWriter{fn: progress}
		rep := runner.RunOne(ctx, cfg, e, pool)

		res := UnitResult{
			Attempts:   rep.Attempts,
			DurationMS: rep.Duration.Milliseconds(),
		}
		switch rep.Status {
		case runner.StatusDone:
			var b strings.Builder
			if err := rep.Result.Render(&b); err != nil {
				res.Error = fmt.Sprintf("rendering result: %v", err)
				return res
			}
			res.OK = true
			res.Result = b.String()
		default:
			if rep.Err != nil {
				res.Error = rep.Err.Error()
			} else {
				res.Error = string(rep.Status)
			}
			if rep.Artifact != "" {
				if data, err := os.ReadFile(rep.Artifact); err == nil && json.Valid(data) {
					res.Artifact = data
				}
			}
		}
		return res
	}
}

// progressWriter adapts the worker's progress callback into the
// io.Writer the runner's Progress tee wants, forwarding one note per
// line.
type progressWriter struct{ fn func(string) }

// Write implements io.Writer.
func (p progressWriter) Write(b []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		if line != "" {
			p.fn(line)
		}
	}
	return len(b), nil
}
