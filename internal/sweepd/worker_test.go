package sweepd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// okRunner returns a UnitRunner that records executions per unit and
// succeeds, emitting a couple of progress notes like a real experiment.
func okRunner(mu *sync.Mutex, exec map[UnitID]int) func(string) UnitRunner {
	return func(workerID string) UnitRunner {
		return func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			mu.Lock()
			exec[u.ID]++
			mu.Unlock()
			progress("warmup")
			progress("measuring")
			return UnitResult{OK: true, Result: "ok " + string(u.ID), Attempts: 1}
		}
	}
}

// TestWorkerRunsSweepLoopback: a clean fleet over the loopback transport
// runs every unit exactly once and the sweep completes.
func TestWorkerRunsSweepLoopback(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(8))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	var mu sync.Mutex
	exec := map[UnitID]int{}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep := RunFleet(ctx, c, FleetConfig{
		Workers: 2, Jobs: 2, NewRunner: okRunner(&mu, exec),
	})
	if rep.Spawned != 2 || rep.Killed != 0 {
		t.Fatalf("fleet report: %+v", rep)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep not done after fleet returned")
	}
	st := c.Snapshot()
	if st.Done != 8 || st.Quarantined != 0 {
		t.Fatalf("snapshot: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, u := range st.Units {
		if exec[u.Unit.ID] != 1 {
			t.Fatalf("%s executed %d times, want 1", u.Unit.ID, exec[u.Unit.ID])
		}
		if u.Completions != 1 {
			t.Fatalf("%s merged %d times, want 1", u.Unit.ID, u.Completions)
		}
	}
}

// TestWorkerDrainFinishesInFlight: Drain stops leasing but the in-flight
// unit finishes and reports — the first-signal shutdown grade.
func TestWorkerDrainFinishesInFlight(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(3))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	w := NewWorker(WorkerConfig{
		ID: "w", Client: Loopback{C: c},
		Run: func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			once.Do(func() { close(started) })
			<-release
			return UnitResult{OK: true, Result: "r"}
		},
	})
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()

	<-started
	w.Drain()
	close(release)
	if err := <-errCh; err != nil {
		t.Fatalf("drained worker returned %v", err)
	}
	st := c.Snapshot()
	if st.Done != 1 || st.Pending != 2 {
		t.Fatalf("after drain: done=%d pending=%d, want 1/2", st.Done, st.Pending)
	}
}

// TestWorkerAbortReleasesLease: cancelling the Run context (the
// second-signal grade) aborts the in-flight unit and hands the lease
// back uncharged, so the coordinator can reassign immediately.
func TestWorkerAbortReleasesLease(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(1))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	started := make(chan struct{})
	w := NewWorker(WorkerConfig{
		ID: "w", Client: Loopback{C: c},
		Run: func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			close(started)
			<-ctx.Done()
			return UnitResult{Error: "aborted"}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(ctx) }()

	<-started
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("aborted worker returned %v, want context.Canceled", err)
	}
	st := unitState(t, c, "u00")
	if st.State != UnitPending || st.Expiries != 0 || len(st.Failures) != 0 {
		t.Fatalf("after abort: %+v", st)
	}
	// The released unit is immediately re-leasable under a fresh epoch.
	lu := leaseOne(t, c, "next")
	if lu.Epoch != 2 {
		t.Fatalf("epoch after release = %d, want 2", lu.Epoch)
	}
}

// abandonClient scripts a coordinator that reassigns the unit behind the
// worker's back: the first heartbeat answers Abandon, and any Complete
// is a protocol violation.
type abandonClient struct {
	leased    atomic.Bool
	completed atomic.Bool
	released  atomic.Bool
}

func (a *abandonClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if a.leased.Swap(true) {
		return LeaseResponse{Done: true}, nil
	}
	return LeaseResponse{
		Units: []LeasedUnit{{Unit: Unit{ID: "u00", Experiment: "exp"}, Epoch: 1, TTLMillis: 30}},
	}, nil
}

func (a *abandonClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return HeartbeatResponse{OK: false, Abandon: true}, nil
}

func (a *abandonClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	a.completed.Store(true)
	return CompleteResponse{}, nil
}

func (a *abandonClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	a.completed.Store(true)
	return CompleteBatchResponse{Accepted: make([]bool, len(req.Units))}, nil
}

func (a *abandonClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	a.released.Store(true)
	return ReleaseResponse{}, nil
}

// TestWorkerAbandonsReassignedUnit: when a heartbeat learns the lease
// was reassigned, the worker cancels the unit and walks away without
// completing or releasing — the unit belongs to someone else now.
func TestWorkerAbandonsReassignedUnit(t *testing.T) {
	client := &abandonClient{}
	w := NewWorker(WorkerConfig{
		ID: "w", Client: client,
		Run: func(ctx context.Context, u Unit, progress func(string)) UnitResult {
			<-ctx.Done() // cancelled by the abandon
			return UnitResult{OK: true, Result: "too late"}
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker returned %v", err)
	}
	if client.completed.Load() {
		t.Fatal("abandoned unit was completed anyway")
	}
	if client.released.Load() {
		t.Fatal("abandoned unit was released (it is not ours to release)")
	}
}

// TestHTTPTransportSweep: the same worker loop over real HTTP — the
// coordinator server and HTTPClient round-trip every protocol message,
// and GET /v1/status serves the snapshot.
func TestHTTPTransportSweep(t *testing.T) {
	c, err := NewCoordinator(CoordinatorConfig{}, testUnits(4))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	srv := httptest.NewServer(NewServer(c, ServerConfig{}))
	defer srv.Close()

	var mu sync.Mutex
	exec := map[UnitID]int{}
	w := NewWorker(WorkerConfig{
		ID:     "http-w",
		Client: &HTTPClient{Base: srv.URL},
		Run:    okRunner(&mu, exec)("http-w"),
		Jobs:   2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker over HTTP: %v", err)
	}

	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatalf("GET /v1/status: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Done != 4 || st.Pending != 0 {
		t.Fatalf("status over HTTP: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	for id, n := range exec {
		if n != 1 {
			t.Fatalf("%s executed %d times over HTTP, want 1", id, n)
		}
	}
}
