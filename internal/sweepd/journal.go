package sweepd

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"

	"repro/internal/vfs"
)

// The durable sweep journal. The legacy checkpoint rewrote the whole
// sweep-state.json on every transition — O(units) I/O per lease — and a
// failed rewrite was only a log line. The journal makes durability O(1)
// per transition and failure first-class:
//
//   - journal-manifest.json names the active generation G.
//   - snapshot-<G>.json is the full unit table as of the last
//     compaction (the legacy stateFile document, written atomically).
//   - journal-<G>.wal is an append-only log of per-unit transitions,
//     each a CRC-32C-framed, length-prefixed JSON stateEntry, fsynced
//     as it is appended.
//
// A transition appends one record (one small write + one fsync); every
// SnapshotEvery records the store compacts: write snapshot-<G+1>,
// create an empty journal-<G+1>, then atomically swing the manifest —
// the manifest write is the commit point, so a crash anywhere in
// compaction leaves either the old generation fully intact or the new
// one fully live. Recovery replays snapshot + journal, truncates a torn
// tail record (a crash mid-append — routine, never fatal), and treats a
// bad CRC *followed by more data* as mid-stream corruption: the journal
// is no longer trustworthy past the snapshot, so recovery falls back to
// the snapshot alone and says so in salvage-report.json rather than
// silently replaying doubtful state. Recovery itself always compacts
// into a fresh generation, which is also how the torn tail is
// physically discarded (no truncate needed on the FS seam).
const (
	// JournalManifestName points at the active journal generation.
	JournalManifestName = "journal-manifest.json"
	// SalvageName is the recovery report left behind whenever resume
	// had to drop bytes (torn tail) or whole journals (corruption).
	SalvageName = "salvage-report.json"
)

// snapshotFileName and journalFileName name one generation's files.
func snapshotFileName(gen uint64) string { return fmt.Sprintf("snapshot-%d.json", gen) }
func journalFileName(gen uint64) string  { return fmt.Sprintf("journal-%d.wal", gen) }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the per-record header: 4-byte little-endian payload
// length, 4-byte CRC-32C of the payload.
const frameOverhead = 8

// maxRecordLen rejects absurd length prefixes (a bit-flipped length
// field) before they cause a gigabyte allocation.
const maxRecordLen = 1 << 24

// encodeFrame wraps one payload in the journal framing.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameOverhead:], payload)
	return frame
}

// journalManifest is the on-disk generation pointer.
type journalManifest struct {
	Generation uint64 `json:"generation"`
}

// SalvageReport records what journal recovery had to throw away. It is
// written to SalvageName inside the state dir so operators (and CI
// artifact uploads) can see that a resume was lossy and exactly how.
type SalvageReport struct {
	// Kind is "torn-tail" (a crash mid-append; the partial record was
	// truncated, nothing committed was lost) or
	// "mid-stream-corruption" (a bad checksum with more data after it;
	// the journal was abandoned and state fell back to the snapshot).
	Kind string `json:"kind"`
	// Generation is the journal generation that was salvaged.
	Generation uint64 `json:"generation"`
	// RecordsReplayed counts records applied on top of the snapshot
	// (zero under mid-stream corruption: the journal was not trusted).
	RecordsReplayed int `json:"records_replayed"`
	// RecordsScanned counts records that decoded cleanly before the
	// damage, whether or not they were applied.
	RecordsScanned int `json:"records_scanned"`
	// DamageOffset is the byte offset where decoding stopped.
	DamageOffset int64 `json:"damage_offset"`
	// DroppedBytes is how many journal bytes were discarded.
	DroppedBytes int64  `json:"dropped_bytes"`
	Detail       string `json:"detail,omitempty"`
}

// journalScan is one pass over a journal's raw bytes.
type journalScan struct {
	entries []stateEntry
	records int
	// tornAt/corruptAt are -1 when absent; at most one is set.
	tornAt    int64
	corruptAt int64
	size      int64
}

// scanJournal decodes framed records until clean EOF, a torn tail, or
// mid-stream corruption. A record that fails to decode and reaches EOF
// is torn (a crash mid-append); one with intact bytes after it is
// corruption — the distinction decides whether replay is trustworthy.
func scanJournal(data []byte) journalScan {
	s := journalScan{tornAt: -1, corruptAt: -1, size: int64(len(data))}
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < frameOverhead {
			s.tornAt = int64(off)
			return s
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen || frameOverhead+n > rest {
			// The frame claims bytes the file does not have. Either a
			// crash truncated it, or a flipped length bit sent us past
			// EOF — in both cases nothing after this offset can be
			// re-synchronized, and nothing intact provably follows.
			s.tornAt = int64(off)
			return s
		}
		payload := data[off+frameOverhead : off+frameOverhead+n]
		last := off+frameOverhead+n == len(data)
		var e stateEntry
		if crc32.Checksum(payload, castagnoli) != wantCRC || json.Unmarshal(payload, &e) != nil {
			if last {
				s.tornAt = int64(off)
			} else {
				s.corruptAt = int64(off)
			}
			return s
		}
		s.entries = append(s.entries, e)
		s.records++
		off += frameOverhead + n
	}
	return s
}

// errWalDirty marks a journal whose active file may hold a torn frame
// from a failed append; the only safe next write is a compaction into a
// fresh generation.
var errWalDirty = errors.New("sweepd: journal file dirty after failed append; compaction required")

// journalStore owns one state dir's journal generation.
type journalStore struct {
	fsys vfs.FS
	dir  string
	log  io.Writer

	gen      uint64
	wal      vfs.File
	appended int  // records since the last compaction
	dirty    bool // a failed append may have left a torn frame
}

// openJournal opens (or initializes) dir's journal and returns the
// store plus the recovered entries. With resume unset any previous
// state is ignored and a fresh generation is started; with it set,
// recovery replays manifest → snapshot → journal, migrating a legacy
// sweep-state.json when no journal exists yet. A lossy recovery writes
// salvage-report.json and returns the report; a corrupt snapshot,
// manifest, or legacy state file is an explicit error (resume must
// never silently invent a fresh sweep over damaged state).
func openJournal(fsys vfs.FS, dir string, resume bool, log io.Writer) (*journalStore, []stateEntry, *SalvageReport, error) {
	if log == nil {
		log = io.Discard
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("sweepd: state dir: %w", err)
	}
	js := &journalStore{fsys: fsys, dir: dir, log: log}

	var (
		base    []stateEntry
		salvage *SalvageReport
	)
	manifestPath := filepath.Join(dir, JournalManifestName)
	manData, manErr := fsys.ReadFile(manifestPath)
	switch {
	case !resume:
		// Fresh sweep: whatever is on disk is a different run's state.
		// Start the next generation above any existing one so stale
		// files never collide with live ones.
		if manErr == nil {
			var man journalManifest
			if json.Unmarshal(manData, &man) == nil {
				js.gen = man.Generation
			}
		}
	case errors.Is(manErr, fs.ErrNotExist):
		// No journal yet: migrate the legacy checkpoint if present.
		legacy, err := readLegacyState(fsys, dir)
		if err != nil {
			return nil, nil, nil, err
		}
		base = legacy
	case manErr != nil:
		return nil, nil, nil, fmt.Errorf("sweepd: reading %s: %w", manifestPath, manErr)
	default:
		var man journalManifest
		if err := json.Unmarshal(manData, &man); err != nil {
			return nil, nil, nil, fmt.Errorf("sweepd: journal manifest %s is corrupt: %w", manifestPath, err)
		}
		js.gen = man.Generation
		snapPath := filepath.Join(dir, snapshotFileName(js.gen))
		snapData, err := fsys.ReadFile(snapPath)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("sweepd: reading snapshot %s: %w", snapPath, err)
		}
		var doc stateFile
		if err := json.Unmarshal(snapData, &doc); err != nil {
			return nil, nil, nil, fmt.Errorf("sweepd: snapshot %s is corrupt: %w", snapPath, err)
		}
		base = doc.Units

		walPath := filepath.Join(dir, journalFileName(js.gen))
		walData, err := fsys.ReadFile(walPath)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil, fmt.Errorf("sweepd: reading journal %s: %w", walPath, err)
		}
		scan := scanJournal(walData)
		switch {
		case scan.corruptAt >= 0:
			// The journal lies beyond this point; only the snapshot is
			// trustworthy. Records before the damage decoded cleanly
			// but applying a prefix of a log whose integrity is broken
			// would present a state no coordinator ever had as recent —
			// fall back to the snapshot and say so.
			salvage = &SalvageReport{
				Kind:           "mid-stream-corruption",
				Generation:     js.gen,
				RecordsScanned: scan.records,
				DamageOffset:   scan.corruptAt,
				// The whole journal is dropped, not just the damaged
				// suffix — the clean-looking prefix is untrusted too.
				DroppedBytes: scan.size,
				Detail:       fmt.Sprintf("%s: bad record checksum at offset %d with %d bytes after it; journal abandoned, state restored from %s", walPath, scan.corruptAt, scan.size-scan.corruptAt, snapshotFileName(js.gen)),
			}
		case scan.tornAt >= 0:
			base = applyJournal(base, scan.entries)
			salvage = &SalvageReport{
				Kind:            "torn-tail",
				Generation:      js.gen,
				RecordsReplayed: scan.records,
				RecordsScanned:  scan.records,
				DamageOffset:    scan.tornAt,
				DroppedBytes:    scan.size - scan.tornAt,
				Detail:          fmt.Sprintf("%s: partial record at offset %d truncated (%d bytes); all committed records replayed", walPath, scan.tornAt, scan.size-scan.tornAt),
			}
		default:
			base = applyJournal(base, scan.entries)
		}
	}

	// Roll into a fresh generation: recovery-by-compaction is what
	// physically discards torn or abandoned journal bytes.
	if err := js.compact(base); err != nil {
		return nil, nil, nil, err
	}
	if salvage != nil {
		fmt.Fprintf(log, "sweepd: journal recovery was lossy (%s): %s\n", salvage.Kind, salvage.Detail)
		if err := writeSalvage(fsys, dir, *salvage); err != nil {
			fmt.Fprintf(log, "sweepd: warning: salvage report not written: %v\n", err)
		}
	}
	return js, base, salvage, nil
}

// readLegacyState loads a pre-journal sweep-state.json for migration.
// Corrupt JSON is an explicit error naming the file — the operator
// chose -resume, so inventing a fresh sweep would silently discard what
// they asked to keep.
func readLegacyState(fsys vfs.FS, dir string) ([]stateEntry, error) {
	path := filepath.Join(dir, StateName)
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweepd: reading sweep state: %w", err)
	}
	var doc stateFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("sweepd: sweep state %s is corrupt: %w", path, err)
	}
	return doc.Units, nil
}

// applyJournal folds journal records over the snapshot: last write per
// unit wins, unknown units append (they are filtered against the live
// grid at restore time, like legacy entries).
func applyJournal(base []stateEntry, records []stateEntry) []stateEntry {
	index := make(map[UnitID]int, len(base))
	for i, e := range base {
		index[e.Unit.ID] = i
	}
	for _, e := range records {
		if i, ok := index[e.Unit.ID]; ok {
			base[i] = e
		} else {
			index[e.Unit.ID] = len(base)
			base = append(base, e)
		}
	}
	return base
}

// writeSalvage persists the salvage report atomically.
func writeSalvage(fsys vfs.FS, dir string, rep SalvageReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return vfs.WriteFileAtomic(fsys, filepath.Join(dir, SalvageName), func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// ReadSalvageReport loads a state dir's salvage report, if any resume
// there was lossy. For tooling and tests.
func ReadSalvageReport(fsys vfs.FS, dir string) (SalvageReport, error) {
	var rep SalvageReport
	if fsys == nil {
		fsys = vfs.OS{}
	}
	data, err := fsys.ReadFile(filepath.Join(dir, SalvageName))
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// append journals one unit transition: a single framed record, written
// and fsynced. O(1) regardless of sweep size — this is the hot path the
// tentpole exists for.
func (js *journalStore) append(e stateEntry) error {
	if js.dirty {
		return errWalDirty
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := js.wal.Write(encodeFrame(payload)); err != nil {
		// The file may now hold a torn frame; appending after it would
		// turn a recoverable tail into mid-stream corruption. Poison
		// the handle until a compaction rolls a clean generation.
		js.dirty = true
		return err
	}
	if err := js.wal.Sync(); err != nil {
		js.dirty = true
		return err
	}
	js.appended++
	return nil
}

// appendAll group-commits a batch of transitions: every record's frame
// in one write, then one fsync — batch durability at single-record disk
// latency. Failure poisons the handle exactly like append: a torn frame
// anywhere in the batch makes everything after it untrustworthy.
func (js *journalStore) appendAll(entries []stateEntry) error {
	if js.dirty {
		return errWalDirty
	}
	var buf []byte
	for _, e := range entries {
		payload, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, encodeFrame(payload)...)
	}
	if _, err := js.wal.Write(buf); err != nil {
		js.dirty = true
		return err
	}
	if err := js.wal.Sync(); err != nil {
		js.dirty = true
		return err
	}
	js.appended += len(entries)
	return nil
}

// shouldCompact reports whether the journal tail has grown enough that
// folding it into a snapshot is worth the O(units) write.
func (js *journalStore) shouldCompact(every int) bool {
	return every > 0 && js.appended >= every
}

// compact writes entries as the next generation's snapshot, opens its
// empty journal, and commits by swinging the manifest. Crash-safe at
// every boundary: until the manifest rename lands, recovery still sees
// the old generation whole; stale next-generation files are truncated
// or overwritten when that generation number is reused.
func (js *journalStore) compact(entries []stateEntry) error {
	next := js.gen + 1
	doc := stateFile{Units: entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := vfs.WriteFileAtomic(js.fsys, filepath.Join(js.dir, snapshotFileName(next)), func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	}); err != nil {
		return fmt.Errorf("sweepd: writing snapshot: %w", err)
	}
	wal, err := js.fsys.Create(filepath.Join(js.dir, journalFileName(next)))
	if err != nil {
		return fmt.Errorf("sweepd: creating journal: %w", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return fmt.Errorf("sweepd: syncing journal: %w", err)
	}
	if err := js.fsys.SyncDir(js.dir); err != nil {
		wal.Close()
		return fmt.Errorf("sweepd: syncing state dir: %w", err)
	}
	man, err := json.Marshal(journalManifest{Generation: next})
	if err != nil {
		wal.Close()
		return err
	}
	if err := vfs.WriteFileAtomic(js.fsys, filepath.Join(js.dir, JournalManifestName), func(w io.Writer) error {
		_, werr := w.Write(append(man, '\n'))
		return werr
	}); err != nil {
		wal.Close()
		return fmt.Errorf("sweepd: committing journal manifest: %w", err)
	}

	// The new generation is live. Retire the old one and any migrated
	// legacy checkpoint; failures here cost only disk space (fsck flags
	// leftovers as stale, recovery ignores them).
	if js.wal != nil {
		js.wal.Close()
	}
	if js.gen > 0 {
		js.fsys.Remove(filepath.Join(js.dir, snapshotFileName(js.gen)))
		js.fsys.Remove(filepath.Join(js.dir, journalFileName(js.gen)))
	}
	js.fsys.Remove(filepath.Join(js.dir, StateName))
	js.fsys.SyncDir(js.dir)

	js.gen = next
	js.wal = wal
	js.appended = 0
	js.dirty = false
	return nil
}

// Close releases the journal handle (the data is already durable; this
// is hygiene, not a flush).
func (js *journalStore) Close() error {
	if js == nil || js.wal == nil {
		return nil
	}
	err := js.wal.Close()
	js.wal = nil
	return err
}
