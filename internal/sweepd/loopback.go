package sweepd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/faults"
)

// Loopback is the in-process transport: a Client that calls the
// coordinator directly, with no sockets and no serialization. It makes
// the entire lease/heartbeat/complete protocol hermetically testable —
// and, wrapped in a FaultyClient, chaos-testable — inside one process.
type Loopback struct{ C *Coordinator }

// Lease implements Client.
func (l Loopback) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if err := ctx.Err(); err != nil {
		return LeaseResponse{}, err
	}
	return l.C.Lease(req), nil
}

// Heartbeat implements Client.
func (l Loopback) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := ctx.Err(); err != nil {
		return HeartbeatResponse{}, err
	}
	return l.C.Heartbeat(req), nil
}

// Complete implements Client.
func (l Loopback) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	if err := ctx.Err(); err != nil {
		return CompleteResponse{}, err
	}
	return l.C.Complete(req), nil
}

// Release implements Client.
func (l Loopback) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	if err := ctx.Err(); err != nil {
		return ReleaseResponse{}, err
	}
	return l.C.Release(req), nil
}

// ErrInjectedNetFault is the transport error a FaultyClient surfaces
// for dropped requests and responses.
var ErrInjectedNetFault = errors.New("sweepd: injected network fault")

// FaultyClient wraps a Client with a deterministic network-fault plan
// (internal/faults.NetPlan): per-call drops, delays, duplications, and
// partition windows. A dropped *request* never reaches the inner
// client; a dropped *response* does — the coordinator acts on it while
// the worker sees an error and retries, which is the duplicated-
// delivery path the coordinator's idempotency must absorb.
type FaultyClient struct {
	Inner  Client
	Plan   *faults.NetPlan
	Worker string
	Clock  Clock
}

func call[Req, Resp any](ctx context.Context, f *FaultyClient, req Req, inner func(context.Context, Req) (Resp, error)) (Resp, error) {
	var zero Resp
	clock := f.Clock
	if clock == nil {
		clock = RealClock{}
	}
	v := f.Plan.Next(f.Worker, clock.Now())
	if v.Delay > 0 {
		if err := clock.Sleep(ctx, v.Delay); err != nil {
			return zero, err
		}
	}
	if v.DropRequest {
		return zero, fmt.Errorf("%w: request dropped", ErrInjectedNetFault)
	}
	resp, err := inner(ctx, req)
	if v.Duplicate && err == nil {
		// The network delivered the request twice; the second delivery's
		// response is the one the caller reads.
		resp, err = inner(ctx, req)
	}
	if v.DropResponse {
		return zero, fmt.Errorf("%w: response dropped", ErrInjectedNetFault)
	}
	return resp, err
}

// Lease implements Client.
func (f *FaultyClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return call(ctx, f, req, f.Inner.Lease)
}

// Heartbeat implements Client.
func (f *FaultyClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return call(ctx, f, req, f.Inner.Heartbeat)
}

// Complete implements Client.
func (f *FaultyClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return call(ctx, f, req, f.Inner.Complete)
}

// Release implements Client.
func (f *FaultyClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return call(ctx, f, req, f.Inner.Release)
}

// FleetConfig tunes an in-process worker fleet over the loopback
// transport.
type FleetConfig struct {
	// Workers is the initial fleet width.
	Workers int
	// Jobs is each worker's concurrent unit count.
	Jobs int
	// NewRunner builds each worker's UnitRunner (workers should not
	// share mutable runner state).
	NewRunner func(workerID string) UnitRunner
	// Plan, when non-nil, injects network faults and schedules kills.
	Plan *faults.NetPlan
	// Respawn replaces killed workers (fresh ID, fresh kill draw) while
	// the sweep is unfinished, up to MaxRespawns (zero means 4× the
	// fleet width).
	Respawn     bool
	MaxRespawns int
	// Clock supplies time; nil means the wall clock.
	Clock Clock
	// PollMax caps worker idle backoff (forwarded to WorkerConfig).
	PollMax time.Duration
	// Log receives fleet progress lines; nil discards them.
	Log io.Writer
}

// FleetReport summarizes a fleet run.
type FleetReport struct {
	// Spawned counts every worker ever started (initial + respawns);
	// Killed counts chaos kills.
	Spawned, Killed int
}

// RunFleet drives an in-process fleet against the coordinator until the
// sweep finishes, the coordinator drains, or ctx is cancelled. It is
// the loopback mode behind `ufsim serve -loopback` and the chaos tests.
func RunFleet(ctx context.Context, c *Coordinator, cfg FleetConfig) FleetReport {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 4 * cfg.Workers
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock{}
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}

	var (
		mu       sync.Mutex
		rep      FleetReport
		respawns int
		wg       sync.WaitGroup
	)
	var spawn func(idx int)
	spawn = func(idx int) {
		id := fmt.Sprintf("w%d", idx)
		var client Client = Loopback{C: c}
		kill := 0
		if cfg.Plan != nil {
			client = &FaultyClient{Inner: client, Plan: cfg.Plan, Worker: id, Clock: clock}
			kill = cfg.Plan.KillAfterUnits(id)
		}
		w := NewWorker(WorkerConfig{
			ID: id, Client: client, Run: cfg.NewRunner(id),
			Clock: clock, Jobs: cfg.Jobs, PollMax: cfg.PollMax,
			KillAfterUnits: kill, Log: logw,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := w.Run(ctx)
			if !errors.Is(err, ErrKilled) {
				return
			}
			mu.Lock()
			rep.Killed++
			done := false
			select {
			case <-c.Done():
				done = true
			default:
			}
			if cfg.Respawn && !done && respawns < cfg.MaxRespawns && ctx.Err() == nil {
				respawns++
				rep.Spawned++
				next := cfg.Workers + respawns
				mu.Unlock()
				fmt.Fprintf(logw, "fleet: respawning after kill as w%d\n", next)
				spawn(next)
				return
			}
			mu.Unlock()
		}()
	}
	mu.Lock()
	for i := 1; i <= cfg.Workers; i++ {
		rep.Spawned++
		spawn(i)
	}
	mu.Unlock()
	wg.Wait()
	return rep
}
