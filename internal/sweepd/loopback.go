package sweepd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/faults"
)

// Loopback is the in-process transport: a Client that calls the
// coordinator directly, with no sockets and no serialization. It makes
// the entire lease/heartbeat/complete protocol hermetically testable —
// and, wrapped in a FaultyClient, chaos-testable — inside one process.
type Loopback struct{ C *Coordinator }

// Lease implements Client.
func (l Loopback) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	if err := ctx.Err(); err != nil {
		return LeaseResponse{}, err
	}
	return l.C.Lease(req), nil
}

// Heartbeat implements Client.
func (l Loopback) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := ctx.Err(); err != nil {
		return HeartbeatResponse{}, err
	}
	return l.C.Heartbeat(req), nil
}

// Complete implements Client.
func (l Loopback) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	if err := ctx.Err(); err != nil {
		return CompleteResponse{}, err
	}
	return l.C.Complete(req), nil
}

// CompleteBatch implements Client.
func (l Loopback) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	if err := ctx.Err(); err != nil {
		return CompleteBatchResponse{}, err
	}
	return l.C.CompleteBatch(req), nil
}

// Release implements Client.
func (l Loopback) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	if err := ctx.Err(); err != nil {
		return ReleaseResponse{}, err
	}
	return l.C.Release(req), nil
}

// ErrInjectedNetFault is the transport error a FaultyClient surfaces
// for dropped requests and responses.
var ErrInjectedNetFault = errors.New("sweepd: injected network fault")

// FaultyClient wraps a Client with a deterministic network-fault plan
// (internal/faults.NetPlan): per-call drops, delays, duplications, and
// partition windows. A dropped *request* never reaches the inner
// client; a dropped *response* does — the coordinator acts on it while
// the worker sees an error and retries, which is the duplicated-
// delivery path the coordinator's idempotency must absorb.
type FaultyClient struct {
	Inner  Client
	Plan   *faults.NetPlan
	Worker string
	Clock  Clock
}

func call[Req, Resp any](ctx context.Context, f *FaultyClient, req Req, inner func(context.Context, Req) (Resp, error)) (Resp, error) {
	var zero Resp
	clock := f.Clock
	if clock == nil {
		clock = RealClock{}
	}
	v := f.Plan.Next(f.Worker, clock.Now())
	if v.Delay > 0 {
		if err := clock.Sleep(ctx, v.Delay); err != nil {
			return zero, err
		}
	}
	if v.DropRequest {
		return zero, fmt.Errorf("%w: request dropped", ErrInjectedNetFault)
	}
	resp, err := inner(ctx, req)
	if v.Duplicate && err == nil {
		// The network delivered the request twice; the second delivery's
		// response is the one the caller reads.
		resp, err = inner(ctx, req)
	}
	if v.DropResponse {
		return zero, fmt.Errorf("%w: response dropped", ErrInjectedNetFault)
	}
	return resp, err
}

// Lease implements Client.
func (f *FaultyClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return call(ctx, f, req, f.Inner.Lease)
}

// Heartbeat implements Client.
func (f *FaultyClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return call(ctx, f, req, f.Inner.Heartbeat)
}

// Complete implements Client.
func (f *FaultyClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return call(ctx, f, req, f.Inner.Complete)
}

// CompleteBatch implements Client.
func (f *FaultyClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	return call(ctx, f, req, f.Inner.CompleteBatch)
}

// Release implements Client.
func (f *FaultyClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return call(ctx, f, req, f.Inner.Release)
}

// AdmittedClient routes loopback calls through an admission gate: the
// exact middleware path HTTP requests take, minus the sockets. A shed
// call returns the gate's *OverloadError; the coordinator is never
// touched. This is what lets the overload chaos test prove the
// admission invariants (inflight ≤ cap, shed-then-retried-to-success)
// against hundreds of in-process workers.
type AdmittedClient struct {
	Inner Client
	Gate  *Gate
}

// admitted acquires the gate around one call.
func admitted[Req, Resp any](ctx context.Context, g *Gate, endpoint string, req Req, inner func(context.Context, Req) (Resp, error)) (Resp, error) {
	var zero Resp
	release, err := g.Acquire(ctx, endpoint)
	if err != nil {
		return zero, err
	}
	defer release()
	return inner(ctx, req)
}

// Lease implements Client.
func (a *AdmittedClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return admitted(ctx, a.Gate, EndpointLease, req, a.Inner.Lease)
}

// Heartbeat implements Client.
func (a *AdmittedClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return admitted(ctx, a.Gate, EndpointHeartbeat, req, a.Inner.Heartbeat)
}

// Complete implements Client.
func (a *AdmittedClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return admitted(ctx, a.Gate, EndpointComplete, req, a.Inner.Complete)
}

// CompleteBatch implements Client. Batches share the complete
// endpoint's limits, mirroring the HTTP route map.
func (a *AdmittedClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	return admitted(ctx, a.Gate, EndpointComplete, req, a.Inner.CompleteBatch)
}

// Release implements Client.
func (a *AdmittedClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return admitted(ctx, a.Gate, EndpointRelease, req, a.Inner.Release)
}

// LatencyClient shapes loopback calls with an overload plan: each call
// stalls for the plan's verdict (latency ramp, slow-loris trickle)
// before reaching the inner client. Stalls happen *inside* any
// admission wrapper placed around this client — a trickling call holds
// its gate slot the whole time, which is precisely the resource
// exhaustion slow-loris attacks exploit and the queue bound must
// survive.
type LatencyClient struct {
	Inner  Client
	Plan   *faults.OverloadPlan
	Worker string
	Clock  Clock
}

// shaped stalls one call per the plan.
func shaped[Req, Resp any](ctx context.Context, l *LatencyClient, req Req, inner func(context.Context, Req) (Resp, error)) (Resp, error) {
	clock := l.Clock
	if clock == nil {
		clock = RealClock{}
	}
	if stall := l.Plan.Next(l.Worker, clock.Now()); stall > 0 {
		if err := clock.Sleep(ctx, stall); err != nil {
			var zero Resp
			return zero, err
		}
	}
	return inner(ctx, req)
}

// Lease implements Client.
func (l *LatencyClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return shaped(ctx, l, req, l.Inner.Lease)
}

// Heartbeat implements Client.
func (l *LatencyClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return shaped(ctx, l, req, l.Inner.Heartbeat)
}

// Complete implements Client.
func (l *LatencyClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return shaped(ctx, l, req, l.Inner.Complete)
}

// CompleteBatch implements Client.
func (l *LatencyClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	return shaped(ctx, l, req, l.Inner.CompleteBatch)
}

// Release implements Client.
func (l *LatencyClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	return shaped(ctx, l, req, l.Inner.Release)
}

// FleetConfig tunes an in-process worker fleet over the loopback
// transport.
type FleetConfig struct {
	// Workers is the initial fleet width.
	Workers int
	// Jobs is each worker's concurrent unit count.
	Jobs int
	// NewRunner builds each worker's UnitRunner (workers should not
	// share mutable runner state).
	NewRunner func(workerID string) UnitRunner
	// Plan, when non-nil, injects network faults and schedules kills.
	Plan *faults.NetPlan
	// Overload, when non-nil, shapes every call with latency ramps and
	// slow-loris trickles (LatencyClient).
	Overload *faults.OverloadPlan
	// Gate, when non-nil, routes every call through admission control
	// (AdmittedClient) and receives the workers' breaker counters.
	Gate *Gate
	// HerdStart releases every initial worker at the same instant — the
	// thundering-herd shape — instead of letting goroutine scheduling
	// stagger them.
	HerdStart bool
	// BatchCompletes, RetryBase, BreakerAfter, and BreakerCooldown are
	// forwarded to each WorkerConfig.
	BatchCompletes  bool
	RetryBase       time.Duration
	BreakerAfter    int
	BreakerCooldown time.Duration
	// Respawn replaces killed workers (fresh ID, fresh kill draw) while
	// the sweep is unfinished, up to MaxRespawns (zero means 4× the
	// fleet width).
	Respawn     bool
	MaxRespawns int
	// Clock supplies time; nil means the wall clock.
	Clock Clock
	// PollMax caps worker idle backoff (forwarded to WorkerConfig).
	PollMax time.Duration
	// Log receives fleet progress lines; nil discards them.
	Log io.Writer
}

// FleetReport summarizes a fleet run.
type FleetReport struct {
	// Spawned counts every worker ever started (initial + respawns);
	// Killed counts chaos kills.
	Spawned, Killed int
	// Breaker aggregates every worker's circuit-breaker counters.
	Breaker BreakerStats
}

// RunFleet drives an in-process fleet against the coordinator until the
// sweep finishes, the coordinator drains, or ctx is cancelled. It is
// the loopback mode behind `ufsim serve -loopback` and the chaos tests.
func RunFleet(ctx context.Context, c *Coordinator, cfg FleetConfig) FleetReport {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 4 * cfg.Workers
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock{}
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}

	var (
		mu       sync.Mutex
		rep      FleetReport
		respawns int
		wg       sync.WaitGroup
	)
	// start is the herd barrier: with HerdStart every initial worker
	// blocks on it, then all are released by one close — the synchronized
	// stampede the admission gate exists to absorb. Without HerdStart it
	// starts closed and gates nothing.
	start := make(chan struct{})
	if !cfg.HerdStart {
		close(start)
	}
	var spawn func(idx int)
	spawn = func(idx int) {
		id := fmt.Sprintf("w%d", idx)
		// Chain, coordinator-outward: latency shaping innermost so a
		// stalling call happens *inside* the admission gate — a trickling
		// call holds its gate slot for the whole stall, the slow-loris
		// resource exhaustion the queue bound must absorb — then the gate
		// (the coordinator's front door on both transports), then network
		// faults on the way there, then the worker's own breaker (added
		// by NewWorker).
		var client Client = Loopback{C: c}
		if cfg.Overload != nil {
			client = &LatencyClient{Inner: client, Plan: cfg.Overload, Worker: id, Clock: clock}
		}
		if cfg.Gate != nil {
			client = &AdmittedClient{Inner: client, Gate: cfg.Gate}
		}
		kill := 0
		if cfg.Plan != nil {
			client = &FaultyClient{Inner: client, Plan: cfg.Plan, Worker: id, Clock: clock}
			kill = cfg.Plan.KillAfterUnits(id)
		}
		w := NewWorker(WorkerConfig{
			ID: id, Client: client, Run: cfg.NewRunner(id),
			Clock: clock, Jobs: cfg.Jobs, PollMax: cfg.PollMax,
			RetryBase: cfg.RetryBase, BatchCompletes: cfg.BatchCompletes,
			BreakerAfter: cfg.BreakerAfter, BreakerCooldown: cfg.BreakerCooldown,
			KillAfterUnits: kill, Log: logw,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-start:
			case <-ctx.Done():
				return
			}
			err := w.Run(ctx)
			mu.Lock()
			rep.Breaker.Trips += w.BreakerStats().Trips
			rep.Breaker.FastFails += w.BreakerStats().FastFails
			rep.Breaker.Probes += w.BreakerStats().Probes
			mu.Unlock()
			if cfg.Gate != nil {
				cfg.Gate.RecordBreaker(w.BreakerStats())
			}
			if !errors.Is(err, ErrKilled) {
				return
			}
			mu.Lock()
			rep.Killed++
			done := false
			select {
			case <-c.Done():
				done = true
			default:
			}
			if cfg.Respawn && !done && respawns < cfg.MaxRespawns && ctx.Err() == nil {
				respawns++
				rep.Spawned++
				next := cfg.Workers + respawns
				mu.Unlock()
				fmt.Fprintf(logw, "fleet: respawning after kill as w%d\n", next)
				spawn(next)
				return
			}
			mu.Unlock()
		}()
	}
	mu.Lock()
	for i := 1; i <= cfg.Workers; i++ {
		rep.Spawned++
		spawn(i)
	}
	mu.Unlock()
	if cfg.HerdStart {
		fmt.Fprintf(logw, "fleet: releasing %d worker(s) as one herd\n", cfg.Workers)
		close(start)
	}
	wg.Wait()
	return rep
}
