package sweepd

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// newFsckDir builds a journaled state dir with units a (done) and
// b (quarantined) plus their artifacts.
func newFsckDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	js, _, _, err := openJournal(vfs.OS{}, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []stateEntry{testEntry("a", UnitDone), testEntry("b", UnitQuarantined)} {
		if err := js.append(e); err != nil {
			t.Fatal(err)
		}
	}
	js.Close()
	for name, content := range map[string]string{
		"a.txt":             "result text",
		"b.quarantine.json": `{"reason": "poison"}`,
		"b.1.crash.json":    `{"error": "boom"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func findReport(t *testing.T, list []string, substr string) {
	t.Helper()
	for _, s := range list {
		if strings.Contains(s, substr) {
			return
		}
	}
	t.Fatalf("no finding mentioning %q in %v", substr, list)
}

// TestFsckClean: a healthy journaled dir verifies with no findings.
func TestFsckClean(t *testing.T) {
	dir := newFsckDir(t)
	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.Warnings) != 0 {
		t.Fatalf("clean dir reported %+v", rep)
	}
	if !rep.Journaled || rep.Units != 2 || rep.Records != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestFsckTornTailWarns: a torn journal tail is a warning (recovery
// absorbs it), not corruption.
func TestFsckTornTailWarns(t *testing.T) {
	dir := newFsckDir(t)
	gen := readManifestGen(t, dir)
	f, err := os.OpenFile(filepath.Join(dir, journalFileName(gen)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0})
	f.Close()

	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("torn tail reported as corruption: %+v", rep.Corruptions)
	}
	findReport(t, rep.Warnings, "torn tail")
}

// TestFsckMidStreamCorruption: a bad checksum mid-journal is
// corruption and fails verification.
func TestFsckMidStreamCorruption(t *testing.T) {
	dir := newFsckDir(t)
	gen := readManifestGen(t, dir)
	walPath := filepath.Join(dir, journalFileName(gen))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[frameOverhead+1] ^= 1
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("mid-stream corruption passed fsck")
	}
	findReport(t, rep.Corruptions, "mid-stream")
}

// TestFsckCorruptSnapshotAndManifest: damaged snapshot or generation
// manifest fails verification.
func TestFsckCorruptSnapshotAndManifest(t *testing.T) {
	dir := newFsckDir(t)
	gen := readManifestGen(t, dir)
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName(gen)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	findReport(t, rep.Corruptions, "snapshot")

	if err := os.WriteFile(filepath.Join(dir, JournalManifestName), []byte("???"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	findReport(t, rep.Corruptions, "journal manifest")
}

// TestFsckOrphansAndTornArtifacts: artifacts for unknown units warn;
// artifacts that do not parse are corruption.
func TestFsckOrphansAndTornArtifacts(t *testing.T) {
	dir := newFsckDir(t)
	if err := os.WriteFile(filepath.Join(dir, "ghost.quarantine.json"), []byte(`{"reason":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.2.crash.json"), []byte(`{"error": "tor`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zombie.txt"), []byte("who"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	findReport(t, rep.Warnings, "orphaned quarantine artifact ghost.quarantine.json")
	findReport(t, rep.Warnings, "orphaned result zombie.txt")
	findReport(t, rep.Corruptions, "b.2.crash.json")
}

// TestFsckLegacyDir: a pre-journal dir verifies through
// sweep-state.json; corrupt legacy state is corruption.
func TestFsckLegacyDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, StateName), []byte(`{"units": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Journaled {
		t.Fatalf("legacy dir report = %+v", rep)
	}

	if err := os.WriteFile(filepath.Join(dir, StateName), []byte(`{"units": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Fsck(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	findReport(t, rep.Corruptions, StateName)
}

// TestFsckMissingDir: an unreadable dir is the error return.
func TestFsckMissingDir(t *testing.T) {
	if _, err := Fsck(nil, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir did not error")
	}
}
