package sweepd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// testUnits builds n pending units u00..u(n-1).
func testUnits(n int) []Unit {
	var units []Unit
	for i := 0; i < n; i++ {
		units = append(units, Unit{
			ID:         UnitID(fmt.Sprintf("u%02d", i)),
			Experiment: "exp",
			Seed:       0x5eed,
			Quick:      true,
		})
	}
	return units
}

// newTestCoordinator builds a coordinator on a manual clock with no
// retry jitter, so every reassignment instant is exact.
func newTestCoordinator(t *testing.T, clk *ManualClock, mutate func(*CoordinatorConfig), units []Unit) *Coordinator {
	t.Helper()
	cfg := CoordinatorConfig{
		LeaseTTL:        time.Minute,
		ExpiryBudget:    3,
		QuarantineAfter: 3,
		RetryBase:       time.Second,
		RetryJitter:     0,
		Clock:           clk,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCoordinator(cfg, units)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func leaseOne(t *testing.T, c *Coordinator, worker string) LeasedUnit {
	t.Helper()
	resp := c.Lease(LeaseRequest{Worker: worker, Max: 1})
	if len(resp.Units) != 1 {
		t.Fatalf("%s: wanted 1 lease, got %+v", worker, resp)
	}
	return resp.Units[0]
}

func unitState(t *testing.T, c *Coordinator, id UnitID) UnitStatus {
	t.Helper()
	for _, u := range c.Snapshot().Units {
		if u.Unit.ID == id {
			return u
		}
	}
	t.Fatalf("unit %s not in snapshot", id)
	return UnitStatus{}
}

// TestLeaseExpiryReassignment is the satellite contract: a worker that
// leases a unit and goes silent has its unit re-leased exactly once per
// retry budget — at the exact TTL+backoff instants — and the unit is
// quarantined when the expiry budget runs out. Pure manual clock, no
// real sleeps.
func TestLeaseExpiryReassignment(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) { cfg.StateDir = dir }, testUnits(1))

	lu := leaseOne(t, c, "silent-1")
	if lu.Epoch != 1 {
		t.Fatalf("first lease epoch = %d, want 1", lu.Epoch)
	}

	// Just under the TTL: nothing to reassign.
	clk.Advance(59 * time.Second)
	if resp := c.Lease(LeaseRequest{Worker: "eager", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("lease before expiry granted %+v", resp.Units)
	}

	// Cross the TTL: the lease expires (1/3), but the unit sits in its
	// first backoff window (1s) — still not grantable.
	clk.Advance(2 * time.Second)
	if resp := c.Lease(LeaseRequest{Worker: "eager", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("lease inside backoff granted %+v", resp.Units)
	} else if resp.RetryAfterMillis <= 0 {
		t.Fatalf("no retry hint while unit benched: %+v", resp)
	}
	if st := unitState(t, c, "u00"); st.State != UnitPending || st.Expiries != 1 {
		t.Fatalf("after first expiry: %+v", st)
	}

	// Past the backoff: re-leased exactly once — the second asker gets
	// nothing.
	clk.Advance(1100 * time.Millisecond)
	lu2 := leaseOne(t, c, "silent-2")
	if lu2.Epoch != 2 {
		t.Fatalf("re-lease epoch = %d, want 2", lu2.Epoch)
	}
	if resp := c.Lease(LeaseRequest{Worker: "eager", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("double re-lease: %+v", resp.Units)
	}

	// Second silent death. The reaper is lazy — it runs at the next API
	// call, and the backoff window starts at that reap, so drive it
	// explicitly before advancing past the backoff.
	clk.Advance(61 * time.Second)
	if resp := c.Lease(LeaseRequest{Worker: "eager", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("lease inside second backoff granted %+v", resp.Units)
	}
	clk.Advance(2*time.Second + 100*time.Millisecond)
	lu3 := leaseOne(t, c, "silent-3")
	if lu3.Epoch != 3 {
		t.Fatalf("third lease epoch = %d, want 3", lu3.Epoch)
	}

	// Third expiry exhausts the budget: quarantined, with an artifact.
	clk.Advance(61 * time.Second)
	if resp := c.Lease(LeaseRequest{Worker: "eager", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("lease of quarantined unit: %+v", resp.Units)
	}
	st := unitState(t, c, "u00")
	if st.State != UnitQuarantined || st.Expiries != 3 {
		t.Fatalf("after budget exhaustion: %+v", st)
	}
	if _, err := os.Stat(QuarantinePath(dir, "u00")); err != nil {
		t.Fatalf("quarantine artifact: %v", err)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep not done after sole unit quarantined")
	}
}

// TestHeartbeatExtendsLease: heartbeats push the expiry forward and
// promote the unit to heartbeating.
func TestHeartbeatExtendsLease(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	c := newTestCoordinator(t, clk, nil, testUnits(1))

	lu := leaseOne(t, c, "w")
	for i := 0; i < 5; i++ {
		clk.Advance(50 * time.Second)
		hb := c.Heartbeat(HeartbeatRequest{Worker: "w", Unit: lu.Unit.ID, Epoch: lu.Epoch, Note: "step"})
		if !hb.OK || hb.Abandon {
			t.Fatalf("heartbeat %d rejected: %+v", i, hb)
		}
	}
	st := unitState(t, c, "u00")
	if st.State != UnitHeartbeating || st.Heartbeats != 5 || st.Expiries != 0 {
		t.Fatalf("after heartbeats: %+v", st)
	}
	// 250s elapsed against a 60s TTL: only heartbeats kept it alive.
	if resp := c.Lease(LeaseRequest{Worker: "thief", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("heartbeating lease stolen: %+v", resp.Units)
	}
}

// TestStaleEpochFenced: a zombie worker resurfacing after its lease was
// reassigned is told to abandon, and its completion is discarded — the
// re-leased holder's completion is the one merged.
func TestStaleEpochFenced(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	c := newTestCoordinator(t, clk, nil, testUnits(1))

	luA := leaseOne(t, c, "a")
	clk.Advance(62 * time.Second) // cross the TTL
	// First call after the TTL reaps the lease and starts the backoff.
	if resp := c.Lease(LeaseRequest{Worker: "b", Max: 1}); len(resp.Units) != 0 {
		t.Fatalf("lease granted inside backoff: %+v", resp.Units)
	}
	clk.Advance(2 * time.Second) // clear backoff
	luB := leaseOne(t, c, "b")

	if hb := c.Heartbeat(HeartbeatRequest{Worker: "a", Unit: luA.Unit.ID, Epoch: luA.Epoch}); !hb.Abandon {
		t.Fatalf("zombie heartbeat not told to abandon: %+v", hb)
	}
	if resp := c.Complete(CompleteRequest{Worker: "a", Unit: luA.Unit.ID, Epoch: luA.Epoch, OK: true, Result: "zombie"}); resp.Accepted {
		t.Fatal("zombie completion merged")
	}
	if resp := c.Complete(CompleteRequest{Worker: "b", Unit: luB.Unit.ID, Epoch: luB.Epoch, OK: true, Result: "real"}); !resp.Accepted {
		t.Fatal("live completion rejected")
	}
	st := unitState(t, c, "u00")
	if st.State != UnitDone || st.Completions != 1 {
		t.Fatalf("merge count wrong: %+v", st)
	}
	if res, ok := c.Result("u00"); !ok || res != "real" {
		t.Fatalf("result = %q, %v", res, ok)
	}
}

// TestSlowCompletionAfterExpiry: if the lease expired but the unit has
// not been re-leased, the original holder's completion still merges —
// the work is real and unduplicated.
func TestSlowCompletionAfterExpiry(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	c := newTestCoordinator(t, clk, nil, testUnits(1))

	lu := leaseOne(t, c, "slow")
	clk.Advance(90 * time.Second) // well past the TTL; no one re-leased
	if resp := c.Complete(CompleteRequest{Worker: "slow", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "late but real"}); !resp.Accepted {
		t.Fatal("slow completion rejected despite no re-lease")
	}
	st := unitState(t, c, "u00")
	if st.State != UnitDone || st.Completions != 1 {
		t.Fatalf("after slow completion: %+v", st)
	}
}

// TestDuplicateCompleteIdempotent: re-delivery of a merged completion
// (the response was dropped, the worker retried) is acknowledged
// without double-merging.
func TestDuplicateCompleteIdempotent(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	c := newTestCoordinator(t, clk, nil, testUnits(1))

	lu := leaseOne(t, c, "w")
	req := CompleteRequest{Worker: "w", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"}
	if resp := c.Complete(req); !resp.Accepted {
		t.Fatal("first completion rejected")
	}
	for i := 0; i < 3; i++ {
		if resp := c.Complete(req); !resp.Accepted {
			t.Fatalf("idempotent re-delivery %d rejected", i)
		}
	}
	if st := unitState(t, c, "u00"); st.Completions != 1 {
		t.Fatalf("completions = %d, want 1", st.Completions)
	}
	// A *different* worker claiming the same outcome is still fenced.
	if resp := c.Complete(CompleteRequest{Worker: "imp", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true}); resp.Accepted {
		t.Fatal("impostor completion acknowledged")
	}
}

// TestQuarantineAfterDistinctWorkerFailures: the same worker failing
// repeatedly counts once; the Nth distinct worker's failure quarantines
// the unit with its failure history preserved.
func TestQuarantineAfterDistinctWorkerFailures(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = dir
		cfg.ExpiryBudget = 100 // failures, not expiries, drive this test
	}, testUnits(1))

	fail := func(worker string) {
		t.Helper()
		// Clear any backoff from a previous failure.
		clk.Advance(time.Hour)
		lu := leaseOne(t, c, worker)
		if resp := c.Complete(CompleteRequest{Worker: worker, Unit: lu.Unit.ID, Epoch: lu.Epoch, Error: "boom"}); !resp.Accepted {
			t.Fatalf("%s: failure report rejected", worker)
		}
	}
	fail("a")
	fail("a") // same worker again: distinct count stays 1
	fail("b")
	if st := unitState(t, c, "u00"); st.State != UnitPending {
		t.Fatalf("quarantined after 2 distinct workers: %+v", st)
	}
	fail("c")
	st := unitState(t, c, "u00")
	if st.State != UnitQuarantined || len(st.Failures) != 4 {
		t.Fatalf("after 3rd distinct failure: %+v", st)
	}
	// Both the per-failure crash artifacts and the quarantine record
	// survive per shard.
	if _, err := os.Stat(QuarantinePath(dir, "u00")); err != nil {
		t.Fatalf("quarantine artifact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "u00.1.crash.json")); err != nil {
		t.Fatalf("crash artifact: %v", err)
	}
}

// TestReleaseReturnsUnitUncharged: a voluntary release puts the unit
// straight back in the pool without charging the expiry budget.
func TestReleaseReturnsUnitUncharged(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	c := newTestCoordinator(t, clk, nil, testUnits(1))

	lu := leaseOne(t, c, "a")
	rel := c.Release(ReleaseRequest{Worker: "a", Units: []UnitEpoch{{Unit: lu.Unit.ID, Epoch: lu.Epoch}}, Reason: "shutdown"})
	if rel.Released != 1 {
		t.Fatalf("released = %d, want 1", rel.Released)
	}
	// Immediately leasable, budget untouched, epoch fenced forward.
	lu2 := leaseOne(t, c, "b")
	if lu2.Epoch != lu.Epoch+1 {
		t.Fatalf("epoch after release = %d, want %d", lu2.Epoch, lu.Epoch+1)
	}
	if st := unitState(t, c, "u00"); st.Expiries != 0 {
		t.Fatalf("release charged the expiry budget: %+v", st)
	}
	// The old holder's completion is now fenced.
	if resp := c.Complete(CompleteRequest{Worker: "a", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true}); resp.Accepted {
		t.Fatal("released lease's completion merged")
	}
}

// TestDrainStopsLeasing: draining refuses new grants while letting the
// in-flight completion land, and WriteManifest records the terminal mix.
func TestDrainStopsLeasing(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) { cfg.StateDir = dir }, testUnits(2))

	lu := leaseOne(t, c, "w")
	c.Drain()
	if resp := c.Lease(LeaseRequest{Worker: "w", Max: 1}); !resp.Draining || len(resp.Units) != 0 {
		t.Fatalf("lease during drain: %+v", resp)
	}
	if resp := c.Complete(CompleteRequest{Worker: "w", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"}); !resp.Accepted {
		t.Fatal("in-flight completion rejected during drain")
	}
	if !c.Quiesced() {
		t.Fatal("not quiesced after the only lease completed")
	}
	c.WriteManifest()
	data, err := os.ReadFile(filepath.Join(dir, runner.ManifestName))
	if err != nil {
		t.Fatalf("merged manifest: %v", err)
	}
	for _, want := range []string{`"u00"`, `"done"`, `"u01"`, `"skipped"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("manifest missing %s:\n%s", want, data)
		}
	}
}

// TestResumeAfterCoordinatorCrash: a new coordinator over the same
// state dir keeps terminal outcomes (matching grid), reverts in-flight
// leases to pending, and preserves budgets.
func TestResumeAfterCoordinatorCrash(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	units := testUnits(4)
	c1 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) { cfg.StateDir = dir }, units)

	// u00 done, u01 quarantined (via failures), u02 leased (in flight
	// at crash time), u03 untouched.
	lu := leaseOne(t, c1, "a") // u00
	c1.Complete(CompleteRequest{Worker: "a", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"})
	for _, w := range []string{"a", "b", "c"} {
		clk.Advance(time.Hour)
		lu := leaseOne(t, c1, w) // u01
		c1.Complete(CompleteRequest{Worker: w, Unit: lu.Unit.ID, Epoch: lu.Epoch, Error: "poison"})
	}
	clk.Advance(time.Hour)
	leaseOne(t, c1, "dies-with-coordinator") // u02

	// "Crash": drop c1, rebuild from disk.
	c2 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = dir
		cfg.Resume = true
	}, units)

	want := map[UnitID]UnitState{
		"u00": UnitDone,
		"u01": UnitQuarantined,
		"u02": UnitPending,
		"u03": UnitPending,
	}
	for id, state := range want {
		if st := unitState(t, c2, id); st.State != state {
			t.Fatalf("%s resumed as %s, want %s", id, st.State, state)
		}
	}
	// The resumed pending units are immediately leasable and the sweep
	// finishes without touching u00/u01 again.
	for i := 0; i < 2; i++ {
		lu := leaseOne(t, c2, "fresh")
		if lu.Unit.ID == "u00" || lu.Unit.ID == "u01" {
			t.Fatalf("terminal unit %s re-leased after resume", lu.Unit.ID)
		}
		c2.Complete(CompleteRequest{Worker: "fresh", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"})
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("resumed sweep not done")
	}
	// Quarantine history survived the crash.
	if st := unitState(t, c2, "u01"); len(st.Failures) != 3 {
		t.Fatalf("quarantine history lost on resume: %+v", st)
	}
}

// TestResumeRejectsMismatchedGrid: state from a different unit grid
// (other seed) must not mask this sweep's work.
func TestResumeRejectsMismatchedGrid(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	units := testUnits(1)
	c1 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) { cfg.StateDir = dir }, units)
	lu := leaseOne(t, c1, "a")
	c1.Complete(CompleteRequest{Worker: "a", Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"})

	other := testUnits(1)
	other[0].Seed = 0xDEAD // different sweep
	c2 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = dir
		cfg.Resume = true
	}, other)
	if st := unitState(t, c2, "u00"); st.State != UnitPending {
		t.Fatalf("mismatched-grid outcome restored: %+v", st)
	}
}
