package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/vfs"
)

// FsckReport is the result of verifying a sweep state dir. Corruptions
// are findings an operator must act on (damaged state that recovery
// cannot silently absorb, or artifacts that no longer parse);
// Warnings are survivable oddities (torn journal tails, stale
// generations, orphaned artifacts).
type FsckReport struct {
	Dir string `json:"dir"`
	// Journaled reports whether the dir uses the journal layout (vs a
	// legacy sweep-state.json or nothing).
	Journaled  bool   `json:"journaled"`
	Generation uint64 `json:"generation,omitempty"`
	// Units is how many units the recovered state tracks; Records how
	// many journal records decoded cleanly.
	Units   int `json:"units"`
	Records int `json:"records"`

	Warnings    []string `json:"warnings,omitempty"`
	Corruptions []string `json:"corruptions,omitempty"`
}

// Clean reports whether the dir verified with no corruption.
func (r FsckReport) Clean() bool { return len(r.Corruptions) == 0 }

func (r *FsckReport) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

func (r *FsckReport) corruptf(format string, args ...any) {
	r.Corruptions = append(r.Corruptions, fmt.Sprintf(format, args...))
}

// crashArtifactRE matches per-failure crash artifacts: <id>.<n>.crash.json.
var crashArtifactRE = regexp.MustCompile(`^(.*)\.\d+\.crash\.json$`)

// Fsck verifies a sweep state dir offline: journal record checksums,
// snapshot/journal/manifest consistency, legacy state readability, and
// that every per-unit artifact parses and belongs to a tracked unit.
// The error return is reserved for an unreadable dir; damage is
// reported in the FsckReport so callers can render everything found,
// not just the first problem.
func Fsck(fsys vfs.FS, dir string) (FsckReport, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	rep := FsckReport{Dir: dir}
	if _, err := fsys.ReadDir(dir); err != nil {
		return rep, fmt.Errorf("sweepd: fsck: %w", err)
	}

	known := map[UnitID]bool{}
	trackUnits := func(entries []stateEntry) {
		for _, e := range entries {
			known[e.Unit.ID] = true
		}
	}

	manifestPath := filepath.Join(dir, JournalManifestName)
	manData, manErr := fsys.ReadFile(manifestPath)
	switch {
	case errors.Is(manErr, fs.ErrNotExist):
		entries, err := readLegacyState(fsys, dir)
		if err != nil {
			rep.corruptf("%v", err)
		} else {
			trackUnits(entries)
			rep.Units = len(entries)
		}
	case manErr != nil:
		rep.corruptf("reading %s: %v", manifestPath, manErr)
	default:
		rep.Journaled = true
		var man journalManifest
		if err := json.Unmarshal(manData, &man); err != nil {
			rep.corruptf("journal manifest %s is corrupt: %v", manifestPath, err)
			break
		}
		rep.Generation = man.Generation

		snapPath := filepath.Join(dir, snapshotFileName(man.Generation))
		var base []stateEntry
		snapData, err := fsys.ReadFile(snapPath)
		if err != nil {
			rep.corruptf("snapshot %s: %v", snapPath, err)
		} else {
			var doc stateFile
			if err := json.Unmarshal(snapData, &doc); err != nil {
				rep.corruptf("snapshot %s is corrupt: %v", snapPath, err)
			} else {
				base = doc.Units
			}
		}

		walPath := filepath.Join(dir, journalFileName(man.Generation))
		walData, err := fsys.ReadFile(walPath)
		if errors.Is(err, fs.ErrNotExist) {
			rep.warnf("journal %s missing (recovery would continue from the snapshot alone)", walPath)
		} else if err != nil {
			rep.corruptf("journal %s: %v", walPath, err)
		} else {
			scan := scanJournal(walData)
			rep.Records = scan.records
			switch {
			case scan.corruptAt >= 0:
				rep.corruptf("journal %s: bad record checksum at offset %d with intact data after it (mid-stream corruption; recovery falls back to %s)", walPath, scan.corruptAt, snapshotFileName(man.Generation))
			case scan.tornAt >= 0:
				rep.warnf("journal %s: torn tail record at offset %d (%d bytes; truncated on recovery)", walPath, scan.tornAt, scan.size-scan.tornAt)
				base = applyJournal(base, scan.entries)
			default:
				base = applyJournal(base, scan.entries)
			}
		}
		trackUnits(base)
		rep.Units = len(base)

		if _, err := fsys.Stat(filepath.Join(dir, StateName)); err == nil {
			rep.warnf("stale legacy %s alongside the journal (superseded; safe to delete)", StateName)
		}
	}

	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return rep, fmt.Errorf("sweepd: fsck: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		switch {
		case name == JournalManifestName || name == StateName || name == SalvageName:
			// Handled above (salvage just below).
		case name == "manifest.json":
			if !jsonParses(fsys, path) {
				rep.corruptf("merged manifest %s does not parse", path)
			}
		case strings.HasPrefix(name, "snapshot-") || strings.HasPrefix(name, "journal-"):
			if rep.Journaled && name != snapshotFileName(rep.Generation) && name != journalFileName(rep.Generation) {
				rep.warnf("stale generation file %s (active generation is %d; safe to delete)", name, rep.Generation)
			}
		case strings.HasSuffix(name, ".quarantine.json"):
			id := strings.TrimSuffix(name, ".quarantine.json")
			if !jsonParses(fsys, path) {
				rep.corruptf("quarantine artifact %s does not parse (torn write?)", path)
			} else if len(known) > 0 && !known[UnitID(id)] {
				rep.warnf("orphaned quarantine artifact %s: unit %q not in sweep state", name, id)
			}
		case crashArtifactRE.MatchString(name):
			id := crashArtifactRE.FindStringSubmatch(name)[1]
			if !jsonParses(fsys, path) {
				rep.corruptf("crash artifact %s does not parse (torn write?)", path)
			} else if len(known) > 0 && !known[UnitID(id)] {
				rep.warnf("orphaned crash artifact %s: unit %q not in sweep state", name, id)
			}
		case strings.HasSuffix(name, ".txt"):
			id := strings.TrimSuffix(name, ".txt")
			if len(known) > 0 && !known[UnitID(id)] {
				rep.warnf("orphaned result %s: unit %q not in sweep state", name, id)
			}
		case strings.Contains(name, ".tmp-"):
			rep.warnf("abandoned temp file %s (an interrupted atomic write; safe to delete)", name)
		}
	}

	if rep2, err := ReadSalvageReport(fsys, dir); err == nil {
		rep.warnf("previous recovery was lossy (%s, generation %d): %s", rep2.Kind, rep2.Generation, rep2.Detail)
	} else if !errors.Is(err, fs.ErrNotExist) {
		rep.corruptf("salvage report %s does not parse: %v", filepath.Join(dir, SalvageName), err)
	}

	sort.Strings(rep.Warnings)
	sort.Strings(rep.Corruptions)
	return rep, nil
}

// jsonParses reports whether path holds syntactically valid JSON.
func jsonParses(fsys vfs.FS, path string) bool {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return false
	}
	return json.Valid(data)
}
