package sweepd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// leaseGate builds a gate whose lease endpoint has the given limits;
// the other endpoints keep defaults.
func leaseGate(l GateLimits) *Gate {
	return NewGate(GateConfig{PerEndpoint: map[string]GateLimits{EndpointLease: l}})
}

// waitForQueued polls until the endpoint's queued gauge reaches n —
// the only way a test can know a concurrent Acquire has actually
// entered the wait queue.
func waitForQueued(t *testing.T, g *Gate, endpoint string, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Stats().Endpoints[endpoint].Queued >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queued gauge never reached %d: %+v", n, g.Stats().Endpoints[endpoint])
}

// TestGateAdmitsUpToInflight: the first Inflight acquisitions are
// immediate, and a queued request is admitted the moment a slot frees.
func TestGateAdmitsUpToInflight(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 2, Queue: 2, QueueWait: 5 * time.Second})
	ctx := context.Background()

	rel1, err := g.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := g.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}

	// Third must queue: prove it is not admitted until a slot frees.
	got := make(chan error, 1)
	var rel3 func()
	go func() {
		var err error
		rel3, err = g.Acquire(ctx, EndpointLease)
		got <- err
	}()
	waitForQueued(t, g, EndpointLease, 1)
	select {
	case err := <-got:
		t.Fatalf("third acquire returned %v while both slots were held", err)
	default:
	}

	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	rel2()
	rel3()

	st := g.Stats().Endpoints[EndpointLease]
	if st.Admitted != 3 || st.Shed != 0 {
		t.Fatalf("admitted=%d shed=%d, want 3/0", st.Admitted, st.Shed)
	}
	if st.InflightMax != 2 {
		t.Fatalf("inflight high-water %d, want 2 (the cap)", st.InflightMax)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
}

// TestGateShedsPastQueueBound: with the slot held and the queue full, a
// new arrival is refused immediately with a typed OverloadError.
func TestGateShedsPastQueueBound(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1, Queue: 1, QueueWait: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rel, err := g.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	go g.Acquire(ctx, EndpointLease) // fills the queue; released by cancel
	waitForQueued(t, g, EndpointLease, 1)

	_, err = g.Acquire(ctx, EndpointLease)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("acquire past queue bound returned %v, want *OverloadError", err)
	}
	if oe.Endpoint != EndpointLease {
		t.Fatalf("shed endpoint %q, want %q", oe.Endpoint, EndpointLease)
	}
	// Queue saturated: the hint must be at the stretched end, not the
	// first-refusal quarter.
	if oe.RetryAfter < time.Minute {
		t.Fatalf("retry hint %v at full queue, want >= QueueWait", oe.RetryAfter)
	}
	if st := g.Stats().Endpoints[EndpointLease]; st.Shed != 1 {
		t.Fatalf("shed counter %d, want 1", st.Shed)
	}
}

// TestGateQueueWaitSheds: a queued request that never gets a slot is
// shed once QueueWait elapses instead of waiting forever.
func TestGateQueueWaitSheds(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1, Queue: 4, QueueWait: 20 * time.Millisecond})
	ctx := context.Background()

	rel, err := g.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	_, err = g.Acquire(ctx, EndpointLease)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("queued acquire returned %v, want *OverloadError after queue wait", err)
	}
	st := g.Stats().Endpoints[EndpointLease]
	if st.Shed != 1 || st.Queued != 0 {
		t.Fatalf("after queue-wait shed: %+v", st)
	}
}

// TestGateContextCancelWhileQueued: a caller that gives up while queued
// gets its own ctx error, not an OverloadError, and the queue drains.
func TestGateContextCancelWhileQueued(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1, Queue: 4, QueueWait: time.Minute})
	rel, err := g.Acquire(context.Background(), EndpointLease)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, EndpointLease)
		got <- err
	}()
	waitForQueued(t, g, EndpointLease, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued acquire returned %v, want context.Canceled", err)
	}
	if st := g.Stats().Endpoints[EndpointLease]; st.Queued != 0 || st.Shed != 0 {
		t.Fatalf("after cancel: %+v (cancel is not a shed)", st)
	}
}

// TestGateReleaseIdempotent: double-releasing one admission must not
// free two slots (or block); the inflight gauge stays exact.
func TestGateReleaseIdempotent(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1, Queue: 1, QueueWait: 10 * time.Millisecond})
	rel, err := g.Acquire(context.Background(), EndpointLease)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	rel()
	rel() // must be a no-op, not a second slot credit

	if st := g.Stats().Endpoints[EndpointLease]; st.Inflight != 0 {
		t.Fatalf("inflight gauge %d after double release, want 0", st.Inflight)
	}
	// The single slot still behaves as a single slot.
	rel1, err := g.Acquire(context.Background(), EndpointLease)
	if err != nil {
		t.Fatalf("re-acquire: %v", err)
	}
	defer rel1()
	if _, err := g.Acquire(context.Background(), EndpointLease); err == nil {
		t.Fatal("second concurrent acquire succeeded; double release leaked a slot")
	}
}

// TestGateUnknownEndpointUnconditional: endpoints the gate was not
// configured for pass through without counters or limits.
func TestGateUnknownEndpointUnconditional(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1})
	for i := 0; i < 10; i++ {
		rel, err := g.Acquire(context.Background(), "bogus")
		if err != nil {
			t.Fatalf("acquire %d of unknown endpoint: %v", i, err)
		}
		rel()
	}
	if _, ok := g.Stats().Endpoints["bogus"]; ok {
		t.Fatal("unknown endpoint grew counters")
	}
}

// TestGateRetryAfterScalesWithPressure: the shed hint stretches from a
// quarter of the queue wait toward 1.25× as the queue fills.
func TestGateRetryAfterScalesWithPressure(t *testing.T) {
	g := NewGate(GateConfig{})
	s := &gateSlot{limits: GateLimits{Inflight: 1, Queue: 10, QueueWait: time.Second}}

	empty := g.retryAfter(s)
	if empty != 250*time.Millisecond {
		t.Fatalf("empty-queue hint %v, want QueueWait/4", empty)
	}
	s.queued.Store(5)
	half := g.retryAfter(s)
	s.queued.Store(10)
	full := g.retryAfter(s)
	if !(empty < half && half < full) {
		t.Fatalf("hint not monotone in queue depth: %v, %v, %v", empty, half, full)
	}
	if full != 1250*time.Millisecond {
		t.Fatalf("saturated hint %v, want 1.25×QueueWait", full)
	}
}

// TestGatePressure: pressure is the fullest endpoint queue, clamped to
// [0, 1], and returns to zero when the queue drains.
func TestGatePressure(t *testing.T) {
	g := leaseGate(GateLimits{Inflight: 1, Queue: 2, QueueWait: time.Minute})
	if p := g.Pressure(); p != 0 {
		t.Fatalf("idle pressure %v, want 0", p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rel, err := g.Acquire(ctx, EndpointLease)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()
	go g.Acquire(ctx, EndpointLease)
	waitForQueued(t, g, EndpointLease, 1)
	if p := g.Pressure(); p != 0.5 {
		t.Fatalf("pressure with half-full queue = %v, want 0.5", p)
	}
	go g.Acquire(ctx, EndpointLease)
	waitForQueued(t, g, EndpointLease, 2)
	if p := g.Pressure(); p != 1 {
		t.Fatalf("pressure with full queue = %v, want 1", p)
	}
}

// TestGateInflightNeverExceedsCapUnderHerd: a synchronized stampede of
// acquirers never pushes the inflight high-water past the cap, and
// everyone is eventually served (queue sized to hold them all).
func TestGateInflightNeverExceedsCapUnderHerd(t *testing.T) {
	const herd, inflightCap = 64, 4
	g := leaseGate(GateLimits{Inflight: inflightCap, Queue: herd, QueueWait: 30 * time.Second})

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rel, err := g.Acquire(context.Background(), EndpointLease)
			if err != nil {
				errs <- err
				return
			}
			time.Sleep(100 * time.Microsecond) // hold the slot briefly
			rel()
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("herd acquire failed: %v", err)
	}

	st := g.Stats().Endpoints[EndpointLease]
	if st.InflightMax > inflightCap {
		t.Fatalf("inflight high-water %d exceeded cap %d", st.InflightMax, inflightCap)
	}
	if st.Admitted != herd {
		t.Fatalf("admitted %d of %d", st.Admitted, herd)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gauges not drained after herd: %+v", st)
	}
}

// TestGateRecordBreaker: worker breaker counters fold into the gate's
// aggregate additively.
func TestGateRecordBreaker(t *testing.T) {
	g := NewGate(GateConfig{})
	g.RecordBreaker(BreakerStats{Trips: 1, FastFails: 3, Probes: 2})
	g.RecordBreaker(BreakerStats{Trips: 2, FastFails: 1})
	if b := g.Stats().Breaker; b.Trips != 3 || b.FastFails != 4 || b.Probes != 2 {
		t.Fatalf("aggregated breaker stats %+v", b)
	}
}
