package sweepd

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// flakyFS wraps a vfs.FS and, once tripped, fails every mutation — the
// disk-went-bad scenario degraded mode exists for. Reads keep working,
// matching a filesystem remounted read-only.
type flakyFS struct {
	vfs.FS
	broken *atomic.Bool
}

var errFlaky = errors.New("flaky: injected write failure")

func (f flakyFS) wrap(file vfs.File, err error) (vfs.File, error) {
	if err != nil {
		return nil, err
	}
	return flakyFile{file, f.broken}, nil
}

func (f flakyFS) Create(name string) (vfs.File, error) {
	if f.broken.Load() {
		return nil, errFlaky
	}
	return f.wrap(f.FS.Create(name))
}

func (f flakyFS) CreateTemp(dir, pattern string) (vfs.File, error) {
	if f.broken.Load() {
		return nil, errFlaky
	}
	return f.wrap(f.FS.CreateTemp(dir, pattern))
}

func (f flakyFS) Append(name string) (vfs.File, error) {
	if f.broken.Load() {
		return nil, errFlaky
	}
	return f.wrap(f.FS.Append(name))
}

func (f flakyFS) Rename(oldname, newname string) error {
	if f.broken.Load() {
		return errFlaky
	}
	return f.FS.Rename(oldname, newname)
}

type flakyFile struct {
	vfs.File
	broken *atomic.Bool
}

func (f flakyFile) Write(p []byte) (int, error) {
	if f.broken.Load() {
		return 0, errFlaky
	}
	return f.File.Write(p)
}

func (f flakyFile) Sync() error {
	if f.broken.Load() {
		return errFlaky
	}
	return f.File.Sync()
}

// completeOne leases one unit and completes it successfully.
func completeOne(t *testing.T, c *Coordinator, worker string) {
	t.Helper()
	lu := leaseOne(t, c, worker)
	c.Complete(CompleteRequest{Worker: worker, Unit: lu.Unit.ID, Epoch: lu.Epoch, OK: true, Result: "r"})
}

// TestDegradedAfterPersistFailures: once checkpoint transitions fail
// PersistFailLimit times in a row, the coordinator refuses leases,
// surfaces degraded status, and Wait returns ErrDegraded instead of
// hanging on a sweep that can never durably finish.
func TestDegradedAfterPersistFailures(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	broken := &atomic.Bool{}
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = t.TempDir()
		cfg.FS = flakyFS{vfs.OS{}, broken}
		cfg.PersistFailLimit = 2
	}, testUnits(5))
	defer c.Close()

	completeOne(t, c, "w") // healthy disk: persists
	if deg, _ := c.Degraded(); deg {
		t.Fatal("degraded on a healthy disk")
	}

	broken.Store(true)
	completeOne(t, c, "w") // first failed transition
	if deg, _ := c.Degraded(); deg {
		t.Fatal("degraded before PersistFailLimit")
	}
	completeOne(t, c, "w") // second: trips the limit

	deg, reason := c.Degraded()
	if !deg || reason == "" {
		t.Fatalf("Degraded() = %v, %q after %d failures", deg, reason, 2)
	}
	resp := c.Lease(LeaseRequest{Worker: "w", Max: 1})
	if !resp.Degraded || len(resp.Units) != 0 {
		t.Fatalf("degraded coordinator granted a lease: %+v", resp)
	}
	st := c.Snapshot()
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("status hides degraded mode: %+v", st)
	}
	if err := c.Wait(context.Background(), time.Millisecond); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Wait = %v, want ErrDegraded", err)
	}
}

// TestPersistFailureCounterResets: the failure count is *consecutive* —
// a transient blip that heals before the limit never degrades.
func TestPersistFailureCounterResets(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	broken := &atomic.Bool{}
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = t.TempDir()
		cfg.FS = flakyFS{vfs.OS{}, broken}
		cfg.PersistFailLimit = 2
	}, testUnits(5))
	defer c.Close()

	broken.Store(true)
	completeOne(t, c, "w") // one failure
	broken.Store(false)
	completeOne(t, c, "w") // success resets the counter
	broken.Store(true)
	completeOne(t, c, "w") // one failure again — still under the limit

	if deg, _ := c.Degraded(); deg {
		t.Fatal("transient persist failures degraded the coordinator")
	}
	// The healed transitions are really on disk: a resumed coordinator
	// sees the two merged completions.
	broken.Store(false)
}

// TestLegacyPersistEscalates is the satellite contract: the pre-journal
// full-rewrite path shares the escalation policy — repeated checkpoint
// failures stop the sweep rather than scrolling warnings.
func TestLegacyPersistEscalates(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	broken := &atomic.Bool{}
	c := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = t.TempDir()
		cfg.FS = flakyFS{vfs.OS{}, broken}
		cfg.LegacyState = true
		cfg.PersistFailLimit = 2
	}, testUnits(5))

	completeOne(t, c, "w")
	broken.Store(true)
	// Legacy mode checkpoints on the grant AND the completion, so one
	// lease+complete cycle is two failed transitions.
	completeOne(t, c, "w")
	if deg, _ := c.Degraded(); !deg {
		t.Fatal("legacy persist failures did not degrade the coordinator")
	}
	if resp := c.Lease(LeaseRequest{Worker: "w", Max: 1}); !resp.Degraded {
		t.Fatalf("degraded legacy coordinator granted a lease: %+v", resp)
	}
}

// TestCoordinatorSalvageExposed: a lossy journal recovery surfaces
// through Coordinator.Salvage and leaves the report on disk, while the
// sweep still resumes from the snapshot.
func TestCoordinatorSalvageExposed(t *testing.T) {
	clk := NewManualClock(time.Unix(0, 0))
	dir := t.TempDir()
	units := testUnits(3)
	c1 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) { cfg.StateDir = dir }, units)
	completeOne(t, c1, "w")
	completeOne(t, c1, "w")
	c1.Close()

	// Corrupt the first journal record; the second record after it makes
	// this mid-stream corruption, so recovery falls back to the (empty)
	// snapshot taken at c1's open.
	gen := readManifestGen(t, dir)
	walPath := filepath.Join(dir, journalFileName(gen))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[frameOverhead+1] ^= 1
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := newTestCoordinator(t, clk, func(cfg *CoordinatorConfig) {
		cfg.StateDir = dir
		cfg.Resume = true
	}, units)
	defer c2.Close()
	salv := c2.Salvage()
	if salv == nil || salv.Kind != "mid-stream-corruption" {
		t.Fatalf("Salvage() = %+v", salv)
	}
	if rep, err := ReadSalvageReport(nil, dir); err != nil || rep.Kind != salv.Kind {
		t.Fatalf("salvage report on disk: %+v, %v", rep, err)
	}
	// Fallback state: both completions lost with the journal, units
	// pending again — lossy but explicit, never silent.
	if st := c2.Snapshot(); st.Pending != 3 || st.Done != 0 {
		t.Fatalf("post-salvage snapshot: %+v", st)
	}
}

// TestCoordinatorCorruptLegacyResume: NewCoordinator over a damaged
// legacy sweep-state.json fails loudly in both journal (migration) and
// legacy modes.
func TestCoordinatorCorruptLegacyResume(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, StateName), []byte(`{"units": [{"truncated`), 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := CoordinatorConfig{StateDir: dir, Resume: true, LegacyState: legacy}
		if _, err := NewCoordinator(cfg, testUnits(1)); err == nil {
			t.Fatalf("legacy=%v: corrupt state resumed silently", legacy)
		}
	}
}
