package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// NewServer exposes the coordinator over HTTP/JSON: the four protocol
// POSTs plus a human-facing GET /v1/status. Handlers are thin — all
// semantics (reaping, fencing, idempotency) live in the Coordinator, so
// the HTTP and loopback transports cannot drift apart.
func NewServer(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", jsonHandler(c.Lease))
	mux.HandleFunc("POST /v1/heartbeat", jsonHandler(c.Heartbeat))
	mux.HandleFunc("POST /v1/complete", jsonHandler(c.Complete))
	mux.HandleFunc("POST /v1/release", jsonHandler(c.Release))
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		data, err := c.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	return mux
}

// jsonHandler decodes one request type, applies the coordinator method,
// and encodes the response.
func jsonHandler[Req, Resp any](fn func(Req) Resp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		body := http.MaxBytesReader(w, r.Body, 16<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(fn(req)); err != nil {
			// The response is already partially written; nothing
			// recoverable — the client's decode error stands in for us.
			return
		}
	}
}

// HTTPClient speaks the coordinator protocol over the network; it is
// what `ufsim worker -coordinator URL` runs on.
type HTTPClient struct {
	// Base is the coordinator URL, e.g. "http://sweep-host:7733".
	Base string
	// HTTP is the underlying client; nil uses a 30s-timeout default.
	HTTP *http.Client
}

func (h *HTTPClient) client() *http.Client {
	if h.HTTP != nil {
		return h.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// post delivers one JSON request and decodes the JSON response.
func (h *HTTPClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("sweepd: encoding %s request: %w", path, err)
	}
	url := strings.TrimRight(h.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("sweepd: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Lease implements Client.
func (h *HTTPClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := h.post(ctx, "/v1/lease", req, &resp)
	return resp, err
}

// Heartbeat implements Client.
func (h *HTTPClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := h.post(ctx, "/v1/heartbeat", req, &resp)
	return resp, err
}

// Complete implements Client.
func (h *HTTPClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := h.post(ctx, "/v1/complete", req, &resp)
	return resp, err
}

// Release implements Client.
func (h *HTTPClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	var resp ReleaseResponse
	err := h.post(ctx, "/v1/release", req, &resp)
	return resp, err
}
