package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// ServerConfig tunes the HTTP front of the coordinator.
type ServerConfig struct {
	// Gate, when set, is acquired around every handler: requests past
	// the endpoint's inflight cap queue briefly, then are shed as
	// 429 + Retry-After. Attach the same gate to the coordinator
	// (AttachGate) so shedding also stretches the lease poll hints.
	Gate *Gate
	// Log receives panic stacks from recovered handlers; nil discards
	// them (the client still gets its 500 either way).
	Log io.Writer
}

// NewServer exposes the coordinator over HTTP/JSON: the protocol POSTs
// plus a human-facing GET /v1/status. Handlers are thin — all semantics
// (reaping, fencing, idempotency) live in the Coordinator, so the HTTP
// and loopback transports cannot drift apart. Every handler is wrapped
// in panic recovery and, when cfg.Gate is set, admission control.
func NewServer(c *Coordinator, cfg ServerConfig) http.Handler {
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, gated(cfg.Gate, endpoint, h))
	}
	handle("POST /v1/lease", EndpointLease, jsonHandler(c.Lease))
	handle("POST /v1/heartbeat", EndpointHeartbeat, jsonHandler(c.Heartbeat))
	handle("POST /v1/complete", EndpointComplete, jsonHandler(c.Complete))
	handle("POST /v1/complete-batch", EndpointComplete, jsonHandler(c.CompleteBatch))
	handle("POST /v1/release", EndpointRelease, jsonHandler(c.Release))
	handle("GET /v1/status", EndpointStatus, func(w http.ResponseWriter, r *http.Request) {
		data, err := c.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	return recovered(log, mux)
}

// recovered turns a handler panic into a 500 instead of a killed
// connection, logging the stack — masking it would turn every
// coordinator bug into an undiagnosable transport error.
func recovered(log io.Writer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				fmt.Fprintf(log, "sweepd: panic serving %s %s: %v\n%s\n", r.Method, r.URL.Path, rec, debug.Stack())
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// shedBody is the machine-readable half of a 429: the Retry-After
// header only has whole-second resolution, so the body carries the
// precise hint for HTTPClient to rebuild the OverloadError from.
type shedBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// gated wraps a handler in gate admission; shed requests get
// 429 + Retry-After without ever touching the coordinator.
func gated(g *Gate, endpoint string, next http.HandlerFunc) http.HandlerFunc {
	if g == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := g.Acquire(r.Context(), endpoint)
		if err != nil {
			oe, shed := err.(*OverloadError)
			if !shed {
				// The client gave up while queued; the connection is
				// already dead, so any status would go nowhere.
				return
			}
			// Ceil to whole seconds for the header (0 would mean "now",
			// defeating the point); exact hint goes in the body.
			secs := int64((oe.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(shedBody{Error: "overloaded", RetryAfterMS: oe.RetryAfter.Milliseconds()})
			return
		}
		defer release()
		next(w, r)
	}
}

// jsonHandler decodes one request type, applies the coordinator method,
// and encodes the response.
func jsonHandler[Req, Resp any](fn func(Req) Resp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		body := http.MaxBytesReader(w, r.Body, 16<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(fn(req)); err != nil {
			// The response is already partially written; nothing
			// recoverable — the client's decode error stands in for us.
			return
		}
	}
}

// HTTPTimeouts bounds how long the coordinator's listener tolerates
// slow clients. The zero value of any field takes its default; the
// defaults assume workers on a LAN, not the open internet.
type HTTPTimeouts struct {
	// ReadHeader caps how long a connection may dribble its request
	// line and headers — the classic slow-loris hold; zero means 5s.
	ReadHeader time.Duration
	// Read caps the whole request (headers + body); zero means 1m.
	Read time.Duration
	// Write caps writing the response; zero means 1m.
	Write time.Duration
	// Idle caps how long a keep-alive connection may sit between
	// requests; zero means 2m.
	Idle time.Duration
}

func (t HTTPTimeouts) withDefaults() HTTPTimeouts {
	if t.ReadHeader <= 0 {
		t.ReadHeader = 5 * time.Second
	}
	if t.Read <= 0 {
		t.Read = time.Minute
	}
	if t.Write <= 0 {
		t.Write = time.Minute
	}
	if t.Idle <= 0 {
		t.Idle = 2 * time.Minute
	}
	return t
}

// NewHTTPServer builds the coordinator's http.Server with every slow-
// client timeout set. A bare &http.Server{} holds a slow-loris
// connection (and its goroutine, and its admission slot) forever; this
// is the only constructor `ufsim serve` is allowed to use.
func NewHTTPServer(addr string, h http.Handler, t HTTPTimeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// HTTPClient speaks the coordinator protocol over the network; it is
// what `ufsim worker -coordinator URL` runs on.
type HTTPClient struct {
	// Base is the coordinator URL, e.g. "http://sweep-host:7733".
	Base string
	// HTTP is the underlying client; nil uses a 30s-timeout default.
	HTTP *http.Client
}

func (h *HTTPClient) client() *http.Client {
	if h.HTTP != nil {
		return h.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// post delivers one JSON request and decodes the JSON response. A 429
// comes back as an *OverloadError carrying the server's retry hint, so
// worker backoff treats network-shed and loopback-shed identically.
func (h *HTTPClient) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("sweepd: encoding %s request: %w", path, err)
	}
	url := strings.TrimRight(h.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return overloadFromResponse(path, resp)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("sweepd: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// overloadFromResponse rebuilds the gate's OverloadError from a 429:
// the JSON body's millisecond hint when present, the Retry-After header
// otherwise, a second as the floor of last resort.
func overloadFromResponse(path string, resp *http.Response) error {
	ra := time.Second
	var sb shedBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&sb); err == nil && sb.RetryAfterMS > 0 {
		ra = time.Duration(sb.RetryAfterMS) * time.Millisecond
	} else if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ra = time.Duration(secs) * time.Second
	}
	return &OverloadError{Endpoint: strings.TrimPrefix(path, "/v1/"), RetryAfter: ra}
}

// Lease implements Client.
func (h *HTTPClient) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := h.post(ctx, "/v1/lease", req, &resp)
	return resp, err
}

// Heartbeat implements Client.
func (h *HTTPClient) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := h.post(ctx, "/v1/heartbeat", req, &resp)
	return resp, err
}

// Complete implements Client.
func (h *HTTPClient) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := h.post(ctx, "/v1/complete", req, &resp)
	return resp, err
}

// CompleteBatch implements Client.
func (h *HTTPClient) CompleteBatch(ctx context.Context, req CompleteBatchRequest) (CompleteBatchResponse, error) {
	var resp CompleteBatchResponse
	err := h.post(ctx, "/v1/complete-batch", req, &resp)
	return resp, err
}

// Release implements Client.
func (h *HTTPClient) Release(ctx context.Context, req ReleaseRequest) (ReleaseResponse, error) {
	var resp ReleaseResponse
	err := h.post(ctx, "/v1/release", req, &resp)
	return resp, err
}
