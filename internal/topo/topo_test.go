package topo

import (
	"testing"
	"testing/quick"
)

func TestXeonGold6142Socket0Layout(t *testing.T) {
	d := XeonGold6142Socket0
	if d.NumCores() != 16 {
		t.Fatalf("socket 0 has %d cores, want 16 (Table 1)", d.NumCores())
	}
	if d.NumSlices() != 16 {
		t.Fatalf("socket 0 has %d slices, want 16", d.NumSlices())
	}
	if len(d.IMCs()) != 2 {
		t.Fatalf("socket 0 has %d IMCs, want 2 (XCC die)", len(d.IMCs()))
	}
	// Figure 2 spot checks.
	wantCores := []Coord{{Col: 0, Row: 1}, {Col: 4, Row: 1}, {Col: 3, Row: 3}, {Col: 2, Row: 5}}
	for _, c := range wantCores {
		if d.Kind(c) != TileCore {
			t.Errorf("tile %v = %v, want core (Figure 2)", c, d.Kind(c))
		}
	}
	wantOff := []Coord{{Col: 1, Row: 2}, {Col: 3, Row: 2}, {Col: 4, Row: 3}, {Col: 2, Row: 4}}
	for _, c := range wantOff {
		if d.Kind(c) != TileDisabled {
			t.Errorf("tile %v = %v, want disabled (Figure 2)", c, d.Kind(c))
		}
	}
	if d.Kind(Coord{Col: 1, Row: 0}) != TileIMC || d.Kind(Coord{Col: 1, Row: 5}) != TileIMC {
		t.Error("IMC tiles not at (1,0) and (1,5)")
	}
}

func TestSocket1AndFullXCC(t *testing.T) {
	if XeonGold6142Socket1.NumCores() != 16 {
		t.Errorf("socket 1 has %d cores, want 16", XeonGold6142Socket1.NumCores())
	}
	if FullXCC.NumCores() != 28 {
		t.Errorf("full XCC has %d cores, want 28 (§2.1)", FullXCC.NumCores())
	}
	// The two sockets differ in their disable masks (§3).
	differ := false
	for r := 0; r < 6; r++ {
		for c := 0; c < 5; c++ {
			co := Coord{Col: c, Row: r}
			if XeonGold6142Socket0.Kind(co) != XeonGold6142Socket1.Kind(co) {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("socket dies have identical disable masks")
	}
}

func TestFigure8Coordinates(t *testing.T) {
	// Figure 8's caption: core (3,3) measures slices at (3,3), (2,3),
	// (2,2), (2,1) for 0..3 hops.
	d := XeonGold6142Socket0
	from := Coord{Col: 3, Row: 3}
	if d.CoreIDAt(from) < 0 {
		t.Fatal("(3,3) is not an active core")
	}
	for i, c := range []Coord{{Col: 3, Row: 3}, {Col: 2, Row: 3}, {Col: 2, Row: 2}, {Col: 2, Row: 1}} {
		if d.CoreIDAt(c) < 0 {
			t.Errorf("slice tile %v not active", c)
		}
		if got := from.Hops(c); got != i {
			t.Errorf("hops (3,3)->%v = %d, want %d", c, got, i)
		}
	}
}

func TestHopsProperties(t *testing.T) {
	// Manhattan distance: symmetric, zero iff equal, triangle holds.
	f := func(a, b, c int8) bool {
		p := Coord{Col: int(a) % 5, Row: int(b) % 6}
		q := Coord{Col: int(c) % 5, Row: int(a) % 6}
		r := Coord{Col: int(b) % 5, Row: int(c) % 6}
		if p.Hops(q) != q.Hops(p) {
			return false
		}
		if p.Hops(p) != 0 {
			return false
		}
		return p.Hops(r) <= p.Hops(q)+q.Hops(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoreIDStability(t *testing.T) {
	d := XeonGold6142Socket0
	for id := 0; id < d.NumCores(); id++ {
		if got := d.CoreIDAt(d.CoreCoord(id)); got != id {
			t.Errorf("CoreIDAt(CoreCoord(%d)) = %d", id, got)
		}
	}
	if d.CoreIDAt(Coord{Col: 1, Row: 0}) != -1 {
		t.Error("IMC tile reported a core ID")
	}
}

func TestSliceAtHops(t *testing.T) {
	d := XeonGold6142Socket0
	for core := 0; core < d.NumCores(); core++ {
		if s, ok := d.SliceAtHops(core, 0); !ok || s != core {
			t.Errorf("core %d: 0-hop slice = %d,%v, want itself", core, s, ok)
		}
	}
	if _, ok := d.SliceAtHops(0, 100); ok {
		t.Error("found a slice 100 hops away")
	}
}

func TestNewDieValidation(t *testing.T) {
	if _, err := NewDie("bad", []string{"CC", "C"}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewDie("bad", []string{"CQ"}); err == nil {
		t.Error("unknown tile byte accepted")
	}
	if _, err := NewDie("bad", nil); err == nil {
		t.Error("empty die accepted")
	}
}

func TestCoreCoordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CoreCoord(99) did not panic")
		}
	}()
	XeonGold6142Socket0.CoreCoord(99)
}

func TestTileKindString(t *testing.T) {
	if TileCore.String() != "core" || TileIMC.String() != "imc" || TileDisabled.String() != "disabled" {
		t.Error("TileKind strings wrong")
	}
}
