// Package topo describes the physical floorplan of a processor die: the 2D
// grid of tiles connected by the mesh interconnect, which tiles hold cores
// and LLC slices, which hold memory controllers, and which are fused off.
//
// The default layout reproduces Figure 2 of the paper exactly: the XCC
// (extreme core count) Skylake-SP die of the Intel Xeon Gold 6142, a 5×6
// grid with 28 core-tile positions and 2 IMC tiles, of which 12 core tiles
// are disabled, leaving 16 active cores and 16 LLC slices.
package topo

import "fmt"

// TileKind classifies a position in the die grid.
type TileKind uint8

const (
	// TileDisabled is a fused-off core tile. Its router still works
	// (Figure 2 note: "the routers in the disabled tiles are still
	// functional"), so it participates in mesh routing but hosts no core
	// or LLC slice.
	TileDisabled TileKind = iota
	// TileCore hosts a core plus an LLC+directory slice.
	TileCore
	// TileIMC hosts an integrated memory controller.
	TileIMC
)

func (k TileKind) String() string {
	switch k {
	case TileDisabled:
		return "disabled"
	case TileCore:
		return "core"
	case TileIMC:
		return "imc"
	default:
		return fmt.Sprintf("TileKind(%d)", uint8(k))
	}
}

// Coord addresses a tile as (column, row), matching the paper's Figure 2
// labels: the Xeon Gold 6142 die has columns 0..4 and rows 0..5.
type Coord struct {
	Col, Row int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Col, c.Row) }

// Hops returns the Manhattan distance between two tiles, the "hops" unit
// used throughout the paper (cf. Figure 2's 1/2/3-hop annotations).
func (c Coord) Hops(o Coord) int {
	return abs(c.Col-o.Col) + abs(c.Row-o.Row)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Die is a processor floorplan: a grid of tiles plus the derived lists of
// active core tiles and IMC tiles.
type Die struct {
	Name string
	// Cols and Rows give the grid dimensions.
	Cols, Rows int

	kinds map[Coord]TileKind
	cores []Coord // active core tiles, in core-ID order
	imcs  []Coord
}

// NewDie builds a die from a row-major ASCII picture, one string per row,
// one byte per column: 'C' for an active core tile, 'x' for a disabled
// tile, 'M' for an IMC tile. All rows must have equal length.
func NewDie(name string, rows []string) (*Die, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("topo: die %q has no rows", name)
	}
	d := &Die{
		Name:  name,
		Cols:  len(rows[0]),
		Rows:  len(rows),
		kinds: make(map[Coord]TileKind),
	}
	for r, line := range rows {
		if len(line) != d.Cols {
			return nil, fmt.Errorf("topo: die %q row %d has %d columns, want %d", name, r, len(line), d.Cols)
		}
		for c := 0; c < d.Cols; c++ {
			coord := Coord{Col: c, Row: r}
			switch line[c] {
			case 'C':
				d.kinds[coord] = TileCore
				d.cores = append(d.cores, coord)
			case 'x':
				d.kinds[coord] = TileDisabled
			case 'M':
				d.kinds[coord] = TileIMC
				d.imcs = append(d.imcs, coord)
			default:
				return nil, fmt.Errorf("topo: die %q has unknown tile byte %q at %v", name, line[c], coord)
			}
		}
	}
	return d, nil
}

// MustDie is NewDie that panics on error; for package-level layouts.
func MustDie(name string, rows []string) *Die {
	d, err := NewDie(name, rows)
	if err != nil {
		panic(err)
	}
	return d
}

// Kind reports the tile kind at c, or TileDisabled for out-of-range
// coordinates.
func (d *Die) Kind(c Coord) TileKind { return d.kinds[c] }

// NumCores returns the number of active core tiles.
func (d *Die) NumCores() int { return len(d.cores) }

// CoreCoord returns the tile coordinate of core id (0-based). Core IDs are
// assigned row-major over active core tiles.
func (d *Die) CoreCoord(id int) Coord {
	if id < 0 || id >= len(d.cores) {
		panic(fmt.Sprintf("topo: die %q has no core %d", d.Name, id))
	}
	return d.cores[id]
}

// Cores returns the coordinates of all active core tiles, in core-ID order.
// The caller must not modify the returned slice.
func (d *Die) Cores() []Coord { return d.cores }

// IMCs returns the coordinates of the memory-controller tiles.
func (d *Die) IMCs() []Coord { return d.imcs }

// SliceCoord returns the tile coordinate of LLC slice id. On Skylake-SP
// each active core tile carries one LLC slice, so slices share the core
// numbering.
func (d *Die) SliceCoord(id int) Coord { return d.CoreCoord(id) }

// NumSlices returns the number of active LLC slices.
func (d *Die) NumSlices() int { return len(d.cores) }

// CoreIDAt returns the core ID whose tile is at c, or -1 if c is not an
// active core tile.
func (d *Die) CoreIDAt(c Coord) int {
	for i, cc := range d.cores {
		if cc == c {
			return i
		}
	}
	return -1
}

// SliceAtHops returns the ID of an LLC slice exactly h mesh hops away from
// core id, preferring the lowest-numbered such slice, and reports whether
// one exists. The paper's characterisation workloads pick target slices by
// hop distance (§3.1).
func (d *Die) SliceAtHops(core, h int) (int, bool) {
	from := d.CoreCoord(core)
	for i, c := range d.cores {
		if from.Hops(c) == h {
			return i, true
		}
	}
	return 0, false
}

// XeonGold6142Socket0 is the die of Processor 0 on the paper's evaluation
// platform, transcribed from Figure 2. Rows are top (row 0) to bottom
// (row 5); note row 0 and row 5 carry the IMC tiles at column 1.
//
// Active core tiles (16): (0..4,1), (0,2),(2,2),(4,2), (0,3),(2,3),(3,3),
// (0,4),(1,4),(3,4), (0,5),(2,5).
var XeonGold6142Socket0 = MustDie("xeon-gold-6142-s0", []string{
	"xMxxx", // row 0
	"CCCCC", // row 1
	"CxCxC", // row 2
	"CxCCx", // row 3
	"CCxCx", // row 4
	"CMCxx", // row 5
})

// XeonGold6142Socket1 is the die of Processor 1. The paper notes the two
// processors share the basic architecture but differ in which tiles are
// fused off (§3, "the tiles that are turned off are different"); Figure 2
// omits the second die, so this is a plausible 16-core variant of the same
// XCC floorplan with a different disable mask.
var XeonGold6142Socket1 = MustDie("xeon-gold-6142-s1", []string{
	"xMxxx", // row 0
	"CCxCC", // row 1
	"CCCxC", // row 2
	"xCCCx", // row 3
	"CxCCx", // row 4
	"CMCxx", // row 5
})

// FullXCC is the complete 28-core XCC die with no tiles disabled; the
// slice-hash discussion in §2.1 references processors "with 28 active core
// tiles". Useful for tests that need a regular floorplan.
var FullXCC = MustDie("xcc-full", []string{
	"CMCCC",
	"CCCCC",
	"CCCCC",
	"CCCCC",
	"CCCCC",
	"CMCCC",
})
