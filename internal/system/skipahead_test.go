package system

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// idleSignature captures everything an external observer can read from a
// machine after a run: time, per-core C-states and frequencies, per-socket
// uncore frequency and package C-state, platform idle, and a wake-latency
// probe drawn from a caller-supplied rng. Engine step counts are
// deliberately excluded — elision changes how many ticks fire, never what
// they compute.
func idleSignature(m *Machine, rng *sim.Rand) string {
	s := fmt.Sprintf("t=%v platformIdle=%v", m.Now(), m.PlatformIdle())
	for si, sock := range m.Sockets() {
		s += fmt.Sprintf(" s%d[uncore=%v pc=%d", si, sock.Uncore(), sock.Gov.PC())
		for _, c := range sock.Cores {
			s += fmt.Sprintf(" %v/%v", c.CState, c.Freq)
		}
		s += "]"
	}
	s += fmt.Sprintf(" wake=%v", m.WakeLatency(0, 3, rng))
	return s
}

// scriptedRun drives one machine through idle stretches, spawns, workload
// swaps, stops, and off-grid run spans — every wake source and catch-up
// path — and returns the observable signature after each phase.
func scriptedRun(m *Machine) []string {
	rng := sim.NewRand(0xabc)
	var sigs []string
	snap := func() { sigs = append(sigs, idleSignature(m, rng)) }

	m.Run(100 * sim.Millisecond) // long idle: cores demote, platform sleeps
	snap()
	th := m.Spawn("worker", 0, 3, 0, spin())
	m.Run(30 * sim.Millisecond)
	snap()
	th.SetWorkload(nil) // idle the core without stopping the thread
	m.Run(50 * sim.Millisecond)
	snap()
	th.SetWorkload(spin())                          // wake source: SetWorkload
	m.Run(10*sim.Millisecond + 300*sim.Microsecond) // off-grid end
	snap()
	th.Stop()
	m.Reap()
	m.Run(70*sim.Millisecond + 100*sim.Microsecond) // idle again, off-grid
	snap()
	m.Spawn("late", 1, 5, 0, spin()) // wake source: Spawn, other socket
	m.Run(25 * sim.Millisecond)
	snap()
	return sigs
}

// TestSkipAheadBitIdentical is the contract test for quantum elision: a
// machine with skip-ahead (the default) and one stepping every quantum
// must be indistinguishable in every observable, through idle windows,
// wakes, off-grid spans, and wake-latency probes.
func TestSkipAheadBitIdentical(t *testing.T) {
	fast := newTestMachine(7)
	slow := newTestMachine(7)
	slow.SetSkipAhead(false)
	a, b := scriptedRun(fast), scriptedRun(slow)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("phase %d diverged:\n  skip-ahead: %s\n  stepped:    %s", i, a[i], b[i])
		}
	}
	if fast.Engine().Steps() >= slow.Engine().Steps() {
		t.Errorf("skip-ahead fired %d ticks, stepped %d; elision saved nothing",
			fast.Engine().Steps(), slow.Engine().Steps())
	}
}

// An idle machine de-arms its quantum ticker after the first quantum and
// runs O(events): a span that would blow a stepped machine's step budget
// by orders of magnitude fits comfortably under skip-ahead.
func TestSkipAheadIdleCostsOEvents(t *testing.T) {
	m := newTestMachine(1)
	m.Run(time100ms)
	if m.QuantumArmed() {
		t.Fatal("quantum ticker still armed on a machine with no threads")
	}
	// 100ms stepped = 500 quanta + 10 epochs; skip-ahead = 1 quantum +
	// 10 epochs = 11 ticks.
	if got := m.Engine().Steps(); got != 11 {
		t.Errorf("idle 100ms fired %d ticks, want 11", got)
	}

	// A step budget a stepped run would trip within the first 20 ms.
	m2 := newTestMachine(1)
	m2.SetStepBudget(150)
	if err := m2.RunContext(context.Background(), sim.Second); err != nil {
		t.Fatalf("idle second under budget 150: %v", err)
	}
	m3 := newTestMachine(1)
	m3.SetSkipAhead(false)
	m3.SetStepBudget(150)
	if err := m3.RunContext(context.Background(), sim.Second); err == nil {
		t.Fatal("stepped idle second did not trip a budget of 150; test premise broken")
	}
}

const time100ms = 100 * sim.Millisecond

// Spawning with a nil workload must not re-arm; arming the workload later
// must.
func TestSkipAheadWakeSources(t *testing.T) {
	m := newTestMachine(2)
	m.Run(time100ms)
	th := m.Spawn("latent", 0, 0, 0, nil)
	if m.QuantumArmed() {
		t.Fatal("Spawn with nil workload re-armed the quantum ticker")
	}
	m.Run(10 * sim.Millisecond)
	if m.QuantumArmed() {
		t.Fatal("quantum ticker re-armed with nothing runnable")
	}
	th.SetWorkload(spin())
	if !m.QuantumArmed() {
		t.Fatal("SetWorkload did not re-arm the quantum ticker")
	}
	// The re-armed quantum resumes on the 200 µs grid.
	m.Run(sim.Millisecond)
	if c := m.Socket(0).Cores[0]; c.CState != cpu.C0 {
		t.Errorf("woken core in %v, want C0", c.CState)
	}
}

// A stopped thread is not runnable: the machine de-arms at the next
// quantum even before Reap prunes the list.
func TestSkipAheadDearmsAfterStop(t *testing.T) {
	m := newTestMachine(3)
	th := m.Spawn("w", 0, 0, 0, spin())
	m.Run(10 * sim.Millisecond)
	if !m.QuantumArmed() {
		t.Fatal("quantum ticker de-armed with a runnable thread")
	}
	th.Stop()
	m.Run(sim.Millisecond)
	if m.QuantumArmed() {
		t.Fatal("quantum ticker still armed after the only thread stopped")
	}
}

// Reset of a de-armed machine must restore the armed cold state: the
// pooled-reuse path hands out machines mid-skip.
func TestSkipAheadResetRearms(t *testing.T) {
	m := newTestMachine(4)
	m.Run(time100ms)
	if m.QuantumArmed() {
		t.Fatal("precondition: machine should be de-armed")
	}
	m.Reset(4)
	if !m.QuantumArmed() {
		t.Fatal("Reset left the quantum ticker paused")
	}
	fresh := newTestMachine(4)
	a, b := scriptedRun(m), scriptedRun(fresh)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("phase %d: reset machine diverged from fresh:\n  reset: %s\n  fresh: %s", i, a[i], b[i])
		}
	}
}

// Disabling skip-ahead mid-skip re-arms immediately and catches up the
// idle bookkeeping.
func TestSetSkipAheadOffRearms(t *testing.T) {
	m := newTestMachine(5)
	m.Run(time100ms)
	m.SetSkipAhead(false)
	if !m.QuantumArmed() {
		t.Fatal("SetSkipAhead(false) left the ticker paused")
	}
	for _, c := range m.Socket(0).Cores {
		if c.CState != cpu.C6 {
			t.Fatalf("core %d in %v after 100ms idle, want C6", c.ID, c.CState)
		}
	}
}

// Cancellation must cut an elided idle run short within the documented
// check lag even though almost no ticks fire.
func TestSkipAheadCancellationLag(t *testing.T) {
	m := newTestMachine(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.RunContext(ctx, sim.Second); err == nil {
		t.Fatal("pre-cancelled context did not stop the run")
	}
}
