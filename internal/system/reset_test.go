package system_test

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/workload"
)

// runSignature exercises a machine through a representative mixed load —
// traffic threads, a stalling thread, a timed measurement probe, an extra
// engine sampler — and folds everything observable into one string:
// measured latencies, governor trajectory, MSR counters, cache and mesh
// statistics, and a draw from a labelled random stream. Two machines in
// identical state produce identical signatures bit for bit.
func runSignature(t *testing.T, m *system.Machine) string {
	t.Helper()
	for c := 0; c < 4; c++ {
		slice, ok := m.Socket(0).Die.SliceAtHops(c, 1)
		if !ok {
			slice, _ = m.Socket(0).Die.SliceAtHops(c, 0)
		}
		m.Spawn("sig-traffic", 0, c, 0, &workload.Traffic{Slice: slice})
	}
	slice, _ := m.Socket(0).Die.SliceAtHops(8, 0)
	m.Spawn("sig-stall", 0, 8, 0, &workload.Stalling{Slice: slice})
	lines, err := memsys.EvictionList(m.Socket(0).Hier, 0, memsys.NewAllocator(), 10, slice, 20)
	if err != nil {
		t.Fatal(err)
	}
	var lats []float64
	probe := &workload.Measure{
		Lines:      lines,
		PerQuantum: 8,
		Sink:       func(_ sim.Time, cycles float64) { lats = append(lats, cycles) },
	}
	m.Spawn("sig-probe", 0, 9, 0, probe)

	var freqs []sim.Freq
	m.Engine().Add(&sim.Ticker{
		Name:     "sig-sampler",
		Period:   m.Config().UFS.Epoch,
		Priority: 100,
		Fn:       func(sim.Time) { freqs = append(freqs, m.Socket(0).Uncore()) },
	})
	m.Run(80 * sim.Millisecond)

	ins, evs := m.Socket(0).Hier.Stats()
	return fmt.Sprintf("steps=%d now=%v lat=%v freqs=%v uclk=%d/%d llc=%d/%d flithops=%v peer=%v rand=%d",
		m.Engine().Steps(), m.Now(), lats, freqs,
		m.Socket(0).MSR.Uclk(), m.Socket(1).MSR.Uclk(),
		ins, evs, m.Socket(0).Mesh.TotalFlitHops(),
		m.Socket(1).Uncore(), m.Rand(0xabc).Uint64())
}

// TestResetReplaysNew is the pooling contract: a machine Reset to a seed
// must be bit-for-bit indistinguishable from New at that seed, including
// the machine-derived random streams, after arbitrary prior use.
func TestResetReplaysNew(t *testing.T) {
	cfg := system.DefaultConfig()
	cfg.Seed = 0x1111

	fresh := runSignature(t, system.New(cfg))

	// Dirty a machine at a different seed, then reset it to cfg.Seed.
	dirty := system.New(system.DefaultConfig())
	_ = runSignature(t, dirty)
	dirty.SetFaults(nil)
	dirty.Socket(0).Hier.SetIndexFn(func(_ cache.Domain, _ cache.Line, _ int) int { return 0 })
	dirty.Reset(cfg.Seed)
	if got := runSignature(t, dirty); got != fresh {
		t.Errorf("reset machine diverges from fresh machine:\nfresh: %s\nreset: %s", fresh, got)
	}

	// Reset must also be repeatable: same seed, same run, again.
	dirty.Reset(cfg.Seed)
	if got := runSignature(t, dirty); got != fresh {
		t.Errorf("second reset diverges from fresh machine:\nfresh: %s\nreset: %s", fresh, got)
	}
}

// TestPoolRecyclesDeterministically checks Pool.Get hands back recycled
// machines that behave exactly like fresh ones, and that a nil pool
// degrades to plain construction.
func TestPoolRecyclesDeterministically(t *testing.T) {
	cfg := system.DefaultConfig()
	cfg.Seed = 0x2222
	fresh := runSignature(t, system.New(cfg))

	pool := &system.Pool{}
	first := pool.Get(cfg)
	if got := runSignature(t, first); got != fresh {
		t.Fatalf("pool.Get on empty pool diverges from New:\nfresh: %s\ngot:   %s", fresh, got)
	}
	pool.Put(first)
	if pool.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", pool.Size())
	}
	second := pool.Get(cfg)
	if second != first {
		t.Error("pool built a fresh machine instead of recycling")
	}
	if got := runSignature(t, second); got != fresh {
		t.Errorf("recycled machine diverges from fresh machine:\nfresh: %s\ngot:   %s", fresh, got)
	}

	// An incompatible config must not be served by the recycled machine.
	pool.Put(second)
	other := cfg
	other.Quantum = cfg.Quantum * 2
	other.UFS.Epoch = cfg.UFS.Epoch * 2
	if m := pool.Get(other); m == second {
		t.Error("pool recycled a machine across incompatible configs")
	}

	var nilPool *system.Pool
	if m := nilPool.Get(cfg); m == nil {
		t.Error("nil pool Get returned nil")
	}
	nilPool.Put(nil) // must not panic
}
