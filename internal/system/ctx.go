package system

import (
	"math"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Ctx is a workload's window into one quantum of execution on its core.
// Fine-grained operations (timed loads, flushes) advance a sub-quantum
// cursor and accumulate activity; aggregate loop models instead report
// whole-quantum activity from their Step return value. Both are summed.
type Ctx struct {
	m       *Machine
	t       *Thread
	start   sim.Time
	quantum sim.Time
	used    sim.Time
	acc     Activity
}

// Machine returns the platform.
func (c *Ctx) Machine() *Machine { return c.m }

// Thread returns the executing thread.
func (c *Ctx) Thread() *Thread { return c.t }

// Quantum returns the quantum length.
func (c *Ctx) Quantum() sim.Time { return c.quantum }

// Start returns the quantum's start instant.
func (c *Ctx) Start() sim.Time { return c.start }

// Now returns the thread's current virtual timestamp — the quantum start
// plus time consumed by fine-grained operations. This is the rdtscp value
// the sender and receiver synchronise on (§4.3.2).
func (c *Ctx) Now() sim.Time { return c.start + c.used }

// Remaining returns how much of the quantum is left for fine-grained work.
func (c *Ctx) Remaining() sim.Time {
	if c.used >= c.quantum {
		return 0
	}
	return c.quantum - c.used
}

// Rng returns the thread's private random stream.
func (c *Ctx) Rng() *sim.Rand { return c.t.rng }

// CoreFreq returns the core's operating frequency.
func (c *Ctx) CoreFreq() sim.Freq { return c.t.Core.Freq }

// UncoreFreq returns the socket's current uncore frequency.
func (c *Ctx) UncoreFreq() sim.Freq { return c.t.Sock.Gov.Current() }

// hopsFor returns the mesh distance from the thread's core to the home
// slice, and for misses onward to the nearest memory controller.
func (c *Ctx) hopsFor(res cache.AccessResult) int {
	die := c.t.Sock.Die
	sliceTile := die.SliceCoord(res.Slice)
	h := c.t.Sock.Mesh.Hops(c.t.Core.Tile, sliceTile)
	if res.Level == cache.LevelMem {
		best := -1
		for _, imc := range die.IMCs() {
			d := c.t.Sock.Mesh.Hops(sliceTile, imc)
			if best == -1 || d < best {
				best = d
			}
		}
		if best > 0 {
			h += best
		}
	}
	return h
}

// access performs one load through the functional hierarchy and returns
// its sampled latency in core cycles along with the result.
func (c *Ctx) access(line cache.Line) (float64, cache.AccessResult) {
	t := c.t
	res := t.Caches.Access(t.Domain, line)
	hops := c.hopsFor(res)
	var contention float64
	if res.Level >= cache.LevelLLC {
		contention = t.Sock.Mesh.ContentionCycles(t.Domain, t.Core.Tile, t.Sock.Die.SliceCoord(res.Slice))
		t.Sock.Mesh.AddTraffic(t.Domain, t.Core.Tile, t.Sock.Die.SliceCoord(res.Slice), 1)
		c.acc.LLCAccesses++
		c.acc.Pressure += c.m.cfg.UFS.DistanceWeight(t.Sock.Mesh.Hops(t.Core.Tile, t.Sock.Die.SliceCoord(res.Slice)))
	}
	// Individual accesses sample the instantaneous uncore frequency,
	// which inside the idle band wobbles faster than a governor epoch.
	fu := t.Sock.Gov.SampleFreq(t.rng)
	cycles := c.m.cfg.Timing.SampleCycles(res.Level, c.CoreFreq(), fu, hops, contention, t.rng)
	if res.Level >= cache.LevelLLC {
		cycles += t.drift.Sample(c.m.cfg.Timing, c.Now(), t.rng)
		if cycles < 1 {
			cycles = 1
		}
	}
	return cycles, res
}

// charge advances the sub-quantum cursor by n core cycles and accounts
// them, stalled or not.
func (c *Ctx) charge(cycles float64, stalled float64) {
	c.used += c.CoreFreq().TimeFor(cycles)
	c.acc.Active = true
	c.acc.Cycles += cycles
	c.acc.StallCycles += stalled
}

// Access performs an untimed load of line (priming, pointer writes). The
// load's latency is charged as mostly-stalled time.
func (c *Ctx) Access(line cache.Line) cache.AccessResult {
	cycles, res := c.access(line)
	stall := cycles - 16
	if stall < 0 {
		stall = 0
	}
	c.charge(cycles, stall)
	return res
}

// TimedAccess performs the fenced, rdtscp-bracketed load of the paper's
// measurement loop (Listing 3) and returns the measured latency in core
// cycles. The fences serialise the pipeline: they add time (keeping the
// receiver's LLC access density low, §4.2) but are excluded from the
// measured value, exactly as rdtscp brackets only the load.
//
// When a machine-level fault hook drops the sample (an interrupt landed
// inside the timing bracket), the load still happened — the cache state
// changed and the time was spent — but the measurement is lost and NaN
// is returned; measurement loops must discard NaN samples.
func (c *Ctx) TimedAccess(line cache.Line) float64 {
	cycles, _ := c.access(line)
	c.charge(cycles+c.m.cfg.Timing.FenceCycles, cycles)
	if c.m.faults != nil && c.m.faults.DropSample(c.t.Name, c.Now()) {
		return math.NaN()
	}
	return cycles
}

// Flush executes clflush on line, invalidating it in every cache in the
// socket, and returns the instruction's latency in core cycles — higher
// when the line was cached, which is the signal Flush+Flush times.
func (c *Ctx) Flush(line cache.Line) float64 {
	present := c.t.Sock.Hier.Flush(line)
	cycles := 28.0
	if present {
		cycles = 42
	}
	cycles += c.t.rng.Norm(0, 1)
	if cycles < 1 {
		cycles = 1
	}
	c.charge(cycles, 0)
	return cycles
}

// InjectTraffic registers an aggregate stream of LLC transactions from
// this core to the given slice during the quantum: the loop workloads
// (Listings 1 and 2) are modelled at this level because simulating each of
// their millions of per-second accesses individually is unnecessary — only
// their density and distance matter to the governor and to contention.
// It returns the hop distance used.
func (c *Ctx) InjectTraffic(slice int, accesses float64) int {
	t := c.t
	dst := t.Sock.Die.SliceCoord(slice)
	hops := t.Sock.Mesh.Hops(t.Core.Tile, dst)
	t.Sock.Mesh.AddTraffic(t.Domain, t.Core.Tile, dst, accesses)
	c.acc.LLCAccesses += accesses
	c.acc.Pressure += accesses * c.m.cfg.UFS.DistanceWeight(hops)
	return hops
}

// SliceTile returns the coordinate of an LLC slice on this thread's die.
func (c *Ctx) SliceTile(slice int) topo.Coord { return c.t.Sock.Die.SliceCoord(slice) }

// HopsTo returns the mesh distance from this thread's core to a slice.
func (c *Ctx) HopsTo(slice int) int {
	return c.t.Sock.Mesh.Hops(c.t.Core.Tile, c.t.Sock.Die.SliceCoord(slice))
}
