package system

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/sim"
)

func newTestMachine(seed uint64) *Machine {
	cfg := DefaultConfig()
	cfg.Seed = seed
	return New(cfg)
}

// spin is an always-active compute workload.
func spin() Workload {
	return WorkloadFunc(func(ctx *Ctx) Activity {
		return Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Quantum())}
	})
}

func TestMachineComposition(t *testing.T) {
	m := newTestMachine(1)
	if len(m.Sockets()) != 2 {
		t.Fatalf("%d sockets, want 2 (Table 1)", len(m.Sockets()))
	}
	for _, s := range m.Sockets() {
		if len(s.Cores) != 16 {
			t.Errorf("socket %d has %d cores", s.ID, len(s.Cores))
		}
		if s.Hier.Geometry().Slices != 16 {
			t.Errorf("socket %d has %d slices", s.ID, s.Hier.Geometry().Slices)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Dies = nil },
		func(c *Config) { c.Quantum = 0 },
		func(c *Config) { c.Quantum = 300 * sim.Microsecond }, // epoch not a multiple
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid config accepted")
				}
			}()
			New(cfg)
		}()
	}
}

func TestSpawnCollisionPanics(t *testing.T) {
	m := newTestMachine(2)
	m.Spawn("a", 0, 3, 0, spin())
	defer func() {
		if recover() == nil {
			t.Fatal("double spawn on one core accepted")
		}
	}()
	m.Spawn("b", 0, 3, 0, spin())
}

func TestStoppedCoreFreesUp(t *testing.T) {
	m := newTestMachine(3)
	th := m.Spawn("a", 0, 3, 0, spin())
	th.Stop()
	// Core is free again.
	m.Spawn("b", 0, 3, 0, spin())
	if !m.CoreBusy(0, 3) {
		t.Error("CoreBusy false with a live thread")
	}
	if m.CoreBusy(0, 4) {
		t.Error("CoreBusy true for an empty core")
	}
}

func TestFreeCore(t *testing.T) {
	m := newTestMachine(4)
	c := m.FreeCore(0, 15)
	if c != 14 {
		t.Errorf("FreeCore avoiding 15 = %d, want 14", c)
	}
	m.Spawn("x", 0, 14, 0, spin())
	if got := m.FreeCore(0, 15); got != 13 {
		t.Errorf("FreeCore = %d, want 13", got)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	m := newTestMachine(5)
	m.Run(42 * sim.Millisecond)
	if m.Now() != 42*sim.Millisecond {
		t.Errorf("Now() = %v", m.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		m := newTestMachine(7)
		lines := []cache.Line{1 << 20, 1<<20 + 1024, 1<<20 + 2048}
		var lats []float64
		m.Spawn("probe", 0, 0, 0, WorkloadFunc(func(ctx *Ctx) Activity {
			for _, l := range lines {
				lats = append(lats, ctx.TimedAccess(l))
			}
			return Activity{Active: true, Cycles: ctx.CoreFreq().CyclesIn(ctx.Remaining())}
		}))
		m.Run(10 * sim.Millisecond)
		return lats
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different sample counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCtxTimedAccessAdvancesClock(t *testing.T) {
	m := newTestMachine(8)
	var first, second sim.Time
	m.Spawn("probe", 0, 0, 0, WorkloadFunc(func(ctx *Ctx) Activity {
		if first == 0 {
			first = ctx.Now()
			ctx.TimedAccess(1 << 20)
			second = ctx.Now()
		}
		return Activity{}
	}))
	m.Run(sim.Millisecond)
	if second <= first {
		t.Error("TimedAccess did not advance the thread clock")
	}
}

func TestCtxRemainingDecreases(t *testing.T) {
	m := newTestMachine(9)
	done := false
	m.Spawn("probe", 0, 0, 0, WorkloadFunc(func(ctx *Ctx) Activity {
		if !done {
			done = true
			r0 := ctx.Remaining()
			for i := 0; i < 100; i++ {
				ctx.Access(cache.Line(1<<20 + i*4096))
			}
			if ctx.Remaining() >= r0 {
				t.Error("Remaining did not decrease")
			}
		}
		return Activity{}
	}))
	m.Run(sim.Millisecond)
	if !done {
		t.Fatal("workload never ran")
	}
}

func TestUncoreFreqRespondsToLoad(t *testing.T) {
	m := newTestMachine(10)
	// An idle machine dithers at the idle point.
	m.Run(100 * sim.Millisecond)
	if f := m.Socket(0).Uncore(); f < 14 || f > 15 {
		t.Fatalf("idle uncore at %v", f)
	}
	// The governor responds to injected traffic pressure.
	m.Spawn("load", 0, 0, 0, WorkloadFunc(func(ctx *Ctx) Activity {
		n := 60000.0
		ctx.InjectTraffic(3, n)
		cycles := ctx.CoreFreq().CyclesIn(ctx.Quantum())
		return Activity{Active: true, Cycles: cycles}
	}))
	m.Run(300 * sim.Millisecond)
	if f := m.Socket(0).Uncore(); f < 20 {
		t.Errorf("uncore at %v under heavy injected traffic", f)
	}
}

func TestWakeLatencyStates(t *testing.T) {
	m := newTestMachine(11)
	rng := m.Rand(1)
	// Fully idle machine: deep core, deep package, deep platform.
	m.Run(100 * sim.Millisecond)
	idle := m.WakeLatency(0, 3, rng)
	if idle < 300*sim.Microsecond {
		t.Errorf("fully idle wake %v, want ≥340us (core+PC+platform)", idle)
	}
	// A busy core on the other socket keeps the platform awake.
	m.Spawn("busy", 1, 0, 0, spin())
	m.Run(50 * sim.Millisecond)
	busy := m.WakeLatency(0, 3, rng)
	if busy >= idle {
		t.Errorf("wake with busy platform %v not below idle %v", busy, idle)
	}
	if m.PlatformIdle() {
		t.Error("platform idle with an active core")
	}
}

func TestActivityAdd(t *testing.T) {
	var a Activity
	a.Add(Activity{Active: true, Cycles: 1, StallCycles: 2, LLCAccesses: 3, Pressure: 4, PowerUnits: 5})
	a.Add(Activity{Cycles: 1})
	if !a.Active || a.Cycles != 2 || a.StallCycles != 2 || a.LLCAccesses != 3 || a.Pressure != 4 || a.PowerUnits != 5 {
		t.Errorf("Add result %+v", a)
	}
}

func TestQuantumPowerVisibleToLaterThreads(t *testing.T) {
	m := newTestMachine(12)
	m.Spawn("drawer", 0, 0, 0, WorkloadFunc(func(ctx *Ctx) Activity {
		return Activity{Active: true, Cycles: 1, PowerUnits: 3}
	}))
	var seen float64
	m.Spawn("reader", 0, 1, 0, WorkloadFunc(func(ctx *Ctx) Activity {
		seen = ctx.Thread().Sock.QuantumPower()
		return Activity{Active: true, Cycles: 1}
	}))
	m.Run(sim.Millisecond)
	if seen != 3 {
		t.Errorf("reader saw %v power units, want 3 (spawn-order visibility)", seen)
	}
}

func TestDVFSPowersave(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 13
	cfg.DVFS = cpu.DefaultDVFS(cpu.PolicyPowersave)
	m := New(cfg)
	m.Spawn("busy", 0, 0, 0, spin())
	m.Run(100 * sim.Millisecond)
	// The busy core reaches base; idle cores park at the floor.
	if f := m.Socket(0).Cores[0].Freq; f != cfg.CoreBase {
		t.Errorf("busy core at %v, want base %v", f, cfg.CoreBase)
	}
	if f := m.Socket(0).Cores[5].Freq; f != cfg.DVFS.Min {
		t.Errorf("idle core at %v, want floor %v", f, cfg.DVFS.Min)
	}
	// Powersave never exceeds base, so UFS stays enabled: the stall
	// rule can still raise the uncore.
	if m.Socket(0).Uncore() > 15 {
		t.Errorf("uncore at %v with one compute thread", m.Socket(0).Uncore())
	}
}

func TestDVFSPerformanceDisablesUFS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 14
	cfg.DVFS = cpu.DefaultDVFS(cpu.PolicyPerformance)
	m := New(cfg)
	m.Spawn("busy", 0, 0, 0, spin())
	m.Run(100 * sim.Millisecond)
	if f := m.Socket(0).Cores[0].Freq; f <= cfg.CoreBase {
		t.Fatalf("performance policy left the busy core at %v", f)
	}
	// §2.2.1: a core above base pins the uncore at its maximum.
	if f := m.Socket(0).Uncore(); f != 24 {
		t.Errorf("uncore at %v with a turbo core, want pinned max", f)
	}
}
