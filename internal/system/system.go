// Package system composes the substrates into the paper's evaluation
// platform (Table 1): a dual-socket machine of two 16-core Skylake-SP
// processors, each with private L1/L2s, a sliced non-inclusive LLC spread
// over a mesh interconnect, an MSR file, and a UFS governor.
//
// Execution is quantised: every quantum (default 200 µs, the paper's trace
// sampling period) each running thread's workload advances and reports the
// activity it generated; every governor epoch (10 ms) the accumulated
// activity feeds each socket's UFS decision. Fine-grained operations — the
// receiver's timed LLC loads, clflush, transactional regions — run inside
// the quantum through a Ctx, against the functional cache hierarchy and
// the latency model.
package system

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mesh"
	"repro/internal/msr"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/topo"
	"repro/internal/ufs"
)

// Config assembles a machine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Dies lists one floorplan per socket.
	Dies []*topo.Die
	// Interconnect selects mesh or ring.
	Interconnect mesh.Kind
	// MeshParams are the interconnect model constants.
	MeshParams mesh.Params
	// UFS are the governor constants.
	UFS ufs.Params
	// Timing is the latency model.
	Timing timing.Params
	// Quantum is the workload stepping period.
	Quantum sim.Time
	// CoreFreq is the operating core frequency (powersave keeps it at
	// base; setting it above base disables UFS, §2.2.1).
	CoreFreq sim.Freq
	// CoreBase is the base frequency.
	CoreBase sim.Freq
	// DVFS optionally enables per-core frequency scaling: with
	// PolicyPowersave busy cores run at base and idle cores park low
	// (the Table 1 platform); with PolicyPerformance active cores
	// enter the turbo range, which disables UFS (§2.2.1). PolicyNone
	// pins every core at CoreFreq.
	DVFS cpu.DVFS
	// Seed fixes all randomness.
	Seed uint64
}

// DefaultConfig returns the Table 1 platform: two Xeon Gold 6142 sockets,
// mesh interconnect, powersave cores at 2.6 GHz, UFS over 1.2–2.4 GHz.
func DefaultConfig() Config {
	return Config{
		Dies:         []*topo.Die{topo.XeonGold6142Socket0, topo.XeonGold6142Socket1},
		Interconnect: mesh.KindMesh,
		MeshParams:   mesh.DefaultParams(),
		UFS:          ufs.DefaultParams(),
		Timing:       timing.Default(),
		Quantum:      200 * sim.Microsecond,
		CoreFreq:     sim.CoreBase,
		CoreBase:     sim.CoreBase,
		Seed:         0x5eed,
	}
}

// Activity is what one thread's workload did during one quantum.
type Activity struct {
	// Active marks the core as awake (C0) for the quantum.
	Active bool
	// Cycles and StallCycles feed the perf counters and the governor's
	// stall rule.
	Cycles, StallCycles float64
	// LLCAccesses is the number of transactions that travelled to the
	// LLC this quantum.
	LLCAccesses float64
	// Pressure is Σ accesses × DistanceWeight(hops).
	Pressure float64
	// PowerUnits is the quantum's draw on the socket's shared voltage
	// regulator, in arbitrary units (1.0 ≈ a scalar compute loop).
	// The IccCoresCovert baseline channel modulates and observes it.
	PowerUnits float64
}

// Add accumulates o into a.
func (a *Activity) Add(o Activity) {
	a.Active = a.Active || o.Active
	a.Cycles += o.Cycles
	a.StallCycles += o.StallCycles
	a.LLCAccesses += o.LLCAccesses
	a.Pressure += o.Pressure
	a.PowerUnits += o.PowerUnits
}

// Workload is a program running on a core. Step is called once per
// quantum; the workload performs fine-grained operations through ctx
// and/or reports aggregate activity, returning the quantum's total.
type Workload interface {
	Step(ctx *Ctx) Activity
}

// WorkloadFunc adapts a function to the Workload interface.
type WorkloadFunc func(ctx *Ctx) Activity

// Step implements Workload.
func (f WorkloadFunc) Step(ctx *Ctx) Activity { return f(ctx) }

// Socket is one processor package.
type Socket struct {
	ID    int
	Die   *topo.Die
	Cores []*cpu.Core
	Hier  *cache.Hierarchy
	Mesh  *mesh.Mesh
	MSR   *msr.File
	Gov   *ufs.Governor

	coreCaches []*cache.CoreCaches

	// Epoch accumulators consumed by the governor.
	epochLLC      float64
	epochPressure float64

	// quantumPower is the current draw registered so far this quantum.
	quantumPower float64

	// busy is the per-quantum active-core scratch, indexed by core ID and
	// cleared at the top of every quantum; peerFreqs is the reused backing
	// array for EpochStats.PeerFreqs (the governor only reads it during
	// Tick). Both exist so the per-quantum and per-epoch paths allocate
	// nothing in steady state.
	busy      []bool
	peerFreqs []sim.Freq
}

// QuantumPower returns the power units drawn on the socket's voltage
// regulator so far in the current quantum. Threads that step after the
// drawer (spawn order) observe it — the shared-PMU contention the
// IccCoresCovert baseline exploits.
func (s *Socket) QuantumPower() float64 { return s.quantumPower }

// Uncore returns the socket's current uncore frequency.
func (s *Socket) Uncore() sim.Freq { return s.Gov.Current() }

// Faults is the machine-level fault hook (implemented by
// internal/faults): the scheduler consults it for OS-preemption gaps at
// the top of each thread's quantum, and TimedAccess consults it for
// lost measurement samples. Implementations must be deterministic —
// they are part of the seed-reproducible simulation.
type Faults interface {
	// PreemptGap returns how much of the thread's quantum the OS stole
	// (an involuntary context switch); it is consulted once per live
	// thread per quantum and clamped to the quantum length.
	PreemptGap(thread string, now sim.Time) sim.Time
	// DropSample reports whether a timed load's measurement is lost
	// (e.g. an interrupt landed inside the rdtscp bracket).
	DropSample(thread string, now sim.Time) bool
}

// Machine is the whole platform.
type Machine struct {
	cfg     Config
	engine  *sim.Engine
	rng     *sim.Rand
	sockets []*Socket
	threads []*Thread
	faults  Faults

	// quantumTick and epochTick are the machine's two schedule entries,
	// held by value so Reset can re-register the identical tickers (same
	// order, same priorities) on the cleared engine.
	quantumTick sim.Ticker
	epochTick   sim.Ticker

	// skipAhead enables quantum elision: when a quantum finds no runnable
	// thread, the quantum ticker is paused and the engine jumps straight
	// between the remaining deadlines (governor epochs, samplers) until a
	// Spawn or SetWorkload re-arms it. idleDoneAt is the instant through
	// which per-core idle bookkeeping has been applied while de-armed;
	// catchUpIdle batches the elided quanta's RecordIdle calls from there.
	skipAhead  bool
	idleDoneAt sim.Time
}

// SetFaults installs (or, with nil, removes) the machine-level fault
// hook. The hook applies to every thread; the aggregate loop models only
// feel preemption through their fine-grained budget, so in practice it
// perturbs the measurement path.
func (m *Machine) SetFaults(f Faults) { m.faults = f }

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if len(cfg.Dies) == 0 {
		panic("system: machine needs at least one socket")
	}
	if cfg.Quantum <= 0 || cfg.UFS.Epoch <= 0 {
		panic("system: quantum and epoch must be positive")
	}
	if cfg.UFS.Epoch%cfg.Quantum != 0 {
		panic(fmt.Sprintf("system: epoch %v must be a multiple of quantum %v", cfg.UFS.Epoch, cfg.Quantum))
	}
	m := &Machine{
		cfg:       cfg,
		engine:    sim.NewEngine(),
		rng:       sim.NewRand(cfg.Seed),
		skipAhead: true,
	}
	for i, die := range cfg.Dies {
		s := &Socket{
			ID:   i,
			Die:  die,
			Hier: cache.NewHierarchy(cache.DefaultGeometry(die.NumSlices())),
			Mesh: mesh.New(die, cfg.Interconnect, cfg.MeshParams),
			MSR:  msr.NewFile(),
		}
		s.Gov = ufs.NewGovernor(cfg.UFS, s.MSR, m.rng.Split(uint64(1000+i)))
		for c := 0; c < die.NumCores(); c++ {
			core := cpu.NewCore(c, die.CoreCoord(c), cfg.CoreBase)
			core.Freq = cfg.CoreFreq
			s.Cores = append(s.Cores, core)
			s.coreCaches = append(s.coreCaches, s.Hier.NewCore())
		}
		s.busy = make([]bool, len(s.Cores))
		s.peerFreqs = make([]sim.Freq, 0, len(cfg.Dies)-1)
		m.sockets = append(m.sockets, s)
	}
	// The per-quantum workload step runs before anything else at a
	// shared instant; governors run last so an epoch decision sees all
	// of its quanta.
	m.quantumTick = sim.Ticker{
		Name:     "quantum",
		Period:   cfg.Quantum,
		Priority: 0,
		Fn:       m.stepQuantum,
	}
	m.epochTick = sim.Ticker{
		Name:     "ufs-epoch",
		Period:   cfg.UFS.Epoch,
		Priority: 10,
		Fn:       m.stepEpoch,
	}
	m.engine.Add(&m.quantumTick)
	m.engine.Add(&m.epochTick)
	return m
}

// Reset restores the machine to the cold state New(cfg) builds, with the
// seed replaced, reusing every allocated structure in place: the engine
// restarts at time zero with only the quantum and epoch tickers (extra
// samplers registered through Engine() are dropped), all threads are
// removed, caches and mesh load return to cold state, MSR files to their
// power-on defaults, governors to the idle operating point with fresh
// split random streams, and the fault hook is cleared. The random streams
// are re-derived in New's exact consumption order, so a reset machine is
// bit-for-bit indistinguishable from a freshly constructed one — the
// contract the trial pool and the determinism tests rely on.
//
// A bound context or step budget does not survive Reset; callers that
// supervise the machine must re-Bind.
func (m *Machine) Reset(seed uint64) {
	m.cfg.Seed = seed
	m.engine.Reset()
	m.rng = sim.NewRand(seed)
	m.faults = nil
	for i := range m.threads {
		m.threads[i] = nil
	}
	m.threads = m.threads[:0]
	for i, s := range m.sockets {
		s.Hier.Reset()
		s.Mesh.Reset()
		s.MSR.Reset()
		// The governor split replays New's per-socket rng consumption; the
		// MSR reset above must precede it so the initial operating point
		// clamps against the default ratio limit, as in NewGovernor.
		s.Gov.Reset(m.rng.Split(uint64(1000 + i)))
		for _, c := range s.Cores {
			c.Reset()
			c.Freq = m.cfg.CoreFreq
		}
		clear(s.busy)
		s.peerFreqs = s.peerFreqs[:0]
		s.epochLLC, s.epochPressure = 0, 0
		s.quantumPower = 0
	}
	m.engine.Add(&m.quantumTick)
	m.engine.Add(&m.epochTick)
	m.idleDoneAt = 0
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine exposes the tick engine so callers can register samplers.
func (m *Machine) Engine() *sim.Engine { return m.engine }

// Now returns the current virtual time.
func (m *Machine) Now() sim.Time { return m.engine.Now() }

// Rand derives a labelled random stream from the machine seed.
func (m *Machine) Rand(label uint64) *sim.Rand { return m.rng.Split(label) }

// Sockets returns the machine's sockets.
func (m *Machine) Sockets() []*Socket { return m.sockets }

// Socket returns socket i.
func (m *Machine) Socket(i int) *Socket { return m.sockets[i] }

// Run advances virtual time by d. If the machine has a bound context
// that is cancelled mid-run, or its step budget trips, Run panics with a
// sim.Abort (see Bind).
func (m *Machine) Run(d sim.Time) {
	m.engine.Run(d)
	// Callers inspect platform state (C-states, wake latency inputs)
	// between runs; bring the elided idle bookkeeping up to date first.
	m.catchUpIdle(m.engine.Now())
}

// RunContext advances virtual time by d, returning ctx.Err() on
// cancellation or a sim.ErrBudgetExceeded error when the step watchdog
// trips, instead of panicking.
func (m *Machine) RunContext(ctx context.Context, d sim.Time) error {
	err := m.engine.RunContext(ctx, d)
	m.catchUpIdle(m.engine.Now())
	return err
}

// SetSkipAhead toggles quantum elision (on by default). With it off the
// machine steps every quantum even when nothing is runnable — the
// pre-skip-ahead behaviour, kept for benchmarking the win and for
// debugging. Both modes are bit-identical in every observable; only the
// engine's fired-tick count differs. The setting survives Reset.
func (m *Machine) SetSkipAhead(on bool) {
	m.skipAhead = on
	if !on {
		m.rearmQuantum()
	}
}

// QuantumArmed reports whether the per-quantum ticker is currently
// scheduled; false means the machine is provably inert and the engine is
// skipping between epoch/sampler deadlines.
func (m *Machine) QuantumArmed() bool { return !m.quantumTick.Paused() }

// anyRunnable reports whether any thread can generate activity in a
// quantum: live and armed with a workload. Workloads that merely report
// inactive quanta still count — only Stop or a nil workload makes a
// thread inert.
func (m *Machine) anyRunnable() bool {
	for _, t := range m.threads {
		if !t.stopped && t.w != nil {
			return true
		}
	}
	return false
}

// rearmQuantum resumes the quantum ticker after an elided idle stretch,
// first applying the batched idle bookkeeping for the quanta that were
// skipped. The ticker resumes on its original grid, so post-wake quanta
// stay aligned to multiples of cfg.Quantum and the inTail/epoch phase
// arithmetic is unchanged.
func (m *Machine) rearmQuantum() {
	if !m.quantumTick.Paused() {
		return
	}
	m.catchUpIdle(m.engine.Now())
	m.engine.Resume(&m.quantumTick)
}

// catchUpIdle applies the per-core idle accounting an elided stretch
// would have accumulated quantum-by-quantum, in one batched span per
// core. It advances through the last quantum boundary at or before now:
// a boundary tick at exactly `now` has already fired in stepped mode
// before any external observer runs, so inclusive alignment reproduces
// stepped state exactly. No-op while the quantum ticker is armed.
func (m *Machine) catchUpIdle(now sim.Time) {
	if !m.quantumTick.Paused() {
		return
	}
	to := now - now%m.cfg.Quantum
	if to <= m.idleDoneAt {
		return
	}
	d := to - m.idleDoneAt
	for _, s := range m.sockets {
		for _, c := range s.Cores {
			c.RecordIdleSpan(d)
		}
	}
	m.idleDoneAt = to
}

// Bind installs a context consulted by Run, so a supervisor can cut
// short simulation code that advances the machine through error-free
// interfaces. See sim.Engine.Bind for the abort contract.
func (m *Machine) Bind(ctx context.Context) { m.engine.Bind(ctx) }

// SetStepBudget arms the engine's step watchdog; see
// sim.Engine.SetStepBudget.
func (m *Machine) SetStepBudget(budget int64) { m.engine.SetStepBudget(budget) }

// Thread is a software thread pinned to a core.
type Thread struct {
	Name    string
	Sock    *Socket
	Core    *cpu.Core
	Caches  *cache.CoreCaches
	Domain  cache.Domain
	m       *Machine
	rng     *sim.Rand
	w       Workload
	drift   timing.Drift
	stopped bool

	// ctx is the thread's reusable quantum context, reset at the top of
	// every quantum; it is valid only for the duration of Step.
	ctx Ctx
}

// SetWorkload replaces the thread's program (e.g. the nop→stalling switch
// of Figure 5). A nil workload idles the core. Arming a workload is a
// wake source: it re-arms the machine's quantum ticker if an idle skip
// had de-armed it.
func (t *Thread) SetWorkload(w Workload) {
	t.w = w
	if w != nil && !t.stopped {
		t.m.rearmQuantum()
	}
}

// Stop removes the thread from scheduling permanently.
func (t *Thread) Stop() { t.stopped = true }

// Reap drops stopped threads from the scheduler's list, preserving the
// spawn order of the live ones. Stopped threads are skipped by every
// scheduling decision already, so reaping never changes behaviour — it
// only keeps the thread list (and the per-quantum skip work) from
// growing without bound in sessions that spawn and stop threads per
// transmission.
func (m *Machine) Reap() {
	live := m.threads[:0]
	for _, t := range m.threads {
		if !t.stopped {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(m.threads); i++ {
		m.threads[i] = nil
	}
	m.threads = live
}

// Spawn pins a new thread running w to the given socket and core. Threads
// step in spawn order within a quantum; spawn traffic sources before
// latency probes so that contention is visible to same-quantum probes.
func (m *Machine) Spawn(name string, socket, core int, d cache.Domain, w Workload) *Thread {
	if socket < 0 || socket >= len(m.sockets) {
		panic(fmt.Sprintf("system: no socket %d", socket))
	}
	s := m.sockets[socket]
	if core < 0 || core >= len(s.Cores) {
		panic(fmt.Sprintf("system: socket %d has no core %d", socket, core))
	}
	for _, t := range m.threads {
		if !t.stopped && t.Sock == s && t.Core.ID == core {
			panic(fmt.Sprintf("system: core %d/%d already has thread %q", socket, core, t.Name))
		}
	}
	t := &Thread{
		Name:   name,
		Sock:   s,
		Core:   s.Cores[core],
		Caches: s.coreCaches[core],
		Domain: d,
		m:      m,
		rng:    m.rng.Split(sim.HashString(name)),
	}
	t.w = w
	m.threads = append(m.threads, t)
	if w != nil {
		m.rearmQuantum()
	}
	return t
}

// inTail reports whether the quantum ending at now falls inside the
// governor's status-sampling window at the end of the current epoch.
func (m *Machine) inTail(now sim.Time) bool {
	tail := m.cfg.UFS.TailWindow
	if tail <= 0 || tail > m.cfg.UFS.Epoch {
		return true
	}
	phase := now % m.cfg.UFS.Epoch
	return phase == 0 || phase > m.cfg.UFS.Epoch-tail
}

// CoreBusy reports whether a live thread is pinned to the given core.
func (m *Machine) CoreBusy(socket, core int) bool {
	s := m.sockets[socket]
	for _, t := range m.threads {
		if !t.stopped && t.Sock == s && t.Core.ID == core {
			return true
		}
	}
	return false
}

// FreeCore returns the highest-numbered unoccupied core on the socket that
// is not in avoid, or -1 if none is free.
func (m *Machine) FreeCore(socket int, avoid ...int) int {
	s := m.sockets[socket]
next:
	for c := len(s.Cores) - 1; c >= 0; c-- {
		if m.CoreBusy(socket, c) {
			continue
		}
		for _, a := range avoid {
			if c == a {
				continue next
			}
		}
		return c
	}
	return -1
}

// stepQuantum advances every runnable thread by one quantum.
func (m *Machine) stepQuantum(now sim.Time) {
	for _, s := range m.sockets {
		s.Mesh.BeginQuantum(m.cfg.Quantum, s.Gov.Current())
		s.quantumPower = 0
	}
	tail := m.inTail(now)
	for _, s := range m.sockets {
		clear(s.busy)
	}
	for _, t := range m.threads {
		if t.stopped || t.w == nil {
			continue
		}
		t.ctx = Ctx{
			m:       m,
			t:       t,
			start:   now - m.cfg.Quantum,
			quantum: m.cfg.Quantum,
		}
		ctx := &t.ctx
		if m.faults != nil {
			if gap := m.faults.PreemptGap(t.Name, now); gap > 0 {
				if gap > m.cfg.Quantum {
					gap = m.cfg.Quantum
				}
				// The stolen slice is gone before the workload runs:
				// fine-grained work sees a shortened quantum.
				ctx.used = gap
			}
		}
		act := t.w.Step(ctx)
		act.Add(ctx.acc)
		if act.Active {
			t.Sock.busy[t.Core.ID] = true
			t.Core.RecordActive(m.cfg.Quantum, cpu.Counters{
				Cycles:      act.Cycles,
				StallCycles: act.StallCycles,
				LLCAccesses: act.LLCAccesses,
			}, tail)
		}
		if tail {
			t.Sock.epochLLC += act.LLCAccesses
			t.Sock.epochPressure += act.Pressure
		}
		t.Sock.quantumPower += act.PowerUnits
	}
	for _, s := range m.sockets {
		for i, c := range s.Cores {
			if !s.busy[i] {
				c.RecordIdle(m.cfg.Quantum)
			}
		}
	}
	if m.skipAhead && !m.anyRunnable() {
		// Provably inert: nothing can generate activity until a Spawn or
		// SetWorkload (the wake sources) re-arms us. A quantum with no
		// runnable thread contributes no mesh load and no quantum power —
		// both were cleared at the top of this quantum — so the state a
		// sampler observes mid-skip is exactly the stepped-mode state.
		// The epoch ticker stays armed: governor epochs (and their rng
		// draws) must keep firing in order.
		m.idleDoneAt = now
		m.engine.Pause(&m.quantumTick)
	}
}

// stepEpoch runs every socket's governor with the epoch's accumulated
// activity. Sockets tick in ID order; each sees the others' most recent
// frequency, producing the one-step-behind coupling of §3.4.
func (m *Machine) stepEpoch(now sim.Time) {
	// Under an idle skip the per-quantum RecordIdle calls were elided;
	// apply them in one batch so MinCState (and thus the package C-state
	// decision below) sees the same demotion ladder as stepped mode.
	m.catchUpIdle(now)
	window := m.cfg.UFS.TailWindow
	if window <= 0 || window > m.cfg.UFS.Epoch {
		window = m.cfg.UFS.Epoch
	}
	for _, s := range m.sockets {
		st := ufs.EpochStats{
			CoreFreq:    m.cfg.CoreFreq,
			Window:      window,
			LLCAccesses: s.epochLLC,
			Pressure:    s.epochPressure,
			MinCState:   cpu.C6,
		}
		for _, c := range s.Cores {
			if c.AboveBase() {
				st.AnyCoreAboveBase = true
			}
			if c.CState < st.MinCState {
				st.MinCState = c.CState
			}
			wallCycles := c.Freq.CyclesIn(window)
			if c.Tail.Cycles > 0.25*wallCycles {
				// A core counts as active for the stall-proportion
				// rule only when it is substantially busy in the
				// sampling window; housekeeping blips do not dilute
				// the stalled fraction.
				st.ActiveCores++
				// Stalledness is judged against the sampling
				// window's wall cycles, as the PMU sees it: a loop
				// that only ran for a sliver of the window does not
				// mark the core stalled even if that sliver was.
				if c.Tail.StallCycles/wallCycles > m.cfg.UFS.StallRatioThreshold {
					st.StalledCores++
				}
			}
			// Per-core DVFS: the P-state for the next epoch follows
			// this epoch's utilization (§2.2.1, SpeedShift).
			if m.cfg.DVFS.Policy != cpu.PolicyNone {
				util := c.Epoch.Cycles / c.Freq.CyclesIn(m.cfg.UFS.Epoch)
				if f := m.cfg.DVFS.Next(util); f > 0 {
					c.Freq = f
				}
			}
			c.ResetEpoch()
		}
		st.PeerFreqs = s.peerFreqs[:0]
		for _, o := range m.sockets {
			if o != s {
				st.PeerFreqs = append(st.PeerFreqs, o.Gov.Current())
			}
		}
		s.Gov.Tick(st)
		s.peerFreqs = st.PeerFreqs[:0]
		s.epochLLC, s.epochPressure = 0, 0
	}
}

// PlatformExitLatency is the extra wake time paid when every socket's
// uncore is in a package C-state and the platform has entered its deep
// idle state (memory self-refresh, link retraining). The Uncore-idle
// baseline channel rides on it.
const PlatformExitLatency = 200 * sim.Microsecond

// PlatformIdle reports whether every socket is in a deep package C-state
// (PC2 or deeper); shallow halts do not let the platform power down.
func (m *Machine) PlatformIdle() bool {
	for _, s := range m.sockets {
		if s.Gov.PC() < 2 {
			return false
		}
	}
	return true
}

// WakeLatency models the §2.3 Uncore-idle measurement: the time between a
// NIC packet arriving for a thread on the given socket/core and its
// interrupt service routine running — the core's C-state exit latency,
// the uncore's package C-state exit latency, and the platform deep-idle
// exit when the whole machine had gone quiet.
func (m *Machine) WakeLatency(socket, core int, rng *sim.Rand) sim.Time {
	// The core C-state read below must reflect any elided idle stretch.
	m.catchUpIdle(m.engine.Now())
	s := m.sockets[socket]
	lat := s.Cores[core].CState.ExitLatency() + s.Gov.PC().ExitLatency()
	if m.PlatformIdle() {
		lat += PlatformExitLatency
	}
	// Interrupt delivery jitter.
	return lat + rng.Jitter(2*sim.Microsecond)
}
