package system

import (
	"reflect"
	"sync"
)

// Pool recycles Machines across trials. Building the Table 1 platform
// allocates tens of megabytes (sliced LLC arrays, private L2s, the mesh
// route tables); sweep loops that construct a fresh machine per trial pay
// that in full every iteration. A Pool hands back a previously built
// machine restored to cold state by Machine.Reset, which is bit-for-bit
// equivalent to New — pooled and fresh trials produce identical output.
//
// A nil *Pool is valid and never pools: Get constructs and Put discards,
// so call sites can thread an optional pool without branching.
type Pool struct {
	mu   sync.Mutex
	free []*Machine
}

// Get returns a machine built from cfg: a recycled one (Reset to
// cfg.Seed) when a compatible machine is available, a fresh New(cfg)
// otherwise. Two configurations are compatible when they differ at most
// in Seed — everything else (topology, model constants, quantum) shapes
// allocated structure that Reset preserves rather than rebuilds.
func (p *Pool) Get(cfg Config) *Machine {
	if p == nil {
		return New(cfg)
	}
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		m := p.free[i]
		if compatibleConfig(m.cfg, cfg) {
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free[last] = nil
			p.free = p.free[:last]
			p.mu.Unlock()
			m.Reset(cfg.Seed)
			return m
		}
	}
	p.mu.Unlock()
	return New(cfg)
}

// Put returns a machine to the pool for reuse. The machine must not be
// used by the caller afterwards; it is reset on its way back out of Get.
// Putting nil is a no-op, as is putting into a nil pool.
func (p *Pool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Size returns the number of idle machines held.
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// compatibleConfig reports whether a machine built from a can serve a
// request for b after a Reset — i.e. the configurations are equal once
// the seed (the one thing Reset replaces) is normalised away.
func compatibleConfig(a, b Config) bool {
	a.Seed, b.Seed = 0, 0
	return reflect.DeepEqual(a, b)
}
