// Package cache implements the functional cache hierarchy of the evaluation
// platform (Table 1): private 8-way 32 KiB L1s, private inclusive 16-way
// 1 MiB L2s, and a shared non-inclusive 11-way sliced LLC distributed over
// the mesh tiles. It provides the primitives the paper's workloads are
// built from: eviction lists that bypass the L2 (Listing 1), pointer-chase
// lists (Listing 2), timed loads (Listing 3), clflush, and the defensive
// variants (randomized indexing, way/slice partitioning) evaluated in
// Table 3.
//
// The package is purely functional: it decides hit levels and evictions.
// Latency is assigned by internal/timing from the hit level, the mesh hop
// count, and the current uncore frequency.
package cache

import "fmt"

// LineSize is the cache line size in bytes.
const LineSize = 64

// Line is a physical cache-line address (the physical byte address shifted
// right by 6).
type Line uint64

// SetAssoc is one set-associative cache array with true-LRU replacement.
// Insertion can be restricted to a way range, which is how way-partitioning
// defences are expressed.
type SetAssoc struct {
	sets  int
	ways  int
	lines []Line
	valid []bool
	age   []uint64
	stamp uint64
}

// NewSetAssoc returns a cache array with the given geometry. sets must be a
// power of two (hardware indexes with address bits).
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache: non-positive way count %d", ways))
	}
	n := sets * ways
	return &SetAssoc{
		sets:  sets,
		ways:  ways,
		lines: make([]Line, n),
		valid: make([]bool, n),
		age:   make([]uint64, n),
	}
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

func (c *SetAssoc) checkSet(set int) {
	if set < 0 || set >= c.sets {
		panic(fmt.Sprintf("cache: set %d out of range [0,%d)", set, c.sets))
	}
}

// Lookup reports whether line is present in set, updating LRU state on a
// hit.
func (c *SetAssoc) Lookup(set int, line Line) bool {
	c.checkSet(set)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == line {
			c.stamp++
			c.age[i] = c.stamp
			return true
		}
	}
	return false
}

// Contains reports presence without touching LRU state (a probe, not an
// access).
func (c *SetAssoc) Contains(set int, line Line) bool {
	c.checkSet(set)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == line {
			return true
		}
	}
	return false
}

// Insert places line into set, evicting the LRU line if the set is full.
// It returns the evicted line, if any. Insert does not check for prior
// presence; callers perform Lookup first.
func (c *SetAssoc) Insert(set int, line Line) (evicted Line, wasEvicted bool) {
	return c.InsertWays(set, line, 0, c.ways)
}

// InsertWays is Insert restricted to the way range [wayLo, wayLo+wayN):
// the victim is chosen only among those ways. This models way-partitioned
// caches, where a security domain may allocate only into its own ways.
func (c *SetAssoc) InsertWays(set int, line Line, wayLo, wayN int) (evicted Line, wasEvicted bool) {
	c.checkSet(set)
	if wayLo < 0 || wayN <= 0 || wayLo+wayN > c.ways {
		panic(fmt.Sprintf("cache: way range [%d,%d) outside [0,%d)", wayLo, wayLo+wayN, c.ways))
	}
	base := set * c.ways
	victim := -1
	for w := wayLo; w < wayLo+wayN; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if victim == -1 || c.age[i] < c.age[victim] {
			victim = i
		}
	}
	i := victim
	if c.valid[i] {
		evicted, wasEvicted = c.lines[i], true
	}
	c.stamp++
	c.lines[i] = line
	c.valid[i] = true
	c.age[i] = c.stamp
	return evicted, wasEvicted
}

// Remove invalidates line in set if present, reporting whether it was.
func (c *SetAssoc) Remove(set int, line Line) bool {
	c.checkSet(set)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == line {
			c.valid[i] = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines in set.
func (c *SetAssoc) Occupancy(set int) int {
	c.checkSet(set)
	base := set * c.ways
	n := 0
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] {
			n++
		}
	}
	return n
}

// Flush invalidates every line in the array.
func (c *SetAssoc) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}
