// Package cache implements the functional cache hierarchy of the evaluation
// platform (Table 1): private 8-way 32 KiB L1s, private inclusive 16-way
// 1 MiB L2s, and a shared non-inclusive 11-way sliced LLC distributed over
// the mesh tiles. It provides the primitives the paper's workloads are
// built from: eviction lists that bypass the L2 (Listing 1), pointer-chase
// lists (Listing 2), timed loads (Listing 3), clflush, and the defensive
// variants (randomized indexing, way/slice partitioning) evaluated in
// Table 3.
//
// The package is purely functional: it decides hit levels and evictions.
// Latency is assigned by internal/timing from the hit level, the mesh hop
// count, and the current uncore frequency.
package cache

import "fmt"

// LineSize is the cache line size in bytes.
const LineSize = 64

// Line is a physical cache-line address (the physical byte address shifted
// right by 6).
type Line uint64

// way is one cache way: the resident line, its LRU stamp, and a validity
// flag, kept together so a set lookup walks one contiguous array instead
// of three parallel slices.
type way struct {
	line  Line
	age   uint64
	valid bool
}

// SetAssoc is one set-associative cache array with true-LRU replacement.
// Insertion can be restricted to a way range, which is how way-partitioning
// defences are expressed. Each set's ways are contiguous in memory; every
// operation is a single pass over that span and allocates nothing.
type SetAssoc struct {
	sets  int
	ways  int
	arr   []way
	stamp uint64
}

// NewSetAssoc returns a cache array with the given geometry. sets must be a
// power of two (hardware indexes with address bits).
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d is not a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache: non-positive way count %d", ways))
	}
	return &SetAssoc{
		sets: sets,
		ways: ways,
		arr:  make([]way, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *SetAssoc) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

func (c *SetAssoc) checkSet(set int) {
	if set < 0 || set >= c.sets {
		panic(fmt.Sprintf("cache: set %d out of range [0,%d)", set, c.sets))
	}
}

// span returns the contiguous way array of set.
func (c *SetAssoc) span(set int) []way {
	base := set * c.ways
	return c.arr[base : base+c.ways]
}

// Lookup reports whether line is present in set, updating LRU state on a
// hit.
func (c *SetAssoc) Lookup(set int, line Line) bool {
	c.checkSet(set)
	ws := c.span(set)
	for i := range ws {
		if ws[i].valid && ws[i].line == line {
			c.stamp++
			ws[i].age = c.stamp
			return true
		}
	}
	return false
}

// Contains reports presence without touching LRU state (a probe, not an
// access).
func (c *SetAssoc) Contains(set int, line Line) bool {
	c.checkSet(set)
	ws := c.span(set)
	for i := range ws {
		if ws[i].valid && ws[i].line == line {
			return true
		}
	}
	return false
}

// Insert places line into set, evicting the LRU line if the set is full.
// It returns the evicted line, if any. Insert does not check for prior
// presence; callers perform Lookup first.
func (c *SetAssoc) Insert(set int, line Line) (evicted Line, wasEvicted bool) {
	return c.InsertWays(set, line, 0, c.ways)
}

// InsertWays is Insert restricted to the way range [wayLo, wayLo+wayN):
// the victim is chosen only among those ways. This models way-partitioned
// caches, where a security domain may allocate only into its own ways.
func (c *SetAssoc) InsertWays(set int, line Line, wayLo, wayN int) (evicted Line, wasEvicted bool) {
	c.checkSet(set)
	if wayLo < 0 || wayN <= 0 || wayLo+wayN > c.ways {
		panic(fmt.Sprintf("cache: way range [%d,%d) outside [0,%d)", wayLo, wayLo+wayN, c.ways))
	}
	ws := c.span(set)[wayLo : wayLo+wayN]
	victim := -1
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
		if victim == -1 || ws[i].age < ws[victim].age {
			victim = i
		}
	}
	w := &ws[victim]
	if w.valid {
		evicted, wasEvicted = w.line, true
	}
	c.stamp++
	w.line = line
	w.valid = true
	w.age = c.stamp
	return evicted, wasEvicted
}

// Remove invalidates line in set if present, reporting whether it was.
func (c *SetAssoc) Remove(set int, line Line) bool {
	c.checkSet(set)
	ws := c.span(set)
	for i := range ws {
		if ws[i].valid && ws[i].line == line {
			ws[i].valid = false
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines in set.
func (c *SetAssoc) Occupancy(set int) int {
	c.checkSet(set)
	n := 0
	for _, w := range c.span(set) {
		if w.valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line in the array.
func (c *SetAssoc) Flush() {
	for i := range c.arr {
		c.arr[i].valid = false
	}
}

// Reset returns the array to its just-constructed state: every way
// invalid and the LRU stamp rewound to zero, so replacement decisions
// after a reset replay those of a fresh cache bit for bit.
func (c *SetAssoc) Reset() {
	clear(c.arr)
	c.stamp = 0
}
