package cache

import "fmt"

// SliceHash maps a physical line address to an LLC slice. On Intel Xeon
// parts the mapping is an undocumented XOR of physical-address bits chosen
// per tile count (§2.1; the 28-tile function was reverse engineered by
// McCalpin). We use an XOR-fold with the same key property the attacks rely
// on: the mapping is uniform, fixed for a given part, and a function of the
// physical address only.
type SliceHash interface {
	// Slices returns the number of slices addressed by the hash.
	Slices() int
	// Slice returns the slice index for a line, in [0, Slices()).
	Slice(line Line) int
}

// XORFoldHash hashes by XOR-folding the line address down to as many bits
// as needed and reducing modulo the slice count. For power-of-two slice
// counts this is a pure XOR of address-bit groups, structurally like the
// documented reverse-engineered hashes.
type XORFoldHash struct {
	n int
}

// NewXORFoldHash returns a hash over n slices. n must be positive.
func NewXORFoldHash(n int) XORFoldHash {
	if n <= 0 {
		panic(fmt.Sprintf("cache: slice count %d must be positive", n))
	}
	return XORFoldHash{n: n}
}

// Slices implements SliceHash.
func (h XORFoldHash) Slices() int { return h.n }

// Slice implements SliceHash.
func (h XORFoldHash) Slice(line Line) int {
	x := uint64(line)
	// Mix so that nearby lines spread across slices, as the real hash
	// does (consecutive lines hit different slices).
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(h.n))
}

// SubsetHash restricts an underlying hash to an allowed subset of slices,
// folding disallowed slices onto allowed ones. It models the fine-grained
// uncore partitioning defence of §4.4, where each security domain is
// assigned half of the LLC slices ("with two domains, each domain is
// assigned with half of the LLC slices").
type SubsetHash struct {
	base    SliceHash
	allowed []int
}

// NewSubsetHash wraps base so that all lines map into allowed. allowed must
// be non-empty and name valid slices of base.
func NewSubsetHash(base SliceHash, allowed []int) SubsetHash {
	if len(allowed) == 0 {
		panic("cache: subset hash needs at least one allowed slice")
	}
	for _, s := range allowed {
		if s < 0 || s >= base.Slices() {
			panic(fmt.Sprintf("cache: allowed slice %d outside base hash range %d", s, base.Slices()))
		}
	}
	cp := make([]int, len(allowed))
	copy(cp, allowed)
	return SubsetHash{base: base, allowed: cp}
}

// Slices implements SliceHash; it reports the base slice count since slice
// IDs keep their physical meaning.
func (h SubsetHash) Slices() int { return h.base.Slices() }

// Slice implements SliceHash.
func (h SubsetHash) Slice(line Line) int {
	return h.allowed[h.base.Slice(line)%len(h.allowed)]
}
