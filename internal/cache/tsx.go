package cache

// Transaction models the part of Intel TSX that Prime+Abort exploits
// (§ Table 3): a hardware transaction tracks a read/write set of cache
// lines, and a conflict eviction of a tracked line aborts the transaction
// immediately — giving the attacker a timer-free eviction signal.
//
// A Transaction registers a single watcher with the hierarchy at creation
// and is reused across rounds with Begin/End, mirroring how a Prime+Abort
// attacker re-enters transactions in a loop.
type Transaction struct {
	h       *Hierarchy
	tracked map[Line]bool
	active  bool
	aborted bool
	aborts  uint64
}

// NewTransaction returns an inactive transaction bound to h.
func NewTransaction(h *Hierarchy) *Transaction {
	t := &Transaction{h: h, tracked: make(map[Line]bool)}
	h.Watch(func(line Line, _ int) {
		if t.active && t.tracked[line] {
			t.aborted = true
			t.active = false
			t.aborts++
		}
	})
	return t
}

// Begin starts a fresh transaction with an empty tracked set.
func (t *Transaction) Begin() {
	t.active = true
	t.aborted = false
	for k := range t.tracked {
		delete(t.tracked, k)
	}
}

// Track adds line to the transaction's read set. Prime+Abort tracks the
// lines it primed into the target LLC set.
func (t *Transaction) Track(line Line) {
	if !t.active {
		return
	}
	t.tracked[line] = true
}

// Aborted reports whether the transaction has been aborted by a conflict
// eviction since Begin.
func (t *Transaction) Aborted() bool { return t.aborted }

// End commits (or discards) the transaction and reports whether it had
// aborted.
func (t *Transaction) End() bool {
	t.active = false
	return t.aborted
}

// Aborts returns the cumulative abort count, for diagnostics.
func (t *Transaction) Aborts() uint64 { return t.aborts }
