package cache_test

// Zero-allocation benchmarks for the per-access hot path. These back the
// regression gate in scripts/bench.sh: every benchmark here calls
// b.ReportAllocs, and the tagged ones must report 0 allocs/op.

import (
	"testing"

	"repro/internal/cache"
)

// benchLines returns n lines that all index L2 set `set` for the default
// geometry (stride of L2Sets keeps the low index bits fixed).
func benchLines(geom cache.Geometry, set, n int) []cache.Line {
	out := make([]cache.Line, n)
	for i := range out {
		out[i] = cache.Line(1<<20 | set | i*geom.L2Sets)
	}
	return out
}

// BenchmarkSetAssocLookupHit times a hit in a warm set: the single-pass
// scan over the contiguous way array plus the LRU stamp update.
func BenchmarkSetAssocLookupHit(b *testing.B) {
	c := cache.NewSetAssoc(1024, 16)
	lines := benchLines(cache.DefaultGeometry(1), 3, 16)
	for _, l := range lines {
		c.Insert(3, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Lookup(3, lines[i%len(lines)]) {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkSetAssocInsertEvict times the miss path: inserting into a full
// set, which forces an LRU victim scan and an eviction every call.
func BenchmarkSetAssocInsertEvict(b *testing.B) {
	c := cache.NewSetAssoc(1024, 16)
	lines := benchLines(cache.DefaultGeometry(1), 3, 64)
	for _, l := range lines[:16] {
		c.Insert(3, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, evicted := c.Insert(3, lines[i%len(lines)]); !evicted {
			b.Fatal("expected eviction from a full set")
		}
	}
}

// BenchmarkHierarchyAccessL1Hit times the shortest access path: a line
// resident in the L1.
func BenchmarkHierarchyAccessL1Hit(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultGeometry(16))
	cc := h.NewCore()
	line := cache.Line(1 << 20)
	cc.Access(0, line)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := cc.Access(0, line); res.Level != cache.LevelL1 {
			b.Fatalf("expected L1 hit, got %v", res.Level)
		}
	}
}

// BenchmarkHierarchyAccessLLCHit times the paper's eviction-list access
// pattern (Listing 1): rotating over more same-L2-set lines than the L2
// holds, so every access misses the private caches and hits the LLC —
// the steady-state load of the sender and receiver loops.
func BenchmarkHierarchyAccessLLCHit(b *testing.B) {
	geom := cache.DefaultGeometry(16)
	h := cache.NewHierarchy(geom)
	cc := h.NewCore()
	lines := benchLines(geom, 5, geom.L2Ways+4)
	// Two warm-up rotations move the list into LLC steady state.
	for r := 0; r < 2; r++ {
		for _, l := range lines {
			cc.Access(0, l)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Access(0, lines[i%len(lines)])
	}
}

// BenchmarkHierarchyFlush times the clflush path of Flush+Reload: access
// a cached line, then invalidate it in every cache of the socket.
func BenchmarkHierarchyFlush(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultGeometry(16))
	cc := h.NewCore()
	line := cache.Line(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc.Access(0, line)
		if !h.Flush(line) {
			b.Fatal("expected the line to be present")
		}
	}
}
