package cache

// KeyedIndex returns an IndexFn that permutes set indices with a keyed
// mixing function, one key per domain. It models randomized-LLC defences
// (e.g. Scatter-and-Split style designs referenced in §4.4): an attacker in
// one domain can no longer construct addresses that collide in the victim
// domain's sets, which breaks set-conflict channels such as Prime+Probe,
// while occupancy-style channels (SPP) survive.
//
// Domains without a key fall back to hardware indexing, so the defence can
// be applied selectively.
func KeyedIndex(keys map[Domain]uint64) IndexFn {
	// Copy to decouple from the caller.
	k := make(map[Domain]uint64, len(keys))
	for d, v := range keys {
		k[d] = v
	}
	return func(d Domain, line Line, sets int) int {
		key, ok := k[d]
		if !ok {
			return LowBitsIndex(d, line, sets)
		}
		x := uint64(line) ^ key
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return int(x & uint64(sets-1))
	}
}
