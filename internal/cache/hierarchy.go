package cache

import "fmt"

// Level identifies where in the hierarchy an access was served.
type Level int

const (
	// LevelL1 is a private L1 hit.
	LevelL1 Level = iota
	// LevelL2 is a private L2 hit.
	LevelL2
	// LevelLLC is a hit in a shared last-level-cache slice.
	LevelLLC
	// LevelRemote is a miss in the LLC served by a snoop from another
	// core's private cache (the directory forward path of the
	// non-inclusive Skylake LLC). Flush+Reload observes this level:
	// after a flush, a line the sender re-touched lives in the sender's
	// L2, and the receiver's reload is served by a cross-core snoop —
	// much faster than memory.
	LevelRemote
	// LevelMem is a full miss served by a memory controller.
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelRemote:
		return "REMOTE"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Domain is a security domain identifier. Defences (randomized indexing,
// partitioning) key their behaviour on the accessing domain; with no
// defence installed all domains behave identically.
type Domain int

// AccessResult describes how a load was served.
type AccessResult struct {
	// Level is where the line was found (LevelMem if nowhere).
	Level Level
	// Slice is the LLC slice consulted (the line's home slice). It is
	// meaningful for LevelLLC and LevelMem, where the request travelled
	// the mesh.
	Slice int
}

// IndexFn maps a line to a set index inside its LLC slice. The default
// uses the low line-address bits like real hardware; the randomized-LLC
// defence substitutes a keyed permutation per domain.
type IndexFn func(domain Domain, line Line, sets int) int

// LowBitsIndex is the hardware-default set indexing.
func LowBitsIndex(_ Domain, line Line, sets int) int {
	return int(uint64(line) & uint64(sets-1))
}

// WayRange restricts a domain's LLC insertions to a way interval.
type WayRange struct {
	Lo, N int
}

// EvictionWatcher observes LLC conflict evictions; Prime+Abort's
// transactional tracking is built on it.
type EvictionWatcher func(line Line, slice int)

// Geometry describes the platform cache sizes. The zero value is not
// usable; call DefaultGeometry.
type Geometry struct {
	L1Sets, L1Ways   int
	L2Sets, L2Ways   int
	LLCSets, LLCWays int // per slice
	Slices           int
}

// DefaultGeometry returns the Xeon Gold 6142 hierarchy of Table 1:
// 32 KiB/8-way L1 (64 sets), 1 MiB/16-way inclusive L2 (1024 sets), and a
// 22 MiB 11-way non-inclusive LLC split into nslices slices of 2048 sets.
func DefaultGeometry(nslices int) Geometry {
	return Geometry{
		L1Sets: 64, L1Ways: 8,
		L2Sets: 1024, L2Ways: 16,
		LLCSets: 2048, LLCWays: 11,
		Slices: nslices,
	}
}

// Hierarchy is the shared part of the cache system: the sliced LLC plus the
// registry of per-core private caches (needed by clflush, which invalidates
// a line everywhere).
type Hierarchy struct {
	geom   Geometry
	slices []*SetAssoc
	cores  []*CoreCaches

	// hashes holds the per-domain slice hash; index 0 is the default
	// used for any domain without an override.
	defaultHash SliceHash
	domainHash  map[Domain]SliceHash

	index    IndexFn
	ways     map[Domain]WayRange
	watchers []EvictionWatcher

	// flushSeen is Flush's reused (slice, set) dedup scratch; the domain
	// count is tiny, so a linear scan beats a rebuilt map every call.
	flushSeen [][2]int

	// stats
	llcInserts, llcEvictions uint64
}

// NewHierarchy builds the shared hierarchy with the given geometry. The
// default slice hash covers all slices and all domains share hardware
// indexing and the full way range.
func NewHierarchy(geom Geometry) *Hierarchy {
	if geom.Slices <= 0 {
		panic("cache: hierarchy needs at least one LLC slice")
	}
	h := &Hierarchy{
		geom:        geom,
		defaultHash: NewXORFoldHash(geom.Slices),
		domainHash:  make(map[Domain]SliceHash),
		index:       LowBitsIndex,
		ways:        make(map[Domain]WayRange),
	}
	h.slices = make([]*SetAssoc, geom.Slices)
	for i := range h.slices {
		h.slices[i] = NewSetAssoc(geom.LLCSets, geom.LLCWays)
	}
	return h
}

// Geometry returns the hierarchy geometry.
func (h *Hierarchy) Geometry() Geometry { return h.geom }

// NewCore allocates a private L1+L2 pair attached to this hierarchy.
func (h *Hierarchy) NewCore() *CoreCaches {
	cc := &CoreCaches{
		h:  h,
		l1: NewSetAssoc(h.geom.L1Sets, h.geom.L1Ways),
		l2: NewSetAssoc(h.geom.L2Sets, h.geom.L2Ways),
	}
	h.cores = append(h.cores, cc)
	return cc
}

// SetIndexFn installs a set-indexing function (randomized-LLC defence).
func (h *Hierarchy) SetIndexFn(fn IndexFn) { h.index = fn }

// SetDomainHash overrides the slice hash for one domain (slice
// partitioning).
func (h *Hierarchy) SetDomainHash(d Domain, sh SliceHash) { h.domainHash[d] = sh }

// SetDomainWays restricts a domain's LLC allocations to a way range (way
// partitioning).
func (h *Hierarchy) SetDomainWays(d Domain, wr WayRange) { h.ways[d] = wr }

// Watch registers an eviction watcher.
func (h *Hierarchy) Watch(w EvictionWatcher) { h.watchers = append(h.watchers, w) }

func (h *Hierarchy) hashFor(d Domain) SliceHash {
	// The common platform installs no per-domain hash; skip the map probe
	// entirely on that hot path.
	if len(h.domainHash) != 0 {
		if sh, ok := h.domainHash[d]; ok {
			return sh
		}
	}
	return h.defaultHash
}

// SliceOf returns the home LLC slice of line for domain d.
func (h *Hierarchy) SliceOf(d Domain, line Line) int {
	return h.hashFor(d).Slice(line)
}

// LLCSetOf returns the set index of line within its slice for domain d.
func (h *Hierarchy) LLCSetOf(d Domain, line Line) int {
	return h.index(d, line, h.geom.LLCSets)
}

// llcInsert places line into its home slice for domain d, firing eviction
// watchers for any conflict victim.
func (h *Hierarchy) llcInsert(d Domain, line Line) {
	slice := h.SliceOf(d, line)
	set := h.LLCSetOf(d, line)
	sa := h.slices[slice]
	wr := WayRange{Lo: 0, N: sa.Ways()}
	if len(h.ways) != 0 {
		if w, ok := h.ways[d]; ok {
			wr = w
		}
	}
	evicted, was := sa.InsertWays(set, line, wr.Lo, wr.N)
	h.llcInserts++
	if was {
		h.llcEvictions++
		for _, w := range h.watchers {
			w(evicted, slice)
		}
	}
}

// llcLookup checks for line in its home slice for domain d, updating LRU.
func (h *Hierarchy) llcLookup(d Domain, line Line) (slice int, hit bool) {
	slice = h.SliceOf(d, line)
	set := h.LLCSetOf(d, line)
	return slice, h.slices[slice].Lookup(set, line)
}

// llcRemove drops line from its home slice (non-inclusive move to L2).
func (h *Hierarchy) llcRemove(d Domain, line Line) {
	slice := h.SliceOf(d, line)
	set := h.LLCSetOf(d, line)
	h.slices[slice].Remove(set, line)
}

// LLCContains probes for line without updating replacement state.
func (h *Hierarchy) LLCContains(d Domain, line Line) bool {
	slice := h.SliceOf(d, line)
	set := h.LLCSetOf(d, line)
	return h.slices[slice].Contains(set, line)
}

// LLCOccupancy returns the total number of valid LLC lines, an input to
// occupancy-style channels (SPP).
func (h *Hierarchy) LLCOccupancy() int {
	n := 0
	for _, s := range h.slices {
		for set := 0; set < s.Sets(); set++ {
			n += s.Occupancy(set)
		}
	}
	return n
}

// Stats returns cumulative LLC insert/eviction counts.
func (h *Hierarchy) Stats() (inserts, evictions uint64) {
	return h.llcInserts, h.llcEvictions
}

// Reset returns the hierarchy and every attached core cache to cold
// state in place: all arrays invalidated with LRU stamps rewound, every
// defence (domain hashes, index function, way ranges) removed, watchers
// dropped, and the insert/eviction statistics zeroed. The set of attached
// cores is preserved — a reset hierarchy is the one NewHierarchy+NewCore
// built, not an empty one.
func (h *Hierarchy) Reset() {
	for _, s := range h.slices {
		s.Reset()
	}
	for _, cc := range h.cores {
		cc.l1.Reset()
		cc.l2.Reset()
	}
	clear(h.domainHash)
	h.index = LowBitsIndex
	clear(h.ways)
	h.watchers = h.watchers[:0]
	h.flushSeen = h.flushSeen[:0]
	h.llcInserts, h.llcEvictions = 0, 0
}

// Flush invalidates line everywhere: every core's L1 and L2, and the LLC
// under every registered domain mapping. It reports whether the line was
// present anywhere, which is the timing signal Flush+Flush decodes.
func (h *Hierarchy) Flush(line Line) bool {
	present := false
	for _, cc := range h.cores {
		if cc.l1.Remove(int(uint64(line)&uint64(h.geom.L1Sets-1)), line) {
			present = true
		}
		if cc.l2.Remove(int(uint64(line)&uint64(h.geom.L2Sets-1)), line) {
			present = true
		}
	}
	// The flushed line may live under any domain's mapping; clear all.
	// The dedup scratch is owned by the hierarchy and reused per flush —
	// domains are few, so the linear membership scan is cheaper than a
	// map rebuilt on every clflush.
	seen := h.flushSeen[:0]
	seen, present = h.flushUnder(Domain(0), line, seen, present)
	for d := range h.domainHash {
		seen, present = h.flushUnder(d, line, seen, present)
	}
	h.flushSeen = seen[:0]
	return present
}

// flushUnder removes line from its home (slice, set) under domain d's
// mapping, skipping positions already cleared this flush.
func (h *Hierarchy) flushUnder(d Domain, line Line, seen [][2]int, present bool) ([][2]int, bool) {
	slice := h.SliceOf(d, line)
	set := h.LLCSetOf(d, line)
	key := [2]int{slice, set}
	for _, k := range seen {
		if k == key {
			return seen, present
		}
	}
	seen = append(seen, key)
	if h.slices[slice].Remove(set, line) {
		present = true
	}
	return seen, present
}

// CoreCaches is one core's private L1 and L2, bound to the shared
// hierarchy.
type CoreCaches struct {
	h      *Hierarchy
	l1, l2 *SetAssoc
}

// L1SetOf returns the L1 set index of line.
func (cc *CoreCaches) L1SetOf(line Line) int {
	return int(uint64(line) & uint64(cc.h.geom.L1Sets-1))
}

// L2SetOf returns the L2 set index of line.
func (cc *CoreCaches) L2SetOf(line Line) int {
	return int(uint64(line) & uint64(cc.h.geom.L2Sets-1))
}

// Access performs a load of line by domain d and returns where it was
// served. Fill policy (Skylake-SP, Table 1): L2 is inclusive of L1, the
// LLC is a non-inclusive victim of the L2 — lines move LLC→L2 on a hit and
// L2→LLC on eviction; memory fills bypass LLC allocation.
func (cc *CoreCaches) Access(d Domain, line Line) AccessResult {
	if cc.l1.Lookup(cc.L1SetOf(line), line) {
		return AccessResult{Level: LevelL1, Slice: cc.h.SliceOf(d, line)}
	}
	if cc.l2.Lookup(cc.L2SetOf(line), line) {
		cc.fillL1(line)
		return AccessResult{Level: LevelL2, Slice: cc.h.SliceOf(d, line)}
	}
	slice, hit := cc.h.llcLookup(d, line)
	if hit {
		cc.h.llcRemove(d, line) // non-inclusive: promote to L2
		cc.fillL2(d, line)
		cc.fillL1(line)
		return AccessResult{Level: LevelLLC, Slice: slice}
	}
	// Directory check: another core's private cache may hold the line
	// (non-inclusive LLC keeps a directory of private-cache contents);
	// the home slice forwards the request as a snoop.
	for _, o := range cc.h.cores {
		if o == cc {
			continue
		}
		if o.l2.Remove(o.L2SetOf(line), line) {
			o.l1.Remove(o.L1SetOf(line), line)
			cc.fillL2(d, line)
			cc.fillL1(line)
			return AccessResult{Level: LevelRemote, Slice: slice}
		}
	}
	cc.fillL2(d, line)
	cc.fillL1(line)
	return AccessResult{Level: LevelMem, Slice: slice}
}

// fillL1 inserts line into L1.
func (cc *CoreCaches) fillL1(line Line) {
	cc.l1.Insert(cc.L1SetOf(line), line)
}

// fillL2 inserts line into L2; the victim spills to the LLC and is
// back-invalidated from L1 (L2 is inclusive of L1).
func (cc *CoreCaches) fillL2(d Domain, line Line) {
	evicted, was := cc.l2.Insert(cc.L2SetOf(line), line)
	if was {
		cc.l1.Remove(cc.L1SetOf(evicted), evicted)
		cc.h.llcInsert(d, evicted)
	}
}

// Hierarchy returns the shared hierarchy this core is attached to.
func (cc *CoreCaches) Hierarchy() *Hierarchy { return cc.h }

// InL1 probes L1 without updating LRU.
func (cc *CoreCaches) InL1(line Line) bool { return cc.l1.Contains(cc.L1SetOf(line), line) }

// InL2 probes L2 without updating LRU.
func (cc *CoreCaches) InL2(line Line) bool { return cc.l2.Contains(cc.L2SetOf(line), line) }
