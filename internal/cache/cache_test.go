package cache

import (
	"testing"
	"testing/quick"
)

func TestSetAssocLRU(t *testing.T) {
	c := NewSetAssoc(2, 2)
	c.Insert(0, 10)
	c.Insert(0, 20)
	if !c.Lookup(0, 10) || !c.Lookup(0, 20) {
		t.Fatal("inserted lines not found")
	}
	// Touch 10 so 20 becomes LRU, then insert: 20 must be evicted.
	c.Lookup(0, 10)
	ev, was := c.Insert(0, 30)
	if !was || ev != 20 {
		t.Errorf("evicted %d,%v, want 20", ev, was)
	}
	if c.Lookup(0, 20) {
		t.Error("evicted line still present")
	}
}

func TestSetAssocSequentialThrash(t *testing.T) {
	// The eviction-list property (§3.1): walking W+k lines of one set
	// in fixed rotation, with true LRU, every access misses.
	c := NewSetAssoc(1, 16)
	lines := make([]Line, 20)
	for i := range lines {
		lines[i] = Line(100 + i)
	}
	// Warm up one pass.
	for _, l := range lines {
		if !c.Lookup(0, l) {
			c.Insert(0, l)
		}
	}
	// Every subsequent rotation access must miss.
	for round := 0; round < 3; round++ {
		for _, l := range lines {
			if c.Lookup(0, l) {
				t.Fatalf("line %d hit during rotation; LRU broken", l)
			}
			c.Insert(0, l)
		}
	}
}

func TestSetAssocWayPartition(t *testing.T) {
	c := NewSetAssoc(1, 4)
	// Domain A owns ways 0-1, domain B ways 2-3.
	c.InsertWays(0, 1, 0, 2)
	c.InsertWays(0, 2, 0, 2)
	c.InsertWays(0, 3, 2, 2)
	c.InsertWays(0, 4, 2, 2)
	// A's next insert may only evict A's lines.
	ev, was := c.InsertWays(0, 5, 0, 2)
	if !was || (ev != 1 && ev != 2) {
		t.Errorf("way-partitioned insert evicted %d, want 1 or 2", ev)
	}
	if !c.Contains(0, 3) || !c.Contains(0, 4) {
		t.Error("domain B's lines were evicted by domain A")
	}
}

func TestSetAssocRemoveAndOccupancy(t *testing.T) {
	c := NewSetAssoc(2, 4)
	c.Insert(1, 7)
	if c.Occupancy(1) != 1 || c.Occupancy(0) != 0 {
		t.Error("occupancy wrong after insert")
	}
	if !c.Remove(1, 7) {
		t.Error("remove failed")
	}
	if c.Remove(1, 7) {
		t.Error("double remove succeeded")
	}
	c.Insert(0, 9)
	c.Flush()
	if c.Occupancy(0) != 0 {
		t.Error("flush left lines behind")
	}
}

func TestSetAssocContainsDoesNotTouchLRU(t *testing.T) {
	c := NewSetAssoc(1, 2)
	c.Insert(0, 1)
	c.Insert(0, 2)
	// Contains(1) must not refresh line 1.
	c.Contains(0, 1)
	ev, _ := c.Insert(0, 3)
	if ev != 1 {
		t.Errorf("evicted %d, want the untouched LRU line 1", ev)
	}
}

func TestSetAssocGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewSetAssoc(3, 4) },  // non-power-of-two sets
		func() { NewSetAssoc(4, 0) },  // zero ways
		func() { NewSetAssoc(-4, 4) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			bad()
		}()
	}
}

func TestXORFoldHashUniformity(t *testing.T) {
	h := NewXORFoldHash(16)
	counts := make([]int, 16)
	const n = 1 << 14
	for l := Line(0); l < n; l++ {
		s := h.Slice(l)
		if s < 0 || s >= 16 {
			t.Fatalf("slice %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < n/16*8/10 || c > n/16*12/10 {
			t.Errorf("slice %d holds %d/%d lines; hash badly skewed", s, c, n)
		}
	}
}

func TestSubsetHashConfinesDomain(t *testing.T) {
	base := NewXORFoldHash(16)
	sub := NewSubsetHash(base, []int{0, 1, 2, 3})
	for l := Line(0); l < 4096; l++ {
		if s := sub.Slice(l); s > 3 {
			t.Fatalf("subset hash produced slice %d", s)
		}
	}
	if sub.Slices() != 16 {
		t.Error("subset hash changed slice numbering")
	}
}

func TestHierarchyAccessLevels(t *testing.T) {
	h := NewHierarchy(DefaultGeometry(16))
	cc := h.NewCore()
	l := Line(12345)
	if got := cc.Access(0, l); got.Level != LevelMem {
		t.Fatalf("cold access = %v, want MEM", got.Level)
	}
	if got := cc.Access(0, l); got.Level != LevelL1 {
		t.Fatalf("immediate re-access = %v, want L1", got.Level)
	}
}

func TestHierarchyNonInclusiveVictimPath(t *testing.T) {
	// A line evicted from the L2 must appear in the LLC, and an LLC
	// hit must move it back out of the LLC (victim-cache behaviour).
	h := NewHierarchy(DefaultGeometry(16))
	cc := h.NewCore()
	geom := h.Geometry()
	target := Line(1 << 15)
	cc.Access(0, target)
	if h.LLCContains(0, target) {
		t.Fatal("memory fill allocated into the LLC (should be non-inclusive)")
	}
	// Thrash the target's L2 set to evict it.
	for k := 1; k <= geom.L2Ways+2; k++ {
		cc.Access(0, target+Line(k*geom.L2Sets))
	}
	if !h.LLCContains(0, target) {
		t.Fatal("L2 victim did not spill into the LLC")
	}
	if cc.InL2(target) {
		t.Fatal("evicted line still in L2")
	}
	res := cc.Access(0, target)
	if res.Level != LevelLLC {
		t.Fatalf("access after spill = %v, want LLC", res.Level)
	}
	if h.LLCContains(0, target) {
		t.Error("LLC hit left the line in the LLC (non-inclusive promote should remove)")
	}
}

func TestHierarchyL2InclusiveOfL1(t *testing.T) {
	h := NewHierarchy(DefaultGeometry(16))
	cc := h.NewCore()
	geom := h.Geometry()
	target := Line(777)
	cc.Access(0, target)
	if !cc.InL1(target) {
		t.Fatal("line not in L1 after access")
	}
	for k := 1; k <= geom.L2Ways+2; k++ {
		cc.Access(0, target+Line(k*geom.L2Sets))
	}
	if cc.InL1(target) {
		t.Error("L2 eviction did not back-invalidate L1 (L2 is inclusive)")
	}
}

func TestHierarchyRemoteSnoop(t *testing.T) {
	// Flush+Reload's fast path: a line resident in another core's
	// private cache is served by a directory snoop, not memory.
	h := NewHierarchy(DefaultGeometry(16))
	a := h.NewCore()
	b := h.NewCore()
	l := Line(4242)
	a.Access(0, l)
	res := b.Access(0, l)
	if res.Level != LevelRemote {
		t.Fatalf("cross-core access = %v, want REMOTE", res.Level)
	}
	if a.InL2(l) || a.InL1(l) {
		t.Error("snooped line still in the source core's caches")
	}
}

func TestHierarchyFlushEverywhere(t *testing.T) {
	h := NewHierarchy(DefaultGeometry(16))
	a, b := h.NewCore(), h.NewCore()
	l := Line(999)
	a.Access(0, l)
	b.Access(0, l) // moves it to b
	if !h.Flush(l) {
		t.Fatal("flush found nothing")
	}
	if h.Flush(l) {
		t.Error("second flush still found the line")
	}
	if got := a.Access(0, l); got.Level != LevelMem {
		t.Errorf("access after flush = %v, want MEM", got.Level)
	}
}

func TestKeyedIndexSeparatesDomains(t *testing.T) {
	idx := KeyedIndex(map[Domain]uint64{1: 0xAA, 2: 0xBB})
	same, n := 0, 4096
	for l := Line(0); l < Line(n); l++ {
		if idx(1, l, 2048) == idx(2, l, 2048) {
			same++
		}
	}
	// Two keyed domains agree only by chance (~1/2048).
	if same > n/256 {
		t.Errorf("domains agree on %d/%d set indices; keys ineffective", same, n)
	}
	// Unkeyed domains use hardware indexing.
	if idx(0, 0x1555, 2048) != LowBitsIndex(0, 0x1555, 2048) {
		t.Error("unkeyed domain not using hardware indexing")
	}
}

func TestKeyedIndexInRangeQuick(t *testing.T) {
	idx := KeyedIndex(map[Domain]uint64{1: 0xFEED})
	f := func(l uint64) bool {
		s := idx(1, Line(l), 2048)
		return s >= 0 && s < 2048
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransactionAbortOnEviction(t *testing.T) {
	h := NewHierarchy(DefaultGeometry(16))
	cc := h.NewCore()
	geom := h.Geometry()
	txn := NewTransaction(h)

	// Park a line in the LLC and track it.
	target := Line(1 << 14)
	cc.Access(0, target)
	for k := 1; k <= geom.L2Ways+2; k++ {
		cc.Access(0, target+Line(k*geom.L2Sets))
	}
	if !h.LLCContains(0, target) {
		t.Fatal("target not parked in LLC")
	}
	txn.Begin()
	txn.Track(target)
	if txn.Aborted() {
		t.Fatal("aborted before any eviction")
	}

	// Fill the target's LLC set from another core until it is evicted.
	other := h.NewCore()
	slice, set := h.SliceOf(0, target), h.LLCSetOf(0, target)
	inserted := 0
	for l := Line(1 << 20); inserted < 3*geom.LLCWays; l++ {
		if h.SliceOf(0, l) == slice && h.LLCSetOf(0, l) == set {
			// Spill it via the other core's L2.
			other.Access(0, l)
			for k := 1; k <= geom.L2Ways+2; k++ {
				other.Access(0, l+Line(k*geom.L2Sets)*131)
			}
			inserted++
		}
	}
	if !txn.End() {
		t.Error("conflict eviction did not abort the transaction")
	}
	if txn.Aborts() == 0 {
		t.Error("abort counter not incremented")
	}
}

func TestTransactionResetPerRound(t *testing.T) {
	h := NewHierarchy(DefaultGeometry(16))
	txn := NewTransaction(h)
	txn.Begin()
	txn.Track(1)
	txn.End()
	txn.Begin()
	if txn.Aborted() {
		t.Error("abort state leaked across Begin")
	}
	// Tracking while inactive is a no-op.
	txn.End()
	txn.Track(2)
}

func TestLevelStrings(t *testing.T) {
	for l, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC",
		LevelRemote: "REMOTE", LevelMem: "MEM",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(l), l.String(), want)
		}
	}
}

// refLRU is a reference LRU model: a slice ordered most-recent-first.
type refLRU struct {
	ways  int
	lines []Line
}

// access touches l, returning whether it hit and what was evicted.
func (r *refLRU) access(l Line) (hit bool, evicted Line, was bool) {
	for i, x := range r.lines {
		if x == l {
			copy(r.lines[1:i+1], r.lines[:i])
			r.lines[0] = l
			return true, 0, false
		}
	}
	r.lines = append([]Line{l}, r.lines...)
	if len(r.lines) > r.ways {
		evicted = r.lines[len(r.lines)-1]
		r.lines = r.lines[:len(r.lines)-1]
		return false, evicted, true
	}
	return false, 0, false
}

// TestSetAssocMatchesReferenceLRU drives one set with a pseudo-random
// access stream and cross-checks hits and evictions against the reference
// model.
func TestSetAssocMatchesReferenceLRU(t *testing.T) {
	c := NewSetAssoc(1, 8)
	ref := &refLRU{ways: 8}
	state := uint64(0x9e3779b97f4a7c15)
	for step := 0; step < 20000; step++ {
		state = state*6364136223846793005 + 1442695040888963407
		l := Line(state>>40%24) + 1
		hit := c.Lookup(0, l)
		wantHit, wantEv, wantWas := ref.access(l)
		if hit != wantHit {
			t.Fatalf("step %d line %d: hit=%v, reference says %v", step, l, hit, wantHit)
		}
		if hit {
			continue
		}
		ev, was := c.Insert(0, l)
		if was != wantWas || (was && ev != wantEv) {
			t.Fatalf("step %d: eviction (%d,%v), reference (%d,%v)", step, ev, was, wantEv, wantWas)
		}
	}
}
