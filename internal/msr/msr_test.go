package msr

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRatioLimitEncodeDecode(t *testing.T) {
	rl := RatioLimit{Min: 12, Max: 24}
	raw := rl.Encode()
	// Figure 1 layout: bits 6:0 max, 14:8 min.
	if raw&0x7f != 24 {
		t.Errorf("max field = %d, want 24", raw&0x7f)
	}
	if raw>>8&0x7f != 12 {
		t.Errorf("min field = %d, want 12", raw>>8&0x7f)
	}
	if got := DecodeRatioLimit(raw); got != rl {
		t.Errorf("round trip = %+v, want %+v", got, rl)
	}
}

func TestRatioLimitRoundTripQuick(t *testing.T) {
	f := func(min, max uint8) bool {
		rl := RatioLimit{Min: sim.Freq(min & 0x7f), Max: sim.Freq(max & 0x7f)}
		return DecodeRatioLimit(rl.Encode()) == rl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioLimitValidate(t *testing.T) {
	if err := (RatioLimit{Min: 12, Max: 24}).Validate(); err != nil {
		t.Errorf("valid limit rejected: %v", err)
	}
	if err := (RatioLimit{Min: 24, Max: 12}).Validate(); err == nil {
		t.Error("min>max accepted")
	}
	if err := (RatioLimit{Min: 0, Max: 24}).Validate(); err == nil {
		t.Error("zero min accepted")
	}
	if !(RatioLimit{Min: 20, Max: 20}).Fixed() {
		t.Error("equal min/max not reported fixed")
	}
}

func TestFileDefaults(t *testing.T) {
	f := NewFile()
	rl := f.Ratio()
	if rl.Min != sim.UncoreMinDefault || rl.Max != sim.UncoreMaxDefault {
		t.Errorf("default ratio = %+v, want 1.2-2.4 GHz (Table 1)", rl)
	}
}

func TestPrivilegeEnforcement(t *testing.T) {
	f := NewFile()
	// §4.2: "accessing MSRs is generally only allowed for privileged
	// users" — the receiver cannot read the frequency directly.
	if _, err := f.Read(User, UclkFixedCtr); !errors.Is(err, ErrPermission) {
		t.Errorf("user-mode read error = %v, want permission denied", err)
	}
	if err := f.Write(User, UncoreRatioLimit, 0x0f0f); !errors.Is(err, ErrPermission) {
		t.Errorf("user-mode write error = %v, want permission denied", err)
	}
	if _, err := f.Read(Kernel, UclkFixedCtr); err != nil {
		t.Errorf("kernel read failed: %v", err)
	}
}

func TestWriteValidation(t *testing.T) {
	f := NewFile()
	if err := f.Write(Kernel, UncoreRatioLimit, RatioLimit{Min: 24, Max: 12}.Encode()); err == nil {
		t.Error("inverted range accepted")
	}
	if err := f.Write(Kernel, UclkFixedCtr, 1); err == nil {
		t.Error("write to read-only counter accepted")
	}
	if _, err := f.Read(Kernel, 0xdead); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown register read error = %v", err)
	}
	if err := f.Write(Kernel, 0xdead, 0); err == nil {
		t.Error("unknown register write accepted")
	}
}

func TestUclkCountsUncoreCycles(t *testing.T) {
	f := NewFile()
	f.TickUclk(24, 10*sim.Millisecond) // 2.4 GHz for 10 ms = 24M ticks
	got, err := f.Read(Kernel, UclkFixedCtr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 24_000_000 {
		t.Errorf("UCLK = %d, want 24000000", got)
	}
	// Reading twice and differencing yields the frequency (§3's
	// methodology).
	f.TickUclk(15, 10*sim.Millisecond)
	got2, _ := f.Read(Kernel, UclkFixedCtr)
	if diff := got2 - got; diff != 15_000_000 {
		t.Errorf("second window ticks = %d, want 15000000", diff)
	}
}

func TestSetRatioRoundTrip(t *testing.T) {
	f := NewFile()
	want := RatioLimit{Min: 15, Max: 17}
	if err := f.SetRatio(want); err != nil {
		t.Fatal(err)
	}
	raw, err := f.Read(Kernel, UncoreRatioLimit)
	if err != nil {
		t.Fatal(err)
	}
	if got := DecodeRatioLimit(raw); got != want {
		t.Errorf("ratio after SetRatio = %+v, want %+v", got, want)
	}
}
