// Package msr models the model-specific-register interface through which
// system software observes and constrains the uncore (§2.2 and §3 of the
// paper). Two registers matter for the reproduction:
//
//   - UNCORE_RATIO_LIMIT (0x620): the OS writes the minimum and maximum
//     uncore ratios here (Figure 1); the UFS hardware only moves the uncore
//     frequency within that range. Setting min == max disables UFS.
//   - U_PMON_UCLK_FIXED_CTR (0x704): a free-running counter incremented at
//     every uncore clock tick; reading it twice yields the current uncore
//     frequency, which is how §3 measures frequency traces.
//
// Reads and writes are privilege-checked: the covert-channel threat model
// (§4.1) gives sender and receiver *unprivileged* access only, which is why
// the receiver must fall back to timing LLC loads (§4.2).
package msr

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Register addresses (Intel SDM numbering, for familiarity).
const (
	// UncoreRatioLimit is MSR_UNCORE_RATIO_LIMIT (0x620).
	UncoreRatioLimit uint32 = 0x620
	// UclkFixedCtr is U_PMON_UCLK_FIXED_CTR (0x704), the uncore clock
	// tick counter.
	UclkFixedCtr uint32 = 0x704
)

// Privilege is the access level of an MSR client.
type Privilege int

const (
	// User is an unprivileged process; MSR access is denied (§4.2).
	User Privilege = iota
	// Kernel is ring-0 system software.
	Kernel
)

// ErrPermission is returned when an unprivileged client touches an MSR.
var ErrPermission = errors.New("msr: permission denied (requires kernel privilege)")

// ErrUnknown is returned for an unimplemented register address.
var ErrUnknown = errors.New("msr: unknown register")

// RatioLimit is the decoded content of UNCORE_RATIO_LIMIT. Figure 1: bits
// 6:0 hold the maximum ratio and bits 14:8 the minimum ratio, both in units
// of 100 MHz.
type RatioLimit struct {
	Min, Max sim.Freq
}

// Encode packs the limit into the register layout of Figure 1.
func (rl RatioLimit) Encode() uint64 {
	return uint64(rl.Max&0x7f) | uint64(rl.Min&0x7f)<<8
}

// DecodeRatioLimit unpacks a raw UNCORE_RATIO_LIMIT value.
func DecodeRatioLimit(raw uint64) RatioLimit {
	return RatioLimit{
		Max: sim.Freq(raw & 0x7f),
		Min: sim.Freq(raw >> 8 & 0x7f),
	}
}

// Validate checks that the limit is usable: ratios must be positive and
// min must not exceed max.
func (rl RatioLimit) Validate() error {
	if rl.Min <= 0 || rl.Max <= 0 {
		return fmt.Errorf("msr: non-positive uncore ratio %v..%v", rl.Min, rl.Max)
	}
	if rl.Min > rl.Max {
		return fmt.Errorf("msr: uncore ratio min %v above max %v", rl.Min, rl.Max)
	}
	return nil
}

// Fixed reports whether the limit pins the uncore to a single frequency,
// which disables UFS (§2.2.1: "UFS is also disabled if the OS sets the
// minimum and maximum uncore frequencies to be the same").
func (rl RatioLimit) Fixed() bool { return rl.Min == rl.Max }

// File is one socket's MSR register file. The uncore clock counter is
// maintained by the UFS governor via TickUclk.
type File struct {
	ratio RatioLimit
	uclk  uint64
}

// NewFile returns a register file with the platform-default uncore range
// 1.2–2.4 GHz (Table 1).
func NewFile() *File {
	return &File{ratio: RatioLimit{Min: sim.UncoreMinDefault, Max: sim.UncoreMaxDefault}}
}

// Reset restores the register file to its power-on state: the
// platform-default ratio limit and a zeroed uncore clock counter.
func (f *File) Reset() {
	f.ratio = RatioLimit{Min: sim.UncoreMinDefault, Max: sim.UncoreMaxDefault}
	f.uclk = 0
}

// Read returns the value of register addr at privilege p.
func (f *File) Read(p Privilege, addr uint32) (uint64, error) {
	if p != Kernel {
		return 0, ErrPermission
	}
	switch addr {
	case UncoreRatioLimit:
		return f.ratio.Encode(), nil
	case UclkFixedCtr:
		return f.uclk, nil
	default:
		return 0, fmt.Errorf("%w: %#x", ErrUnknown, addr)
	}
}

// Write stores value into register addr at privilege p. Writes to the
// read-only UCLK counter are rejected.
func (f *File) Write(p Privilege, addr uint32, value uint64) error {
	if p != Kernel {
		return ErrPermission
	}
	switch addr {
	case UncoreRatioLimit:
		rl := DecodeRatioLimit(value)
		if err := rl.Validate(); err != nil {
			return err
		}
		f.ratio = rl
		return nil
	case UclkFixedCtr:
		return fmt.Errorf("msr: U_PMON_UCLK_FIXED_CTR is read-only")
	default:
		return fmt.Errorf("%w: %#x", ErrUnknown, addr)
	}
}

// Ratio returns the current uncore ratio limit. The UFS governor consults
// this every epoch.
func (f *File) Ratio() RatioLimit { return f.ratio }

// SetRatio is a convenience kernel-side write of UNCORE_RATIO_LIMIT.
func (f *File) SetRatio(rl RatioLimit) error {
	return f.Write(Kernel, UncoreRatioLimit, rl.Encode())
}

// TickUclk advances the uncore clock counter by the number of uncore cycles
// elapsed while running at freq for duration d. Called by the governor.
func (f *File) TickUclk(freq sim.Freq, d sim.Time) {
	f.uclk += uint64(freq.CyclesIn(d))
}

// Uclk returns the raw uncore tick count (kernel-only via Read; this
// accessor exists for the governor and tests).
func (f *File) Uclk() uint64 { return f.uclk }
