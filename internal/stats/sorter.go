package stats

import "sort"

// Sorter computes order statistics over a reusable scratch buffer.
// Percentile and friends copy and sort their input on every call, which
// is the right contract for one-shot summaries but allocates O(n) per
// call; sweep loops that take a median per grid cell (Figures 3 and 4
// sample ~400 frequency points per cell) pay that on every iteration.
// A Sorter owns the copy: Load fills the buffer in place, one sort
// serves any number of quantile reads, and the buffer's capacity is
// retained across Loads.
//
// The results are bit-identical to the package functions — both paths
// share the same sort and the same interpolation.
type Sorter struct {
	buf    []float64
	sum    float64 // accumulated in arrival order, so Mean matches Mean(xs)
	sorted bool
}

// Reset clears the buffer for incremental filling with Add.
func (s *Sorter) Reset() {
	s.buf = s.buf[:0]
	s.sum = 0
	s.sorted = false
}

// Add appends one observation.
func (s *Sorter) Add(v float64) {
	s.buf = append(s.buf, v)
	s.sum += v
	s.sorted = false
}

// Load replaces the buffer contents with a copy of xs and returns the
// Sorter for chaining. xs is not modified or retained.
func (s *Sorter) Load(xs []float64) *Sorter {
	s.buf = append(s.buf[:0], xs...)
	s.sum = 0
	for _, x := range xs {
		s.sum += x
	}
	s.sorted = false
	return s
}

// Len returns the number of loaded observations.
func (s *Sorter) Len() int { return len(s.buf) }

func (s *Sorter) sort() {
	if !s.sorted {
		sort.Float64s(s.buf)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0..100) of the loaded values
// by the same linear interpolation as the package-level Percentile, or 0
// when nothing is loaded.
func (s *Sorter) Percentile(p float64) float64 {
	if len(s.buf) == 0 {
		return 0
	}
	s.sort()
	return percentileSorted(s.buf, p)
}

// Median returns the 50th percentile of the loaded values.
func (s *Sorter) Median() float64 { return s.Percentile(50) }

// Mean returns the arithmetic mean of the loaded values. The sum is
// accumulated in arrival order, so the result is bit-identical to
// Mean over the same values even after a quantile read has sorted the
// buffer.
func (s *Sorter) Mean() float64 {
	if len(s.buf) == 0 {
		return 0
	}
	return s.sum / float64(len(s.buf))
}

// Summarize computes the five-number Summary of the loaded values with
// a single sort.
func (s *Sorter) Summarize() Summary {
	return Summary{
		P1:     s.Percentile(1),
		P25:    s.Percentile(25),
		Median: s.Percentile(50),
		P75:    s.Percentile(75),
		P99:    s.Percentile(99),
		Mean:   s.Mean(),
		N:      len(s.buf),
	}
}

// percentileSorted interpolates the p-th percentile of an already-sorted
// slice; Percentile and Sorter both resolve through it so the two paths
// cannot drift.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
