// Package stats provides the summary statistics the paper's evaluation
// uses: medians and percentiles for latency distributions (Figure 8),
// binary entropy and channel capacity (§4.3.2), and trace resampling for
// the fingerprinting classifier (§5).
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs; it returns 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation, or 0 for an empty slice. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Summary is a five-number latency summary matching Figure 8's box plots.
type Summary struct {
	P1, P25, Median, P75, P99, Mean float64
	N                               int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		P1:     Percentile(xs, 1),
		P25:    Percentile(xs, 25),
		Median: Percentile(xs, 50),
		P75:    Percentile(xs, 75),
		P99:    Percentile(xs, 99),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// BinaryEntropy returns H(e) = −e·log2(e) − (1−e)·log2(1−e), the binary
// entropy function used in the channel-capacity metric of §4.3.2.
func BinaryEntropy(e float64) float64 {
	if e <= 0 || e >= 1 {
		return 0
	}
	return -e*math.Log2(e) - (1-e)*math.Log2(1-e)
}

// Capacity returns the channel capacity in bit/s for a raw transmission
// rate (bit/s) and bit error rate e: rate × (1 − H(e)), as in §4.3.2.
// Error rates above one half are clamped: a binary channel with e > 0.5
// carries the same information as its complement.
func Capacity(rate, e float64) float64 {
	if e > 0.5 {
		e = 1 - e
	}
	return rate * (1 - BinaryEntropy(e))
}

// ErrorRate compares two bit strings and returns the fraction that
// differ.
//
// Contract for mismatched lengths: every bit position carried by only
// one of the two strings counts as an error, and the rate is normalised
// by the longer length. A truncated receive therefore scores its missing
// tail as errors instead of hiding it (the receiver demonstrably did not
// get those bits), and an over-long receive is penalised for inventing
// bits rather than silently trimmed. Two empty strings are a perfect
// (if vacuous) transmission with rate 0. The result is always in [0, 1].
func ErrorRate(sent, got []int) float64 {
	long := len(sent)
	if len(got) > long {
		long = len(got)
	}
	if long == 0 {
		return 0
	}
	short := len(sent) + len(got) - long
	n := long - short // unmatched tail, all errors
	for i := 0; i < short; i++ {
		if sent[i] != got[i] {
			n++
		}
	}
	return float64(n) / float64(long)
}

// Resample linearly resamples xs to n points; it is used to normalise
// frequency traces before classification. An empty input yields zeros.
func Resample(xs []float64, n int) []float64 {
	out := make([]float64, n)
	if len(xs) == 0 || n == 0 {
		return out
	}
	if len(xs) == 1 {
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(max(n-1, 1))
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		if lo+1 >= len(xs) {
			out[i] = xs[len(xs)-1]
			continue
		}
		out[i] = xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	return out
}

// Euclidean returns the L2 distance between two equal-length vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: vector length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Confusion is a label-level confusion matrix for the classification
// attacks (§5): Counts[truth][predicted] accumulates test outcomes.
type Confusion struct {
	Labels []string
	Counts map[string]map[string]int
}

// NewConfusion returns an empty matrix over the given labels.
func NewConfusion(labels []string) *Confusion {
	cp := make([]string, len(labels))
	copy(cp, labels)
	return &Confusion{Labels: cp, Counts: map[string]map[string]int{}}
}

// Add records one test outcome.
func (c *Confusion) Add(truth, predicted string) {
	row := c.Counts[truth]
	if row == nil {
		row = map[string]int{}
		c.Counts[truth] = row
	}
	row[predicted]++
}

// Accuracy returns the diagonal fraction.
func (c *Confusion) Accuracy() float64 {
	total, hit := 0, 0
	for truth, row := range c.Counts {
		for pred, n := range row {
			total += n
			if pred == truth {
				hit += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// ConfusedPair is an off-diagonal entry.
type ConfusedPair struct {
	Truth, Predicted string
	Count            int
}

// MostConfused returns the top-k off-diagonal entries, most frequent
// first — the site pairs the attacker mixes up.
func (c *Confusion) MostConfused(k int) []ConfusedPair {
	var pairs []ConfusedPair
	for truth, row := range c.Counts {
		for pred, n := range row {
			if truth != pred && n > 0 {
				pairs = append(pairs, ConfusedPair{truth, pred, n})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Count != pairs[j].Count {
			return pairs[i].Count > pairs[j].Count
		}
		if pairs[i].Truth != pairs[j].Truth {
			return pairs[i].Truth < pairs[j].Truth
		}
		return pairs[i].Predicted < pairs[j].Predicted
	})
	if k < len(pairs) {
		pairs = pairs[:k]
	}
	return pairs
}
