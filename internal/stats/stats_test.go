package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if Median(xs) != 3 {
		t.Errorf("median = %v", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes wrong")
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanAndSummary(t *testing.T) {
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean not 0")
	}
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.P1 > s.P25 || s.P25 > s.Median || s.Median > s.P75 || s.P75 > s.P99 {
		t.Errorf("summary not ordered: %+v", s)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if BinaryEntropy(0.5) != 1 {
		t.Errorf("H(0.5) = %v", BinaryEntropy(0.5))
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H at extremes not 0")
	}
	if math.Abs(BinaryEntropy(0.11)-0.4999) > 0.01 {
		t.Errorf("H(0.11) = %v, want ≈0.5", BinaryEntropy(0.11))
	}
	// Symmetry.
	f := func(e float64) bool {
		e = math.Mod(math.Abs(e), 1)
		return math.Abs(BinaryEntropy(e)-BinaryEntropy(1-e)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacity(t *testing.T) {
	// §4.3.2: capacity = rate × (1 − H(e)).
	if got := Capacity(47.6, 0); got != 47.6 {
		t.Errorf("error-free capacity = %v", got)
	}
	if got := Capacity(100, 0.5); got != 0 {
		t.Errorf("chance-level capacity = %v", got)
	}
	// An inverted channel carries the same information.
	if math.Abs(Capacity(100, 0.9)-Capacity(100, 0.1)) > 1e-9 {
		t.Error("capacity not symmetric around 0.5")
	}
	if Capacity(50, 0.1) >= 50 || Capacity(50, 0.1) <= 0 {
		t.Errorf("Capacity(50, 0.1) = %v out of range", Capacity(50, 0.1))
	}
}

// TestErrorRate pins the mismatched-length contract: unmatched tail bits
// on either side are errors, normalised by the longer string.
func TestErrorRate(t *testing.T) {
	cases := []struct {
		name      string
		sent, got []int
		want      float64
	}{
		{"equal length, half wrong", []int{1, 0, 1, 1}, []int{1, 1, 1, 0}, 0.5},
		{"equal length, clean", []int{1, 0, 1}, []int{1, 0, 1}, 0},
		{"equal length, all wrong", []int{1, 1}, []int{0, 0}, 1},
		{"both empty", nil, nil, 0},
		{"truncated receive, clean prefix", []int{1, 0, 1, 1}, []int{1, 0}, 0.5},
		{"truncated receive, dirty prefix", []int{1, 0, 1, 1}, []int{0, 0}, 0.75},
		{"nothing received", []int{1, 0, 1, 1}, nil, 1},
		{"over-long receive, clean prefix", []int{1, 0}, []int{1, 0, 1, 1}, 0.5},
		{"over-long receive, dirty prefix", []int{1}, []int{0, 0}, 1},
		{"nothing sent, bits received", nil, []int{1, 0}, 1},
	}
	for _, c := range cases {
		if got := ErrorRate(c.sent, c.got); got != c.want {
			t.Errorf("%s: ErrorRate(%v, %v) = %v, want %v", c.name, c.sent, c.got, got, c.want)
		}
	}
	// The rate is always a valid probability, whatever the lengths.
	for _, pair := range [][2][]int{{nil, {1}}, {{1, 1, 1}, {0}}, {{0}, {1, 1, 1, 1}}} {
		if r := ErrorRate(pair[0], pair[1]); r < 0 || r > 1 {
			t.Errorf("ErrorRate(%v, %v) = %v outside [0, 1]", pair[0], pair[1], r)
		}
	}
}

func TestResample(t *testing.T) {
	up := Resample([]float64{0, 10}, 11)
	if len(up) != 11 || up[0] != 0 || up[10] != 10 || math.Abs(up[5]-5) > 1e-9 {
		t.Errorf("upsample = %v", up)
	}
	down := Resample([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(down) != 4 || down[0] != 1 || down[3] != 8 {
		t.Errorf("downsample = %v", down)
	}
	if got := Resample(nil, 4); len(got) != 4 {
		t.Error("empty input resample wrong length")
	}
	if got := Resample([]float64{7}, 3); got[0] != 7 || got[2] != 7 {
		t.Errorf("singleton resample = %v", got)
	}
}

func TestEuclidean(t *testing.T) {
	if Euclidean([]float64{0, 0}, []float64{3, 4}) != 5 {
		t.Error("distance wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestConfusion(t *testing.T) {
	c := NewConfusion([]string{"a", "b", "c"})
	c.Add("a", "a")
	c.Add("a", "a")
	c.Add("a", "b")
	c.Add("b", "b")
	c.Add("b", "c")
	c.Add("b", "c")
	if got := c.Accuracy(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
	top := c.MostConfused(2)
	if len(top) != 2 || top[0].Truth != "b" || top[0].Predicted != "c" || top[0].Count != 2 {
		t.Errorf("MostConfused = %+v", top)
	}
	if (&Confusion{Counts: map[string]map[string]int{}}).Accuracy() != 0 {
		t.Error("empty accuracy not 0")
	}
}
