package stats

import (
	"math/rand"
	"testing"
)

// Sorter must agree bit-for-bit with the copying functions: the golden
// outputs pin medians computed through either path.
func TestSorterMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Sorter
	for _, n := range []int{1, 2, 3, 17, 400} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*3 + 20
		}
		for _, p := range []float64{0, 1, 25, 50, 75, 99, 100, 33.3} {
			want := Percentile(xs, p)
			if got := s.Load(xs).Percentile(p); got != want {
				t.Errorf("n=%d p=%v: Sorter %v != Percentile %v", n, p, got, want)
			}
		}
		if got, want := s.Load(xs).Median(), Median(xs); got != want {
			t.Errorf("n=%d: Sorter median %v != %v", n, got, want)
		}
		if got, want := s.Load(xs).Summarize(), Summarize(xs); got != want {
			t.Errorf("n=%d: Sorter summary %+v != %+v", n, got, want)
		}
	}
}

func TestSorterEmptyAndReuse(t *testing.T) {
	var s Sorter
	if s.Percentile(50) != 0 || s.Median() != 0 {
		t.Error("empty sorter must report 0")
	}
	// Incremental fill matches Load.
	s.Reset()
	for _, v := range []float64{5, 1, 3} {
		s.Add(v)
	}
	if got := s.Median(); got != 3 {
		t.Errorf("incremental median = %v, want 3", got)
	}
	// A later Add after a sorted read re-sorts.
	s.Add(100)
	s.Add(101)
	if got := s.Median(); got != 5 {
		t.Errorf("median after growth = %v, want 5", got)
	}
	// Loading a shorter input must drop the old tail entirely.
	if got := s.Load([]float64{9}).Median(); got != 9 || s.Len() != 1 {
		t.Errorf("reload = %v (len %d), want 9 (len 1)", got, s.Len())
	}
	// Load must not modify its input.
	in := []float64{3, 1, 2}
	s.Load(in).Median()
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Load mutated its input: %v", in)
	}
}

// The point of the Sorter: repeated loads reuse one buffer.
func TestSorterDoesNotAllocateSteadyState(t *testing.T) {
	xs := make([]float64, 512)
	for i := range xs {
		xs[i] = float64(i * 7 % 311)
	}
	var s Sorter
	s.Load(xs) // warm the buffer
	allocs := testing.AllocsPerRun(50, func() {
		s.Load(xs)
		s.Summarize()
	})
	if allocs != 0 {
		t.Errorf("steady-state Load+Summarize allocates %.1f/op, want 0", allocs)
	}
}
