package timing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
)

func TestLatencyAnchors(t *testing.T) {
	p := Default()
	// Fitted to Figure 8: 0-hop ≈58 cycles at 2.4 GHz, ≈80 at 1.5 GHz.
	if got := p.LLCMeanCycles(26, 24, 0, 0); math.Abs(got-58) > 1 {
		t.Errorf("0-hop at 2.4GHz = %.1f cycles, want ≈58", got)
	}
	if got := p.LLCMeanCycles(26, 15, 0, 0); math.Abs(got-80) > 1 {
		t.Errorf("0-hop at 1.5GHz = %.1f cycles, want ≈80", got)
	}
}

func TestLatencyMonotonicity(t *testing.T) {
	p := Default()
	// Lower frequency → higher latency; more hops → higher latency.
	for f := sim.Freq(15); f < 24; f++ {
		if p.LLCMeanCycles(26, f, 1, 0) <= p.LLCMeanCycles(26, f+1, 1, 0) {
			t.Errorf("latency not decreasing between %v and %v", f, f+1)
		}
	}
	for h := 0; h < 6; h++ {
		if p.LLCMeanCycles(26, 20, h, 0) >= p.LLCMeanCycles(26, 20, h+1, 0) {
			t.Errorf("latency not increasing from %d to %d hops", h, h+1)
		}
	}
	// Contention adds uncore cycles.
	if p.LLCMeanCycles(26, 20, 2, 10) <= p.LLCMeanCycles(26, 20, 2, 0) {
		t.Error("contention has no effect")
	}
}

func TestLevelOrdering(t *testing.T) {
	p := Default()
	rng := sim.NewRand(1)
	mean := func(level cache.Level) float64 {
		var s float64
		for i := 0; i < 500; i++ {
			s += p.SampleCycles(level, 26, 20, 1, 0, rng)
		}
		return s / 500
	}
	l1, l2, llc, rem, mem := mean(cache.LevelL1), mean(cache.LevelL2), mean(cache.LevelLLC), mean(cache.LevelRemote), mean(cache.LevelMem)
	if !(l1 < l2 && l2 < llc && llc < rem && rem < mem) {
		t.Errorf("level latencies not ordered: L1=%.0f L2=%.0f LLC=%.0f REM=%.0f MEM=%.0f", l1, l2, llc, rem, mem)
	}
}

func TestUncoreFromLatencyInverts(t *testing.T) {
	p := Default()
	for _, h := range []int{0, 1, 2, 3} {
		for f := sim.Freq(15); f <= 24; f++ {
			lat := p.LLCMeanCycles(26, f, h, 0)
			if got := p.UncoreFromLatency(lat, 26, h, 12, 24); got != f {
				t.Errorf("invert(lat(%v, %d hops)) = %v", f, h, got)
			}
		}
	}
	// Degenerate latencies clamp instead of exploding.
	if got := p.UncoreFromLatency(1, 26, 0, 12, 24); got != 24 {
		t.Errorf("tiny latency → %v, want clamp to max", got)
	}
	if got := p.UncoreFromLatency(10_000, 26, 0, 12, 24); got != 12 {
		t.Errorf("huge latency → %v, want clamp to min", got)
	}
}

func TestAccessTimesAndMLP(t *testing.T) {
	p := Default()
	// The traffic loop overlaps TrafficMLP accesses; the chase does not.
	tr := p.TrafficAccessTime(26, 24, 0)
	ch := p.ChaseAccessTime(26, 24, 0)
	ratio := float64(ch) / float64(tr)
	if math.Abs(ratio-p.TrafficMLP) > 0.01 {
		t.Errorf("chase/traffic spacing ratio %.2f, want MLP %.0f", ratio, p.TrafficMLP)
	}
	// Reference rate is the reciprocal of the traffic spacing.
	rate := p.ReferenceRate(26, 24)
	if math.Abs(rate*tr.Seconds()-1) > 0.01 {
		t.Errorf("reference rate inconsistent with spacing")
	}
}

func TestSampleCyclesPositive(t *testing.T) {
	p := Default()
	rng := sim.NewRand(9)
	f := func(level uint8, hops uint8) bool {
		lv := cache.Level(level % 5)
		c := p.SampleCycles(lv, 26, 15, int(hops%8), 0, rng)
		return c >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDriftProperties(t *testing.T) {
	p := Default()
	rng := sim.NewRand(3)
	var d Drift
	// Mean near zero, bounded magnitude, correlation over short gaps.
	var sum, sumSq float64
	const n = 5000
	prev := d.Sample(p, 0, rng)
	var corr float64
	for i := 1; i <= n; i++ {
		v := d.Sample(p, sim.Time(i)*p.DriftPeriod, rng)
		sum += v
		sumSq += v * v
		corr += v * prev
		prev = v
	}
	mean := sum / n
	if math.Abs(mean) > 0.1 {
		t.Errorf("drift mean %.3f, want ≈0", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(math.Sqrt(variance)-p.DriftStd) > 0.15*p.DriftStd {
		t.Errorf("drift stddev %.3f, want ≈%.3f", math.Sqrt(variance), p.DriftStd)
	}
	if corr/n < 0.5*variance {
		t.Errorf("drift not positively correlated: %v vs var %v", corr/n, variance)
	}
	// A long gap resamples rather than iterating thousands of steps.
	d.Sample(p, sim.Time(n+1000)*p.DriftPeriod, rng)
}

func TestDriftDisabled(t *testing.T) {
	p := Default()
	p.DriftStd = 0
	var d Drift
	if v := d.Sample(p, sim.Second, sim.NewRand(1)); v != 0 {
		t.Errorf("disabled drift returned %v", v)
	}
}
