// Package timing converts functional access results (which cache level,
// how many mesh hops, how much contention) into latencies in core cycles,
// the unit the paper's receiver observes through rdtscp (§4.2, Figure 8).
//
// The model splits an LLC access into a core-clock part (L1/L2 lookups,
// load-store machinery) and an uncore-clock part (slice pipeline plus mesh
// traversal). Only the uncore part stretches when the uncore slows down:
//
//	latency(core cycles) = Lcore + (Lslice + 2·hops·Lhop + contention) · fcore/funcore + noise
//
// The constants are fitted to Figure 8: a 0-hop LLC hit costs ≈58 cycles
// at 2.4 GHz and ≈80 cycles at 1.5 GHz, with each hop adding ≈2 uncore
// cycles per direction. This is the dependency the whole covert channel
// rests on: LLC latency is a monotone, invertible function of the uncore
// frequency.
package timing

import (
	"math"

	"repro/internal/cache"
	"repro/internal/sim"
)

// Params holds the latency-model constants. All cycle values are in the
// clock domain indicated by their name.
type Params struct {
	// L1Cycles is an L1 hit, in core cycles.
	L1Cycles float64
	// L2Cycles is an L2 hit, in core cycles.
	L2Cycles float64
	// LLCCoreCycles is the core-clock-domain constant of an LLC access
	// (address generation, L1/L2 lookup, fill) in core cycles.
	LLCCoreCycles float64
	// LLCSliceUncore is the uncore-clock-domain cost of the slice
	// pipeline and mesh injection, in uncore cycles.
	LLCSliceUncore float64
	// HopUncore is the per-hop, per-direction mesh traversal cost in
	// uncore cycles.
	HopUncore float64
	// MemCoreCycles is the DRAM-array part of a full miss, in core
	// cycles (frequency independent).
	MemCoreCycles float64
	// MemUncoreCycles is the additional uncore-domain cost of a miss
	// (IMC queues, mesh to the controller tile), in uncore cycles.
	MemUncoreCycles float64
	// FenceCycles is the serialization overhead of the measurement
	// loop's mfence/lfence/rdtscp pair (Listing 3) in core cycles. It
	// keeps the receiver's access density low (§4.2).
	FenceCycles float64
	// NoiseStd is the gaussian per-sample measurement noise, in core
	// cycles.
	NoiseStd float64
	// DriftStd, DriftRho and DriftPeriod describe slowly varying
	// correlated noise (prefetcher/TLB/thermal phases): an AR(1)
	// process updated every DriftPeriod that offsets all of a thread's
	// samples. It bounds how small a latency shift a window mean can
	// resolve, which is what limits the channel at short intervals.
	DriftStd    float64
	DriftRho    float64
	DriftPeriod sim.Time
	// TailProb and TailCycles model occasional long-tail samples
	// (TLB walks, snoop delays): with probability TailProb an access
	// costs TailCycles extra. Drives the 1–99 % whiskers of Figure 8.
	TailProb   float64
	TailCycles float64
	// TrafficMLP is the memory-level parallelism of the traffic loop
	// (Listing 1): its independent accesses overlap, so per-thread
	// throughput is TrafficMLP/latency. The stalling loop (Listing 2)
	// has MLP 1 by construction.
	TrafficMLP float64
}

// Default returns the constants fitted to the paper's platform.
func Default() Params {
	return Params{
		L1Cycles:        4,
		L2Cycles:        14,
		LLCCoreCycles:   21.33,
		LLCSliceUncore:  33.85,
		HopUncore:       2.0,
		MemCoreCycles:   120,
		MemUncoreCycles: 40,
		FenceCycles:     90,
		NoiseStd:        1.2,
		DriftStd:        0.5,
		DriftRho:        0.85,
		DriftPeriod:     sim.Millisecond,
		TailProb:        0.01,
		TailCycles:      14,
		TrafficMLP:      8,
	}
}

// uncoreScale is the stretch factor applied to uncore-domain cycles when
// expressed in core cycles.
func uncoreScale(fCore, fUncore sim.Freq) float64 {
	return fCore.GHz() / fUncore.GHz()
}

// LLCMeanCycles returns the noise-free mean latency of an LLC hit in core
// cycles, for hops mesh hops and contention extra uncore cycles.
func (p Params) LLCMeanCycles(fCore, fUncore sim.Freq, hops int, contention float64) float64 {
	u := p.LLCSliceUncore + 2*float64(hops)*p.HopUncore + contention
	return p.LLCCoreCycles + u*uncoreScale(fCore, fUncore)
}

// MemMeanCycles returns the noise-free mean latency of a full miss served
// by memory, in core cycles.
func (p Params) MemMeanCycles(fCore, fUncore sim.Freq, hops int, contention float64) float64 {
	u := p.LLCSliceUncore + 2*float64(hops)*p.HopUncore + p.MemUncoreCycles + contention
	return p.LLCCoreCycles + p.MemCoreCycles + u*uncoreScale(fCore, fUncore)
}

// noise draws the additive measurement noise in core cycles.
func (p Params) noise(rng *sim.Rand) float64 {
	n := rng.Norm(0, p.NoiseStd)
	if rng.Bool(p.TailProb) {
		n += p.TailCycles * (0.5 + rng.Float64())
	}
	return n
}

// SampleCycles returns one observed latency, in whole core cycles, for an
// access served at the given level. hops and contention apply to LLC and
// memory accesses.
func (p Params) SampleCycles(level cache.Level, fCore, fUncore sim.Freq, hops int, contention float64, rng *sim.Rand) float64 {
	var mean float64
	switch level {
	case cache.LevelL1:
		mean = p.L1Cycles
	case cache.LevelL2:
		mean = p.L2Cycles
	case cache.LevelLLC:
		mean = p.LLCMeanCycles(fCore, fUncore, hops, contention)
	case cache.LevelRemote:
		// Directory-forwarded snoop from another core's private cache:
		// the home-slice trip plus a second mesh traversal, still far
		// cheaper than DRAM.
		mean = p.LLCMeanCycles(fCore, fUncore, hops, contention) +
			(p.LLCSliceUncore/2+4*p.HopUncore)*uncoreScale(fCore, fUncore)
	default:
		mean = p.MemMeanCycles(fCore, fUncore, hops, contention)
	}
	lat := mean + p.noise(rng)
	if lat < 1 {
		lat = 1
	}
	return math.Round(lat)
}

// Drift is the state of one thread's correlated noise process.
type Drift struct {
	val float64
	at  sim.Time
	set bool
}

// Sample advances the drift process to now and returns the current offset
// in core cycles.
func (d *Drift) Sample(p Params, now sim.Time, rng *sim.Rand) float64 {
	if p.DriftStd <= 0 || p.DriftPeriod <= 0 {
		return 0
	}
	if !d.set || now-d.at > 50*p.DriftPeriod {
		d.val = rng.Norm(0, p.DriftStd)
		d.at = now
		d.set = true
		return d.val
	}
	innov := p.DriftStd * math.Sqrt(1-p.DriftRho*p.DriftRho)
	for d.at+p.DriftPeriod <= now {
		d.val = p.DriftRho*d.val + rng.Norm(0, innov)
		d.at += p.DriftPeriod
	}
	return d.val
}

// UncoreFromLatency inverts the LLC-latency model: given an observed mean
// latency (core cycles) for an LLC hit at a known hop distance, it returns
// the implied uncore frequency snapped to the nearest 100 MHz operating
// point within [lo, hi]. This is the receiver's §4.2 primitive: inferring
// the uncore frequency from timing alone, without MSR access.
func (p Params) UncoreFromLatency(latCycles float64, fCore sim.Freq, hops int, lo, hi sim.Freq) sim.Freq {
	u := p.LLCSliceUncore + 2*float64(hops)*p.HopUncore
	denom := latCycles - p.LLCCoreCycles
	if denom <= 0 {
		return hi
	}
	ghz := u * fCore.GHz() / denom
	f := sim.Freq(math.Round(ghz * 10))
	return f.Clamp(lo, hi)
}

// TrafficAccessTime returns the average spacing between LLC accesses of
// one traffic-loop thread (Listing 1) at the given frequencies and hop
// distance: latency divided by the loop's memory-level parallelism.
func (p Params) TrafficAccessTime(fCore, fUncore sim.Freq, hops int) sim.Time {
	lat := p.LLCMeanCycles(fCore, fUncore, hops, 0)
	return fCore.TimeFor(lat / p.TrafficMLP)
}

// ChaseAccessTime returns the spacing between accesses of a pointer-chase
// thread (Listing 2): fully serialized, MLP 1.
func (p Params) ChaseAccessTime(fCore, fUncore sim.Freq, hops int) sim.Time {
	lat := p.LLCMeanCycles(fCore, fUncore, hops, 0)
	return fCore.TimeFor(lat)
}

// ReferenceRate returns the LLC access rate (accesses per second) of one
// reference traffic thread (0-hop, full MLP) at the given frequencies.
// The UFS governor normalizes observed access counts by this rate, so
// "one busy traffic thread" is one unit of LLC utilisation.
func (p Params) ReferenceRate(fCore, fUncore sim.Freq) float64 {
	return 1 / p.TrafficAccessTime(fCore, fUncore, 0).Seconds()
}
