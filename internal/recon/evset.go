package recon

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/system"
)

// Eviction-set construction by timing: the second reconnaissance
// primitive the LLC channels presuppose. The attacker controls the low
// address bits of its own buffer (so candidates share the target's L2 set
// and architectural LLC set bits) but not the slice hash; it must find,
// purely by timing, which candidates actually collide with the target in
// the same physical slice and set.
//
// The test primitive parks the target in the LLC, streams a candidate set
// through the LLC (each candidate pushed out of the private L2 so it
// reaches the shared level), and then times the target: a DRAM-latency
// reload means the set evicted it. A greedy reduction then shrinks a
// working set to a minimal one.
//
// Under the randomized-indexing defence the same procedure fails to find
// any evicting subset — the candidates' physical sets no longer follow
// the architectural bits — which is exactly why the paper's Table 3 marks
// the set-conflict channels broken there while SPP survives.

// evictionProbe runs the construction inside the simulated machine.
type evictionProbe struct {
	geom cache.Geometry

	// requests are executed one per quantum step; results are written
	// back by the workload.
	test    func(ctx *system.Ctx) bool
	result  chan bool
	pending bool
}

func (p *evictionProbe) Step(ctx *system.Ctx) system.Activity {
	if p.pending {
		p.pending = false
		p.result <- p.test(ctx)
	}
	rest := ctx.CoreFreq().CyclesIn(ctx.Remaining())
	return system.Activity{Active: true, Cycles: rest}
}

// parkAndSpill loads a line and walks an L2-set filler so it lands in
// the LLC. The filler lines keep the line's L2 set but flip the extra
// LLC-index bit (an odd multiple of the L2 set count), so they land in
// the sibling LLC set and never pollute the set under test.
func parkAndSpill(ctx *system.Ctx, geom cache.Geometry, line cache.Line) {
	ctx.Access(line)
	base := line &^ cache.Line(2*geom.L2Sets-1)
	low := line & cache.Line(geom.L2Sets-1)
	for k := 0; k <= geom.L2Ways+4; k++ {
		ctx.Access(base + cache.Line((2*k+1)*geom.L2Sets) + low)
	}
}

// evicts reports whether streaming set through the LLC evicts target.
func evicts(ctx *system.Ctx, geom cache.Geometry, target cache.Line, set []cache.Line) bool {
	parkAndSpill(ctx, geom, target)
	for _, c := range set {
		parkAndSpill(ctx, geom, c)
	}
	return ctx.TimedAccess(target) > 200
}

// BuildEvictionSet finds a minimal set of lines (from an
// attacker-generated candidate pool sharing target's architectural set
// bits) that evicts target from the LLC, using timing only. It returns an
// error when no evicting subset exists — the randomized-indexing outcome.
//
// The machine should be otherwise quiet; the probe runs on the given
// socket and core. poolSize bounds the candidate pool (the LLC
// associativity times the slice count, with slack, is enough by the
// pigeonhole argument of §3.1).
func BuildEvictionSet(m *system.Machine, socket, core int, target cache.Line, poolSize int) ([]cache.Line, error) {
	s := m.Socket(socket)
	geom := s.Hier.Geometry()
	if poolSize <= 0 {
		poolSize = geom.Slices*geom.LLCWays + 3*geom.Slices
	}

	// Candidates share the target's LLC-set-index bits; strides avoid
	// reusing the park fillers' address pattern.
	pool := make([]cache.Line, 0, poolSize)
	for k := 1; len(pool) < poolSize; k++ {
		pool = append(pool, target+cache.Line(k*geom.LLCSets)*4099)
	}

	probe := &evictionProbe{geom: geom, result: make(chan bool, 1)}
	th := m.Spawn(fmt.Sprintf("evset-probe@%v", m.Now()), socket, core, 0, probe)
	defer th.Stop()

	runTest := func(set []cache.Line) bool {
		probe.test = func(ctx *system.Ctx) bool { return evicts(ctx, geom, target, set) }
		probe.pending = true
		for {
			m.Run(m.Config().Quantum)
			select {
			case r := <-probe.result:
				return r
			default:
			}
		}
	}

	if !runTest(pool) {
		return nil, fmt.Errorf("recon: candidate pool of %d lines does not evict the target (randomized indexing?)", poolSize)
	}

	// Greedy group-testing reduction: drop chunks whose removal keeps
	// the set evicting.
	work := pool
	for len(work) > geom.LLCWays {
		chunk := len(work) / (geom.LLCWays + 1)
		if chunk < 1 {
			chunk = 1
		}
		reduced := false
		for start := 0; start < len(work); start += chunk {
			end := start + chunk
			if end > len(work) {
				end = len(work)
			}
			trial := make([]cache.Line, 0, len(work)-(end-start))
			trial = append(trial, work[:start]...)
			trial = append(trial, work[end:]...)
			if len(trial) > 0 && runTest(trial) {
				work = trial
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	if !runTest(work) {
		return nil, fmt.Errorf("recon: reduction lost the eviction property")
	}
	return work, nil
}
