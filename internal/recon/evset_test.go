package recon

import (
	"testing"

	"repro/internal/cache"
)

func TestBuildEvictionSetByTiming(t *testing.T) {
	m := newMachine(5)
	s := m.Socket(0)
	target := cache.Line(1<<24 | 0x2AB)
	set, err := BuildEvictionSet(m, 0, 2, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	geom := s.Hier.Geometry()
	if len(set) == 0 || len(set) > 3*geom.LLCWays {
		t.Fatalf("eviction set size %d implausible", len(set))
	}
	// The construction used timing only; verify against ground truth:
	// a healthy majority of the survivors collide with the target's
	// physical (slice, set).
	slice, idx := s.Hier.SliceOf(0, target), s.Hier.LLCSetOf(0, target)
	colliding := 0
	for _, l := range set {
		if s.Hier.SliceOf(0, l) == slice && s.Hier.LLCSetOf(0, l) == idx {
			colliding++
		}
	}
	if colliding < geom.LLCWays {
		t.Errorf("only %d/%d survivors collide with the target (need ≥%d to evict)",
			colliding, len(set), geom.LLCWays)
	}
}

func TestBuildEvictionSetFailsUnderRandomizedIndexing(t *testing.T) {
	m := newMachine(6)
	s := m.Socket(0)
	// The randomized-LLC defence: attacker and everyone else get keyed
	// set indices, so architectural-bit collisions vanish.
	s.Hier.SetIndexFn(cache.KeyedIndex(map[cache.Domain]uint64{0: 0xD00D}))
	target := cache.Line(1<<24 | 0x2AB)
	if _, err := BuildEvictionSet(m, 0, 2, target, 0); err == nil {
		t.Fatal("timing-based eviction set construction succeeded under randomized indexing")
	}
}

func TestBuildEvictionSetDeterministic(t *testing.T) {
	build := func() int {
		m := newMachine(7)
		set, err := BuildEvictionSet(m, 0, 2, cache.Line(1<<25|0x155), 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(set)
	}
	if build() != build() {
		t.Error("same seed produced different eviction sets")
	}
}
