// Package recon implements the unprivileged reconnaissance step the
// paper's attacks presuppose: an attacker "cannot access the physical
// address of a given virtual address, [and] may not directly know the LLC
// slice a virtual address is mapped to. However, the user can infer this
// mapping indirectly using timing information, as access latencies (from
// a specific core) may vary across different LLC slices" (§2.1).
//
// The discovery procedure measures a line's LLC-hit latency from several
// cores; each measurement implies a mesh hop distance, and the vector of
// distances identifies the home tile uniquely on the die grid. The
// attacker first pins the uncore frequency with its own keeper thread
// (heavy far-slice traffic holds it at the maximum, §3.1), so latency
// differences reflect distance rather than UFS.
package recon

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/topo"
	"repro/internal/workload"
)

// proberState collects latency samples of one line from one core.
type proberState struct {
	target  cache.Line
	filler  []cache.Line
	samples []float64
	limit   int
	pos     int
}

// Step implements system.Workload: it keeps the target line bouncing
// between the prober's L2 and the LLC (walking a same-L2-set filler list
// evicts it) and times the LLC-served reloads.
func (p *proberState) Step(ctx *system.Ctx) system.Activity {
	for len(p.samples) < p.limit && ctx.Remaining() > 0 {
		lat := ctx.TimedAccess(p.target)
		// Only LLC-served samples carry the hop signal; L1/L2 hits
		// (short) and cold misses (long) are discarded.
		if lat > 40 && lat < 150 {
			p.samples = append(p.samples, lat)
		}
		// Push the target back out to the LLC.
		for i := 0; i < len(p.filler); i++ {
			ctx.Access(p.filler[p.pos])
			p.pos = (p.pos + 1) % len(p.filler)
		}
	}
	rest := ctx.CoreFreq().CyclesIn(ctx.Remaining())
	return system.Activity{Active: true, Cycles: rest}
}

// sameL2SetFiller returns lines sharing the target's L2 set (pure address
// arithmetic — L2 set bits are untranslated page-offset-adjacent bits the
// attacker controls).
func sameL2SetFiller(geom cache.Geometry, target cache.Line, n int) []cache.Line {
	out := make([]cache.Line, 0, n)
	for k := 1; len(out) < n; k++ {
		out = append(out, target+cache.Line(k*geom.L2Sets))
	}
	return out
}

// Profile measures the mean LLC latency of line from every core of the
// socket, returning one value per core ID. samplesPerCore sets the
// precision. The machine must be otherwise quiet; Profile spawns (and
// stops) its own frequency keeper.
func Profile(m *system.Machine, socket int, line cache.Line, samplesPerCore int) ([]float64, error) {
	s := m.Socket(socket)
	die := s.Die
	if samplesPerCore <= 0 {
		samplesPerCore = 200
	}

	// Keeper: hold the uncore at the maximum so latency reflects
	// distance, not frequency.
	kslice, ok := die.SliceAtHops(die.NumCores()-1, 3)
	if !ok {
		kslice, _ = die.SliceAtHops(die.NumCores()-1, 2)
	}
	keeper := m.Spawn("recon-keeper", socket, die.NumCores()-1, 0, &workload.Traffic{Slice: kslice})
	m.Run(150 * sim.Millisecond) // let the keeper pin the frequency

	geom := s.Hier.Geometry()
	means := make([]float64, die.NumCores())
	for core := 0; core < die.NumCores()-1; core++ {
		p := &proberState{
			target: line,
			filler: sameL2SetFiller(geom, line, geom.L2Ways+4),
			limit:  samplesPerCore,
		}
		th := m.Spawn(fmt.Sprintf("recon-probe-%d@%v", core, m.Now()), socket, core, 0, p)
		for len(p.samples) < samplesPerCore {
			m.Run(5 * sim.Millisecond)
		}
		th.Stop()
		var sum float64
		for _, v := range p.samples {
			sum += v
		}
		means[core] = sum / float64(len(p.samples))
	}
	keeper.Stop()
	// The keeper's own core cannot probe; mark it unknown.
	means[die.NumCores()-1] = math.NaN()
	return means, nil
}

// DiscoverSlice returns the most likely home slice of line given its
// per-core latency profile: the slice whose hop-distance vector best
// explains the latencies (least squares against an affine latency model
// fitted per candidate).
func DiscoverSlice(die *topo.Die, profile []float64) int {
	best, bestErr := 0, math.Inf(1)
	for slice := 0; slice < die.NumSlices(); slice++ {
		st := die.SliceCoord(slice)
		// Fit latency ≈ a + b·hops by least squares over the probed
		// cores, then score the residual.
		var n, sx, sy, sxx, sxy float64
		for core := 0; core < die.NumCores(); core++ {
			if math.IsNaN(profile[core]) {
				continue
			}
			h := float64(die.CoreCoord(core).Hops(st))
			n++
			sx += h
			sy += profile[core]
			sxx += h * h
			sxy += h * profile[core]
		}
		denom := n*sxx - sx*sx
		if denom == 0 {
			continue
		}
		b := (n*sxy - sx*sy) / denom
		a := (sy - b*sx) / n
		if b <= 0 {
			// Farther slices must be slower; a non-positive slope
			// means the candidate cannot explain the profile.
			continue
		}
		var resid float64
		for core := 0; core < die.NumCores(); core++ {
			if math.IsNaN(profile[core]) {
				continue
			}
			h := float64(die.CoreCoord(core).Hops(st))
			d := profile[core] - (a + b*h)
			resid += d * d
		}
		if resid < bestErr {
			best, bestErr = slice, resid
		}
	}
	return best
}
