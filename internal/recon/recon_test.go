package recon

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/system"
)

func newMachine(seed uint64) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

func TestDiscoverSliceFromSyntheticProfile(t *testing.T) {
	// A noise-free profile generated from the latency model must point
	// at the right slice for every slice.
	m := newMachine(1)
	die := m.Socket(0).Die
	tp := m.Config().Timing
	for slice := 0; slice < die.NumSlices(); slice++ {
		profile := make([]float64, die.NumCores())
		for core := 0; core < die.NumCores(); core++ {
			h := die.CoreCoord(core).Hops(die.SliceCoord(slice))
			profile[core] = tp.LLCMeanCycles(m.Config().CoreFreq, 24, h, 0)
		}
		profile[die.NumCores()-1] = math.NaN() // keeper core not probed
		if got := DiscoverSlice(die, profile); got != slice {
			t.Errorf("slice %d recovered as %d", slice, got)
		}
	}
}

func TestProfileAndDiscoverEndToEnd(t *testing.T) {
	// The full unprivileged workflow: pick lines, time them from every
	// core, and recover their home slices — §2.1's indirect inference.
	m := newMachine(2)
	s := m.Socket(0)
	correct, total := 0, 0
	for i := 0; i < 4; i++ {
		line := cache.Line(1<<22 + i*8191)
		truth := s.Hier.SliceOf(0, line)
		profile, err := Profile(m, 0, line, 150)
		if err != nil {
			t.Fatal(err)
		}
		if got := DiscoverSlice(s.Die, profile); got == truth {
			correct++
		}
		total++
	}
	if correct < total-1 {
		t.Errorf("recovered %d/%d slices by timing", correct, total)
	}
}

func TestProfileShapeSane(t *testing.T) {
	m := newMachine(3)
	line := cache.Line(1 << 23)
	profile, err := Profile(m, 0, line, 100)
	if err != nil {
		t.Fatal(err)
	}
	die := m.Socket(0).Die
	if len(profile) != die.NumCores() {
		t.Fatalf("profile has %d entries", len(profile))
	}
	if !math.IsNaN(profile[die.NumCores()-1]) {
		t.Error("keeper core has a latency entry")
	}
	// The core co-located with the home slice must be among the
	// fastest observers.
	truth := m.Socket(0).Hier.SliceOf(0, line)
	home := die.CoreIDAt(die.SliceCoord(truth))
	if home >= 0 && home < die.NumCores()-1 {
		faster := 0
		for c, v := range profile {
			if c != home && !math.IsNaN(v) && v < profile[home]-1 {
				faster++
			}
		}
		if faster > 3 {
			t.Errorf("%d cores read clearly faster than the home core", faster)
		}
	}
}
