package ufs

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/msr"
	"repro/internal/sim"
)

func newGov() (*Governor, *msr.File) {
	f := msr.NewFile()
	g := NewGovernor(DefaultParams(), f, sim.NewRand(1))
	return g, f
}

// stats builds EpochStats for a utilisation level expressed in reference
// traffic threads and a distance-weighted pressure, at the governor's
// current frequency.
func stats(g *Governor, utilThreads, pressure float64, active, stalled int) EpochStats {
	p := g.Params()
	ref := p.Timing.ReferenceRate(sim.CoreBase, g.Current()) * p.TailWindow.Seconds()
	return EpochStats{
		CoreFreq:     sim.CoreBase,
		Window:       p.TailWindow,
		LLCAccesses:  utilThreads * ref,
		Pressure:     pressure * ref,
		ActiveCores:  active,
		StalledCores: stalled,
		MinCState:    cpu.C0,
	}
}

func settle(g *Governor, st func() EpochStats, epochs int) sim.Freq {
	var f sim.Freq
	for i := 0; i < epochs; i++ {
		f = g.Tick(st())
	}
	return f
}

func TestIdleDither(t *testing.T) {
	g, _ := newGov()
	seen := map[sim.Freq]int{}
	for i := 0; i < 200; i++ {
		seen[g.Tick(stats(g, 0, 0, 0, 0))]++
	}
	if seen[15] == 0 || seen[14] == 0 {
		t.Fatalf("idle dither missing a level: %v (§3.1: alternates 1.4/1.5)", seen)
	}
	if len(seen) != 2 {
		t.Fatalf("idle visits unexpected frequencies: %v", seen)
	}
	if !g.Dithering() {
		t.Error("governor not reporting dither state")
	}
}

func TestStallRuleRampsToMax(t *testing.T) {
	g, _ := newGov()
	// >1/3 active cores stalled → target max, one step per epoch.
	prev := g.Current()
	steps := 0
	for i := 0; i < 30 && g.Current() < 24; i++ {
		f := g.Tick(stats(g, 0.1, 0, 2, 1))
		if f > prev {
			if f != prev+1 {
				t.Fatalf("jumped from %v to %v (want 100 MHz steps)", prev, f)
			}
			steps++
		}
		prev = f
	}
	if g.Current() != 24 {
		t.Fatalf("stall rule stabilized at %v, want 2.4GHz", g.Current())
	}
	if steps > 10 {
		t.Errorf("took %d raising epochs; heavy demand should step every epoch", steps)
	}
}

func TestStallFractionBoundaries(t *testing.T) {
	g, _ := newGov()
	// Exactly 1/3 (2 of 6) is NOT 'more than 1/3' → intermediate point.
	f := settle(g, func() EpochStats { return stats(g, 0.2, 0, 6, 2) }, 60)
	if f != g.Params().MidFreq {
		t.Errorf("2/6 stalled settles at %v, want %v (Figure 4)", f, g.Params().MidFreq)
	}
	// 1/4 or less with negligible utilisation → idle band.
	g2, _ := newGov()
	f2 := settle(g2, func() EpochStats { return stats(g2, 0.2, 0, 8, 2) }, 60)
	if f2 > 15 || f2 < 14 {
		t.Errorf("2/8 stalled settles at %v, want idle band", f2)
	}
}

func TestUtilizationLadderCapsBelowMax(t *testing.T) {
	g, _ := newGov()
	// Heavy LLC utilisation with zero interconnect pressure tops out at
	// 2.3 GHz (§3.1: "the frequency can only go up to 2.3 GHz").
	f := settle(g, func() EpochStats { return stats(g, 16, 0, 16, 0) }, 200)
	if f != 23 {
		t.Errorf("pure-LLC demand settles at %v, want 2.3GHz", f)
	}
}

func TestPressureReachesMax(t *testing.T) {
	g, _ := newGov()
	f := settle(g, func() EpochStats { return stats(g, 1, 8, 1, 0) }, 60)
	if f != 24 {
		t.Errorf("high interconnect pressure settles at %v, want 2.4GHz", f)
	}
}

func TestLightDemandRampsSlowly(t *testing.T) {
	g, _ := newGov()
	// One traffic thread (target 2.1 GHz): >50 ms per step (§4.3.1).
	epochsPerStep := 0
	prev := g.Current()
	for i := 0; i < 200 && g.Current() < 21; i++ {
		f := g.Tick(stats(g, 1, 0, 1, 0))
		epochsPerStep++
		if f > prev {
			if f == 16 { // first step measured from a clean count
				if epochsPerStep < g.Params().SlowEpochs {
					t.Fatalf("light demand stepped after %d epochs, want ≥%d", epochsPerStep, g.Params().SlowEpochs)
				}
			}
			epochsPerStep = 0
			prev = f
		}
	}
	if g.Current() != 21 {
		t.Errorf("one traffic thread settles at %v, want 2.1GHz (Figure 3)", g.Current())
	}
}

func TestDecreaseStepsEveryEpoch(t *testing.T) {
	g, _ := newGov()
	settle(g, func() EpochStats { return stats(g, 0.1, 0, 1, 1) }, 20) // pin at max
	prev := g.Current()
	for prev > 15 {
		f := g.Tick(stats(g, 0, 0, 0, 0))
		if f != prev-1 && f != prev {
			t.Fatalf("decrease from %v jumped to %v", prev, f)
		}
		if f == prev {
			t.Fatalf("decrease stalled at %v; decreases step every epoch (Figure 6)", f)
		}
		prev = f
	}
}

func TestFixedRatioDisablesUFS(t *testing.T) {
	g, f := newGov()
	if err := f.SetRatio(msr.RatioLimit{Min: 20, Max: 20}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := g.Tick(stats(g, 0.1, 0, 1, 1)); got != 20 {
			t.Fatalf("fixed-ratio frequency = %v, want pinned 2.0GHz", got)
		}
	}
	if g.Dithering() {
		t.Error("pinned governor reports dithering")
	}
}

func TestAboveBasePinsMax(t *testing.T) {
	g, _ := newGov()
	st := stats(g, 0, 0, 1, 0)
	st.AnyCoreAboveBase = true
	if got := g.Tick(st); got != 24 {
		t.Errorf("turbo core → uncore %v, want pinned max (§2.2.1)", got)
	}
}

func TestCouplingFollowsPeer(t *testing.T) {
	g, _ := newGov()
	// Idle socket with a busy peer at 2.4: follow to one step below,
	// stepping every epoch.
	cur := g.Current()
	for i := 0; i < 20; i++ {
		st := stats(g, 0, 0, 0, 0)
		st.PeerFreqs = []sim.Freq{24}
		f := g.Tick(st)
		if f > cur+1 {
			t.Fatalf("coupled follower jumped from %v to %v", cur, f)
		}
		cur = f
	}
	if cur != 23 {
		t.Errorf("follower settled at %v, want 2.3GHz (§3.4)", cur)
	}
}

func TestRestrictedRangeStillSteps(t *testing.T) {
	g, f := newGov()
	if err := f.SetRatio(msr.RatioLimit{Min: 15, Max: 17}); err != nil {
		t.Fatal(err)
	}
	// §6.1: with a restricted range the stall rule still raises the
	// frequency 100 MHz per epoch to the highest allowed point.
	st := func() EpochStats { return stats(g, 0.1, 0, 1, 1) }
	f1 := g.Tick(st())
	f2 := g.Tick(st())
	if f2 != f1+1 && f1 != 17 {
		t.Errorf("restricted range not stepping per epoch: %v then %v", f1, f2)
	}
	if got := settle(g, st, 10); got != 17 {
		t.Errorf("restricted range settles at %v, want 1.7GHz", got)
	}
}

func TestPCStateFollowsCores(t *testing.T) {
	g, _ := newGov()
	st := stats(g, 0, 0, 0, 0)
	st.MinCState = cpu.C6
	g.Tick(st)
	if g.PC() != PCState(6) {
		t.Errorf("all-idle PC = %v, want PC6", g.PC())
	}
	st = stats(g, 0.1, 0, 1, 0)
	g.Tick(st)
	if g.PC() != 0 {
		t.Errorf("active-core PC = %v, want PC0 (§2.2.2)", g.PC())
	}
}

func TestSampleFreqBlendsDither(t *testing.T) {
	g, _ := newGov()
	g.Tick(stats(g, 0, 0, 0, 0)) // enter idle dither
	rng := sim.NewRand(5)
	seen := map[sim.Freq]bool{}
	for i := 0; i < 200; i++ {
		seen[g.SampleFreq(rng)] = true
	}
	if !seen[14] || !seen[15] {
		t.Errorf("SampleFreq during dither saw %v, want both 1.4 and 1.5", seen)
	}
}

func TestFaultHoldsDecision(t *testing.T) {
	g, _ := newGov()
	// Hold every other decision: the stall-rule ramp still reaches the
	// maximum, but takes twice the epochs, and every held epoch keeps
	// the frequency exactly where it was.
	n := 0
	g.SetFault(func(*EpochStats) bool { n++; return n%2 == 0 })
	prev := g.Current()
	epochs := 0
	for epochs = 0; epochs < 60 && g.Current() < 24; epochs++ {
		f := g.Tick(stats(g, 0.1, 0, 2, 1))
		if f != prev && f != prev+1 {
			t.Fatalf("faulted ramp jumped from %v to %v", prev, f)
		}
		prev = f
	}
	if g.Current() != 24 {
		t.Fatalf("faulted ramp stabilized at %v, want 2.4GHz", g.Current())
	}
	if epochs < 17 { // clean ramp takes ~9 epochs; half held → ~18
		t.Errorf("ramp with half the decisions held took only %d epochs", epochs)
	}
	if g.HeldEpochs() != uint64(n/2) {
		t.Errorf("HeldEpochs = %d, want %d", g.HeldEpochs(), n/2)
	}
	// Clearing the fault restores normal operation.
	g.SetFault(nil)
	held := g.HeldEpochs()
	settle(g, func() EpochStats { return stats(g, 0, 0, 0, 0) }, 20)
	if g.HeldEpochs() != held {
		t.Error("cleared fault still holding epochs")
	}
}

func TestDistanceWeight(t *testing.T) {
	p := DefaultParams()
	if p.DistanceWeight(0) != 0 {
		t.Error("0-hop traffic has pressure weight")
	}
	for h := 1; h < 8; h++ {
		if p.DistanceWeight(h) <= p.DistanceWeight(h-1) {
			t.Errorf("weight not increasing at %d hops", h)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative hops accepted")
		}
	}()
	p.DistanceWeight(-1)
}

func TestPCStateExitLatencies(t *testing.T) {
	if PCState(0).ExitLatency() != 0 {
		t.Error("PC0 has exit latency")
	}
	if PCState(6).ExitLatency() <= PCState(1).ExitLatency() {
		t.Error("deeper PC state not slower to exit")
	}
	if PCState(2).String() != "PC2" {
		t.Errorf("String() = %q", PCState(2).String())
	}
}
