// Package ufs implements the uncore frequency scaling governor: the
// hardware power-management algorithm whose externally observable behaviour
// the paper characterises in §3 and summarises in §3.5. The implementation
// follows that summary point by point:
//
//   - The uncore has operating points in 100 MHz increments. The governor
//     checks system status every ~10 ms and increases, decreases, or
//     maintains the frequency (§3.3, Figures 5 and 6).
//   - Higher uncore utilisation (LLC access density, distance-weighted
//     interconnect traffic) raises the target frequency (§3.1, Figure 3);
//     without interconnect traffic the utilisation target tops out one step
//     below the maximum.
//   - If more than 1/3 of the active cores are stalled on memory, the
//     target is the maximum allowed frequency (§3.2, Figure 4); between
//     1/4 and 1/3 the uncore settles at an intermediate point.
//   - Heavy demand (a maximum-frequency target) ramps one step per epoch;
//     light demand ramps several times slower (§4.3.1: >50 ms per step for
//     a 2.1 GHz workload). Decreases always step once per epoch.
//   - Sockets are coupled: each socket's frequency floor follows its peers
//     one step behind, so a busy socket drags idle sockets up with a
//     ~10 ms lag, stabilising 100 MHz lower (§3.4, Figure 7).
//   - With no demand the frequency dithers between 1.4 and 1.5 GHz (§3.1).
//   - UFS is disabled — the uncore pins to the maximum — while any core
//     runs above its base frequency, and disabled entirely when the MSR
//     range is a single point (§2.2.1).
package ufs

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/msr"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Step is one rung of a utilisation ladder: demand of at least Min units
// asks for at least Target.
type Step struct {
	Min    float64
	Target sim.Freq
}

// Params are the governor constants. Defaults reproduce the paper's
// platform; tests assert the Figure 3/4 grids against them.
type Params struct {
	// Epoch is the decision period (§3.3: ≈10 ms).
	Epoch sim.Time
	// TailWindow is the status-sampling window preceding each decision:
	// the governor evaluates stall and utilisation over the last
	// TailWindow of the epoch, so a workload change reacts at the next
	// boundary (Figure 5's "slightly longer than 10 ms" first step)
	// rather than being averaged away.
	TailWindow sim.Time
	// SlowEpochs is how many epochs one light-demand upward step takes.
	SlowEpochs int
	// StallRatioThreshold marks a core as stalled when its epoch
	// stall-cycle ratio exceeds it (§3.2: pointer chasing ≈0.77 is
	// stalled; the traffic loop ≈0.3 and an L2 chase ≈0.14 are not).
	StallRatioThreshold float64
	// MidFreq is the intermediate operating point observed when the
	// stalled fraction is between 1/4 and 1/3 (Figure 4's 1.8 GHz).
	MidFreq sim.Freq
	// IdleHigh is the upper idle dither point (1.5 GHz); with no demand
	// the frequency alternates between IdleHigh and IdleHigh−1.
	IdleHigh sim.Freq
	// UtilLadder maps LLC utilisation (in units of reference traffic
	// threads) to targets. It tops out at 2.3 GHz: LLC demand alone
	// never reaches the maximum (§3.1).
	UtilLadder []Step
	// PressureLadder maps distance-weighted interconnect pressure to
	// targets, reaching the maximum (Figure 3's 2.4 GHz cells).
	PressureLadder []Step
	// DistWeight is the per-transaction pressure weight by hop count;
	// entries beyond the last extrapolate linearly.
	DistWeight []float64
	// Timing provides the reference access rate used to normalise raw
	// LLC access counts into utilisation units.
	Timing timing.Params
}

// DefaultParams returns the constants fitted to Figures 3–7.
func DefaultParams() Params {
	return Params{
		Epoch:               10 * sim.Millisecond,
		TailWindow:          8 * sim.Millisecond,
		SlowEpochs:          5,
		StallRatioThreshold: 0.5,
		MidFreq:             18,
		IdleHigh:            sim.UncoreIdleHigh,
		UtilLadder: []Step{
			{Min: 0.7, Target: 21},
			{Min: 1.5, Target: 22},
			{Min: 2.5, Target: 23},
		},
		PressureLadder: []Step{
			{Min: 0.9, Target: 22},
			{Min: 2.0, Target: 23},
			{Min: 6.0, Target: 24},
		},
		DistWeight: []float64{0, 1, 4, 9},
		Timing:     timing.Default(),
	}
}

// DistanceWeight returns the pressure weight of one LLC transaction that
// travels h hops.
func (p Params) DistanceWeight(h int) float64 {
	if h < 0 {
		panic(fmt.Sprintf("ufs: negative hop count %d", h))
	}
	n := len(p.DistWeight)
	if h < n {
		return p.DistWeight[h]
	}
	if n == 0 {
		return float64(h)
	}
	if n == 1 {
		return p.DistWeight[0]
	}
	slope := p.DistWeight[n-1] - p.DistWeight[n-2]
	return p.DistWeight[n-1] + slope*float64(h-n+1)
}

// PCState is a package (uncore) idle state (§2.2.2). Its index never
// exceeds the minimum C-state index among the socket's cores.
type PCState int

// ExitLatency returns the uncore wake-up time from the state.
func (p PCState) ExitLatency() sim.Time {
	switch {
	case p <= 0:
		return 0
	case p <= 1:
		return 5 * sim.Microsecond
	default:
		return 90 * sim.Microsecond
	}
}

func (p PCState) String() string { return fmt.Sprintf("PC%d", int(p)) }

// EpochStats is the per-socket activity summary the governor consumes
// every epoch.
type EpochStats struct {
	// ActiveCores ran a workload during the epoch; StalledCores is the
	// subset whose stall ratio exceeded the threshold.
	ActiveCores, StalledCores int
	// AnyCoreAboveBase disables UFS for the epoch (§2.2.1).
	AnyCoreAboveBase bool
	// CoreFreq is the operating frequency used to normalise rates
	// (the base frequency on the powersave platform).
	CoreFreq sim.Freq
	// Window is the observation window the counts below cover (the
	// governor's TailWindow).
	Window sim.Time
	// LLCAccesses is the raw count of LLC transactions in the window.
	LLCAccesses float64
	// Pressure is Σ accesses·DistanceWeight(hops) in the window.
	Pressure float64
	// MinCState is the shallowest C-state among the cores, driving the
	// package C-state when the socket is fully idle.
	MinCState cpu.CState
	// PeerFreqs are the current uncore frequencies of the other sockets
	// (for cross-socket coupling, §3.4).
	PeerFreqs []sim.Freq
}

// FaultFunc perturbs one governor decision (installed by
// internal/faults). It runs after the package C-state update with the
// epoch's stats, which it may mutate (sampling-window noise from phase
// drift); returning true holds the operating point for the epoch — the
// decision point drifted past the status-sampling boundary, or the PCU
// skipped a decision under load. Implementations must be deterministic.
type FaultFunc func(stats *EpochStats) (hold bool)

// Governor is one socket's UFS state machine.
type Governor struct {
	params Params
	file   *msr.File
	rng    *sim.Rand
	fault  FaultFunc

	cur        sim.Freq
	dither     bool
	slowCredit int
	pc         PCState
	epochs     uint64
	held       uint64

	// statScratch is where Tick copies its argument so the fault hook's
	// pointer never forces a per-epoch heap escape of the stats.
	statScratch EpochStats
}

// NewGovernor returns a governor at the idle operating point, constrained
// by the given MSR file.
func NewGovernor(params Params, file *msr.File, rng *sim.Rand) *Governor {
	g := &Governor{params: params, file: file, rng: rng}
	rl := file.Ratio()
	g.cur = params.IdleHigh.Clamp(rl.Min, rl.Max)
	return g
}

// Reset returns the governor to the state NewGovernor built, replacing
// its random stream with rng and removing any fault hook. The caller must
// reset the shared MSR file first: the initial operating point is clamped
// to the file's current ratio limit, exactly as in NewGovernor.
func (g *Governor) Reset(rng *sim.Rand) {
	g.rng = rng
	g.fault = nil
	rl := g.file.Ratio()
	g.cur = g.params.IdleHigh.Clamp(rl.Min, rl.Max)
	g.dither = false
	g.slowCredit = 0
	g.pc = 0
	g.epochs = 0
	g.held = 0
	g.statScratch = EpochStats{}
}

// Params returns the governor constants.
func (g *Governor) Params() Params { return g.params }

// Current returns the operating uncore frequency, as the UCLK MSR would
// report it over a sampling window.
func (g *Governor) Current() sim.Freq { return g.cur }

// Dithering reports whether the governor is wobbling inside the idle band.
func (g *Governor) Dithering() bool { return g.dither }

// SampleFreq returns the instantaneous uncore frequency seen by one access.
// In the idle band the hardware wobbles between the two idle points much
// faster than a governor epoch, so individual accesses sample either level
// at random; outside the band it is simply the operating point.
func (g *Governor) SampleFreq(rng *sim.Rand) sim.Freq {
	if !g.dither {
		return g.cur
	}
	f := g.params.IdleHigh
	if rng.Bool(0.5) {
		f -= sim.FreqStep
	}
	rl := g.file.Ratio()
	return f.Clamp(rl.Min, rl.Max)
}

// PC returns the current package C-state.
func (g *Governor) PC() PCState { return g.pc }

// Epochs returns how many decision epochs have elapsed.
func (g *Governor) Epochs() uint64 { return g.epochs }

// SetFault installs (or, with nil, removes) the per-epoch fault hook.
func (g *Governor) SetFault(f FaultFunc) { g.fault = f }

// HeldEpochs returns how many decisions the fault hook has held.
func (g *Governor) HeldEpochs() uint64 { return g.held }

// ladder returns the highest rung target whose threshold value v meets,
// or 0 if below all rungs.
func ladder(steps []Step, v float64) sim.Freq {
	var t sim.Freq
	for _, s := range steps {
		if v >= s.Min {
			t = s.Target
		}
	}
	return t
}

// Tick runs one governor epoch: it accounts the elapsed epoch's uncore
// clock ticks into the MSR counter, derives the new target from stats, and
// moves the operating point one step (or holds). It returns the new
// frequency.
func (g *Governor) Tick(epochStats EpochStats) sim.Freq {
	g.statScratch = epochStats
	stats := &g.statScratch
	// The UCLK fixed counter ran at the old frequency for the epoch
	// that just ended.
	g.file.TickUclk(g.cur, g.params.Epoch)
	g.epochs++

	rl := g.file.Ratio()
	lo, hi := rl.Min, rl.Max

	// Package C-state: PC0 whenever any core is awake (§2.2.2).
	if stats.ActiveCores == 0 {
		g.pc = PCState(stats.MinCState)
	} else {
		g.pc = 0
	}

	// Injected decision faults: a held epoch keeps the operating point
	// (the C-state bookkeeping above is hardware, not a decision, and
	// still happened).
	if g.fault != nil && g.fault(stats) {
		g.held++
		return g.cur
	}

	// UFS disabled: pinned.
	if rl.Fixed() {
		g.cur = lo
		g.slowCredit = 0
		return g.cur
	}
	if stats.AnyCoreAboveBase {
		g.cur = hi
		g.slowCredit = 0
		return g.cur
	}

	// Demand-derived target.
	window := stats.Window
	if window <= 0 {
		window = g.params.Epoch
	}
	ref := g.params.Timing.ReferenceRate(stats.CoreFreq, g.cur) * window.Seconds()
	util := stats.LLCAccesses / ref
	press := stats.Pressure / ref

	target := ladder(g.params.UtilLadder, util)
	if t := ladder(g.params.PressureLadder, press); t > target {
		target = t
	}
	if stats.ActiveCores > 0 {
		switch {
		case 3*stats.StalledCores > stats.ActiveCores:
			if hi > target {
				target = hi
			}
		case 4*stats.StalledCores > stats.ActiveCores:
			if g.params.MidFreq > target {
				target = g.params.MidFreq
			}
		}
	}
	idle := target == 0
	if idle {
		target = g.params.IdleHigh
	}

	// Cross-socket coupling: follow the busiest peer one step behind.
	coupled := false
	for _, pf := range stats.PeerFreqs {
		if floor := pf - sim.FreqStep; floor > target {
			target = floor
			idle = false
			coupled = true
		}
	}

	target = target.Clamp(lo, hi)

	// Idle dither between IdleHigh and IdleHigh−1 (§3.1: with no uncore
	// demand the frequency "alternates between 1.4 GHz and 1.5 GHz").
	// Once in the band the operating point wobbles faster than the
	// epoch; the MSR-visible value alternates per epoch while
	// SampleFreq blends per access.
	if idle && g.cur <= target && g.cur >= target-sim.FreqStep {
		g.slowCredit = 0
		d := target
		if g.rng.Bool(0.5) {
			d -= sim.FreqStep
		}
		g.cur = d.Clamp(lo, hi)
		g.dither = true
		return g.cur
	}
	// Leaving the idle band: the climb starts from the band's top —
	// the dithered low point is modulation below the nominal idle
	// operating point, not a rung of the ladder.
	if g.dither && g.cur < g.params.IdleHigh {
		g.cur = g.params.IdleHigh.Clamp(lo, hi)
	}
	g.dither = false

	switch {
	case g.cur < target:
		fast := target == hi || coupled
		if fast {
			g.cur += sim.FreqStep
			g.slowCredit = 0
		} else {
			g.slowCredit++
			if g.slowCredit >= g.params.SlowEpochs {
				g.cur += sim.FreqStep
				g.slowCredit = 0
			}
		}
	case g.cur > target:
		g.cur -= sim.FreqStep
		g.slowCredit = 0
	default:
		g.slowCredit = 0
	}
	return g.cur
}
