package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/system"
)

// Compression models the §5 file-size-profiling victim: a Python process
// compressing a file. Its execution time is proportional to the file size;
// while it runs, its core is active but not stalled (the working set is
// cache-resident), which dilutes the attacker's stalled-core fraction and
// pulls the uncore frequency down — the dwell time at low frequency leaks
// the file size (Figure 11).
type Compression struct {
	// Start is when the job begins.
	Start sim.Time
	// SizeKB is the input file size.
	SizeKB int
}

// Duration returns the job's total run time. The linear model (fixed
// interpreter startup plus throughput-bound compression) gives the
// ≈300 KB-granularity resolution the paper reports.
func (w *Compression) Duration() sim.Time {
	return 120*sim.Millisecond + sim.Time(float64(w.SizeKB)/1024*140)*sim.Millisecond
}

// Step implements system.Workload.
func (w *Compression) Step(ctx *system.Ctx) system.Activity {
	at := ctx.Start()
	if at < w.Start || at >= w.Start+w.Duration() {
		return system.Activity{}
	}
	cycles := fullQuantumCycles(ctx)
	return system.Activity{Active: true, Cycles: cycles, StallCycles: 0.12 * cycles}
}

// Segment is one stage of a website's activity signature: for Dur, Threads
// of the browser's cores are busy.
type Segment struct {
	Dur     sim.Time
	Threads int
}

// SiteSignature derives the characteristic activity envelope of a website:
// the sequence of render/script/network phases a browser goes through when
// loading and displaying it. Each site gets a stable, distinctive envelope
// (seeded by its name); visits replay it with jitter (NewBrowseVisit).
// Envelopes use up to two browser threads, so the attacker's observed
// uncore frequency moves between freq_max (victim idle), the intermediate
// point (one victim thread), and freq_min (two victim threads) — the
// Figure 12 trace structure.
func SiteSignature(site string, total sim.Time) []Segment {
	rng := sim.NewRand(sim.HashString(site))
	var segs []Segment
	var acc sim.Time
	for acc < total {
		d := sim.Time(30+rng.IntN(270)) * sim.Millisecond
		if acc+d > total {
			d = total - acc
		}
		var th int
		switch r := rng.Float64(); {
		case r < 0.30:
			th = 0
		case r < 0.85:
			th = 1
		default:
			th = 2
		}
		segs = append(segs, Segment{Dur: d, Threads: th})
		acc += d
	}
	return segs
}

// NewBrowseVisit instantiates one visit to site as two browser-thread
// workloads starting at start. visit selects the per-visit jitter stream:
// segment durations stretch by ±8 % and occasional background activity is
// injected, so no two visits produce identical traces (the classifier has
// to generalise, as in §5's train/attack phases).
func NewBrowseVisit(site string, visit int, start, total sim.Time) (w0, w1 system.Workload) {
	sig := SiteSignature(site, total)
	jrng := sim.NewRand(sim.HashString(fmt.Sprintf("%s#%d", site, visit)))
	var p0, p1 []Phase
	at := start
	for _, seg := range sig {
		d := sim.Time(float64(seg.Dur) * jrng.Norm(1, 0.12))
		if d < sim.Millisecond {
			d = sim.Millisecond
		}
		at += d
		noise0, noise1 := jrng.Bool(0.09), jrng.Bool(0.09)
		var a0, a1 system.Workload
		if seg.Threads > 0 || noise0 {
			a0 = Nop{}
		}
		if seg.Threads > 1 || noise1 {
			// Background tab/GC noise on the second thread.
			a1 = Nop{}
		}
		p0 = append(p0, Phase{Until: at, W: a0})
		p1 = append(p1, Phase{Until: at, W: a1})
	}
	return &Phased{Phases: p0}, &Phased{Phases: p1}
}
