package workload

import (
	"testing"

	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/system"
)

func newMachine(seed uint64) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

// runOne spawns w on core 0 and returns its core after d.
func runOne(t *testing.T, w system.Workload, d sim.Time) (*system.Machine, *system.Thread) {
	t.Helper()
	m := newMachine(1)
	th := m.Spawn("w", 0, 0, 0, w)
	m.Run(d)
	return m, th
}

func TestTrafficStallRatio(t *testing.T) {
	_, th := runOne(t, &Traffic{Slice: 0}, 500*sim.Millisecond)
	if r := th.Core.Total.StallRatio(); r < 0.25 || r > 0.35 {
		t.Errorf("traffic stall ratio %.2f, want ≈0.30 (§3.2)", r)
	}
	if th.Core.Total.LLCAccesses == 0 {
		t.Error("traffic loop generated no LLC accesses")
	}
}

func TestStallingStallRatio(t *testing.T) {
	_, th := runOne(t, &Stalling{Slice: 0}, 500*sim.Millisecond)
	if r := th.Core.Total.StallRatio(); r < 0.7 || r > 0.85 {
		t.Errorf("stalling stall ratio %.2f, want ≈0.77 (§3.2)", r)
	}
}

func TestStallingSlowerThanTraffic(t *testing.T) {
	_, tr := runOne(t, &Traffic{Slice: 0}, 200*sim.Millisecond)
	_, ch := runOne(t, &Stalling{Slice: 0}, 200*sim.Millisecond)
	// The chase is serialized: roughly MLP× fewer accesses.
	ratio := tr.Core.Total.LLCAccesses / ch.Core.Total.LLCAccesses
	if ratio < 4 || ratio > 12 {
		t.Errorf("traffic/chase access ratio %.1f, want ≈8 (the loop MLP)", ratio)
	}
}

func TestNopAndL2Chase(t *testing.T) {
	_, nop := runOne(t, Nop{}, 100*sim.Millisecond)
	if nop.Core.Total.StallRatio() != 0 {
		t.Error("nop loop stalls")
	}
	if nop.Core.Total.LLCAccesses != 0 {
		t.Error("nop loop touches the LLC")
	}
	_, l2 := runOne(t, L2Chase{}, 100*sim.Millisecond)
	if r := l2.Core.Total.StallRatio(); r < 0.1 || r > 0.2 {
		t.Errorf("L2 chase stall ratio %.2f, want ≈0.14 (§3.2)", r)
	}
	if l2.Core.Total.LLCAccesses != 0 {
		t.Error("L2 chase touches the LLC")
	}
}

func TestMeasureCollectsSamples(t *testing.T) {
	m := newMachine(2)
	lines, err := memsys.EvictionList(m.Socket(0).Hier, 0, memsys.NewAllocator(), 3, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var lastAt sim.Time
	w := &Measure{
		Lines:      lines,
		PerQuantum: 10,
		Sink: func(at sim.Time, cycles float64) {
			n++
			if at < lastAt {
				t.Fatal("samples not time-ordered")
			}
			lastAt = at
			if cycles < 30 && n > 60 {
				t.Fatalf("steady-state sample %f cycles: not an LLC hit", cycles)
			}
		},
	}
	m.Spawn("measure", 0, 0, 0, w)
	m.Run(50 * sim.Millisecond)
	if n < 1000 {
		t.Errorf("collected %d samples, want ≥1000", n)
	}
}

func TestMeasureEnabledGate(t *testing.T) {
	m := newMachine(3)
	lines, err := memsys.EvictionList(m.Socket(0).Hier, 0, memsys.NewAllocator(), 3, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	w := &Measure{
		Lines:   lines,
		Sink:    func(sim.Time, float64) { n++ },
		Enabled: func(at sim.Time) bool { return false },
	}
	m.Spawn("measure", 0, 0, 0, w)
	m.Run(20 * sim.Millisecond)
	if n != 0 {
		t.Errorf("disabled measure collected %d samples", n)
	}
}

func TestPhasedSwitchesAndEnds(t *testing.T) {
	m := newMachine(4)
	w := &Phased{Phases: []Phase{
		{Until: 20 * sim.Millisecond, W: Nop{}},
		{Until: 40 * sim.Millisecond, W: nil}, // idle phase
		{Until: 60 * sim.Millisecond, W: &Stalling{Slice: 0}},
	}}
	th := m.Spawn("phased", 0, 0, 0, w)
	m.Run(20 * sim.Millisecond)
	active := th.Core.Total.Cycles
	if active == 0 {
		t.Fatal("phase 1 never ran")
	}
	m.Run(20 * sim.Millisecond)
	if th.Core.Total.Cycles != active {
		t.Error("idle phase accumulated cycles")
	}
	m.Run(20 * sim.Millisecond)
	if th.Core.Total.StallCycles == 0 {
		t.Error("stalling phase never ran")
	}
	after := th.Core.Total.Cycles
	m.Run(20 * sim.Millisecond) // past the last phase
	if th.Core.Total.Cycles != after {
		t.Error("workload still active after its last phase")
	}
}

func TestCacheStressorDutyCycle(t *testing.T) {
	m := newMachine(5)
	w := NewCacheStressor(0, 2)
	th := m.Spawn("stress", 0, 0, 0, w)
	m.Run(w.Period * 4)
	// Burst fraction of cycles ≈ duty plus the small housekeeping
	// wakes of the off-phase.
	wall := sim.CoreBase.CyclesIn(w.Period * 4)
	frac := th.Core.Total.Cycles / wall
	if frac < w.Duty*0.9 || frac > w.Duty+0.15 {
		t.Errorf("stressor active fraction %.2f, duty %.2f", frac, w.Duty)
	}
	if th.Core.Total.StallRatio() < 0.5 {
		t.Errorf("stressor bursts not memory-stalled (ratio %.2f)", th.Core.Total.StallRatio())
	}
}

func TestCompressionDuration(t *testing.T) {
	c := &Compression{SizeKB: 2048}
	want := 120*sim.Millisecond + 280*sim.Millisecond
	if got := c.Duration(); got != want {
		t.Errorf("Duration(2MB) = %v, want %v", got, want)
	}
	m := newMachine(6)
	c.Start = 10 * sim.Millisecond
	th := m.Spawn("victim", 0, 0, 0, c)
	m.Run(5 * sim.Millisecond)
	if th.Core.Total.Cycles != 0 {
		t.Error("victim active before start")
	}
	m.Run(c.Duration() + 20*sim.Millisecond)
	if th.Core.Total.Cycles == 0 {
		t.Error("victim never ran")
	}
	if th.Core.Total.StallRatio() > 0.5 {
		t.Error("compression victim counts as stalled; it must dilute, not join, the stall set")
	}
}

func TestSiteSignatureStableAndDistinct(t *testing.T) {
	a1 := SiteSignature("a.example", 2*sim.Second)
	a2 := SiteSignature("a.example", 2*sim.Second)
	if len(a1) == 0 || len(a1) != len(a2) {
		t.Fatal("signature not stable")
	}
	var total sim.Time
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("signature not deterministic")
		}
		if a1[i].Threads < 0 || a1[i].Threads > 2 {
			t.Fatalf("segment threads = %d", a1[i].Threads)
		}
		total += a1[i].Dur
	}
	if total != 2*sim.Second {
		t.Errorf("segments cover %v, want 2s", total)
	}
	b := SiteSignature("b.example", 2*sim.Second)
	same := len(a1) == len(b)
	if same {
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("two sites share a signature")
	}
}

func TestBrowseVisitJitter(t *testing.T) {
	w0a, _ := NewBrowseVisit("a.example", 0, 0, sim.Second)
	w0b, _ := NewBrowseVisit("a.example", 1, 0, sim.Second)
	pa := w0a.(*Phased)
	pb := w0b.(*Phased)
	if len(pa.Phases) != len(pb.Phases) {
		t.Fatal("visits have different segment counts")
	}
	differ := false
	for i := range pa.Phases {
		if pa.Phases[i].Until != pb.Phases[i].Until {
			differ = true
		}
	}
	if !differ {
		t.Error("visits have identical timing (no jitter)")
	}
}
