// Package workload implements the programs the paper runs on cores: the
// traffic loop of Listing 1, the stalling (pointer-chase) loop of
// Listing 2, the receiver's measurement loop of Listing 3, nop and
// L2-resident loops, the stress-ng-style background stressor of §4.3.3,
// and the side-channel victims of §5 (a file-compression job and a
// website-browsing session).
//
// The dense loops are modelled at aggregate level — their access density,
// distance, and stall behaviour are what the UFS governor and the mesh
// observe — while the measurement loop issues individual timed loads
// through the functional cache hierarchy.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/system"
)

// Stall-behaviour constants, fitted to the perf-counter ratios of §3.2.
const (
	// TrafficStallRatio is the stall-cycle fraction of the traffic loop
	// (§3.2: "this ratio is only about 0.3 for the traffic threads").
	TrafficStallRatio = 0.30
	// ChaseIssueCycles is the non-stalled work per pointer-chase
	// iteration; with an ≈70-cycle LLC load the stall ratio lands at
	// the paper's ≈0.77.
	ChaseIssueCycles = 16.0
	// L2ChaseStallRatio is the stall fraction of an L2-resident chase
	// (§3.2: 0.14) — far below the governor's stalled-core threshold.
	L2ChaseStallRatio = 0.14
)

// fullQuantumCycles returns the core cycles in a whole quantum.
func fullQuantumCycles(ctx *system.Ctx) float64 {
	return ctx.CoreFreq().CyclesIn(ctx.Quantum())
}

// Traffic is the Listing 1 loop: m×n eviction-list accesses rotating
// through L2 sets so that every access misses the L2 and hits a single
// target LLC slice. Its independent accesses overlap (high MLP), so the
// core is mostly not stalled while the LLC and mesh see dense traffic.
type Traffic struct {
	// Slice is the target LLC slice.
	Slice int
}

// Step implements system.Workload.
func (w *Traffic) Step(ctx *system.Ctx) system.Activity {
	hops := ctx.HopsTo(w.Slice)
	per := ctx.Machine().Config().Timing.TrafficAccessTime(ctx.CoreFreq(), ctx.UncoreFreq(), hops)
	n := float64(ctx.Quantum()) / float64(per)
	ctx.InjectTraffic(w.Slice, n)
	cycles := fullQuantumCycles(ctx)
	return system.Activity{
		Active:      true,
		Cycles:      cycles,
		StallCycles: TrafficStallRatio * cycles,
		PowerUnits:  0.8,
	}
}

// Stalling is the Listing 2 loop: a pointer chase through one eviction
// list on the target slice. Every load depends on the previous one, so the
// core spends ≈77 % of its cycles stalled — the input to the governor's
// stall rule (§3.2).
type Stalling struct {
	// Slice is the LLC slice holding the chase list.
	Slice int
}

// Step implements system.Workload.
func (w *Stalling) Step(ctx *system.Ctx) system.Activity {
	hops := ctx.HopsTo(w.Slice)
	tm := ctx.Machine().Config().Timing
	per := tm.ChaseAccessTime(ctx.CoreFreq(), ctx.UncoreFreq(), hops)
	n := float64(ctx.Quantum()) / float64(per)
	ctx.InjectTraffic(w.Slice, n)
	cycles := fullQuantumCycles(ctx)
	latency := tm.LLCMeanCycles(ctx.CoreFreq(), ctx.UncoreFreq(), hops, 0)
	stallFrac := (latency - ChaseIssueCycles) / latency
	if stallFrac < 0 {
		stallFrac = 0
	}
	return system.Activity{
		Active:      true,
		Cycles:      cycles,
		StallCycles: stallFrac * cycles,
		PowerUnits:  0.4,
	}
}

// Nop is a busy compute loop with no memory traffic beyond the L1: an
// active, unstalled core. It is the "active but not stalled" load of
// Figure 4 and the idle half of the Figure 5/6 phase switches.
type Nop struct{}

// Step implements system.Workload.
func (Nop) Step(ctx *system.Ctx) system.Activity {
	cycles := fullQuantumCycles(ctx)
	return system.Activity{Active: true, Cycles: cycles, PowerUnits: 1.0}
}

// L2Chase is a pointer chase whose list fits in the L2: no uncore
// activity, and a stall ratio (≈0.14) far below the stalled-core threshold
// (§3.2: "if the pointer chasing happens within L2 ... uncore will not
// boost its frequency").
type L2Chase struct{}

// Step implements system.Workload.
func (L2Chase) Step(ctx *system.Ctx) system.Activity {
	cycles := fullQuantumCycles(ctx)
	return system.Activity{
		Active:      true,
		Cycles:      cycles,
		StallCycles: L2ChaseStallRatio * cycles,
		PowerUnits:  0.9,
	}
}

// Measure is the Listing 3 receiver loop: it walks an eviction list with
// fenced, timed loads and hands each sample to Sink. The fences keep the
// access density low enough that the measurement itself leaves the uncore
// idle (§4.2). PerQuantum bounds how many loads run each quantum.
type Measure struct {
	// Lines is the eviction list (same L2 set, one home slice).
	Lines []cache.Line
	// PerQuantum is the number of timed loads per quantum; zero means
	// one pass over Lines.
	PerQuantum int
	// Sink receives (time, latency-in-cycles) samples; nil discards.
	Sink func(at sim.Time, cycles float64)
	// Enabled gates measurement (the covert-channel receiver measures
	// only inside its T1/T2 windows); nil means always on.
	Enabled func(at sim.Time) bool

	pos int
}

// Step implements system.Workload.
func (w *Measure) Step(ctx *system.Ctx) system.Activity {
	if len(w.Lines) == 0 {
		panic("workload: Measure needs a non-empty eviction list")
	}
	n := w.PerQuantum
	if n <= 0 {
		n = len(w.Lines)
	}
	if w.Enabled != nil && !w.Enabled(ctx.Start()) {
		// Between windows the receiver spins without touching memory.
		cycles := fullQuantumCycles(ctx)
		return system.Activity{Active: true, Cycles: cycles}
	}
	for i := 0; i < n && ctx.Remaining() > 0; i++ {
		lat := ctx.TimedAccess(w.Lines[w.pos])
		if w.Sink != nil && !math.IsNaN(lat) {
			// NaN marks a sample stolen by an injected measurement
			// fault; the loop spent the time but records nothing.
			w.Sink(ctx.Now(), lat)
		}
		w.pos = (w.pos + 1) % len(w.Lines)
	}
	// The rest of the quantum is loop overhead: active, unstalled.
	rest := ctx.CoreFreq().CyclesIn(ctx.Remaining())
	return system.Activity{Active: true, Cycles: rest}
}

// Phase is one stage of a Phased workload.
type Phase struct {
	// Until is the absolute virtual time at which the phase ends.
	Until sim.Time
	// W runs during the phase; nil idles the core.
	W system.Workload
}

// Phased sequences workloads by absolute time: Figure 5's nop→stalling
// switch, Figure 6's stalling→nop switch, and the side-channel victims'
// activity envelopes are all Phased programs. After the last phase the
// core idles.
type Phased struct {
	Phases []Phase
}

// Step implements system.Workload.
func (w *Phased) Step(ctx *system.Ctx) system.Activity {
	at := ctx.Start()
	for _, p := range w.Phases {
		if at < p.Until {
			if p.W == nil {
				return system.Activity{}
			}
			return p.W.Step(ctx)
		}
	}
	return system.Activity{}
}

// CacheStressor is one stress-ng --cache worker (§4.3.3, Table 2): it
// alternates bursts of cache thrashing — whose working set misses the L2
// and stalls the core, pinning the uncore at the maximum through the
// stall rule — with lighter cache-resident phases. Workers are staggered,
// so the total fraction of time some worker is bursting (the phases that
// corrupt UF-variation "0" intervals) grows with N.
type CacheStressor struct {
	// Slice is the burst working set's home slice.
	Slice int
	// Period is the on/off cycle length; Duty the bursting fraction.
	Period sim.Time
	Duty   float64
	// PhaseOffset staggers workers.
	PhaseOffset sim.Time

	burst Stalling
}

// NewCacheStressor returns worker i of a stress-ng --cache N run whose
// burst working set lives on the given slice.
func NewCacheStressor(i, slice int) *CacheStressor {
	return &CacheStressor{
		Slice:       slice,
		Period:      240 * sim.Millisecond,
		Duty:        0.44,
		PhaseOffset: sim.Time(i) * 15 * sim.Millisecond,
		burst:       Stalling{Slice: slice},
	}
}

// Step implements system.Workload.
func (w *CacheStressor) Step(ctx *system.Ctx) system.Activity {
	if w.Period <= 0 {
		panic(fmt.Sprintf("workload: stressor period %v must be positive", w.Period))
	}
	pos := (ctx.Start() + w.PhaseOffset) % w.Period
	if float64(pos) < w.Duty*float64(w.Period) {
		w.burst.Slice = w.Slice
		return w.burst.Step(ctx)
	}
	// Off-phase: the worker mostly sleeps between thrash rounds, waking
	// briefly every few quanta for bookkeeping — enough to keep its
	// core out of deep sleep (so a stressed platform never reaches the
	// deep package idle the Uncore-idle channel needs) but far too
	// little activity to count against the stall-proportion rule.
	if (pos/ctx.Quantum())%8 == 0 {
		cycles := fullQuantumCycles(ctx)
		return system.Activity{Active: true, Cycles: cycles, PowerUnits: 0.2}
	}
	return system.Activity{}
}
