package sidechannel

import (
	"math"

	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// lowFreqGHz is the trace level below which the victim is considered
// active: with the victim's cores running, less than a quarter of the
// active cores are stalled and the uncore falls to the idle point.
const lowFreqGHz = 2.0

// CompressionTrace runs the Figure 11 scenario: the victim compresses a
// file of sizeKB kilobytes starting at startAt, while the attacker traces
// the uncore frequency for total virtual time. It returns the trace.
//
// The victim is modelled as the compressor plus its runtime's helper
// thread (interpreter I/O and allocation run alongside the compression
// loop), so during the job two victim cores are active and the attacker's
// stalled fraction falls below a quarter.
func CompressionTrace(m *system.Machine, sizeKB int, startAt, total sim.Time) (*trace.Series, error) {
	a, err := Deploy(m, 0, 0, 1, 3*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	job := &workload.Compression{Start: m.Now() + startAt, SizeKB: sizeKB}
	helper := &workload.Compression{Start: m.Now() + startAt, SizeKB: sizeKB}
	v1 := m.Spawn("victim-compress", 0, 4, 0, job)
	v2 := m.Spawn("victim-runtime", 0, 5, 0, helper)
	m.Run(total)
	a.Stop()
	v1.Stop()
	v2.Stop()
	return a.Trace, nil
}

// DwellTime returns how long the trace sat below the active threshold —
// the attacker's estimate of the victim's execution time.
func DwellTime(tr *trace.Series, period sim.Time) sim.Time {
	n := 0
	for _, s := range tr.Samples {
		if s.Value < lowFreqGHz {
			n++
		}
	}
	return sim.Time(n) * period
}

// DwellModel is the attacker's calibrated linear map from observed
// low-frequency dwell time to file size: dwell ≈ A + B·sizeKB. The
// offset A absorbs both the job's fixed startup cost and the governor's
// ramp/decay slop around the activity window.
type DwellModel struct {
	A float64 // milliseconds
	B float64 // milliseconds per KB
}

// FitDwell calibrates the model from two reference jobs of known size —
// the training step a real §5 attacker performs.
func FitDwell(size1 int, dwell1 sim.Time, size2 int, dwell2 sim.Time) DwellModel {
	b := (dwell2.Milliseconds() - dwell1.Milliseconds()) / float64(size2-size1)
	return DwellModel{
		A: dwell1.Milliseconds() - b*float64(size1),
		B: b,
	}
}

// SizeKB estimates a file size from an observed dwell time.
func (dm DwellModel) SizeKB(dwell sim.Time) int {
	if dm.B == 0 {
		return 0
	}
	return int(math.Round((dwell.Milliseconds() - dm.A) / dm.B))
}

// ClassifySize snaps a size estimate to the nearest candidate.
func ClassifySize(estimateKB int, candidates []int) int {
	best, bestDiff := 0, math.MaxInt
	for _, c := range candidates {
		d := c - estimateKB
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = c, d
		}
	}
	return best
}
