package sidechannel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/workload"
)

// VisitDuration is how long each website visit is traced (Figure 12 shows
// 5-second traces).
const VisitDuration = 5 * sim.Second

// Sites returns the fingerprinting corpus: n synthetic website identities
// with stable activity signatures. A few well-known names lead the list so
// example traces read like Figure 12.
func Sites(n int) []string {
	named := []string{
		"amazon.com", "google.com",
		"hotcrp.com/login-ok", "hotcrp.com/login-fail",
	}
	out := make([]string, 0, n)
	out = append(out, named[:min(len(named), n)]...)
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("site-%03d.example", i))
	}
	return out
}

// VisitTrace simulates one victim visit to site (visit selects the
// per-visit jitter) observed by the attacker, returning the 3 ms-sampled
// frequency trace values.
func VisitTrace(newMachine func() *system.Machine, site string, visit int) ([]float64, error) {
	m := newMachine()
	a, err := Deploy(m, 0, 0, 1, 3*sim.Millisecond)
	if err != nil {
		return nil, err
	}
	start := m.Now() + 50*sim.Millisecond
	w0, w1 := workload.NewBrowseVisit(site, visit, start, VisitDuration-200*sim.Millisecond)
	v0 := m.Spawn("victim-browser-0", 0, 4, 0, w0)
	v1 := m.Spawn("victim-browser-1", 0, 5, 0, w1)
	m.Run(VisitDuration)
	a.Stop()
	v0.Stop()
	v1.Stop()
	return a.Trace.Values(), nil
}

// FingerprintReport is the outcome of a train/attack evaluation (§5).
type FingerprintReport struct {
	Sites, TrainPerSite, TestPerSite int
	Top1, Top5                       float64
	// Confusion records which sites the attacker mistook for which.
	Confusion *stats.Confusion
}

// Fingerprint runs the full §5 website-fingerprinting evaluation:
// trainPerSite visits per site train the classifier, testPerSite further
// visits are attacked, and top-1/top-5 accuracies are reported.
func Fingerprint(newMachine func() *system.Machine, sites []string, trainPerSite, testPerSite int) (FingerprintReport, error) {
	knn := NewKNN(3)
	for _, site := range sites {
		for v := 0; v < trainPerSite; v++ {
			tr, err := VisitTrace(newMachine, site, v)
			if err != nil {
				return FingerprintReport{}, err
			}
			knn.Train(site, tr)
		}
	}
	confusion := stats.NewConfusion(sites)
	var top1, top5, total int
	for _, site := range sites {
		for v := 0; v < testPerSite; v++ {
			tr, err := VisitTrace(newMachine, site, trainPerSite+v)
			if err != nil {
				return FingerprintReport{}, err
			}
			pred := knn.Predict(tr)
			confusion.Add(site, pred[0])
			total++
			for i, p := range pred {
				if p == site {
					if i == 0 {
						top1++
					}
					if i < 5 {
						top5++
					}
					break
				}
			}
		}
	}
	return FingerprintReport{
		Sites:        len(sites),
		TrainPerSite: trainPerSite,
		TestPerSite:  testPerSite,
		Top1:         float64(top1) / float64(total),
		Top5:         float64(top5) / float64(total),
		Confusion:    confusion,
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
