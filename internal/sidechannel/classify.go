package sidechannel

import (
	"sort"

	"repro/internal/stats"
)

// FeatureLen is the dimensionality frequency traces are resampled to
// before classification.
const FeatureLen = 256

// Features converts a frequency trace into a fixed-length feature vector.
func Features(values []float64) []float64 {
	return stats.Resample(values, FeatureLen)
}

// KNN is a k-nearest-neighbour classifier over trace features. The paper
// trains an RNN (§5); with the standard library only, a kNN over
// resampled traces demonstrates the same property — per-site frequency
// traces are separable — and reaches comparable accuracy.
type KNN struct {
	// K is the neighbourhood size.
	K int

	labels   []string
	features [][]float64
}

// NewKNN returns a classifier with neighbourhood size k.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 3
	}
	return &KNN{K: k}
}

// Train adds one labelled trace.
func (c *KNN) Train(label string, values []float64) {
	c.labels = append(c.labels, label)
	c.features = append(c.features, Features(values))
}

// Samples returns the number of training traces.
func (c *KNN) Samples() int { return len(c.labels) }

// Predict returns candidate labels ordered from most to least likely.
func (c *KNN) Predict(values []float64) []string {
	f := Features(values)
	type nb struct {
		label string
		dist  float64
	}
	nbs := make([]nb, len(c.features))
	for i, tf := range c.features {
		nbs[i] = nb{label: c.labels[i], dist: stats.Euclidean(f, tf)}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].dist < nbs[j].dist })

	// Vote among the K nearest, breaking ties by closest distance;
	// remaining labels follow in first-appearance order for top-k
	// metrics.
	votes := map[string]int{}
	closest := map[string]float64{}
	limit := c.K
	if limit > len(nbs) {
		limit = len(nbs)
	}
	for _, n := range nbs[:limit] {
		votes[n.label]++
		if _, ok := closest[n.label]; !ok {
			closest[n.label] = n.dist
		}
	}
	var order []string
	seen := map[string]bool{}
	for _, n := range nbs {
		if !seen[n.label] {
			seen[n.label] = true
			order = append(order, n.label)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		vi, vj := votes[order[i]], votes[order[j]]
		if vi != vj {
			return vi > vj
		}
		di, iok := closest[order[i]]
		dj, jok := closest[order[j]]
		switch {
		case iok && jok:
			return di < dj
		case iok:
			return true
		default:
			return false
		}
	})
	return order
}
