package sidechannel

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/system"
)

func newMachine(seed uint64) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = seed
	return system.New(cfg)
}

func TestProbeTracksGovernor(t *testing.T) {
	m := newMachine(1)
	a, err := Deploy(m, 0, 0, 1, 3*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Attacker alone: 1 of 2 active cores stalled → uncore pinned at
	// the maximum; probe must read ≈2.4 GHz once settled.
	m.Run(400 * sim.Millisecond)
	a.Stop()
	vals := a.Trace.Values()
	if len(vals) < 100 {
		t.Fatalf("only %d probe samples", len(vals))
	}
	tail := vals[len(vals)-30:]
	for _, v := range tail {
		if math.Abs(v-2.4) > 0.11 {
			t.Fatalf("settled probe estimate %.1f GHz, want ≈2.4", v)
		}
	}
}

func TestCompressionDwellScalesWithSize(t *testing.T) {
	dwell := func(sizeKB int) sim.Time {
		m := newMachine(2)
		tr, err := CompressionTrace(m, sizeKB, 100*sim.Millisecond, 1200*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return DwellTime(tr, 3*sim.Millisecond)
	}
	d1, d3 := dwell(1024), dwell(3072)
	if d1 <= 0 {
		t.Fatal("no low-frequency dwell observed for 1MB job")
	}
	if d3 <= d1 {
		t.Fatalf("dwell not increasing: 1MB=%v 3MB=%v", d1, d3)
	}
	// The slope should match the victim model: ≈140 ms per MB.
	perMB := (d3 - d1).Milliseconds() / 2
	if perMB < 110 || perMB > 170 {
		t.Errorf("dwell slope %.0f ms/MB, want ≈140", perMB)
	}
}

func TestDwellModelRoundTrip(t *testing.T) {
	m := FitDwell(1000, 250*sim.Millisecond, 5000, 810*sim.Millisecond)
	for _, size := range []int{1000, 2000, 3000, 5000} {
		dwell := sim.Time(m.A+m.B*float64(size)) * sim.Millisecond
		if got := m.SizeKB(dwell); math.Abs(float64(got-size)) > 1 {
			t.Errorf("SizeKB(dwell(%d)) = %d", size, got)
		}
	}
	if (DwellModel{}).SizeKB(sim.Second) != 0 {
		t.Error("degenerate model should return 0")
	}
}

func TestClassifySize(t *testing.T) {
	cands := []int{600, 900, 1200}
	if got := ClassifySize(950, cands); got != 900 {
		t.Errorf("ClassifySize(950) = %d", got)
	}
	if got := ClassifySize(100, cands); got != 600 {
		t.Errorf("ClassifySize(100) = %d", got)
	}
}

func TestKNNBasics(t *testing.T) {
	c := NewKNN(3)
	mk := func(level float64) []float64 {
		v := make([]float64, 64)
		for i := range v {
			v[i] = level
		}
		return v
	}
	for i := 0; i < 3; i++ {
		c.Train("low", mk(1.5))
		c.Train("high", mk(2.4))
	}
	if c.Samples() != 6 {
		t.Fatalf("Samples() = %d", c.Samples())
	}
	if pred := c.Predict(mk(1.6)); pred[0] != "low" {
		t.Errorf("Predict(low-ish) = %v", pred)
	}
	if pred := c.Predict(mk(2.3)); pred[0] != "high" {
		t.Errorf("Predict(high-ish) = %v", pred)
	}
}

func TestSitesCorpus(t *testing.T) {
	s := Sites(100)
	if len(s) != 100 {
		t.Fatalf("Sites(100) = %d entries", len(s))
	}
	seen := map[string]bool{}
	for _, site := range s {
		if seen[site] {
			t.Fatalf("duplicate site %q", site)
		}
		seen[site] = true
	}
	if s[0] != "amazon.com" {
		t.Errorf("first site = %q", s[0])
	}
	if got := Sites(2); len(got) != 2 {
		t.Errorf("Sites(2) = %v", got)
	}
}

func TestFingerprintSmallCorpus(t *testing.T) {
	seed := uint64(100)
	mk := func() *system.Machine {
		seed++
		return newMachine(seed)
	}
	rep, err := Fingerprint(mk, Sites(6), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Top1 < 0.8 {
		t.Errorf("top-1 accuracy %.2f on a 6-site corpus, want ≥0.8", rep.Top1)
	}
	if rep.Top5 < rep.Top1 {
		t.Error("top-5 below top-1")
	}
}

func TestVisitTraceDeterministic(t *testing.T) {
	mk := func() *system.Machine { return newMachine(7) }
	a, err := VisitTrace(mk, "amazon.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VisitTrace(mk, "amazon.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, same visit: traces diverge at %d", i)
		}
	}
	c, err := VisitTrace(mk, "amazon.com", 1)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if i < len(c) && a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different visits produced identical traces (no jitter)")
	}
}
