// Package sidechannel implements the §5 attacks: an unprivileged attacker
// profiles co-located victims by tracing the uncore frequency over time.
//
// The attacker runs two helper threads (§5's methodology): a stalling
// thread, which keeps the uncore at freq_max while the victim is idle
// (more than a third of the active cores are stalled), and a non-stalling
// probe thread that estimates the uncore frequency every few milliseconds
// from LLC load latencies (§4.2). When the victim's cores become active —
// but not stalled — the stalled fraction is diluted, the uncore frequency
// drops, and the victim's activity envelope appears in the attacker's
// trace. Two attacks are built on this: file-size profiling (Figure 11)
// and website fingerprinting (Figure 12).
package sidechannel

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memsys"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Attacker is the §5 helper-thread pair plus the frequency trace it
// collects.
type Attacker struct {
	// Trace holds the estimated uncore frequency in GHz, one sample per
	// Period.
	Trace *trace.Series
	// Period is the sampling period (§5 uses 3 ms).
	Period sim.Time

	stall, probe *system.Thread
}

// probeWorkload estimates the uncore frequency once per period by timing a
// handful of LLC loads and inverting the latency model.
type probeWorkload struct {
	lines  []cache.Line
	period sim.Time
	hops   int
	out    *trace.Series

	sum   float64
	n     int
	pos   int
	next  sim.Time
	first bool
}

func (w *probeWorkload) Step(ctx *system.Ctx) system.Activity {
	if !w.first {
		w.first = true
		w.next = ctx.Start() + w.period
	}
	// Sample a small batch each quantum; emit one estimate per period.
	// The walk must keep rotating through the eviction list so every
	// probe misses the private caches and reflects LLC (uncore) timing.
	for i := 0; i < 4 && ctx.Remaining() > 0; i++ {
		w.sum += ctx.TimedAccess(w.lines[w.pos])
		w.pos = (w.pos + 1) % len(w.lines)
		w.n++
	}
	if ctx.Start() >= w.next {
		if w.n > 0 {
			tp := ctx.Machine().Config().Timing
			f := tp.UncoreFromLatency(w.sum/float64(w.n), ctx.CoreFreq(), w.hops, 10, 30)
			w.out.Add(ctx.Start(), f.GHz())
		}
		w.sum, w.n = 0, 0
		w.next += w.period
	}
	rest := ctx.CoreFreq().CyclesIn(ctx.Remaining())
	return system.Activity{Active: true, Cycles: rest}
}

// Deploy spawns the attacker's helper threads on the given cores of a
// socket and starts tracing at the period.
func Deploy(m *system.Machine, socket, stallCore, probeCore int, period sim.Time) (*Attacker, error) {
	if period <= 0 {
		period = 3 * sim.Millisecond
	}
	s := m.Socket(socket)
	slice, ok := s.Die.SliceAtHops(stallCore, 0)
	if !ok {
		return nil, fmt.Errorf("sidechannel: stall core %d has no local slice", stallCore)
	}
	probeSlice, ok := s.Die.SliceAtHops(probeCore, 1)
	if !ok {
		probeSlice, _ = s.Die.SliceAtHops(probeCore, 0)
	}
	lines, err := memsys.EvictionList(s.Hier, 0, memsys.NewAllocator(), 400, probeSlice, 20)
	if err != nil {
		return nil, err
	}
	a := &Attacker{
		Trace:  &trace.Series{Name: "uncore_ghz"},
		Period: period,
	}
	pw := &probeWorkload{
		lines:  lines,
		period: period,
		hops:   s.Mesh.Hops(s.Die.CoreCoord(probeCore), s.Die.SliceCoord(probeSlice)),
		out:    a.Trace,
	}
	a.stall = m.Spawn("attacker-stall", socket, stallCore, 0, &workload.Stalling{Slice: slice})
	a.probe = m.Spawn("attacker-probe", socket, probeCore, 0, pw)
	return a, nil
}

// Stop removes the attacker's threads.
func (a *Attacker) Stop() {
	a.stall.Stop()
	a.probe.Stop()
}
