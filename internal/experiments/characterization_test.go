package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

// quickOpts keeps characterisation tests fast while exercising the real
// experiment code paths.
func quickOpts() Options { return Options{Seed: 0x5eed, Quick: true} }

// freqMatches compares a measured frequency (GHz) against a paper value.
// The idle operating point dithers between 1.4 and 1.5 GHz, which the
// paper reports as "staying at 1.5 GHz" (§3.1); the whole dither band
// therefore matches 1.5.
func freqMatches(got, want float64) bool {
	if want == 1.5 && got >= 1.39 && got <= 1.51 {
		return true
	}
	return math.Abs(got-want) <= 0.051
}

func TestFig3MatchesPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in long mode only")
	}
	res, err := Fig3(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range res.Types {
		want := Fig3Expected[tt]
		for j, n := range res.Counts {
			got := res.Freq[i][j]
			if !freqMatches(got, want[j]) {
				t.Errorf("fig3[%s][%d threads] = %.2f GHz, paper %.1f", trafficTypeName(tt), n, got, want[j])
			}
		}
	}
}

func TestFig3QuickSubset(t *testing.T) {
	res, err := Fig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the quick columns {1,2,7,16} against the paper grid.
	wantCols := map[int]int{1: 0, 2: 1, 7: 6, 16: 9}
	for i, tt := range res.Types {
		for j, n := range res.Counts {
			want := Fig3Expected[tt][wantCols[n]]
			if !freqMatches(res.Freq[i][j], want) {
				t.Errorf("fig3 quick [%s][%d] = %.2f, want %.1f", trafficTypeName(tt), n, res.Freq[i][j], want)
			}
		}
	}
}

func TestFig4MatchesStallRule(t *testing.T) {
	res, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Stalled {
		for j, k := range res.Unstalled {
			if res.Freq[i][j] < 0 {
				continue
			}
			want := Fig4Rule(s, k)
			if !freqMatches(res.Freq[i][j], want) {
				t.Errorf("fig4[s=%d,k=%d] = %.2f GHz, want %.1f", s, k, res.Freq[i][j], want)
			}
		}
	}
}

func TestFig5RampUp(t *testing.T) {
	res, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traces[0]
	// Before the switch: idle dither at 1.4/1.5 GHz.
	for _, v := range tr.Window(0, res.SwitchAt) {
		if v < 1.39 || v > 1.51 {
			t.Fatalf("pre-switch frequency %v GHz outside idle dither", v)
		}
	}
	// After the switch the frequency must reach the maximum.
	final := tr.Window(res.SwitchAt+120*sim.Millisecond, res.SwitchAt+170*sim.Millisecond)
	for _, v := range final {
		if v != 2.4 {
			t.Fatalf("post-ramp frequency %v GHz, want 2.4", v)
		}
	}
	// Steps spaced ≈10 ms (Figure 5 annotations: 9.3–10.4 ms). The
	// first spacing may exceed 10 ms because the loop start is not
	// aligned to the governor epochs, as the paper also observes.
	if len(res.StepMS) < 9 {
		t.Fatalf("only %d steps recorded: %v", len(res.StepMS), res.StepMS)
	}
	for i, s := range res.StepMS[1:] {
		if s < 9 || s > 11 {
			t.Errorf("step %d spacing %.1f ms, want ≈10", i+1, s)
		}
	}
}

func TestFig6RampDown(t *testing.T) {
	res, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Traces[0]
	// Saturated at 2.4 before the switch.
	pre := tr.Window(res.SwitchAt-20*sim.Millisecond, res.SwitchAt)
	for _, v := range pre {
		if v != 2.4 {
			t.Fatalf("pre-switch frequency %v GHz, want 2.4", v)
		}
	}
	// Back to idle dither at the end.
	post := tr.Window(res.SwitchAt+120*sim.Millisecond, res.SwitchAt+170*sim.Millisecond)
	for _, v := range post {
		if v < 1.39 || v > 1.51 {
			t.Fatalf("post-decay frequency %v GHz outside idle dither", v)
		}
	}
	// Decrease steps spaced ≈10 ms.
	for i, s := range res.StepMS {
		if i >= 9 {
			break
		}
		if s < 9 || s > 11 {
			t.Errorf("down-step %d spacing %.1f ms, want ≈10", i, s)
		}
	}
}

func TestFig7CrossSocketCoupling(t *testing.T) {
	res, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := res.Traces[0], res.Traces[1]
	// Socket 0 saturates at 2.4; socket 1 stabilises at 2.3.
	end0 := t0.Window(res.SwitchAt+140*sim.Millisecond, res.SwitchAt+170*sim.Millisecond)
	end1 := t1.Window(res.SwitchAt+140*sim.Millisecond, res.SwitchAt+170*sim.Millisecond)
	for _, v := range end0 {
		if v != 2.4 {
			t.Fatalf("socket0 final %v GHz, want 2.4", v)
		}
	}
	for _, v := range end1 {
		if v != 2.3 {
			t.Fatalf("socket1 final %v GHz, want 2.3 (one step below)", v)
		}
	}
	// During the ramp socket 1 trails socket 0 by about one step.
	mid := res.SwitchAt + 50*sim.Millisecond
	v0 := t0.Window(mid, mid+sim.Millisecond)
	v1 := t1.Window(mid, mid+sim.Millisecond)
	if len(v0) == 0 || len(v1) == 0 {
		t.Fatal("no mid-ramp samples")
	}
	if diff := v0[0] - v1[0]; diff < 0.05 || diff > 0.25 {
		t.Errorf("mid-ramp gap socket0-socket1 = %.2f GHz, want ≈0.1–0.2", diff)
	}
	// Socket 1's first step lags socket 0's by ≈10 ms.
	first0, first1 := t0.StepTimes(), t1.StepTimes()
	var s0, s1 sim.Time
	for _, st := range first0 {
		if st > res.SwitchAt {
			s0 = st
			break
		}
	}
	for _, st := range first1 {
		if st > s0 {
			s1 = st
			break
		}
	}
	if lag := (s1 - s0).Milliseconds(); lag < 5 || lag > 15 {
		t.Errorf("follower lag %.1f ms, want ≈10", lag)
	}
}

func TestSec32StallRatios(t *testing.T) {
	res, err := Sec32(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ChaseRatio-0.77) > 0.05 {
		t.Errorf("LLC chase stall ratio %.2f, paper ≈0.77", res.ChaseRatio)
	}
	if math.Abs(res.TrafficRatio-0.30) > 0.05 {
		t.Errorf("traffic stall ratio %.2f, paper ≈0.3", res.TrafficRatio)
	}
	if math.Abs(res.L2ChaseRatio-0.14) > 0.05 {
		t.Errorf("L2 chase stall ratio %.2f, paper ≈0.14", res.L2ChaseRatio)
	}
}

func TestFig8LatencyShape(t *testing.T) {
	res, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range res.Hops {
		// Latency decreases monotonically with frequency.
		for j := 1; j < len(res.Freqs); j++ {
			if res.Summary[i][j].Mean >= res.Summary[i][j-1].Mean {
				t.Errorf("hop %d: mean latency not decreasing: %.1f at %v vs %.1f at %v",
					h, res.Summary[i][j].Mean, res.Freqs[j], res.Summary[i][j-1].Mean, res.Freqs[j-1])
			}
		}
	}
	// Fitted anchors: 0-hop ≈58 cycles at 2.4 GHz, ≈80 at 1.5 GHz.
	find := func(h int, f sim.Freq) float64 {
		for i, hh := range res.Hops {
			if hh != h {
				continue
			}
			for j, ff := range res.Freqs {
				if ff == f {
					return res.Summary[i][j].Mean
				}
			}
		}
		t.Fatalf("missing summary for hop %d freq %v", h, f)
		return 0
	}
	if m := find(0, 24); math.Abs(m-58) > 2 {
		t.Errorf("0-hop mean at 2.4GHz = %.1f, want ≈58", m)
	}
	if m := find(0, 15); math.Abs(m-80) > 2 {
		t.Errorf("0-hop mean at 1.5GHz = %.1f, want ≈80", m)
	}
	// Farther slices are slower at equal frequency.
	if find(3, 24) <= find(0, 24) {
		t.Error("3-hop not slower than 0-hop at 2.4GHz")
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "sec32"} {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestRenderSmoke(t *testing.T) {
	res, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 5") {
		t.Error("render missing title")
	}
}

// TestAllExperimentsRender smoke-runs every registered experiment in quick
// mode and renders it, so no experiment can rot unnoticed.
func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep in long mode only")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quickOpts())
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := res.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.Len() == 0 {
				t.Error("empty render")
			}
		})
	}
}
