package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/trace"
)

// newMachine builds the default Table 1 platform with the experiment seed,
// bound to the run's context and step budget. With a pool in the options
// it recycles a previously released machine instead of building anew.
func newMachine(opts Options) *system.Machine {
	cfg := system.DefaultConfig()
	cfg.Seed = opts.Seed
	return bindMachine(opts.Machines.Get(cfg), opts)
}

// bindMachine threads the run's cancellation and watchdog into a machine;
// every experiment machine — including ones built from a custom
// system.Config — must pass through here so a deadline or budget reaches
// the engine hot loop.
func bindMachine(m *system.Machine, opts Options) *system.Machine {
	if opts.Context != nil {
		m.Bind(opts.Context)
	}
	if opts.MaxEngineSteps > 0 {
		m.SetStepBudget(opts.MaxEngineSteps)
	}
	return m
}

// sampleUncore attaches a sampler recording socket's uncore frequency (in
// GHz) every period; the paper's traces sample every 200 µs (§3.3) or 3 ms
// (§5).
func sampleUncore(m *system.Machine, socket int, period sim.Time, name string) *trace.Series {
	s := &trace.Series{Name: name}
	m.Engine().Add(&sim.Ticker{
		Name:     "sample-" + name,
		Period:   period,
		Priority: 100, // after workloads and governor
		Fn: func(now sim.Time) {
			s.Add(now, m.Socket(socket).Uncore().GHz())
		},
	})
	return s
}

// medianFreq runs the machine for settle, then returns the median uncore
// frequency (GHz) of socket over a further window.
func medianFreq(m *system.Machine, socket int, settle, window sim.Time) float64 {
	return medianFreqWith(m, socket, settle, window, &stats.Sorter{})
}

// medianFreqWith is medianFreq with a caller-owned sorter, so sweep
// loops taking one median per grid cell reuse a single scratch buffer
// instead of copying every window. Sorter medians are bit-identical to
// stats.Median.
func medianFreqWith(m *system.Machine, socket int, settle, window sim.Time, srt *stats.Sorter) float64 {
	// The sampler attaches after the settle run: settle samples were never
	// part of the median, and an unsampled settle lets an inert machine
	// skip straight between governor epochs instead of waking every
	// millisecond to record a value that would be thrown away. Every call
	// site settles for a whole number of milliseconds, so the window's
	// sample grid (settle + k·1 ms) is bit-identical to the old
	// attach-first grid.
	m.Run(settle)
	s := sampleUncore(m, socket, sim.Millisecond, "median")
	s.Reserve(int(window/sim.Millisecond) + 2)
	m.Run(window)
	srt.Reset()
	for _, smp := range s.Samples {
		srt.Add(smp.Value)
	}
	return srt.Median()
}

// coresWithSliceAt returns n (core, slice) pairs on the die whose mesh
// distance is h hops. Cores with an exact-distance slice are preferred; on
// the irregular fused-off floorplan a few cores may lack one, and those
// fall back to the nearest available distance (preferring farther), which
// matches how one would pin threads on the real part.
func coresWithSliceAt(m *system.Machine, socket, h, n int) ([][2]int, error) {
	die := m.Socket(socket).Die
	var out [][2]int
	var fallback []int
	for c := 0; c < die.NumCores() && len(out) < n; c++ {
		if s, ok := die.SliceAtHops(c, h); ok {
			out = append(out, [2]int{c, s})
		} else {
			fallback = append(fallback, c)
		}
	}
	for _, c := range fallback {
		if len(out) >= n {
			break
		}
		for delta := 1; delta < die.Rows+die.Cols; delta++ {
			if s, ok := die.SliceAtHops(c, h+delta); ok {
				out = append(out, [2]int{c, s})
				break
			}
			if h-delta >= 0 {
				if s, ok := die.SliceAtHops(c, h-delta); ok {
					out = append(out, [2]int{c, s})
					break
				}
			}
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("experiments: only %d/%d cores on socket %d usable at %d hops", len(out), n, socket, h)
	}
	return out, nil
}
