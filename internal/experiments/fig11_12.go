package experiments

import (
	"fmt"
	"io"

	"repro/internal/sidechannel"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
)

// Fig11Result is the Figure 11 file-size-profiling study: traces for the
// paper's example sizes plus the classification accuracy at 300 KB
// granularity.
type Fig11Result struct {
	Sizes  []int
	Traces []*trace.Series
	Dwell  []sim.Time
	// Accuracy is the fraction of sweep jobs classified to the correct
	// 300 KB bucket (§5: "over 99 %").
	Accuracy float64
	Trials   int
}

// Render implements Result.
func (r Fig11Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11: uncore frequency traces while the victim compresses files")
	for i, s := range r.Sizes {
		fmt.Fprintf(w, "%d KB: low-frequency dwell %.0f ms (trace %d samples)\n",
			s, r.Dwell[i].Milliseconds(), len(r.Traces[i].Samples))
	}
	fmt.Fprintf(w, "size classification at 300 KB granularity: %.1f%% over %d trials (paper >99%%)\n",
		r.Accuracy*100, r.Trials)
	return nil
}

// Fig11 reproduces Figure 11 and the §5 accuracy claim.
func Fig11(opts Options) (Fig11Result, error) {
	res := Fig11Result{Sizes: []int{1024, 3072, 5120}}
	for _, size := range res.Sizes {
		if err := opts.Checkpoint("fig11: trace size=%dKB", size); err != nil {
			return Fig11Result{}, err
		}
		m := newMachine(opts)
		tr, err := sidechannel.CompressionTrace(m, size, 100*sim.Millisecond, 1200*sim.Millisecond)
		if err != nil {
			return Fig11Result{}, err
		}
		res.Traces = append(res.Traces, tr)
		res.Dwell = append(res.Dwell, sidechannel.DwellTime(tr, 3*sim.Millisecond))
		opts.Release(m)
	}

	// The attacker calibrates its dwell→size model on two reference
	// jobs of known size (its own training runs).
	model := sidechannel.FitDwell(
		res.Sizes[0], res.Dwell[0],
		res.Sizes[2], res.Dwell[2])

	// Accuracy sweep: candidate sizes 300 KB apart; each job must be
	// classified back to its bucket.
	var candidates []int
	for s := 600; s <= 5400; s += 300 {
		candidates = append(candidates, s)
	}
	sweep := candidates
	if opts.Quick {
		sweep = candidates[:6]
	}
	correct := 0
	for i, size := range sweep {
		if err := opts.Checkpoint("fig11: classify size=%dKB", size); err != nil {
			return Fig11Result{}, err
		}
		m := newMachine(opts.Reseeded(opts.Seed + uint64(i)*37))
		tr, err := sidechannel.CompressionTrace(m, size, 100*sim.Millisecond, 1400*sim.Millisecond)
		if err != nil {
			return Fig11Result{}, err
		}
		est := model.SizeKB(sidechannel.DwellTime(tr, 3*sim.Millisecond))
		if sidechannel.ClassifySize(est, candidates) == size {
			correct++
		}
		opts.Release(m)
	}
	res.Trials = len(sweep)
	res.Accuracy = float64(correct) / float64(len(sweep))
	return res, nil
}

// Fig12Result is the website-fingerprinting evaluation.
type Fig12Result struct {
	Report sidechannel.FingerprintReport
	// Example traces for the figure's named sites.
	Examples map[string]*trace.Series
}

// Render implements Result.
func (r Fig12Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Figure 12 / §5: website fingerprinting over %d sites (%d train, %d test visits per site)\n",
		r.Report.Sites, r.Report.TrainPerSite, r.Report.TestPerSite)
	fmt.Fprintf(w, "top-1 accuracy: %.2f%% (paper 82.18%%)\n", r.Report.Top1*100)
	fmt.Fprintf(w, "top-5 accuracy: %.2f%% (paper 91.48%%)\n", r.Report.Top5*100)
	if r.Report.Confusion != nil {
		if top := r.Report.Confusion.MostConfused(5); len(top) > 0 {
			fmt.Fprintln(w, "most-confused site pairs:")
			for _, p := range top {
				fmt.Fprintf(w, "  %s mistaken for %s (%d times)\n", p.Truth, p.Predicted, p.Count)
			}
		}
	}
	return nil
}

// Fig12 reproduces the §5 website-fingerprinting attack. The full run
// uses the paper's 100 sites; Quick shrinks the corpus.
func Fig12(opts Options) (Fig12Result, error) {
	nsites, train, test := 100, 4, 2
	if opts.Quick {
		nsites, train, test = 12, 3, 1
	}
	if err := opts.Checkpoint("fig12: fingerprint %d sites", nsites); err != nil {
		return Fig12Result{}, err
	}
	seedCtr := opts.Seed
	// Visits run strictly one at a time, so the factory can recycle the
	// previous visit's machine before building the next.
	var prev *system.Machine
	mk := func() *system.Machine {
		opts.Release(prev)
		seedCtr++
		cfg := system.DefaultConfig()
		cfg.Seed = seedCtr
		prev = bindMachine(opts.Machines.Get(cfg), opts)
		return prev
	}
	rep, err := sidechannel.Fingerprint(mk, sidechannel.Sites(nsites), train, test)
	opts.Release(prev)
	if err != nil {
		return Fig12Result{}, err
	}
	return Fig12Result{Report: rep}, nil
}

func init() {
	register(Experiment{ID: "fig11", Title: "File-size profiling via UFS", Run: func(o Options) (Result, error) { return Fig11(o) }})
	register(Experiment{ID: "fig12", Title: "Website fingerprinting via UFS", Run: func(o Options) (Result, error) { return Fig12(o) }})
}
