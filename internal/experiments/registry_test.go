// Registry behavior and the whole-catalog smoke test. This file is an
// external test package so it can drive the registry through
// internal/runner (which imports experiments) without a cycle.
package experiments_test

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
)

func TestGetUnknownID(t *testing.T) {
	for _, id := range []string{"", "nope", "fig999", "FIG3"} {
		if e, ok := experiments.Get(id); ok {
			t.Errorf("Get(%q) unexpectedly found %q", id, e.ID)
		}
	}
}

func TestGetKnownID(t *testing.T) {
	e, ok := experiments.Get("fig3")
	if !ok || e.ID != "fig3" || e.Run == nil || e.Title == "" {
		t.Fatalf("Get(fig3) = %+v, %v", e, ok)
	}
}

func TestAllOrderingStable(t *testing.T) {
	all := experiments.All()
	if len(all) == 0 {
		t.Fatal("no experiments registered")
	}
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Errorf("All() not sorted by ID: %v", ids)
	}
	again := experiments.All()
	for i := range all {
		if all[i].ID != again[i].ID {
			t.Fatalf("All() ordering unstable at %d: %q vs %q", i, all[i].ID, again[i].ID)
		}
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

// Every registered experiment must run under Quick with a short deadline
// and either finish or return promptly with the cancellation (or step
// budget) error — never hang, panic, or ignore its context. This is the
// audit check for the per-experiment cancellation checkpoints.
func TestEveryExperimentQuickUnderShortDeadline(t *testing.T) {
	cfg := runner.Config{
		Jobs:      4,
		Timeout:   400 * time.Millisecond,
		Grace:     10 * time.Second, // long: an abandonment here is a hard failure below
		KeepGoing: true,
		Quick:     true,
		Seed:      experiments.DefaultOptions().Seed,
	}
	sum, err := runner.Run(context.Background(), cfg, experiments.All())
	if err != nil {
		t.Fatalf("runner.Run: %v", err)
	}
	if len(sum.Reports) != len(experiments.All()) {
		t.Fatalf("%d reports for %d experiments", len(sum.Reports), len(experiments.All()))
	}
	for _, rep := range sum.Reports {
		rep := rep
		t.Run(rep.ID, func(t *testing.T) {
			if rep.Abandoned {
				t.Fatalf("%s ignored its cancelled context past the grace window", rep.ID)
			}
			switch rep.Status {
			case runner.StatusDone:
				if rep.Result == nil {
					t.Errorf("%s done without a result", rep.ID)
				}
			case runner.StatusFailed:
				// The only acceptable failure under a short deadline is
				// the deadline itself (or a step budget, if armed).
				if !errors.Is(rep.Err, context.DeadlineExceeded) && !errors.Is(rep.Err, sim.ErrBudgetExceeded) {
					t.Errorf("%s failed with %v, want only deadline/budget errors", rep.ID, rep.Err)
				}
			default:
				t.Errorf("%s unexpectedly %s (%v)", rep.ID, rep.Status, rep.Err)
			}
		})
	}
}
