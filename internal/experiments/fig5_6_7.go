package experiments

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RampResult covers Figures 5, 6 and 7: a frequency trace around a
// workload phase switch, with the measured step spacings.
type RampResult struct {
	Title string
	// Traces holds one series per socket of interest, sampled every
	// 200 µs as in §3.3.
	Traces []*trace.Series
	// SwitchAt is when the workload switched.
	SwitchAt sim.Time
	// StepMS lists the spacing (ms) between successive frequency steps
	// of the first trace after the switch — the ≈10 ms annotations of
	// Figures 5 and 6.
	StepMS []float64
}

// Render implements Result.
func (r RampResult) Render(w io.Writer) error {
	fmt.Fprintln(w, r.Title)
	fmt.Fprintf(w, "workload switch at %v\n", r.SwitchAt)
	fmt.Fprint(w, "step spacings (ms):")
	for _, s := range r.StepMS {
		fmt.Fprintf(w, " %.1f", s)
	}
	fmt.Fprintln(w)
	return trace.WriteTSV(w, r.Traces...)
}

// stepSpacings extracts the spacing between frequency changes after the
// switch instant.
func stepSpacings(s *trace.Series, after sim.Time) []float64 {
	var out []float64
	prev := after
	for _, st := range s.StepTimes() {
		if st <= after {
			continue
		}
		out = append(out, (st - prev).Milliseconds())
		prev = st
	}
	return out
}

// Fig5 reproduces Figure 5: a nop loop switches to a stalling loop at
// t=40 ms; the uncore frequency climbs 100 MHz roughly every 10 ms until
// it reaches the maximum.
func Fig5(opts Options) (RampResult, error) {
	return rampExperiment(opts, "Figure 5: uncore frequency trace upon initiating the stalling loop", true)
}

// Fig6 reproduces Figure 6: the stalling loop stops and the frequency
// steps back down every ~10 ms.
func Fig6(opts Options) (RampResult, error) {
	return rampExperiment(opts, "Figure 6: uncore frequency trace upon stopping the stalling loop", false)
}

func rampExperiment(opts Options, title string, startStalling bool) (RampResult, error) {
	if err := opts.Checkpoint("ramp: %s", title); err != nil {
		return RampResult{}, err
	}
	m := newMachine(opts)
	switchAt := 40 * sim.Millisecond
	slice, _ := m.Socket(0).Die.SliceAtHops(0, 0)
	var w *workload.Phased
	if startStalling {
		w = &workload.Phased{Phases: []workload.Phase{
			{Until: switchAt, W: workload.Nop{}},
			{Until: 400 * sim.Millisecond, W: &workload.Stalling{Slice: slice}},
		}}
	} else {
		// Pre-warm: stall long enough to saturate, then switch to nop.
		switchAt = 140 * sim.Millisecond
		w = &workload.Phased{Phases: []workload.Phase{
			{Until: switchAt, W: &workload.Stalling{Slice: slice}},
			{Until: 500 * sim.Millisecond, W: workload.Nop{}},
		}}
	}
	m.Spawn("phase", 0, 0, 0, w)
	tr := sampleUncore(m, 0, 200*sim.Microsecond, "socket0")
	m.Run(switchAt + 170*sim.Millisecond)
	opts.Release(m)
	return RampResult{
		Title:    title,
		Traces:   []*trace.Series{tr},
		SwitchAt: switchAt,
		StepMS:   stepSpacings(tr, switchAt),
	}, nil
}

// Fig7 reproduces Figure 7: the stalling loop runs on socket 0 only, yet
// socket 1's uncore follows with a ~10 ms lag and stabilises 100 MHz lower
// (§3.4).
func Fig7(opts Options) (RampResult, error) {
	if err := opts.Checkpoint("fig7: cross-socket ramp"); err != nil {
		return RampResult{}, err
	}
	m := newMachine(opts)
	switchAt := 40 * sim.Millisecond
	slice, _ := m.Socket(0).Die.SliceAtHops(0, 0)
	m.Spawn("phase", 0, 0, 0, &workload.Phased{Phases: []workload.Phase{
		{Until: switchAt, W: workload.Nop{}},
		{Until: 400 * sim.Millisecond, W: &workload.Stalling{Slice: slice}},
	}})
	t0 := sampleUncore(m, 0, 200*sim.Microsecond, "socket0")
	t1 := sampleUncore(m, 1, 200*sim.Microsecond, "socket1")
	m.Run(switchAt + 170*sim.Millisecond)
	opts.Release(m)
	return RampResult{
		Title:    "Figure 7: uncore frequency traces on both processors (stalling loop on processor 0)",
		Traces:   []*trace.Series{t0, t1},
		SwitchAt: switchAt,
		StepMS:   stepSpacings(t0, switchAt),
	}, nil
}

func init() {
	register(Experiment{ID: "fig5", Title: "Frequency ramp-up on stalling-loop start", Run: func(o Options) (Result, error) { return Fig5(o) }})
	register(Experiment{ID: "fig6", Title: "Frequency ramp-down on stalling-loop stop", Run: func(o Options) (Result, error) { return Fig6(o) }})
	register(Experiment{ID: "fig7", Title: "Cross-socket frequency coupling", Run: func(o Options) (Result, error) { return Fig7(o) }})
}
