// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment builds a fresh simulated platform, runs the
// paper's workload, and renders the same rows/series the paper reports.
// The per-experiment index lives in DESIGN.md; paper-vs-measured numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/system"
)

// Options tune an experiment run.
type Options struct {
	// Seed fixes all randomness; every experiment is deterministic in
	// it.
	Seed uint64
	// Quick shrinks trial counts and sweep densities for smoke tests
	// and benchmarks; headline shapes are preserved.
	Quick bool

	// Context, when non-nil, bounds the run: every machine an
	// experiment builds is bound to it (cancellation reaches the engine
	// hot loop), and experiments check it between sweep points so a
	// cancelled run returns ctx.Err() instead of finishing the sweep.
	// Nil means context.Background() — no deadline, matching the
	// recorded results.
	Context context.Context
	// Log, when non-nil, receives the experiment's progress lines
	// (sweep checkpoints); the runner captures it into crash artifacts.
	Log io.Writer
	// MaxEngineSteps, when positive, arms every machine's step watchdog
	// so a runaway simulation fails with sim.ErrBudgetExceeded instead
	// of spinning. The budget is per machine, not per experiment.
	MaxEngineSteps int64
	// Machines, when non-nil, recycles platform machines across the
	// run's trials: newMachine draws from the pool and experiments hand
	// finished machines back through Release. Machine.Reset makes a
	// recycled machine bit-identical to a fresh one, so pooling changes
	// only the allocation profile, never the results. Nil builds a fresh
	// machine per trial.
	Machines *system.Pool
}

// DefaultOptions returns the options used for the recorded results.
func DefaultOptions() Options { return Options{Seed: 0x5eed} }

// Ctx returns the run's context, defaulting to context.Background().
func (o Options) Ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Err reports whether the run has been cancelled; experiments call it
// between sweep points and return the error unchanged.
func (o Options) Err() error { return o.Ctx().Err() }

// Checkpoint is the audit hook placed between sweep points: it logs the
// stage about to run and returns the cancellation error, if any. The
// stage line lands in the runner's per-run log, so a crash artifact shows
// how far the sweep got.
func (o Options) Checkpoint(format string, args ...any) error {
	o.Logf(format, args...)
	return o.Err()
}

// Logf writes one progress line to the run's log, if any.
func (o Options) Logf(format string, args ...any) {
	if o.Log == nil {
		return
	}
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// Reseeded returns a copy of o with the seed replaced, keeping the
// context, log, budget, and machine pool. Experiments that build
// per-trial machines derive their inner options this way so
// cancellation still reaches the inner engines.
func (o Options) Reseeded(seed uint64) Options {
	o.Seed = seed
	return o
}

// Release hands a finished trial machine back to the run's pool; with
// no pool it is a no-op and the machine is left to the collector. Call
// it only once nothing downstream retains the machine — results must
// have been copied out of any machine-owned state.
func (o Options) Release(m *system.Machine) {
	o.Machines.Put(m)
}

// Result is a rendered experiment outcome.
type Result interface {
	// Render writes a human-readable reproduction of the paper
	// artefact.
	Render(w io.Writer) error
}

// Experiment regenerates one paper artefact.
type Experiment struct {
	// ID is the index key, e.g. "fig3" or "tab2".
	ID string
	// Title describes the artefact.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
