// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment builds a fresh simulated platform, runs the
// paper's workload, and renders the same rows/series the paper reports.
// The per-experiment index lives in DESIGN.md; paper-vs-measured numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Options tune an experiment run.
type Options struct {
	// Seed fixes all randomness; every experiment is deterministic in
	// it.
	Seed uint64
	// Quick shrinks trial counts and sweep densities for smoke tests
	// and benchmarks; headline shapes are preserved.
	Quick bool
}

// DefaultOptions returns the options used for the recorded results.
func DefaultOptions() Options { return Options{Seed: 0x5eed} }

// Result is a rendered experiment outcome.
type Result interface {
	// Render writes a human-readable reproduction of the paper
	// artefact.
	Render(w io.Writer) error
}

// Experiment regenerates one paper artefact.
type Experiment struct {
	// ID is the index key, e.g. "fig3" or "tab2".
	ID string
	// Title describes the artefact.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
