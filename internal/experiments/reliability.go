package experiments

import (
	"fmt"
	"io"

	"repro/internal/channel"
	"repro/internal/channel/link"
	"repro/internal/channel/ufvariation"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/system"
)

// The reliability experiment extends the paper's §4.3.3 stress study: it
// sweeps the fault injector's intensity knob and compares the raw
// cross-processor channel (no protection, fixed interval) with the ARQ
// transport (CRC-8 framing, retransmission, pilot recalibration, rate
// fallback) over the *same* fault processes. The headline is the paper's
// robustness claim made quantitative: where the raw channel's BER climbs
// past the Hamming correction radius, the transport still delivers the
// payload — trading bit rate, not correctness.

// relRow is one intensity point of the sweep.
type relRow struct {
	Intensity float64
	// RawBER is the unprotected channel's bit error rate at the base
	// interval; LinkBER the pre-ECC error rate the transport's frames
	// actually saw (retransmissions included).
	RawBER, LinkBER float64
	// Delivery is the fraction of payload bytes the transport delivered;
	// ResidualBER the post-ARQ bit error rate over the delivered prefix.
	Delivery, ResidualBER float64
	// Goodput is delivered payload bits per second of air time.
	Goodput float64
	// Retrans, Recal, Degrade count retransmissions, pilot
	// recalibrations, and bit-interval doublings.
	Retrans, Recal, Degrade int
	// Interval is the transport's final bit interval.
	Interval sim.Time
	// Note is empty for a clean delivery, or the transport's error.
	Note string
}

type relResult struct {
	PayloadBytes int
	BaseInterval sim.Time
	Rows         []relRow
}

func (r *relResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Reliability under injected faults (§4.3.3 extension): %d-byte payload,\n", r.PayloadBytes)
	fmt.Fprintf(w, "cross-processor channel at %v base interval, stop-and-wait ARQ transport.\n\n", r.BaseInterval)
	fmt.Fprintf(w, "%9s  %8s  %8s  %9s  %9s  %8s  %8s  %6s  %8s  %9s\n",
		"intensity", "raw BER", "link BER", "delivery", "resid BER", "goodput", "retrans", "recal", "degrade", "interval")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%9.2f  %8.3f  %8.3f  %8.1f%%  %9.4f  %7.2f/s  %8d  %6d  %8d  %9v",
			row.Intensity, row.RawBER, row.LinkBER, row.Delivery*100, row.ResidualBER,
			row.Goodput, row.Retrans, row.Recal, row.Degrade, row.Interval)
		if row.Note != "" {
			fmt.Fprintf(w, "  (%s)", row.Note)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nThe raw channel loses bits as the fault intensity rises; the transport")
	fmt.Fprintln(w, "holds delivery by retransmitting, recalibrating, and finally giving up")
	fmt.Fprintln(w, "bit rate (the growing interval), never correctness.")
	return nil
}

// relPlatform builds one faulted platform: the Table 1 machine plus an
// attached injector at the given intensity, both deterministic in the
// experiment seed.
func relPlatform(opts Options, intensity float64) (*relMachine, error) {
	m := newMachine(opts)
	inj := faults.New(faults.DefaultConfig(intensity), m.Rand(0xFA017))
	if err := inj.Attach(m); err != nil {
		return nil, err
	}
	return &relMachine{m: m, inj: inj}, nil
}

type relMachine struct {
	m   *system.Machine
	inj *faults.Injector
}

func runReliability(opts Options) (Result, error) {
	intensities := []float64{0, 0.25, 0.5, 0.75, 1}
	payloadBytes := 30
	if opts.Quick {
		intensities = []float64{0, 0.6, 1}
		payloadBytes = 12
	}
	base := ufvariation.DefaultConfig().CrossProcessor()
	payload := make([]byte, payloadBytes)
	prng := sim.NewRand(opts.Seed ^ 0xbadfa017)
	for i := range payload {
		payload[i] = byte(prng.IntN(256))
	}

	res := &relResult{PayloadBytes: payloadBytes, BaseInterval: base.Interval}
	for _, intensity := range intensities {
		if err := opts.Checkpoint("rel: intensity=%v", intensity); err != nil {
			return nil, err
		}
		row := relRow{Intensity: intensity}

		// Raw leg: the unprotected channel at the base interval under
		// the same fault mix.
		{
			plat, err := relPlatform(opts, intensity)
			if err != nil {
				return nil, err
			}
			bits := channel.FromBytes(payload)
			raw, err := ufvariation.Run(plat.m, base, bits)
			if err != nil {
				return nil, err
			}
			rx := plat.inj.CorruptBits(raw.Received)
			row.RawBER = channel.Evaluate(bits, rx, base.Interval).BER
			opts.Release(plat.m)
		}

		// Transport leg: fresh platform, identical fault processes, the
		// full ARQ stack.
		{
			plat, err := relPlatform(opts, intensity)
			if err != nil {
				return nil, err
			}
			phy := &ufvariation.LinkPhy{
				M:       plat.m,
				Cfg:     base,
				Corrupt: plat.inj.CorruptBits,
				AckLoss: plat.inj.AckLost,
			}
			tcfg := link.DefaultTransportConfig()
			tcfg.Interval = base.Interval
			tr := link.NewTransport(phy, tcfg)
			t0 := plat.m.Now()
			got, tstats, terr := tr.Send(payload)
			air := plat.m.Now() - t0

			row.Delivery = float64(len(got)) / float64(len(payload))
			row.ResidualBER = prefixBER(payload, got)
			if air > 0 {
				row.Goodput = float64(len(got)*8) / air.Seconds()
			}
			if phy.RawBits > 0 {
				row.LinkBER = float64(phy.RawErrors) / float64(phy.RawBits)
			}
			row.Retrans = tstats.Retransmissions
			row.Recal = tstats.Recalibrations
			row.Degrade = tstats.Degradations
			row.Interval = tr.Interval()
			if terr != nil {
				row.Note = terr.Error()
			}
			opts.Release(plat.m)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// prefixBER is the bit error rate of got against the matching prefix of
// want, normalised by the full payload so undelivered bytes don't hide.
func prefixBER(want, got []byte) float64 {
	if len(want) == 0 {
		return 0
	}
	errs := 0
	for i, g := range got {
		if i >= len(want) {
			break
		}
		d := g ^ want[i]
		for ; d != 0; d &= d - 1 {
			errs++
		}
	}
	return float64(errs) / float64(len(want)*8)
}

func init() {
	register(Experiment{
		ID:    "rel",
		Title: "Reliability: raw channel vs ARQ transport across fault intensity",
		Run:   runReliability,
	})
}
