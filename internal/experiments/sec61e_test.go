package experiments

import "testing"

func TestSec61eEnergyTradeoff(t *testing.T) {
	res, err := Sec61e(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Sec61eRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	// The §6.1 anchor: fixing the uncore at freq_max costs roughly 7 %
	// on the analytics reference workload.
	fixed := rows["fixed-frequency"]
	if fixed.OverheadPct < 4 || fixed.OverheadPct > 12 {
		t.Errorf("fixed-frequency overhead %.1f%%, paper ≈7%%", fixed.OverheadPct)
	}
	if !fixed.StopsChannel {
		t.Error("fixed frequency does not stop the channel")
	}
	// Busy-uncore burns comparable energy; restricted range is cheap
	// but ineffective against the covert channel.
	if rows["busy-uncore"].OverheadPct < 3 {
		t.Errorf("busy-uncore overhead %.1f%%, expected comparable to pinning", rows["busy-uncore"].OverheadPct)
	}
	if rows["restricted-range"].StopsChannel {
		t.Error("restricted range should not stop the covert channel (§6.1)")
	}
	if rows["restricted-range"].OverheadPct > 0 {
		t.Errorf("restricted range costs energy (%.1f%%); it should save it", rows["restricted-range"].OverheadPct)
	}
	if rows["none"].OverheadPct != 0 {
		t.Error("baseline overhead not zero")
	}
}

func TestSec61fRangeBluntsFingerprinting(t *testing.T) {
	if testing.Short() {
		t.Skip("fingerprinting sweeps in long mode only")
	}
	res, err := Sec61f(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// §6.1: the narrow range makes site traces much harder to
	// distinguish, while the default range fingerprints well.
	if res.Top1Default < 0.7 {
		t.Errorf("default-range top-1 %.2f unexpectedly low", res.Top1Default)
	}
	if res.Top1Range > res.Top1Default-0.15 {
		t.Errorf("restricted range barely hurts fingerprinting: %.2f vs %.2f",
			res.Top1Range, res.Top1Default)
	}
}
