package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFig9Transmission(t *testing.T) {
	res, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.BER != 0 {
		t.Errorf("Figure 9 example transmission BER = %v, want 0 (sent %v, got %v)",
			res.Res.BER, res.Res.Sent, res.Res.Received)
	}
	if res.Res.Sent.String() != "1101001011" {
		t.Errorf("payload = %v, want the paper's 1101001011", res.Res.Sent)
	}
	if res.Res.Latency == nil || len(res.Res.Latency.Samples) == 0 {
		t.Error("no latency trace recorded")
	}
	// The frequency trace must span the idle point to the maximum, as
	// in Figure 9.
	vals := res.Freq.Values()
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// With 38 ms intervals and a longest run of two "1"s the ramp
	// reaches the 2.2–2.4 GHz region before the next "0" (each interval
	// is ≈4 governor epochs, i.e. ≈400 MHz of movement).
	if lo > 1.51 || hi < 2.25 {
		t.Errorf("frequency trace spans [%.1f, %.1f] GHz, want ≈[1.5, ≥2.3]", lo, hi)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1101001011") {
		t.Error("render missing payload")
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []struct {
		name string
		pts  []Fig10Point
	}{{"cross-core", res.CrossCore}, {"cross-processor", res.CrossProcessor}} {
		if len(sc.pts) == 0 {
			t.Fatalf("%s: empty sweep", sc.name)
		}
		// Low rates (long intervals) are near error-free; the shortest
		// interval has substantially more errors (the Figure 10 knee).
		long := sc.pts[len(sc.pts)-1]
		short := sc.pts[0]
		if long.BER > 0.06 {
			t.Errorf("%s: BER %.3f at %v, want ≈0", sc.name, long.BER, long.Interval)
		}
		if short.BER < long.BER {
			t.Errorf("%s: shortest interval BER %.3f not above longest %.3f", sc.name, short.BER, long.BER)
		}
	}
	// The cross-processor channel peaks below the cross-core channel
	// (paper: 31 vs 46 bit/s).
	if PeakCapacity(res.CrossProcessor).Capacity >= PeakCapacity(res.CrossCore).Capacity {
		t.Errorf("cross-processor peak %.1f not below cross-core peak %.1f",
			PeakCapacity(res.CrossProcessor).Capacity, PeakCapacity(res.CrossCore).Capacity)
	}
}

func TestFig10FullSweepPeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in long mode only")
	}
	res, err := Fig10(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cc := PeakCapacity(res.CrossCore)
	cp := PeakCapacity(res.CrossProcessor)
	// Paper: cross-core capacity peaks at 46 bit/s (47.6 bit/s raw,
	// 21 ms); cross-processor at 31 bit/s (33 bit/s raw, 33 ms). The
	// reproduction must land in the same region.
	if cc.Capacity < 38 || cc.Capacity > 55 {
		t.Errorf("cross-core peak capacity %.1f bit/s, paper ≈46", cc.Capacity)
	}
	if cc.Interval < 16*sim.Millisecond || cc.Interval > 28*sim.Millisecond {
		t.Errorf("cross-core peak at %v, paper ≈21 ms", cc.Interval)
	}
	if cp.Capacity < 25 || cp.Capacity > 40 {
		t.Errorf("cross-processor peak capacity %.1f bit/s, paper ≈31", cp.Capacity)
	}
	if cp.Interval < 23*sim.Millisecond || cp.Interval > 40*sim.Millisecond {
		t.Errorf("cross-processor peak at %v, paper ≈33 ms", cp.Interval)
	}
	if cp.Capacity >= cc.Capacity {
		t.Errorf("cross-processor peak %.1f ≥ cross-core peak %.1f", cp.Capacity, cc.Capacity)
	}
}

func TestFig10xVariantsAllFunctional(t *testing.T) {
	res, err := Fig10x(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d variants", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Every Algorithm 1 / §4.3.3 variant works at the paper's
		// peak operating points.
		if row.CrossCoreBER > 0.12 {
			t.Errorf("%s: cross-core BER %.3f at 21ms", row.Variant, row.CrossCoreBER)
		}
		if row.CrossProcBER > 0.12 {
			t.Errorf("%s: cross-processor BER %.3f at 33ms", row.Variant, row.CrossProcBER)
		}
	}
}
