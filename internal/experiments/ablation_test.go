package experiments

import "testing"

func TestAblations(t *testing.T) {
	res, err := Ablate(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// (a) A longer status-sampling window must hurt fast intervals more
	// than safe ones: the knee moves right.
	n := len(res.TailWindowMS)
	if n < 2 {
		t.Fatal("no tail-window sweep")
	}
	if res.BERFast[n-1] <= res.BERFast[0] {
		t.Errorf("fast-interval BER not increasing with tail window: %v", res.BERFast)
	}
	for i, b := range res.BERSafe {
		if b > res.BERFast[i]+0.02 {
			t.Errorf("safe interval worse than fast one at tail %v ms", res.TailWindowMS[i])
		}
	}
	// (b) More correlated noise → more errors at the peak.
	if !(res.BERPeak[0] <= res.BERPeak[1] && res.BERPeak[1] < res.BERPeak[2]) {
		t.Errorf("BER not increasing with drift noise: %v", res.BERPeak)
	}
	// (c) The superlinear distance weighting is what lets one far
	// thread reach the maximum (Figure 3's 3-hop row); flat weights
	// cannot.
	last := len(res.Fig3Types) - 1
	if res.OneThreadSuper[last] < 2.35 {
		t.Errorf("default weights: one 3-hop thread reaches %.1f GHz, want 2.4", res.OneThreadSuper[last])
	}
	if res.OneThreadFlat[last] >= res.OneThreadSuper[last] {
		t.Errorf("flat weights reach %.1f GHz, expected below the default %.1f",
			res.OneThreadFlat[last], res.OneThreadSuper[last])
	}
}
