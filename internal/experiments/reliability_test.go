package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func runRel(t *testing.T) *relResult {
	t.Helper()
	opts := DefaultOptions()
	opts.Quick = true
	res, err := runReliability(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.(*relResult)
}

// TestReliabilityAcceptance pins the experiment's headline claims: at a
// fault intensity where the raw channel's BER is past 5% the transport
// still delivers ≥99% of the payload, and at full intensity it degrades
// the bit rate instead of erroring.
func TestReliabilityAcceptance(t *testing.T) {
	res := runRel(t)
	if len(res.Rows) < 3 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	clean := res.Rows[0]
	if clean.Intensity != 0 || clean.RawBER != 0 || clean.Delivery != 1 {
		t.Errorf("clean row not clean: %+v", clean)
	}
	found := false
	for _, row := range res.Rows {
		if row.RawBER > 0.05 && row.Delivery >= 0.99 && row.ResidualBER == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no intensity with raw BER > 5%% and ≥99%% delivery:\n%+v", res.Rows)
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Intensity != 1 {
		t.Fatalf("last row at intensity %v", last.Intensity)
	}
	if last.Note != "" {
		t.Errorf("full intensity errored instead of degrading: %s", last.Note)
	}
	if last.Delivery < 0.99 {
		t.Errorf("full intensity delivered %.0f%%", last.Delivery*100)
	}
	if last.Degrade == 0 && last.Retrans == 0 {
		t.Error("full intensity cost neither retransmissions nor rate")
	}
	if last.RawBER <= clean.RawBER {
		t.Error("raw BER did not rise with intensity")
	}
	if last.Interval < res.BaseInterval {
		t.Errorf("final interval %v below base %v", last.Interval, res.BaseInterval)
	}
}

// TestReliabilityReproducible: the sweep is deterministic in the seed —
// the property every recorded EXPERIMENTS.md number relies on.
func TestReliabilityReproducible(t *testing.T) {
	a, b := runRel(t), runRel(t)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different sweeps:\n%+v\n%+v", a, b)
	}
}

func TestReliabilityRender(t *testing.T) {
	res := runRel(t)
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"intensity", "raw BER", "delivery", "goodput"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < len(res.Rows)+4 {
		t.Errorf("render too short (%d lines)", lines)
	}
}

func TestReliabilityRegistered(t *testing.T) {
	if _, ok := Get("rel"); !ok {
		t.Fatal("experiment \"rel\" not registered")
	}
}
