package experiments

import "testing"

func TestTab2Shape(t *testing.T) {
	res, err := Tab2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacity) != len(res.N) {
		t.Fatalf("ragged result")
	}
	first := res.Capacity[0]
	last := res.Capacity[len(res.Capacity)-1]
	if first < 2 {
		t.Errorf("capacity under stress-ng -1 = %.1f bit/s, want clearly functional (paper 8.6)", first)
	}
	if last > 1.5 {
		t.Errorf("capacity under stress-ng -9 = %.1f bit/s, want ≈0 (paper ~0)", last)
	}
	if last >= first {
		t.Errorf("capacity does not decline with stress threads: %v", res.Capacity)
	}
}

func TestSec61Countermeasures(t *testing.T) {
	res, err := Sec61(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range res.Cases {
		got[c.Name] = c.Functional
	}
	for name, want := range Sec61Expected {
		if got[name] != want {
			t.Errorf("countermeasure %s: functional=%v, paper says %v", name, got[name], want)
		}
	}
	// §6.1: restricting the range does not reduce the capacity.
	var none, restricted float64
	for _, c := range res.Cases {
		switch c.Name {
		case "none":
			none = c.Capacity
		case "restricted-range":
			restricted = c.Capacity
		}
	}
	if restricted < none*0.8 {
		t.Errorf("restricted range capacity %.1f far below unrestricted %.1f; paper says it stays the same", restricted, none)
	}
}

func TestFig11FileSizeProfiling(t *testing.T) {
	res, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Dwell grows with size (Figure 11's visual claim).
	for i := 1; i < len(res.Dwell); i++ {
		if res.Dwell[i] <= res.Dwell[i-1] {
			t.Errorf("dwell not increasing with size: %v", res.Dwell)
		}
	}
	if res.Accuracy < 0.95 {
		t.Errorf("size classification accuracy %.2f, paper >0.99", res.Accuracy)
	}
}

func TestFig12FingerprintQuick(t *testing.T) {
	res, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Top1 < 0.6 {
		t.Errorf("top-1 accuracy %.2f on reduced corpus, want ≥0.6", res.Report.Top1)
	}
	if res.Report.Top5 < res.Report.Top1 {
		t.Error("top-5 below top-1")
	}
}

func TestFig12FullAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full 100-site evaluation in long mode only")
	}
	res, err := Fig12(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 82.18 % top-1, 91.48 % top-5 over 100 sites.
	if res.Report.Top1 < 0.70 || res.Report.Top1 > 0.95 {
		t.Errorf("top-1 = %.2f%%, paper 82.18%%", res.Report.Top1*100)
	}
	if res.Report.Top5 < res.Report.Top1 || res.Report.Top5 < 0.85 {
		t.Errorf("top-5 = %.2f%%, paper 91.48%%", res.Report.Top5*100)
	}
}
