package experiments

import (
	"fmt"
	"io"

	"repro/internal/channel"
	"repro/internal/channel/link"
	"repro/internal/channel/ufvariation"
	"repro/internal/faults"
	"repro/internal/sim"
)

// The sync experiment quantifies the self-synchronizing receiver: the
// paper's §4.3.2 threat model grants sender and receiver a shared
// timestamp counter, and the decode collapses as soon as that assumption
// slips — a clock-rate error walks the measurement windows off the
// sender's intervals, an unknown start phase misplaces them entirely,
// and a long receiver preemption desynchronizes the stream mid-frame.
// Part A sweeps clock skew against payload length with the symbol
// tracker off and on; part B starts the receiver at an unknown phase and
// lets frame acquisition find the sender in-band; part C runs the ARQ
// transport under the combined synchronization fault mix (unknown start
// phase, wandering clock, random blackouts) and reports the resync
// escalation's work: desync verdicts, pilot recalibrations, full
// reacquisitions, and forced rate fallbacks.

// syncSkewRow is one (skew, payload) cell of part A, tracker off vs on.
type syncSkewRow struct {
	PPM  float64
	Bits int
	// UntrackedBER is the fixed-window §4.3.2 decode; TrackedBER the
	// DLL-tracked decode of the same transmission parameters.
	UntrackedBER, TrackedBER float64
	// PPMEst is the tracker's final clock-error estimate; Locked its
	// end-of-frame lock verdict.
	PPMEst float64
	Locked bool
}

// syncOffsetRow is one unknown-start-phase cell of part B.
type syncOffsetRow struct {
	OffsetBits float64
	Tracked    bool
	BER        float64
	Acquired   bool
	Score      float64
	// OriginErr is the signed error of the acquired origin against the
	// true start offset.
	OriginErr sim.Time
}

// syncTransportRow is one transport leg of part C.
type syncTransportRow struct {
	Label                 string
	Delivery, ResidualBER float64
	Desyncs, Reacq        int
	Recal, Degrade        int
	Retrans               int
	Blackouts             int
	Interval              sim.Time
	Note                  string
}

type syncResult struct {
	Interval     sim.Time
	PayloadBytes int
	Skews        []syncSkewRow
	Offsets      []syncOffsetRow
	Transport    []syncTransportRow
}

func (r *syncResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Self-synchronizing receiver (§4.3.2 synchronisation assumption relaxed),\n")
	fmt.Fprintf(w, "cross-core channel at %v bit interval.\n\n", r.Interval)

	fmt.Fprintln(w, "A. Clock skew × payload length, symbol tracker off vs on:")
	fmt.Fprintf(w, "%8s  %6s  %10s  %9s  %8s  %7s\n",
		"skew", "bits", "fixed BER", "DLL BER", "ppm est", "locked")
	for _, row := range r.Skews {
		fmt.Fprintf(w, "%5.0fppm  %6d  %10.3f  %9.3f  %8.0f  %7v\n",
			row.PPM, row.Bits, row.UntrackedBER, row.TrackedBER, row.PPMEst, row.Locked)
	}

	fmt.Fprintln(w, "\nB. Unknown start phase (no shared start instant), preamble acquisition:")
	fmt.Fprintf(w, "%11s  %8s  %8s  %9s  %7s  %11s\n",
		"offset", "tracker", "BER", "acquired", "score", "origin err")
	for _, row := range r.Offsets {
		mode := "off"
		if row.Tracked {
			mode = "on"
		}
		fmt.Fprintf(w, "%8.1fbit  %8s  %8.3f  %9v  %7.3f  %11v\n",
			row.OffsetBits, mode, row.BER, row.Acquired, row.Score, row.OriginErr)
	}

	fmt.Fprintf(w, "\nC. ARQ transport under combined sync faults (unknown phase, wandering\n")
	fmt.Fprintf(w, "   clock, random blackouts), %d-byte payload:\n", r.PayloadBytes)
	fmt.Fprintf(w, "%9s  %8s  %9s  %7s  %6s  %6s  %8s  %8s  %9s\n",
		"receiver", "delivery", "resid BER", "desyncs", "reacq", "recal", "degrade", "retrans", "interval")
	for _, row := range r.Transport {
		fmt.Fprintf(w, "%9s  %7.1f%%  %9.4f  %7d  %6d  %6d  %8d  %8d  %9v",
			row.Label, row.Delivery*100, row.ResidualBER,
			row.Desyncs, row.Reacq, row.Recal, row.Degrade, row.Retrans, row.Interval)
		if row.Note != "" {
			fmt.Fprintf(w, "  (%s)", row.Note)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "\nWithout the tracker the channel only works inside the paper's shared-TSC")
	fmt.Fprintln(w, "assumption: skew wrecks long payloads and an unknown start phase wrecks")
	fmt.Fprintln(w, "everything. The synchronization layer recovers both in-band — the DLL")
	fmt.Fprintln(w, "cancels the clock error it estimates, acquisition finds the sender's")
	fmt.Fprintln(w, "phase from the calibration preamble, and the transport's escalation")
	fmt.Fprintln(w, "(pilot, reacquisition, rate fallback) turns desync verdicts into")
	fmt.Fprintln(w, "delivered frames instead of retransmission storms.")
	return nil
}

func runSync(opts Options) (Result, error) {
	base := ufvariation.DefaultConfig()
	base.Interval = 21 * sim.Millisecond

	skews := []float64{0, 500, 2000}
	lengths := []int{48, 256}
	offsets := []float64{0.5, 2.5}
	payloadBytes := 18
	if opts.Quick {
		skews = []float64{0, 2000}
		lengths = []int{96}
		offsets = []float64{2.5}
		payloadBytes = 6
	}

	res := &syncResult{Interval: base.Interval, PayloadBytes: payloadBytes}

	// Part A: skew × payload, tracker off vs on, same transmission
	// parameters per cell.
	cell := uint64(0)
	for _, ppm := range skews {
		for _, n := range lengths {
			if err := opts.Checkpoint("sync: skew=%v bits=%d", ppm, n); err != nil {
				return nil, err
			}
			row := syncSkewRow{PPM: ppm, Bits: n}
			for _, track := range []bool{false, true} {
				m := newMachine(opts)
				cfg := base
				cfg.SkewPPM = ppm
				cfg.Track = track
				bits := channel.RandomBits(m.Rand(0x51AC+cell), n)
				r, err := ufvariation.Run(m, cfg, bits)
				if err != nil {
					return nil, err
				}
				opts.Release(m)
				if track {
					row.TrackedBER = r.BER
					if r.Sync != nil {
						row.PPMEst = r.Sync.PPMEst
						row.Locked = r.Sync.Locked
					}
				} else {
					row.UntrackedBER = r.BER
				}
			}
			cell++
			res.Skews = append(res.Skews, row)
		}
	}

	// Part B: unknown start phase. The tracked receiver hunts the
	// calibration preamble; the untracked contrast row shows what the
	// fixed-window decode makes of the same offset.
	offsetLeg := func(offsetBits float64, track bool) error {
		m := newMachine(opts)
		cfg := base
		cfg.OnlineCalibration = true
		cfg.Track = track
		cfg.StartOffset = sim.Time(offsetBits * float64(base.Interval))
		bits := channel.RandomBits(m.Rand(0x0FF5+cell), 96)
		cell++
		r, err := ufvariation.Run(m, cfg, bits)
		if err != nil {
			return err
		}
		opts.Release(m)
		row := syncOffsetRow{OffsetBits: offsetBits, Tracked: track, BER: r.BER}
		if r.Sync != nil {
			row.Acquired = r.Sync.Acquired
			row.Score = r.Sync.AcquireScore
			row.OriginErr = r.Sync.Origin - cfg.StartOffset
		}
		res.Offsets = append(res.Offsets, row)
		return nil
	}
	for _, ob := range offsets {
		if err := opts.Checkpoint("sync: offset=%.1f bits", ob); err != nil {
			return nil, err
		}
		if err := offsetLeg(ob, true); err != nil {
			return nil, err
		}
	}
	if err := offsetLeg(offsets[len(offsets)-1], false); err != nil {
		return nil, err
	}

	// Part C: the transport under the combined synchronization fault
	// mix. The tracked leg must deliver by escalating (pilot →
	// reacquisition → rate fallback); the untracked leg shows the same
	// faults defeating a fixed-window receiver at every rate.
	payload := make([]byte, payloadBytes)
	prng := sim.NewRand(opts.Seed ^ 0x5edc)
	for i := range payload {
		payload[i] = byte(prng.IntN(256))
	}
	transportLeg := func(label string, track bool) error {
		m := newMachine(opts)
		inj := faults.New(faults.Config{
			StartOffsetBits:   2.5,
			WanderAmpPPM:      1500,
			WanderPeriod:      2 * sim.Second,
			DesyncPreemptProb: 0.25,
			DesyncPreemptBits: 8,
		}, m.Rand(0xFA5C))
		phy := &ufvariation.LinkPhy{M: m, Cfg: base, Track: track}
		phy.Cfg.SkewPPM = 1200
		phy.SyncFaults = func(c *ufvariation.Config, totalBits int) {
			c.StartOffset = inj.StartOffset(c.Interval)
			c.Clock = inj.ReceiverClock(c.SkewPPM)
			c.Preemptions = nil
			if at, dur, ok := inj.DesyncPreemption(totalBits, c.Interval); ok {
				c.Preemptions = []ufvariation.Preemption{{At: at, Dur: dur}}
			}
		}
		tcfg := link.DefaultTransportConfig()
		tcfg.Interval = base.Interval
		// Two rate-halving steps of headroom: enough for the escalation
		// to matter, bounded so a hopeless receiver fails finitely.
		tcfg.MaxInterval = 4 * base.Interval
		tr := link.NewTransport(phy, tcfg)
		got, tstats, terr := tr.Send(payload)
		opts.Release(m)

		row := syncTransportRow{
			Label:     label,
			Delivery:  float64(len(got)) / float64(len(payload)),
			Desyncs:   tstats.Desyncs,
			Reacq:     tstats.Reacquisitions,
			Recal:     tstats.Recalibrations,
			Degrade:   tstats.Degradations,
			Retrans:   tstats.Retransmissions,
			Blackouts: inj.Stats().DesyncPreemptions,
			Interval:  tr.Interval(),
		}
		row.ResidualBER = prefixBER(payload, got)
		if terr != nil {
			row.Note = terr.Error()
		}
		res.Transport = append(res.Transport, row)
		return nil
	}
	if err := opts.Checkpoint("sync: transport tracked"); err != nil {
		return nil, err
	}
	if err := transportLeg("tracked", true); err != nil {
		return nil, err
	}
	if err := opts.Checkpoint("sync: transport untracked"); err != nil {
		return nil, err
	}
	if err := transportLeg("untracked", false); err != nil {
		return nil, err
	}
	return res, nil
}

func init() {
	register(Experiment{
		ID:    "sync",
		Title: "Self-synchronizing receiver: acquisition, clock recovery, resync escalation",
		Run:   runSync,
	})
}
