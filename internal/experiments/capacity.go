package experiments

import "repro/internal/stats"

// capacityOf is the §4.3.2 metric: raw rate × (1 − H(e)).
func capacityOf(rate, ber float64) float64 { return stats.Capacity(rate, ber) }
